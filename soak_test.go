package rmac

import "testing"

// TestSoakAllProtocolsAllScenarios is the long cross-product smoke: every
// protocol under every mobility scenario on the paper's network, checking
// only that nothing wedges and the measurements stay sane. Skipped with
// -short.
func TestSoakAllProtocolsAllScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	for _, p := range []Protocol{RMAC, BMMM, BMW, LBP, MX, DOT11} {
		for _, sc := range []Scenario{Stationary, Speed1, Speed2} {
			p, sc := p, sc
			t.Run(p.String()+"/"+sc.String(), func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.Protocol = p
				cfg.Scenario = sc
				cfg.Rate = 20
				cfg.Packets = 60
				cfg.Seed = 11
				res := Run(cfg)
				if res.Metrics.Generated != 60 {
					t.Fatalf("generated = %d", res.Metrics.Generated)
				}
				if res.Delivery <= 0 || res.Delivery > 1 {
					t.Fatalf("delivery = %v", res.Delivery)
				}
				min := 0.85
				if p == LBP || p == MX || p == DOT11 {
					// Negative/leader feedback leaks deliveries the
					// sender never sees (§2), and plain 802.11 multicast
					// has no recovery at all (§1) — the leak is the
					// result, not a defect.
					min = 0.6
				}
				if sc != Stationary {
					min = 0.25 // mobility churn floors differ per protocol
				}
				if res.Delivery < min {
					t.Fatalf("%v/%v delivery = %.3f below floor %.2f", p, sc, res.Delivery, min)
				}
				if res.NonLeafCount == 0 {
					t.Fatal("no forwarders")
				}
			})
		}
	}
}
