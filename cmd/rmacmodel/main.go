// Command rmacmodel prints the closed-form per-exchange airtime models of
// every implemented protocol — the §2 arithmetic of the paper (PLCP
// overhead, 632 n µs BMMM control cost) extended to RMAC, BMW, LBP and
// the 802.11MX-style receiver-initiated scheme. The models are validated
// against the simulator by internal/analytic's tests.
//
//	rmacmodel -payload 500 -max-receivers 20
package main

import (
	"flag"
	"fmt"
	"os"

	"rmac/internal/analytic"
	"rmac/internal/phy"
)

func main() {
	payload := flag.Int("payload", 500, "data payload size in bytes")
	maxN := flag.Int("max-receivers", 20, "largest receiver count to tabulate")
	rate := flag.Int64("bitrate", 2_000_000, "data channel rate in bits/s")
	flag.Parse()

	if *maxN < 1 {
		fmt.Fprintln(os.Stderr, "rmacmodel: -max-receivers must be >= 1")
		os.Exit(2)
	}
	cfg := phy.DefaultConfig()
	cfg.BitRate = *rate

	var ns []int
	for n := 1; n <= *maxN; n++ {
		if n <= 5 || n%5 == 0 {
			ns = append(ns, n)
		}
	}
	analytic.WriteTable(os.Stdout, cfg, *payload, ns)
	fmt.Println("\n(ovh) is the collision-free overhead ratio: (control+gaps)/data airtime.")
	fmt.Printf("Reference points from §2 of the paper: PLCP overhead %v per frame;\n", phy.PLCPOverhead)
	fmt.Printf("ACK airtime %v; BMMM control cost 632 µs per receiver per data frame.\n",
		cfg.TxDuration(14))
}
