// Command rmacfigs regenerates every figure of the paper's evaluation
// section (Figures 7–13): it sweeps source rate × mobility scenario ×
// protocol with multiple random placements per point, prints each figure
// as the three panels the paper plots, and optionally writes a CSV.
//
// The defaults are scaled down for a quick run; the paper's full scale is
//
//	rmacfigs -packets 10000 -seeds 10
//
// which takes correspondingly longer (runs execute in parallel).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"rmac/internal/cli"
	"rmac/internal/experiment"
	"rmac/internal/sim"
)

func main() { os.Exit(run()) }

// run is main with an exit code, so deferred cleanup (profiles, signal
// handler teardown) executes before the process exits.
func run() int {
	base := experiment.DefaultConfig()
	figsFlag := flag.String("figures", "all", "comma-separated figure IDs (fig7..fig13) or 'all'")
	ratesFlag := flag.String("rates", "", "comma-separated source rates in pkt/s (default: the paper's 5,10,20,40,60,80,100,120)")
	scenariosFlag := flag.String("scenarios", "all", "comma-separated scenarios (stationary,speed1,speed2) or 'all'")
	seeds := flag.Int("seeds", 3, "random placements per data point (paper: 10)")
	packets := flag.Int("packets", 300, "packets per run (paper: 10000)")
	nodes := flag.Int("nodes", base.Nodes, "number of nodes")
	parallel := flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
	csvPath := flag.String("csv", "", "write all sweep points to this CSV file")
	ascii := flag.Bool("ascii", false, "also render each figure panel as a terminal plot")
	jsonPath := flag.String("json", "", "write all sweep points to this JSON file")
	protoFlag := flag.String("protocols", "", "comma-separated protocols to sweep (rmac,bmmm,bmw,lbp,mx); default: the paper's figure set")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	resilience := flag.Bool("resilience", false, "run the resilience sweep (delivery vs burst loss and node churn) instead of the paper figures")
	flag.IntVar(&base.Shards, "shards", 0, "spatial shards per run for the parallel engine (0/1 = single engine; mobile scenarios recompute lookahead per epoch)")
	shardEpoch := flag.Float64("shard-epoch", 0, "mobility epoch length in seconds for sharded mobile runs (0 = 1s)")
	topoName := flag.String("topo", "connected", "placement generator: connected, uniform, poisson, or metro")
	flag.IntVar(&base.Sources, "sources", 0, "multicast source count per run (0/1 = node 0 only)")
	flag.Uint64Var(&base.MaxEvents, "max-events", 0, "watchdog: abort any single run after this many events (0 disables)")
	flag.DurationVar(&base.MaxWall, "max-wall", 0, "watchdog: abort any single run after this much wall-clock time (0 disables)")
	flag.BoolVar(&base.Audit, "audit", base.Audit, "attach the protocol-invariant auditor to every run (passive; disable to benchmark the bare hot path)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole sweep to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after the sweep) to this file")
	strict := flag.Bool("strict", true, "exit non-zero when any run fails or is aborted, or the auditor reports violations (-strict=false restores advisory behaviour)")
	flag.Parse()
	base.ShardEpoch = sim.Time(*shardEpoch * float64(sim.Second))

	if *cpuProfile != "" {
		pf, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			mf, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			runtime.GC() // materialize the post-sweep live set
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			mf.Close()
		}()
	}

	base.Packets = *packets
	base.Nodes = *nodes
	topo, ok := experiment.TopoKinds[*topoName]
	if !ok {
		fmt.Fprintf(os.Stderr, "rmacfigs: unknown -topo %q (connected, uniform, poisson, metro)\n", *topoName)
		return 2
	}
	base.Topo = topo

	if err := base.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "rmacfigs:", err)
		return 2
	}

	figs, err := selectFigures(*figsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	rates := experiment.PaperRates
	if *ratesFlag != "" {
		rates, err = cli.ParseRates(*ratesFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	scenarios, err := cli.ParseScenarios(*scenariosFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	// ^C stops dispatching further runs and aborts in-flight engines
	// cooperatively; completed points still aggregate, tables and files
	// are still written.
	ctx, stopSignals := cli.SignalContext()
	defer stopSignals()

	if *resilience {
		protocols := []experiment.Protocol{experiment.RMAC, experiment.BMMM, experiment.BMW}
		if *protoFlag != "" {
			protocols, err = cli.ParseProtocols(*protoFlag)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
		}
		return runResilience(ctx, base, protocols, *seeds, *parallel, *csvPath, *quiet, *strict)
	}

	// One sweep covers every requested figure: figures differ only in
	// which metric they read from the aggregated points.
	protocols := []experiment.Protocol{experiment.RMAC}
	for _, f := range figs {
		if len(f.Protocols) > 1 {
			protocols = []experiment.Protocol{experiment.RMAC, experiment.BMMM}
			break
		}
	}
	if *protoFlag != "" {
		protocols, err = cli.ParseProtocols(*protoFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}

	sweep := experiment.Sweep{
		Base:        base,
		Protocols:   protocols,
		Scenarios:   scenarios,
		Rates:       rates,
		Seeds:       *seeds,
		Parallelism: *parallel,
	}
	total := sweep.Cells() * *seeds
	fmt.Printf("rmacfigs: %d simulations (%d nodes, %d packets each), figures %s\n",
		total, base.Nodes, base.Packets, *figsFlag)
	if !*quiet {
		sweep.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d runs", done, total)
		}
	}
	start := time.Now()
	points := experiment.RunSweepCtx(ctx, sweep)
	if !*quiet {
		fmt.Fprintf(os.Stderr, "\rcompleted %d runs in %v\n", total, time.Since(start).Round(time.Second))
	}
	var totalViolations uint64
	failedRuns, abortedRuns := 0, 0
	for _, p := range points {
		totalViolations += p.Violations
		failedRuns += p.FailedRuns
		abortedRuns += p.AbortedRuns
	}
	if totalViolations > 0 {
		fmt.Fprintf(os.Stderr, "AUDIT: %d invariant violation(s) across the sweep — figures below measure a non-conforming stack\n", totalViolations)
	}

	for _, f := range figs {
		experiment.WriteFigureTable(os.Stdout, f, points, scenarios)
		if *ascii {
			for _, sc := range scenarios {
				experiment.WriteFigureASCII(os.Stdout, f, points, sc)
			}
		}
	}

	if *csvPath != "" {
		if err := writeFile(*csvPath, func(w *os.File) error { return experiment.WriteCSV(w, points) }); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	if *jsonPath != "" {
		if err := writeFile(*jsonPath, func(w *os.File) error { return experiment.WriteJSON(w, points) }); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if *strict && (totalViolations > 0 || failedRuns > 0 || abortedRuns > 0) {
		fmt.Fprintf(os.Stderr, "rmacfigs: strict: %d failed, %d aborted, %d violation(s)\n",
			failedRuns, abortedRuns, totalViolations)
		return 1
	}
	return 0
}

// runResilience executes the burst-loss and churn ladders for the given
// protocols and renders one table per impairment level (plus CSV when
// requested). Failed runs are reported per cell rather than poisoning the
// sweep, so a crash in one configuration still yields the other curves.
func runResilience(ctx context.Context, base experiment.Config, protocols []experiment.Protocol, seeds, parallel int, csvPath string, quiet, strict bool) int {
	levels := append(experiment.DefaultBurstLevels(), experiment.DefaultChurnLevels()...)
	sweep := experiment.ResilienceSweep{
		Base:        base,
		Protocols:   protocols,
		Levels:      levels,
		Seeds:       seeds,
		Parallelism: parallel,
	}
	total := len(protocols) * len(levels) * seeds
	fmt.Printf("rmacfigs: resilience sweep, %d simulations (%d nodes, %d packets each)\n",
		total, base.Nodes, base.Packets)
	if !quiet {
		sweep.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d runs", done, total)
		}
	}
	start := time.Now()
	points := experiment.RunResilienceSweepCtx(ctx, sweep)
	if !quiet {
		fmt.Fprintf(os.Stderr, "\rcompleted %d runs in %v\n", total, time.Since(start).Round(time.Second))
	}

	experiment.WriteResilienceTable(os.Stdout, points)
	failed, aborted := 0, 0
	for _, p := range points {
		failed += p.FailedRuns
		aborted += p.AbortedRuns
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "rmacfigs: %d run(s) failed and were excluded from the averages\n", failed)
	}

	if csvPath != "" {
		if err := writeFile(csvPath, func(w *os.File) error { return experiment.WriteResilienceCSV(w, points) }); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("wrote %s\n", csvPath)
	}
	if failed > 0 || (strict && aborted > 0) {
		return 1
	}
	return 0
}

func writeFile(path string, fn func(*os.File) error) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

func selectFigures(spec string) ([]experiment.Figure, error) {
	if spec == "all" {
		return experiment.Figures(), nil
	}
	var out []experiment.Figure
	for _, id := range strings.Split(spec, ",") {
		f, err := experiment.FigureByID(strings.TrimSpace(id))
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}
