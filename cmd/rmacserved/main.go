// Command rmacserved serves long-running sweep campaigns over HTTP/JSON:
// clients POST sweep grids, the service fans grid points to a worker pool
// with retries, per-point deadlines, and a poison quarantine, streams
// progress and partial results, and journals every outcome so a sweep
// survives a crash or restart of the server itself.
//
// Start it, submit a sweep, watch it:
//
//	rmacserved -addr :8080 -journal sweeps.jsonl
//	curl -d '{"protocols":["rmac","bmmm"],"rates":[10,40],"seeds":3}' localhost:8080/sweeps
//	curl localhost:8080/jobs/j1
//
// SIGINT/SIGTERM drains gracefully: no new submissions are admitted,
// in-flight points finish (bounded by -drain-timeout), then the journal
// is closed. Whatever did not finish is resumed by the next start with
// the same -journal path.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"time"

	"rmac/internal/cli"
	"rmac/internal/experiment"
	"rmac/internal/server"
)

func main() { os.Exit(run()) }

// buildLogger maps the -log/-log-level flags to a slog.Logger on stderr
// (nil for "off": the server then discards log records but still serves
// metrics).
func buildLogger(mode, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch mode {
	case "off", "":
		return nil, nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("bad -log mode %q (want text, json, or off)", mode)
}

func run() int {
	var cfg server.Config
	addr := flag.String("addr", ":8080", "listen address")
	flag.IntVar(&cfg.Workers, "workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.QueueCap, "queue", 0, "max admitted-but-unfinished grid points before submissions get 429 (0 = 1024)")
	flag.IntVar(&cfg.MaxAttempts, "attempts", 0, "quarantine a grid point after this many failed attempts (0 = 3)")
	flag.DurationVar(&cfg.RetryBase, "retry-base", 0, "base retry backoff (0 = 100ms; doubled per failure, capped, jittered)")
	flag.DurationVar(&cfg.RetryCap, "retry-cap", 0, "max retry backoff (0 = 5s)")
	flag.DurationVar(&cfg.PointDeadline, "deadline", 0, "wall-clock budget per grid point (0 = 2m, negative disables)")
	flag.StringVar(&cfg.JournalPath, "journal", "", "crash-recovery journal path; on start, unfinished work found here is resumed (empty disables)")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "max wait for in-flight points on SIGTERM before hard stop (journaled work resumes on restart)")
	logMode := flag.String("log", "off", "structured logging to stderr: text, json, or off")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	flag.Parse()

	logger, err := buildLogger(*logMode, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmacserved:", err)
		return 2
	}
	cfg.Logger = logger

	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmacserved:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmacserved:", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Printf("rmacserved: listening on %s (%s)\n", ln.Addr(), experiment.CodeVersion())

	ctx, stopSignals := cli.SignalContext()
	defer stopSignals()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		srv.Close()
		fmt.Fprintln(os.Stderr, "rmacserved:", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Println("rmacserved: draining (second signal kills immediately)")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting connections first, then let in-flight work finish.
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "rmacserved: shutdown:", err)
	}
	if err := srv.Drain(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "rmacserved:", err)
		return 1
	}
	fmt.Println("rmacserved: drained cleanly")
	return 0
}
