// Command treestat reproduces the §4.1.1 topology statistics: it
// generates connected random placements of the paper's network (75 nodes,
// 500 m × 300 m, 75 m range), builds the BLESS-style shortest-hop tree
// rooted at node 0, and reports hop and fan-out statistics. The paper
// reports average/99-percentile hops to root of 3.87/10 and average/99-
// percentile children per non-leaf node of 3.54/9.
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"rmac/internal/geom"
	"rmac/internal/stats"
	"rmac/internal/topo"
)

func main() {
	nodes := flag.Int("nodes", 75, "number of nodes")
	w := flag.Float64("field-w", 500, "field width in metres")
	h := flag.Float64("field-h", 300, "field height in metres")
	radio := flag.Float64("range", 75, "radio range in metres")
	seeds := flag.Int("seeds", 10, "number of random placements")
	verbose := flag.Bool("v", false, "print per-seed statistics")
	flag.Parse()

	field := geom.Rect{W: *w, H: *h}
	var hops, children, hopsP99, childP99 stats.Sample
	for seed := int64(0); seed < int64(*seeds); seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, ok := topo.ConnectedRandomPlacement(*nodes, field, *radio, rng, 500)
		if !ok {
			fmt.Printf("seed %d: no connected placement found, skipping\n", seed)
			continue
		}
		ts := topo.AnalyzeTree(p.BFSTree(0, *radio), 0)
		hops.Add(ts.Hops.Mean)
		children.Add(ts.Children.Mean)
		hopsP99.Add(ts.Hops.P99)
		childP99.Add(ts.Children.P99)
		if *verbose {
			fmt.Printf("seed %2d: hops avg %.2f p99 %2.0f max %2.0f | children avg %.2f p99 %2.0f | non-leaf %d leaf %d\n",
				seed, ts.Hops.Mean, ts.Hops.P99, ts.Hops.Max, ts.Children.Mean, ts.Children.P99, ts.NonLeaf, ts.Leaf)
		}
	}
	fmt.Printf("\n%d placements of %d nodes on %.0fx%.0f m, range %.0f m:\n", hops.N(), *nodes, *w, *h, *radio)
	fmt.Printf("  hops to root:          avg %.2f   99pct %.1f   (paper: 3.87 / 10)\n", hops.Mean(), hopsP99.Mean())
	fmt.Printf("  children per non-leaf: avg %.2f   99pct %.1f   (paper: 3.54 / 9)\n", children.Mean(), childP99.Mean())
}
