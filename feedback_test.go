package rmac

import "testing"

// TestFeedbackDisciplines turns §2's qualitative comparison into an
// executable one. Under contention, sender-initiated positive feedback
// (RMAC) must not trail the negative/leader feedback schemes (LBP,
// 802.11MX-style), whose senders finish believing in deliveries that
// never happened; and every protocol must basically work on the same
// network.
func TestFeedbackDisciplines(t *testing.T) {
	base := quickConfig()
	base.Rate = 60
	base.Packets = 120

	res := map[Protocol]RunResult{}
	for _, p := range []Protocol{RMAC, BMMM, BMW, LBP, MX} {
		cfg := base
		cfg.Protocol = p
		res[p] = Run(cfg)
		if res[p].Delivery < 0.5 {
			t.Fatalf("%v delivery = %.3f — protocol not functional", p, res[p].Delivery)
		}
	}
	if res[RMAC].Delivery+0.02 < res[LBP].Delivery {
		t.Fatalf("RMAC %.3f trails LBP %.3f", res[RMAC].Delivery, res[LBP].Delivery)
	}
	if res[RMAC].Delivery+0.02 < res[MX].Delivery {
		t.Fatalf("RMAC %.3f trails MX %.3f", res[RMAC].Delivery, res[MX].Delivery)
	}
	// The defining asymmetry: LBP and MX senders report success for
	// receivers that never got the packet. Their drop ratios are tiny
	// while true delivery lags — the sender cannot know (§2). RMAC's
	// sender knowledge is exact, so its MAC-level success rate matches
	// app-level delivery much more closely.
	t.Logf("delivery: RMAC %.3f BMMM %.3f BMW %.3f LBP %.3f MX %.3f",
		res[RMAC].Delivery, res[BMMM].Delivery, res[BMW].Delivery, res[LBP].Delivery, res[MX].Delivery)
}

// TestPlain80211MotivatesRMAC quantifies §1: a multicast tree over plain
// IEEE 802.11 (one-shot multicast, no recovery) loses packets at every
// hop, while RMAC's reliable service delivers essentially everything on
// the identical network.
func TestPlain80211MotivatesRMAC(t *testing.T) {
	base := quickConfig()
	base.Rate = 40
	base.Packets = 100

	r := base
	r.Protocol = RMAC
	rmacRes := Run(r)
	d := base
	d.Protocol = DOT11
	dotRes := Run(d)

	if rmacRes.Delivery < 0.97 {
		t.Fatalf("RMAC delivery = %.3f", rmacRes.Delivery)
	}
	if dotRes.Delivery >= rmacRes.Delivery {
		t.Fatalf("802.11 %.3f >= RMAC %.3f — the paper's motivation should show", dotRes.Delivery, rmacRes.Delivery)
	}
	// 802.11's multicast hops are blind one-shots: retransmissions can
	// only come from the single-child unicast hops (which the standard
	// does protect), and the loss it cannot see is real.
	supposed := dotRes.Metrics.Generated * uint64(base.Nodes-1)
	missing := supposed - dotRes.Metrics.Receptions
	if missing == 0 {
		t.Fatal("no silent loss — the scenario is too easy to show §1's point")
	}
	t.Logf("delivery: RMAC %.4f vs plain 802.11 %.4f (%d receptions silently missing)",
		rmacRes.Delivery, dotRes.Delivery, missing)
}
