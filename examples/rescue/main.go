// Rescue: an emergency-rescue network — another §1 motivating deployment —
// where responders move continuously (random waypoint) while a coordinator
// multicasts situation updates. The example measures how mobility erodes
// reliability across the paper's three scenarios (Figure 7's three
// panels), and how much of the loss is out-of-range churn rather than MAC
// failure.
//
//	go run ./examples/rescue
package main

import (
	"fmt"
	"os"

	"rmac"
)

func main() {
	cfg := rmac.DefaultConfig()
	cfg.Packets = 150
	cfg.Rate = 20

	fmt.Println("Rescue scenario: 75 responders, coordinator multicasting updates at 20 pkt/s.")
	fmt.Println("Comparing mobility scenarios (3 placements each)...")

	points := rmac.RunSweep(rmac.Sweep{
		Base:      cfg,
		Protocols: []rmac.Protocol{rmac.RMAC},
		Scenarios: []rmac.Scenario{rmac.Stationary, rmac.Speed1, rmac.Speed2},
		Rates:     []float64{cfg.Rate},
		Seeds:     3,
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r  %d/%d runs", done, total)
		},
	})
	fmt.Fprintln(os.Stderr)

	fmt.Printf("\n%-12s %10s %10s %10s %10s\n", "scenario", "delivery", "drop", "retx", "delay(s)")
	for _, p := range points {
		fmt.Printf("%-12v %10.4f %10.4f %10.4f %10.4f\n",
			p.Scenario, p.Delivery, p.AvgDropRatio, p.AvgRetxRatio, p.AvgDelay)
	}
	fmt.Println("\nExpected shape (paper §4.2.1): delivery ≈1 stationary, dropping toward")
	fmt.Println("≈0.75 under motion — nodes move out of their parents' range, which the")
	fmt.Println("MAC cannot fix (\"the issue of out-of-range nodes should be dealt with")
	fmt.Println("by upper layer protocols\"). Retransmissions rise toward ≈1 (Fig 10).")
}
