// Sensors: a sparse sensor network — the paper's third motivating
// deployment (§1) — where a sink floods configuration updates to every
// sensor. Sparse fields stress the tree: long thin paths, few redundant
// links. The example also shows the comprehensive-MAC angle of §3.3: the
// same RMAC instance carries both the Reliable Send data traffic and the
// Unreliable Send routing beacons, and the topology helper quantifies how
// sparse the network is.
//
//	go run ./examples/sensors
package main

import (
	"fmt"

	"rmac"
)

func main() {
	// A sparse deployment: 60 sensors over a field ~1.9× the paper's,
	// same 75 m radio range — roughly 4 neighbours per sensor, near the
	// connectivity threshold. Seeds are scanned for a connected field.
	cfg := rmac.DefaultConfig()
	cfg.Nodes = 60
	cfg.Field = rmac.Rect{W: 700, H: 400}
	cfg.Rate = 10
	cfg.Packets = 150

	var ts rmac.TreeStats
	ok := false
	for seed := int64(1); seed < 200 && !ok; seed++ {
		cfg.Seed = seed
		ts, ok = rmac.AnalyzeTopology(cfg.Nodes, cfg.Field, cfg.Phy.CommRange, cfg.Seed)
	}
	if !ok {
		fmt.Println("no connected sparse placement found")
		return
	}
	fmt.Printf("Sparse sensor field %dx%d m, %d sensors, 75 m range:\n",
		int(cfg.Field.W), int(cfg.Field.H), cfg.Nodes)
	fmt.Printf("  tree depth: avg %.2f hops, max %.0f; forwarders have avg %.2f children\n\n",
		ts.Hops.Mean, ts.Hops.Max, ts.Children.Mean)

	res := rmac.Run(cfg)
	fmt.Printf("Sink flooding %d packets at %g pkt/s over RMAC reliable multicast:\n", cfg.Packets, cfg.Rate)
	fmt.Printf("  delivery ratio           %.4f\n", res.Delivery)
	fmt.Printf("  avg end-to-end delay     %.3f s (deep tree => more store-and-forward hops)\n", res.AvgDelay)
	fmt.Printf("  avg retransmission ratio %.3f\n", res.AvgRetxRatio)
	fmt.Printf("  avg tx overhead ratio    %.3f\n", res.AvgOverheadRatio)
	mrts := res.MRTSLens.Summarize()
	fmt.Printf("  MRTS length              avg %.1f B (sparse trees => short receiver lists)\n", mrts.Mean)
	fmt.Printf("\nThe same MAC instances carried the BLESS routing beacons over the\n")
	fmt.Printf("Unreliable Send service concurrently — the \"comprehensive MAC\" design\n")
	fmt.Printf("of §3.3 (reliable + unreliable service from one protocol).\n")
}
