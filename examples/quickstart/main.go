// Quickstart: run one simulation of the paper's evaluation network with
// the RMAC protocol and print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"rmac"
)

func main() {
	cfg := rmac.DefaultConfig() // 75 nodes, 500×300 m, 75 m range, 2 Mb/s
	cfg.Rate = 20               // packets/second from the source (node 0)
	cfg.Packets = 200           // paper uses 10000; 200 keeps this instant
	cfg.Seed = 42

	res := rmac.Run(cfg)

	fmt.Printf("RMAC on a stationary %d-node ad hoc network, %g pkt/s:\n\n", cfg.Nodes, cfg.Rate)
	fmt.Printf("  packet delivery ratio     %.4f   (paper: close to 1 when stationary)\n", res.Delivery)
	fmt.Printf("  avg end-to-end delay      %.3f s\n", res.AvgDelay)
	fmt.Printf("  avg retransmission ratio  %.3f    (paper: ≤ 0.32 stationary)\n", res.AvgRetxRatio)
	fmt.Printf("  avg tx overhead ratio     %.3f    (paper: ≈ 0.2 stationary)\n", res.AvgOverheadRatio)
	fmt.Printf("  avg packet drop ratio     %.4f\n", res.AvgDropRatio)
	mrts := res.MRTSLens.Summarize()
	fmt.Printf("  MRTS length               avg %.1f B, 99%%ile %.0f B, max %.0f B\n", mrts.Mean, mrts.P99, mrts.Max)
	fmt.Printf("\nMulticast tree: %d/%d nodes reached, avg %.2f hops to root, avg %.2f children per forwarder\n",
		res.Tree.Reachable, cfg.Nodes, res.Tree.Hops.Mean, res.Tree.Children.Mean)
}
