// Battlefield: a stationary ad hoc network — one of the paper's
// motivating deployments ("battlefield ad hoc networks", §1) — where a
// command node multicasts orders down a tree to every unit. The example
// compares RMAC against the IEEE 802.11-based BMMM baseline as the
// command traffic rate rises, reproducing the stationary panels of
// Figures 7 and 11 at reduced scale.
//
//	go run ./examples/battlefield
package main

import (
	"fmt"
	"os"

	"rmac"
)

func main() {
	cfg := rmac.DefaultConfig()
	cfg.Packets = 150

	fmt.Println("Battlefield scenario: 75 stationary units, command node multicasting orders.")
	fmt.Println("Sweeping source rate, RMAC vs BMMM (3 placements per point)...")

	points := rmac.RunSweep(rmac.Sweep{
		Base:      cfg,
		Protocols: []rmac.Protocol{rmac.RMAC, rmac.BMMM},
		Scenarios: []rmac.Scenario{rmac.Stationary},
		Rates:     []float64{10, 40, 80},
		Seeds:     3,
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r  %d/%d runs", done, total)
		},
	})
	fmt.Fprintln(os.Stderr)

	fmt.Printf("\n%8s  %22s  %22s\n", "", "delivery ratio", "tx overhead ratio")
	fmt.Printf("%8s  %10s %10s  %10s %10s\n", "rate", "RMAC", "BMMM", "RMAC", "BMMM")
	rates := []float64{10, 40, 80}
	for _, rate := range rates {
		var r, m rmac.Point
		for _, p := range points {
			if p.Rate != rate {
				continue
			}
			if p.Protocol == rmac.RMAC {
				r = p
			} else {
				m = p
			}
		}
		fmt.Printf("%8.0f  %10.4f %10.4f  %10.3f %10.3f\n",
			rate, r.Delivery, m.Delivery, r.AvgOverheadRatio, m.AvgOverheadRatio)
	}
	fmt.Println("\nExpected shape (paper §4): both deliver ≈1 when stationary, but RMAC's")
	fmt.Println("overhead stays ≈0.2 while BMMM pays ≈1.0–1.1 — the busy-tone dividend.")
}
