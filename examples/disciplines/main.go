// Disciplines: §2 of the paper argues about *feedback design* — positive
// sender-initiated feedback (RMAC) versus a leader answering for the group
// (LBP) versus receiver-initiated negative feedback on a busy tone
// (802.11MX). This example makes the argument executable: it prints the
// closed-form per-exchange cost of each discipline and then measures true
// end-to-end delivery on the same contended network, showing that the
// cheap negative-feedback schemes buy their efficiency with silent loss
// the sender never learns about.
//
//	go run ./examples/disciplines
package main

import (
	"fmt"
	"os"

	"rmac"
)

func main() {
	fmt.Println("Analytic per-exchange cost (collision-free), from the §2 arithmetic:")
	fmt.Println()
	rmac.WriteModelTable(os.Stdout, 500, []int{1, 3, 5, 10, 20})

	cfg := rmac.DefaultConfig()
	cfg.Nodes = 30
	cfg.Field = rmac.Rect{W: 320, H: 200}
	cfg.Rate = 60
	cfg.Packets = 150

	fmt.Println("\nMeasured on a contended 30-node tree at 60 pkt/s (3 placements):")
	points := rmac.RunSweep(rmac.Sweep{
		Base:      cfg,
		Protocols: []rmac.Protocol{rmac.RMAC, rmac.BMMM, rmac.BMW, rmac.LBP, rmac.MX, rmac.DOT11},
		Scenarios: []rmac.Scenario{rmac.Stationary},
		Rates:     []float64{cfg.Rate},
		Seeds:     3,
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r  %d/%d runs", done, total)
		},
	})
	fmt.Fprintln(os.Stderr)

	fmt.Printf("\n%-8s %12s %12s %14s\n", "MAC", "delivery", "overhead", "retx ratio")
	for _, p := range points {
		fmt.Printf("%-8v %12.4f %12.3f %14.3f\n", p.Protocol, p.Delivery, p.AvgOverheadRatio, p.AvgRetxRatio)
	}
	fmt.Println("\nReading: LBP and MX complete exchanges cheaply but their senders cannot")
	fmt.Println("see receivers that missed the solicitation (§2: \"the sender cannot know")
	fmt.Println("whether full reliability is achieved\"); RMAC's ordered ABTs make every")
	fmt.Println("receiver's outcome visible, so delivery stays pinned at the top.")
}
