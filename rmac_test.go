package rmac

import (
	"strings"
	"testing"
)

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Nodes = 20
	cfg.Field = Rect{W: 250, H: 150}
	cfg.Rate = 10
	cfg.Packets = 30
	return cfg
}

func TestPublicRun(t *testing.T) {
	res := Run(quickConfig())
	if res.Delivery < 0.9 {
		t.Fatalf("delivery = %v", res.Delivery)
	}
	if res.Metrics.Generated != 30 {
		t.Fatalf("generated = %d", res.Metrics.Generated)
	}
}

func TestPublicSweepAndReport(t *testing.T) {
	cfg := quickConfig()
	cfg.Packets = 10
	points := RunSweep(Sweep{
		Base:      cfg,
		Protocols: []Protocol{RMAC, BMMM},
		Scenarios: []Scenario{Stationary},
		Rates:     []float64{10},
		Seeds:     1,
	})
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	fig, err := FigureByID("fig7")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteFigureTable(&sb, fig, points, []Scenario{Stationary})
	if !strings.Contains(sb.String(), "RMAC") {
		t.Fatal("table rendering")
	}
	var csv strings.Builder
	if err := WriteCSV(&csv, points); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(strings.TrimSpace(csv.String()), "\n")) != 3 {
		t.Fatal("csv rows")
	}
}

func TestPublicFigures(t *testing.T) {
	if len(Figures()) != 7 {
		t.Fatal("figure count")
	}
	if len(PaperRates()) != 8 {
		t.Fatal("paper rates")
	}
	// PaperRates returns a copy: mutating it must not affect the next call.
	r := PaperRates()
	r[0] = 999
	if PaperRates()[0] == 999 {
		t.Fatal("PaperRates aliases internal state")
	}
}

func TestPublicAnalyzeTopology(t *testing.T) {
	ts, ok := AnalyzeTopology(75, Rect{W: 500, H: 300}, 75, 1)
	if !ok {
		t.Fatal("no connected placement")
	}
	if ts.Reachable != 75 {
		t.Fatalf("reachable = %d", ts.Reachable)
	}
	if ts.Hops.Mean < 2 || ts.Hops.Mean > 7 {
		t.Fatalf("hops mean = %v", ts.Hops.Mean)
	}
}

func TestRBTAblationIncreasesRetransmissions(t *testing.T) {
	// DESIGN.md ablation: disabling RBT protection must hurt — more
	// retransmissions (hidden-node collisions on data) at equal load.
	base := quickConfig()
	base.Rate = 40
	base.Packets = 120

	on := Run(base)
	off := base
	off.RMACOptions = RMACOptions{DisableRBTProtection: true}
	offRes := Run(off)

	if offRes.AvgRetxRatio <= on.AvgRetxRatio {
		t.Fatalf("no-RBT retx %.3f <= RBT retx %.3f; protection shows no benefit",
			offRes.AvgRetxRatio, on.AvgRetxRatio)
	}
	if offRes.Delivery > on.Delivery+0.05 {
		t.Fatalf("no-RBT delivery %.3f unexpectedly above %.3f", offRes.Delivery, on.Delivery)
	}
}
