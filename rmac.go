package rmac

import (
	"io"
	"math/rand"

	"rmac/internal/analytic"
	"rmac/internal/experiment"
	"rmac/internal/geom"
	"rmac/internal/mac"
	rmacmac "rmac/internal/mac/rmac"
	"rmac/internal/phy"
	"rmac/internal/routing"
	"rmac/internal/sim"
	"rmac/internal/stats"
	"rmac/internal/topo"
)

// Core configuration and result types, re-exported from the experiment
// harness. See each type's documentation for field meanings.
type (
	// Config describes one simulation run (§4.1 parameters).
	Config = experiment.Config
	// Protocol selects the MAC under test.
	Protocol = experiment.Protocol
	// Scenario is one of the §4.1.2 mobility settings.
	Scenario = experiment.Scenario
	// RunResult carries all measurements of one run.
	RunResult = experiment.RunResult
	// Sweep describes a (protocol × scenario × rate × seed) grid.
	Sweep = experiment.Sweep
	// Point is one aggregated data point of a sweep.
	Point = experiment.Point
	// Figure identifies one reproducible paper figure.
	Figure = experiment.Figure
	// TreeStats summarises a multicast tree (§4.1.1).
	TreeStats = topo.TreeStats
	// Summary is an average/99-percentile/maximum report.
	Summary = stats.Summary
	// PhyConfig carries the radio parameters.
	PhyConfig = phy.Config
	// MACLimits carries retry/queue policy.
	MACLimits = mac.Limits
	// RMACOptions carries RMAC ablation switches.
	RMACOptions = rmacmac.Options
	// RoutingConfig carries BLESS beacon timing.
	RoutingConfig = routing.Config
	// Rect is a deployment field.
	Rect = geom.Rect
	// Time is simulated time in nanoseconds.
	Time = sim.Time
	// TopoKind selects the placement generator for large-scale runs.
	TopoKind = experiment.TopoKind
	// ShardRunStats is the per-shard scheduler report of a sharded run.
	ShardRunStats = experiment.ShardRunStats
)

// Protocols under test.
const (
	RMAC = experiment.RMAC
	BMMM = experiment.BMMM
	BMW  = experiment.BMW
	LBP  = experiment.LBP
	MX   = experiment.MX
	// DOT11 is plain IEEE 802.11 DCF: reliable unicast only, one-shot
	// multicast (§1's motivation for RMAC).
	DOT11 = experiment.DOT11
)

// Mobility scenarios (§4.1.2).
const (
	Stationary = experiment.Stationary
	Speed1     = experiment.Speed1
	Speed2     = experiment.Speed2
)

// Placement generators (Config.Topo).
const (
	TopoConnected = experiment.TopoConnected
	TopoUniform   = experiment.TopoUniform
	TopoPoisson   = experiment.TopoPoisson
	TopoMetro     = experiment.TopoMetro
)

// DefaultConfig returns the paper's evaluation parameters (75 nodes,
// 500×300 m, 75 m range, 2 Mb/s, 500-byte packets) with a scaled-down
// packet count.
func DefaultConfig() Config { return experiment.DefaultConfig() }

// PaperRates returns the eight source rates of §4.1.2 (packets/second).
func PaperRates() []float64 {
	return append([]float64(nil), experiment.PaperRates...)
}

// Run executes one simulation and returns its measurements.
func Run(cfg Config) RunResult { return experiment.Run(cfg) }

// RunSweep executes a grid of simulations in parallel and aggregates each
// (protocol, scenario, rate) cell across seeds, as the paper's data
// points do.
func RunSweep(s Sweep) []Point { return experiment.RunSweep(s) }

// Figures returns the specification of every evaluation figure
// (Figures 7–13) in paper order.
func Figures() []Figure { return experiment.Figures() }

// FigureByID looks a figure up by its paper reference ("fig7" … "fig13").
func FigureByID(id string) (Figure, error) { return experiment.FigureByID(id) }

// WriteFigureTable renders one figure as the paper's three panels.
func WriteFigureTable(w io.Writer, fig Figure, points []Point, scenarios []Scenario) {
	experiment.WriteFigureTable(w, fig, points, scenarios)
}

// WriteCSV emits sweep points as CSV for external plotting.
func WriteCSV(w io.Writer, points []Point) error { return experiment.WriteCSV(w, points) }

// WriteJSON emits sweep points as a JSON array for external tooling.
func WriteJSON(w io.Writer, points []Point) error { return experiment.WriteJSON(w, points) }

// WriteFigureASCII renders one figure panel as a terminal line plot.
func WriteFigureASCII(w io.Writer, fig Figure, points []Point, sc Scenario) {
	experiment.WriteFigureASCII(w, fig, points, sc)
}

// WriteModelTable prints the closed-form per-exchange airtime models of
// every implemented protocol (the §2 arithmetic generalised) for the
// given payload size across receiver counts, at the paper's 802.11b
// radio parameters.
func WriteModelTable(w io.Writer, payload int, receiverCounts []int) {
	analytic.WriteTable(w, phy.DefaultConfig(), payload, receiverCounts)
}

// AnalyzeTopology generates a connected random placement with the given
// seed and returns the §4.1.1 statistics of its BLESS-style tree rooted
// at node 0. It draws from the same placement stream Run uses, so the
// analysed tree is the one a Run with the same Config simulates.
func AnalyzeTopology(nodes int, field Rect, radioRange float64, seed int64) (TreeStats, bool) {
	rng := rand.New(rand.NewSource(seed ^ experiment.PlacementSeedMix))
	p, ok := topo.ConnectedRandomPlacement(nodes, field, radioRange, rng, 500)
	if !ok {
		return TreeStats{}, false
	}
	return topo.AnalyzeTree(p.BFSTree(0, radioRange), 0), true
}
