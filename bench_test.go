// Benchmarks regenerating each experiment of the paper's evaluation
// (DESIGN.md E0–E8) at benchmark-friendly scale. Each benchmark runs the
// exact code path of its figure and reports the figure's headline numbers
// as custom metrics; cmd/rmacfigs produces the full-resolution series.
//
// Run them all:
//
//	go test -bench=. -benchmem
package rmac

import (
	"fmt"
	"testing"

	"rmac/internal/frame"
	"rmac/internal/phy"
	"rmac/internal/sim"
)

// benchConfig is the reduced-scale network used by the figure benchmarks:
// large enough to have a multi-hop tree with contention, small enough to
// run in tens of milliseconds.
func benchConfig() Config {
	cfg := DefaultConfig()
	cfg.Nodes = 30
	cfg.Field = Rect{W: 320, H: 200}
	cfg.Packets = 60
	cfg.Rate = 40
	return cfg
}

func runPair(b *testing.B, sc Scenario, rate float64) (rmacRes, bmmmRes RunResult) {
	b.Helper()
	cfg := benchConfig()
	cfg.Scenario = sc
	cfg.Rate = rate
	cfg.Seed = int64(b.N) // vary work across iterations deterministically
	r := cfg
	r.Protocol = RMAC
	m := cfg
	m.Protocol = BMMM
	return Run(r), Run(m)
}

// BenchmarkControlOverheadAnalysis reproduces E0, the §2 arithmetic: the
// PLCP overhead (96 µs), the ACK airtime (56 µs + PLCP) and BMMM's 632n µs
// control cost per data frame, measured from the frame codec + PHY timing.
func BenchmarkControlOverheadAnalysis(b *testing.B) {
	cfg := phy.DefaultConfig()
	var per sim.Time
	for i := 0; i < b.N; i++ {
		per = cfg.TxDuration(frame.RTSLen) + cfg.TxDuration(frame.CTSLen) +
			cfg.TxDuration(frame.RAKLen) + cfg.TxDuration(frame.ACKLen)
	}
	if per != 632*sim.Microsecond {
		b.Fatalf("BMMM per-receiver control airtime = %v, want 632µs", per)
	}
	b.ReportMetric(per.Micros(), "µs/receiver")
	b.ReportMetric(phy.PLCPOverhead.Micros(), "µs/PLCP")
}

// BenchmarkTreeTopology reproduces E1 (§4.1.1): tree statistics over
// random connected placements of the paper's network.
func BenchmarkTreeTopology(b *testing.B) {
	var hops, children float64
	n := 0
	for i := 0; i < b.N; i++ {
		ts, ok := AnalyzeTopology(75, Rect{W: 500, H: 300}, 75, int64(i))
		if !ok {
			b.Fatal("no connected placement")
		}
		hops += ts.Hops.Mean
		children += ts.Children.Mean
		n++
	}
	b.ReportMetric(hops/float64(n), "hops-avg")
	b.ReportMetric(children/float64(n), "children-avg")
}

// BenchmarkFig7DeliveryRatio reproduces E2: packet delivery ratio, RMAC
// vs BMMM, stationary panel.
func BenchmarkFig7DeliveryRatio(b *testing.B) {
	var r, m RunResult
	for i := 0; i < b.N; i++ {
		r, m = runPair(b, Stationary, 40)
	}
	b.ReportMetric(r.Delivery, "rmac-deliv")
	b.ReportMetric(m.Delivery, "bmmm-deliv")
}

// BenchmarkFig8DropRatio reproduces E3: average packet drop ratio over
// non-leaf nodes.
func BenchmarkFig8DropRatio(b *testing.B) {
	var r, m RunResult
	for i := 0; i < b.N; i++ {
		r, m = runPair(b, Stationary, 80)
	}
	b.ReportMetric(r.AvgDropRatio, "rmac-drop")
	b.ReportMetric(m.AvgDropRatio, "bmmm-drop")
}

// BenchmarkFig9EndToEndDelay reproduces E4: average end-to-end delay.
func BenchmarkFig9EndToEndDelay(b *testing.B) {
	var r, m RunResult
	for i := 0; i < b.N; i++ {
		r, m = runPair(b, Stationary, 80)
	}
	b.ReportMetric(r.AvgDelay, "rmac-delay-s")
	b.ReportMetric(m.AvgDelay, "bmmm-delay-s")
}

// BenchmarkFig10RetxRatio reproduces E5: average packet retransmission
// ratio.
func BenchmarkFig10RetxRatio(b *testing.B) {
	var r, m RunResult
	for i := 0; i < b.N; i++ {
		r, m = runPair(b, Stationary, 40)
	}
	b.ReportMetric(r.AvgRetxRatio, "rmac-retx")
	b.ReportMetric(m.AvgRetxRatio, "bmmm-retx")
}

// BenchmarkFig11OverheadRatio reproduces E6: average transmission
// overhead ratio (the paper's headline efficiency result: ≈0.2 for RMAC
// vs ≈1.0–1.1 for BMMM when stationary).
func BenchmarkFig11OverheadRatio(b *testing.B) {
	var r, m RunResult
	for i := 0; i < b.N; i++ {
		r, m = runPair(b, Stationary, 40)
	}
	b.ReportMetric(r.AvgOverheadRatio, "rmac-txoh")
	b.ReportMetric(m.AvgOverheadRatio, "bmmm-txoh")
}

// BenchmarkFig12MRTSLength reproduces E7: the MRTS length distribution
// (average / 99 percentile / max bytes).
func BenchmarkFig12MRTSLength(b *testing.B) {
	var s Summary
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.Seed = int64(i + 1)
		res := Run(cfg)
		s = res.MRTSLens.Summarize()
	}
	b.ReportMetric(s.Mean, "mrts-avg-B")
	b.ReportMetric(s.P99, "mrts-p99-B")
	b.ReportMetric(s.Max, "mrts-max-B")
}

// BenchmarkFig13AbortRatio reproduces E8: the MRTS abortion ratio
// distribution across non-leaf nodes.
func BenchmarkFig13AbortRatio(b *testing.B) {
	var s Summary
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.Rate = 80
		cfg.Seed = int64(i + 1)
		res := Run(cfg)
		s = res.AbortRatios.Summarize()
	}
	b.ReportMetric(s.Mean, "abort-avg")
	b.ReportMetric(s.Max, "abort-max")
}

// BenchmarkAblationNoRBT quantifies the DESIGN.md ablation: RMAC with RBT
// protection disabled (hidden-node exposure) against stock RMAC.
func BenchmarkAblationNoRBT(b *testing.B) {
	var on, off RunResult
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.Seed = int64(i + 1)
		on = Run(cfg)
		cfg.RMACOptions = RMACOptions{DisableRBTProtection: true}
		off = Run(cfg)
	}
	b.ReportMetric(on.AvgRetxRatio, "retx-with-rbt")
	b.ReportMetric(off.AvgRetxRatio, "retx-no-rbt")
}

// BenchmarkAblationReceiverLimit exercises the §3.4 receiver limit in a
// dense single-hop star (every node is the root's child, > 20 receivers):
// the stock limit of 20 splits each packet into two Reliable Send
// invocations, an unlimited MRTS sends one long frame. The metrics show
// the overhead cost of splitting against the longer-MRTS exposure.
func BenchmarkAblationReceiverLimit(b *testing.B) {
	var lim, unlim RunResult
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.Nodes = 30 // a 29-receiver one-hop star
		cfg.Field = Rect{W: 70, H: 50}
		cfg.Rate = 20
		cfg.Seed = int64(i + 1)
		lim = Run(cfg)
		cfg.Limits.MaxReceivers = frame.MaxReceivers
		unlim = Run(cfg)
	}
	b.ReportMetric(lim.AvgOverheadRatio, "txoh-limit20")
	b.ReportMetric(unlim.AvgOverheadRatio, "txoh-unlimited")
	b.ReportMetric(lim.MRTSLens.Max(), "mrtsmax-limit20-B")
	b.ReportMetric(unlim.MRTSLens.Max(), "mrtsmax-unlimited-B")
}

// BenchmarkFeedbackDisciplines runs §2's protocol-design comparison:
// delivery ratio under contention for sender-initiated positive feedback
// (RMAC) against leader feedback (LBP) and receiver-initiated busy-tone
// NAKs (802.11MX-style).
func BenchmarkFeedbackDisciplines(b *testing.B) {
	var r, l, m RunResult
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.Rate = 60
		cfg.Seed = int64(i + 1)
		c := cfg
		c.Protocol = RMAC
		r = Run(c)
		c = cfg
		c.Protocol = LBP
		l = Run(c)
		c = cfg
		c.Protocol = MX
		m = Run(c)
	}
	b.ReportMetric(r.Delivery, "rmac-deliv")
	b.ReportMetric(l.Delivery, "lbp-deliv")
	b.ReportMetric(m.Delivery, "mx-deliv")
}

// BenchmarkWholeRun measures whole-run simulator performance per MAC
// protocol: event throughput (events/s), simulated-seconds per wall
// second, and the total allocation bill of a run (allocs/op — setup plus
// steady state; the steady-state share is asserted ≈0 separately by the
// experiment package's allocation regression test). scripts/bench.sh
// records this suite in BENCH_run.json so the numbers are tracked
// per-commit.
func BenchmarkWholeRun(b *testing.B) {
	protos := []struct {
		name string
		p    Protocol
	}{
		{"rmac", RMAC},
		{"bmmm", BMMM},
		{"bmw", BMW},
		{"lbp", LBP},
		{"mx", MX},
		{"dot11", DOT11},
	}
	for _, tc := range protos {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			var simulated sim.Time
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Protocol = tc.p
				cfg.Seed = int64(i + 1)
				res := Run(cfg)
				if res.Failed {
					b.Fatal(res.FailReason)
				}
				events += res.Events
				simulated += cfg.Horizon()
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
			b.ReportMetric(simulated.Seconds()/b.Elapsed().Seconds(), "simsec/s")
		})
	}
}

// benchShardedConfig is the metro workload of the sharded benchmarks:
// eight dense districts separated by more than the interference range,
// one multicast source per district, sized so district density stays near
// the paper's deployment. The district count is pinned at eight for every
// shard count, so shards1 and shards8 simulate the identical topology and
// traffic — the ns/op ratio between them is a pure engine comparison.
func benchShardedConfig(nodes, shards int) Config {
	cfg := DefaultConfig()
	cfg.Nodes = nodes
	cfg.Topo = TopoMetro
	cfg.Districts = 8
	cfg.Sources = 8
	cfg.Shards = shards
	// Field area scales with the population (≈1e-3 nodes/m² inside a
	// district, twice the paper's density); the default inter-district
	// gap of 1.5× the interference range keeps districts RF-decoupled.
	if nodes >= 10000 {
		cfg.Field = Rect{W: 5600, H: 2000}
	} else {
		cfg.Field = Rect{W: 2800, H: 600}
	}
	cfg.Rate = 40
	cfg.Packets = 64
	cfg.Warmup = 2 * sim.Second
	cfg.Drain = sim.Second
	return cfg
}

// BenchmarkWholeRunSharded measures the spatially sharded conservative
// engine (DESIGN.md §14) end to end at 1k and 10k nodes across shard
// counts. shards1 is the plain single-engine path on the same workload,
// so ns/op(shards1)/ns/op(shardsN) is the parallel speedup on the
// recording host; events/s counts events across all shards.
// scripts/bench.sh records this suite in BENCH_shard.json. Parallel
// speedup is bounded by the host's core count (the -GOMAXPROCS suffix in
// the raw benchmark output); a single-core host serialises the shard
// goroutines and measures only the cache-locality win of the smaller
// per-shard working sets.
func BenchmarkWholeRunSharded(b *testing.B) {
	for _, nodes := range []int{1000, 10000} {
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("n%d/shards%d", nodes, shards), func(b *testing.B) {
				b.ReportAllocs()
				var events uint64
				var simulated sim.Time
				for i := 0; i < b.N; i++ {
					cfg := benchShardedConfig(nodes, shards)
					cfg.Seed = int64(i + 1)
					res := Run(cfg)
					if res.Failed {
						b.Fatal(res.FailReason)
					}
					if res.Aborted {
						b.Fatal(res.AbortReason)
					}
					events += res.Events
					simulated += cfg.Horizon()
				}
				b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
				b.ReportMetric(simulated.Seconds()/b.Elapsed().Seconds(), "simsec/s")
			})
		}
	}
}

// BenchmarkWholeRunShardedMobile is BenchmarkWholeRunSharded with every
// node on a Speed1 random-waypoint trajectory (DESIGN.md §15): the run
// pays for epoch-boundary barriers, lookahead-matrix rebuilds, ghost-set
// diffs and live-position cross-shard physics on top of the stationary
// workload. ns_op(stationary)/ns_op(mobile) at equal shard counts is the
// mobility-epoch overhead; scripts/bench.sh records this suite alongside
// the stationary rows in BENCH_shard.json.
func BenchmarkWholeRunShardedMobile(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("n1000/shards%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			var simulated sim.Time
			for i := 0; i < b.N; i++ {
				cfg := benchShardedConfig(1000, shards)
				cfg.Scenario = Speed1
				cfg.Seed = int64(i + 1)
				res := Run(cfg)
				if res.Failed {
					b.Fatal(res.FailReason)
				}
				if res.Aborted {
					b.Fatal(res.AbortReason)
				}
				events += res.Events
				simulated += cfg.Horizon()
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
			b.ReportMetric(simulated.Seconds()/b.Elapsed().Seconds(), "simsec/s")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw event throughput of the
// kernel+PHY+MAC stack — the engineering metric for the simulator itself.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var events uint64
	var simulated sim.Time
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.Seed = int64(i + 1)
		res := Run(cfg)
		events += res.Events
		simulated += cfg.Horizon()
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(simulated.Seconds()/b.Elapsed().Seconds(), "simsec/s")
}
