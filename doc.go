// Package rmac is a from-scratch reproduction of "RMAC: A Reliable
// Multicast MAC Protocol for Wireless Ad Hoc Networks" (Weisheng Si and
// Chengzhi Li, ICPP 2004) as a reusable Go library.
//
// It contains:
//
//   - a discrete-event wireless network simulator with a disc-model
//     radio, per-receiver collision tracking, IEEE 802.11b PLCP timing,
//     and the paper's two narrow-band busy-tone channels (RBT and ABT);
//   - the RMAC protocol itself: Reliable and Unreliable Send services
//     covering unicast, multicast, and broadcast (§3);
//   - the compared baselines BMMM (Sun et al.) and BMW (Tang & Gerla);
//   - the evaluation substrate: simplified BLESS tree routing, the
//     single-source multicast application, random-waypoint mobility; and
//   - an experiment harness regenerating every figure of §4.
//
// This package is the public facade: it re-exports the experiment
// configuration and runners so downstream users need only
//
//	import "rmac"
//
//	cfg := rmac.DefaultConfig()
//	cfg.Rate = 40
//	res := rmac.Run(cfg)
//	fmt.Println(res.Delivery)
//
// The executables cmd/rmacsim (single run), cmd/rmacfigs (regenerate
// Figures 7–13) and cmd/treestat (§4.1.1 topology statistics) are thin
// wrappers over the same API, and examples/ contains runnable scenario
// walkthroughs.
package rmac
