package rmac_test

import (
	"fmt"
	"os"

	"rmac"
)

// ExampleRun simulates one small stationary network and prints whether
// the reliable multicast tree delivered everything.
func ExampleRun() {
	cfg := rmac.DefaultConfig()
	cfg.Nodes = 15
	cfg.Field = rmac.Rect{W: 200, H: 150}
	cfg.Rate = 10
	cfg.Packets = 20
	cfg.Seed = 3

	res := rmac.Run(cfg)
	fmt.Printf("generated=%d delivery>=0.99: %v drops=%v\n",
		res.Metrics.Generated, res.Delivery >= 0.99, res.AvgDropRatio == 0)
	// Output: generated=20 delivery>=0.99: true drops=true
}

// ExampleRunSweep compares RMAC against BMMM on identical placements, the
// paper's methodology.
func ExampleRunSweep() {
	cfg := rmac.DefaultConfig()
	cfg.Nodes = 15
	cfg.Field = rmac.Rect{W: 200, H: 150}
	cfg.Packets = 15

	points := rmac.RunSweep(rmac.Sweep{
		Base:      cfg,
		Protocols: []rmac.Protocol{rmac.RMAC, rmac.BMMM},
		Scenarios: []rmac.Scenario{rmac.Stationary},
		Rates:     []float64{20},
		Seeds:     1,
	})
	for _, p := range points {
		fmt.Printf("%v delivered everything: %v\n", p.Protocol, p.Delivery > 0.99)
	}
	// Output:
	// RMAC delivered everything: true
	// BMMM delivered everything: true
}

// ExampleWriteModelTable prints the §2 closed-form airtime comparison.
func ExampleWriteModelTable() {
	rmac.WriteModelTable(os.Stdout, 500, []int{1})
	// Output:
	// Per-exchange airtime (µs) for a 500-byte payload, collision-free, no contention:
	//    n       RMAC    (ovh)       BMMM    (ovh)        BMW    (ovh)        LBP    (ovh)         MX    (ovh)
	//    1       2386    0.092       2880    0.304       2728    0.236       2718    0.231       2411    0.092
}

// ExampleAnalyzeTopology reports the §4.1.1 tree statistics of the
// paper's deployment.
func ExampleAnalyzeTopology() {
	ts, ok := rmac.AnalyzeTopology(75, rmac.Rect{W: 500, H: 300}, 75, 1)
	fmt.Printf("connected=%v reaches-all=%v\n", ok, ts.Reachable == 75)
	// Output: connected=true reaches-all=true
}
