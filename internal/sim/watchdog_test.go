package sim

import (
	"strings"
	"testing"
	"time"
)

// TestWatchdogEventBudget: a self-rescheduling event (an "infinite"
// simulation) is stopped at the event budget with partial state intact.
func TestWatchdogEventBudget(t *testing.T) {
	e := NewEngine(1)
	var fired int
	var tick func()
	tick = func() {
		fired++
		e.After(Microsecond, tick)
	}
	e.After(0, tick)
	e.SetWatchdog(1000, 0)
	e.RunAll()
	if reason, aborted := e.Aborted(); !aborted {
		t.Fatal("runaway run not aborted")
	} else if !strings.Contains(reason, "event budget") {
		t.Fatalf("unexpected abort reason %q", reason)
	}
	if fired != 1000 {
		t.Fatalf("fired %d events, want exactly the budget of 1000", fired)
	}
	// The queue still holds the next pending event: partial state, not a
	// crash.
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

// TestWatchdogWallClock: a spinning run is stopped by the wall-clock
// deadline even when the event budget is unlimited.
func TestWatchdogWallClock(t *testing.T) {
	e := NewEngine(1)
	var tick func()
	tick = func() { e.After(Nanosecond, tick) }
	e.After(0, tick)
	e.SetWatchdog(0, time.Millisecond)
	done := make(chan struct{})
	go func() {
		e.RunAll()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("wall-clock watchdog did not stop the run")
	}
	if reason, aborted := e.Aborted(); !aborted || !strings.Contains(reason, "wall clock") {
		t.Fatalf("aborted=%v reason=%q", aborted, reason)
	}
}

// TestWatchdogUntrippedIsInvisible: arming a generous watchdog changes
// nothing about a normal run's schedule, clock, or event count.
func TestWatchdogUntrippedIsInvisible(t *testing.T) {
	run := func(arm bool) (Time, uint64) {
		e := NewEngine(7)
		for i := 0; i < 50; i++ {
			d := Time(e.Rand().Intn(1000)) * Microsecond
			e.After(d, func() {})
		}
		if arm {
			e.SetWatchdog(1<<40, time.Hour)
		}
		e.RunAll()
		return e.Now(), e.Processed
	}
	t1, p1 := run(false)
	t2, p2 := run(true)
	if t1 != t2 || p1 != p2 {
		t.Fatalf("watchdog perturbed run: (%v,%d) vs (%v,%d)", t1, p1, t2, p2)
	}
}

// TestQuiesceAuditRuns: the audit hook fires exactly once per Run/RunAll
// return, including watchdog aborts.
func TestQuiesceAuditRuns(t *testing.T) {
	e := NewEngine(1)
	audits := 0
	e.QuiesceAudit = func() { audits++ }
	e.After(Microsecond, func() {})
	e.Run(Second)
	if audits != 1 {
		t.Fatalf("audits = %d after Run, want 1", audits)
	}
	var tick func()
	tick = func() { e.After(Microsecond, tick) }
	e.After(0, tick)
	e.SetWatchdog(10, 0)
	e.RunAll()
	if audits != 2 {
		t.Fatalf("audits = %d after aborted RunAll, want 2", audits)
	}
}
