package sim

import (
	"math/rand"
	"testing"
)

// TestWheelDispatchOrder pins the core wheel contract: any mix of deltas —
// level 0, level 1, heap overflow, and below-frontier placements — fires in
// exact (time, seq) order.
func TestWheelDispatchOrder(t *testing.T) {
	e := NewEngine(1)
	rng := rand.New(rand.NewSource(7))
	const n = 5000
	type fired struct {
		at  Time
		seq int
	}
	var got []fired
	for i := 0; i < n; i++ {
		// Deltas spanning every placement class: sub-slot, level-0,
		// level-1, and beyond the 67 ms horizon.
		var d Time
		switch rng.Intn(4) {
		case 0:
			d = Time(rng.Int63n(200)) // sub-slot / frontier
		case 1:
			d = Time(rng.Int63n(60_000)) // level 0
		case 2:
			d = Time(rng.Int63n(60_000_000)) // level 1
		default:
			d = Time(rng.Int63n(10_000_000_000)) // overflow
		}
		i := i
		at := d
		e.Schedule(at, func() { got = append(got, fired{at, i}) })
	}
	e.RunAll()
	if len(got) != n {
		t.Fatalf("fired %d events, want %d", len(got), n)
	}
	for i := 1; i < len(got); i++ {
		if got[i].at < got[i-1].at {
			t.Fatalf("order violation at %d: %v after %v", i, got[i].at, got[i-1].at)
		}
		if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
			t.Fatalf("seq violation at %d: schedule #%d after #%d at t=%v",
				i, got[i].seq, got[i-1].seq, got[i].at)
		}
	}
}

// TestWheelCancelRescheduleAcrossCascade cancels an event that sits in a
// level-1 slot, advances the clock across the cascade boundary, and
// reschedules into the same window — the stale handle must stay dead and
// the new one fire exactly once.
func TestWheelCancelRescheduleAcrossCascade(t *testing.T) {
	e := NewEngine(1)
	var fired []string
	// Place an event deep in level 1 (10 ms out).
	ev := e.Schedule(10*Millisecond, func() { fired = append(fired, "old") })
	// A marker just before the level-1 boundary of the first event.
	e.Schedule(9*Millisecond, func() {
		ev.Cancel()
		// Reschedule into the already-entered window: 1 ms out lands in
		// level 0 or level 1 depending on the frontier — both must work.
		e.After(1*Millisecond, func() { fired = append(fired, "new") })
	})
	e.RunAll()
	if len(fired) != 1 || fired[0] != "new" {
		t.Fatalf("fired = %v, want [new]", fired)
	}
	if ev.Pending() {
		t.Fatal("cancelled event still pending")
	}
}

// TestWheelTimerRestartAcrossLevels restarts one Timer through every
// horizon class: level 0, level 1, overflow, and back. Each restart must
// cancel the previous arming (generation check) and the timer must fire
// exactly once, at the final deadline.
func TestWheelTimerRestartAcrossLevels(t *testing.T) {
	e := NewEngine(1)
	count := 0
	tm := NewTimer(e, func() { count++ })
	tm.Start(10 * Microsecond)  // level 0
	tm.Start(10 * Millisecond)  // level 1
	tm.Start(500 * Millisecond) // heap overflow
	tm.Start(20 * Microsecond)  // back to level 0
	if at, ok := tm.Deadline(); !ok || at != 20*Microsecond {
		t.Fatalf("Deadline = %v,%v; want 20µs,true", at, ok)
	}
	e.RunAll()
	if count != 1 {
		t.Fatalf("timer fired %d times, want 1", count)
	}
	if e.Now() != 20*Microsecond {
		t.Fatalf("clock = %v, want 20µs", e.Now())
	}
}

// TestWheelLevelRolloverTicks schedules events exactly on level-boundary
// instants: multiples of the level-0 window (a level-1 slot start) and of
// the full level-1 horizon, including off-by-one neighbours.
func TestWheelLevelRolloverTicks(t *testing.T) {
	e := NewEngine(1)
	l0Window := Time(l0Slots << l0Shift) // 65.536 µs
	l1Window := Time(l1Slots << l1Shift) // ≈ 67 ms
	var ats []Time
	for _, base := range []Time{l0Window, 2 * l0Window, l1Window, l1Window + l0Window} {
		ats = append(ats, base-1, base, base+1)
	}
	var got []Time
	for _, at := range ats {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	e.RunAll()
	if len(got) != len(ats) {
		t.Fatalf("fired %d, want %d", len(got), len(ats))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("rollover order violation: %v after %v", got[i], got[i-1])
		}
	}
	if e.Now() != ats[len(ats)-1] {
		t.Fatalf("clock = %v, want %v", e.Now(), ats[len(ats)-1])
	}
}

// TestWheelMillionEventStress pushes a million events with the full delta
// spread through the arena — schedules, cancels, restarts, cascades — and
// cross-checks the survivor count. This is the pool-reuse soak for the
// wheel path: generation counters must keep every stale handle inert.
func TestWheelMillionEventStress(t *testing.T) {
	if testing.Short() {
		t.Skip("million-event soak")
	}
	e := NewEngine(42)
	rng := rand.New(rand.NewSource(99))
	const n = 1_000_000
	fired := 0
	var evs []Event
	deltas := []int64{100, 5_000, 70_000, 3_000_000, 80_000_000, 400_000_000}
	for i := 0; i < n; i++ {
		d := Time(rng.Int63n(deltas[rng.Intn(len(deltas))]))
		ev := e.Schedule(d, func() { fired++ })
		// Cancel ~every third, re-arming half of those at a new horizon —
		// handle churn across every wheel level.
		switch rng.Intn(6) {
		case 0:
			ev.Cancel()
		case 1:
			ev.Cancel()
			evs = append(evs, e.Schedule(d/2, func() { fired++ }))
		default:
			evs = append(evs, ev)
		}
	}
	e.RunAll()
	for _, ev := range evs {
		if ev.Pending() {
			t.Fatal("event still pending after RunAll")
		}
		ev.Cancel() // stale handles must be no-ops
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after RunAll", e.Pending())
	}
	if fired == 0 || fired > n {
		t.Fatalf("fired = %d, implausible", fired)
	}
	// Rerun with the same seed: the count must be bit-identical.
	e2 := NewEngine(42)
	rng2 := rand.New(rand.NewSource(99))
	fired2 := 0
	for i := 0; i < n; i++ {
		d := Time(rng2.Int63n(deltas[rng2.Intn(len(deltas))]))
		ev := e2.Schedule(d, func() { fired2++ })
		switch rng2.Intn(6) {
		case 0:
			ev.Cancel()
		case 1:
			ev.Cancel()
			e2.Schedule(d/2, func() { fired2++ })
		}
	}
	e2.RunAll()
	if fired2 != fired {
		t.Fatalf("same-seed rerun fired %d, first run %d", fired2, fired)
	}
}

// TestWheelFrontierSnapAfterIdle exercises the lazy frontier snap: after
// the wheel drains and the clock advances far via heap-only events, a new
// short-delta schedule must land in the wheel (not the heap) and fire at
// the right instant.
func TestWheelFrontierSnapAfterIdle(t *testing.T) {
	e := NewEngine(1)
	var trace []Time
	e.Schedule(5*Second, func() {
		// The wheel has been empty for 5 simulated seconds; its frontier
		// is far behind. This must snap it to now.
		e.After(256, func() { trace = append(trace, e.Now()) })
	})
	e.RunAll()
	if len(trace) != 1 || trace[0] != 5*Second+256 {
		t.Fatalf("trace = %v, want [5s+256ns]", trace)
	}
}
