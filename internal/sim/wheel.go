package sim

import (
	"math/bits"
	"slices"
)

// Hierarchical timing wheel — the scheduler front-end.
//
// The dominant timer traffic of a MAC simulation is short-horizon and
// cancel-heavy: SIFS/DIFS gaps, backoff slots, per-neighbor propagation
// events and RMAC's T_wf_rbt/T_wf_rdata/T_wf_abt tone windows are armed
// microseconds-to-milliseconds ahead and very often cancelled (a restart,
// a response arriving, an abort) before they fire. A comparison-based heap
// charges O(log n) with cache-missing sift chains for every one of those;
// a timing wheel charges O(1).
//
// The engine therefore routes every Schedule/ScheduleCall by
// delta-to-now into one of
//
//	level 0:  128 ns × 512 slots ≈ 65.5 µs  (propagation, SIFS, slots, tones)
//	level 1: 65.5 µs × 1024 slots ≈ 67 ms   (backoff, data airtime, retries)
//	overflow: the indexed 4-ary min-heap     (beacons, app timers, horizon)
//
// The level-0 slot width is deliberately smaller than the largest
// propagation delay (75 m range → 250 ns): per-neighbor rx-start events —
// the most frequent event class in a dense network — must land at or
// ahead of the frontier slot to take the wheel path instead of falling
// through to the heap.
//
// Slots are intrusive doubly-linked lists threaded through the eventNode
// arena (fields next/prev/slot), so the wheel allocates nothing. Slot
// widths and counts are powers of two: slot numbers are shifts of the
// absolute fire time, and occupancy bitmaps (one bit per slot) let the
// frontier jump over empty ranges in a few word scans.
//
// Dispatch path. When the frontier reaches an occupied level-0 slot, the
// slot's handful of events is insertion-sorted by (time, seq) and appended
// to the engine's "due list" (level-1 slots first cascade into level-0).
// Slots flush in strictly increasing slot-start order and every event in a
// slot fires before the next slot starts, so appending sorted slot bursts
// yields the exact global (time, seq) order — the due list is consumed
// from its head in O(1) per event, no comparisons. Only two event classes
// ever touch the heap: long-horizon overflow, and events scheduled inside
// the already-flushed frontier window. The dispatcher takes whichever of
// due-list head and heap top orders first under (time, seq).
//
// Determinism. (time, seq) is a total order — seq is unique — so any
// mechanism that dispatches in that order is bit-identical to any other.
// The due list realises it by sorted construction, the heap by
// comparison, and the dispatcher's two-way merge preserves it across the
// two. Flush and cascade order therefore cannot affect behaviour, which
// the golden determinism tests pin against the heap-only kernel. The
// payoff is cost: an event cancelled while still in a wheel slot or on
// the due list is unlinked in O(1) and never touches the heap at all, and
// a fired short-horizon event costs two O(1) list splices plus a bounded
// insertion sort over its (typically single-digit) slot cohort instead of
// an O(log n) sift chain.
//
// Invariants (checked informally throughout):
//
//   - cur1 == cur0 >> l0Bits, and cur0 only advances (advance0).
//   - Every occupied level-0 slot has absolute number in [cur0, cur0+512);
//     every occupied level-1 slot in (cur1, cur1+1024). Slot cur1 itself is
//     always empty: it cascades the moment the frontier enters it, and an
//     insert whose level-1 slot equals cur1 always fits the level-0 window.
//   - wheelMin is a lower bound on the earliest in-slot event's fire time
//     (its slot's start). Cancels may leave it stale-low, which costs at
//     most one redundant bitmap scan, never a missed event.
//   - Every due-list event precedes (in (time, seq)) every in-slot event,
//     and the due list itself is (time, seq)-sorted.
const (
	l0Shift = 7                // level-0 slot width: 128 ns
	l0Bits  = 9                // 512 slots
	l0Slots = 1 << l0Bits      //
	l1Shift = l0Shift + l0Bits // level-1 slot width: 65.536 µs
	l1Bits  = 10               // 1024 slots
	l1Slots = 1 << l1Bits      //
	l0Words = l0Slots / 64     //
	l1Words = l1Slots / 64     //
	l0Mask  = l0Slots - 1      //
	l1Mask  = l1Slots - 1      //
	maxTime = Time(1<<63 - 1)  //
	slotL1  = int32(1) << 16   // level flag in eventNode.slot
)

// posWheel marks an eventNode that lives in a wheel slot; posDue one on
// the due list (pos is its heap position otherwise, or -1 when free).
const (
	posWheel int32 = -2
	posDue   int32 = -3
)

// wheel is the two-level front-end state embedded in Engine. The arrays
// are a few KiB and are touched sparsely; all hot scalars live in Engine
// itself (wheelCount, wheelMin, cur0, cur1, dueHead, dueTail).
type wheel struct {
	occ0         [l0Words]uint64
	occ1         [l1Words]uint64
	head0, tail0 [l0Slots]int32
	head1, tail1 [l1Slots]int32
}

func (w *wheel) init() {
	for i := range w.head0 {
		w.head0[i], w.tail0[i] = -1, -1
	}
	for i := range w.head1 {
		w.head1[i], w.tail1[i] = -1, -1
	}
}

// enqueue routes a freshly allocated slot id (node n, fire time at) to a
// wheel level or the heap. Called by alloc with at >= e.now.
func (e *Engine) enqueue(id int32, n *eventNode, at Time) {
	if e.wheelCount == 0 {
		// With the wheel's slots empty nothing can cascade or flush, so the
		// frontier may lag far behind after an idle stretch; snap it to
		// now so the windows cover [now, now+65µs) and [.., now+67ms).
		if c := uint64(e.now) >> l0Shift; c > e.cur0 {
			e.cur0 = c
			e.cur1 = c >> l0Bits
		}
	}
	s0 := uint64(at) >> l0Shift
	if s0 < e.cur0 {
		// Due inside the already-flushed frontier slot: straight to the
		// heap, it fires within the current 128 ns window.
		e.heapPush(id, at)
		if e.tstats != nil {
			e.tstats.place(placeDue, at-e.now)
		}
		return
	}
	if s0-e.cur0 < l0Slots {
		// Level-0 tail append, inlined: this is the hottest placement.
		idx := s0 & l0Mask
		t := e.tw.tail0[idx]
		n.pos = posWheel
		n.slot = int32(idx)
		n.prev = t
		n.next = -1
		if t >= 0 {
			e.nodes[t].next = id
		} else {
			e.tw.head0[idx] = id
			e.tw.occ0[idx>>6] |= 1 << (idx & 63)
		}
		e.tw.tail0[idx] = id
		e.wheelCount++
		// wheelMin == min(nb0, nb1), so a start that does not lower nb0
		// cannot lower wheelMin either: one compare decides both updates.
		if start := Time(s0 << l0Shift); start < e.nb0 {
			e.ns0, e.nb0 = s0, start
			if start < e.wheelMin {
				e.wheelMin = start
			}
		}
		if e.tstats != nil {
			e.tstats.place(placeL0, at-e.now)
		}
		return
	}
	s1 := uint64(at) >> l1Shift
	if s1-e.cur1 < l1Slots {
		idx := s1 & l1Mask
		t := e.tw.tail1[idx]
		n.pos = posWheel
		n.slot = int32(idx) | slotL1
		n.prev = t
		n.next = -1
		if t >= 0 {
			e.nodes[t].next = id
		} else {
			e.tw.head1[idx] = id
			e.tw.occ1[idx>>6] |= 1 << (idx & 63)
		}
		e.tw.tail1[idx] = id
		e.wheelCount++
		e.count1++
		if start := Time(s1 << l1Shift); start < e.nb1 {
			e.ns1, e.nb1 = s1, start
			if start < e.wheelMin {
				e.wheelMin = start
			}
		}
		if e.tstats != nil {
			e.tstats.place(placeL1, at-e.now)
		}
		return
	}
	e.heapPush(id, at)
	if e.tstats != nil {
		e.tstats.place(placeOverflow, at-e.now)
	}
}

// wheelRemove unlinks a cancelled event from its slot in O(1). The caller
// releases the arena slot. The scan cache survives unless the removal
// empties the very slot it points at; wheelMin may be left stale-low,
// which is safe (see invariants).
func (e *Engine) wheelRemove(id int32) {
	n := &e.nodes[id]
	if n.slot&slotL1 == 0 {
		idx := uint64(n.slot) & l0Mask
		if n.prev >= 0 {
			e.nodes[n.prev].next = n.next
		} else {
			e.tw.head0[idx] = n.next
		}
		if n.next >= 0 {
			e.nodes[n.next].prev = n.prev
		} else {
			e.tw.tail0[idx] = n.prev
		}
		if n.prev < 0 && n.next < 0 { // slot now empty
			e.tw.occ0[idx>>6] &^= 1 << (idx & 63)
			if idx == e.ns0&l0Mask {
				e.scanValid = false
			}
		}
	} else {
		idx := uint64(n.slot&^slotL1) & l1Mask
		e.count1--
		if n.prev >= 0 {
			e.nodes[n.prev].next = n.next
		} else {
			e.tw.head1[idx] = n.next
		}
		if n.next >= 0 {
			e.nodes[n.next].prev = n.prev
		} else {
			e.tw.tail1[idx] = n.prev
		}
		if n.prev < 0 && n.next < 0 { // slot now empty
			e.tw.occ1[idx>>6] &^= 1 << (idx & 63)
			if idx == e.ns1&l1Mask {
				e.scanValid = false
			}
		}
	}
	e.wheelCount--
	if e.wheelCount == 0 {
		e.resetScan()
	}
}

// resetScan restores the exact-empty scan cache: with no in-slot events
// the cache is trivially exact, and the min-updates in enqueue keep it
// exact from there without ever rescanning.
func (e *Engine) resetScan() {
	e.nb0, e.nb1 = maxTime, maxTime
	e.wheelMin = maxTime
	e.scanValid = true
}

// dueRemove unlinks a cancelled event from the due list in O(1). The
// caller releases the arena slot.
func (e *Engine) dueRemove(id int32) {
	n := &e.nodes[id]
	if n.prev >= 0 {
		e.nodes[n.prev].next = n.next
	} else {
		e.dueHead = n.next
	}
	if n.next >= 0 {
		e.nodes[n.next].prev = n.prev
	} else {
		e.dueTail = n.prev
	}
	e.dueCount--
}

// firstOcc scans an occupancy bitmap circularly from absolute slot cur,
// returning the absolute number of the first occupied slot and its start
// time, or maxTime when the level is empty. All set bits are within the
// level's window by invariant, so circular distance recovers the absolute
// slot number. len(occ) is a power of two, so the wrap is a mask, not a
// divide.
func firstOcc(occ []uint64, cur uint64, mask uint64, shift uint) (uint64, Time) {
	wordMask := uint64(len(occ)) - 1
	base := cur & mask
	w := base >> 6
	word := occ[w] &^ (1<<(base&63) - 1)
	for i := uint64(0); ; i++ {
		if word != 0 {
			idx := w<<6 + uint64(bits.TrailingZeros64(word))
			abs := cur + ((idx - base) & mask)
			return abs, Time(abs << shift)
		}
		if i == wordMask+1 {
			return 0, maxTime
		}
		w = (w + 1) & wordMask
		word = occ[w]
		if w == base>>6 {
			word &= 1<<(base&63) - 1 // wrapped: only bits below the start
		}
	}
}

// advance0 moves the level-0 frontier forward to absolute slot `to`,
// cascading every level-1 slot it enters. Cascaded events land in level-0
// slots at or after the new frontier by construction (a level-1 slot
// spans exactly one full level-0 window).
func (e *Engine) advance0(to uint64) {
	if to>>l0Bits == e.cur1 {
		// No level-1 boundary crossed: just move the level-0 frontier.
		if to > e.cur0 {
			e.cur0 = to
		}
		return
	}
	for next1 := e.cur1 + 1; next1 <= to>>l0Bits; next1++ {
		e.cur0 = next1 << l0Bits
		e.cur1 = next1
		idx := next1 & l1Mask
		if e.tw.occ1[idx>>6]&(1<<(idx&63)) != 0 {
			e.cascade(int32(idx))
		}
	}
	if to > e.cur0 {
		e.cur0 = to
	}
}

// cascade redistributes one due level-1 slot into level-0 slots.
func (e *Engine) cascade(idx int32) {
	id := e.tw.head1[idx]
	e.tw.head1[idx], e.tw.tail1[idx] = -1, -1
	e.tw.occ1[idx>>6] &^= 1 << (uint(idx) & 63)
	for id >= 0 {
		n := &e.nodes[id]
		next := n.next
		e.count1--
		s0 := uint64(n.at) >> l0Shift
		i0 := int32(s0 & l0Mask)
		n.slot = i0
		n.prev = e.tw.tail0[i0]
		n.next = -1
		if t := e.tw.tail0[i0]; t >= 0 {
			e.nodes[t].next = id
		} else {
			e.tw.head0[i0] = id
			e.tw.occ0[i0>>6] |= 1 << (uint(i0) & 63)
		}
		e.tw.tail0[i0] = id
		id = next
	}
}

// flushDue empties one due level-0 slot onto the tail of the due list in
// (time, seq) order. A slot spans 128 ns and slots flush in increasing
// start order, so everything already on the due list precedes everything
// in this slot: sorting the slot's own burst (insertion sort from the
// chain tail — bursts are small and near-sorted, cascades permitting) and
// appending preserves the global total order.
func (e *Engine) flushDue(abs uint64) {
	idx := abs & l0Mask
	id := e.tw.head0[idx]
	if e.tw.tail0[idx] == id {
		// Single-event slot — the overwhelmingly common case: a bare
		// append, no sort pass.
		e.tw.head0[idx], e.tw.tail0[idx] = -1, -1
		e.tw.occ0[idx>>6] &^= 1 << (idx & 63)
		n := &e.nodes[id]
		n.pos = posDue
		n.next = -1
		n.prev = e.dueTail
		if e.dueTail >= 0 {
			e.nodes[e.dueTail].next = id
		} else {
			e.dueHead = id
		}
		e.dueTail = id
		e.wheelCount--
		e.dueCount++
		return
	}
	e.tw.head0[idx], e.tw.tail0[idx] = -1, -1
	e.tw.occ0[idx>>6] &^= 1 << (idx & 63)
	start := Time(abs << l0Shift)
	h, t, k := e.sortCohort(id, start)
	if k < 0 {
		h, t = e.sortCohortLarge(id, start)
		k = len(e.flushBuf)
	}
	e.wheelCount -= k
	e.dueCount += k
	if e.dueTail >= 0 {
		e.nodes[e.dueTail].next = h
		e.nodes[h].prev = e.dueTail
	} else {
		e.dueHead = h
	}
	e.dueTail = t
}

// flushSortCap bounds the insertion-sorted cohort size; larger bursts —
// far outside the simulator's own profile, but reachable through the
// public Schedule API — divert to the O(k log k) path so a same-window
// pile-up cannot go quadratic.
const flushSortCap = 32

// flushEnt is one key extracted for the cohort sorts: sorting a compact
// array and relinking once beats insertion-sorting the intrusive list,
// which chases a 64-byte node line per comparison. key packs the event's
// offset within its 1<<l0Shift ns slot (top bits) over the low
// seqKeyBits of its sequence number, so (time, seq) order within one
// cohort collapses to a single uint64 compare. Two cohort members can
// only collide in the truncated seq after 2^seqKeyBits intervening
// events — unreachable in any run.
type flushEnt struct {
	key uint64
	id  int32
}

const seqKeyBits = 64 - l0Shift

// packKey builds a flushEnt key for a node in the slot starting at start.
func packKey(at Time, seq uint64, start Time) uint64 {
	return uint64(at-start)<<seqKeyBits | seq&(1<<seqKeyBits-1)
}

// sortCohort insertion-sorts a flushed slot chain by (time, seq) —
// bursts are small and near-sorted, cascades permitting — and returns
// the sorted chain's head, tail and length. k = -1 means the cohort
// exceeded flushSortCap and the caller must divert to sortCohortLarge
// (the chain's links are still intact in that case).
func (e *Engine) sortCohort(id int32, start Time) (h, t int32, k int) {
	var a [flushSortCap]flushEnt
	n := 0
	for p := id; p >= 0; {
		nd := &e.nodes[p]
		if n == flushSortCap {
			return -1, -1, -1
		}
		nd.pos = posDue
		key := packKey(nd.at, nd.seq, start)
		i := n
		for i > 0 && a[i-1].key > key {
			a[i] = a[i-1]
			i--
		}
		a[i] = flushEnt{key: key, id: p}
		n++
		p = nd.next
	}
	for i := 0; i < n; i++ {
		nd := &e.nodes[a[i].id]
		if i > 0 {
			nd.prev = a[i-1].id
		} else {
			nd.prev = -1
		}
		if i+1 < n {
			nd.next = a[i+1].id
		} else {
			nd.next = -1
		}
	}
	return a[0].id, a[n-1].id, n
}

// sortCohortLarge handles large slot cohorts (dense rx fan-outs land
// hundreds of deliveries in a 128 ns window). The chain's append order
// is already sequence-ascending within each segment (direct pushes, one
// cascaded block), so a stable counting sort on the 1<<l0Shift possible
// slot offsets does nearly all the work in two linear passes; each
// same-offset group then only needs a comparison sort when a cascade
// seam actually inverted it, which the ascending check detects. Only
// the one-time growth of the two reusable buffers can allocate.
func (e *Engine) sortCohortLarge(id int32, start Time) (int32, int32) {
	buf := e.flushBuf[:0]
	for p := id; p >= 0; {
		n := &e.nodes[p]
		n.pos = posDue
		buf = append(buf, flushEnt{key: packKey(n.at, n.seq, start), id: p})
		p = n.next
	}
	e.flushBuf = buf
	if cap(e.flushScratch) < len(buf) {
		e.flushScratch = make([]flushEnt, len(buf))
	}
	out := e.flushScratch[:len(buf)]

	// Stable counting sort by offset: count, prefix-sum, scatter.
	var cnt [1 << l0Shift]int32
	for i := range buf {
		cnt[buf[i].key>>seqKeyBits]++
	}
	var sum int32
	for i := range cnt {
		cnt[i], sum = sum, sum+cnt[i]
	}
	for i := range buf {
		o := buf[i].key >> seqKeyBits
		out[cnt[o]] = buf[i]
		cnt[o]++
	}

	// Groups that a cascade seam left out of sequence order get a real
	// sort; the scatter was stable, so an untouched group is a couple of
	// ascending runs at most.
	for lo := 0; lo < len(out); {
		hi := lo + 1
		sorted := true
		for hi < len(out) && out[hi].key>>seqKeyBits == out[lo].key>>seqKeyBits {
			sorted = sorted && out[hi-1].key < out[hi].key
			hi++
		}
		if !sorted {
			slices.SortFunc(out[lo:hi], func(a, b flushEnt) int {
				if a.key < b.key {
					return -1
				}
				return 1
			})
		}
		lo = hi
	}

	for i := range out {
		n := &e.nodes[out[i].id]
		if i > 0 {
			n.prev = out[i-1].id
		} else {
			n.prev = -1
		}
		if i+1 < len(out) {
			n.next = out[i+1].id
		} else {
			n.next = -1
		}
	}
	return out[0].id, out[len(out)-1].id
}

// syncWheel establishes the dispatch invariant: after it returns, the
// (time, seq)-smaller of due-list head and heap top — takeMin's choice —
// is the global minimum. It flushes (cascading as needed) exactly the
// slots whose start time does not exceed that bound: any of those could
// hold an event ordered before it; any slot starting strictly later
// cannot.
//
// Callers may skip the call entirely while the due list is non-empty:
// due events come from flushed slots strictly below the frontier, so
// every one of them precedes every in-slot event, and heap interleavings
// are arbitrated by takeMin's comparison.
func (e *Engine) syncWheel() {
	for e.wheelCount > 0 {
		lim := maxTime
		if e.dueHead >= 0 {
			lim = e.nodes[e.dueHead].at
		}
		if len(e.order) > 0 && e.order[0].at < lim {
			lim = e.order[0].at
		}
		if e.wheelMin > lim {
			return // fast path: no in-slot event can precede the bound
		}
		if !e.scanValid {
			e.rescan()
			if e.wheelMin > lim {
				return
			}
		}
		if e.nb1 < e.nb0 {
			// The earliest in-slot event hides in a level-1 slot strictly
			// before any level-0 one: enter it, which cascades it, and
			// rescan at level-0 resolution.
			e.advance0(e.ns1 << l0Bits)
			e.rescan()
			continue
		}
		s0 := e.ns0
		if (s0+1)>>l0Bits == e.cur1 {
			// Fast path: the slot and its successor sit inside the current
			// level-1 window, so neither advance can cascade — the frontier
			// move is a single store.
			e.flushDue(s0)
			e.cur0 = s0 + 1
			if e.wheelCount == 0 {
				e.resetScan()
			} else {
				e.rescan0()
			}
			return
		}
		pre1 := e.cur1
		e.advance0(s0)
		e.flushDue(s0)
		e.advance0(s0 + 1)
		if e.wheelCount == 0 {
			e.resetScan()
		} else if e.cur1 != pre1 {
			// advance0 crossed a level-1 boundary and may have cascaded:
			// both levels changed.
			e.rescan()
		} else {
			e.rescan0()
		}
		// The flush moved at least one event to the due list, so the next
		// bound check would return anyway: every due event precedes every
		// in-slot event.
		return
	}
	e.wheelMin = maxTime
}

// rescan recomputes the scan cache for both levels and the exact wheelMin.
func (e *Engine) rescan() {
	e.nb1 = maxTime
	if e.count1 > 0 {
		e.ns1, e.nb1 = firstOcc(e.tw.occ1[:], e.cur1, l1Mask, l1Shift)
	}
	e.rescan0()
}

// rescan0 recomputes the level-0 half of the scan cache (level 1 must be
// current) and the exact wheelMin. The first word is probed inline: the
// frontier usually sits within a word of the next occupied slot.
func (e *Engine) rescan0() {
	base := e.cur0 & l0Mask
	if word := e.tw.occ0[base>>6] &^ (1<<(base&63) - 1); word != 0 {
		idx := base>>6<<6 + uint64(bits.TrailingZeros64(word))
		e.ns0 = e.cur0 + ((idx - base) & l0Mask)
		e.nb0 = Time(e.ns0 << l0Shift)
	} else if w := (base>>6 + 1) & (l0Words - 1); e.tw.occ0[w] != 0 {
		// Second-word probe: timer gaps of a few µs routinely straddle a
		// 64-slot word boundary, and the circular-distance recovery below
		// stays valid for any word other than the frontier's own.
		idx := w<<6 + uint64(bits.TrailingZeros64(e.tw.occ0[w]))
		e.ns0 = e.cur0 + ((idx - base) & l0Mask)
		e.nb0 = Time(e.ns0 << l0Shift)
	} else {
		e.ns0, e.nb0 = firstOcc(e.tw.occ0[:], e.cur0, l0Mask, l0Shift)
	}
	if e.nb0 < e.nb1 {
		e.wheelMin = e.nb0
	} else {
		e.wheelMin = e.nb1
	}
	e.scanValid = true
}
