// Package sim provides the discrete-event simulation kernel used by every
// other layer of the wireless network simulator: a virtual clock, an event
// queue ordered by (time, sequence), cancellable timers, and a deterministic
// per-run random number source.
//
// A single Engine drives one simulation run on one goroutine. Determinism is
// guaranteed by ordering simultaneous events by their scheduling sequence
// number and by deriving all randomness from the engine's seeded source.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is the simulated clock in nanoseconds since the start of the run.
type Time int64

// Common time constants expressed as Time values.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Duration converts a standard library duration into simulated time units.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds reports the time as floating-point seconds, for metric output.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports the time as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	return time.Duration(t).String()
}

// Event is a cancellable scheduled callback. The zero value is invalid;
// events are created by Engine.Schedule and friends.
type Event struct {
	at       Time
	seq      uint64
	index    int // heap index, -1 when not queued
	canceled bool
	fn       func()
}

// At reports the simulated time the event fires at.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. Cancel must only be called from the
// simulation goroutine.
func (e *Event) Cancel() {
	e.canceled = true
}

// Canceled reports whether the event has been cancelled.
func (e *Event) Canceled() bool { return e.canceled }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulator instance. It is not safe for
// concurrent use; one engine belongs to one goroutine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	rng     *rand.Rand
	stopped bool
	// Processed counts events executed, for instrumentation.
	Processed uint64
}

// NewEngine creates an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule runs fn at absolute time at. Scheduling into the past panics:
// that is always a logic error in a protocol implementation.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After runs fn after delay d from the current time.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.Schedule(e.now+d, fn)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue empties, the horizon is passed, or
// Stop is called. Events scheduled exactly at the horizon still run.
func (e *Engine) Run(horizon Time) {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		ev := e.queue[0]
		if ev.at > horizon {
			// Leave future events queued; advance clock to horizon so
			// callers observe a consistent end time.
			e.now = horizon
			return
		}
		heap.Pop(&e.queue)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.Processed++
		ev.fn()
	}
	if len(e.queue) == 0 && e.now < horizon {
		e.now = horizon
	}
}

// RunAll executes events until the queue empties or Stop is called.
func (e *Engine) RunAll() {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.Processed++
		ev.fn()
	}
}

// Pending reports the number of queued (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.queue) }
