// Package sim provides the discrete-event simulation kernel used by every
// other layer of the wireless network simulator: a virtual clock, an event
// queue ordered by (time, sequence), cancellable timers, and a deterministic
// per-run random number source.
//
// A single Engine drives one simulation run on one goroutine. Determinism is
// guaranteed by ordering simultaneous events by their scheduling sequence
// number and by deriving all randomness from the engine's seeded source.
//
// The kernel is allocation-free in steady state: events live in a per-engine
// arena recycled through a free list, the priority queue is a hand-rolled
// indexed 4-ary min-heap of arena indices (no container/heap interface
// boxing), and hot callers can schedule closure-free callbacks through the
// Caller interface instead of func() closures. Recycled slots carry a
// generation counter, so an Event handle that outlives its slot's lifetime
// (a cancel after the event fired, for example) is detected and ignored
// rather than corrupting an unrelated event.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is the simulated clock in nanoseconds since the start of the run.
type Time int64

// Common time constants expressed as Time values.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Duration converts a standard library duration into simulated time units.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds reports the time as floating-point seconds, for metric output.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports the time as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	return time.Duration(t).String()
}

// Caller receives tagged event callbacks. Scheduling against a Caller
// instead of a closure keeps the hot path allocation-free: the engine
// stores the interface value (a single pointer for pointer receivers) and
// the tag inside the pooled event slot, so no func() object is created.
// The tag distinguishes the different events one object can receive.
type Caller interface {
	Call(tag int32)
}

// eventNode is one pooled event slot in the engine's arena. Slots are
// addressed by index, never by long-lived pointer, so the arena can grow.
type eventNode struct {
	at     Time
	seq    uint64
	fn     func() // closure form; nil when target is used
	target Caller // tagged form; nil when fn is used
	gen    uint32 // incremented on every release; stale-handle detection
	pos    int32  // position in the heap order, -1 when free
	tag    int32
}

// Event is a cancellable handle to a scheduled callback, returned by
// Engine.Schedule and friends. It is a small value (not a pointer into the
// kernel): copying it is cheap and allocation-free. The zero Event is
// inert: Cancel is a no-op and Pending reports false.
type Event struct {
	eng *Engine
	id  int32
	gen uint32
}

// canceledID marks a handle whose Cancel method has been invoked.
const canceledID int32 = -2

// node resolves the handle to its live arena slot, or nil if the handle is
// zero, cancelled, or stale (the event already fired or was cancelled and
// its slot moved on to a later generation).
func (e Event) node() *eventNode {
	if e.eng == nil || e.id < 0 {
		return nil
	}
	n := &e.eng.nodes[e.id]
	if n.gen != e.gen {
		return nil
	}
	return n
}

// At reports the simulated time the event fires at; 0 if the event is no
// longer pending.
func (e Event) At() Time {
	if n := e.node(); n != nil {
		return n.at
	}
	return 0
}

// Pending reports whether the event is still queued to fire.
func (e Event) Pending() bool { return e.node() != nil }

// Cancel prevents the event from firing and releases its slot immediately.
// Cancelling an already-fired, already-cancelled, or zero Event is a safe
// no-op: generation counters detect stale handles, so a late Cancel can
// never affect an unrelated event that recycled the same slot. Cancel must
// only be called from the simulation goroutine.
func (e *Event) Cancel() {
	if n := e.node(); n != nil {
		e.eng.removeAt(n.pos)
	}
	if e.eng != nil {
		e.id = canceledID
	}
}

// Canceled reports whether Cancel has been called through this handle.
func (e Event) Canceled() bool { return e.eng != nil && e.id == canceledID }

// Engine is a discrete-event simulator instance. It is not safe for
// concurrent use; one engine belongs to one goroutine.
type Engine struct {
	now     Time
	seq     uint64
	nodes   []eventNode // arena of event slots
	free    []int32     // released slot indices
	order   []int32     // 4-ary min-heap of slot indices, by (at, seq)
	rng     *rand.Rand
	stopped bool
	// Processed counts events executed, for instrumentation.
	Processed uint64

	// QuiesceAudit, when non-nil, runs once every time Run or RunAll
	// returns (horizon reached, queue drained, Stop, or watchdog abort).
	// Protocol-liveness auditors hook here: at quiesce they can inspect
	// every state machine and flag nodes stuck in a non-idle state with
	// nothing pending — a deadlock that would otherwise surface only as
	// silently skewed metrics.
	QuiesceAudit func()

	// Watchdog state (SetWatchdog).
	wdEvents    uint64
	wdWall      time.Duration
	wdStart     time.Time
	abortReason string
}

// wallCheckMask throttles the wall-clock watchdog check to one time.Since
// call per 8192 dispatched events.
const wallCheckMask = 8191

// NewEngine creates an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// alloc takes a slot from the free list (or grows the arena) and queues it.
func (e *Engine) alloc(at Time) int32 {
	var id int32
	if n := len(e.free); n > 0 {
		id = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.nodes = append(e.nodes, eventNode{gen: 1})
		id = int32(len(e.nodes) - 1)
	}
	n := &e.nodes[id]
	n.at = at
	n.seq = e.seq
	e.seq++
	n.pos = int32(len(e.order))
	e.order = append(e.order, id)
	e.siftUp(len(e.order) - 1)
	return id
}

// release returns a slot to the free list and invalidates outstanding
// handles by bumping the generation.
func (e *Engine) release(id int32) {
	n := &e.nodes[id]
	n.gen++
	n.fn = nil
	n.target = nil
	n.pos = -1
	e.free = append(e.free, id)
}

// Schedule runs fn at absolute time at. Scheduling into the past panics:
// that is always a logic error in a protocol implementation.
func (e *Engine) Schedule(at Time, fn func()) Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	id := e.alloc(at)
	e.nodes[id].fn = fn
	return Event{eng: e, id: id, gen: e.nodes[id].gen}
}

// ScheduleCall runs c.Call(tag) at absolute time at without allocating a
// closure. It is the closure-free counterpart of Schedule for hot paths
// that schedule the same few callbacks on pooled objects millions of times.
func (e *Engine) ScheduleCall(at Time, c Caller, tag int32) Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	id := e.alloc(at)
	n := &e.nodes[id]
	n.target = c
	n.tag = tag
	return Event{eng: e, id: id, gen: n.gen}
}

// After runs fn after delay d from the current time.
func (e *Engine) After(d Time, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.Schedule(e.now+d, fn)
}

// AfterCall runs c.Call(tag) after delay d; see ScheduleCall.
func (e *Engine) AfterCall(d Time, c Caller, tag int32) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.ScheduleCall(e.now+d, c, tag)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// SetWatchdog arms the engine's runaway-run protection: the run aborts
// once maxEvents events have been dispatched (0 disables the event budget)
// or once maxWall of real time has elapsed since this call (0 disables the
// wall-clock deadline). An aborted run stops like Stop — already-executed
// events and their statistics remain valid, so callers can still collect
// partial results — and Aborted reports the reason. The wall-clock check
// runs every few thousand events; it never perturbs event order, so a run
// that does not trip the watchdog is bit-identical to an unwatched one.
func (e *Engine) SetWatchdog(maxEvents uint64, maxWall time.Duration) {
	e.wdEvents = maxEvents
	e.wdWall = maxWall
	e.wdStart = time.Now()
	e.abortReason = ""
}

// Aborted reports whether the watchdog stopped the run, and why.
func (e *Engine) Aborted() (reason string, aborted bool) {
	return e.abortReason, e.abortReason != ""
}

// watchdogTripped checks the event budget and (periodically) the
// wall-clock deadline, recording the abort reason on the first trip.
func (e *Engine) watchdogTripped() bool {
	if e.abortReason != "" {
		return true
	}
	if e.wdEvents > 0 && e.Processed >= e.wdEvents {
		e.abortReason = fmt.Sprintf("sim: watchdog: event budget %d exhausted at t=%v", e.wdEvents, e.now)
		return true
	}
	if e.wdWall > 0 && e.Processed&wallCheckMask == wallCheckMask {
		if elapsed := time.Since(e.wdStart); elapsed > e.wdWall {
			e.abortReason = fmt.Sprintf("sim: watchdog: wall clock budget %v exceeded (%v) at t=%v after %d events",
				e.wdWall, elapsed.Round(time.Millisecond), e.now, e.Processed)
			return true
		}
	}
	return false
}

// dispatch pops the minimum event, releases its slot, and runs it. The
// callback is copied out before release so the slot can be reused (and the
// arena can grow) while the callback schedules new events.
func (e *Engine) dispatch() {
	id := e.order[0]
	e.popTop()
	n := &e.nodes[id]
	at, fn, target, tag := n.at, n.fn, n.target, n.tag
	e.release(id)
	e.now = at
	e.Processed++
	if fn != nil {
		fn()
	} else {
		target.Call(tag)
	}
}

// Run executes events until the queue empties, the horizon is passed,
// Stop is called, or the watchdog (SetWatchdog) trips. Events scheduled
// exactly at the horizon still run. QuiesceAudit, when set, runs once
// before Run returns.
func (e *Engine) Run(horizon Time) {
	defer e.quiesce()
	e.stopped = false
	for len(e.order) > 0 && !e.stopped {
		if e.watchdogTripped() {
			return
		}
		if e.nodes[e.order[0]].at > horizon {
			// Leave future events queued; advance clock to horizon so
			// callers observe a consistent end time.
			e.now = horizon
			return
		}
		e.dispatch()
	}
	if len(e.order) == 0 && e.now < horizon {
		e.now = horizon
	}
}

// RunAll executes events until the queue empties, Stop is called, or the
// watchdog trips. QuiesceAudit, when set, runs once before RunAll returns.
func (e *Engine) RunAll() {
	defer e.quiesce()
	e.stopped = false
	for len(e.order) > 0 && !e.stopped {
		if e.watchdogTripped() {
			return
		}
		e.dispatch()
	}
}

func (e *Engine) quiesce() {
	if e.QuiesceAudit != nil {
		e.QuiesceAudit()
	}
}

// Pending reports the number of queued events. Cancelled events are
// removed eagerly and never counted.
func (e *Engine) Pending() int { return len(e.order) }

// PoolInUse reports the number of event slots currently queued or
// executing, for leak checks in tests: after a full drain it must be 0.
func (e *Engine) PoolInUse() int { return len(e.nodes) - len(e.free) }

// less orders slots by (at, seq): strict total order, so runs are
// reproducible regardless of heap shape.
func (e *Engine) less(a, b int32) bool {
	na, nb := &e.nodes[a], &e.nodes[b]
	if na.at != nb.at {
		return na.at < nb.at
	}
	return na.seq < nb.seq
}

// The priority queue is a 4-ary min-heap: children of i are 4i+1..4i+4.
// Compared to a binary heap it halves the tree depth, trading slightly
// more comparisons per level for fewer cache-missing levels — a win for
// the sift-down-heavy pop/push mix of a simulation queue.

func (e *Engine) siftUp(i int) {
	id := e.order[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !e.less(id, e.order[parent]) {
			break
		}
		e.order[i] = e.order[parent]
		e.nodes[e.order[i]].pos = int32(i)
		i = parent
	}
	e.order[i] = id
	e.nodes[id].pos = int32(i)
}

func (e *Engine) siftDown(i int) {
	id := e.order[i]
	n := len(e.order)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if e.less(e.order[c], e.order[best]) {
				best = c
			}
		}
		if !e.less(e.order[best], id) {
			break
		}
		e.order[i] = e.order[best]
		e.nodes[e.order[i]].pos = int32(i)
		i = best
	}
	e.order[i] = id
	e.nodes[id].pos = int32(i)
}

// popTop removes the minimum slot from the heap (without releasing it).
func (e *Engine) popTop() {
	last := len(e.order) - 1
	moved := e.order[last]
	e.order = e.order[:last]
	if last > 0 {
		e.order[0] = moved
		e.nodes[moved].pos = 0
		e.siftDown(0)
	}
}

// removeAt removes the slot at heap position pos and releases it.
func (e *Engine) removeAt(pos int32) {
	i := int(pos)
	id := e.order[i]
	last := len(e.order) - 1
	moved := e.order[last]
	e.order = e.order[:last]
	if i != last {
		e.order[i] = moved
		e.nodes[moved].pos = pos
		e.siftDown(i)
		if e.nodes[moved].pos == pos {
			e.siftUp(i)
		}
	}
	e.release(id)
}
