// Package sim provides the discrete-event simulation kernel used by every
// other layer of the wireless network simulator: a virtual clock, an event
// queue ordered by (time, sequence), cancellable timers, and a deterministic
// per-run random number source.
//
// A single Engine drives one simulation run on one goroutine. Determinism is
// guaranteed by ordering simultaneous events by their scheduling sequence
// number and by deriving all randomness from the engine's seeded source.
//
// The kernel is allocation-free in steady state: events live in a per-engine
// arena recycled through a free list, and hot callers can schedule
// closure-free callbacks through the Caller interface instead of func()
// closures. Recycled slots carry a generation counter, so an Event handle
// that outlives its slot's lifetime (a cancel after the event fired, for
// example) is detected and ignored rather than corrupting an unrelated
// event.
//
// The queue itself is a hierarchical timing wheel (wheel.go) in front of a
// hand-rolled indexed 4-ary min-heap: short-horizon events — the dominant,
// cancel-heavy MAC timer traffic — sit in O(1) wheel slots until due, then
// flush in sorted bursts onto an O(1)-pop due list; only long-horizon
// overflow events pay heap comparisons. Dispatch merges the two sources
// under the same exact (time, seq) total order as a pure heap.
package sim

import (
	"context"
	"fmt"
	"math/rand"
	"time"
)

// Time is the simulated clock in nanoseconds since the start of the run.
type Time int64

// Common time constants expressed as Time values.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Duration converts a standard library duration into simulated time units.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds reports the time as floating-point seconds, for metric output.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports the time as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	return time.Duration(t).String()
}

// Caller receives tagged event callbacks. Scheduling against a Caller
// instead of a closure keeps the hot path allocation-free: the engine
// stores the interface value (a single pointer for pointer receivers) and
// the tag inside the pooled event slot, so no func() object is created.
// The tag distinguishes the different events one object can receive.
type Caller interface {
	Call(tag int32)
}

// eventNode is one pooled event slot in the engine's arena. Slots are
// addressed by index, never by long-lived pointer, so the arena can grow.
// The struct is exactly one 64-byte cache line; fields are ordered by
// dispatch heat: the (at, seq) ordering key, then the callback, then the
// wheel links and bookkeeping.
type eventNode struct {
	at     Time
	seq    uint64
	target Caller // tagged form; nil when fn is used
	fn     func() // closure form; nil when target is used
	next   int32  // wheel-slot / due-list links (intrusive, by arena index)
	prev   int32
	slot   int32  // wheel slot: index | slotL1 level flag
	pos    int32  // heap position; posWheel/posDue in the wheel; -1 when free
	gen    uint32 // incremented on every release; stale-handle detection
	tag    int32
}

// heapEnt is one heap entry. It carries the (at, seq) ordering key next to
// the arena index, so sift comparisons read the (hot, contiguous) heap
// array instead of chasing a cache line per compared node in the arena.
type heapEnt struct {
	at  Time
	seq uint64
	id  int32
}

// Event is a cancellable handle to a scheduled callback, returned by
// Engine.Schedule and friends. It is a small value (not a pointer into the
// kernel): copying it is cheap and allocation-free. The zero Event is
// inert: Cancel is a no-op and Pending reports false.
type Event struct {
	eng *Engine
	id  int32
	gen uint32
}

// canceledID marks a handle whose Cancel method has been invoked.
const canceledID int32 = -2

// node resolves the handle to its live arena slot, or nil if the handle is
// zero, cancelled, or stale (the event already fired or was cancelled and
// its slot moved on to a later generation).
func (e Event) node() *eventNode {
	if e.eng == nil || e.id < 0 {
		return nil
	}
	n := &e.eng.nodes[e.id]
	if n.gen != e.gen {
		return nil
	}
	return n
}

// At reports the simulated time the event fires at. ok is false if the
// event is no longer pending (fired, cancelled, or zero handle) — t=0 is a
// legal fire time at the start of a run, so absence is reported explicitly
// rather than through a sentinel.
func (e Event) At() (t Time, ok bool) {
	if n := e.node(); n != nil {
		return n.at, true
	}
	return 0, false
}

// Pending reports whether the event is still queued to fire.
func (e Event) Pending() bool { return e.node() != nil }

// Cancel prevents the event from firing and releases its slot immediately.
// Cancelling an already-fired, already-cancelled, or zero Event is a safe
// no-op: generation counters detect stale handles, so a late Cancel can
// never affect an unrelated event that recycled the same slot. Cancel must
// only be called from the simulation goroutine.
//
// An event still sitting in a wheel slot or on the due list (the common
// cases for MAC timer churn) is unlinked in O(1); only events in the heap
// pay the O(log n) heap removal.
func (e *Event) Cancel() {
	if n := e.node(); n != nil {
		eng := e.eng
		if eng.tstats != nil {
			eng.tstats.cancel(n.pos, n.at-eng.now)
		}
		switch n.pos {
		case posWheel:
			eng.wheelRemove(e.id)
			eng.release(e.id)
		case posDue:
			eng.dueRemove(e.id)
			eng.release(e.id)
		default:
			eng.removeAt(n.pos)
		}
	}
	if e.eng != nil {
		e.id = canceledID
	}
}

// Canceled reports whether Cancel has been called through this handle.
func (e Event) Canceled() bool { return e.eng != nil && e.id == canceledID }

// Engine is a discrete-event simulator instance. It is not safe for
// concurrent use; one engine belongs to one goroutine.
type Engine struct {
	// Hot scalars first: the dispatch loop touches these every event.
	now Time
	seq uint64
	// Processed counts events executed, for instrumentation.
	Processed uint64

	order []heapEnt   // 4-ary min-heap by (at, seq); the dispatch arbiter
	nodes []eventNode // arena of event slots
	free  []int32     // released slot indices

	// Timing-wheel frontier (see wheel.go). wheelCount counts events in
	// wheel slots (count1 those in level 1), dueCount those flushed onto
	// the sorted due list headed by dueHead. wheelMin is a lower bound on
	// the earliest in-slot event; the dispatch fast path compares it
	// against the due head and heap top and skips the bitmap scans
	// entirely when either wins.
	wheelCount int
	dueCount   int
	count1     int
	wheelMin   Time
	cur0, cur1 uint64
	dueHead    int32
	dueTail    int32

	// Scan cache (see wheel.go): the first occupied slot of each level
	// (ns0/ns1, absolute) and its start time (nb0/nb1), valid while
	// scanValid holds. Pushes min-update it in place; only a cancel that
	// empties the cached frontier slot invalidates it, so repeated
	// syncWheel calls rarely rescan the bitmaps.
	ns0, ns1  uint64
	nb0, nb1  Time
	scanValid bool

	// flushBuf and flushScratch are the reusable collect/scatter buffers
	// of flushDue's large-cohort sort path (see sortCohortLarge); each
	// grows once to the largest cohort.
	flushBuf     []flushEnt
	flushScratch []flushEnt

	rng     *rand.Rand
	stopped bool
	tstats  *TimerStats

	// QuiesceAudit, when non-nil, runs once every time Run or RunAll
	// returns (horizon reached, queue drained, Stop, or watchdog abort).
	// Protocol-liveness auditors hook here: at quiesce they can inspect
	// every state machine and flag nodes stuck in a non-idle state with
	// nothing pending — a deadlock that would otherwise surface only as
	// silently skewed metrics.
	QuiesceAudit func()

	// Watchdog state (SetWatchdog). wdArmed lets the dispatch loop skip
	// the check entirely when no budget is set.
	wdArmed     bool
	wdEvents    uint64
	wdWall      time.Duration
	wdStart     time.Time
	abortReason string

	// Cooperative cancellation (SetContext). ctxDone is ctx.Done(),
	// cached so the dispatch loop's periodic check is a plain channel
	// select with no interface call.
	ctx     context.Context
	ctxDone <-chan struct{}

	// tw holds the wheel's slot lists and occupancy bitmaps (a few cold
	// KiB, touched sparsely; kept last so the hot scalars above share
	// cache lines).
	tw wheel
}

// wallCheckMask throttles the wall-clock watchdog check to one time.Since
// call per 8192 dispatched events.
const wallCheckMask = 8191

// ctxCheckMask throttles the context-cancellation check to one channel
// poll per 1024 dispatched events: tight enough that a canceled run stops
// within a millisecond at steady-state event rates, loose enough that the
// poll never shows up in a profile.
const ctxCheckMask = 1023

// NewEngine creates an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	e := &Engine{
		rng:      rand.New(rand.NewSource(seed)),
		wheelMin: maxTime, dueHead: -1, dueTail: -1,
		nb0: maxTime, nb1: maxTime, scanValid: true,
	}
	e.tw.init()
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// alloc takes a slot from the free list (or grows the arena), stamps it
// with the next sequence number and queues it (wheel or heap). The
// free-list pop stays in the fast path; arena growth is outlined so the
// common case carries no append machinery.
func (e *Engine) alloc(at Time) (int32, *eventNode) {
	var id int32
	if n := len(e.free); n > 0 {
		id = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		id = e.grow()
	}
	n := &e.nodes[id]
	n.at = at
	n.seq = e.seq
	e.seq++
	e.enqueue(id, n, at)
	return id, n
}

// grow extends the arena by one slot; split out of alloc to keep the
// free-list path small.
//
//go:noinline
func (e *Engine) grow() int32 {
	e.nodes = append(e.nodes, eventNode{gen: 1})
	return int32(len(e.nodes) - 1)
}

// heapPush appends a slot to the heap and restores heap order.
func (e *Engine) heapPush(id int32, at Time) {
	n := &e.nodes[id]
	n.pos = int32(len(e.order))
	e.order = append(e.order, heapEnt{at: at, seq: n.seq, id: id})
	e.siftUp(len(e.order) - 1)
}

// release returns a slot to the free list and invalidates outstanding
// handles by bumping the generation.
func (e *Engine) release(id int32) {
	n := &e.nodes[id]
	n.gen++
	n.fn = nil
	n.target = nil
	n.pos = -1
	e.free = append(e.free, id)
}

// panicPast and panicNeg are outlined so the schedule entry points carry
// only a compare on their hot path, not fmt machinery.
//
//go:noinline
func (e *Engine) panicPast(at Time) {
	panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
}

//go:noinline
func panicNeg(d Time) {
	panic(fmt.Sprintf("sim: negative delay %v", d))
}

// Schedule runs fn at absolute time at. Scheduling into the past panics:
// that is always a logic error in a protocol implementation.
func (e *Engine) Schedule(at Time, fn func()) Event {
	if at < e.now {
		e.panicPast(at)
	}
	id, n := e.alloc(at)
	n.fn = fn
	return Event{eng: e, id: id, gen: n.gen}
}

// ScheduleCall runs c.Call(tag) at absolute time at without allocating a
// closure. It is the closure-free counterpart of Schedule for hot paths
// that schedule the same few callbacks on pooled objects millions of times.
func (e *Engine) ScheduleCall(at Time, c Caller, tag int32) Event {
	if at < e.now {
		e.panicPast(at)
	}
	id, n := e.alloc(at)
	n.target = c
	n.tag = tag
	return Event{eng: e, id: id, gen: n.gen}
}

// After runs fn after delay d from the current time. The delta check
// subsumes Schedule's past check (now+d >= now for d >= 0), so the
// allocation is reached through a single compare.
func (e *Engine) After(d Time, fn func()) Event {
	if d < 0 {
		panicNeg(d)
	}
	id, n := e.alloc(e.now + d)
	n.fn = fn
	return Event{eng: e, id: id, gen: n.gen}
}

// AfterCall runs c.Call(tag) after delay d; see ScheduleCall.
func (e *Engine) AfterCall(d Time, c Caller, tag int32) Event {
	if d < 0 {
		panicNeg(d)
	}
	id, n := e.alloc(e.now + d)
	n.target = c
	n.tag = tag
	return Event{eng: e, id: id, gen: n.gen}
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// SetWatchdog arms the engine's runaway-run protection: the run aborts
// once maxEvents events have been dispatched (0 disables the event budget)
// or once maxWall of real time has elapsed since this call (0 disables the
// wall-clock deadline). An aborted run stops like Stop — already-executed
// events and their statistics remain valid, so callers can still collect
// partial results — and Aborted reports the reason. The wall-clock check
// runs every few thousand events; it never perturbs event order, so a run
// that does not trip the watchdog is bit-identical to an unwatched one.
func (e *Engine) SetWatchdog(maxEvents uint64, maxWall time.Duration) {
	e.wdEvents = maxEvents
	e.wdWall = maxWall
	e.wdStart = time.Now()
	e.abortReason = ""
	e.wdArmed = maxEvents > 0 || maxWall > 0 || e.ctxDone != nil
}

// SetContext arms cooperative cancellation: once ctx is done, the run
// aborts at the next periodic check exactly like a watchdog trip —
// already-executed events and their statistics remain valid, and Aborted
// reports the context's error. Like the wall-clock watchdog the check is
// time-based observation only; it never perturbs event order, so a run
// whose context is never canceled is bit-identical to an unwatched one.
//
// Passing nil or a context that can never be canceled (context.Background)
// disarms the check. SetContext composes with SetWatchdog: either can
// abort the run. To resume an aborted engine, clear the armed context
// (SetContext(nil)) and/or call SetWatchdog again — SetWatchdog resets the
// recorded abort reason.
func (e *Engine) SetContext(ctx context.Context) {
	if ctx == nil || ctx.Done() == nil {
		e.ctx = nil
		e.ctxDone = nil
	} else {
		e.ctx = ctx
		e.ctxDone = ctx.Done()
	}
	e.wdArmed = e.wdEvents > 0 || e.wdWall > 0 || e.ctxDone != nil
}

// ctxAborted polls the armed context and records the abort reason on the
// first observation of a done context.
func (e *Engine) ctxAborted() bool {
	select {
	case <-e.ctxDone:
		e.abortReason = fmt.Sprintf("sim: watchdog: %v at t=%v after %d events", e.ctx.Err(), e.now, e.Processed)
		return true
	default:
		return false
	}
}

// Aborted reports whether the watchdog stopped the run, and why.
func (e *Engine) Aborted() (reason string, aborted bool) {
	return e.abortReason, e.abortReason != ""
}

// watchdogTripped checks the event budget and (periodically) the
// wall-clock deadline, recording the abort reason on the first trip.
func (e *Engine) watchdogTripped() bool {
	if e.abortReason != "" {
		return true
	}
	if e.wdEvents > 0 && e.Processed >= e.wdEvents {
		e.abortReason = fmt.Sprintf("sim: watchdog: event budget %d exhausted at t=%v", e.wdEvents, e.now)
		return true
	}
	if e.wdWall > 0 && e.Processed&wallCheckMask == wallCheckMask {
		if elapsed := time.Since(e.wdStart); elapsed > e.wdWall {
			e.abortReason = fmt.Sprintf("sim: watchdog: wall clock budget %v exceeded (%v) at t=%v after %d events",
				e.wdWall, elapsed.Round(time.Millisecond), e.now, e.Processed)
			return true
		}
	}
	if e.ctxDone != nil && e.Processed&ctxCheckMask == ctxCheckMask && e.ctxAborted() {
		return true
	}
	return false
}

// takeMin pops the globally-minimum event under (time, seq) and returns
// its arena id, without releasing it. The caller must have run syncWheel,
// which guarantees the minimum is either the due-list head (O(1) pop) or
// the heap top.
func (e *Engine) takeMin() int32 {
	if d := e.dueHead; d >= 0 {
		n := &e.nodes[d]
		if len(e.order) == 0 || n.at < e.order[0].at ||
			(n.at == e.order[0].at && n.seq < e.order[0].seq) {
			e.dueHead = n.next
			if n.next >= 0 {
				e.nodes[n.next].prev = -1
			} else {
				e.dueTail = -1
			}
			e.dueCount--
			return d
		}
	}
	id := e.order[0].id
	e.popTop()
	return id
}

// dispatch releases the popped event's slot and runs its callback. The
// dispatchNext pops and runs the globally-minimum event — pop and dispatch
// fused so the hot loop touches the event node exactly once — unless that
// event fires after horizon, in which case it is left queued and
// dispatchNext reports false. The callback is copied out before release so
// the slot can be reused (and the arena can grow) while the callback
// schedules new events. The caller must have run syncWheel.
func (e *Engine) dispatchNext(horizon Time) bool {
	var id int32
	var n *eventNode
	if d := e.dueHead; d >= 0 {
		n = &e.nodes[d]
		if len(e.order) == 0 || n.at < e.order[0].at ||
			(n.at == e.order[0].at && n.seq < e.order[0].seq) {
			if n.at > horizon {
				return false
			}
			id = d
			e.dueHead = n.next
			if n.next >= 0 {
				e.nodes[n.next].prev = -1
			} else {
				e.dueTail = -1
			}
			e.dueCount--
		} else {
			if e.order[0].at > horizon {
				return false
			}
			id = e.order[0].id
			e.popTop()
			n = &e.nodes[id]
		}
	} else {
		if e.order[0].at > horizon {
			return false
		}
		id = e.order[0].id
		e.popTop()
		n = &e.nodes[id]
	}
	at, fn, target, tag := n.at, n.fn, n.target, n.tag
	e.release(id)
	e.now = at
	e.Processed++
	if fn != nil {
		fn()
	} else {
		target.Call(tag)
	}
	return true
}

// PeekCall reports the target and tag of the next pending event, provided
// that event is a tagged (ScheduleCall) event due at exactly time at and
// the engine may legally run it now (not stopped, event budget not
// exhausted). It is the peek half of the same-tick batch-dispatch fast
// path: a callback that knows how to run its peers inline (e.g. the PHY's
// rx-end drain) can consume provably-next events without re-entering the
// dispatch loop. A successful PeekCall must be followed by TakeNext before
// any other engine call.
func (e *Engine) PeekCall(at Time) (Caller, int32, bool) {
	if e.stopped || (e.wdEvents > 0 && e.Processed >= e.wdEvents) {
		return nil, 0, false
	}
	if e.dueHead < 0 {
		e.syncWheel()
	}
	if d := e.dueHead; d >= 0 {
		n := &e.nodes[d]
		if len(e.order) == 0 || n.at < e.order[0].at ||
			(n.at == e.order[0].at && n.seq < e.order[0].seq) {
			if n.at != at || n.target == nil {
				return nil, 0, false
			}
			return n.target, n.tag, true
		}
	}
	if len(e.order) == 0 || e.order[0].at != at {
		return nil, 0, false
	}
	n := &e.nodes[e.order[0].id]
	if n.target == nil {
		return nil, 0, false
	}
	return n.target, n.tag, true
}

// TakeNext consumes the event a successful PeekCall just reported —
// popping it, releasing its slot and counting it as processed — without
// running it; the caller invokes the callback itself.
func (e *Engine) TakeNext() {
	id := e.takeMin()
	e.now = e.nodes[id].at
	e.release(id)
	e.Processed++
}

// Run executes events until the queue empties, the horizon is passed,
// Stop is called, or the watchdog (SetWatchdog) trips. Events scheduled
// exactly at the horizon still run. QuiesceAudit, when set, runs once
// before Run returns.
func (e *Engine) Run(horizon Time) {
	defer e.quiesce()
	e.stopped = false
	if e.ctxDone != nil && e.ctxAborted() {
		return
	}
	for len(e.order)+e.wheelCount+e.dueCount > 0 && !e.stopped {
		if e.wdArmed && e.watchdogTripped() {
			return
		}
		if e.dueHead < 0 {
			e.syncWheel()
		}
		if !e.dispatchNext(horizon) {
			// Leave future events queued; advance clock to horizon so
			// callers observe a consistent end time.
			e.now = horizon
			return
		}
	}
	if len(e.order)+e.wheelCount+e.dueCount == 0 && e.now < horizon {
		e.now = horizon
	}
}

// RunAll executes events until the queue empties, Stop is called, or the
// watchdog trips. QuiesceAudit, when set, runs once before RunAll returns.
func (e *Engine) RunAll() {
	defer e.quiesce()
	e.stopped = false
	if e.ctxDone != nil && e.ctxAborted() {
		return
	}
	for len(e.order)+e.wheelCount+e.dueCount > 0 && !e.stopped {
		if e.wdArmed && e.watchdogTripped() {
			return
		}
		if e.dueHead < 0 {
			e.syncWheel()
		}
		e.dispatchNext(maxTime)
	}
}

func (e *Engine) quiesce() {
	if e.QuiesceAudit != nil {
		e.QuiesceAudit()
	}
}

// Pending reports the number of queued events (wheel slots, due list and
// heap together). Cancelled events are removed eagerly and never counted.
func (e *Engine) Pending() int { return len(e.order) + e.wheelCount + e.dueCount }

// PoolInUse reports the number of event slots currently queued or
// executing, for leak checks in tests: after a full drain it must be 0.
func (e *Engine) PoolInUse() int { return len(e.nodes) - len(e.free) }

// ArenaCap reports the total number of event slots the arena has grown
// to — the high-water mark of simultaneously live events. Together with
// PoolInUse it is the kernel's arena-occupancy telemetry.
func (e *Engine) ArenaCap() int { return len(e.nodes) }

// The priority queue behind the wheel is a 4-ary min-heap of heapEnt
// entries: children of i are 4i+1..4i+4. Compared to a binary heap it
// halves the tree depth, trading slightly more comparisons per level for
// fewer cache-missing levels — a win for the sift-down-heavy pop/push mix
// of a simulation queue. Entries embed their (at, seq) key, so sifting
// never touches the arena except to update the moved node's position.

func (ha *heapEnt) less(hb *heapEnt) bool {
	if ha.at != hb.at {
		return ha.at < hb.at
	}
	return ha.seq < hb.seq
}

func (e *Engine) siftUp(i int) {
	ent := e.order[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !ent.less(&e.order[parent]) {
			break
		}
		e.order[i] = e.order[parent]
		e.nodes[e.order[i].id].pos = int32(i)
		i = parent
	}
	e.order[i] = ent
	e.nodes[ent.id].pos = int32(i)
}

func (e *Engine) siftDown(i int) {
	ent := e.order[i]
	n := len(e.order)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if e.order[c].less(&e.order[best]) {
				best = c
			}
		}
		if !e.order[best].less(&ent) {
			break
		}
		e.order[i] = e.order[best]
		e.nodes[e.order[i].id].pos = int32(i)
		i = best
	}
	e.order[i] = ent
	e.nodes[ent.id].pos = int32(i)
}

// popTop removes the minimum entry from the heap (without releasing it).
func (e *Engine) popTop() {
	last := len(e.order) - 1
	moved := e.order[last]
	e.order = e.order[:last]
	if last > 0 {
		e.order[0] = moved
		e.nodes[moved.id].pos = 0
		e.siftDown(0)
	}
}

// removeAt removes the entry at heap position pos and releases its slot.
func (e *Engine) removeAt(pos int32) {
	i := int(pos)
	id := e.order[i].id
	last := len(e.order) - 1
	moved := e.order[last]
	e.order = e.order[:last]
	if i != last {
		e.order[i] = moved
		e.nodes[moved.id].pos = pos
		e.siftDown(i)
		if e.nodes[moved.id].pos == pos {
			e.siftUp(i)
		}
	}
	e.release(id)
}
