package sim

// Timer is a restartable one-shot timer bound to an Engine. It wraps the
// cancel-and-reschedule pattern that protocol state machines use constantly
// (e.g. RMAC's T_wf_rbt, T_wf_rdata, T_wf_abt).
//
// The zero Timer is not usable; create one with NewTimer.
type Timer struct {
	eng *Engine
	fn  func()
	ev  *Event
}

// NewTimer creates a stopped timer that invokes fn when it expires.
func NewTimer(eng *Engine, fn func()) *Timer {
	return &Timer{eng: eng, fn: fn}
}

// Start (re)arms the timer to fire after d. Any previously pending
// expiration is cancelled first.
func (t *Timer) Start(d Time) {
	t.Stop()
	t.ev = t.eng.After(d, t.fire)
}

// StartAt (re)arms the timer to fire at absolute time at.
func (t *Timer) StartAt(at Time) {
	t.Stop()
	t.ev = t.eng.Schedule(at, t.fire)
}

func (t *Timer) fire() {
	t.ev = nil
	t.fn()
}

// Stop cancels a pending expiration. Stopping an idle timer is a no-op.
func (t *Timer) Stop() {
	if t.ev != nil {
		t.ev.Cancel()
		t.ev = nil
	}
}

// Pending reports whether the timer is armed and has not fired.
func (t *Timer) Pending() bool { return t.ev != nil }

// Deadline returns the absolute expiration time; valid only when Pending.
func (t *Timer) Deadline() Time {
	if t.ev == nil {
		return 0
	}
	return t.ev.At()
}
