package sim

// Timer is a restartable one-shot timer bound to an Engine. It wraps the
// cancel-and-reschedule pattern that protocol state machines use constantly
// (e.g. RMAC's T_wf_rbt, T_wf_rdata, T_wf_abt). A Timer schedules itself
// through the engine's tagged-event path, so arming and restarting it
// allocates nothing.
//
// The zero Timer is not usable; create one with NewTimer.
type Timer struct {
	eng *Engine
	fn  func()
	ev  Event
}

// NewTimer creates a stopped timer that invokes fn when it expires.
func NewTimer(eng *Engine, fn func()) *Timer {
	return &Timer{eng: eng, fn: fn}
}

// Start (re)arms the timer to fire after d. Any previously pending
// expiration is cancelled first.
func (t *Timer) Start(d Time) {
	t.Stop()
	t.ev = t.eng.AfterCall(d, t, 0)
}

// StartAt (re)arms the timer to fire at absolute time at.
func (t *Timer) StartAt(at Time) {
	t.Stop()
	t.ev = t.eng.ScheduleCall(at, t, 0)
}

// Call implements Caller; it is invoked by the engine on expiry and is not
// meant to be called directly.
func (t *Timer) Call(int32) {
	t.ev = Event{}
	t.fn()
}

// Stop cancels a pending expiration. Stopping an idle timer is a no-op.
func (t *Timer) Stop() {
	t.ev.Cancel()
	t.ev = Event{}
}

// Pending reports whether the timer is armed and has not fired.
func (t *Timer) Pending() bool { return t.ev.Pending() }

// Deadline returns the absolute expiration time; ok is false when the
// timer is not pending (a fire time of 0 is legal at the start of a run,
// so absence is explicit rather than a sentinel).
func (t *Timer) Deadline() (at Time, ok bool) { return t.ev.At() }
