package sim

import (
	"context"
	"strings"
	"testing"
	"time"
)

// chain schedules a self-rescheduling event chain of up to total events,
// invoking hook with the 1-based count after each firing.
func chain(e *Engine, total int, hook func(n int)) {
	n := 0
	var step func()
	step = func() {
		n++
		if hook != nil {
			hook(n)
		}
		if n < total {
			e.After(Microsecond, step)
		}
	}
	e.After(0, step)
}

func TestContextCancelAborts(t *testing.T) {
	e := NewEngine(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e.SetContext(ctx)
	chain(e, 100_000, func(n int) {
		if n == 2_000 {
			cancel()
		}
	})
	e.Run(Second)
	reason, aborted := e.Aborted()
	if !aborted {
		t.Fatal("run with canceled context did not abort")
	}
	if !strings.Contains(reason, "context canceled") {
		t.Errorf("abort reason = %q, want a context-canceled message", reason)
	}
	// The abort lands at the first masked check after the cancel, long
	// before the chain completes.
	if e.Processed < 2_000 || e.Processed >= 100_000 {
		t.Errorf("Processed = %d, want in [2000, 100000)", e.Processed)
	}
	if e.Pending() == 0 {
		t.Error("aborted chain left nothing pending")
	}
}

func TestContextPreCanceledAbortsBeforeDispatch(t *testing.T) {
	e := NewEngine(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.SetContext(ctx)
	fired := false
	e.After(0, func() { fired = true })
	e.Run(Second)
	if _, aborted := e.Aborted(); !aborted {
		t.Fatal("pre-canceled context did not abort the run")
	}
	if fired || e.Processed != 0 {
		t.Errorf("pre-canceled run dispatched %d events", e.Processed)
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want the undispatched event", e.Pending())
	}
}

func TestContextDeadlineAborts(t *testing.T) {
	e := NewEngine(1)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	e.SetContext(ctx)
	// An endless chain: only the deadline can end this run.
	n := 0
	var step func()
	step = func() { n++; e.After(Microsecond, step) }
	e.After(0, step)
	e.Run(maxTime - 1)
	reason, aborted := e.Aborted()
	if !aborted {
		t.Fatal("run did not abort on context deadline")
	}
	if !strings.Contains(reason, "deadline exceeded") {
		t.Errorf("abort reason = %q, want a deadline message", reason)
	}
}

func TestContextBackgroundDisarms(t *testing.T) {
	e := NewEngine(1)
	e.SetContext(context.Background())
	if e.wdArmed {
		t.Error("background context armed the watchdog")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e.SetContext(ctx)
	if !e.wdArmed {
		t.Error("cancellable context did not arm the watchdog")
	}
	e.SetContext(nil)
	if e.wdArmed {
		t.Error("SetContext(nil) did not disarm the watchdog")
	}
}

// startCascade schedules a deterministic self-expanding timer workload
// that exercises every queue tier: most delays land in the wheel levels,
// every 7th child jumps seconds ahead (heap overflow), and every 5th
// scheduled child is cancelled immediately (wheel-slot removal). Each
// fired event's identity is appended to log.
func startCascade(e *Engine, total int, log *[]int64) {
	count := 0
	var spawn func(me int64)
	spawn = func(me int64) {
		*log = append(*log, me)
		for k := int64(1); k <= 3; k++ {
			if count >= total {
				return
			}
			count++
			child := me*3 + k
			d := Time(uint64(child)*2654435761%uint64(60*Millisecond)) + 1
			if child%7 == 0 {
				d += 2 * Second
			}
			ev := e.After(d, func() { spawn(child) })
			if child%5 == 0 {
				ev.Cancel()
			}
		}
	}
	e.After(0, func() { spawn(0) })
}

// TestAbortResumeBitIdentical is the wheel/abort interaction regression:
// a run aborted by the watchdog mid-cascade — with events parked in wheel
// slots, on the due list and in the heap — must, once the watchdog is
// disarmed, resume and fire the exact sequence an uninterrupted engine
// fires, and drain its event pool completely.
func TestAbortResumeBitIdentical(t *testing.T) {
	const total = 5000
	const horizon = 10 * Second

	var want []int64
	ref := NewEngine(1)
	startCascade(ref, total, &want)
	ref.Run(horizon)
	if ref.Pending() != 0 {
		t.Fatalf("reference run left %d events pending", ref.Pending())
	}

	var got []int64
	e := NewEngine(1)
	startCascade(e, total, &got)
	e.SetWatchdog(uint64(len(want))/3, 0)
	e.Run(horizon)
	if _, aborted := e.Aborted(); !aborted {
		t.Fatal("watchdog did not abort the cascade")
	}
	if e.wheelCount+e.dueCount == 0 {
		t.Fatal("abort did not land mid-cascade: no events parked in the wheel")
	}
	if len(e.order) == 0 {
		t.Fatal("abort did not land mid-cascade: no heap overflow events pending")
	}

	e.SetWatchdog(0, 0)
	e.Run(horizon)
	if _, aborted := e.Aborted(); aborted {
		t.Fatal("resumed run still reports aborted")
	}

	if len(got) != len(want) {
		t.Fatalf("resumed run fired %d events, reference fired %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing order diverged at %d: got %d, want %d", i, got[i], want[i])
		}
	}
	if e.Pending() != 0 || e.PoolInUse() != 0 {
		t.Errorf("resumed run left Pending=%d PoolInUse=%d, want 0/0", e.Pending(), e.PoolInUse())
	}
}

// TestContextAbortResume covers the same resume contract for a context
// abort: clear the context, reset the watchdog, and the run continues
// exactly where it stopped. The reference engine schedules a no-op in
// place of the cancel trigger so both engines assign identical sequence
// numbers.
func TestContextAbortResume(t *testing.T) {
	const total = 4000
	const horizon = 10 * Second

	var want []int64
	ref := NewEngine(1)
	ref.After(50*Millisecond, func() {})
	startCascade(ref, total, &want)
	ref.Run(horizon)

	var got []int64
	e := NewEngine(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e.SetContext(ctx)
	e.After(50*Millisecond, cancel)
	startCascade(e, total, &got)
	e.Run(horizon)
	if reason, aborted := e.Aborted(); !aborted {
		t.Fatal("mid-run cancel did not abort")
	} else if !strings.Contains(reason, "context canceled") {
		t.Errorf("abort reason = %q, want a context-canceled message", reason)
	}
	if len(got) >= len(want) {
		t.Fatalf("abort fired all %d events before resuming", len(got))
	}

	e.SetContext(nil)
	e.SetWatchdog(0, 0)
	e.Run(horizon)

	if len(got) != len(want) {
		t.Fatalf("resumed run fired %d events, reference fired %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing order diverged at %d: got %d, want %d", i, got[i], want[i])
		}
	}
	if e.Pending() != 0 || e.PoolInUse() != 0 {
		t.Errorf("resumed run left Pending=%d PoolInUse=%d, want 0/0", e.Pending(), e.PoolInUse())
	}
}
