package sim

import "testing"

// BenchmarkEngineSchedule measures the raw schedule→fire cycle of the
// kernel: each iteration schedules a batch of events at increasing times
// and drains them. In steady state the pooled kernel performs zero heap
// allocations here; the pre-pooling kernel allocated one *Event (plus
// interface boxing in container/heap) per scheduled event.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			e.After(Time(j)*Microsecond, fn)
		}
		e.RunAll()
	}
}

// BenchmarkEngineScheduleCancel measures the cancel-and-reschedule churn
// that MAC timers (T_wf_rbt and friends) generate constantly: half of the
// scheduled events are cancelled before the queue drains.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	evs := make([]Event, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range evs {
			evs[j] = e.After(Time(j+1)*Microsecond, fn)
		}
		for j := 0; j < len(evs); j += 2 {
			evs[j].Cancel()
		}
		e.RunAll()
	}
}

// BenchmarkEngineTimerChurn measures the restartable-timer hot path: one
// Timer restarted before every expiry, as protocol state machines do.
func BenchmarkEngineTimerChurn(b *testing.B) {
	e := NewEngine(1)
	tm := NewTimer(e, func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Start(10 * Microsecond)
		tm.Start(20 * Microsecond) // restart cancels the first schedule
		e.RunAll()
	}
}
