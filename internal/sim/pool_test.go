package sim

import (
	"math/rand"
	"testing"
)

// TestPoolStressMillionEvents schedules and cancels one million events
// through the pooled kernel and verifies (time, seq) ordering, that
// cancelled events never fire, and that every slot returns to the free
// list when the queue drains (no pool leak).
func TestPoolStressMillionEvents(t *testing.T) {
	const total = 1_000_000
	e := NewEngine(99)
	r := rand.New(rand.NewSource(99))

	fired := 0
	var lastAt Time
	var lastSeq int
	seq := 0

	// Keep a rolling window of handles so cancels hit both queued and
	// already-fired (stale) events.
	window := make([]Event, 0, 1024)
	canceled := 0
	for i := 0; i < total; i++ {
		at := e.Now() + Time(r.Intn(1000))*Microsecond
		mySeq := seq
		seq++
		ev := e.Schedule(at, func() {
			if at < lastAt {
				t.Fatalf("event at %v fired after %v", at, lastAt)
			}
			if at == lastAt && mySeq < lastSeq {
				t.Fatalf("FIFO violated at %v: seq %d after %d", at, mySeq, lastSeq)
			}
			lastAt, lastSeq = at, mySeq
			fired++
		})
		window = append(window, ev)
		switch r.Intn(8) {
		case 0: // cancel a random handle from the window (maybe stale)
			j := r.Intn(len(window))
			if window[j].Pending() {
				canceled++
			}
			window[j].Cancel()
		case 1: // drain a little so cancels interleave with execution
			e.Run(e.Now() + Time(r.Intn(200))*Microsecond)
		}
		if len(window) == cap(window) {
			window = window[:0]
		}
	}
	e.RunAll()

	if fired+canceled != total {
		t.Fatalf("fired %d + canceled %d = %d, want %d (events lost or duplicated)",
			fired, canceled, fired+canceled, total)
	}
	if e.Pending() != 0 {
		t.Fatalf("queue not empty after RunAll: %d", e.Pending())
	}
	if in := e.PoolInUse(); in != 0 {
		t.Fatalf("pool leak: %d slots still in use after full drain", in)
	}
}

// TestCancelGenerationSafety pins the generation-counter guarantee: a
// handle to an event that already fired must not cancel the unrelated
// event that recycled the same arena slot.
func TestCancelGenerationSafety(t *testing.T) {
	e := NewEngine(1)
	stale := e.After(Microsecond, func() {})
	e.RunAll() // fires; slot returns to the free list

	fired := false
	fresh := e.After(Microsecond, func() { fired = true }) // reuses the slot
	if at, ok := fresh.At(); !ok || at != e.Now()+Microsecond {
		t.Fatalf("fresh event At = %v,%v", at, ok)
	}
	if _, ok := stale.At(); ok {
		t.Fatal("stale handle to a recycled slot still reports a fire time")
	}
	stale.Cancel() // stale handle: must be a no-op on the recycled slot
	if !fresh.Pending() {
		t.Fatal("stale Cancel removed the recycled slot's new event")
	}
	e.RunAll()
	if !fired {
		t.Fatal("event cancelled through a stale handle to its recycled slot")
	}
}

// TestCancelReleasesSlotEagerly verifies cancelled events do not linger in
// the queue (the pre-pooling kernel kept them until pop).
func TestCancelReleasesSlotEagerly(t *testing.T) {
	e := NewEngine(1)
	evs := make([]Event, 100)
	for i := range evs {
		evs[i] = e.After(Time(i+1)*Microsecond, func() {})
	}
	for i := range evs {
		evs[i].Cancel()
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after cancelling everything, want 0", e.Pending())
	}
	if in := e.PoolInUse(); in != 0 {
		t.Fatalf("PoolInUse = %d after cancelling everything, want 0", in)
	}
}

// taggedSink collects tagged Caller dispatches.
type taggedSink struct {
	got []int32
}

func (s *taggedSink) Call(tag int32) { s.got = append(s.got, tag) }

// TestScheduleCallDispatch covers the closure-free scheduling path: tags
// are delivered to the right object in (time, seq) order, interleaved
// correctly with closure events, and cancellable.
func TestScheduleCallDispatch(t *testing.T) {
	e := NewEngine(1)
	var sink taggedSink
	order := []int32{}
	e.ScheduleCall(3*Microsecond, &sink, 30)
	e.Schedule(2*Microsecond, func() { order = append(order, -2) })
	e.ScheduleCall(1*Microsecond, &sink, 10)
	ev := e.ScheduleCall(2*Microsecond, &sink, 20)
	ev.Cancel()
	e.RunAll()
	if len(sink.got) != 2 || sink.got[0] != 10 || sink.got[1] != 30 {
		t.Fatalf("tagged dispatch = %v, want [10 30]", sink.got)
	}
	if len(order) != 1 || order[0] != -2 {
		t.Fatalf("closure event = %v, want [-2]", order)
	}
	if e.PoolInUse() != 0 {
		t.Fatal("slots leaked")
	}
}
