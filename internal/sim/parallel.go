package sim

import (
	"fmt"
	"sync/atomic"
)

// Conservative parallel-simulation support. A sharded run partitions the
// network into spatial shards, each owning a private Engine on its own
// goroutine; shards advance their clocks under a Chandy–Misra–Bryant
// variant without null messages: every shard publishes a frontier — a
// lower bound on the earliest influence it can still exert, i.e.
// min(next local event, send time of its earliest outbound message no
// receiver has drained yet) — and each shard j may safely execute all
// events strictly before
//
//	target(j) = min over all k of frontier(k) + walkLookahead(k, j)
//
// where walkLookahead is the all-pairs minimum over walks of length ≥ 1
// in the direct lookahead graph (minimum cross-shard propagation delay
// between any two radios of the two shards). Including walks — not just
// simple paths — matters twice over. Relays: influence from k forwarded
// through intermediate shards is bounded transitively by the triangle
// inequality, with the sender-side cap keeping frontier(k) at or below
// an in-flight message's send time until its receiver has scheduled the
// delivery (and so covers the relay itself). Echoes: the k = j diagonal
// is the minimum round trip through any other shard, bounding responses
// to shard j's *own* future sends — a neighbour can react to a border
// arrival and transmit back within the same timestamp (tone-triggered
// aborts), so j may never outrun its own frontier by more than that
// round trip. Frontiers are pure measurements (next event / undrained
// send time), never derived from other shards' frontiers, so targets
// converge in one step and the classic null-message creep cannot occur.
//
// Cross-shard events are injected with ScheduleCrossCall under a dedicated
// sequence-number space (CrossSeqBase | sender<<CrossSeqShardShift | local
// counter): the (time, seq) total order then interleaves cross traffic
// after same-tick local events deterministically, independent of wall-clock
// arrival order, which is what makes a fixed (seed, shards) pair
// bit-identical across reruns.

// MaxTime is the largest representable simulated time; used as the
// "no event pending / never" sentinel by the shard frontier protocol.
const MaxTime = maxTime

// Cross-shard sequence-number space. Bit 63 lifts every cross event above
// all locally allocated sequence numbers (a run would need 2^63 local
// events to collide); the shard index sits above a per-shard monotone
// counter so two senders can never mint the same sequence number without
// any cross-goroutine coordination.
const (
	// CrossSeqBase marks a sequence number as cross-shard.
	CrossSeqBase uint64 = 1 << 63
	// CrossSeqShardShift positions the sending shard's index.
	CrossSeqShardShift = 48
	// MaxShards bounds the shard count (shard index field width and the
	// O(S²) lookahead matrix both assume it).
	MaxShards = 1 << (62 - CrossSeqShardShift)
)

// CrossSeq builds the sequence number for the i-th cross event minted by
// shard src. local must stay below 1<<CrossSeqShardShift.
func CrossSeq(src int, local uint64) uint64 {
	return CrossSeqBase | uint64(src)<<CrossSeqShardShift | local
}

// NextLowerBound returns the exact fire time of the engine's earliest
// pending event, or MaxTime when nothing is pending. Exactness (not just a
// lower bound) matters for shard liveness: frontiers are exchanged as
// next-event bounds, and the deadlock-freedom argument — "the shard
// holding the globally minimal next event always finds target > that
// event and advances" — needs the published bound to *be* the next event
// time. A slot-start approximation (wheelMin) can under-report by up to
// one slot width (128 ns), which exceeds the smallest lookahead (the
// 1 ns propagation-delay floor) and can stall two shards against each
// other forever.
//
// Due-list head and heap top are exact by construction. For in-slot wheel
// events the earliest occupied slot per level is chain-scanned: within a
// level, every event in a later slot fires at or after that slot's start,
// which is strictly after every event in the earliest slot, so the
// earliest slot's chain minimum is the level minimum and the cross-level
// minimum of the two chains is globally exact. Slots hold a handful of
// events, so the scan is effectively O(1). May refresh the scan cache;
// only called between Run windows, where that is safe.
func (e *Engine) NextLowerBound() Time {
	lb := maxTime
	if e.dueHead >= 0 {
		lb = e.nodes[e.dueHead].at
	}
	if len(e.order) > 0 && e.order[0].at < lb {
		lb = e.order[0].at
	}
	if e.wheelCount > 0 {
		if !e.scanValid {
			e.rescan()
		}
		if e.nb0 < maxTime {
			for id := e.tw.head0[e.ns0&l0Mask]; id >= 0; id = e.nodes[id].next {
				if e.nodes[id].at < lb {
					lb = e.nodes[id].at
				}
			}
		}
		if e.nb1 < maxTime && e.nb1 < lb {
			for id := e.tw.head1[e.ns1&l1Mask]; id >= 0; id = e.nodes[id].next {
				if e.nodes[id].at < lb {
					lb = e.nodes[id].at
				}
			}
		}
	}
	return lb
}

// ScheduleCrossCall schedules c.Call(tag) at absolute time at under an
// explicitly supplied sequence number instead of the engine's own counter.
// The cross-shard conduit uses it to inject mirrored events whose global
// order is fixed by the sender, not by arrival order.
//
// seq must lie in the cross space (CrossSeqBase set): the timing wheel's
// flush path packs sequence numbers into 57 bits, so cross events bypass
// the wheel and go straight to the heap — correct (the heap honours any
// (time, seq) order) and cheap (cross events are rare relative to local
// traffic).
func (e *Engine) ScheduleCrossCall(at Time, c Caller, tag int32, seq uint64) Event {
	if at < e.now {
		e.panicPast(at)
	}
	if seq < CrossSeqBase {
		panic(fmt.Sprintf("sim: ScheduleCrossCall seq %#x below CrossSeqBase", seq))
	}
	var id int32
	if n := len(e.free); n > 0 {
		id = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		id = e.grow()
	}
	n := &e.nodes[id]
	n.at = at
	n.seq = seq
	n.target = c
	n.tag = tag
	e.heapPush(id, at)
	if e.tstats != nil {
		e.tstats.place(placeOverflow, at-e.now)
	}
	return Event{eng: e, id: id, gen: n.gen}
}

// ShardSync is the shared frontier table of one sharded run. Each shard
// publishes its frontier with Publish and computes its safe execution bound
// with Target; both are lock-free (one atomic store / S+1 atomic loads).
// The lookahead matrix is held behind an atomic pointer: mobile runs
// replace it at every epoch boundary (SetLookahead), and a shard parked in
// its stall loop keeps polling Target throughout — the swap guarantees it
// reads a complete matrix, old or new, never a half-written one.
type ShardSync struct {
	// walk closure: (*la)[k][j] = min walk lookahead k→j (k==j: min
	// cycle); MaxTime = decoupled. Immutable once stored.
	la atomic.Pointer[[][]Time]
	fr []padTime
}

// padTime pads each frontier to its own cache line so Publish stores from
// different shards never false-share.
type padTime struct {
	v atomic.Int64
	_ [56]byte
}

// NewShardSync builds the frontier table for the given direct lookahead
// matrix (la[k][j] = minimum delay for shard k to influence shard j;
// MaxTime where no pair of radios is in range). The matrix is closed over
// walks of length ≥ 1 (Floyd–Warshall with the diagonal seeded to MaxTime
// — shard counts are small): off-diagonal entries become shortest paths,
// bounding relayed influence transitively, and diagonal entries become
// minimum cycles, bounding echoes of a shard's own sends. Frontiers start
// at 0.
func NewShardSync(direct [][]Time) *ShardSync {
	s := len(direct)
	if s > MaxShards {
		panic(fmt.Sprintf("sim: %d shards exceeds MaxShards %d", s, MaxShards))
	}
	ss := &ShardSync{fr: make([]padTime, s)}
	ss.SetLookahead(direct)
	return ss
}

// SetLookahead replaces the lookahead table with the walk closure of a new
// direct matrix. Mobile sharded runs call it at every epoch boundary, when
// node movement has changed the minimum cross-shard distances. The closure
// is computed into a fresh matrix and swapped in atomically: shards parked
// in stall loops keep polling Target during the swap and must never see a
// half-written table. Memory safety comes from the swap; *determinism*
// still needs the epoch barrier — without it, which epoch's matrix a
// Target call reads would depend on goroutine scheduling (see DESIGN.md
// §15 for the happens-before chain).
func (ss *ShardSync) SetLookahead(direct [][]Time) {
	la := make([][]Time, len(direct))
	for i := range la {
		la[i] = make([]Time, len(direct))
		copy(la[i], direct[i])
		la[i][i] = maxTime // no self-edges: the diagonal closes to min cycle
	}
	closeWalks(la)
	ss.la.Store(&la)
}

// closeWalks closes a direct lookahead matrix over walks of length ≥ 1 in
// place (Floyd–Warshall; shard counts are small).
func closeWalks(la [][]Time) {
	s := len(la)
	for k := 0; k < s; k++ {
		for i := 0; i < s; i++ {
			if la[i][k] == maxTime {
				continue
			}
			for j := 0; j < s; j++ {
				if la[k][j] == maxTime {
					continue
				}
				if d := la[i][k] + la[k][j]; d < la[i][j] {
					la[i][j] = d
				}
			}
		}
	}
}

// MinFrontier returns the minimum published frontier across all shards.
// The epoch-rollover leader spins on it to detect the boundary barrier:
// every frontier at or past the boundary means every shard has executed
// all its pre-boundary events and every conduit ring has been drained (an
// undrained message caps its sender's frontier at the send time).
func (ss *ShardSync) MinFrontier() Time {
	t := maxTime
	for k := range ss.fr {
		if f := Time(ss.fr[k].v.Load()); f < t {
			t = f
		}
	}
	return t
}

// Lookahead returns the closed (minimum-walk) lookahead from shard k to
// shard j — for k == j the minimum round trip through any other shard;
// MaxTime when no such influence is possible.
func (ss *ShardSync) Lookahead(k, j int) Time { return (*ss.la.Load())[k][j] }

// Publish records shard k's frontier: a promise that shard k will not mint
// any new influence before t. Callers must derive t from measurements only
// — min(NextLowerBound after draining inbound rings, earliest undrained
// outbound send time) — never from other shards' frontiers, and must be
// monotonically non-decreasing per shard.
func (ss *ShardSync) Publish(k int, t Time) { ss.fr[k].v.Store(int64(t)) }

// Frontier returns shard k's last published frontier.
func (ss *ShardSync) Frontier(k int) Time { return Time(ss.fr[k].v.Load()) }

// Target returns the conservative execution bound for shard j: it may run
// every event strictly before the returned time. The k == j term is the
// echo bound — shard j's own frontier plus the minimum round trip, since
// a neighbour may respond to one of j's future sends with zero turnaround.
// MaxTime means j is unconstrained (no shard — itself included — can route
// influence to it, or all have terminated).
func (ss *ShardSync) Target(j int) Time {
	t := maxTime
	m := *ss.la.Load()
	for k := range ss.fr {
		la := m[k][j]
		if la == maxTime {
			continue
		}
		f := Time(ss.fr[k].v.Load())
		if f == maxTime {
			continue // k terminated: constrains nobody
		}
		if b := f + la; b < t {
			t = b
		}
	}
	return t
}
