package sim

import "math/bits"

// TimerStats is the per-horizon timer census: how far ahead events are
// scheduled, where the scheduler placed them (heap because already due,
// wheel level 0, wheel level 1, heap overflow beyond the wheel horizon),
// and where cancels found them. It exists to verify that the timing wheel
// actually absorbs the short-horizon, cancel-heavy timer classes
// (SIFS/DIFS gaps, backoff slots, RMAC's busy-tone windows) and to guide
// future slot-width tuning. Enable with Engine.EnableTimerStats; disabled
// it costs one nil check per schedule/cancel.
type TimerStats struct {
	// Scheduled counts schedules by ⌈log2⌉ bucket of the delay: bucket b
	// holds deltas in [2^(b-1), 2^b) ns, bucket 0 holds delta 0.
	Scheduled [statsBuckets]uint64
	// Cancelled counts cancels by the same bucketing of the *remaining*
	// delay at cancel time (how far before its deadline the event died).
	Cancelled [statsBuckets]uint64
	// Placed counts schedules by placement class (PlaceDue..PlaceOverflow).
	Placed [placeClasses]uint64
	// CancelledIn counts cancels by where the event was found: in a wheel
	// slot (O(1) unlink) or already in the heap (O(log n) removal).
	CancelledIn [2]uint64
}

// Placement classes for TimerStats.Placed.
const (
	placeDue      = iota // due within the already-flushed frontier slot → heap
	placeL0              // wheel level 0 (≤ ~65 µs ahead)
	placeL1              // wheel level 1 (≤ ~67 ms ahead)
	placeOverflow        // beyond the wheel horizon → heap
	placeClasses
)

// Cancel location classes for TimerStats.CancelledIn.
const (
	cancelledInWheel = iota
	cancelledInHeap
)

// statsBuckets covers log2 deltas up to 2^47 ns ≈ 39 hours, far beyond
// any run horizon; larger deltas clamp into the last bucket.
const statsBuckets = 48

// PlaceClassName names a TimerStats.Placed index for reports.
func PlaceClassName(i int) string {
	switch i {
	case placeDue:
		return "due (frontier slot, heap)"
	case placeL0:
		return "wheel L0 (≤65µs)"
	case placeL1:
		return "wheel L1 (≤67ms)"
	case placeOverflow:
		return "overflow (>67ms, heap)"
	}
	return "?"
}

// CancelClassName names a TimerStats.CancelledIn index for reports.
func CancelClassName(i int) string {
	if i == cancelledInWheel {
		return "in wheel (O(1) unlink)"
	}
	return "in heap (O(log n) removal)"
}

// PlaceClassLabel is the machine-readable form of PlaceClassName, used
// as the metric label value for TimerStats.Placed index i.
func PlaceClassLabel(i int) string {
	switch i {
	case placeDue:
		return "due"
	case placeL0:
		return "wheel_l0"
	case placeL1:
		return "wheel_l1"
	case placeOverflow:
		return "overflow"
	}
	return "?"
}

// CancelClassLabel is the machine-readable form of CancelClassName, used
// as the metric label value for TimerStats.CancelledIn index i.
func CancelClassLabel(i int) string {
	if i == cancelledInWheel {
		return "wheel"
	}
	return "heap"
}

// NumPlaceClasses and NumCancelClasses size per-class metric families.
const (
	NumPlaceClasses  = placeClasses
	NumCancelClasses = 2
)

// BucketRange describes bucket b's delta range in nanoseconds.
func BucketRange(b int) (lo, hi Time) {
	if b == 0 {
		return 0, 0
	}
	return Time(1) << (b - 1), Time(1)<<b - 1
}

func bucketOf(delta Time) int {
	b := bits.Len64(uint64(delta))
	if b >= statsBuckets {
		b = statsBuckets - 1
	}
	return b
}

func (s *TimerStats) place(class int, delta Time) {
	s.Scheduled[bucketOf(delta)]++
	s.Placed[class]++
}

// cancel records a cancel found at heap position pos (posWheel for a
// wheel-slot resident, posDue for the due list — both O(1) unlinks) with
// the given remaining delay.
func (s *TimerStats) cancel(pos int32, remaining Time) {
	s.Cancelled[bucketOf(remaining)]++
	if pos == posWheel || pos == posDue {
		s.CancelledIn[cancelledInWheel]++
	} else {
		s.CancelledIn[cancelledInHeap]++
	}
}

// TotalScheduled sums the schedule census.
func (s *TimerStats) TotalScheduled() uint64 {
	var t uint64
	for _, v := range s.Scheduled {
		t += v
	}
	return t
}

// TotalCancelled sums the cancel census.
func (s *TimerStats) TotalCancelled() uint64 {
	var t uint64
	for _, v := range s.Cancelled {
		t += v
	}
	return t
}

// EnableTimerStats attaches (and returns) a timer census to the engine.
// Enable it before the run starts; the census is purely observational and
// never perturbs event order.
func (e *Engine) EnableTimerStats() *TimerStats {
	if e.tstats == nil {
		e.tstats = &TimerStats{}
	}
	return e.tstats
}
