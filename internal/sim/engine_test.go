package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(30*Microsecond, func() { got = append(got, 3) })
	e.Schedule(10*Microsecond, func() { got = append(got, 1) })
	e.Schedule(20*Microsecond, func() { got = append(got, 2) })
	e.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30*Microsecond {
		t.Fatalf("now = %v, want 30µs", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5*Microsecond, func() { got = append(got, i) })
	}
	e.RunAll()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("simultaneous events not in FIFO order: %v", got)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.After(Microsecond, func() { fired = true })
	ev.Cancel()
	e.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	e := NewEngine(1)
	fired := false
	later := e.Schedule(2*Microsecond, func() { fired = true })
	e.Schedule(Microsecond, func() { later.Cancel() })
	e.RunAll()
	if fired {
		t.Fatal("event fired despite cancellation from an earlier event")
	}
}

func TestRunHorizon(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i)*Second, func() { count++ })
	}
	e.Run(5 * Second)
	if count != 5 {
		t.Fatalf("events before horizon = %d, want 5", count)
	}
	if e.Now() != 5*Second {
		t.Fatalf("now = %v, want 5s", e.Now())
	}
	e.Run(20 * Second)
	if count != 10 {
		t.Fatalf("events after resume = %d, want 10", count)
	}
}

func TestRunHorizonInclusive(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(Second, func() { fired = true })
	e.Run(Second)
	if !fired {
		t.Fatal("event exactly at horizon did not fire")
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.RunAll()
	if count != 3 {
		t.Fatalf("count = %d, want 3 after Stop", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		e.Schedule(Second-1, func() {})
	})
	e.RunAll()
}

func TestNegativeAfterPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("negative After delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		e := NewEngine(seed)
		var trace []int
		var recurse func(depth int)
		recurse = func(depth int) {
			if depth > 6 {
				return
			}
			n := e.Rand().Intn(3) + 1
			for i := 0; i < n; i++ {
				v := e.Rand().Intn(1000)
				e.After(Time(v)*Microsecond, func() {
					trace = append(trace, v)
					recurse(depth + 1)
				})
			}
		}
		recurse(0)
		e.Run(10 * Second)
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces (suspicious)")
	}
}

// Property: events always fire in nondecreasing time order regardless of
// insertion order.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(7)
		var fired []Time
		for _, d := range delays {
			at := Time(d) * Microsecond
			e.Schedule(at, func() { fired = append(fired, e.Now()) })
		}
		e.RunAll()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the heap never loses events — everything scheduled either fires
// or was cancelled.
func TestPropertyNoLostEvents(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		e := NewEngine(seed)
		r := rand.New(rand.NewSource(seed))
		total := int(n)%64 + 1
		fired, cancelled := 0, 0
		evs := make([]Event, 0, total)
		for i := 0; i < total; i++ {
			ev := e.Schedule(Time(r.Intn(100))*Microsecond, func() { fired++ })
			evs = append(evs, ev)
		}
		for _, ev := range evs {
			if r.Intn(2) == 0 {
				if !ev.Canceled() {
					ev.Cancel()
					cancelled++
				}
			}
		}
		e.RunAll()
		return fired+cancelled == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTimerRestart(t *testing.T) {
	e := NewEngine(1)
	fires := 0
	tm := NewTimer(e, func() { fires++ })
	tm.Start(10 * Microsecond)
	e.Schedule(5*Microsecond, func() { tm.Start(20 * Microsecond) }) // restart before fire
	e.RunAll()
	if fires != 1 {
		t.Fatalf("fires = %d, want 1 (restart must cancel prior schedule)", fires)
	}
	if e.Now() != 25*Microsecond {
		t.Fatalf("fire time = %v, want 25µs", e.Now())
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := NewTimer(e, func() { fired = true })
	tm.Start(Microsecond)
	if !tm.Pending() {
		t.Fatal("timer not pending after Start")
	}
	if at, ok := tm.Deadline(); !ok || at != Microsecond {
		t.Fatalf("deadline = %v,%v, want 1µs,true", at, ok)
	}
	tm.Stop()
	if tm.Pending() {
		t.Fatal("timer pending after Stop")
	}
	e.RunAll()
	if fired {
		t.Fatal("stopped timer fired")
	}
	tm.Stop() // idempotent
}

func TestTimerPendingClearsOnFire(t *testing.T) {
	e := NewEngine(1)
	var tm *Timer
	tm = NewTimer(e, func() {
		if tm.Pending() {
			t.Error("timer still pending inside its own callback")
		}
	})
	tm.Start(Microsecond)
	e.RunAll()
	if at, ok := tm.Deadline(); ok {
		t.Fatalf("idle timer reports a deadline: %v,%v, want ok=false", at, ok)
	}
}

func TestTimeConversions(t *testing.T) {
	if Duration(time.Millisecond) != Millisecond {
		t.Fatal("Duration(1ms) != Millisecond")
	}
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Fatalf("Seconds = %v, want 2.5", got)
	}
	if got := (17 * Microsecond).Micros(); got != 17 {
		t.Fatalf("Micros = %v, want 17", got)
	}
	if s := (20 * Microsecond).String(); s != "20µs" {
		t.Fatalf("String = %q", s)
	}
}
