package sim

import "testing"

func TestShardSyncClosure(t *testing.T) {
	inf := Time(MaxTime)
	direct := [][]Time{
		{inf, 5, inf},
		{7, inf, 10},
		{inf, 3, inf},
	}
	ss := NewShardSync(direct)
	want := [][]Time{
		{12, 5, 15},
		{7, 12, 10},
		{10, 3, 13},
	}
	for k := range want {
		for j := range want[k] {
			if got := ss.Lookahead(k, j); got != want[k][j] {
				t.Errorf("Lookahead(%d,%d) = %v, want %v", k, j, got, want[k][j])
			}
		}
	}
}

func TestShardSyncClosureDecoupled(t *testing.T) {
	inf := Time(MaxTime)
	ss := NewShardSync([][]Time{{inf, inf}, {inf, inf}})
	for k := 0; k < 2; k++ {
		for j := 0; j < 2; j++ {
			if got := ss.Lookahead(k, j); got != inf {
				t.Errorf("Lookahead(%d,%d) = %v, want MaxTime", k, j, got)
			}
		}
	}
	if got := ss.Target(0); got != MaxTime {
		t.Errorf("decoupled Target = %v, want MaxTime", got)
	}
}

// TestShardSyncTarget pins the target formula, in particular the echo
// term: shard 0's own frontier plus the minimum round trip bounds it even
// when the other frontiers are far ahead.
func TestShardSyncTarget(t *testing.T) {
	inf := Time(MaxTime)
	ss := NewShardSync([][]Time{
		{inf, 5, inf},
		{7, inf, 10},
		{inf, 3, inf},
	})
	ss.Publish(0, 100) // echo term: 100 + (5+7) = 112
	ss.Publish(1, 1000)
	ss.Publish(2, 1000)
	if got := ss.Target(0); got != 112 {
		t.Errorf("Target(0) = %v, want 112 (echo bound)", got)
	}
	ss.Publish(0, 5000)
	if got := ss.Target(0); got != 1007 {
		t.Errorf("Target(0) = %v, want 1007 (frontier 1 + lookahead 7)", got)
	}
	ss.Publish(1, MaxTime) // terminated shard constrains nobody
	if got := ss.Target(0); got != 1010 {
		t.Errorf("Target(0) = %v, want 1010 (shard 2 via relay closure)", got)
	}
	if got := ss.Frontier(1); got != MaxTime {
		t.Errorf("Frontier(1) = %v", got)
	}
}

type orderRec struct {
	log *[]int
	id  int
}

func (o orderRec) Call(int32) { *o.log = append(*o.log, o.id) }

// TestScheduleCrossCallOrder: cross events interleave with local events by
// (time, seq) — local events first (their sequence numbers stay below
// CrossSeqBase), then cross events in sender-minted sequence order,
// independent of injection order.
func TestScheduleCrossCallOrder(t *testing.T) {
	eng := NewEngine(1)
	var log []int
	at := Time(1000)
	eng.ScheduleCrossCall(at, orderRec{&log, 3}, 0, CrossSeq(1, 0))
	eng.ScheduleCrossCall(at, orderRec{&log, 2}, 0, CrossSeq(0, 7))
	eng.ScheduleCall(at, orderRec{&log, 1}, 0)
	eng.Run(at)
	if len(log) != 3 || log[0] != 1 || log[1] != 2 || log[2] != 3 {
		t.Fatalf("execution order = %v, want [1 2 3]", log)
	}
}

// TestNextLowerBoundExact schedules one event in each scheduler tier (due
// list, wheel level 0, wheel level 1, overflow heap) and checks the
// reported bound is the exact minimum event time each round.
func TestNextLowerBoundExact(t *testing.T) {
	eng := NewEngine(1)
	if got := eng.NextLowerBound(); got != MaxTime {
		t.Fatalf("empty engine bound = %v, want MaxTime", got)
	}
	var log []int
	times := []Time{3, 333, 70_000, 5_000_000_000}
	for i, at := range times {
		eng.ScheduleCall(at, orderRec{&log, i}, 0)
	}
	for _, at := range times {
		if got := eng.NextLowerBound(); got != at {
			t.Fatalf("bound = %v, want %v", got, at)
		}
		eng.Run(at)
	}
	if got := eng.NextLowerBound(); got != MaxTime {
		t.Fatalf("drained engine bound = %v, want MaxTime", got)
	}
	if len(log) != len(times) {
		t.Fatalf("ran %d events, want %d", len(log), len(times))
	}
}
