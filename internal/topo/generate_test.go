package topo

import (
	"math/rand"
	"testing"

	"rmac/internal/geom"
)

// TestGeneratorDeterminism pins the placement-determinism contract the
// sharded engine builds on: the same (parameters, seed) pair yields
// bit-identical coordinates from every generator.
func TestGeneratorDeterminism(t *testing.T) {
	field := geom.Rect{W: 600, H: 400}
	gens := map[string]func(seed int64) Placement{
		"poisson": func(seed int64) Placement {
			return PoissonDiscPlacement(500, field, 0, rand.New(rand.NewSource(seed)))
		},
		"metro": func(seed int64) Placement {
			return MetroPlacement(500, 4, field, 120, rand.New(rand.NewSource(seed)))
		},
	}
	for name, gen := range gens {
		a, b := gen(42), gen(42)
		if len(a.Points) != len(b.Points) {
			t.Fatalf("%s: count diverged: %d vs %d", name, len(a.Points), len(b.Points))
		}
		for i := range a.Points {
			if a.Points[i] != b.Points[i] {
				t.Fatalf("%s: point %d diverged: %v vs %v", name, i, a.Points[i], b.Points[i])
			}
		}
		c := gen(43)
		same := true
		for i := range a.Points {
			if a.Points[i] != c.Points[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced identical placements", name)
		}
	}
}

func TestPoissonDiscSpacing(t *testing.T) {
	field := geom.Rect{W: 600, H: 400}
	n := 400
	minDist := AutoSpacing(n, field)
	p := PoissonDiscPlacement(n, field, minDist, rand.New(rand.NewSource(1)))
	if len(p.Points) != n {
		t.Fatalf("got %d points, want %d", len(p.Points), n)
	}
	// In the guaranteed regime (minDist = AutoSpacing) Bridson reaches n
	// without the uniform top-up, so the pairwise bound must hold exactly.
	for i := 0; i < n; i++ {
		if !field.Contains(p.Points[i]) {
			t.Fatalf("point %d outside field: %v", i, p.Points[i])
		}
		for j := i + 1; j < n; j++ {
			if d := p.Points[i].Dist(p.Points[j]); d < minDist {
				t.Fatalf("points %d,%d only %.2fm apart, want ≥ %.2f", i, j, d, minDist)
			}
		}
	}
}

func TestMetroPlacementShape(t *testing.T) {
	field := geom.Rect{W: 600, H: 300}
	const n, districts, gap = 203, 3, 150.0
	p := MetroPlacement(n, districts, field, gap, rand.New(rand.NewSource(5)))
	if len(p.Points) != n {
		t.Fatalf("got %d points, want %d", len(p.Points), n)
	}
	dw := (field.W - gap*(districts-1)) / districts
	counts := make([]int, districts)
	last := -1
	for i, pt := range p.Points {
		d := int(pt.X / (dw + gap))
		if d < 0 || d >= districts {
			t.Fatalf("point %d at %v outside all districts", i, pt)
		}
		if off := pt.X - float64(d)*(dw+gap); off > dw {
			t.Fatalf("point %d at %v lands in the gap after district %d", i, pt, d)
		}
		if d < last {
			t.Fatalf("point %d in district %d after district %d: ids must ascend left to right", i, d, last)
		}
		last = d
		counts[d]++
	}
	for d, c := range counts {
		if c < n/districts || c > n/districts+1 {
			t.Fatalf("district %d holds %d nodes, want balanced %d±1", d, c, n/districts)
		}
	}
}

// TestPartitionStripsMetro: on a metro placement the quantile cuts must
// snap into the inter-district voids, recovering the districts exactly and
// keeping node ids contiguous per shard.
func TestPartitionStripsMetro(t *testing.T) {
	field := geom.Rect{W: 600, H: 300}
	const n, districts, gap = 240, 3, 150.0
	p := MetroPlacement(n, districts, field, gap, rand.New(rand.NewSource(9)))
	part := PartitionStrips(p, districts)
	if len(part.Cuts) != districts-1 {
		t.Fatalf("cuts: %v", part.Cuts)
	}
	dw := (field.W - gap*(districts-1)) / districts
	for s, cut := range part.Cuts {
		lo := float64(s)*(dw+gap) + dw // end of district s
		hi := lo + gap                 // start of district s+1
		if cut <= lo || cut >= hi {
			t.Fatalf("cut %d at %.1f missed the void (%.1f, %.1f)", s, cut, lo, hi)
		}
	}
	next := 0
	for s, ids := range part.Nodes {
		if len(ids) != n/districts {
			t.Fatalf("shard %d holds %d nodes, want %d", s, len(ids), n/districts)
		}
		for _, id := range ids {
			if id != next {
				t.Fatalf("shard %d ids not contiguous: got %d, want %d", s, id, next)
			}
			if part.Shard[id] != s {
				t.Fatalf("node %d: Shard[]=%d but listed under %d", id, part.Shard[id], s)
			}
			next++
		}
	}
}

func TestPartitionStripsBalance(t *testing.T) {
	field := geom.Rect{W: 1000, H: 400}
	p := PoissonDiscPlacement(2000, field, 0, rand.New(rand.NewSource(3)))
	for _, shards := range []int{1, 2, 5, 8} {
		part := PartitionStrips(p, shards)
		// Each cut may drift up to slack from its quantile, and both cuts
		// bounding a strip can drift toward each other: 2·slack tolerance.
		slack := 2000 / (4 * shards)
		for s, ids := range part.Nodes {
			want := 2000 / shards
			if len(ids) < want-2*slack-1 || len(ids) > want+2*slack+1 {
				t.Fatalf("shards=%d: shard %d holds %d nodes, want %d±%d",
					shards, s, len(ids), want, 2*slack)
			}
		}
		// Strips are contiguous in X: every node left of a cut belongs to a
		// lower shard than every node right of it.
		for i, pt := range p.Points {
			s := part.Shard[i]
			for c := 0; c < s; c++ {
				if pt.X < part.Cuts[c] {
					t.Fatalf("shards=%d: node %d at X=%.1f below cut %d (%.1f) but in shard %d",
						shards, i, pt.X, c, part.Cuts[c], s)
				}
			}
		}
	}
}
