package topo

import (
	"math"
	"math/rand"

	"rmac/internal/geom"
)

// Large-topology generators for the sharded engine's 10k–100k-node runs.
// All of them are deterministic functions of (parameters, rng stream):
// the same seed yields bit-identical placements (see
// TestGeneratorDeterminism), which the sharded determinism contract
// builds on.

// AutoSpacing picks a Poisson-disc minimum distance for n nodes on the
// field: the largest radius that still comfortably fits n points. Maximal
// Poisson-disc samples approach a packing density of ~0.54·area/r², so
// 0.75·sqrt(area/n) leaves enough slack for Bridson's dart throwing to
// reach n without saturating.
func AutoSpacing(n int, field geom.Rect) float64 {
	if n <= 0 {
		return 1
	}
	return 0.75 * math.Sqrt(field.W*field.H/float64(n))
}

// PoissonDiscPlacement generates n points with pairwise distance ≥ minDist
// via Bridson's algorithm (k=30 candidates per active point). If the
// domain saturates before n points fit, the remainder is filled uniformly
// at random (documented density overshoot beats failing the run); pass
// minDist ≤ AutoSpacing(n, field) to stay in the guaranteed regime.
func PoissonDiscPlacement(n int, field geom.Rect, minDist float64, rng *rand.Rand) Placement {
	if minDist <= 0 {
		minDist = AutoSpacing(n, field)
	}
	pts := make([]geom.Point, 0, n)
	// Background grid with cell = r/√2: one sample per cell suffices for
	// the neighbourhood rejection test.
	cell := minDist / math.Sqrt2
	gw := int(math.Ceil(field.W/cell)) + 1
	gh := int(math.Ceil(field.H/cell)) + 1
	grid := make([]int32, gw*gh)
	for i := range grid {
		grid[i] = -1
	}
	cellOf := func(p geom.Point) (int, int) {
		return int(p.X / cell), int(p.Y / cell)
	}
	fits := func(p geom.Point) bool {
		cx, cy := cellOf(p)
		r2 := minDist * minDist
		for y := cy - 2; y <= cy+2; y++ {
			if y < 0 || y >= gh {
				continue
			}
			for x := cx - 2; x <= cx+2; x++ {
				if x < 0 || x >= gw {
					continue
				}
				if j := grid[y*gw+x]; j >= 0 && pts[j].Dist2(p) < r2 {
					return false
				}
			}
		}
		return true
	}
	place := func(p geom.Point) {
		cx, cy := cellOf(p)
		grid[cy*gw+cx] = int32(len(pts))
		pts = append(pts, p)
	}
	active := make([]int, 0, n)
	place(field.RandomPoint(rng))
	active = append(active, 0)
	const k = 30
	for len(pts) < n && len(active) > 0 {
		ai := rng.Intn(len(active))
		base := pts[active[ai]]
		found := false
		for c := 0; c < k && len(pts) < n; c++ {
			ang := rng.Float64() * 2 * math.Pi
			rad := minDist * (1 + rng.Float64())
			p := geom.Point{X: base.X + rad*math.Cos(ang), Y: base.Y + rad*math.Sin(ang)}
			if !field.Contains(p) || !fits(p) {
				continue
			}
			place(p)
			active = append(active, len(pts)-1)
			found = true
		}
		if !found {
			active[ai] = active[len(active)-1]
			active = active[:len(active)-1]
		}
	}
	// Saturated below n: top up uniformly (no min-distance guarantee for
	// the overflow points, deterministic all the same).
	for len(pts) < n {
		pts = append(pts, field.RandomPoint(rng))
	}
	return Placement{Field: field, Points: pts}
}

// MetroPlacement models a metropolitan deployment: `districts` dense
// uniform clusters side by side along X, separated by `gap` metres of
// empty ground. With gap wider than the interference range, no radio pair
// spans two districts — the districts are fully RF-decoupled, which is the
// ideal input for the sharded engine (infinite lookahead between shards;
// see DESIGN.md §14). Node ids are contiguous per district, ascending
// left to right, so the strip partitioner recovers the districts exactly.
func MetroPlacement(n, districts int, field geom.Rect, gap float64, rng *rand.Rand) Placement {
	if districts < 1 {
		districts = 1
	}
	dw := (field.W - gap*float64(districts-1)) / float64(districts)
	if dw <= 0 {
		panic("topo: MetroPlacement gap leaves no district width")
	}
	pts := make([]geom.Point, 0, n)
	for d := 0; d < districts; d++ {
		x0 := float64(d) * (dw + gap)
		cnt := n/districts + btoi(d < n%districts)
		for i := 0; i < cnt; i++ {
			pts = append(pts, geom.Point{
				X: x0 + rng.Float64()*dw,
				Y: rng.Float64() * field.H,
			})
		}
	}
	return Placement{Field: field, Points: pts}
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}
