// Package topo generates node placements and analyses the resulting
// connectivity graphs and multicast trees, reproducing the §4.1.1
// topology statistics (average/99-percentile hops to root, average/99-
// percentile children per non-leaf node).
package topo

import (
	"math/rand"

	"rmac/internal/geom"
	"rmac/internal/stats"
)

// Placement is a set of node positions on a field.
type Placement struct {
	Field  geom.Rect
	Points []geom.Point
}

// RandomPlacement places n nodes uniformly at random on the field.
func RandomPlacement(n int, field geom.Rect, rng *rand.Rand) Placement {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = field.RandomPoint(rng)
	}
	return Placement{Field: field, Points: pts}
}

// ConnectedRandomPlacement retries RandomPlacement until the disc graph at
// the given radio range is connected (the paper's tree reaches all 75
// nodes, implying connected topologies), up to maxTries attempts. It
// returns the placement and whether connectivity was achieved.
func ConnectedRandomPlacement(n int, field geom.Rect, radioRange float64, rng *rand.Rand, maxTries int) (Placement, bool) {
	for try := 0; try < maxTries; try++ {
		p := RandomPlacement(n, field, rng)
		if p.Connected(radioRange) {
			return p, true
		}
	}
	return RandomPlacement(n, field, rng), false
}

// Adjacency returns the disc-graph adjacency lists at the given range.
func (p Placement) Adjacency(radioRange float64) [][]int {
	n := len(p.Points)
	r2 := radioRange * radioRange
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if p.Points[i].Dist2(p.Points[j]) <= r2 {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
	}
	return adj
}

// Connected reports whether the disc graph is connected.
func (p Placement) Connected(radioRange float64) bool {
	n := len(p.Points)
	if n == 0 {
		return true
	}
	adj := p.Adjacency(radioRange)
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == n
}

// BFSTree builds the shortest-hop tree rooted at root over the disc
// graph, breaking ties toward the highest-degree parent (then lowest ID) —
// a static approximation of the BLESS protocol's convergence, where nodes
// prefer already-popular parents, concentrating children on fewer
// forwarders (§4.1.1). Parent[i] is -1 for the root and for unreachable
// nodes.
func (p Placement) BFSTree(root int, radioRange float64) []int {
	n := len(p.Points)
	adj := p.Adjacency(radioRange)
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[root] = 0
	queue := []int{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
		if i == root || dist[i] < 0 {
			continue
		}
		bestDeg := -1
		for _, j := range adj[i] { // adjacency lists are ID-ordered
			if dist[j] == dist[i]-1 && len(adj[j]) > bestDeg {
				parent[i] = j
				bestDeg = len(adj[j])
			}
		}
	}
	return parent
}

// TreeStats summarises a tree given parent pointers, in the §4.1.1 shape.
type TreeStats struct {
	Reachable   int // nodes with a path to the root (root included)
	Hops        stats.Summary
	Children    stats.Summary // over non-leaf nodes only
	NonLeaf     int
	Leaf        int
	Unreachable int
}

// AnalyzeTree computes hop and fan-out statistics of the tree encoded by
// parent pointers (parent[root] == -1; unreachable nodes also -1).
func AnalyzeTree(parent []int, root int) TreeStats {
	n := len(parent)
	childCount := make([]int, n)
	hops := make([]int, n)
	for i := range hops {
		hops[i] = -1
	}
	hops[root] = 0
	for i := 0; i < n; i++ {
		if i != root && parent[i] >= 0 {
			childCount[parent[i]]++
		}
	}
	// Resolve hop counts by chasing parents (with cycle guard).
	var chase func(i, depth int) int
	chase = func(i, depth int) int {
		if depth > n {
			return -1 // cycle
		}
		if hops[i] >= 0 {
			return hops[i]
		}
		if parent[i] < 0 {
			return -1
		}
		h := chase(parent[i], depth+1)
		if h < 0 {
			return -1
		}
		hops[i] = h + 1
		return hops[i]
	}
	var ts TreeStats
	var hopSample, childSample stats.Sample
	for i := 0; i < n; i++ {
		if chase(i, 0) < 0 {
			ts.Unreachable++
			continue
		}
		ts.Reachable++
		if i != root {
			hopSample.Add(float64(hops[i]))
		}
		if childCount[i] > 0 {
			ts.NonLeaf++
			childSample.Add(float64(childCount[i]))
		} else {
			ts.Leaf++
		}
	}
	ts.Hops = hopSample.Summarize()
	ts.Children = childSample.Summarize()
	return ts
}
