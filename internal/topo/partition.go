package topo

import (
	"sort"
)

// Partition assigns every node of a placement to one of `Shards` vertical
// strips for the sharded engine. Cuts are the X coordinates separating
// consecutive strips.
type Partition struct {
	Shards int
	Cuts   []float64 // len Shards-1, ascending
	Shard  []int     // node id → shard index
	Nodes  [][]int   // shard index → ascending node ids
}

// PartitionStrips splits the placement into `shards` contiguous vertical
// strips of (nearly) equal population, nudging each cut to the widest
// X-gap within ±1/(4·shards) of the population quantile. Wider gaps mean
// fewer border radios and larger lookahead — on a metro-style placement
// the cuts snap into the inter-district voids and the shards decouple
// entirely. Deterministic: depends only on the positions.
// MinStripWidth returns the narrowest strip's width for the given field
// width — the geometric budget a mobile sharded run has for its per-epoch
// displacement envelope. The epoch protocol needs the envelope (2 ×
// MaxSpeed × epoch) to stay below it: a node that could traverse a whole
// strip within one epoch would make the border bands of non-adjacent
// shards overlap and collapse every pairwise lookahead toward the floor.
func (p Partition) MinStripWidth(fieldW float64) float64 {
	if len(p.Cuts) == 0 {
		return fieldW
	}
	w := p.Cuts[0]
	if r := fieldW - p.Cuts[len(p.Cuts)-1]; r < w {
		w = r
	}
	for i := 1; i < len(p.Cuts); i++ {
		if d := p.Cuts[i] - p.Cuts[i-1]; d < w {
			w = d
		}
	}
	return w
}

func PartitionStrips(p Placement, shards int) Partition {
	n := len(p.Points)
	part := Partition{
		Shards: shards,
		Cuts:   make([]float64, 0, shards-1),
		Shard:  make([]int, n),
		Nodes:  make([][]int, shards),
	}
	if shards <= 1 {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		if shards == 1 {
			part.Nodes[0] = ids
		}
		return part
	}
	xs := make([]float64, n)
	for i, pt := range p.Points {
		xs[i] = pt.X
	}
	sort.Float64s(xs)
	slack := n / (4 * shards)
	for s := 1; s < shards; s++ {
		ideal := s * n / shards
		lo, hi := ideal-slack, ideal+slack
		if lo < 1 {
			lo = 1
		}
		if hi > n-1 {
			hi = n - 1
		}
		best, bestGap := ideal, -1.0
		for i := lo; i <= hi; i++ {
			if g := xs[i] - xs[i-1]; g > bestGap {
				best, bestGap = i, g
			}
		}
		cut := (xs[best-1] + xs[best]) / 2
		if len(part.Cuts) > 0 && cut <= part.Cuts[len(part.Cuts)-1] {
			cut = part.Cuts[len(part.Cuts)-1] // degenerate (empty strip); keep cuts sorted
		}
		part.Cuts = append(part.Cuts, cut)
	}
	for i, pt := range p.Points {
		s := sort.SearchFloat64s(part.Cuts, pt.X)
		// SearchFloat64s puts x == cut into the right strip; any
		// consistent tie-break works.
		part.Shard[i] = s
		part.Nodes[s] = append(part.Nodes[s], i)
	}
	return part
}
