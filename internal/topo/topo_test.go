package topo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rmac/internal/geom"
)

func TestRandomPlacementInField(t *testing.T) {
	field := geom.Rect{W: 500, H: 300}
	p := RandomPlacement(75, field, rand.New(rand.NewSource(1)))
	if len(p.Points) != 75 {
		t.Fatal("wrong count")
	}
	for _, pt := range p.Points {
		if !field.Contains(pt) {
			t.Fatalf("point %v outside field", pt)
		}
	}
}

func TestAdjacencySymmetric(t *testing.T) {
	p := Placement{Points: []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 200, Y: 0}}}
	adj := p.Adjacency(75)
	if len(adj[0]) != 1 || adj[0][0] != 1 {
		t.Fatalf("adj[0] = %v", adj[0])
	}
	if len(adj[1]) != 1 || adj[1][0] != 0 {
		t.Fatalf("adj[1] = %v", adj[1])
	}
	if len(adj[2]) != 0 {
		t.Fatalf("adj[2] = %v", adj[2])
	}
}

func TestConnected(t *testing.T) {
	line := Placement{Points: []geom.Point{{X: 0, Y: 0}, {X: 70, Y: 0}, {X: 140, Y: 0}}}
	if !line.Connected(75) {
		t.Fatal("chain should be connected")
	}
	if line.Connected(60) {
		t.Fatal("sparse chain should be disconnected")
	}
	empty := Placement{}
	if !empty.Connected(75) {
		t.Fatal("empty placement is trivially connected")
	}
}

func TestConnectedRandomPlacement(t *testing.T) {
	field := geom.Rect{W: 500, H: 300}
	p, ok := ConnectedRandomPlacement(75, field, 75, rand.New(rand.NewSource(2)), 100)
	if !ok {
		t.Fatal("could not generate a connected 75-node placement (paper's setup)")
	}
	if !p.Connected(75) {
		t.Fatal("reported connected but is not")
	}
}

func TestBFSTreeChain(t *testing.T) {
	p := Placement{Points: []geom.Point{{X: 0, Y: 0}, {X: 70, Y: 0}, {X: 140, Y: 0}, {X: 210, Y: 0}}}
	parent := p.BFSTree(0, 75)
	want := []int{-1, 0, 1, 2}
	for i, w := range want {
		if parent[i] != w {
			t.Fatalf("parent = %v, want %v", parent, want)
		}
	}
	ts := AnalyzeTree(parent, 0)
	if ts.Reachable != 4 || ts.Unreachable != 0 {
		t.Fatalf("stats = %+v", ts)
	}
	if ts.Hops.Max != 3 || ts.Hops.Mean != 2 {
		t.Fatalf("hops = %+v", ts.Hops)
	}
	if ts.NonLeaf != 3 || ts.Leaf != 1 || ts.Children.Mean != 1 {
		t.Fatalf("children = %+v", ts)
	}
}

func TestBFSTreeStar(t *testing.T) {
	p := Placement{Points: []geom.Point{
		{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 0, Y: 50}, {X: -50, Y: 0}, {X: 0, Y: -50},
	}}
	parent := p.BFSTree(0, 75)
	ts := AnalyzeTree(parent, 0)
	if ts.NonLeaf != 1 || ts.Children.Max != 4 {
		t.Fatalf("star stats = %+v", ts)
	}
	if ts.Hops.Max != 1 {
		t.Fatalf("hops = %+v", ts.Hops)
	}
}

func TestAnalyzeTreeUnreachableAndCycle(t *testing.T) {
	// Node 3 unreachable; nodes 4<->5 form a cycle (stale routing state).
	parent := []int{-1, 0, 1, -1, 5, 4}
	ts := AnalyzeTree(parent, 0)
	if ts.Reachable != 3 {
		t.Fatalf("reachable = %d, want 3", ts.Reachable)
	}
	if ts.Unreachable != 3 {
		t.Fatalf("unreachable = %d, want 3 (orphan + cycle)", ts.Unreachable)
	}
}

// TestPaperTopologyStats reproduces the §4.1.1 numbers across random
// placements: "the average and 99 percentile number of hops to root ...
// are 3.87 and 10"; "the average and 99 percentile number of children for
// a non-leaf node are 3.54 and 9". We accept a band around them since the
// RNG differs.
func TestPaperTopologyStats(t *testing.T) {
	var hopsMeanSum, childMeanSum float64
	var hopsP99Max, childP99Max float64
	const runs = 20
	for seed := int64(0); seed < runs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, ok := ConnectedRandomPlacement(75, geom.Rect{W: 500, H: 300}, 75, rng, 200)
		if !ok {
			t.Fatalf("seed %d: no connected placement", seed)
		}
		ts := AnalyzeTree(p.BFSTree(0, 75), 0)
		if ts.Reachable != 75 {
			t.Fatalf("seed %d: tree reaches %d/75", seed, ts.Reachable)
		}
		hopsMeanSum += ts.Hops.Mean
		childMeanSum += ts.Children.Mean
		if ts.Hops.P99 > hopsP99Max {
			hopsP99Max = ts.Hops.P99
		}
		if ts.Children.P99 > childP99Max {
			childP99Max = ts.Children.P99
		}
	}
	hopsMean := hopsMeanSum / runs
	childMean := childMeanSum / runs
	if hopsMean < 2.5 || hopsMean > 5.5 {
		t.Fatalf("avg hops = %.2f, paper reports 3.87", hopsMean)
	}
	if childMean < 2.4 || childMean > 5.0 {
		t.Fatalf("avg children = %.2f, paper reports 3.54", childMean)
	}
	if hopsP99Max < 5 || hopsP99Max > 16 {
		t.Fatalf("p99 hops (max over runs) = %.0f, paper reports 10", hopsP99Max)
	}
	if childP99Max < 5 || childP99Max > 14 {
		t.Fatalf("p99 children (max over runs) = %.0f, paper reports 9", childP99Max)
	}
}

// Property: BFS trees never increase hop count along an edge by more than
// one and reach exactly the connected component of the root.
func TestPropertyBFSTreeIsShortestHop(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := RandomPlacement(40, geom.Rect{W: 400, H: 250}, rng)
		parent := p.BFSTree(0, 75)
		// Recompute hop distance independently.
		adj := p.Adjacency(75)
		dist := make([]int, len(p.Points))
		for i := range dist {
			dist[i] = -1
		}
		dist[0] = 0
		q := []int{0}
		for len(q) > 0 {
			v := q[0]
			q = q[1:]
			for _, w := range adj[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					q = append(q, w)
				}
			}
		}
		for i := range parent {
			if i == 0 {
				continue
			}
			if dist[i] < 0 {
				if parent[i] != -1 {
					return false
				}
				continue
			}
			if parent[i] < 0 || dist[i] != dist[parent[i]]+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
