// Package mobility implements the node movement models used in the paper's
// evaluation (§4.1.2): a stationary model and the random waypoint model of
// Bettstetter, parameterised by MIN-SPEED, MAX-SPEED and INTER-PAUSE.
//
// Models are queried lazily: PositionAt(t) computes the node position at any
// simulated time without per-tick events, which keeps the event queue free
// of mobility traffic. Queries must be made with nondecreasing t per node
// (the simulator's clock only moves forward); RandomWaypoint extends its
// precomputed trajectory on demand.
package mobility

import (
	"math/rand"

	"rmac/internal/geom"
	"rmac/internal/sim"
)

// Model yields the position of a single node over time.
type Model interface {
	// PositionAt returns the node's position at simulated time t.
	// t must be nondecreasing across calls.
	PositionAt(t sim.Time) geom.Point
}

// Stationary is a fixed-position model.
type Stationary struct {
	P geom.Point
}

// PositionAt always returns the fixed position.
func (s Stationary) PositionAt(sim.Time) geom.Point { return s.P }

// leg is one segment of a waypoint trajectory: hold at 'from' until start,
// then move linearly, arriving at 'to' at 'arrive', then pause until 'until'.
type leg struct {
	from, to      geom.Point
	start, arrive sim.Time
	until         sim.Time // end of pause at destination
}

// RandomWaypoint implements the random waypoint mobility model: pick a
// uniform destination in the field, move toward it at a speed drawn
// uniformly from [MinSpeed, MaxSpeed], pause for Pause, repeat.
//
// A MinSpeed of 0 is accepted (the paper uses it); a draw of exactly 0 m/s
// is re-drawn to avoid a node freezing forever, mirroring common simulator
// practice.
type RandomWaypoint struct {
	Field    geom.Rect
	MinSpeed float64 // m/s
	MaxSpeed float64 // m/s
	Pause    sim.Time

	rng  *rand.Rand
	legs []leg
}

// NewRandomWaypoint creates a waypoint model starting at start. Each node
// must get its own rng stream for determinism under lazy extension.
func NewRandomWaypoint(field geom.Rect, minSpeed, maxSpeed float64, pause sim.Time, start geom.Point, rng *rand.Rand) *RandomWaypoint {
	if maxSpeed <= 0 {
		panic("mobility: MaxSpeed must be positive")
	}
	m := &RandomWaypoint{Field: field, MinSpeed: minSpeed, MaxSpeed: maxSpeed, Pause: pause, rng: rng}
	m.legs = append(m.legs, leg{from: start, to: start, start: 0, arrive: 0, until: 0})
	return m
}

// extend appends trajectory legs until the trajectory covers time t.
func (m *RandomWaypoint) extend(t sim.Time) {
	for {
		last := m.legs[len(m.legs)-1]
		if last.until > t {
			return
		}
		dest := m.Field.RandomPoint(m.rng)
		speed := m.MinSpeed + m.rng.Float64()*(m.MaxSpeed-m.MinSpeed)
		for speed <= 1e-9 {
			speed = m.MinSpeed + m.rng.Float64()*(m.MaxSpeed-m.MinSpeed)
		}
		dist := last.to.Dist(dest)
		travel := sim.Time(dist / speed * float64(sim.Second))
		l := leg{
			from:   last.to,
			to:     dest,
			start:  last.until,
			arrive: last.until + travel,
		}
		l.until = l.arrive + m.Pause
		m.legs = append(m.legs, l)
		// Drop fully-past legs to bound memory on long runs; keep the most
		// recent few so slightly out-of-order queries within one event time
		// still resolve.
		if len(m.legs) > 64 {
			m.legs = append(m.legs[:0], m.legs[len(m.legs)-8:]...)
		}
	}
}

// PositionAt returns the node position at time t.
func (m *RandomWaypoint) PositionAt(t sim.Time) geom.Point {
	m.extend(t)
	// Find the leg containing t (legs are ordered; search from the back
	// since queries are near the trajectory end).
	for i := len(m.legs) - 1; i >= 0; i-- {
		l := m.legs[i]
		if t >= l.start || i == 0 {
			switch {
			case t >= l.arrive:
				return l.to // pausing at destination
			case t <= l.start:
				return l.from
			default:
				frac := float64(t-l.start) / float64(l.arrive-l.start)
				return l.from.Lerp(l.to, frac)
			}
		}
	}
	return m.legs[0].from
}
