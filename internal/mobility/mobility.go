// Package mobility implements the node movement models used in the paper's
// evaluation (§4.1.2): a stationary model and the random waypoint model of
// Bettstetter, parameterised by MIN-SPEED, MAX-SPEED and INTER-PAUSE.
//
// Models are queried lazily: PositionAt(t) computes the node position at any
// simulated time without per-tick events, which keeps the event queue free
// of mobility traffic. RandomWaypoint extends its precomputed trajectory on
// demand and discards history older than a retention horizon (Retain) behind
// the most advanced query it has seen; queries may jump backward by up to
// that horizon — the slack the sharded engine's cross-shard conduit needs
// when it replays a foreign transmission's start-time geometry — but a query
// older than the horizon fails loudly instead of silently clamping to the
// oldest surviving trajectory leg.
package mobility

import (
	"fmt"
	"math/rand"

	"rmac/internal/geom"
	"rmac/internal/sim"
)

// Model yields the position of a single node over time.
type Model interface {
	// PositionAt returns the node's position at simulated time t. t may
	// trail the most advanced query by at most the model's retention
	// horizon (see RandomWaypoint.Retain); implementations fail loudly on
	// older queries rather than return a stale clamp.
	PositionAt(t sim.Time) geom.Point
}

// SpeedBounded is implemented by models whose displacement over any
// interval dt is bounded by SpeedBound()·dt. The sharded engine uses the
// bound to build conservative per-epoch position envelopes (position ±
// SpeedBound·epoch) for its lookahead and ghost-set recomputation.
type SpeedBounded interface {
	// SpeedBound returns an upper bound on the node speed in m/s.
	SpeedBound() float64
}

// SpeedBoundOf returns the model's speed bound, or ok=false when the model
// does not expose one (an unbounded model cannot run on the sharded
// engine's epoch envelopes).
func SpeedBoundOf(m Model) (float64, bool) {
	if b, ok := m.(SpeedBounded); ok {
		return b.SpeedBound(), true
	}
	return 0, false
}

// Stationary is a fixed-position model.
type Stationary struct {
	P geom.Point
}

// PositionAt always returns the fixed position.
func (s Stationary) PositionAt(sim.Time) geom.Point { return s.P }

// SpeedBound implements SpeedBounded: a stationary node never moves.
func (s Stationary) SpeedBound() float64 { return 0 }

// leg is one segment of a waypoint trajectory: hold at 'from' until start,
// then move linearly, arriving at 'to' at 'arrive', then pause until 'until'.
type leg struct {
	from, to      geom.Point
	start, arrive sim.Time
	until         sim.Time // end of pause at destination
}

// RandomWaypoint implements the random waypoint mobility model: pick a
// uniform destination in the field, move toward it at a speed drawn
// uniformly from [MinSpeed, MaxSpeed], pause for Pause, repeat.
//
// A MinSpeed of 0 is accepted (the paper uses it); a draw of exactly 0 m/s
// is re-drawn to avoid a node freezing forever, mirroring common simulator
// practice.
type RandomWaypoint struct {
	Field    geom.Rect
	MinSpeed float64 // m/s
	MaxSpeed float64 // m/s
	Pause    sim.Time

	// Retain is the retention horizon: positions in
	// [maxSeen-Retain, maxSeen] stay exactly reconstructible, where
	// maxSeen is the most advanced query so far. Trajectory legs that
	// fell entirely behind the horizon are discarded to bound memory on
	// long runs; a query older than the horizon panics (PositionAt) or
	// reports ok=false (PositionAtOK). Zero selects DefaultRetain. Must
	// cover every backward query the caller can make — for sharded runs
	// that is the cross-shard delay bound (the maximum propagation delay
	// a conduit replays a foreign transmission's geometry by, well under
	// a millisecond), so the default of one simulated second is generous.
	Retain sim.Time

	rng  *rand.Rand
	legs []leg

	maxSeen sim.Time // most advanced query
	floor   sim.Time // oldest exactly-answerable time after trimming
}

// DefaultRetain is the retention horizon used when Retain is zero.
const DefaultRetain = 1 * sim.Second

// NewRandomWaypoint creates a waypoint model starting at start. Each node
// must get its own rng stream for determinism under lazy extension.
func NewRandomWaypoint(field geom.Rect, minSpeed, maxSpeed float64, pause sim.Time, start geom.Point, rng *rand.Rand) *RandomWaypoint {
	if maxSpeed <= 0 {
		panic("mobility: MaxSpeed must be positive")
	}
	m := &RandomWaypoint{Field: field, MinSpeed: minSpeed, MaxSpeed: maxSpeed, Pause: pause, rng: rng}
	m.legs = append(m.legs, leg{from: start, to: start, start: 0, arrive: 0, until: 0})
	return m
}

// extend appends trajectory legs until the trajectory covers time t.
func (m *RandomWaypoint) extend(t sim.Time) {
	for {
		last := m.legs[len(m.legs)-1]
		if last.until > t {
			return
		}
		dest := m.Field.RandomPoint(m.rng)
		speed := m.MinSpeed + m.rng.Float64()*(m.MaxSpeed-m.MinSpeed)
		for speed <= 1e-9 {
			speed = m.MinSpeed + m.rng.Float64()*(m.MaxSpeed-m.MinSpeed)
		}
		dist := last.to.Dist(dest)
		travel := sim.Time(dist / speed * float64(sim.Second))
		l := leg{
			from:   last.to,
			to:     dest,
			start:  last.until,
			arrive: last.until + travel,
		}
		l.until = l.arrive + m.Pause
		m.legs = append(m.legs, l)
		m.trim()
	}
}

// retain resolves the retention horizon.
func (m *RandomWaypoint) retain() sim.Time {
	if m.Retain > 0 {
		return m.Retain
	}
	return DefaultRetain
}

// trim drops legs that ended before the retention horizon. Legs are
// contiguous (legs[i].start == legs[i-1].until), so the first kept leg
// still covers the horizon itself; floor records the oldest time the
// remaining legs answer exactly. The copy-down keeps the slice's backing
// array, so a steady-state trajectory reuses the same storage forever.
func (m *RandomWaypoint) trim() {
	if len(m.legs) <= 64 {
		return // amortize: only compact once enough history accumulated
	}
	cutoff := m.maxSeen - m.retain()
	i := 0
	for i < len(m.legs)-1 && m.legs[i].until < cutoff {
		i++
	}
	if i == 0 {
		return
	}
	m.floor = m.legs[i].start
	n := copy(m.legs, m.legs[i:])
	m.legs = m.legs[:n]
}

// PositionAt returns the node position at time t. It panics when t
// predates the retention horizon — the silent alternative (clamping to
// the oldest surviving leg) returns a position that is simply wrong.
func (m *RandomWaypoint) PositionAt(t sim.Time) geom.Point {
	p, ok := m.PositionAtOK(t)
	if !ok {
		panic(fmt.Sprintf("mobility: query at %d ns predates retention horizon (oldest retained: %d ns, newest seen: %d ns)",
			int64(t), int64(m.floor), int64(m.maxSeen)))
	}
	return p
}

// PositionAtOK is PositionAt with an explicit failure path: ok is false
// when t predates the retention horizon and no exact answer exists.
func (m *RandomWaypoint) PositionAtOK(t sim.Time) (geom.Point, bool) {
	if t < m.floor {
		return geom.Point{}, false
	}
	if t > m.maxSeen {
		m.maxSeen = t
	}
	m.extend(t)
	// Find the leg containing t (legs are ordered; search from the back
	// since queries are near the trajectory end).
	for i := len(m.legs) - 1; i >= 0; i-- {
		l := m.legs[i]
		if t >= l.start || i == 0 {
			switch {
			case t >= l.arrive:
				return l.to, true // pausing at destination
			case t <= l.start:
				return l.from, true
			default:
				frac := float64(t-l.start) / float64(l.arrive-l.start)
				return l.from.Lerp(l.to, frac), true
			}
		}
	}
	return m.legs[0].from, true
}

// SpeedBound implements SpeedBounded.
func (m *RandomWaypoint) SpeedBound() float64 { return m.MaxSpeed }
