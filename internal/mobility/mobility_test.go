package mobility

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rmac/internal/geom"
	"rmac/internal/sim"
)

func TestStationary(t *testing.T) {
	s := Stationary{P: geom.Point{X: 10, Y: 20}}
	for _, tt := range []sim.Time{0, sim.Second, 100 * sim.Second} {
		if got := s.PositionAt(tt); got != s.P {
			t.Fatalf("PositionAt(%v) = %v", tt, got)
		}
	}
}

func TestWaypointStartsAtStart(t *testing.T) {
	field := geom.Rect{W: 500, H: 300}
	start := geom.Point{X: 100, Y: 100}
	m := NewRandomWaypoint(field, 0, 4, 10*sim.Second, start, rand.New(rand.NewSource(1)))
	if got := m.PositionAt(0); got != start {
		t.Fatalf("PositionAt(0) = %v, want %v", got, start)
	}
}

func TestWaypointStaysInField(t *testing.T) {
	field := geom.Rect{W: 500, H: 300}
	m := NewRandomWaypoint(field, 0, 8, 5*sim.Second, field.RandomPoint(rand.New(rand.NewSource(2))), rand.New(rand.NewSource(3)))
	for ts := sim.Time(0); ts < 600*sim.Second; ts += 100 * sim.Millisecond {
		p := m.PositionAt(ts)
		if !field.Contains(p) {
			t.Fatalf("position %v at %v outside field", p, ts)
		}
	}
}

func TestWaypointSpeedBound(t *testing.T) {
	field := geom.Rect{W: 500, H: 300}
	maxSpeed := 8.0
	m := NewRandomWaypoint(field, 0, maxSpeed, 0, geom.Point{X: 250, Y: 150}, rand.New(rand.NewSource(4)))
	prev := m.PositionAt(0)
	step := 50 * sim.Millisecond
	for ts := step; ts < 300*sim.Second; ts += step {
		cur := m.PositionAt(ts)
		v := prev.Dist(cur) / step.Seconds()
		if v > maxSpeed+1e-6 {
			t.Fatalf("instantaneous speed %.3f m/s exceeds max %v at %v", v, maxSpeed, ts)
		}
		prev = cur
	}
}

func TestWaypointActuallyMoves(t *testing.T) {
	field := geom.Rect{W: 500, H: 300}
	start := geom.Point{X: 250, Y: 150}
	m := NewRandomWaypoint(field, 1, 4, sim.Second, start, rand.New(rand.NewSource(5)))
	moved := false
	for ts := sim.Time(0); ts < 120*sim.Second; ts += sim.Second {
		if m.PositionAt(ts).Dist(start) > 1 {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("node never moved in 120 s")
	}
}

func TestWaypointPauses(t *testing.T) {
	// With an enormous pause, the node reaches its first destination and
	// then sits still for the rest of a long run.
	field := geom.Rect{W: 100, H: 100}
	m := NewRandomWaypoint(field, 5, 5, 10000*sim.Second, geom.Point{}, rand.New(rand.NewSource(6)))
	// Max travel time across the field at 5 m/s: sqrt(2)*100/5 ≈ 28.3 s.
	p1 := m.PositionAt(30 * sim.Second)
	p2 := m.PositionAt(200 * sim.Second)
	if p1.Dist(p2) > 1e-9 {
		t.Fatalf("node moved during pause: %v -> %v", p1, p2)
	}
}

func TestWaypointDeterministicPerSeed(t *testing.T) {
	field := geom.Rect{W: 500, H: 300}
	mk := func(seed int64) *RandomWaypoint {
		return NewRandomWaypoint(field, 0, 4, 10*sim.Second, geom.Point{X: 50, Y: 50}, rand.New(rand.NewSource(seed)))
	}
	a, b := mk(7), mk(7)
	for ts := sim.Time(0); ts < 200*sim.Second; ts += 777 * sim.Millisecond {
		if a.PositionAt(ts) != b.PositionAt(ts) {
			t.Fatalf("same-seed trajectories diverge at %v", ts)
		}
	}
}

func TestWaypointZeroMinSpeedNeverFreezes(t *testing.T) {
	// MinSpeed 0 must not produce a permanently frozen node (0 m/s draw).
	field := geom.Rect{W: 500, H: 300}
	for seed := int64(0); seed < 20; seed++ {
		m := NewRandomWaypoint(field, 0, 4, 0, geom.Point{X: 1, Y: 1}, rand.New(rand.NewSource(seed)))
		p0 := m.PositionAt(0)
		if m.PositionAt(1000*sim.Second).Dist(p0) < 1e-9 && m.PositionAt(500*sim.Second).Dist(p0) < 1e-9 {
			t.Fatalf("seed %d: node frozen with MinSpeed=0", seed)
		}
	}
}

func TestWaypointLongRunMemoryBounded(t *testing.T) {
	field := geom.Rect{W: 500, H: 300}
	m := NewRandomWaypoint(field, 4, 8, sim.Millisecond, geom.Point{}, rand.New(rand.NewSource(8)))
	m.PositionAt(3600 * sim.Second) // thousands of legs if unbounded
	if len(m.legs) > 64 {
		t.Fatalf("legs grew unbounded: %d", len(m.legs))
	}
}

// Property: positions remain in-field and trajectories are continuous
// (no teleporting faster than MaxSpeed) for arbitrary parameters.
func TestPropertyWaypointContinuity(t *testing.T) {
	f := func(seed int64, maxSpeedRaw, pauseRaw uint8) bool {
		field := geom.Rect{W: 300, H: 200}
		maxSpeed := float64(maxSpeedRaw%20) + 1
		pause := sim.Time(pauseRaw%10) * sim.Second
		rng := rand.New(rand.NewSource(seed))
		m := NewRandomWaypoint(field, 0, maxSpeed, pause, field.RandomPoint(rng), rng)
		prev := m.PositionAt(0)
		step := 100 * sim.Millisecond
		for ts := step; ts < 60*sim.Second; ts += step {
			cur := m.PositionAt(ts)
			if !field.Contains(cur) {
				return false
			}
			if prev.Dist(cur) > maxSpeed*step.Seconds()+1e-6 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNewRandomWaypointRejectsBadSpeed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MaxSpeed <= 0 must panic")
		}
	}()
	NewRandomWaypoint(geom.Rect{W: 1, H: 1}, 0, 0, 0, geom.Point{}, rand.New(rand.NewSource(1)))
}

func TestWaypointStaleQueryFailsLoudly(t *testing.T) {
	// Regression: a query older than the retention horizon used to clamp
	// silently to the oldest *retained* leg's start position — a wrong
	// answer. It must fail loudly instead.
	field := geom.Rect{W: 500, H: 300}
	m := NewRandomWaypoint(field, 4, 8, sim.Millisecond, geom.Point{X: 7, Y: 9}, rand.New(rand.NewSource(11)))
	m.Retain = sim.Second
	m.PositionAt(3600 * sim.Second) // force trimming far past t=0
	if _, ok := m.PositionAtOK(0); ok {
		t.Fatal("PositionAtOK(0) = ok after history at t=0 was trimmed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PositionAt older than the retention horizon must panic")
		}
	}()
	m.PositionAt(0)
}

func TestWaypointRetainedWindowExact(t *testing.T) {
	// Positions within [maxSeen-Retain, maxSeen] must stay exactly
	// reconstructible after trimming: compare against an untrimmed twin
	// (same seed, huge Retain) that never discards history.
	field := geom.Rect{W: 500, H: 300}
	mk := func() *RandomWaypoint {
		return NewRandomWaypoint(field, 4, 8, 10*sim.Millisecond, geom.Point{X: 3, Y: 4}, rand.New(rand.NewSource(12)))
	}
	trimmed, full := mk(), mk()
	trimmed.Retain = sim.Second
	full.Retain = 100000 * sim.Second
	end := 1800 * sim.Second
	trimmed.PositionAt(end)
	for back := sim.Time(0); back <= sim.Second; back += 50 * sim.Millisecond {
		ts := end - back
		got, ok := trimmed.PositionAtOK(ts)
		if !ok {
			t.Fatalf("query at %v inside the retention window failed", ts)
		}
		if want := full.PositionAt(ts); got != want {
			t.Fatalf("trimmed model diverges at %v: %v, want %v", ts, got, want)
		}
	}
}

func TestWaypointSpeedBoundAccessor(t *testing.T) {
	m := NewRandomWaypoint(geom.Rect{W: 10, H: 10}, 0, 4, 0, geom.Point{}, rand.New(rand.NewSource(13)))
	if b, ok := SpeedBoundOf(m); !ok || b != 4 {
		t.Fatalf("SpeedBoundOf(waypoint) = %v, %v; want 4, true", b, ok)
	}
	if b, ok := SpeedBoundOf(Stationary{}); !ok || b != 0 {
		t.Fatalf("SpeedBoundOf(stationary) = %v, %v; want 0, true", b, ok)
	}
}

// Property: the field-containment and continuity invariants survive
// trimming — drive the model far enough that many trims have happened,
// then sweep the whole retained window, including backward queries.
func TestPropertyWaypointInvariantsAfterTrim(t *testing.T) {
	f := func(seed int64, maxSpeedRaw uint8) bool {
		field := geom.Rect{W: 300, H: 200}
		maxSpeed := float64(maxSpeedRaw%20) + 1
		rng := rand.New(rand.NewSource(seed))
		m := NewRandomWaypoint(field, 0, maxSpeed, sim.Millisecond, field.RandomPoint(rng), rng)
		m.Retain = 2 * sim.Second
		end := 900 * sim.Second
		prev := m.PositionAt(end - 2*sim.Second)
		step := 100 * sim.Millisecond
		for ts := end - 2*sim.Second + step; ts <= end; ts += step {
			cur, ok := m.PositionAtOK(ts)
			if !ok || !field.Contains(cur) {
				return false
			}
			if prev.Dist(cur) > maxSpeed*step.Seconds()+1e-6 {
				return false
			}
			prev = cur
		}
		// Backward re-queries over the window must reproduce the sweep.
		for ts := end; ts >= end-sim.Second; ts -= 333 * step {
			if _, ok := m.PositionAtOK(ts); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWaypointArrivalExact(t *testing.T) {
	// Node at a known speed reaches a destination at from+dist/speed.
	field := geom.Rect{W: 500, H: 300}
	m := NewRandomWaypoint(field, 5, 5, sim.Second, geom.Point{X: 0, Y: 0}, rand.New(rand.NewSource(10)))
	m.extend(0)
	l := m.legs[1]
	wantTravel := l.from.Dist(l.to) / 5 * float64(sim.Second)
	if math.Abs(float64(l.arrive-l.start)-wantTravel) > 1 {
		t.Fatalf("travel time %v, want %v ns", l.arrive-l.start, wantTravel)
	}
	if got := m.PositionAt(l.arrive); got.Dist(l.to) > 1e-6 {
		t.Fatalf("position at arrival = %v, want %v", got, l.to)
	}
}
