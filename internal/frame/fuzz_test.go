package frame

import (
	"bytes"
	"reflect"
	"testing"
)

// corpusFrames returns one well-formed frame of every kind, used both as
// the in-code fuzz seed corpus and by gencorpus to write the checked-in
// testdata corpus.
func corpusFrames() []Frame {
	a := AddrFromID(1)
	b := AddrFromID(2)
	c := AddrFromID(3)
	return []Frame{
		&MRTS{Transmitter: a, Receivers: []Addr{b, c}},
		&MRTS{Transmitter: a}, // zero receivers
		&RData{Transmitter: a, Receiver: b, Seq: 7, Flags: 1, Payload: []byte("rdata-payload")},
		&UData{Transmitter: a, Receiver: Broadcast, Seq: 9, Payload: []byte{}},
		&RTS{Duration: 632, Receiver: b, Transmitter: a},
		&CTS{Duration: 500, Receiver: a},
		&ACK{Duration: 0, Receiver: a},
		&RAK{Duration: 100, Receiver: b},
		&Data{Duration: 300, Receiver: Broadcast, Transmitter: a, Seq: 42, Payload: []byte("dot11")},
	}
}

// FuzzDecode feeds arbitrary bytes to Unmarshal. The codec faces
// CRC-validated but otherwise adversarial input (the simulator corrupts
// frames, and trace tooling decodes captures), so it must never panic.
// When an input does decode, its canonical re-encoding must decode to the
// same frame — the decoder and encoder may disagree on ignored wire bits
// (802.11 Address 3, the frame-control filler byte) but never on meaning.
func FuzzDecode(f *testing.F) {
	for _, fr := range corpusFrames() {
		f.Add(fr.Marshal(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{byte(KindMRTS), 0, 0, 0})
	f.Add([]byte{0x7f, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := Unmarshal(b)
		if err != nil {
			return // malformed input rejected: the only other acceptable outcome
		}
		out := fr.Marshal(nil)
		if fr.WireSize() != len(out) {
			t.Errorf("WireSize %d != marshaled length %d for %v", fr.WireSize(), len(out), fr.Kind())
		}
		fr2, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("canonical re-encoding of %v failed to decode: %v", fr.Kind(), err)
		}
		if !reflect.DeepEqual(fr, fr2) {
			t.Errorf("decode(marshal(decode(b))) drifted\nfirst:  %#v\nsecond: %#v", fr, fr2)
		}
	})
}

// FuzzRoundTrip builds each frame kind from fuzzed field values and checks
// that the wire-carried fields survive Marshal → Unmarshal exactly. Fields
// documented as simulation bookkeeping (CTS/ACK/RAK Transmitter, CTS
// Expect, RAK Seq, Data Address 3) are not on the wire and are excluded.
func FuzzRoundTrip(f *testing.F) {
	f.Add(byte(0), uint16(632), uint32(7), []byte("payload"), byte(3))
	f.Add(byte(2), uint16(0), uint32(1<<31), []byte{}, byte(0))
	f.Add(byte(7), uint16(65535), uint32(0), []byte{0xff}, byte(255))
	f.Fuzz(func(t *testing.T, sel byte, dur uint16, seq uint32, payload []byte, nrecv byte) {
		tx := AddrFromID(int(sel) + 1)
		rx := AddrFromID(int(nrecv) + 2)
		var built Frame
		switch sel % 8 {
		case 0:
			recvs := make([]Addr, int(nrecv)%(MaxReceivers+1))
			for i := range recvs {
				recvs[i] = AddrFromID(i)
			}
			built = &MRTS{Transmitter: tx, Receivers: recvs}
		case 1:
			built = &RData{Transmitter: tx, Receiver: rx, Seq: seq, Flags: byte(dur), Payload: payload}
		case 2:
			built = &UData{Transmitter: tx, Receiver: rx, Seq: seq, Flags: byte(dur), Payload: payload}
		case 3:
			built = &RTS{Duration: dur, Receiver: rx, Transmitter: tx}
		case 4:
			built = &CTS{Duration: dur, Receiver: rx}
		case 5:
			built = &ACK{Duration: dur, Receiver: rx}
		case 6:
			built = &RAK{Duration: dur, Receiver: rx}
		default:
			built = &Data{Duration: dur, Receiver: rx, Transmitter: tx, Seq: uint16(seq), Payload: payload}
		}
		wire := built.Marshal(nil)
		if built.WireSize() != len(wire) {
			t.Errorf("%v: WireSize %d != marshaled length %d", built.Kind(), built.WireSize(), len(wire))
		}
		got, err := Unmarshal(wire)
		if err != nil {
			t.Fatalf("%v: round-trip decode failed: %v", built.Kind(), err)
		}
		if got.Kind() != built.Kind() {
			t.Fatalf("kind drifted: built %v, decoded %v", built.Kind(), got.Kind())
		}
		switch want := built.(type) {
		case *MRTS:
			g := got.(*MRTS)
			if g.Transmitter != want.Transmitter || len(g.Receivers) != len(want.Receivers) {
				t.Errorf("MRTS drifted: %#v -> %#v", want, g)
			}
			for i := range want.Receivers {
				if g.Receivers[i] != want.Receivers[i] {
					t.Errorf("MRTS receiver %d drifted", i)
				}
			}
		case *RData:
			g := got.(*RData)
			if g.Transmitter != want.Transmitter || g.Receiver != want.Receiver ||
				g.Seq != want.Seq || g.Flags != want.Flags || !bytes.Equal(g.Payload, want.Payload) {
				t.Errorf("RData drifted: %#v -> %#v", want, g)
			}
		case *UData:
			g := got.(*UData)
			if g.Transmitter != want.Transmitter || g.Receiver != want.Receiver ||
				g.Seq != want.Seq || g.Flags != want.Flags || !bytes.Equal(g.Payload, want.Payload) {
				t.Errorf("UData drifted: %#v -> %#v", want, g)
			}
		case *RTS:
			g := got.(*RTS)
			if g.Duration != want.Duration || g.Receiver != want.Receiver || g.Transmitter != want.Transmitter {
				t.Errorf("RTS drifted: %#v -> %#v", want, g)
			}
		case *CTS:
			g := got.(*CTS)
			if g.Duration != want.Duration || g.Receiver != want.Receiver {
				t.Errorf("CTS drifted: %#v -> %#v", want, g)
			}
		case *ACK:
			g := got.(*ACK)
			if g.Duration != want.Duration || g.Receiver != want.Receiver {
				t.Errorf("ACK drifted: %#v -> %#v", want, g)
			}
		case *RAK:
			g := got.(*RAK)
			if g.Duration != want.Duration || g.Receiver != want.Receiver {
				t.Errorf("RAK drifted: %#v -> %#v", want, g)
			}
		case *Data:
			g := got.(*Data)
			if g.Duration != want.Duration || g.Receiver != want.Receiver ||
				g.Transmitter != want.Transmitter || g.Seq != want.Seq ||
				!bytes.Equal(g.Payload, want.Payload) {
				t.Errorf("Data drifted: %#v -> %#v", want, g)
			}
		}
	})
}
