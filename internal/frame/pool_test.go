package frame

import "testing"

func TestPoolReusesFrames(t *testing.T) {
	p := NewPool()
	m := p.MRTS()
	m.Transmitter = Addr{1}
	m.Receivers = append(m.Receivers, Addr{2}, Addr{3})
	Release(m)

	m2 := p.MRTS()
	if m2 != m {
		t.Fatalf("free list miss: got a fresh allocation")
	}
	if len(m2.Receivers) != 0 || cap(m2.Receivers) < 2 {
		t.Fatalf("Receivers not reset with capacity kept: len=%d cap=%d",
			len(m2.Receivers), cap(m2.Receivers))
	}
	if !Checking && m2.Transmitter != (Addr{}) {
		t.Fatalf("Transmitter not cleared: %v", m2.Transmitter)
	}
	Release(m2)

	st := p.Stats()
	if st.Live != 0 || st.Acquired != 2 || st.Allocated != 1 || st.Released != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolPayloadCapacityKept(t *testing.T) {
	p := NewPool()
	d := p.RData()
	d.Payload = append(d.Payload, make([]byte, 500)...)
	Release(d)
	d2 := p.RData()
	if d2 != d || len(d2.Payload) != 0 || cap(d2.Payload) < 500 {
		t.Fatalf("payload backing not reused: len=%d cap=%d", len(d2.Payload), cap(d2.Payload))
	}
	Release(d2)
}

func TestDoubleReleasePanics(t *testing.T) {
	p := NewPool()
	f := p.CTS()
	Release(f)
	defer func() {
		if recover() == nil {
			t.Fatalf("double release did not panic")
		}
	}()
	Release(f)
}

func TestReleaseUnpooledIsNoop(t *testing.T) {
	f := &ACK{Receiver: Addr{9}}
	Release(f) // must not panic
	Release(nil)
	if !Live(f) {
		t.Fatalf("unpooled frame reported dead")
	}
}

func TestRefGoesStaleOnRelease(t *testing.T) {
	p := NewPool()
	f := p.Data()
	r := MakeRef(f)
	if !r.Valid() {
		t.Fatalf("fresh ref invalid")
	}
	Release(f)
	if r.Valid() {
		t.Fatalf("ref still valid after release")
	}
	// Recycling the object must not resurrect the old ref.
	f2 := p.Data()
	if f2 != f {
		t.Fatalf("expected recycled object")
	}
	if r.Valid() {
		t.Fatalf("stale ref validated against recycled frame")
	}
	if !MakeRef(&RTS{}).Valid() {
		t.Fatalf("unpooled ref must always be valid")
	}
	Release(f2)
}

func TestPoisonOnRelease(t *testing.T) {
	if !Checking {
		t.Skip("framecheck build tag not active")
	}
	p := NewPool()
	d := p.RData()
	d.Transmitter = Addr{1}
	d.Payload = append(d.Payload, 0x42, 0x42)
	payload := d.Payload
	Release(d)
	if d.Transmitter == (Addr{1}) || payload[0] == 0x42 {
		t.Fatalf("released frame not poisoned: tx=%v payload=%v", d.Transmitter, payload)
	}
	if Live(d) {
		t.Fatalf("released frame reported live")
	}
	p.RData()
}

func TestPoolSteadyStateAllocs(t *testing.T) {
	p := NewPool()
	// Warm the free lists and the slice capacities.
	warm := func() {
		m := p.MRTS()
		m.Receivers = append(m.Receivers, Addr{1}, Addr{2}, Addr{3})
		d := p.RData()
		d.Payload = append(d.Payload, make([]byte, 512)...)
		Release(m)
		Release(d)
	}
	warm()
	if got := testing.AllocsPerRun(100, warm); got != 0 {
		t.Fatalf("steady-state acquire/release allocates %.1f times per cycle", got)
	}
}
