package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Kind identifies a MAC frame type on the wire (the Frame Type octet of
// Fig 3, extended with the 802.11 control frames used by the baselines).
type Kind uint8

const (
	// KindMRTS is RMAC's variable-length Multicast Request-To-Send (Fig 3).
	KindMRTS Kind = iota + 1
	// KindRData is an RMAC reliable data frame (Reliable Send service).
	KindRData
	// KindUData is an RMAC unreliable data frame (Unreliable Send service).
	KindUData
	// KindRTS is the IEEE 802.11 Request-To-Send (20 bytes).
	KindRTS
	// KindCTS is the IEEE 802.11 Clear-To-Send (14 bytes).
	KindCTS
	// KindACK is the IEEE 802.11 Acknowledgment (14 bytes).
	KindACK
	// KindRAK is BMMM's Request-for-ACK (14 bytes, CTS-sized).
	KindRAK
	// KindData is an IEEE 802.11-style data frame used by the baselines
	// (24-byte MAC header + payload + 4-byte FCS).
	KindData
)

// kindNames is indexed by Kind; a dense array, not a map, because the
// auditor stringifies the kind of every transmitted frame.
var kindNames = [...]string{
	KindMRTS: "MRTS", KindRData: "RDATA", KindUData: "UDATA",
	KindRTS: "RTS", KindCTS: "CTS", KindACK: "ACK", KindRAK: "RAK", KindData: "DATA",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Wire-size constants, in bytes, matching §2 and §3.2 of the paper.
const (
	FCSLen = 4 // 32-bit cyclic redundancy code

	// RTSLen .. ACKLen are the IEEE 802.11 control frame sizes the paper
	// uses for its 632n µs overhead arithmetic.
	RTSLen = 20
	CTSLen = 14
	ACKLen = 14
	RAKLen = 14

	// MRTSFixedLen is the MRTS length excluding receiver addresses:
	// Frame Type (1) + Transmitter Address (6) + Number of Receivers (1)
	// + FCS (4).
	MRTSFixedLen = 1 + 6 + 1 + FCSLen

	// RMACDataOverhead is the header+FCS overhead of an RMAC data frame:
	// Type (1) + Flags (1) + Transmitter (6) + Receiver (6) + Seq (4)
	// + FCS (4) = 22 bytes. Chosen so that the shortest MRTS plus the
	// shortest data frame costs 352 µs of airtime, the figure §3.4 uses
	// to derive the 20-receiver limit.
	RMACDataOverhead = 1 + 1 + 6 + 6 + 4 + FCSLen

	// Data80211Overhead is the 802.11 data frame overhead used by the
	// baselines: 24-byte MAC header + 4-byte FCS.
	Data80211Overhead = 24 + FCSLen

	// MaxReceivers is the hard codec limit on MRTS receiver count (one
	// count octet). RMAC's protocol-level refinement limit (20) is
	// enforced separately in the MAC.
	MaxReceivers = 255
)

// MRTSLen returns the wire size of an MRTS carrying n receiver addresses.
func MRTSLen(n int) int { return MRTSFixedLen + 6*n }

// Frame is a MAC frame traversing the simulated channel. Frames are passed
// by pointer through the simulator for speed; Marshal/Unmarshal implement
// the actual wire format (used by the codec tests and the trace tools) so
// the declared WireSize provably corresponds to real bytes.
type Frame interface {
	Kind() Kind
	// WireSize is the frame's size in bytes including FCS; airtime is
	// derived from it by the PHY.
	WireSize() int
	// Src is the transmitting node's address.
	Src() Addr
	// Marshal appends the canonical wire encoding (including FCS) to dst.
	Marshal(dst []byte) []byte
}

// MRTS is the Multicast Request-To-Send control frame of Fig 3. The order
// of Receivers stipulates the ABT response order (§3.2).
type MRTS struct {
	poolHdr
	Transmitter Addr
	Receivers   []Addr
}

func (f *MRTS) Kind() Kind    { return KindMRTS }
func (f *MRTS) WireSize() int { return MRTSLen(len(f.Receivers)) }
func (f *MRTS) Src() Addr     { return f.Transmitter }

// IndexOf returns the position of a in the receiver sequence, or -1.
// The first receiver has index 0, as in §3.3.2.
func (f *MRTS) IndexOf(a Addr) int {
	for i, r := range f.Receivers {
		if r == a {
			return i
		}
	}
	return -1
}

// RData is an RMAC reliable data frame.
type RData struct {
	poolHdr
	Transmitter Addr
	Receiver    Addr // multicast/unicast/broadcast label; delivery is governed by the MRTS
	Seq         uint32
	Flags       uint8
	Payload     []byte
}

func (f *RData) Kind() Kind    { return KindRData }
func (f *RData) WireSize() int { return RMACDataOverhead + len(f.Payload) }
func (f *RData) Src() Addr     { return f.Transmitter }

// UData is an RMAC unreliable data frame; Receiver may be a unicast,
// multicast, or the broadcast address (§3.3.3).
type UData struct {
	poolHdr
	Transmitter Addr
	Receiver    Addr
	Seq         uint32
	Flags       uint8
	Payload     []byte
}

func (f *UData) Kind() Kind    { return KindUData }
func (f *UData) WireSize() int { return RMACDataOverhead + len(f.Payload) }
func (f *UData) Src() Addr     { return f.Transmitter }

// RTS is the 802.11 Request-To-Send. Duration carries the NAV reservation
// in microseconds.
type RTS struct {
	poolHdr
	Duration    uint16
	Receiver    Addr
	Transmitter Addr
}

func (f *RTS) Kind() Kind    { return KindRTS }
func (f *RTS) WireSize() int { return RTSLen }
func (f *RTS) Src() Addr     { return f.Transmitter }

// CTS is the 802.11 Clear-To-Send. Expect is BMW's extension: the
// responder's next expected data sequence number from the soliciting
// sender ("it replies a CTS with the sequence number being expected",
// Tang & Gerla). BMW encodes it where 802.11 reserves bits; the 14-byte
// wire size is unchanged and plain-802.11/BMMM users leave it zero.
type CTS struct {
	poolHdr
	Duration    uint16
	Receiver    Addr // = transmitter of the soliciting RTS
	Transmitter Addr // not on the 802.11 wire; carried for simulation bookkeeping, not counted in WireSize
	Expect      uint16
}

func (f *CTS) Kind() Kind    { return KindCTS }
func (f *CTS) WireSize() int { return CTSLen }
func (f *CTS) Src() Addr     { return f.Transmitter }

// ACK is the 802.11 Acknowledgment.
type ACK struct {
	poolHdr
	Duration    uint16
	Receiver    Addr
	Transmitter Addr // bookkeeping only, as with CTS
}

func (f *ACK) Kind() Kind    { return KindACK }
func (f *ACK) WireSize() int { return ACKLen }
func (f *ACK) Src() Addr     { return f.Transmitter }

// RAK is BMMM's Request-for-ACK, soliciting an ACK from one receiver.
// Seq identifies the data frame being acknowledged; real BMMM receivers
// bind a RAK to the preceding data frame by exchange timing, which the
// simulator makes explicit without changing the 14-byte wire size.
type RAK struct {
	poolHdr
	Duration    uint16
	Receiver    Addr
	Transmitter Addr // bookkeeping only
	Seq         uint16
}

func (f *RAK) Kind() Kind    { return KindRAK }
func (f *RAK) WireSize() int { return RAKLen }
func (f *RAK) Src() Addr     { return f.Transmitter }

// Data is an 802.11-style data frame used by BMMM/BMW. Receiver may be the
// broadcast address for unreliable broadcast. Seq occupies the 802.11
// sequence-control field (16 bits on the wire).
type Data struct {
	poolHdr
	Duration    uint16
	Receiver    Addr
	Transmitter Addr
	Seq         uint16
	Payload     []byte
}

func (f *Data) Kind() Kind    { return KindData }
func (f *Data) WireSize() int { return Data80211Overhead + len(f.Payload) }
func (f *Data) Src() Addr     { return f.Transmitter }

// --- Binary codec -----------------------------------------------------------

var crcTable = crc32.MakeTable(crc32.IEEE)

// ErrBadFCS is returned by Unmarshal when the frame check sequence fails.
var ErrBadFCS = errors.New("frame: FCS mismatch")

// ErrTruncated is returned by Unmarshal for short inputs.
var ErrTruncated = errors.New("frame: truncated")

func appendFCS(dst []byte, start int) []byte {
	fcs := crc32.Checksum(dst[start:], crcTable)
	return binary.BigEndian.AppendUint32(dst, fcs)
}

// Marshal implements Frame.
func (f *MRTS) Marshal(dst []byte) []byte {
	if len(f.Receivers) > MaxReceivers {
		panic("frame: MRTS receiver count exceeds codec limit")
	}
	start := len(dst)
	dst = append(dst, byte(KindMRTS))
	dst = append(dst, f.Transmitter[:]...)
	dst = append(dst, byte(len(f.Receivers)))
	for _, r := range f.Receivers {
		dst = append(dst, r[:]...)
	}
	return appendFCS(dst, start)
}

func marshalRMACData(dst []byte, kind Kind, tx, rx Addr, seq uint32, flags uint8, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, byte(kind), flags)
	dst = append(dst, tx[:]...)
	dst = append(dst, rx[:]...)
	dst = binary.BigEndian.AppendUint32(dst, seq)
	dst = append(dst, payload...)
	return appendFCS(dst, start)
}

// Marshal implements Frame.
func (f *RData) Marshal(dst []byte) []byte {
	return marshalRMACData(dst, KindRData, f.Transmitter, f.Receiver, f.Seq, f.Flags, f.Payload)
}

// Marshal implements Frame.
func (f *UData) Marshal(dst []byte) []byte {
	return marshalRMACData(dst, KindUData, f.Transmitter, f.Receiver, f.Seq, f.Flags, f.Payload)
}

func marshalCtl(dst []byte, kind Kind, dur uint16, addrs ...Addr) []byte {
	start := len(dst)
	dst = append(dst, byte(kind), 0) // frame control (2)
	dst = binary.BigEndian.AppendUint16(dst, dur)
	for _, a := range addrs {
		dst = append(dst, a[:]...)
	}
	return appendFCS(dst, start)
}

// Marshal implements Frame.
func (f *RTS) Marshal(dst []byte) []byte {
	return marshalCtl(dst, KindRTS, f.Duration, f.Receiver, f.Transmitter)
}

// Marshal implements Frame.
func (f *CTS) Marshal(dst []byte) []byte {
	return marshalCtl(dst, KindCTS, f.Duration, f.Receiver)
}

// Marshal implements Frame.
func (f *ACK) Marshal(dst []byte) []byte {
	return marshalCtl(dst, KindACK, f.Duration, f.Receiver)
}

// Marshal implements Frame.
func (f *RAK) Marshal(dst []byte) []byte {
	return marshalCtl(dst, KindRAK, f.Duration, f.Receiver)
}

// Marshal implements Frame.
func (f *Data) Marshal(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, byte(KindData), 0)
	dst = binary.BigEndian.AppendUint16(dst, f.Duration)
	dst = append(dst, f.Receiver[:]...)
	dst = append(dst, f.Transmitter[:]...)
	var third Addr // 802.11 Address 3 (BSSID); unused in ad hoc DCF here
	dst = append(dst, third[:]...)
	dst = binary.BigEndian.AppendUint16(dst, f.Seq) // sequence control
	dst = append(dst, f.Payload...)
	return appendFCS(dst, start)
}

func readAddr(b []byte) (Addr, []byte) {
	var a Addr
	copy(a[:], b[:6])
	return a, b[6:]
}

// Unmarshal decodes one frame from b, verifying the FCS. The input must
// contain exactly one frame.
func Unmarshal(b []byte) (Frame, error) {
	if len(b) < 1+FCSLen {
		return nil, ErrTruncated
	}
	body, fcsBytes := b[:len(b)-FCSLen], b[len(b)-FCSLen:]
	if crc32.Checksum(body, crcTable) != binary.BigEndian.Uint32(fcsBytes) {
		return nil, ErrBadFCS
	}
	kind := Kind(body[0])
	switch kind {
	case KindMRTS:
		if len(body) < 8 {
			return nil, ErrTruncated
		}
		f := &MRTS{}
		rest := body[1:]
		f.Transmitter, rest = readAddr(rest)
		n := int(rest[0])
		rest = rest[1:]
		if len(rest) != 6*n {
			return nil, fmt.Errorf("frame: MRTS receiver area %d bytes, want %d", len(rest), 6*n)
		}
		for i := 0; i < n; i++ {
			var a Addr
			a, rest = readAddr(rest)
			f.Receivers = append(f.Receivers, a)
		}
		return f, nil
	case KindRData, KindUData:
		if len(body) < RMACDataOverhead-FCSLen {
			return nil, ErrTruncated
		}
		flags := body[1]
		rest := body[2:]
		var tx, rx Addr
		tx, rest = readAddr(rest)
		rx, rest = readAddr(rest)
		seq := binary.BigEndian.Uint32(rest)
		payload := append([]byte(nil), rest[4:]...)
		if kind == KindRData {
			return &RData{Transmitter: tx, Receiver: rx, Seq: seq, Flags: flags, Payload: payload}, nil
		}
		return &UData{Transmitter: tx, Receiver: rx, Seq: seq, Flags: flags, Payload: payload}, nil
	case KindRTS:
		if len(body) != RTSLen-FCSLen {
			return nil, ErrTruncated
		}
		f := &RTS{Duration: binary.BigEndian.Uint16(body[2:])}
		rest := body[4:]
		f.Receiver, rest = readAddr(rest)
		f.Transmitter, _ = readAddr(rest)
		return f, nil
	case KindCTS, KindACK, KindRAK:
		if len(body) != CTSLen-FCSLen {
			return nil, ErrTruncated
		}
		dur := binary.BigEndian.Uint16(body[2:])
		ra, _ := readAddr(body[4:])
		switch kind {
		case KindCTS:
			return &CTS{Duration: dur, Receiver: ra}, nil
		case KindACK:
			return &ACK{Duration: dur, Receiver: ra}, nil
		default:
			return &RAK{Duration: dur, Receiver: ra}, nil
		}
	case KindData:
		if len(body) < Data80211Overhead-FCSLen {
			return nil, ErrTruncated
		}
		f := &Data{Duration: binary.BigEndian.Uint16(body[2:])}
		rest := body[4:]
		f.Receiver, rest = readAddr(rest)
		f.Transmitter, rest = readAddr(rest)
		_, rest = readAddr(rest) // address 3
		f.Seq = binary.BigEndian.Uint16(rest)
		f.Payload = append([]byte(nil), rest[2:]...)
		return f, nil
	default:
		return nil, fmt.Errorf("frame: unknown kind %d", body[0])
	}
}
