//go:build !framecheck

package frame

// Checking reports whether the framecheck poisoning build is active.
const Checking = false

// poison is a no-op in normal builds; released frames keep their contents
// so the free-list push stays a few stores.
func poison(pooled) {}

// AssertLive is compiled out in normal builds.
func AssertLive(Frame) {}
