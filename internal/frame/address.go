// Package frame defines the MAC frame formats used by RMAC and by the
// IEEE 802.11-based baseline protocols (BMMM, BMW): typed frames with the
// wire sizes the paper costs out in §2 and §3.2, a binary codec with a
// CRC-32 frame check sequence (Fig 3), and airtime accounting helpers.
package frame

import (
	"encoding/binary"
	"fmt"
)

// Addr is a 6-byte MAC address. Node i in a simulation gets AddrFromID(i);
// the all-ones address is broadcast.
type Addr [6]byte

// Broadcast is the all-ones MAC broadcast address.
var Broadcast = Addr{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}

// AddrFromID derives a locally-administered unicast address from a node ID.
func AddrFromID(id int) Addr {
	var a Addr
	a[0] = 0x02 // locally administered, unicast
	a[1] = 0x4D // 'M'
	binary.BigEndian.PutUint32(a[2:], uint32(id))
	return a
}

// NodeID recovers the node ID embedded by AddrFromID. Returns -1 for the
// broadcast address or a foreign address.
func (a Addr) NodeID() int {
	if a == Broadcast || a[0] != 0x02 || a[1] != 0x4D {
		return -1
	}
	return int(binary.BigEndian.Uint32(a[2:]))
}

// IsBroadcast reports whether a is the broadcast address.
func (a Addr) IsBroadcast() bool { return a == Broadcast }

func (a Addr) String() string {
	if a.IsBroadcast() {
		return "ff:ff:ff:ff:ff:ff"
	}
	if id := a.NodeID(); id >= 0 {
		return fmt.Sprintf("node-%d", id)
	}
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}
