//go:build framecheck

package frame

// Checking reports whether the framecheck poisoning build is active.
const Checking = true

// poisonByte is an address/payload fill pattern chosen to be loud: a
// poisoned address never equals a real node address or the broadcast
// address, and a poisoned payload fails any content check.
const poisonByte = 0xDD

var poisonAddr = Addr{poisonByte, poisonByte, poisonByte, poisonByte, poisonByte, poisonByte}

func poisonBytes(b []byte) {
	for i := range b {
		b[i] = poisonByte
	}
}

// poison overwrites a released frame with garbage so any consumer that
// kept a reference past release reads nonsense and fails loudly in tests.
// Slices are poisoned across their full capacity: a stale sub-slice of the
// backing array is just as illegal as the frame itself.
func poison(f pooled) {
	switch v := f.(type) {
	case *MRTS:
		v.Transmitter = poisonAddr
		rs := v.Receivers[:cap(v.Receivers)]
		for i := range rs {
			rs[i] = poisonAddr
		}
	case *RData:
		v.Transmitter, v.Receiver = poisonAddr, poisonAddr
		v.Seq, v.Flags = 0xDDDDDDDD, poisonByte
		poisonBytes(v.Payload[:cap(v.Payload)])
	case *UData:
		v.Transmitter, v.Receiver = poisonAddr, poisonAddr
		v.Seq, v.Flags = 0xDDDDDDDD, poisonByte
		poisonBytes(v.Payload[:cap(v.Payload)])
	case *RTS:
		v.Duration = 0xDDDD
		v.Receiver, v.Transmitter = poisonAddr, poisonAddr
	case *CTS:
		v.Duration, v.Expect = 0xDDDD, 0xDDDD
		v.Receiver, v.Transmitter = poisonAddr, poisonAddr
	case *ACK:
		v.Duration = 0xDDDD
		v.Receiver, v.Transmitter = poisonAddr, poisonAddr
	case *RAK:
		v.Duration, v.Seq = 0xDDDD, 0xDDDD
		v.Receiver, v.Transmitter = poisonAddr, poisonAddr
	case *Data:
		v.Duration, v.Seq = 0xDDDD, 0xDDDD
		v.Receiver, v.Transmitter = poisonAddr, poisonAddr
		poisonBytes(v.Payload[:cap(v.Payload)])
	}
}

// AssertLive panics if a pooled frame is used after release. The PHY calls
// it at every handler boundary under framecheck.
func AssertLive(f Frame) {
	if f != nil && !Live(f) {
		panic("frame: use after release of " + f.Kind().String())
	}
}
