// Command gencorpus regenerates the checked-in seed corpus for the frame
// codec fuzz targets (internal/frame/testdata/fuzz/FuzzDecode). Run it
// from the repository root after changing the wire format:
//
//	go run ./internal/frame/gencorpus
//
// Each corpus entry is one canonically-marshaled frame, so the fuzzer
// starts from inputs that pass the FCS check and reach the per-kind
// decoders instead of spending its budget rediscovering CRC32.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"rmac/internal/frame"
)

func main() {
	a := frame.AddrFromID(1)
	b := frame.AddrFromID(2)
	c := frame.AddrFromID(3)
	seeds := map[string]frame.Frame{
		"mrts":       &frame.MRTS{Transmitter: a, Receivers: []frame.Addr{b, c}},
		"mrts_empty": &frame.MRTS{Transmitter: a},
		"rdata":      &frame.RData{Transmitter: a, Receiver: b, Seq: 7, Flags: 1, Payload: []byte("rdata-payload")},
		"udata":      &frame.UData{Transmitter: a, Receiver: frame.Broadcast, Seq: 9},
		"rts":        &frame.RTS{Duration: 632, Receiver: b, Transmitter: a},
		"cts":        &frame.CTS{Duration: 500, Receiver: a},
		"ack":        &frame.ACK{Duration: 0, Receiver: a},
		"rak":        &frame.RAK{Duration: 100, Receiver: b},
		"data80211":  &frame.Data{Duration: 300, Receiver: frame.Broadcast, Transmitter: a, Seq: 42, Payload: []byte("dot11")},
	}

	dir := filepath.Join("internal", "frame", "testdata", "fuzz", "FuzzDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for name, fr := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(fr.Marshal(nil))))
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}
}
