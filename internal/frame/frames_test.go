package frame

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAddrFromIDRoundTrip(t *testing.T) {
	for _, id := range []int{0, 1, 74, 1000, 1 << 20} {
		a := AddrFromID(id)
		if got := a.NodeID(); got != id {
			t.Fatalf("NodeID(AddrFromID(%d)) = %d", id, got)
		}
		if a.IsBroadcast() {
			t.Fatalf("unicast address %v reported broadcast", a)
		}
	}
}

func TestBroadcast(t *testing.T) {
	if !Broadcast.IsBroadcast() {
		t.Fatal("Broadcast not broadcast")
	}
	if Broadcast.NodeID() != -1 {
		t.Fatal("Broadcast NodeID != -1")
	}
	if Broadcast.String() != "ff:ff:ff:ff:ff:ff" {
		t.Fatalf("Broadcast string = %q", Broadcast.String())
	}
	if AddrFromID(7).String() != "node-7" {
		t.Fatalf("AddrFromID(7).String() = %q", AddrFromID(7).String())
	}
	foreign := Addr{1, 2, 3, 4, 5, 6}
	if foreign.NodeID() != -1 {
		t.Fatal("foreign address decoded to a node ID")
	}
}

// TestPaperWireSizes pins the §2/§3 numbers: RTS 20 B, CTS/RAK/ACK 14 B,
// MRTS = 12 + 6n bytes, 20-byte shortest MRTS is 18 B at n=1.
func TestPaperWireSizes(t *testing.T) {
	if (&RTS{}).WireSize() != 20 {
		t.Fatalf("RTS size = %d", (&RTS{}).WireSize())
	}
	for _, f := range []Frame{&CTS{}, &ACK{}, &RAK{}} {
		if f.WireSize() != 14 {
			t.Fatalf("%v size = %d, want 14", f.Kind(), f.WireSize())
		}
	}
	for n := 0; n <= 20; n++ {
		m := &MRTS{Receivers: make([]Addr, n)}
		if m.WireSize() != 12+6*n {
			t.Fatalf("MRTS(%d receivers) = %d bytes, want %d", n, m.WireSize(), 12+6*n)
		}
	}
	if MRTSLen(1) != 18 {
		t.Fatalf("shortest multicast MRTS = %d, want 18", MRTSLen(1))
	}
	if (&RData{}).WireSize() != 22 {
		t.Fatalf("empty RDATA = %d bytes, want 22", (&RData{}).WireSize())
	}
	if (&Data{Payload: make([]byte, 500)}).WireSize() != 528 {
		t.Fatalf("802.11 DATA(500) = %d, want 528", (&Data{Payload: make([]byte, 500)}).WireSize())
	}
	// The paper's example data frame: 500-byte packet in an RMAC reliable
	// data frame = 522 bytes.
	if (&RData{Payload: make([]byte, 500)}).WireSize() != 522 {
		t.Fatal("RDATA(500) != 522")
	}
}

func TestMRTSIndexOf(t *testing.T) {
	m := &MRTS{Receivers: []Addr{AddrFromID(5), AddrFromID(9), AddrFromID(2)}}
	if m.IndexOf(AddrFromID(5)) != 0 || m.IndexOf(AddrFromID(9)) != 1 || m.IndexOf(AddrFromID(2)) != 2 {
		t.Fatal("IndexOf wrong order")
	}
	if m.IndexOf(AddrFromID(42)) != -1 {
		t.Fatal("IndexOf missing != -1")
	}
}

func marshaledLen(f Frame) int { return len(f.Marshal(nil)) }

// TestMarshalMatchesWireSize proves WireSize is honest: the codec emits
// exactly that many bytes for every frame type.
func TestMarshalMatchesWireSize(t *testing.T) {
	frames := []Frame{
		&MRTS{Transmitter: AddrFromID(1), Receivers: []Addr{AddrFromID(2), AddrFromID(3)}},
		&MRTS{Transmitter: AddrFromID(1)},
		&RData{Transmitter: AddrFromID(1), Receiver: Broadcast, Seq: 7, Payload: make([]byte, 500)},
		&UData{Transmitter: AddrFromID(1), Receiver: AddrFromID(2), Seq: 9, Payload: make([]byte, 100)},
		&RTS{Duration: 999, Receiver: AddrFromID(2), Transmitter: AddrFromID(1)},
		&CTS{Duration: 500, Receiver: AddrFromID(1)},
		&ACK{Receiver: AddrFromID(1)},
		&RAK{Duration: 3, Receiver: AddrFromID(4)},
		&Data{Duration: 44, Receiver: Broadcast, Transmitter: AddrFromID(0), Seq: 12, Payload: make([]byte, 500)},
	}
	for _, f := range frames {
		if got := marshaledLen(f); got != f.WireSize() {
			t.Errorf("%v: marshaled %d bytes, WireSize %d", f.Kind(), got, f.WireSize())
		}
	}
}

func roundTrip(t *testing.T, f Frame) Frame {
	t.Helper()
	b := f.Marshal(nil)
	g, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("%v: Unmarshal: %v", f.Kind(), err)
	}
	return g
}

func TestRoundTripMRTS(t *testing.T) {
	f := &MRTS{Transmitter: AddrFromID(3), Receivers: []Addr{AddrFromID(1), AddrFromID(4), AddrFromID(1), Broadcast}}
	g := roundTrip(t, f).(*MRTS)
	if !reflect.DeepEqual(f, g) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", f, g)
	}
}

func TestRoundTripDataFrames(t *testing.T) {
	payload := []byte("hello multicast world")
	rd := &RData{Transmitter: AddrFromID(1), Receiver: AddrFromID(2), Seq: 1234, Flags: 5, Payload: payload}
	if g := roundTrip(t, rd).(*RData); !reflect.DeepEqual(rd, g) {
		t.Fatalf("RData mismatch: %+v vs %+v", rd, g)
	}
	ud := &UData{Transmitter: AddrFromID(1), Receiver: Broadcast, Seq: 77, Payload: payload}
	if g := roundTrip(t, ud).(*UData); !reflect.DeepEqual(ud, g) {
		t.Fatalf("UData mismatch: %+v vs %+v", ud, g)
	}
	d := &Data{Duration: 616, Receiver: AddrFromID(9), Transmitter: AddrFromID(8), Seq: 65535, Payload: payload}
	g := roundTrip(t, d).(*Data)
	if g.Duration != d.Duration || g.Receiver != d.Receiver || g.Transmitter != d.Transmitter || g.Seq != d.Seq || !bytes.Equal(g.Payload, d.Payload) {
		t.Fatalf("Data mismatch: %+v vs %+v", d, g)
	}
}

func TestRoundTripControl(t *testing.T) {
	rts := &RTS{Duration: 1000, Receiver: AddrFromID(2), Transmitter: AddrFromID(1)}
	if g := roundTrip(t, rts).(*RTS); *g != *rts {
		t.Fatalf("RTS mismatch")
	}
	// CTS/ACK/RAK carry only the receiver on the wire.
	cts := &CTS{Duration: 5, Receiver: AddrFromID(1)}
	if g := roundTrip(t, cts).(*CTS); g.Duration != 5 || g.Receiver != AddrFromID(1) {
		t.Fatal("CTS mismatch")
	}
	ack := &ACK{Receiver: AddrFromID(3)}
	if g := roundTrip(t, ack).(*ACK); g.Receiver != AddrFromID(3) {
		t.Fatal("ACK mismatch")
	}
	rak := &RAK{Duration: 9, Receiver: AddrFromID(4)}
	if g := roundTrip(t, rak).(*RAK); g.Receiver != AddrFromID(4) || g.Duration != 9 {
		t.Fatal("RAK mismatch")
	}
}

func TestUnmarshalDetectsCorruption(t *testing.T) {
	f := &RData{Transmitter: AddrFromID(1), Receiver: AddrFromID(2), Seq: 1, Payload: make([]byte, 64)}
	b := f.Marshal(nil)
	for _, bit := range []int{0, 13, len(b)*8 - 1} {
		c := append([]byte(nil), b...)
		c[bit/8] ^= 1 << (bit % 8)
		if _, err := Unmarshal(c); !errors.Is(err, ErrBadFCS) {
			t.Fatalf("bit flip %d: err = %v, want ErrBadFCS", bit, err)
		}
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	if _, err := Unmarshal(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("nil: %v", err)
	}
	if _, err := Unmarshal([]byte{1, 2, 3}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("3 bytes: %v", err)
	}
}

func TestUnmarshalUnknownKind(t *testing.T) {
	b := appendFCS([]byte{0xEE, 0, 0, 0, 0, 0, 0, 0}, 0)
	if _, err := Unmarshal(b); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestMRTSCodecLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized MRTS did not panic at marshal")
		}
	}()
	(&MRTS{Receivers: make([]Addr, MaxReceivers+1)}).Marshal(nil)
}

func TestKindString(t *testing.T) {
	if KindMRTS.String() != "MRTS" || KindRAK.String() != "RAK" {
		t.Fatal("kind names")
	}
	if Kind(200).String() != "Kind(200)" {
		t.Fatal("unknown kind name")
	}
}

// Property: MRTS with random receiver lists roundtrips exactly and its
// wire size follows 12+6n.
func TestPropertyMRTSRoundTrip(t *testing.T) {
	f := func(ids []uint16) bool {
		if len(ids) > 30 {
			ids = ids[:30]
		}
		m := &MRTS{Transmitter: AddrFromID(999)}
		for _, id := range ids {
			m.Receivers = append(m.Receivers, AddrFromID(int(id)))
		}
		b := m.Marshal(nil)
		if len(b) != 12+6*len(ids) {
			return false
		}
		g, err := Unmarshal(b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: any single-bit corruption of any frame type is caught by the FCS.
func TestPropertyFCSCatchesBitFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seq uint32, n uint8, payloadLen uint8) bool {
		fr := &RData{
			Transmitter: AddrFromID(int(n)),
			Receiver:    AddrFromID(int(n) + 1),
			Seq:         seq,
			Payload:     make([]byte, payloadLen),
		}
		rng.Read(fr.Payload)
		b := fr.Marshal(nil)
		bit := rng.Intn(len(b) * 8)
		b[bit/8] ^= 1 << (bit % 8)
		_, err := Unmarshal(b)
		return errors.Is(err, ErrBadFCS)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshalMRTS(b *testing.B) {
	m := &MRTS{Transmitter: AddrFromID(1), Receivers: make([]Addr, 10)}
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = m.Marshal(buf[:0])
	}
}

func BenchmarkUnmarshalRData(b *testing.B) {
	f := &RData{Transmitter: AddrFromID(1), Receiver: AddrFromID(2), Payload: make([]byte, 500)}
	buf := f.Marshal(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
