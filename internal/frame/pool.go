package frame

// This file implements the pooled frame arena: per-kind free lists with
// generation-checked headers, mirroring the event-pool design in
// internal/sim. A steady-state simulation acquires every frame it
// transmits from a Pool and releases it when the exchange that carried it
// is over, so the per-frame cost collapses to a free-list pop/push and no
// garbage is created.
//
// Ownership rule (see DESIGN.md §9): the party that acquires a frame owns
// it until it hands the frame to phy.Medium.StartTx, at which point the
// Medium owns it. The Medium releases the frame after the sender's
// OnTxDone AND every receiver's OnFrameReceived have returned (receivers
// hear the frame strictly after the sender finishes, so "release on
// OnTxDone" alone would free a frame still in flight — the Medium performs
// the release on the sender's behalf once the last reception ends).
// Receivers therefore MUST copy out any payload bytes or receiver lists
// they need before returning from OnFrameReceived. The `framecheck` build
// tag turns violations into loud failures by poisoning released frames.
//
// Frames constructed directly (tests, codec round-trips, Unmarshal) have a
// nil owning pool; Release is a no-op for them, so unpooled frames remain
// first-class citizens.

// poolHdr is embedded in every concrete frame struct. The generation
// counter is bumped on every release, so a Ref captured at acquire time
// detects use-after-release even after the frame has been recycled.
type poolHdr struct {
	pool *Pool
	gen  uint32
	live bool
}

func (h *poolHdr) hdr() *poolHdr { return h }

// pooled is implemented by every concrete frame struct via the embedded
// poolHdr.
type pooled interface {
	Frame
	hdr() *poolHdr
}

// PoolStats counts pool traffic. Allocated is the number of acquires that
// missed the free list; in steady state it stops growing.
type PoolStats struct {
	Live      int    // frames acquired and not yet released
	Acquired  uint64 // total acquires
	Allocated uint64 // acquires that hit the Go allocator
	Released  uint64 // total releases
}

// Pool is a per-simulation frame arena. It is not safe for concurrent use;
// each engine (and therefore each parallel sweep worker) owns its own Pool,
// exactly like the event pool inside sim.Engine.
type Pool struct {
	mrts  []*MRTS
	rdata []*RData
	udata []*UData
	rts   []*RTS
	cts   []*CTS
	ack   []*ACK
	rak   []*RAK
	data  []*Data

	stats PoolStats
}

// NewPool returns an empty pool; free lists grow on demand.
func NewPool() *Pool { return &Pool{} }

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats { return p.stats }

func (p *Pool) acquire(h *poolHdr, hit bool) {
	h.pool = p
	h.live = true
	p.stats.Acquired++
	p.stats.Live++
	if !hit {
		p.stats.Allocated++
	}
}

// MRTS acquires an MRTS frame. The returned frame's Receivers slice is
// empty but keeps its previous capacity; append the receiver set into it.
func (p *Pool) MRTS() *MRTS {
	var f *MRTS
	if n := len(p.mrts); n > 0 {
		f, p.mrts = p.mrts[n-1], p.mrts[:n-1]
		f.Transmitter = Addr{}
		f.Receivers = f.Receivers[:0]
		p.acquire(f.hdr(), true)
		return f
	}
	f = &MRTS{}
	p.acquire(f.hdr(), false)
	return f
}

// RData acquires a reliable data frame with an empty (capacity-preserving)
// Payload.
func (p *Pool) RData() *RData {
	var f *RData
	if n := len(p.rdata); n > 0 {
		f, p.rdata = p.rdata[n-1], p.rdata[:n-1]
		f.Transmitter, f.Receiver = Addr{}, Addr{}
		f.Seq, f.Flags = 0, 0
		f.Payload = f.Payload[:0]
		p.acquire(f.hdr(), true)
		return f
	}
	f = &RData{}
	p.acquire(f.hdr(), false)
	return f
}

// UData acquires an unreliable data frame with an empty Payload.
func (p *Pool) UData() *UData {
	var f *UData
	if n := len(p.udata); n > 0 {
		f, p.udata = p.udata[n-1], p.udata[:n-1]
		f.Transmitter, f.Receiver = Addr{}, Addr{}
		f.Seq, f.Flags = 0, 0
		f.Payload = f.Payload[:0]
		p.acquire(f.hdr(), true)
		return f
	}
	f = &UData{}
	p.acquire(f.hdr(), false)
	return f
}

// RTS acquires an 802.11 RTS frame.
func (p *Pool) RTS() *RTS {
	var f *RTS
	if n := len(p.rts); n > 0 {
		f, p.rts = p.rts[n-1], p.rts[:n-1]
		*f = RTS{poolHdr: f.poolHdr}
		p.acquire(f.hdr(), true)
		return f
	}
	f = &RTS{}
	p.acquire(f.hdr(), false)
	return f
}

// CTS acquires an 802.11 CTS frame.
func (p *Pool) CTS() *CTS {
	var f *CTS
	if n := len(p.cts); n > 0 {
		f, p.cts = p.cts[n-1], p.cts[:n-1]
		*f = CTS{poolHdr: f.poolHdr}
		p.acquire(f.hdr(), true)
		return f
	}
	f = &CTS{}
	p.acquire(f.hdr(), false)
	return f
}

// ACK acquires an 802.11 ACK frame.
func (p *Pool) ACK() *ACK {
	var f *ACK
	if n := len(p.ack); n > 0 {
		f, p.ack = p.ack[n-1], p.ack[:n-1]
		*f = ACK{poolHdr: f.poolHdr}
		p.acquire(f.hdr(), true)
		return f
	}
	f = &ACK{}
	p.acquire(f.hdr(), false)
	return f
}

// RAK acquires a BMMM Request-for-ACK frame.
func (p *Pool) RAK() *RAK {
	var f *RAK
	if n := len(p.rak); n > 0 {
		f, p.rak = p.rak[n-1], p.rak[:n-1]
		*f = RAK{poolHdr: f.poolHdr}
		p.acquire(f.hdr(), true)
		return f
	}
	f = &RAK{}
	p.acquire(f.hdr(), false)
	return f
}

// Data acquires an 802.11-style data frame with an empty Payload.
func (p *Pool) Data() *Data {
	var f *Data
	if n := len(p.data); n > 0 {
		f, p.data = p.data[n-1], p.data[:n-1]
		f.Duration, f.Seq = 0, 0
		f.Receiver, f.Transmitter = Addr{}, Addr{}
		f.Payload = f.Payload[:0]
		p.acquire(f.hdr(), true)
		return f
	}
	f = &Data{}
	p.acquire(f.hdr(), false)
	return f
}

// Release returns a frame to its owning pool. Releasing an unpooled frame
// (constructed directly or decoded by Unmarshal) or nil is a no-op;
// releasing a pooled frame twice panics. Under the framecheck build tag the
// frame's contents are poisoned so use-after-release shows up as garbage.
func Release(f Frame) {
	pf, ok := f.(pooled)
	if !ok || f == nil {
		return
	}
	h := pf.hdr()
	p := h.pool
	if p == nil {
		return
	}
	if !h.live {
		panic("frame: double release of " + f.Kind().String())
	}
	h.live = false
	h.gen++
	poison(pf)
	p.stats.Released++
	p.stats.Live--
	switch v := pf.(type) {
	case *MRTS:
		p.mrts = append(p.mrts, v)
	case *RData:
		p.rdata = append(p.rdata, v)
	case *UData:
		p.udata = append(p.udata, v)
	case *RTS:
		p.rts = append(p.rts, v)
	case *CTS:
		p.cts = append(p.cts, v)
	case *ACK:
		p.ack = append(p.ack, v)
	case *RAK:
		p.rak = append(p.rak, v)
	case *Data:
		p.data = append(p.data, v)
	}
}

// Live reports whether f may legally be read: true for unpooled frames and
// for pooled frames between acquire and release.
func Live(f Frame) bool {
	pf, ok := f.(pooled)
	if !ok {
		return true
	}
	h := pf.hdr()
	return h.pool == nil || h.live
}

// Ref is a generation-checked handle to a frame, mirroring sim.Event. A
// Ref taken while the frame is live goes stale the moment the frame is
// released, even if the pool has already recycled the object.
type Ref struct {
	f   pooled
	gen uint32
}

// MakeRef captures a handle to f. Refs to unpooled frames never go stale.
func MakeRef(f Frame) Ref {
	if pf, ok := f.(pooled); ok && pf.hdr().pool != nil {
		return Ref{f: pf, gen: pf.hdr().gen}
	}
	return Ref{}
}

// Valid reports whether the referenced frame is still the same live
// allocation the Ref was taken from.
func (r Ref) Valid() bool {
	if r.f == nil {
		return true
	}
	h := r.f.hdr()
	return h.live && h.gen == r.gen
}
