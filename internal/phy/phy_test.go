package phy

import (
	"testing"
	"testing/quick"

	"rmac/internal/frame"
	"rmac/internal/geom"
	"rmac/internal/mobility"
	"rmac/internal/sim"
)

// recorder is a Handler that logs every PHY indication.
type recorder struct {
	frames  []recFrame
	carrier []bool
	tones   []recTone
	txDone  int
}

type recFrame struct {
	f       frame.Frame
	ok      bool
	rxStart sim.Time
	at      sim.Time
}

type recTone struct {
	t      Tone
	sensed bool
	at     sim.Time
}

type recRadio struct {
	*Radio
	rec *recorder
	eng *sim.Engine
}

func (r *recRadio) OnFrameReceived(f frame.Frame, ok bool, rxStart sim.Time) {
	r.rec.frames = append(r.rec.frames, recFrame{f, ok, rxStart, r.eng.Now()})
}
func (r *recRadio) OnCarrierChange(busy bool) { r.rec.carrier = append(r.rec.carrier, busy) }
func (r *recRadio) OnToneChange(t Tone, sensed bool) {
	r.rec.tones = append(r.rec.tones, recTone{t, sensed, r.eng.Now()})
}
func (r *recRadio) OnTxDone(frame.Frame) { r.rec.txDone++ }

// build creates a medium with nodes at fixed positions and recording handlers.
func build(t *testing.T, cfg Config, pos []geom.Point) (*sim.Engine, *Medium, []*recRadio) {
	t.Helper()
	eng := sim.NewEngine(1)
	m := NewMedium(eng, cfg)
	rads := make([]*recRadio, len(pos))
	for i, p := range pos {
		r := m.AddRadio(i, mobility.Stationary{P: p})
		rr := &recRadio{Radio: r, rec: &recorder{}, eng: eng}
		r.SetHandler(rr)
		rads[i] = rr
	}
	return eng, m, rads
}

func testFrame(src int, payload int) *frame.UData {
	return &frame.UData{
		Transmitter: frame.AddrFromID(src),
		Receiver:    frame.Broadcast,
		Payload:     make([]byte, payload),
	}
}

func TestTxDurationPaperNumbers(t *testing.T) {
	cfg := DefaultConfig()
	cases := []struct {
		bytes int
		want  sim.Time
	}{
		{14, 152 * sim.Microsecond},   // ACK: 96 + 56
		{20, 176 * sim.Microsecond},   // RTS: 96 + 80
		{18, 168 * sim.Microsecond},   // shortest MRTS
		{22, 184 * sim.Microsecond},   // shortest RMAC data frame
		{522, 2184 * sim.Microsecond}, // 500-byte packet in RDATA
	}
	for _, c := range cases {
		if got := cfg.TxDuration(c.bytes); got != c.want {
			t.Errorf("TxDuration(%d) = %v, want %v", c.bytes, got, c.want)
		}
	}
	// §3.4: shortest MRTS + shortest data = 352 µs; 352/17 -> limit 20.
	total := cfg.TxDuration(18) + cfg.TxDuration(22)
	if total != 352*sim.Microsecond {
		t.Fatalf("MRTS+DATA = %v, want 352µs", total)
	}
	if int(total/ABTDuration) != 20 {
		t.Fatalf("receiver limit = %d, want 20", int(total/ABTDuration))
	}
}

// TestControlOverheadBMMM reproduces §2's arithmetic: 2n pairs of control
// frames cost 632n µs.
func TestControlOverheadBMMM(t *testing.T) {
	cfg := DefaultConfig()
	perReceiver := cfg.TxDuration(frame.RTSLen) + cfg.TxDuration(frame.CTSLen) +
		cfg.TxDuration(frame.RAKLen) + cfg.TxDuration(frame.ACKLen)
	if perReceiver != 632*sim.Microsecond {
		t.Fatalf("BMMM control airtime per receiver = %v, want 632µs", perReceiver)
	}
}

func TestSimpleDelivery(t *testing.T) {
	cfg := DefaultConfig()
	_, m, rads := build(t, cfg, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}})
	f := testFrame(0, 100)
	dur := rads[0].StartTx(f)
	m.Engine().RunAll()
	if rads[0].rec.txDone != 1 {
		t.Fatal("sender missing OnTxDone")
	}
	got := rads[1].rec.frames
	if len(got) != 1 || !got[0].ok {
		t.Fatalf("receiver frames = %+v, want 1 ok frame", got)
	}
	prop := m.propDelay(50)
	if got[0].rxStart != prop {
		t.Fatalf("rxStart = %v, want %v", got[0].rxStart, prop)
	}
	if got[0].at != prop+dur {
		t.Fatalf("rx end = %v, want %v", got[0].at, prop+dur)
	}
	// Carrier went busy then idle.
	c := rads[1].rec.carrier
	if len(c) != 2 || !c[0] || c[1] {
		t.Fatalf("carrier transitions = %v", c)
	}
}

func TestOutOfRangeNoDelivery(t *testing.T) {
	cfg := DefaultConfig()
	_, m, rads := build(t, cfg, []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}})
	rads[0].StartTx(testFrame(0, 10))
	m.Engine().RunAll()
	if len(rads[1].rec.frames) != 0 {
		t.Fatal("frame delivered beyond range")
	}
	if len(rads[1].rec.carrier) != 0 {
		t.Fatal("carrier sensed beyond interference range")
	}
}

func TestInterferenceRangeCorruptsButNotDecodes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InterferenceFactor = 2.0
	// B is outside comm range (75) of A but inside interference (150).
	_, m, rads := build(t, cfg, []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}})
	rads[0].StartTx(testFrame(0, 10))
	m.Engine().RunAll()
	fr := rads[1].rec.frames
	if len(fr) != 1 || fr[0].ok {
		t.Fatalf("interference-range delivery = %+v, want 1 corrupt frame", fr)
	}
	if len(rads[1].rec.carrier) != 2 {
		t.Fatal("interference-range signal must drive carrier sense")
	}
}

func TestCollisionAtReceiver(t *testing.T) {
	// A and C both in range of B; A and C out of range of each other
	// (hidden terminals). Overlapping transmissions collide at B.
	cfg := DefaultConfig()
	eng, m, rads := build(t, cfg, []geom.Point{{X: 0, Y: 0}, {X: 70, Y: 0}, {X: 140, Y: 0}})
	rads[0].StartTx(testFrame(0, 100))
	eng.After(10*sim.Microsecond, func() { rads[2].StartTx(testFrame(2, 100)) })
	m.Engine().RunAll()
	fr := rads[1].rec.frames
	if len(fr) != 2 {
		t.Fatalf("B saw %d frames, want 2", len(fr))
	}
	for _, g := range fr {
		if g.ok {
			t.Fatalf("overlapping frame decoded ok: %+v", g)
		}
	}
	// A and C are out of each other's range: they successfully decode
	// nothing but also hear nothing.
	if len(rads[0].rec.frames) != 0 || len(rads[2].rec.frames) != 0 {
		t.Fatal("hidden terminals heard each other")
	}
}

func TestSequentialFramesBothDecode(t *testing.T) {
	cfg := DefaultConfig()
	eng, m, rads := build(t, cfg, []geom.Point{{X: 0, Y: 0}, {X: 70, Y: 0}, {X: 140, Y: 0}})
	dur := cfg.TxDuration(testFrame(0, 100).WireSize())
	rads[0].StartTx(testFrame(0, 100))
	// Start the second transmission well after the first ends plus prop.
	eng.Schedule(dur+10*sim.Microsecond, func() { rads[2].StartTx(testFrame(2, 100)) })
	m.Engine().RunAll()
	fr := rads[1].rec.frames
	if len(fr) != 2 || !fr[0].ok || !fr[1].ok {
		t.Fatalf("sequential frames = %+v, want both ok", fr)
	}
}

func TestTransmitterCannotDecode(t *testing.T) {
	// B starts transmitting while A's frame is arriving: A's frame is
	// corrupted at B.
	cfg := DefaultConfig()
	eng, m, rads := build(t, cfg, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}})
	rads[0].StartTx(testFrame(0, 100))
	eng.After(50*sim.Microsecond, func() { rads[1].StartTx(testFrame(1, 10)) })
	m.Engine().RunAll()
	fr := rads[1].rec.frames
	if len(fr) != 1 || fr[0].ok {
		t.Fatalf("frame at transmitting node = %+v, want corrupt", fr)
	}
}

func TestAbortTruncatesSignal(t *testing.T) {
	cfg := DefaultConfig()
	eng, m, rads := build(t, cfg, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}})
	rads[0].StartTx(testFrame(0, 500))
	abortAt := 100 * sim.Microsecond
	eng.Schedule(abortAt, func() { rads[0].AbortTx() })
	m.Engine().RunAll()
	if rads[0].rec.txDone != 0 {
		t.Fatal("aborted TX produced OnTxDone")
	}
	fr := rads[1].rec.frames
	if len(fr) != 1 || fr[0].ok {
		t.Fatalf("aborted frame = %+v, want corrupt delivery", fr)
	}
	prop := m.propDelay(50)
	if fr[0].at != abortAt+prop {
		t.Fatalf("truncated rx end = %v, want %v", fr[0].at, abortAt+prop)
	}
	if rads[0].Transmitting() {
		t.Fatal("still transmitting after abort")
	}
	if m.Stats.Aborts != 1 {
		t.Fatal("abort not counted")
	}
}

func TestTonePropagationAndSensing(t *testing.T) {
	cfg := DefaultConfig()
	eng, m, rads := build(t, cfg, []geom.Point{{X: 0, Y: 0}, {X: 60, Y: 0}, {X: 200, Y: 0}})
	eng.Schedule(10*sim.Microsecond, func() { rads[0].SetTone(ToneRBT, true) })
	eng.Schedule(110*sim.Microsecond, func() { rads[0].SetTone(ToneRBT, false) })
	m.Engine().RunAll()
	prop := m.propDelay(60)
	tr := rads[1].rec.tones
	if len(tr) != 2 {
		t.Fatalf("tone transitions = %+v", tr)
	}
	if !tr[0].sensed || tr[0].at != 10*sim.Microsecond+prop {
		t.Fatalf("tone rise = %+v", tr[0])
	}
	if tr[1].sensed || tr[1].at != 110*sim.Microsecond+prop {
		t.Fatalf("tone fall = %+v", tr[1])
	}
	if len(rads[2].rec.tones) != 0 {
		t.Fatal("tone sensed out of range")
	}
	if len(rads[0].rec.tones) != 0 {
		t.Fatal("node sensed its own tone")
	}
	// Windowed query: 100 µs of tone within [0, 200µs].
	if got := rads[1].ToneOverlap(ToneRBT, 0, 200*sim.Microsecond); got != 100*sim.Microsecond {
		t.Fatalf("ToneOverlap = %v, want 100µs", got)
	}
}

func TestToneCountsFromMultipleEmitters(t *testing.T) {
	// Two emitters overlap; the middle node sees one rise and one fall.
	cfg := DefaultConfig()
	eng, m, rads := build(t, cfg, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 100, Y: 0}})
	eng.Schedule(10*sim.Microsecond, func() { rads[0].SetTone(ToneABT, true) })
	eng.Schedule(20*sim.Microsecond, func() { rads[2].SetTone(ToneABT, true) })
	eng.Schedule(50*sim.Microsecond, func() { rads[0].SetTone(ToneABT, false) })
	eng.Schedule(80*sim.Microsecond, func() { rads[2].SetTone(ToneABT, false) })
	m.Engine().RunAll()
	tr := rads[1].rec.tones
	if len(tr) != 2 || !tr[0].sensed || tr[1].sensed {
		t.Fatalf("middle node transitions = %+v, want rise+fall only", tr)
	}
	// Level stayed up across the emitter handoff.
	rise, fall := tr[0].at, tr[1].at
	if got := rads[1].ToneOverlap(ToneABT, 0, sim.Second); got != fall-rise {
		t.Fatalf("overlap = %v, want %v", got, fall-rise)
	}
}

func TestDoubleToneOnPanics(t *testing.T) {
	_, m, rads := build(t, DefaultConfig(), []geom.Point{{X: 0, Y: 0}})
	_ = m
	rads[0].SetTone(ToneRBT, true)
	defer func() {
		if recover() == nil {
			t.Fatal("double tone-on did not panic")
		}
	}()
	rads[0].SetTone(ToneRBT, true)
}

func TestOngoingTxWhileTonePresent(t *testing.T) {
	// Tones live on a separate channel: a transmitting node still senses
	// tone transitions (needed for MRTS abortion, §3.3.2 step 3).
	cfg := DefaultConfig()
	eng, m, rads := build(t, cfg, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}})
	rads[0].StartTx(testFrame(0, 500)) // ~2.1 ms
	eng.Schedule(100*sim.Microsecond, func() { rads[1].SetTone(ToneRBT, true) })
	eng.Schedule(200*sim.Microsecond, func() { rads[1].SetTone(ToneRBT, false) })
	m.Engine().RunAll()
	if len(rads[0].rec.tones) != 2 {
		t.Fatalf("transmitter tone transitions = %+v", rads[0].rec.tones)
	}
}

func TestBERCorruptsFrames(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BER = 1e-3 // 500-byte frame error prob ~ 0.985
	_, m, rads := build(t, cfg, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}})
	okCount := 0
	n := 50
	for i := 0; i < n; i++ {
		at := sim.Time(i) * 5 * sim.Millisecond
		m.Engine().Schedule(at, func() { rads[0].StartTx(testFrame(0, 500)) })
	}
	m.Engine().RunAll()
	for _, g := range rads[1].rec.frames {
		if g.ok {
			okCount++
		}
	}
	if okCount > n/4 {
		t.Fatalf("BER 1e-3: %d/%d frames survived, expected almost none", okCount, n)
	}
	if p := cfg.FrameErrorProb(522); p < 0.9 || p > 1 {
		t.Fatalf("FrameErrorProb(522) = %v", p)
	}
	if DefaultConfig().FrameErrorProb(522) != 0 {
		t.Fatal("BER=0 must give zero error prob")
	}
}

func TestNeighborsOf(t *testing.T) {
	_, m, rads := build(t, DefaultConfig(), []geom.Point{
		{X: 0, Y: 0}, {X: 74, Y: 0}, {X: 76, Y: 0}, {X: 0, Y: 75},
	})
	got := m.NeighborsOf(rads[0].Radio)
	want := []int{1, 3}
	if len(got) != len(want) || got[0] != 1 || got[1] != 3 {
		t.Fatalf("NeighborsOf = %v, want %v", got, want)
	}
}

func TestMediumStats(t *testing.T) {
	_, m, rads := build(t, DefaultConfig(), []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}})
	rads[0].StartTx(testFrame(0, 10))
	m.Engine().RunAll()
	if m.Stats.Transmissions != 1 || m.Stats.FramesDecoded != 1 || m.Stats.FramesCorrupt != 0 {
		t.Fatalf("stats = %+v", m.Stats)
	}
}

// Property: tone overlap accounting is consistent — for any on/off schedule
// the measured overlap in a covering window equals the total emitted time
// (single emitter, fixed propagation).
func TestPropertyToneAccounting(t *testing.T) {
	f := func(durs []uint8) bool {
		if len(durs) > 8 {
			durs = durs[:8]
		}
		eng := sim.NewEngine(3)
		m := NewMedium(eng, DefaultConfig())
		a := m.AddRadio(0, mobility.Stationary{P: geom.Point{X: 0, Y: 0}})
		b := m.AddRadio(1, mobility.Stationary{P: geom.Point{X: 30, Y: 0}})
		rb := &recRadio{Radio: b, rec: &recorder{}, eng: eng}
		b.SetHandler(rb)
		var total sim.Time
		at := sim.Time(0)
		for _, d := range durs {
			on := sim.Time(d%50+1) * sim.Microsecond
			gap := sim.Time(d%31+1) * sim.Microsecond
			st, en := at, at+on
			eng.Schedule(st, func() { a.SetTone(ToneABT, true) })
			eng.Schedule(en, func() { a.SetTone(ToneABT, false) })
			total += on
			at = en + gap
		}
		eng.RunAll()
		got := b.ToneOverlap(ToneABT, 0, eng.Now())
		return got == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: for any pair of overlapping transmissions in mutual range of a
// receiver, neither decodes; for disjoint-in-time transmissions, both do.
func TestPropertyOverlapExcludesDecode(t *testing.T) {
	f := func(gapRaw uint16) bool {
		gap := sim.Time(gapRaw%4000) * sim.Microsecond
		eng := sim.NewEngine(5)
		m := NewMedium(eng, DefaultConfig())
		a := m.AddRadio(0, mobility.Stationary{P: geom.Point{X: 0, Y: 0}})
		b := m.AddRadio(1, mobility.Stationary{P: geom.Point{X: 70, Y: 0}})
		c := m.AddRadio(2, mobility.Stationary{P: geom.Point{X: 140, Y: 0}})
		rb := &recRadio{Radio: b, rec: &recorder{}, eng: eng}
		b.SetHandler(rb)
		fr := testFrame(0, 100)
		dur := m.Config().TxDuration(fr.WireSize())
		eng.Schedule(0, func() { a.StartTx(fr) })
		eng.Schedule(gap, func() { c.StartTx(testFrame(2, 100)) })
		eng.RunAll()
		// Both senders are 70 m from B, so both signals shift by the same
		// propagation delay and overlap at B iff gap < dur (strict: at
		// gap == dur the first frame's last bit is delivered in the same
		// instant the second's first bit arrives, and both decode).
		overlapping := gap < dur
		okA, okC := false, false
		for _, g := range rb.rec.frames {
			if g.f.Src() == frame.AddrFromID(0) && g.ok {
				okA = true
			}
			if g.f.Src() == frame.AddrFromID(2) && g.ok {
				okC = true
			}
		}
		if overlapping {
			return !okA && !okC
		}
		return okA && okC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
