package phy

import (
	"math"

	"rmac/internal/geom"
	"rmac/internal/sim"
)

// spatialGrid accelerates in-range queries for large networks: radios are
// bucketed into square cells slightly larger than the interference range,
// so a 3×3 cell block around a transmitter covers every possible
// receiver. The grid is rebuilt lazily (at most once per gridRefresh of
// simulated time); the cell slack absorbs node movement between rebuilds
// for any realistic speed (≤ ~35 m/s at the defaults).
//
// Determinism: candidate cells are visited in a fixed ring order and
// radios within a cell keep registration order, so runs with equal seeds
// remain bit-identical. (The visit order differs from the linear scan's
// ID order, so enabling the grid changes sub-nanosecond event tie-breaks
// — physically equivalent, numerically a different sample path.)
type spatialGrid struct {
	cell  float64
	built sim.Time
	valid bool
	epoch uint64
	cells map[gridKey]*gridCell
}

// gridCell is one bucket. Buckets persist across rebuilds — a rebuild
// truncates the entry slice and stamps the bucket with the new epoch
// instead of deleting the map key, so the 100 ms rebuild cadence reuses
// every backing array. A bucket whose epoch is stale holds no radio this
// round; lookups skip it. The map itself only ever grows to the number of
// cells that have ever been occupied, which the field area bounds.
type gridCell struct {
	epoch   uint64
	entries []gridEntry
}

// gridEntry caches the radio's position at rebuild time. For static radios
// the cached position is exact and is used directly in range checks; mobile
// radios are re-queried so movement between rebuilds never changes results.
type gridEntry struct {
	r   *Radio
	pos geom.Point
}

type gridKey struct{ x, y int }

const (
	// gridRefresh bounds grid staleness.
	gridRefresh = 100 * sim.Millisecond
	// gridSlack scales cells beyond the interference range to absorb
	// movement between rebuilds.
	gridSlack = 1.05
	// gridThreshold is the network size above which the grid pays for
	// itself; smaller networks use the plain scan.
	gridThreshold = 96
)

func (m *Medium) gridEnabled() bool { return len(m.radios) >= gridThreshold }

// rebuildGrid re-buckets every radio at its current position.
func (m *Medium) rebuildGrid() {
	if m.grid == nil {
		m.grid = &spatialGrid{
			cell:  m.cfg.interferenceRange() * gridSlack,
			cells: make(map[gridKey]*gridCell),
		}
	}
	g := m.grid
	g.epoch++
	for _, r := range m.radios {
		p := m.PositionOf(r)
		k := g.keyFor(p)
		c := g.cells[k]
		if c == nil {
			c = &gridCell{}
			g.cells[k] = c
		}
		if c.epoch != g.epoch {
			c.epoch = g.epoch
			c.entries = c.entries[:0]
		}
		c.entries = append(c.entries, gridEntry{r: r, pos: p})
	}
	g.built = m.eng.Now()
	g.valid = true
}

func (g *spatialGrid) keyFor(p geom.Point) gridKey {
	return gridKey{int(math.Floor(p.X / g.cell)), int(math.Floor(p.Y / g.cell))}
}

// forEachInRange invokes fn for every radio other than src whose current
// position lies within dist of pos, passing the squared distance. The
// visit order is deterministic.
func (m *Medium) forEachInRange(src *Radio, pos geom.Point, dist float64, fn func(o *Radio, d2 float64)) {
	d2max := dist * dist
	if !m.gridEnabled() {
		for _, o := range m.radios {
			if o == src {
				continue
			}
			if d2 := m.PositionOf(o).Dist2(pos); d2 <= d2max {
				fn(o, d2)
			}
		}
		return
	}
	if m.grid == nil || !m.grid.valid || m.eng.Now()-m.grid.built > gridRefresh {
		m.rebuildGrid()
	}
	g := m.grid
	center := g.keyFor(pos)
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			k := gridKey{center.x + dx, center.y + dy}
			c := g.cells[k]
			if c == nil || c.epoch != g.epoch {
				continue
			}
			for _, ent := range c.entries {
				o := ent.r
				if o == src {
					continue
				}
				op := ent.pos
				if !o.static {
					op = m.PositionOf(o)
				}
				if d2 := op.Dist2(pos); d2 <= d2max {
					fn(o, d2)
				}
			}
		}
	}
}

// InvalidateGrid forces a rebuild on the next query (tests and teleports).
func (m *Medium) InvalidateGrid() {
	if m.grid != nil {
		m.grid.valid = false
	}
}
