package phy

import (
	"fmt"
	"math"
	"sort"

	"rmac/internal/frame"
	"rmac/internal/geom"
	"rmac/internal/mobility"
	"rmac/internal/sim"
	"rmac/internal/trace"
)

// Medium is the shared wireless channel: it owns every Radio in a
// simulation, computes propagation delays from node positions, fans
// transmissions and tone transitions out to in-range radios, and tracks
// overlap so each receiver knows whether a frame arrived collision-free.
//
// The fan-out path is allocation-free in steady state: transmissions,
// per-receiver rx paths and tone sessions are recycled through per-medium
// free lists, and every callback is scheduled as a tagged event on the
// pooled object itself (see sim.Caller) rather than as a heap closure.
type Medium struct {
	eng    *sim.Engine
	cfg    Config
	radios []*Radio

	// Stats counts channel-level totals across the run.
	Stats MediumStats

	// Tracer, when non-nil, records frame and tone events (see package
	// trace). Nil costs nothing: every call site guards both the Add call
	// and its Detail formatting behind a nil check.
	Tracer *trace.Trace

	grid *spatialGrid

	// Object pools. A released object keeps its slice capacity, so a
	// steady-state broadcast reuses the same backing arrays every frame.
	txFree   []*transmission
	rxFree   []*rxPath
	sessFree []*toneSession
}

// MediumStats aggregates channel-level counters.
type MediumStats struct {
	Transmissions  uint64 // StartTx calls
	Aborts         uint64 // AbortTx calls
	FramesDecoded  uint64 // deliveries with ok=true
	FramesCorrupt  uint64 // deliveries with ok=false (collision/abort/BER)
	ToneActivation uint64 // SetTone(on) calls
}

// NewMedium creates an empty medium on the given engine.
func NewMedium(eng *sim.Engine, cfg Config) *Medium {
	if cfg.CommRange <= 0 || cfg.BitRate <= 0 || cfg.PropSpeed <= 0 {
		panic("phy: invalid Config")
	}
	return &Medium{eng: eng, cfg: cfg}
}

// Config returns the medium's radio configuration.
func (m *Medium) Config() Config { return m.cfg }

// Engine returns the simulation engine the medium is bound to.
func (m *Medium) Engine() *sim.Engine { return m.eng }

// AddRadio creates and registers the radio for node id, moving according to
// mob. The returned radio must be given a Handler before traffic starts.
// Stationary radios cache their position, removing the mobility-model call
// from every in-range query.
func (m *Medium) AddRadio(id int, mob mobility.Model) *Radio {
	r := &Radio{
		m:   m,
		eng: m.eng,
		id:  id,
		mob: mob,
	}
	if s, ok := mob.(mobility.Stationary); ok {
		r.static = true
		r.pos = s.P
	}
	for t := range r.toneLog {
		r.toneLog[t].onSince = -1
	}
	m.radios = append(m.radios, r)
	return r
}

// Radios returns all registered radios.
func (m *Medium) Radios() []*Radio { return m.radios }

// PositionOf returns node r's current position.
func (m *Medium) PositionOf(r *Radio) geom.Point {
	if r.static {
		return r.pos
	}
	return r.mob.PositionAt(m.eng.Now())
}

// propDelay converts a distance to a propagation delay; a floor of 1 ns
// keeps event ordering strict for co-located nodes.
func (m *Medium) propDelay(dist float64) sim.Time {
	d := sim.Time(dist / m.cfg.PropSpeed * float64(sim.Second))
	if d < 1 {
		d = 1
	}
	return d
}

// NeighborsOf returns the IDs of nodes currently within communication range
// of r, in ascending ID order. Used by routing/topology analysis, not by
// the PHY fast path.
func (m *Medium) NeighborsOf(r *Radio) []int {
	p := m.PositionOf(r)
	var out []int
	m.forEachInRange(r, p, m.cfg.CommRange, func(o *Radio, _ float64) {
		out = append(out, o.id)
	})
	sort.Ints(out)
	return out
}

// Tags for the pooled objects' sim.Caller dispatch.
const (
	tagRxStart int32 = iota
	tagRxEnd
)

// transmission is one frame in flight on the data channel.
type transmission struct {
	src      *Radio
	f        frame.Frame
	start    sim.Time
	end      sim.Time // updated if aborted
	aborted  bool
	finished bool // txDone ran or AbortTx was called
	pending  int  // rx paths whose rxEnd has not run yet
	doneEv   sim.Event
	dests    []*rxPath
}

// Call implements sim.Caller: natural completion of the transmission.
func (tx *transmission) Call(int32) { tx.src.m.txDone(tx) }

// rxPath tracks the signal from one transmission at one receiver.
type rxPath struct {
	tx        *transmission
	r         *Radio
	prop      sim.Time
	inComm    bool // within decode range at TX start
	corrupted bool // overlap, receiver-transmitting, or abort
	started   bool // rxStart already processed
	endEv     sim.Event
}

// Call implements sim.Caller: arrival of the signal's first or last bit.
func (p *rxPath) Call(tag int32) {
	if tag == tagRxStart {
		p.r.m.rxStart(p)
	} else {
		p.r.m.rxEnd(p)
	}
}

// newTx takes a transmission from the pool (or allocates the pool's first).
func (m *Medium) newTx() *transmission {
	if n := len(m.txFree); n > 0 {
		tx := m.txFree[n-1]
		m.txFree = m.txFree[:n-1]
		return tx
	}
	return &transmission{}
}

func (m *Medium) freeTx(tx *transmission) {
	*tx = transmission{dests: tx.dests[:0]}
	m.txFree = append(m.txFree, tx)
}

func (m *Medium) newRxPath() *rxPath {
	if n := len(m.rxFree); n > 0 {
		p := m.rxFree[n-1]
		m.rxFree = m.rxFree[:n-1]
		return p
	}
	return &rxPath{}
}

func (m *Medium) freeRx(p *rxPath) {
	*p = rxPath{}
	m.rxFree = append(m.rxFree, p)
}

func (m *Medium) newSess() *toneSession {
	if n := len(m.sessFree); n > 0 {
		s := m.sessFree[n-1]
		m.sessFree = m.sessFree[:n-1]
		return s
	}
	return &toneSession{}
}

func (m *Medium) freeSess(s *toneSession) {
	s.dests = s.dests[:0]
	s.props = s.props[:0]
	m.sessFree = append(m.sessFree, s)
}

// StartTx begins transmitting f from r. It returns the scheduled airtime.
// The radio's handler receives OnTxDone when the transmission completes
// naturally; an aborted transmission (AbortTx) does not call OnTxDone.
func (m *Medium) StartTx(r *Radio, f frame.Frame) sim.Time {
	if r.curTx != nil {
		panic(fmt.Sprintf("phy: node %d StartTx while already transmitting", r.id))
	}
	now := m.eng.Now()
	dur := m.cfg.TxDuration(f.WireSize())
	tx := m.newTx()
	tx.src, tx.f, tx.start, tx.end = r, f, now, now+dur
	r.curTx = tx
	m.Stats.Transmissions++

	// A node cannot decode while transmitting: poison any in-progress
	// receptions at the transmitter.
	for _, p := range r.active {
		p.corrupted = true
	}

	srcPos := m.PositionOf(r)
	c2 := m.cfg.CommRange * m.cfg.CommRange
	m.forEachInRange(r, srcPos, m.cfg.interferenceRange(), func(o *Radio, d2 float64) {
		p := m.newRxPath()
		p.tx, p.r, p.inComm = tx, o, d2 <= c2
		p.prop = m.propDelay(math.Sqrt(d2))
		tx.dests = append(tx.dests, p)
		m.eng.ScheduleCall(now+p.prop, p, tagRxStart)
		p.endEv = m.eng.ScheduleCall(tx.end+p.prop, p, tagRxEnd)
	})
	tx.pending = len(tx.dests)
	tx.doneEv = m.eng.ScheduleCall(tx.end, tx, 0)
	if m.Tracer != nil {
		m.Tracer.Add(trace.Event{At: now, Node: r.id, Kind: trace.TxStart, What: f.Kind().String(),
			Detail: fmt.Sprintf("%dB %v", f.WireSize(), dur)})
	}
	return dur
}

// AbortTx aborts r's in-flight transmission immediately (RMAC step 3 /
// Unreliable Send step 2: stop when an RBT is detected). The truncated
// signal still occupies the channel until now+prop at each receiver and is
// never decodable there. No OnTxDone callback is made; the caller knows it
// aborted.
func (m *Medium) AbortTx(r *Radio) {
	tx := r.curTx
	if tx == nil {
		panic(fmt.Sprintf("phy: node %d AbortTx with no transmission", r.id))
	}
	now := m.eng.Now()
	tx.aborted = true
	tx.finished = true
	tx.end = now
	tx.doneEv.Cancel()
	m.Stats.Aborts++
	for _, p := range tx.dests {
		p.corrupted = true
		p.endEv.Cancel()
		p.endEv = m.eng.ScheduleCall(now+p.prop, p, tagRxEnd)
	}
	r.curTx = nil
	if m.Tracer != nil {
		m.Tracer.Add(trace.Event{At: now, Node: r.id, Kind: trace.TxAbort, What: tx.f.Kind().String()})
	}
	if tx.pending == 0 {
		m.freeTx(tx)
	}
}

func (m *Medium) txDone(tx *transmission) {
	tx.src.curTx = nil
	tx.finished = true
	h := tx.src.handler
	f := tx.f
	if tx.pending == 0 {
		m.freeTx(tx)
	}
	if h != nil {
		h.OnTxDone(f)
	}
}

func (m *Medium) rxStart(p *rxPath) {
	r := p.r
	p.started = true
	// Overlap: if any other signal is active at this receiver, every
	// involved signal is corrupted.
	if len(r.active) > 0 {
		p.corrupted = true
		for _, q := range r.active {
			q.corrupted = true
		}
	}
	// A transmitting node cannot decode.
	if r.curTx != nil {
		p.corrupted = true
	}
	r.active = append(r.active, p)
	if len(r.active) == 1 && r.handler != nil {
		r.handler.OnCarrierChange(true)
	}
}

func (m *Medium) rxEnd(p *rxPath) {
	r := p.r
	if p.started {
		for i, q := range r.active {
			if q == p {
				r.active = append(r.active[:i], r.active[i+1:]...)
				break
			}
		}
	}
	tx := p.tx
	ok := p.started && p.inComm && !p.corrupted && !tx.aborted
	if ok && m.cfg.BER > 0 {
		if m.eng.Rand().Float64() < m.cfg.FrameErrorProb(tx.f.WireSize()) {
			ok = false
		}
	}
	if ok {
		m.Stats.FramesDecoded++
	} else {
		m.Stats.FramesCorrupt++
	}
	if m.Tracer != nil {
		k := trace.RxOK
		if !ok {
			k = trace.RxCorrupt
		}
		m.Tracer.Add(trace.Event{At: m.eng.Now(), Node: r.id, Kind: k, What: tx.f.Kind().String(),
			Detail: "from node " + fmt.Sprint(tx.src.id)})
	}
	started := p.started
	rxStart := tx.start + p.prop
	f := tx.f
	// Release the path and, when this was the last outstanding path of a
	// finished transmission, the transmission — before the handler runs,
	// so a handler that transmits immediately reuses the warm objects.
	tx.pending--
	if tx.finished && tx.pending == 0 {
		m.freeTx(tx)
	}
	m.freeRx(p)
	if r.handler != nil {
		r.handler.OnFrameReceived(f, ok, rxStart)
	}
	if len(r.active) == 0 && started && r.handler != nil {
		r.handler.OnCarrierChange(false)
	}
}

// SetTone turns node r's tone t on or off. Tone transitions propagate with
// the same per-neighbor delay as data; the emitting node does not sense its
// own tone. Turning a tone on twice (or off while off) panics — protocol
// state machines must track their own tone state.
func (m *Medium) SetTone(r *Radio, t Tone, on bool) {
	if r.ownTone[t] == on {
		panic(fmt.Sprintf("phy: node %d tone %v already %v", r.id, t, on))
	}
	r.ownTone[t] = on
	now := m.eng.Now()
	if m.Tracer != nil {
		k := trace.ToneOn
		if !on {
			k = trace.ToneOff
		}
		m.Tracer.Add(trace.Event{At: now, Node: r.id, Kind: k, What: t.String()})
	}
	if on {
		m.Stats.ToneActivation++
		srcPos := m.PositionOf(r)
		sess := m.newSess()
		m.forEachInRange(r, srcPos, m.cfg.interferenceRange(), func(o *Radio, d2 float64) {
			sess.dests = append(sess.dests, o)
			sess.props = append(sess.props, m.propDelay(math.Sqrt(d2)))
		})
		r.toneSess[t] = sess
		for i, o := range sess.dests {
			m.eng.ScheduleCall(now+sess.props[i], o, toneOnTag(t))
		}
		return
	}
	sess := r.toneSess[t]
	r.toneSess[t] = nil
	if sess == nil {
		return
	}
	for i, o := range sess.dests {
		m.eng.ScheduleCall(now+sess.props[i], o, toneOffTag(t))
	}
	m.freeSess(sess)
}

// toneSession records the receivers and delays captured when a tone was
// raised, so the matching off-transition reaches exactly the same set.
type toneSession struct {
	dests []*Radio
	props []sim.Time
}

// Tone transition tags for Radio's sim.Caller dispatch: bit 0 is the
// on/off direction, the remaining bits are the tone index.
func toneOnTag(t Tone) int32  { return int32(t)<<1 | 1 }
func toneOffTag(t Tone) int32 { return int32(t) << 1 }
