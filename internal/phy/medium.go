package phy

import (
	"fmt"
	"math"
	"sort"

	"rmac/internal/frame"
	"rmac/internal/geom"
	"rmac/internal/mobility"
	"rmac/internal/sim"
	"rmac/internal/trace"
)

// Medium is the shared wireless channel: it owns every Radio in a
// simulation, computes propagation delays from node positions, fans
// transmissions and tone transitions out to in-range radios, and tracks
// overlap so each receiver knows whether a frame arrived collision-free.
//
// The fan-out path is allocation-free in steady state: transmissions,
// per-receiver rx paths and tone sessions are recycled through per-medium
// free lists, and every callback is scheduled as a tagged event on the
// pooled object itself (see sim.Caller) rather than as a heap closure.
type Medium struct {
	eng    *sim.Engine
	cfg    Config
	radios []*Radio
	imp    Impairment

	// Stats counts channel-level totals across the run.
	Stats MediumStats

	// Tracer, when non-nil, records frame and tone events (see package
	// trace). Nil costs nothing: every call site guards both the Add call
	// and its Detail formatting behind a nil check.
	Tracer *trace.Trace

	// Obs, when non-nil, receives pre-transition callbacks for every
	// observable medium event (see Observer). Nil costs one branch per
	// hook site.
	Obs Observer

	grid *spatialGrid

	// Object pools. A released object keeps its slice capacity, so a
	// steady-state broadcast reuses the same backing arrays every frame.
	txFree   []*transmission
	rxFree   []*rxPath
	sessFree []*toneSession

	// frames is the arena every layer above draws its frames from. StartTx
	// transfers frame ownership to the medium, which releases the frame
	// once the sender's OnTxDone and all receptions have completed (see
	// frame.Release and DESIGN.md §9).
	frames *frame.Pool

	// cross, when non-nil, is this medium's half of a sharded run's
	// cross-shard fabric (see cross.go): border-radio transmissions,
	// aborts, and tone transitions are mirrored into foreign shards
	// through it. Nil — the unsharded case — costs one branch per hook.
	cross *shardConduit
}

// MediumStats aggregates channel-level counters.
type MediumStats struct {
	Transmissions  uint64 // StartTx calls
	Aborts         uint64 // AbortTx calls
	FramesDecoded  uint64 // deliveries with ok=true
	FramesCorrupt  uint64 // deliveries with ok=false (collision/abort/BER)
	ToneActivation uint64 // SetTone(on) calls
	Crashes        uint64 // SetDown(true) transitions (fault injection)
}

// NewMedium creates an empty medium on the given engine.
func NewMedium(eng *sim.Engine, cfg Config) *Medium {
	if cfg.CommRange <= 0 || cfg.BitRate <= 0 || cfg.PropSpeed <= 0 {
		panic("phy: invalid Config")
	}
	return &Medium{eng: eng, cfg: cfg, frames: frame.NewPool()}
}

// Frames returns the medium's frame pool. All MAC and application layers
// of one simulation share it; like the medium itself it is confined to the
// engine's goroutine.
func (m *Medium) Frames() *frame.Pool { return m.frames }

// Impairment is an extra channel-error model consulted for every frame
// that is otherwise decodable (collision-free, in range, not aborted, not
// at a crashed radio, and past the independent-BER roll). Implemented by
// internal/fault's Gilbert–Elliott bursty channel; nil disables it at
// zero cost.
//
// FrameError must draw all of its randomness from the owning engine's
// Rand() so that the determinism contract of the delivery path holds (see
// the package comment), and must not allocate: it runs on the per-frame
// hot path.
type Impairment interface {
	// FrameError reports whether the frame of the given wire size from tx
	// is corrupted on its path to rx. Called at reception end.
	FrameError(rx, tx *Radio, wireBytes int) bool
}

// SetImpairment installs (or, with nil, removes) the medium's extra
// channel-error model. Install it before traffic starts: swapping models
// mid-run changes the RNG consumption sequence from that point on.
func (m *Medium) SetImpairment(imp Impairment) { m.imp = imp }

// Config returns the medium's radio configuration.
func (m *Medium) Config() Config { return m.cfg }

// Engine returns the simulation engine the medium is bound to.
func (m *Medium) Engine() *sim.Engine { return m.eng }

// AddRadio creates and registers the radio for node id, moving according to
// mob. The returned radio must be given a Handler before traffic starts.
// Stationary radios cache their position, removing the mobility-model call
// from every in-range query.
func (m *Medium) AddRadio(id int, mob mobility.Model) *Radio {
	r := &Radio{
		m:        m,
		eng:      m.eng,
		id:       id,
		mob:      mob,
		memoTime: -1,
	}
	if s, ok := mob.(mobility.Stationary); ok {
		r.static = true
		r.pos = s.P
	}
	for t := range r.toneLog {
		r.toneLog[t].onSince = -1
	}
	m.radios = append(m.radios, r)
	return r
}

// Radios returns all registered radios.
func (m *Medium) Radios() []*Radio { return m.radios }

// PositionOf returns node r's current position. Mobile positions are
// memoized per (radio, instant): a fan-out queries every in-range radio at
// the same timestamp, so repeat queries hit the memo instead of re-walking
// the trajectory.
func (m *Medium) PositionOf(r *Radio) geom.Point {
	if r.static {
		return r.pos
	}
	now := m.eng.Now()
	if r.memoTime == now {
		return r.memoPos
	}
	p := r.mob.PositionAt(now)
	r.memoTime, r.memoPos = now, p
	return p
}

// positionAt returns node r's position at time t, which may trail the
// engine clock by up to the mobility retention horizon. The cross-shard
// conduit uses it to replay a foreign transmission's start-time geometry
// at holder-fire time (the fire runs minProp after the start). Read-only
// with respect to the memo: a backward query must not poison the
// current-instant cache.
func (m *Medium) positionAt(r *Radio, t sim.Time) geom.Point {
	if r.static {
		return r.pos
	}
	if r.memoTime == t {
		return r.memoPos
	}
	return r.mob.PositionAt(t)
}

// propDelay converts a distance to a propagation delay; a floor of 1 ns
// keeps event ordering strict for co-located nodes.
func (m *Medium) propDelay(dist float64) sim.Time {
	d := sim.Time(dist / m.cfg.PropSpeed * float64(sim.Second))
	if d < 1 {
		d = 1
	}
	return d
}

// NeighborsOf returns the IDs of nodes currently within communication range
// of r, in ascending ID order. Used by routing/topology analysis, not by
// the PHY fast path.
func (m *Medium) NeighborsOf(r *Radio) []int {
	p := m.PositionOf(r)
	var out []int
	m.forEachInRange(r, p, m.cfg.CommRange, func(o *Radio, _ float64) {
		out = append(out, o.id)
	})
	sort.Ints(out)
	return out
}

// Tags for the pooled objects' sim.Caller dispatch.
const (
	tagRxStart int32 = iota
	tagRxEnd
)

// transmission is one frame in flight on the data channel.
type transmission struct {
	src      *Radio
	f        frame.Frame
	start    sim.Time
	end      sim.Time // updated if aborted
	aborted  bool
	finished bool // txDone ran or AbortTx was called
	crossed  bool // mirrored into at least one foreign shard (sharded runs)
	pending  int  // rx paths whose rxEnd has not run yet
	doneEv   sim.Event
	dests    []*rxPath
}

// Call implements sim.Caller: natural completion of the transmission.
func (tx *transmission) Call(int32) { tx.src.m.txDone(tx) }

// rxPath tracks the signal from one transmission at one receiver.
type rxPath struct {
	tx        *transmission
	r         *Radio
	prop      sim.Time
	inComm    bool // within decode range at TX start
	corrupted bool // overlap, receiver-transmitting, or abort
	started   bool // rxStart already processed
	endEv     sim.Event
}

// Call implements sim.Caller: arrival of the signal's first or last bit.
//
// Last-bit arrivals batch: propagation delays are quantized to whole
// nanoseconds, so in a dense neighborhood several receivers' rxEnd events
// share one tick. After running one, the drain loop consumes every
// immediately-following rxEnd at the same instant straight off the
// engine's due list (PeekCall/TakeNext) without re-entering the dispatch
// loop. PeekCall only ever yields the provably-next event, so dispatch
// order — and with it every RNG draw in channelError — is bit-identical
// to the unbatched path.
func (p *rxPath) Call(tag int32) {
	m := p.r.m // rxEnd recycles p; grab the medium first
	if tag == tagRxStart {
		m.rxStart(p)
	} else {
		m.rxEnd(p)
	}
	now := m.eng.Now()
	for {
		c, t, ok := m.eng.PeekCall(now)
		if !ok || t != tag {
			return
		}
		q, isRx := c.(*rxPath)
		if !isRx {
			return // a tone or tx-done tag can collide numerically
		}
		m.eng.TakeNext()
		if t == tagRxStart {
			m.rxStart(q)
		} else {
			m.rxEnd(q)
		}
	}
}

// newTx takes a transmission from the pool (or allocates the pool's first).
func (m *Medium) newTx() *transmission {
	if n := len(m.txFree); n > 0 {
		tx := m.txFree[n-1]
		m.txFree = m.txFree[:n-1]
		return tx
	}
	return &transmission{}
}

// freeTx recycles a spent transmission and releases the frame it carried:
// at this point the sender's OnTxDone and every receiver's OnFrameReceived
// have returned, so no live reference remains (pool-less frames, e.g.
// hand-built ones in tests, are untouched by Release).
func (m *Medium) freeTx(tx *transmission) {
	frame.Release(tx.f)
	*tx = transmission{dests: tx.dests[:0]}
	m.txFree = append(m.txFree, tx)
}

func (m *Medium) newRxPath() *rxPath {
	if n := len(m.rxFree); n > 0 {
		p := m.rxFree[n-1]
		m.rxFree = m.rxFree[:n-1]
		return p
	}
	return &rxPath{}
}

func (m *Medium) freeRx(p *rxPath) {
	*p = rxPath{}
	m.rxFree = append(m.rxFree, p)
}

func (m *Medium) newSess() *toneSession {
	if n := len(m.sessFree); n > 0 {
		s := m.sessFree[n-1]
		m.sessFree = m.sessFree[:n-1]
		return s
	}
	return &toneSession{}
}

func (m *Medium) freeSess(s *toneSession) {
	s.dests = s.dests[:0]
	s.props = s.props[:0]
	m.sessFree = append(m.sessFree, s)
}

// StartTx begins transmitting f from r. It returns the scheduled airtime.
// The radio's handler receives OnTxDone when the transmission completes
// naturally; an aborted transmission (AbortTx) does not call OnTxDone.
func (m *Medium) StartTx(r *Radio, f frame.Frame) sim.Time {
	if m.Obs != nil {
		// Before the double-TX panic below, so the auditor records the
		// violation even when the medium refuses the transmission.
		m.Obs.ObsTxStart(r, f)
	}
	if r.curTx != nil {
		panic(fmt.Sprintf("phy: node %d StartTx while already transmitting", r.id))
	}
	now := m.eng.Now()
	dur := m.cfg.TxDuration(f.WireSize())
	tx := m.newTx()
	tx.src, tx.f, tx.start, tx.end = r, f, now, now+dur
	r.curTx = tx
	m.Stats.Transmissions++

	// A node cannot decode while transmitting: poison any in-progress
	// receptions at the transmitter.
	for _, p := range r.active {
		p.corrupted = true
	}

	// A crashed radio transmits into its dead front-end: the MAC sees the
	// usual airtime and OnTxDone (so its state machine keeps advancing into
	// its timeout/retry paths), but no energy reaches any receiver.
	if !r.down {
		srcPos := m.PositionOf(r)
		c2 := m.cfg.CommRange * m.cfg.CommRange
		m.forEachInRange(r, srcPos, m.cfg.interferenceRange(), func(o *Radio, d2 float64) {
			p := m.newRxPath()
			p.tx, p.r, p.inComm = tx, o, d2 <= c2
			p.prop = m.propDelay(math.Sqrt(d2))
			tx.dests = append(tx.dests, p)
			m.eng.ScheduleCall(now+p.prop, p, tagRxStart)
			p.endEv = m.eng.ScheduleCall(tx.end+p.prop, p, tagRxEnd)
		})
		if m.cross != nil && r.border {
			tx.crossed = true
			m.cross.txStart(r, tx)
		}
	}
	tx.pending = len(tx.dests)
	tx.doneEv = m.eng.ScheduleCall(tx.end, tx, 0)
	if m.Tracer != nil {
		m.Tracer.Add(trace.Event{At: now, Node: r.id, Kind: trace.TxStart, What: f.Kind().String(),
			Detail: fmt.Sprintf("%dB %v", f.WireSize(), dur)})
	}
	return dur
}

// AbortTx aborts r's in-flight transmission immediately (RMAC step 3 /
// Unreliable Send step 2: stop when an RBT is detected). The truncated
// signal still occupies the channel until now+prop at each receiver and is
// never decodable there. No OnTxDone callback is made; the caller knows it
// aborted.
//
// Aborting a transmission that a crash (SetDown) already truncated is
// legal — a crashed radio's baseband still senses tones, so its MAC can
// reach an abort transition during the dead transmission's airtime. In
// that case only the sender-side bookkeeping runs: the signal was already
// cut at every receiver at crash time, and tx.dests may by now reference
// rx paths that completed and returned to the pool (possibly reused by a
// later transmission), so they must not be touched again.
func (m *Medium) AbortTx(r *Radio) {
	tx := r.curTx
	if tx == nil {
		panic(fmt.Sprintf("phy: node %d AbortTx with no transmission", r.id))
	}
	if m.Obs != nil {
		m.Obs.ObsTxAbort(r, tx.f)
	}
	now := m.eng.Now()
	truncated := tx.aborted // SetDown already cut the signal at every receiver
	tx.aborted = true
	tx.finished = true
	tx.end = now
	tx.doneEv.Cancel()
	m.Stats.Aborts++
	if !truncated {
		for _, p := range tx.dests {
			if p.tx != tx || !p.endEv.Pending() {
				continue // rxEnd already ran; path is freed or reused
			}
			p.corrupted = true
			p.endEv.Cancel()
			p.endEv = m.eng.ScheduleCall(now+p.prop, p, tagRxEnd)
		}
		if tx.crossed && m.cross != nil {
			m.cross.txAbort(r, tx, now)
		}
	}
	r.curTx = nil
	if m.Tracer != nil {
		m.Tracer.Add(trace.Event{At: now, Node: r.id, Kind: trace.TxAbort, What: tx.f.Kind().String()})
	}
	if tx.pending == 0 {
		m.freeTx(tx)
	}
}

func (m *Medium) txDone(tx *transmission) {
	if m.Obs != nil {
		m.Obs.ObsTxEnd(tx.src, tx.f)
	}
	tx.src.curTx = nil
	tx.finished = true
	h := tx.src.handler
	f := tx.f
	// The handler runs before the transmission (and its frame) is
	// recycled: OnTxDone may read the frame, but must not keep it.
	last := tx.pending == 0
	if h != nil {
		frame.AssertLive(f)
		h.OnTxDone(f)
	}
	if last {
		m.freeTx(tx)
	}
}

func (m *Medium) rxStart(p *rxPath) {
	r := p.r
	p.started = true
	// Overlap: if any other signal is active at this receiver, every
	// involved signal is corrupted.
	if len(r.active) > 0 {
		p.corrupted = true
		for _, q := range r.active {
			q.corrupted = true
		}
	}
	// A transmitting node cannot decode; neither can a crashed one.
	if r.curTx != nil || r.down {
		p.corrupted = true
	}
	r.active = append(r.active, p)
	if len(r.active) == 1 && r.handler != nil {
		r.handler.OnCarrierChange(true)
	}
}

// channelError rolls channel noise for an otherwise-decodable frame
// (control and data frames alike): first the independent per-bit BER,
// then the pluggable Impairment model. Both draw from the engine's
// deterministic RNG, and draws happen only here — in rxEnd event order —
// which is what keeps same-seed runs bit-identical; see the package
// comment for the full determinism contract.
func (m *Medium) channelError(r *Radio, tx *transmission) bool {
	if m.cfg.BER > 0 &&
		m.eng.Rand().Float64() < m.cfg.FrameErrorProb(tx.f.WireSize()) {
		return true
	}
	if m.imp != nil && m.imp.FrameError(r, tx.src, tx.f.WireSize()) {
		return true
	}
	return false
}

func (m *Medium) rxEnd(p *rxPath) {
	r := p.r
	if p.started {
		for i, q := range r.active {
			if q == p {
				r.active = append(r.active[:i], r.active[i+1:]...)
				break
			}
		}
	}
	tx := p.tx
	ok := p.started && p.inComm && !p.corrupted && !tx.aborted
	if ok {
		ok = !m.channelError(r, tx)
	}
	if ok {
		m.Stats.FramesDecoded++
	} else {
		m.Stats.FramesCorrupt++
	}
	if m.Tracer != nil {
		k := trace.RxOK
		if !ok {
			k = trace.RxCorrupt
		}
		m.Tracer.Add(trace.Event{At: m.eng.Now(), Node: r.id, Kind: k, What: tx.f.Kind().String(),
			Detail: "from node " + fmt.Sprint(tx.src.id)})
	}
	if m.Obs != nil {
		m.Obs.ObsRxEnd(r, tx.src, tx.f, ok, p.started)
	}
	started := p.started
	rxStart := tx.start + p.prop
	f := tx.f
	// The path is recycled before the handler runs (so a handler that
	// transmits immediately reuses the warm object), but the transmission
	// — which owns the frame — is recycled only after the handler returns:
	// the receiver may read the frame during OnFrameReceived and must
	// copy out anything it wants to keep.
	m.freeRx(p)
	tx.pending--
	last := tx.finished && tx.pending == 0
	if r.handler != nil {
		frame.AssertLive(f)
		r.handler.OnFrameReceived(f, ok, rxStart)
	}
	if last {
		m.freeTx(tx)
	}
	if len(r.active) == 0 && started && r.handler != nil {
		r.handler.OnCarrierChange(false)
	}
}

// SetTone turns node r's tone t on or off. Tone transitions propagate with
// the same per-neighbor delay as data; the emitting node does not sense its
// own tone. Turning a tone on twice (or off while off) panics — protocol
// state machines must track their own tone state.
func (m *Medium) SetTone(r *Radio, t Tone, on bool) {
	if m.Obs != nil {
		// Before the double-transition panic, mirroring StartTx.
		m.Obs.ObsToneSet(r, t, on)
	}
	if r.ownTone[t] == on {
		panic(fmt.Sprintf("phy: node %d tone %v already %v", r.id, t, on))
	}
	r.ownTone[t] = on
	now := m.eng.Now()
	if m.Tracer != nil {
		k := trace.ToneOn
		if !on {
			k = trace.ToneOff
		}
		m.Tracer.Add(trace.Event{At: now, Node: r.id, Kind: k, What: t.String()})
	}
	if on {
		m.Stats.ToneActivation++
		if r.down {
			// A crashed radio raises no tone energy: ownTone tracks the
			// MAC's intent, but no session forms and nothing propagates.
			// The matching off-transition is a no-op (nil session).
			return
		}
		srcPos := m.PositionOf(r)
		sess := m.newSess()
		m.forEachInRange(r, srcPos, m.cfg.interferenceRange(), func(o *Radio, d2 float64) {
			sess.dests = append(sess.dests, o)
			sess.props = append(sess.props, m.propDelay(math.Sqrt(d2)))
		})
		r.toneSess[t] = sess
		for i, o := range sess.dests {
			m.eng.ScheduleCall(now+sess.props[i], o, toneOnTag(t))
		}
		if m.cross != nil && r.border {
			r.crossTone[t] = true
			m.cross.toneSet(r, t, true, now)
		}
		return
	}
	if r.crossTone[t] && m.cross != nil {
		r.crossTone[t] = false
		m.cross.toneSet(r, t, false, now)
	}
	sess := r.toneSess[t]
	r.toneSess[t] = nil
	if sess == nil {
		return
	}
	for i, o := range sess.dests {
		m.eng.ScheduleCall(now+sess.props[i], o, toneOffTag(t))
	}
	m.freeSess(sess)
}

// SetDown crashes (down=true) or recovers (down=false) node r's radio —
// the PHY half of fault-injected node churn. A crashed radio neither
// transmits nor receives:
//
//   - Its in-flight transmission, if any, truncates immediately at every
//     receiver (never decodable there), exactly like AbortTx — but unlike
//     AbortTx the MAC still gets its OnTxDone at the original end time,
//     so the sender state machine runs into its normal timeout/retry
//     paths instead of wedging in a TX state.
//   - Every signal currently arriving at r is poisoned, and new arrivals
//     while down are undecodable; foreign MACs see the missing feedback
//     and exercise their retransmission and drop paths.
//   - Tones r is emitting drop at every listener (the sessions end), and
//     no tone energy is emitted while down. ownTone keeps tracking the
//     MAC's intent so the protocol's own off-transition stays legal.
//
// Sensing (carrier and tone levels) deliberately keeps operating while
// down — the model is a dead RF power stage with a live baseband — which
// preserves the medium's +1/-1 accounting across crashes. Recovery is
// instantaneous for carrier and decoding: the next StartTx radiates and
// new arrivals decode normally. Tones are NOT re-raised: a tone dropped
// at crash time stays down at every listener until the MAC's next
// off→on transition for it, even though ownTone still records the MAC's
// intent — the dead power stage lost the tone, and the recovered
// hardware does not replay MAC state it never saw. SetDown is idempotent
// in either direction.
func (m *Medium) SetDown(r *Radio, down bool) {
	if r.down == down {
		return
	}
	if m.Obs != nil {
		m.Obs.ObsDown(r, down)
	}
	r.down = down
	if m.Tracer != nil {
		k := trace.NodeDown
		if !down {
			k = trace.NodeUp
		}
		m.Tracer.Add(trace.Event{At: m.eng.Now(), Node: r.id, Kind: k})
	}
	if !down {
		return
	}
	m.Stats.Crashes++
	// Truncate the in-flight transmission at every receiver. Only a live
	// (not yet aborted) transmission is cut: if tx.aborted is already set,
	// a previous crash in this same airtime truncated it — its rxEnds are
	// running at crash+prop and some dests may already be freed or reused,
	// so touching them again would corrupt the pools. For a live tx every
	// rxEnd sits at tx.end+prop > now and is still pending; the guards in
	// the loop are belt-and-braces against that invariant shifting.
	if tx := r.curTx; tx != nil && !tx.aborted {
		now := m.eng.Now()
		tx.aborted = true
		for _, p := range tx.dests {
			if p.tx != tx || !p.endEv.Pending() {
				continue
			}
			p.corrupted = true
			p.endEv.Cancel()
			p.endEv = m.eng.ScheduleCall(now+p.prop, p, tagRxEnd)
		}
		if tx.crossed && m.cross != nil {
			m.cross.txAbort(r, tx, now)
		}
	}
	// Poison signals mid-reception at the crashed node.
	for _, p := range r.active {
		p.corrupted = true
	}
	// Drop emitted tones at every listener.
	now := m.eng.Now()
	for t := Tone(0); t < NumTones; t++ {
		if r.crossTone[t] && m.cross != nil {
			r.crossTone[t] = false
			m.cross.toneSet(r, t, false, now)
		}
		sess := r.toneSess[t]
		if sess == nil {
			continue
		}
		r.toneSess[t] = nil
		for i, o := range sess.dests {
			m.eng.ScheduleCall(now+sess.props[i], o, toneOffTag(t))
		}
		m.freeSess(sess)
	}
}

// toneSession records the receivers and delays captured when a tone was
// raised, so the matching off-transition reaches exactly the same set.
type toneSession struct {
	dests []*Radio
	props []sim.Time
}

// Tone transition tags for Radio's sim.Caller dispatch: bit 0 is the
// on/off direction, the remaining bits are the tone index.
func toneOnTag(t Tone) int32  { return int32(t)<<1 | 1 }
func toneOffTag(t Tone) int32 { return int32(t) << 1 }
