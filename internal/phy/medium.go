package phy

import (
	"fmt"
	"math"

	"rmac/internal/frame"
	"rmac/internal/geom"
	"rmac/internal/mobility"
	"rmac/internal/sim"
	"rmac/internal/trace"
)

// Medium is the shared wireless channel: it owns every Radio in a
// simulation, computes propagation delays from node positions, fans
// transmissions and tone transitions out to in-range radios, and tracks
// overlap so each receiver knows whether a frame arrived collision-free.
type Medium struct {
	eng    *sim.Engine
	cfg    Config
	radios []*Radio

	// Stats counts channel-level totals across the run.
	Stats MediumStats

	// Tracer, when non-nil, records frame and tone events (see package
	// trace). Nil costs nothing.
	Tracer *trace.Trace

	grid *spatialGrid
}

// MediumStats aggregates channel-level counters.
type MediumStats struct {
	Transmissions  uint64 // StartTx calls
	Aborts         uint64 // AbortTx calls
	FramesDecoded  uint64 // deliveries with ok=true
	FramesCorrupt  uint64 // deliveries with ok=false (collision/abort/BER)
	ToneActivation uint64 // SetTone(on) calls
}

// NewMedium creates an empty medium on the given engine.
func NewMedium(eng *sim.Engine, cfg Config) *Medium {
	if cfg.CommRange <= 0 || cfg.BitRate <= 0 || cfg.PropSpeed <= 0 {
		panic("phy: invalid Config")
	}
	return &Medium{eng: eng, cfg: cfg}
}

// Config returns the medium's radio configuration.
func (m *Medium) Config() Config { return m.cfg }

// Engine returns the simulation engine the medium is bound to.
func (m *Medium) Engine() *sim.Engine { return m.eng }

// AddRadio creates and registers the radio for node id, moving according to
// mob. The returned radio must be given a Handler before traffic starts.
func (m *Medium) AddRadio(id int, mob mobility.Model) *Radio {
	r := &Radio{
		m:   m,
		eng: m.eng,
		id:  id,
		mob: mob,
	}
	for t := range r.toneLog {
		r.toneLog[t].onSince = -1
	}
	m.radios = append(m.radios, r)
	return r
}

// Radios returns all registered radios.
func (m *Medium) Radios() []*Radio { return m.radios }

// PositionOf returns node r's current position.
func (m *Medium) PositionOf(r *Radio) geom.Point {
	return r.mob.PositionAt(m.eng.Now())
}

// propDelay converts a distance to a propagation delay; a floor of 1 ns
// keeps event ordering strict for co-located nodes.
func (m *Medium) propDelay(dist float64) sim.Time {
	d := sim.Time(dist / m.cfg.PropSpeed * float64(sim.Second))
	if d < 1 {
		d = 1
	}
	return d
}

// NeighborsOf returns the IDs of nodes currently within communication range
// of r, in ascending ID order. Used by routing/topology analysis, not by
// the PHY fast path.
func (m *Medium) NeighborsOf(r *Radio) []int {
	p := m.PositionOf(r)
	var out []int
	m.forEachInRange(r, p, m.cfg.CommRange, func(o *Radio, _ float64) {
		out = append(out, o.id)
	})
	sortIDs(out)
	return out
}

func sortIDs(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// transmission is one frame in flight on the data channel.
type transmission struct {
	src     *Radio
	f       frame.Frame
	start   sim.Time
	end     sim.Time // updated if aborted
	aborted bool
	doneEv  *sim.Event
	dests   []*rxPath
}

// rxPath tracks the signal from one transmission at one receiver.
type rxPath struct {
	tx        *transmission
	r         *Radio
	prop      sim.Time
	inComm    bool // within decode range at TX start
	corrupted bool // overlap, receiver-transmitting, or abort
	started   bool // rxStart already processed
	endEv     *sim.Event
}

// StartTx begins transmitting f from r. It returns the scheduled airtime.
// The radio's handler receives OnTxDone when the transmission completes
// naturally; an aborted transmission (AbortTx) does not call OnTxDone.
func (m *Medium) StartTx(r *Radio, f frame.Frame) sim.Time {
	if r.curTx != nil {
		panic(fmt.Sprintf("phy: node %d StartTx while already transmitting", r.id))
	}
	now := m.eng.Now()
	dur := m.cfg.TxDuration(f.WireSize())
	tx := &transmission{src: r, f: f, start: now, end: now + dur}
	r.curTx = tx
	m.Stats.Transmissions++

	// A node cannot decode while transmitting: poison any in-progress
	// receptions at the transmitter.
	for _, p := range r.active {
		p.corrupted = true
	}

	srcPos := m.PositionOf(r)
	c2 := m.cfg.CommRange * m.cfg.CommRange
	m.forEachInRange(r, srcPos, m.cfg.interferenceRange(), func(o *Radio, d2 float64) {
		p := &rxPath{tx: tx, r: o, inComm: d2 <= c2}
		p.prop = m.propDelay(math.Sqrt(d2))
		tx.dests = append(tx.dests, p)
		m.eng.Schedule(now+p.prop, func() { m.rxStart(p) })
		p.endEv = m.eng.Schedule(tx.end+p.prop, func() { m.rxEnd(p) })
	})
	tx.doneEv = m.eng.Schedule(tx.end, func() { m.txDone(tx) })
	m.Tracer.Add(trace.Event{At: now, Node: r.id, Kind: trace.TxStart, What: f.Kind().String(),
		Detail: fmt.Sprintf("%dB %v", f.WireSize(), dur)})
	return dur
}

// AbortTx aborts r's in-flight transmission immediately (RMAC step 3 /
// Unreliable Send step 2: stop when an RBT is detected). The truncated
// signal still occupies the channel until now+prop at each receiver and is
// never decodable there. No OnTxDone callback is made; the caller knows it
// aborted.
func (m *Medium) AbortTx(r *Radio) {
	tx := r.curTx
	if tx == nil {
		panic(fmt.Sprintf("phy: node %d AbortTx with no transmission", r.id))
	}
	now := m.eng.Now()
	tx.aborted = true
	tx.end = now
	tx.doneEv.Cancel()
	m.Stats.Aborts++
	for _, p := range tx.dests {
		p.corrupted = true
		p.endEv.Cancel()
		pp := p
		p.endEv = m.eng.Schedule(now+p.prop, func() { m.rxEnd(pp) })
	}
	r.curTx = nil
	m.Tracer.Add(trace.Event{At: now, Node: r.id, Kind: trace.TxAbort, What: tx.f.Kind().String()})
}

func (m *Medium) txDone(tx *transmission) {
	tx.src.curTx = nil
	if tx.src.handler != nil {
		tx.src.handler.OnTxDone(tx.f)
	}
}

func (m *Medium) rxStart(p *rxPath) {
	r := p.r
	p.started = true
	// Overlap: if any other signal is active at this receiver, every
	// involved signal is corrupted.
	if len(r.active) > 0 {
		p.corrupted = true
		for _, q := range r.active {
			q.corrupted = true
		}
	}
	// A transmitting node cannot decode.
	if r.curTx != nil {
		p.corrupted = true
	}
	r.active = append(r.active, p)
	if len(r.active) == 1 && r.handler != nil {
		r.handler.OnCarrierChange(true)
	}
}

func (m *Medium) rxEnd(p *rxPath) {
	r := p.r
	if p.started {
		for i, q := range r.active {
			if q == p {
				r.active = append(r.active[:i], r.active[i+1:]...)
				break
			}
		}
	}
	ok := p.started && p.inComm && !p.corrupted && !p.tx.aborted
	if ok && m.cfg.BER > 0 {
		if m.eng.Rand().Float64() < m.cfg.FrameErrorProb(p.tx.f.WireSize()) {
			ok = false
		}
	}
	if ok {
		m.Stats.FramesDecoded++
	} else {
		m.Stats.FramesCorrupt++
	}
	if m.Tracer != nil {
		k := trace.RxOK
		if !ok {
			k = trace.RxCorrupt
		}
		m.Tracer.Add(trace.Event{At: m.eng.Now(), Node: r.id, Kind: k, What: p.tx.f.Kind().String(),
			Detail: "from node " + fmt.Sprint(p.tx.src.id)})
	}
	if r.handler != nil {
		r.handler.OnFrameReceived(p.tx.f, ok, p.tx.start+p.prop)
	}
	if len(r.active) == 0 && p.started && r.handler != nil {
		r.handler.OnCarrierChange(false)
	}
}

// SetTone turns node r's tone t on or off. Tone transitions propagate with
// the same per-neighbor delay as data; the emitting node does not sense its
// own tone. Turning a tone on twice (or off while off) panics — protocol
// state machines must track their own tone state.
func (m *Medium) SetTone(r *Radio, t Tone, on bool) {
	if r.ownTone[t] == on {
		panic(fmt.Sprintf("phy: node %d tone %v already %v", r.id, t, on))
	}
	r.ownTone[t] = on
	now := m.eng.Now()
	if m.Tracer != nil {
		k := trace.ToneOn
		if !on {
			k = trace.ToneOff
		}
		m.Tracer.Add(trace.Event{At: now, Node: r.id, Kind: k, What: t.String()})
	}
	if on {
		m.Stats.ToneActivation++
		srcPos := m.PositionOf(r)
		sess := &toneSession{}
		m.forEachInRange(r, srcPos, m.cfg.interferenceRange(), func(o *Radio, d2 float64) {
			sess.dests = append(sess.dests, o)
			sess.props = append(sess.props, m.propDelay(math.Sqrt(d2)))
		})
		r.toneSess[t] = sess
		for i, o := range sess.dests {
			o := o
			m.eng.Schedule(now+sess.props[i], func() { o.toneDelta(t, +1) })
		}
		return
	}
	sess := r.toneSess[t]
	r.toneSess[t] = nil
	if sess == nil {
		return
	}
	for i, o := range sess.dests {
		o := o
		m.eng.Schedule(now+sess.props[i], func() { o.toneDelta(t, -1) })
	}
}

type toneSession struct {
	dests []*Radio
	props []sim.Time
}
