package phy

import (
	"math/rand"
	"testing"

	"rmac/internal/frame"
	"rmac/internal/geom"
	"rmac/internal/mobility"
	"rmac/internal/sim"
)

// benchMedium builds a medium with n stationary radios clustered inside a
// 50×50 m square, so every node is within communication range (75 m) of
// every other: a broadcast from node 0 fans out to n-1 receivers. n ≥ 96
// additionally exercises the spatial grid path.
func benchMedium(b *testing.B, n int) (*sim.Engine, *Medium) {
	b.Helper()
	eng := sim.NewEngine(1)
	m := NewMedium(eng, DefaultConfig())
	side := 50.0
	cols := 1
	for cols*cols < n {
		cols++
	}
	for i := 0; i < n; i++ {
		x := 100 + side*float64(i%cols)/float64(cols)
		y := 100 + side*float64(i/cols)/float64(cols)
		m.AddRadio(i, mobility.Stationary{P: geom.Point{X: x, Y: y}})
	}
	return eng, m
}

func benchFrame() frame.Frame {
	return &frame.UData{
		Transmitter: frame.AddrFromID(0),
		Receiver:    frame.Broadcast,
		Payload:     make([]byte, 500),
	}
}

// benchMediumFanout measures one full broadcast cycle: StartTx fan-out to
// n-1 receivers, then draining every rxStart/rxEnd/txDone event. This is
// the simulator's dominant cost per data frame (§4 regenerates millions of
// these). The pooled kernel schedules zero heap closures here.
func benchMediumFanout(b *testing.B, n int) {
	eng, m := benchMedium(b, n)
	src := m.Radios()[0]
	f := benchFrame()
	// Warm the pools (rx paths, event arena, grid buckets) to steady state
	// before measuring: the first cycles grow them, and those one-time
	// bytes would otherwise show up amortized as a spurious nonzero B/op.
	for i := 0; i < 8; i++ {
		m.StartTx(src, f)
		eng.RunAll()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.StartTx(src, f)
		eng.RunAll()
	}
}

func BenchmarkMediumFanout30(b *testing.B)  { benchMediumFanout(b, 30) }
func BenchmarkMediumFanout200(b *testing.B) { benchMediumFanout(b, 200) }

// benchMediumMobile mirrors benchMedium with random-waypoint radios pacing
// a small field, so every in-range query walks a trajectory. The gate for
// the PositionOf memo: one trajectory walk per (radio, instant) instead of
// one per in-range pair.
func benchMediumMobile(b *testing.B, n int) (*sim.Engine, *Medium) {
	b.Helper()
	eng := sim.NewEngine(1)
	m := NewMedium(eng, DefaultConfig())
	field := geom.Rect{W: 60, H: 60}
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(int64(i) + 1))
		m.AddRadio(i, mobility.NewRandomWaypoint(field, 0, 4, sim.Second, field.RandomPoint(rng), rng))
	}
	return eng, m
}

// BenchmarkMediumFanoutMobile measures the broadcast cycle of
// benchMediumFanout under mobility: every radio's position comes from a
// waypoint trajectory instead of a cached point.
func BenchmarkMediumFanoutMobile200(b *testing.B) {
	eng, m := benchMediumMobile(b, 200)
	src := m.Radios()[0]
	f := benchFrame()
	for i := 0; i < 8; i++ {
		m.StartTx(src, f)
		eng.RunAll()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.StartTx(src, f)
		eng.RunAll()
	}
}

// BenchmarkToneStorm measures busy-tone fan-out: each iteration one node
// raises and drops RBT, propagating both transitions to every in-range
// radio — the per-slot cost of RMAC's tone signalling.
func BenchmarkToneStorm(b *testing.B) {
	const n = 100
	eng, m := benchMedium(b, n)
	radios := m.Radios()
	// Warm every radio's tone log and the session pool: the log ring grows
	// on first use per node, and that one-time growth must not be billed to
	// the measured steady state (see benchMediumFanout).
	for i := 0; i < 2*n; i++ {
		r := radios[i%n]
		m.SetTone(r, ToneRBT, true)
		eng.RunAll()
		m.SetTone(r, ToneRBT, false)
		eng.RunAll()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := radios[i%n]
		m.SetTone(r, ToneRBT, true)
		eng.RunAll()
		m.SetTone(r, ToneRBT, false)
		eng.RunAll()
	}
}
