package phy

import "rmac/internal/frame"

// Observer receives a callback for every observable medium transition, in
// event order, before the medium mutates its own state for that
// transition. It exists for the protocol-invariant auditor
// (internal/audit): unlike Tracer — which records what happened — an
// Observer is called early enough to see the pre-transition radio state,
// so it can judge whether the transition was legal (a TxStart while
// r.Transmitting(), a tone raised twice, a decode while down).
//
// The hooks run on the simulation goroutine and must not schedule events,
// transmit, or mutate radio state; they are a read-only tap. A nil
// Medium.Obs costs one predictable branch per hook site, preserving the
// allocation-free hot path.
type Observer interface {
	// ObsTxStart fires when r starts transmitting f, before the medium
	// checks or installs the transmission (r.Transmitting() still reflects
	// any previous, conflicting transmission).
	ObsTxStart(r *Radio, f frame.Frame)
	// ObsTxEnd fires when r's transmission of f completes naturally.
	ObsTxEnd(r *Radio, f frame.Frame)
	// ObsTxAbort fires when r aborts its in-flight transmission of f.
	ObsTxAbort(r *Radio, f frame.Frame)
	// ObsRxEnd fires when a signal from src finishes arriving at r; ok is
	// the decode verdict and sensed reports whether the receiver ever
	// registered the signal's energy (false for fragments a crash
	// truncated before their first bit arrived). It fires before the
	// receiver's OnFrameReceived handler runs.
	ObsRxEnd(r, src *Radio, f frame.Frame, ok, sensed bool)
	// ObsToneSet fires on every tone transition r requests, before the
	// medium validates it (r.OwnTone(t) still holds the previous level).
	ObsToneSet(r *Radio, t Tone, on bool)
	// ObsDown fires on every effective crash/recovery transition of r.
	ObsDown(r *Radio, down bool)
}
