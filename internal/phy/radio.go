package phy

import (
	"rmac/internal/frame"
	"rmac/internal/geom"
	"rmac/internal/mobility"
	"rmac/internal/sim"
)

// Handler is the interface a MAC layer implements to receive PHY
// indications. All callbacks run on the simulation goroutine.
type Handler interface {
	// OnFrameReceived delivers the end of a frame reception. ok is true
	// iff the frame was received collision-free, within communication
	// range, not aborted mid-air, and survived channel noise. rxStart is
	// when the first bit arrived at this node.
	OnFrameReceived(f frame.Frame, ok bool, rxStart sim.Time)
	// OnCarrierChange reports data-channel energy transitions at this
	// node (foreign signals only; the node's own transmission is
	// reflected by DataChannelBusy instead).
	OnCarrierChange(busy bool)
	// OnToneChange reports sensed level transitions of a busy-tone
	// channel at this node (the node's own tone is excluded).
	OnToneChange(t Tone, sensed bool)
	// OnTxDone reports natural completion of this node's transmission.
	// Aborted transmissions do not produce OnTxDone.
	OnTxDone(f frame.Frame)
}

// toneInterval is one closed period during which a tone was sensed.
type toneInterval struct {
	from, to sim.Time
}

// toneState tracks sensed level and a short history for windowed queries.
type toneState struct {
	count   int      // number of in-range emitters currently sensed
	onSince sim.Time // -1 when not sensed
	log     []toneInterval
}

// maxToneLog bounds the per-tone interval history. RMAC needs at most one
// MRTS/DATA/ABT cycle of history (≤ 21 windows); 128 is generous.
const maxToneLog = 128

// Radio is one node's PHY entity: transmitter, receiver, tone emitter and
// tone sensor.
type Radio struct {
	m   *Medium
	eng *sim.Engine
	id  int
	mob mobility.Model

	// static radios cache their fixed position in pos, sparing the
	// mobility-model call on every in-range query.
	static bool
	pos    geom.Point

	// Mobile radios memoize their last position query: one PHY fan-out
	// asks for every receiver's position at the same instant, and a
	// trajectory walk per query would re-scan the waypoint legs N times
	// per transmission. memoTime is -1 until the first query (time 0 is a
	// valid query instant).
	memoTime sim.Time
	memoPos  geom.Point

	// down marks a crashed radio (fault injection): it emits no signal or
	// tone energy and decodes nothing, but keeps sensing — see
	// Medium.SetDown for the exact crash semantics.
	down bool

	handler Handler

	curTx    *transmission
	active   []*rxPath // signals currently arriving at this node
	ownTone  [NumTones]bool
	toneSess [NumTones]*toneSession

	toneLog [NumTones]toneState

	// Sharded-run state (see cross.go). border marks a radio within one
	// interference range of a foreign shard's radio; crossTone records, per
	// tone, whether the current on-transition was mirrored to foreign
	// shards (and therefore needs a mirrored off). Both stay zero in
	// unsharded runs.
	border    bool
	crossTone [NumTones]bool
}

// ID returns the node ID this radio belongs to.
func (r *Radio) ID() int { return r.id }

// SetHandler installs the MAC-layer callback sink.
func (r *Radio) SetHandler(h Handler) { r.handler = h }

// Mobility returns the node's mobility model.
func (r *Radio) Mobility() mobility.Model { return r.mob }

// Frames returns the simulation-wide frame pool; see Medium.Frames.
func (r *Radio) Frames() *frame.Pool { return r.m.Frames() }

// Transmitting reports whether the node is currently transmitting on the
// data channel.
func (r *Radio) Transmitting() bool { return r.curTx != nil }

// Down reports whether the radio is crashed (see Medium.SetDown).
func (r *Radio) Down() bool { return r.down }

// SetDown crashes or recovers this radio; see Medium.SetDown.
func (r *Radio) SetDown(down bool) { r.m.SetDown(r, down) }

// DataChannelBusy reports whether the data channel is busy at this node:
// any foreign signal arriving, or the node itself transmitting.
func (r *Radio) DataChannelBusy() bool {
	return len(r.active) > 0 || r.curTx != nil
}

// CarrierSensed reports foreign energy only (the receive path).
func (r *Radio) CarrierSensed() bool { return len(r.active) > 0 }

// ToneSensed reports whether tone t from some other node is currently
// present at this node.
func (r *Radio) ToneSensed(t Tone) bool { return r.toneLog[t].count > 0 }

// OwnTone reports whether this node is currently emitting tone t.
func (r *Radio) OwnTone(t Tone) bool { return r.ownTone[t] }

// StartTx transmits f on the data channel; see Medium.StartTx.
func (r *Radio) StartTx(f frame.Frame) sim.Time { return r.m.StartTx(r, f) }

// AbortTx aborts the in-flight transmission; see Medium.AbortTx.
func (r *Radio) AbortTx() { r.m.AbortTx(r) }

// SetTone turns this node's tone t on or off; see Medium.SetTone.
func (r *Radio) SetTone(t Tone, on bool) { r.m.SetTone(r, t, on) }

// Call implements sim.Caller: a propagated tone transition from a remote
// node, encoded as a tag (see toneOnTag/toneOffTag). Scheduled by
// Medium.SetTone; not meant to be called directly.
func (r *Radio) Call(tag int32) {
	t := Tone(tag >> 1)
	if tag&1 == 1 {
		r.toneDelta(t, +1)
	} else {
		r.toneDelta(t, -1)
	}
}

// toneDelta applies a propagated +1/-1 tone transition from a remote node.
func (r *Radio) toneDelta(t Tone, d int) {
	s := &r.toneLog[t]
	was := s.count > 0
	s.count += d
	if s.count < 0 {
		panic("phy: tone count negative")
	}
	now := r.eng.Now()
	is := s.count > 0
	switch {
	case !was && is:
		s.onSince = now
		if r.handler != nil {
			r.handler.OnToneChange(t, true)
		}
	case was && !is:
		if s.log == nil {
			// One-time full-capacity grab: the log halves in place once it
			// reaches maxToneLog (below), so with room for the transient
			// maxToneLog+1th entry this is the only allocation it ever
			// makes — append-doubling churn would otherwise dominate a
			// tone-heavy run's allocation profile.
			s.log = make([]toneInterval, 0, maxToneLog+1)
		}
		s.log = append(s.log, toneInterval{s.onSince, now})
		if len(s.log) > maxToneLog {
			// Shift the kept half to the front of the backing array. A
			// tail reslice would keep appending into the array's dwindling
			// remainder and reallocate on every halving.
			n := copy(s.log, s.log[len(s.log)-maxToneLog/2:])
			s.log = s.log[:n]
		}
		s.onSince = -1
		if r.handler != nil {
			r.handler.OnToneChange(t, false)
		}
	}
}

// ToneOverlap returns the total time tone t was sensed at this node within
// the window [from, to]. to must not be in the future. The MAC uses this
// with λ to decide whether a busy tone was "detected" in a timer window
// (e.g. one ABT slot), which is what disambiguates an ABT spilling into
// the next window by ≤2τ from a genuine detection (§3.3.2).
func (r *Radio) ToneOverlap(t Tone, from, to sim.Time) sim.Time {
	if now := r.eng.Now(); to > now {
		// The future part of the window has not been sensed yet.
		to = now
	}
	s := &r.toneLog[t]
	var total sim.Time
	for _, iv := range s.log {
		total += overlap(iv.from, iv.to, from, to)
	}
	if s.onSince >= 0 {
		total += overlap(s.onSince, r.eng.Now(), from, to)
	}
	return total
}

// PruneToneLog discards tone history ending before t, bounding memory over
// long runs. Senders call this when starting a new exchange.
func (r *Radio) PruneToneLog(before sim.Time) {
	for ti := range r.toneLog {
		s := &r.toneLog[ti]
		kept := s.log[:0]
		for _, iv := range s.log {
			if iv.to >= before {
				kept = append(kept, iv)
			}
		}
		s.log = kept
	}
}

func overlap(a1, a2, b1, b2 sim.Time) sim.Time {
	lo, hi := max64(a1, b1), min64(a2, b2)
	if hi > lo {
		return hi - lo
	}
	return 0
}

func max64(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

func min64(a, b sim.Time) sim.Time {
	if a < b {
		return a
	}
	return b
}
