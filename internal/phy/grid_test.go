package phy

import (
	"math/rand"
	"sort"
	"testing"

	"rmac/internal/frame"
	"rmac/internal/geom"
	"rmac/internal/mobility"
	"rmac/internal/sim"
)

// buildBig creates a network larger than gridThreshold so the grid engages.
func buildBig(t *testing.T, n int, seed int64, mobile bool) (*sim.Engine, *Medium, []*recRadio) {
	t.Helper()
	eng := sim.NewEngine(seed)
	cfg := DefaultConfig()
	m := NewMedium(eng, cfg)
	field := geom.Rect{W: 1000, H: 800}
	rng := rand.New(rand.NewSource(seed))
	rads := make([]*recRadio, n)
	for i := 0; i < n; i++ {
		start := field.RandomPoint(rng)
		var mob mobility.Model
		if mobile {
			mob = mobility.NewRandomWaypoint(field, 0, 8, sim.Second, start, rand.New(rand.NewSource(seed*100+int64(i))))
		} else {
			mob = mobility.Stationary{P: start}
		}
		r := m.AddRadio(i, mob)
		rr := &recRadio{Radio: r, rec: &recorder{}, eng: eng}
		r.SetHandler(rr)
		rads[i] = rr
	}
	return eng, m, rads
}

// linearNeighbors is the reference O(N) in-range query.
func linearNeighbors(m *Medium, src *Radio, dist float64) []int {
	pos := m.PositionOf(src)
	d2max := dist * dist
	var out []int
	for _, o := range m.Radios() {
		if o == src {
			continue
		}
		if m.PositionOf(o).Dist2(pos) <= d2max {
			out = append(out, o.ID())
		}
	}
	sort.Ints(out)
	return out
}

func gridNeighbors(m *Medium, src *Radio, dist float64) []int {
	var out []int
	m.forEachInRange(src, m.PositionOf(src), dist, func(o *Radio, _ float64) {
		out = append(out, o.ID())
	})
	sort.Ints(out)
	return out
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestGridMatchesLinearScanStatic(t *testing.T) {
	_, m, rads := buildBig(t, 200, 1, false)
	if !m.gridEnabled() {
		t.Fatal("grid should engage at 200 nodes")
	}
	for _, r := range rads[:50] {
		want := linearNeighbors(m, r.Radio, m.Config().interferenceRange())
		got := gridNeighbors(m, r.Radio, m.Config().interferenceRange())
		if !sameInts(got, want) {
			t.Fatalf("node %d: grid %v vs linear %v", r.ID(), got, want)
		}
	}
}

func TestGridTracksMobility(t *testing.T) {
	eng, m, rads := buildBig(t, 150, 2, true)
	// Advance time in chunks beyond the refresh interval and re-verify.
	for step := 0; step < 5; step++ {
		eng.Schedule(eng.Now()+sim.Second, func() {})
		eng.RunAll()
		for _, r := range rads[:20] {
			want := linearNeighbors(m, r.Radio, m.Config().interferenceRange())
			got := gridNeighbors(m, r.Radio, m.Config().interferenceRange())
			if !sameInts(got, want) {
				t.Fatalf("t=%v node %d: grid %v vs linear %v", eng.Now(), r.ID(), got, want)
			}
		}
	}
}

func TestGridInvalidate(t *testing.T) {
	_, m, rads := buildBig(t, 120, 3, false)
	_ = gridNeighbors(m, rads[0].Radio, 75) // force build
	m.InvalidateGrid()
	want := linearNeighbors(m, rads[1].Radio, 75)
	got := gridNeighbors(m, rads[1].Radio, 75)
	if !sameInts(got, want) {
		t.Fatal("grid wrong after invalidate")
	}
}

func TestSmallNetworkSkipsGrid(t *testing.T) {
	_, m, _ := build(t, DefaultConfig(), []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}})
	if m.gridEnabled() {
		t.Fatal("grid engaged below threshold")
	}
}

// TestGridDeliveryLargeNetwork exercises the full TX path with the grid:
// a broadcast in a dense 150-node cluster reaches exactly the in-range set.
func TestGridDeliveryLargeNetwork(t *testing.T) {
	eng := sim.NewEngine(4)
	cfg := DefaultConfig()
	m := NewMedium(eng, cfg)
	rads := make([]*recRadio, 0, 150)
	rng := rand.New(rand.NewSource(9))
	field := geom.Rect{W: 600, H: 400}
	for i := 0; i < 150; i++ {
		r := m.AddRadio(i, mobility.Stationary{P: field.RandomPoint(rng)})
		rr := &recRadio{Radio: r, rec: &recorder{}, eng: eng}
		r.SetHandler(rr)
		rads = append(rads, rr)
	}
	want := linearNeighbors(m, rads[0].Radio, cfg.CommRange)
	rads[0].StartTx(&frame.UData{Transmitter: frame.AddrFromID(0), Receiver: frame.Broadcast, Payload: make([]byte, 50)})
	eng.RunAll()
	var got []int
	for _, r := range rads[1:] {
		for _, f := range r.rec.frames {
			if f.ok {
				got = append(got, r.ID())
			}
		}
	}
	sort.Ints(got)
	if !sameInts(got, want) {
		t.Fatalf("delivered to %v, want %v", got, want)
	}
}

func BenchmarkLargeNetworkTx(b *testing.B) {
	for _, n := range []int{75, 300, 1000} {
		b.Run(map[int]string{75: "75nodes", 300: "300nodes", 1000: "1000nodes"}[n], func(b *testing.B) {
			eng := sim.NewEngine(5)
			cfg := DefaultConfig()
			m := NewMedium(eng, cfg)
			rng := rand.New(rand.NewSource(6))
			field := geom.Rect{W: 2000, H: 1600}
			for i := 0; i < n; i++ {
				r := m.AddRadio(i, mobility.Stationary{P: field.RandomPoint(rng)})
				r.SetHandler(nil2{})
				_ = r
			}
			rads := m.Radios()
			f := &frame.UData{Transmitter: frame.AddrFromID(0), Receiver: frame.Broadcast, Payload: make([]byte, 100)}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := rads[i%n]
				if src.Transmitting() {
					eng.RunAll()
				}
				src.StartTx(f)
				eng.RunAll()
			}
		})
	}
}

type nil2 struct{}

func (nil2) OnFrameReceived(frame.Frame, bool, sim.Time) {}
func (nil2) OnCarrierChange(bool)                        {}
func (nil2) OnToneChange(Tone, bool)                     {}
func (nil2) OnTxDone(frame.Frame)                        {}
