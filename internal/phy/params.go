// Package phy models the wireless physical layer the paper's evaluation
// relies on: a shared data channel with propagation delay, per-receiver
// collision tracking and carrier sense, 802.11b PLCP framing overhead, and
// the two narrow-band busy-tone channels RMAC introduces (RBT and ABT).
//
// The radio model is a disc model: a transmission is decodable inside
// CommRange and contributes interference/carrier energy inside
// CommRange·InterferenceFactor. Busy tones are boolean fields sensed as
// present/non-present, exactly as §3.1 describes; they never collide and
// carry no bits.
//
// # Determinism contract
//
// Every random decision on the delivery path draws from the owning
// engine's seeded RNG (Engine.Rand), never from a package-level or
// time-seeded source, so two runs with the same seed and configuration
// are bit-identical. Channel errors — the independent per-bit BER and
// the pluggable Impairment model, in that order — are rolled for control
// frames (MRTS/RTS/CTS/ACK/RAK) and data frames alike, exactly once per
// frame delivery, and only for frames that are otherwise decodable
// (collision-free, in communication range, not aborted, receiver up).
// Because those rolls happen at reception-end events, whose order the
// engine's (time, sequence) queue fixes, enabling or disabling fault
// injection never perturbs the RNG stream consumed by backoff draws or
// mobility, and a run with all faults disabled consumes exactly the
// RNG stream of a build without the fault layer.
package phy

import (
	"math"

	"rmac/internal/sim"
)

// Physical-layer timing constants from IEEE 802.11b as used in §2 and §3.3
// of the paper.
const (
	// PLCPPreamble is the 72-bit physical layer preamble at 1 Mb/s.
	PLCPPreamble = 72 * sim.Microsecond
	// PLCPHeader is the 48-bit physical layer header at 2 Mb/s.
	PLCPHeader = 24 * sim.Microsecond
	// PLCPOverhead is the per-frame physical overhead (96 µs, §2).
	PLCPOverhead = PLCPPreamble + PLCPHeader

	// SlotTime is one backoff slot (20 µs, §3.3.1).
	SlotTime = 20 * sim.Microsecond
	// Tau is the maximum one-way propagation delay τ (1 µs for ≤300 m).
	Tau = 1 * sim.Microsecond
	// Lambda is the busy-tone detection duration λ (15 µs CCA).
	Lambda = 15 * sim.Microsecond
	// ABTDuration is l_abt = 2τ+λ, the length of one acknowledgment busy
	// tone and of each of the sender's ABT-sensing windows.
	ABTDuration = 2*Tau + Lambda
	// ToneWaitTimeout is |T_wf_rbt| = |T_wf_rdata| = |T_wf_abt| = 2τ+λ.
	ToneWaitTimeout = 2*Tau + Lambda

	// SIFS and DIFS are the 802.11b interframe spaces used by the
	// baseline protocols (BMMM, BMW).
	SIFS = 10 * sim.Microsecond
	DIFS = 50 * sim.Microsecond
)

// Backoff contention window bounds (802.11b).
const (
	CWMin = 31
	CWMax = 1023
)

// Tone identifies one of the narrow-band busy-tone channels.
type Tone int

const (
	// ToneRBT is the Receiver Busy Tone protecting data reception.
	ToneRBT Tone = iota
	// ToneABT is the Acknowledgment Busy Tone.
	ToneABT
	// NumTones is the number of tone channels.
	NumTones
)

func (t Tone) String() string {
	switch t {
	case ToneRBT:
		return "RBT"
	case ToneABT:
		return "ABT"
	}
	return "Tone(?)"
}

// Config carries the radio parameters of a simulation. The zero value is
// not usable; start from DefaultConfig.
type Config struct {
	// CommRange is the radio propagation range in metres (75 m in §4.1.1).
	CommRange float64
	// InterferenceFactor scales CommRange to the interference/carrier-sense
	// range. 1.0 reproduces the paper's GloMoSim setup at uniform power.
	InterferenceFactor float64
	// BitRate is the data channel rate in bits/s (2 Mb/s in §4.1.1).
	BitRate int64
	// PropSpeed is the signal propagation speed in m/s.
	PropSpeed float64
	// BER is the independent bit error probability on the data channel.
	// 0 disables channel noise (collisions and mobility remain).
	BER float64
}

// DefaultConfig returns the paper's §4.1.1 radio parameters.
func DefaultConfig() Config {
	return Config{
		CommRange:          75,
		InterferenceFactor: 1.0,
		BitRate:            2_000_000,
		PropSpeed:          3e8,
		BER:                0,
	}
}

// TxDuration returns the airtime of a frame of the given wire size in
// bytes, including PLCP preamble and header: 96 µs + 4 µs/byte at 2 Mb/s.
func (c Config) TxDuration(wireBytes int) sim.Time {
	bits := int64(wireBytes) * 8
	return PLCPOverhead + sim.Time(bits*int64(sim.Second)/c.BitRate)
}

// FrameErrorProb returns the probability that a frame of the given size is
// corrupted by channel noise: 1-(1-BER)^bits.
func (c Config) FrameErrorProb(wireBytes int) float64 {
	if c.BER <= 0 {
		return 0
	}
	return 1 - math.Pow(1-c.BER, float64(wireBytes*8))
}

// interferenceRange returns the carrier-sense/interference radius.
func (c Config) interferenceRange() float64 {
	f := c.InterferenceFactor
	if f < 1 {
		f = 1
	}
	return c.CommRange * f
}
