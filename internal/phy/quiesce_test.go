package phy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rmac/internal/frame"
	"rmac/internal/geom"
	"rmac/internal/mobility"
	"rmac/internal/sim"
)

// TestPropertyChannelQuiescence: after arbitrary interleaved traffic and
// tone activity completes, every radio's carrier count is zero, no
// receptions are pending, and tone levels are fully released — the
// conservation law of the medium's +1/-1 accounting.
func TestPropertyChannelQuiescence(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		eng := sim.NewEngine(seed)
		cfg := DefaultConfig()
		m := NewMedium(eng, cfg)
		rng := rand.New(rand.NewSource(seed))
		field := geom.Rect{W: 300, H: 200}
		const n = 8
		rads := make([]*Radio, n)
		for i := 0; i < n; i++ {
			rads[i] = m.AddRadio(i, mobility.Stationary{P: field.RandomPoint(rng)})
			rads[i].SetHandler(nil2{})
		}
		ops := int(opsRaw)%40 + 5
		for k := 0; k < ops; k++ {
			r := rads[rng.Intn(n)]
			at := sim.Time(rng.Intn(50_000)) * sim.Microsecond
			switch rng.Intn(3) {
			case 0: // frame, possibly aborted mid-air
				abort := rng.Intn(4) == 0
				eng.Schedule(at, func() {
					if r.Transmitting() {
						return
					}
					dur := r.StartTx(&frame.UData{
						Transmitter: frame.AddrFromID(r.ID()),
						Receiver:    frame.Broadcast,
						Payload:     make([]byte, rng.Intn(400)+10),
					})
					if abort {
						cut := sim.Time(rng.Int63n(int64(dur)/2 + 1))
						eng.After(cut, func() {
							if r.Transmitting() {
								r.AbortTx()
							}
						})
					}
				})
			case 1: // RBT pulse
				tone := Tone(rng.Intn(int(NumTones)))
				dur := sim.Time(rng.Intn(500)+5) * sim.Microsecond
				eng.Schedule(at, func() {
					if r.OwnTone(tone) {
						return
					}
					r.SetTone(tone, true)
					eng.After(dur, func() { r.SetTone(tone, false) })
				})
			case 2: // nothing (gap)
			}
		}
		eng.RunAll()
		for _, r := range rads {
			if r.Transmitting() || r.CarrierSensed() || len(r.active) != 0 {
				return false
			}
			for tone := Tone(0); tone < NumTones; tone++ {
				if r.ToneSensed(tone) || r.OwnTone(tone) {
					return false
				}
				if r.toneLog[tone].count != 0 || r.toneLog[tone].onSince != -1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPruneToneLogBoundsMemory: pruning removes old intervals without
// breaking subsequent overlap queries.
func TestPruneToneLog(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewMedium(eng, DefaultConfig())
	a := m.AddRadio(0, mobility.Stationary{P: geom.Point{X: 0, Y: 0}})
	b := m.AddRadio(1, mobility.Stationary{P: geom.Point{X: 30, Y: 0}})
	a.SetHandler(nil2{})
	b.SetHandler(nil2{})
	for i := 0; i < 10; i++ {
		at := sim.Time(i) * 100 * sim.Microsecond
		eng.Schedule(at, func() { a.SetTone(ToneABT, true) })
		eng.Schedule(at+20*sim.Microsecond, func() { a.SetTone(ToneABT, false) })
	}
	eng.RunAll()
	if got := b.ToneOverlap(ToneABT, 0, eng.Now()); got != 200*sim.Microsecond {
		t.Fatalf("pre-prune overlap = %v", got)
	}
	b.PruneToneLog(500 * sim.Microsecond)
	// Intervals entirely before 500 µs are gone; later ones remain.
	if got := b.ToneOverlap(ToneABT, 500*sim.Microsecond, eng.Now()); got != 100*sim.Microsecond {
		t.Fatalf("post-prune overlap = %v", got)
	}
	if got := b.ToneOverlap(ToneABT, 0, 400*sim.Microsecond); got != 0 {
		t.Fatalf("pruned intervals still visible: %v", got)
	}
}
