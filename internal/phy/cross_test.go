package phy

import (
	"math/rand"
	"testing"

	"rmac/internal/geom"
	"rmac/internal/mobility"
	"rmac/internal/sim"
)

// scriptStep schedules an arbitrary closure as a simulation event.
type scriptStep struct{ fn func() }

func (s scriptStep) Call(int32) { s.fn() }

// boundaryScript drives the satellite-3 scenario against radio a (the
// border transmitter), c (a second transmitter for the collision phase)
// and the clock of their engine. b, the receiver across the boundary,
// only listens.
//
//	 0 ms: a sends a frame          → b decodes it
//	 5 ms: a and c overlap          → b sees a collision (corrupt frames)
//	10 ms: a sends, aborts mid-air  → b sees the truncation
//	15 ms: a raises, then drops, a busy tone → b senses both edges
func boundaryScript(eng *sim.Engine, a, c *Radio) {
	at := func(t sim.Time, fn func()) { eng.ScheduleCall(t, scriptStep{fn}, 0) }
	ms := sim.Millisecond
	at(0, func() { a.StartTx(testFrame(a.ID(), 100)) })
	at(5*ms, func() { a.StartTx(testFrame(a.ID(), 100)) })
	at(5*ms+10*sim.Microsecond, func() { c.StartTx(testFrame(c.ID(), 60)) })
	at(10*ms, func() { a.StartTx(testFrame(a.ID(), 100)) })
	at(10*ms+50*sim.Microsecond, func() { a.AbortTx() })
	at(15*ms, func() { a.SetTone(Tone(0), true) })
	at(15*ms+200*sim.Microsecond, func() { a.SetTone(Tone(0), false) })
}

// TestShardBoundaryPhysics is the golden cross-check of DESIGN.md §14: a
// transmitter within one disc radius of a shard boundary must produce
// identical delivery, collision, truncation and tone outcomes at a
// receiver on the far side, whether the two sit on one medium or on two
// shard mediums joined by the cross-shard conduit. The script is
// RNG-free (BER 0, fixed action times), so the runs are comparable
// event for event.
func TestShardBoundaryPhysics(t *testing.T) {
	cfg := DefaultConfig()
	pos := []geom.Point{{X: 60, Y: 0}, {X: 90, Y: 0}, {X: 130, Y: 0}} // a, c | b across x=100
	horizon := 30 * sim.Millisecond

	// Reference: all three radios on one medium.
	eng, _, rads := build(t, cfg, pos)
	boundaryScript(eng, rads[0].Radio, rads[1].Radio)
	eng.Run(horizon)
	want := rads[2].rec

	// Sharded: {a, c} on shard 0, {b} on shard 1, conduit in between. The
	// script only moves shard 0, so the shards can be stepped sequentially
	// instead of via the full frontier protocol.
	eng0 := sim.NewEngine(1)
	m0 := NewMedium(eng0, cfg)
	eng1 := sim.NewEngine(2)
	m1 := NewMedium(eng1, cfg)
	var srads [3]*recRadio
	for i, m := range []*Medium{m0, m0, m1} {
		r := m.AddRadio(i, mobility.Stationary{P: pos[i]})
		srads[i] = &recRadio{Radio: r, rec: &recorder{}, eng: m.Engine()}
		r.SetHandler(srads[i])
	}
	net := ConnectShards([]*Medium{m0, m1}, pos, []int{0, 0, 1}, horizon)
	boundaryScript(eng0, srads[0].Radio, srads[1].Radio)
	eng0.Run(horizon)
	net.Drain(1)
	eng1.Run(horizon)
	got := srads[2].rec

	// All three sit within one disc radius of a foreign radio.
	if !srads[0].border || !srads[1].border || !srads[2].border {
		t.Fatal("boundary radios not marked as border")
	}
	if len(got.frames) != len(want.frames) {
		t.Fatalf("frame count: sharded %d, unsharded %d", len(got.frames), len(want.frames))
	}
	for i := range want.frames {
		w, g := want.frames[i], got.frames[i]
		if g.ok != w.ok || g.rxStart != w.rxStart || g.at != w.at {
			t.Errorf("frame %d: sharded (ok=%v %v..%v), unsharded (ok=%v %v..%v)",
				i, g.ok, g.rxStart, g.at, w.ok, w.rxStart, w.at)
		}
	}
	// Phase 1 delivers clean, phase 2 collides, phase 3 truncates: at least
	// one ok and one corrupt frame must be present, or the script is dead.
	var oks, bad int
	for _, f := range want.frames {
		if f.ok {
			oks++
		} else {
			bad++
		}
	}
	if oks == 0 || bad == 0 {
		t.Fatalf("degenerate reference run: %d ok, %d corrupt", oks, bad)
	}
	if len(got.tones) != 2 || len(want.tones) != 2 {
		t.Fatalf("tone edges: sharded %d, unsharded %d", len(got.tones), len(want.tones))
	}
	for i := range want.tones {
		if got.tones[i] != want.tones[i] {
			t.Errorf("tone edge %d: sharded %+v, unsharded %+v", i, got.tones[i], want.tones[i])
		}
	}
	if len(got.carrier) != len(want.carrier) {
		t.Fatalf("carrier transitions: sharded %d, unsharded %d", len(got.carrier), len(want.carrier))
	}
	for i := range want.carrier {
		if got.carrier[i] != want.carrier[i] {
			t.Errorf("carrier %d: sharded %v, unsharded %v", i, got.carrier[i], want.carrier[i])
		}
	}
	// Cross-check the conduit accounting while we're here: every message
	// published by shard 0 was drained by shard 1, none flowed back.
	s0, s1 := net.Stats(0), net.Stats(1)
	if s0.MsgsOut == 0 || s0.MsgsOut != s1.MsgsIn || s1.MsgsOut != 0 {
		t.Errorf("conduit stats: out0=%d in1=%d out1=%d", s0.MsgsOut, s1.MsgsIn, s1.MsgsOut)
	}
}

// TestShardBoundaryAbortBeforeDelivery covers the abort race the conduit
// has to replay: the truncation message chases a transmission whose head
// is already mirrored on the receiving shard, and must shorten the mirror
// before its scheduled end fires.
func TestShardBoundaryAbortBeforeDelivery(t *testing.T) {
	cfg := DefaultConfig()
	pos := []geom.Point{{X: 95, Y: 0}, {X: 105, Y: 0}}
	horizon := 10 * sim.Millisecond

	run := func(sharded bool) *recorder {
		if !sharded {
			eng, _, rads := build(t, cfg, pos)
			eng.ScheduleCall(0, scriptStep{func() { rads[0].StartTx(testFrame(0, 400)) }}, 0)
			eng.ScheduleCall(sim.Millisecond, scriptStep{func() { rads[0].AbortTx() }}, 0)
			eng.Run(horizon)
			return rads[1].rec
		}
		eng0 := sim.NewEngine(1)
		m0 := NewMedium(eng0, cfg)
		eng1 := sim.NewEngine(2)
		m1 := NewMedium(eng1, cfg)
		a := m0.AddRadio(0, mobility.Stationary{P: pos[0]})
		ra := &recRadio{Radio: a, rec: &recorder{}, eng: eng0}
		a.SetHandler(ra)
		b := m1.AddRadio(1, mobility.Stationary{P: pos[1]})
		rb := &recRadio{Radio: b, rec: &recorder{}, eng: eng1}
		b.SetHandler(rb)
		net := ConnectShards([]*Medium{m0, m1}, pos, []int{0, 1}, horizon)
		eng0.ScheduleCall(0, scriptStep{func() { a.StartTx(testFrame(0, 400)) }}, 0)
		eng0.ScheduleCall(sim.Millisecond, scriptStep{func() { a.AbortTx() }}, 0)
		eng0.Run(horizon)
		net.Drain(1)
		eng1.Run(horizon)
		return rb.rec
	}

	want, got := run(false), run(true)
	if len(want.frames) != len(got.frames) {
		t.Fatalf("frame count: sharded %d, unsharded %d", len(got.frames), len(want.frames))
	}
	for i := range want.frames {
		w, g := want.frames[i], got.frames[i]
		if g.ok != w.ok || g.rxStart != w.rxStart || g.at != w.at {
			t.Errorf("frame %d: sharded (ok=%v %v..%v), unsharded (ok=%v %v..%v)",
				i, g.ok, g.rxStart, g.at, w.ok, w.rxStart, w.at)
		}
	}
	for _, f := range want.frames {
		if f.ok {
			t.Fatalf("aborted transmission decoded cleanly: %+v", f)
		}
	}
}

// mobileTestModel builds the waypoint model for test node id: the same
// (id-keyed) seed on both sides of a comparison yields the same trajectory,
// since a waypoint path is a pure function of its RNG stream. 50 m/s with
// no pause makes nodes cover metres within a millisecond-scale script, so
// live-position physics actually diverges from any t=0 snapshot.
func mobileTestModel(field geom.Rect, id int, start geom.Point) *mobility.RandomWaypoint {
	rng := rand.New(rand.NewSource(int64(id) + 1))
	return mobility.NewRandomWaypoint(field, 0, 50, 0, start, rng)
}

// mobileBoundaryCase runs the boundaryScript with moving radios on one
// reference medium and on `shards` conduit-joined shard mediums, and
// compares every pure receiver's frame, tone and carrier records. Shards
// are stepped sequentially in index order: only shard 0 transmits, so
// traffic flows strictly downstream.
func mobileBoundaryCase(t *testing.T, field geom.Rect, pos []geom.Point, shardOf []int, shards int, listeners []int) {
	t.Helper()
	cfg := DefaultConfig()
	horizon := 30 * sim.Millisecond

	// Reference: everything on one medium, same trajectories.
	eng := sim.NewEngine(1)
	m := NewMedium(eng, cfg)
	rads := make([]*recRadio, len(pos))
	for i, p := range pos {
		r := m.AddRadio(i, mobileTestModel(field, i, p))
		rads[i] = &recRadio{Radio: r, rec: &recorder{}, eng: eng}
		r.SetHandler(rads[i])
	}
	boundaryScript(eng, rads[0].Radio, rads[1].Radio)
	eng.Run(horizon)

	// Sharded: same ids, same trajectories, split across shard mediums.
	engs := make([]*sim.Engine, shards)
	mediums := make([]*Medium, shards)
	for s := range mediums {
		engs[s] = sim.NewEngine(int64(s) + 1)
		mediums[s] = NewMedium(engs[s], cfg)
	}
	srads := make([]*recRadio, len(pos))
	for i, p := range pos {
		r := mediums[shardOf[i]].AddRadio(i, mobileTestModel(field, i, p))
		srads[i] = &recRadio{Radio: r, rec: &recorder{}, eng: engs[shardOf[i]]}
		r.SetHandler(srads[i])
	}
	envelope := 2 * 50 * horizon.Seconds() // 2 × MaxSpeed × epoch; one epoch spans the script
	net := ConnectShardsMobile(mediums, pos, shardOf, horizon, envelope)
	boundaryScript(engs[0], srads[0].Radio, srads[1].Radio)
	for s := 0; s < shards; s++ {
		if s > 0 {
			net.Drain(s)
		}
		engs[s].Run(horizon)
	}

	for _, li := range listeners {
		want, got := rads[li].rec, srads[li].rec
		if len(got.frames) != len(want.frames) {
			t.Fatalf("listener %d frame count: sharded %d, unsharded %d", li, len(got.frames), len(want.frames))
		}
		for i := range want.frames {
			w, g := want.frames[i], got.frames[i]
			if g.ok != w.ok || g.rxStart != w.rxStart || g.at != w.at {
				t.Errorf("listener %d frame %d: sharded (ok=%v %v..%v), unsharded (ok=%v %v..%v)",
					li, i, g.ok, g.rxStart, g.at, w.ok, w.rxStart, w.at)
			}
		}
		if len(got.tones) != len(want.tones) {
			t.Fatalf("listener %d tone edges: sharded %d, unsharded %d", li, len(got.tones), len(want.tones))
		}
		for i := range want.tones {
			if got.tones[i] != want.tones[i] {
				t.Errorf("listener %d tone edge %d: sharded %+v, unsharded %+v", li, i, got.tones[i], want.tones[i])
			}
		}
		if len(got.carrier) != len(want.carrier) {
			t.Fatalf("listener %d carrier transitions: sharded %d, unsharded %d", li, len(got.carrier), len(want.carrier))
		}
		for i := range want.carrier {
			if got.carrier[i] != want.carrier[i] {
				t.Errorf("listener %d carrier %d: sharded %v, unsharded %v", li, i, got.carrier[i], want.carrier[i])
			}
		}
	}
	// The script must actually exercise the channel: a clean delivery, a
	// corrupt frame and both tone edges at the first listener.
	ref := rads[listeners[0]].rec
	var oks, bad int
	for _, f := range ref.frames {
		if f.ok {
			oks++
		} else {
			bad++
		}
	}
	if oks == 0 || bad == 0 || len(ref.tones) == 0 {
		t.Fatalf("degenerate reference run: %d ok, %d corrupt, %d tone edges", oks, bad, len(ref.tones))
	}
}

// TestShardBoundaryMobilePhysics is the mobile golden cross-check of
// DESIGN.md §15: with every radio on a random-waypoint trajectory, a
// scripted transmit/collide/abort/tone sequence must produce bit-identical
// outcomes at across-boundary receivers whether the radios share one medium
// or live on conduit-joined shard mediums with envelope catalogs. Receiver
// sets, propagation delays and decode flags are all computed at fire time
// from live positions, so any drift between the mobile conduit physics and
// Medium.StartTx shows up as a mismatch here.
func TestShardBoundaryMobilePhysics(t *testing.T) {
	field := geom.Rect{W: 200, H: 100}
	pos := []geom.Point{{X: 60, Y: 50}, {X: 90, Y: 50}, {X: 130, Y: 50}} // a, c | b
	mobileBoundaryCase(t, field, pos, []int{0, 0, 1}, 2, []int{2})
}

// TestShardBoundaryMobileFourShards spreads the listeners over three
// foreign shards — the farthest one right at the interference-range edge,
// where metre-scale movement flips in-range decisions, so the live
// per-candidate filter must agree with the reference fan-out exactly.
func TestShardBoundaryMobileFourShards(t *testing.T) {
	field := geom.Rect{W: 200, H: 100}
	pos := []geom.Point{
		{X: 45, Y: 50}, {X: 40, Y: 50}, // a, c on shard 0
		{X: 95, Y: 50}, {X: 130, Y: 50}, {X: 155, Y: 50}, // listeners on shards 1–3
	}
	mobileBoundaryCase(t, field, pos, []int{0, 0, 1, 2, 3}, 4, []int{2, 3, 4})
}
