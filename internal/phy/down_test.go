package phy

import (
	"math/rand"
	"testing"

	"rmac/internal/frame"
	"rmac/internal/geom"
	"rmac/internal/mobility"
	"rmac/internal/sim"
)

// downHarness is a two-node medium with a recording handler on node 1.
type recHandler struct {
	rxOK, rxBad int
	txDone      int
	carrier     []bool
	tone        []bool
}

func (h *recHandler) OnFrameReceived(f frame.Frame, ok bool, _ sim.Time) {
	if ok {
		h.rxOK++
	} else {
		h.rxBad++
	}
}
func (h *recHandler) OnCarrierChange(busy bool)    { h.carrier = append(h.carrier, busy) }
func (h *recHandler) OnToneChange(t Tone, on bool) { h.tone = append(h.tone, on) }
func (h *recHandler) OnTxDone(f frame.Frame)       { h.txDone++ }

func downPair(t *testing.T) (*sim.Engine, *Medium, *Radio, *Radio, *recHandler, *recHandler) {
	t.Helper()
	eng := sim.NewEngine(1)
	m := NewMedium(eng, DefaultConfig())
	a := m.AddRadio(0, mobility.Stationary{P: geom.Point{X: 0, Y: 0}})
	b := m.AddRadio(1, mobility.Stationary{P: geom.Point{X: 30, Y: 0}})
	ha, hb := &recHandler{}, &recHandler{}
	a.SetHandler(ha)
	b.SetHandler(hb)
	return eng, m, a, b, ha, hb
}

// TestDownTxReachesNoOne: a transmission started while down consumes the
// usual airtime and reports OnTxDone, but delivers nothing anywhere.
func TestDownTxReachesNoOne(t *testing.T) {
	eng, m, a, _, ha, hb := downPair(t)
	m.SetDown(a, true)
	a.StartTx(testFrame(0, 100))
	eng.RunAll()
	if ha.txDone != 1 {
		t.Fatalf("sender OnTxDone = %d, want 1 (MAC must keep advancing)", ha.txDone)
	}
	if hb.rxOK+hb.rxBad != 0 || len(hb.carrier) != 0 {
		t.Fatalf("crashed sender leaked energy: rx=%d/%d carrier=%v", hb.rxOK, hb.rxBad, hb.carrier)
	}
}

// TestCrashMidTransmissionTruncates: crashing mid-frame truncates the
// signal at the receiver (corrupt, early end) while the sender still gets
// OnTxDone at the natural end.
func TestCrashMidTransmissionTruncates(t *testing.T) {
	eng, m, a, _, ha, hb := downPair(t)
	var dur sim.Time
	eng.Schedule(0, func() { dur = a.StartTx(testFrame(0, 100)) })
	eng.Schedule(dur/2+1, func() { m.SetDown(a, true) })
	eng.RunAll()
	if hb.rxBad != 1 || hb.rxOK != 0 {
		t.Fatalf("receiver saw rxOK=%d rxBad=%d, want one corrupt truncation", hb.rxOK, hb.rxBad)
	}
	if ha.txDone != 1 {
		t.Fatalf("sender OnTxDone = %d, want 1", ha.txDone)
	}
	if m.Stats.Crashes != 1 {
		t.Fatalf("Crashes = %d, want 1", m.Stats.Crashes)
	}
}

// TestDownReceiverDecodesNothing: frames arriving at a crashed radio are
// corrupt; after recovery, decoding resumes.
func TestDownReceiverDecodesNothing(t *testing.T) {
	eng, m, a, b, _, hb := downPair(t)
	m.SetDown(b, true)
	eng.Schedule(0, func() { a.StartTx(testFrame(0, 100)) })
	eng.Run(10 * sim.Millisecond)
	if hb.rxOK != 0 || hb.rxBad != 1 {
		t.Fatalf("down receiver decoded: rxOK=%d rxBad=%d", hb.rxOK, hb.rxBad)
	}
	m.SetDown(b, false)
	eng.Schedule(eng.Now()+sim.Millisecond, func() { a.StartTx(testFrame(0, 100)) })
	eng.RunAll()
	if hb.rxOK != 1 {
		t.Fatalf("recovered receiver rxOK = %d, want 1", hb.rxOK)
	}
}

// TestCrashDropsEmittedTone: a crashed emitter's tone falls at listeners,
// and the MAC's later off-transition stays a legal no-op; tones "raised"
// while down emit nothing.
func TestCrashDropsEmittedTone(t *testing.T) {
	eng, m, a, b, _, hb := downPair(t)
	eng.Schedule(0, func() { a.SetTone(ToneRBT, true) })
	eng.Schedule(sim.Millisecond, func() { m.SetDown(a, true) })
	eng.RunAll()
	if b.ToneSensed(ToneRBT) {
		t.Fatal("listener still senses crashed emitter's RBT")
	}
	if len(hb.tone) != 2 || hb.tone[0] != true || hb.tone[1] != false {
		t.Fatalf("listener tone transitions = %v, want [on off]", hb.tone)
	}
	// The MAC's own bookkeeping off-transition must not panic.
	a.SetTone(ToneRBT, false)
	// Raising a tone while down emits nothing.
	a.SetTone(ToneABT, true)
	eng.RunAll()
	if b.ToneSensed(ToneABT) {
		t.Fatal("crashed radio emitted ABT")
	}
	if !a.OwnTone(ToneABT) {
		t.Fatal("ownTone must keep tracking MAC intent while down")
	}
	a.SetTone(ToneABT, false)
}

// TestAbortAfterCrashTruncation: a crashed radio's baseband still senses
// tones, so its MAC may AbortTx during the dead transmission's remaining
// airtime — after the truncated rx paths have completed, returned to the
// pool, and been reused by another node's transmission. The abort must
// only do sender-side bookkeeping and must not touch the recycled paths.
func TestAbortAfterCrashTruncation(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewMedium(eng, DefaultConfig())
	a := m.AddRadio(0, mobility.Stationary{P: geom.Point{X: 0, Y: 0}})
	b := m.AddRadio(1, mobility.Stationary{P: geom.Point{X: 30, Y: 0}})
	c := m.AddRadio(2, mobility.Stationary{P: geom.Point{X: 60, Y: 0}})
	ha, hb, hc := &recHandler{}, &recHandler{}, &recHandler{}
	a.SetHandler(ha)
	b.SetHandler(hb)
	c.SetHandler(hc)

	// The 100-byte frame's airtime is well over 96 µs and prop is ≤ 200 ns,
	// so: crash mid-frame at 10 µs; by 11 µs both truncated rx paths have
	// run and are back in the pool, and c's transmission reuses them; the
	// abort at 12 µs lands inside the dead transmission's remaining airtime.
	eng.Schedule(0, func() { a.StartTx(testFrame(0, 100)) })
	eng.Schedule(10*sim.Microsecond, func() { m.SetDown(a, true) })
	eng.Schedule(11*sim.Microsecond, func() { c.StartTx(testFrame(2, 100)) })
	eng.Schedule(12*sim.Microsecond, func() { a.AbortTx() })
	eng.RunAll()

	if hb.rxBad != 1 {
		t.Fatalf("b saw %d corrupt frames, want 1 (a's truncated tx)", hb.rxBad)
	}
	if hb.rxOK != 1 {
		t.Fatalf("b decoded %d frames, want 1 — c's tx on recycled rx paths was corrupted", hb.rxOK)
	}
	if ha.txDone != 0 {
		t.Fatalf("aborting sender got OnTxDone %d times, want 0", ha.txDone)
	}
	if m.Stats.Aborts != 1 {
		t.Fatalf("Aborts = %d, want 1", m.Stats.Aborts)
	}
}

// TestCrashRecoverCrashWithinAirtime: with downtime floored at one tick, a
// node can crash, recover, and crash again inside a single transmission's
// airtime. The second crash must not re-truncate the already-aborted
// transmission — its rx paths have completed and been pooled.
func TestCrashRecoverCrashWithinAirtime(t *testing.T) {
	eng, m, a, _, ha, hb := downPair(t)
	eng.Schedule(0, func() { a.StartTx(testFrame(0, 100)) })
	eng.Schedule(10*sim.Microsecond, func() { m.SetDown(a, true) })
	eng.Schedule(11*sim.Microsecond, func() { m.SetDown(a, false) })
	eng.Schedule(12*sim.Microsecond, func() { m.SetDown(a, true) })
	eng.RunAll()
	if hb.rxBad != 1 || hb.rxOK != 0 {
		t.Fatalf("receiver saw rxOK=%d rxBad=%d, want exactly one corrupt truncation", hb.rxOK, hb.rxBad)
	}
	if ha.txDone != 1 {
		t.Fatalf("sender OnTxDone = %d, want 1 (crash keeps the MAC advancing)", ha.txDone)
	}
	if m.Stats.Crashes != 2 {
		t.Fatalf("Crashes = %d, want 2", m.Stats.Crashes)
	}
}

// TestChurnPreservesQuiescence: random crash/recover cycles interleaved
// with traffic and tones leave the medium's accounting balanced.
func TestChurnPreservesQuiescence(t *testing.T) {
	eng := sim.NewEngine(99)
	m := NewMedium(eng, DefaultConfig())
	rng := rand.New(rand.NewSource(99))
	field := geom.Rect{W: 200, H: 150}
	const n = 6
	rads := make([]*Radio, n)
	for i := 0; i < n; i++ {
		rads[i] = m.AddRadio(i, mobility.Stationary{P: field.RandomPoint(rng)})
		rads[i].SetHandler(&recHandler{})
	}
	for k := 0; k < 300; k++ {
		r := rads[rng.Intn(n)]
		at := sim.Time(rng.Intn(100_000)) * sim.Microsecond
		switch rng.Intn(4) {
		case 0:
			eng.Schedule(at, func() {
				if !r.Transmitting() {
					r.StartTx(testFrame(r.ID(), 100))
				}
			})
		case 1:
			tone := Tone(rng.Intn(int(NumTones)))
			eng.Schedule(at, func() {
				if !r.OwnTone(tone) {
					r.SetTone(tone, true)
					eng.After(sim.Time(rng.Intn(300)+5)*sim.Microsecond, func() {
						if r.OwnTone(tone) {
							r.SetTone(tone, false)
						}
					})
				}
			})
		case 2:
			eng.Schedule(at, func() { m.SetDown(r, true) })
		case 3:
			eng.Schedule(at, func() { m.SetDown(r, false) })
		}
	}
	eng.RunAll()
	for _, r := range rads {
		m.SetDown(r, false)
		if r.Transmitting() || len(r.active) != 0 {
			t.Fatalf("node %d not quiescent after churn", r.ID())
		}
		for tone := Tone(0); tone < NumTones; tone++ {
			if r.toneLog[tone].count != 0 {
				t.Fatalf("node %d tone %v count %d after churn", r.ID(), tone, r.toneLog[tone].count)
			}
		}
	}
}

// TestRecoveryDoesNotReraiseTone: a tone dropped by a crash stays down at
// every listener across recovery — the revived power stage must not
// replay MAC intent it never saw — until the MAC's own next off→on
// transition re-raises it for real.
func TestRecoveryDoesNotReraiseTone(t *testing.T) {
	eng, m, a, b, _, hb := downPair(t)
	eng.Schedule(0, func() { a.SetTone(ToneRBT, true) })
	eng.Schedule(sim.Millisecond, func() { m.SetDown(a, true) })
	eng.Schedule(2*sim.Millisecond, func() { m.SetDown(a, false) })
	eng.RunAll()
	if b.ToneSensed(ToneRBT) {
		t.Fatal("recovery re-raised the crashed-away RBT at the listener")
	}
	if !a.OwnTone(ToneRBT) {
		t.Fatal("ownTone must keep tracking MAC intent across the crash")
	}
	if len(hb.tone) != 2 || hb.tone[0] != true || hb.tone[1] != false {
		t.Fatalf("listener tone transitions = %v, want [on off]", hb.tone)
	}
	// The MAC's own off→on cycle restores the tone at the listener.
	a.SetTone(ToneRBT, false)
	a.SetTone(ToneRBT, true)
	eng.RunAll()
	if !b.ToneSensed(ToneRBT) {
		t.Fatal("listener missed the genuinely re-raised RBT")
	}
	a.SetTone(ToneRBT, false)
	eng.RunAll()
}
