package phy

import (
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"time"

	"rmac/internal/frame"
	"rmac/internal/geom"
	"rmac/internal/sim"
)

// Cross-shard conduit — the PHY half of the sharded conservative parallel
// engine (see sim/parallel.go for the synchronization protocol and
// DESIGN.md §14 for the full derivation).
//
// A sharded run gives every spatial shard its own Medium on its own
// Engine/goroutine. Radios within one interference range of a shard
// boundary are marked border radios; for each of them the setup phase
// precomputes an immutable catalog per foreign shard: the in-range
// receivers over there, each with its exact propagation delay and
// decode-range flag. When a border radio transmits, aborts, or toggles a
// tone, the sender shard — in addition to its normal local fan-out —
// publishes a fixed-size message into a bounded SPSC ring per target
// shard. Messages carry a field-copied image of the frame (wireFrame), the
// event times, and a sender-minted sequence base in the engine's cross
// sequence space (sim.CrossSeq), which fixes the merge order at the
// receiver independent of wall-clock arrival.
//
// The receiver drains its rings between (and while waiting for) execution
// windows. Draining does NOT touch any simulation-visible pool: each
// message is copied into a conduit-owned holder (pendingCross) and a
// single holder event is scheduled at the message's earliest receiver
// event time under the sender's sequence base. All observable work — frame
// materialisation from the receiver's pool, mirror transmission setup,
// per-receiver rx scheduling — happens when the holder fires, which is a
// deterministic position in the receiver's event stream. This is what
// keeps pool hit/miss statistics (and therefore run fingerprints)
// bit-identical for a fixed (seed, shards) pair no matter how the OS
// schedules the shard goroutines.
//
// Mirror transmissions carry a ghost *Radio as their source: an
// unregistered, static radio with the foreign node's id and position. It
// is never part of the receiver medium's radio list, never transmits
// locally, and appears only as tx.src — every consumer of that field
// (trace, audit ObsRxEnd, fault's per-receiver error chains) is keyed by
// the receiving radio.

// crossKind enumerates conduit message types.
const (
	crossTx uint8 = iota
	crossAbort
	crossToneOn
	crossToneOff
)

// wireFrame is a field-copied image of a frame for ring transport: no
// pointers shared with the sender shard survive in it (slices are copied
// into the wireFrame's own reusable backing arrays).
type wireFrame struct {
	kind        frame.Kind
	flags       uint8
	transmitter frame.Addr
	receiver    frame.Addr
	seq32       uint32
	seq16       uint16
	duration    uint16
	expect      uint16
	receivers   []frame.Addr // MRTS only
	payload     []byte
}

// copyIn snapshots f. The concrete switch mirrors the eight frame kinds;
// slice contents are copied into w's capacity-reusing buffers.
func (w *wireFrame) copyIn(f frame.Frame) {
	w.receivers = w.receivers[:0]
	w.payload = w.payload[:0]
	w.flags, w.seq32, w.seq16, w.duration, w.expect = 0, 0, 0, 0, 0
	switch v := f.(type) {
	case *frame.MRTS:
		w.kind = frame.KindMRTS
		w.transmitter = v.Transmitter
		w.receivers = append(w.receivers, v.Receivers...)
	case *frame.RData:
		w.kind = frame.KindRData
		w.transmitter, w.receiver = v.Transmitter, v.Receiver
		w.seq32, w.flags = v.Seq, v.Flags
		w.payload = append(w.payload, v.Payload...)
	case *frame.UData:
		w.kind = frame.KindUData
		w.transmitter, w.receiver = v.Transmitter, v.Receiver
		w.seq32, w.flags = v.Seq, v.Flags
		w.payload = append(w.payload, v.Payload...)
	case *frame.RTS:
		w.kind = frame.KindRTS
		w.duration, w.receiver, w.transmitter = v.Duration, v.Receiver, v.Transmitter
	case *frame.CTS:
		w.kind = frame.KindCTS
		w.duration, w.receiver, w.transmitter = v.Duration, v.Receiver, v.Transmitter
		w.expect = v.Expect
	case *frame.ACK:
		w.kind = frame.KindACK
		w.duration, w.receiver, w.transmitter = v.Duration, v.Receiver, v.Transmitter
	case *frame.RAK:
		w.kind = frame.KindRAK
		w.duration, w.receiver, w.transmitter = v.Duration, v.Receiver, v.Transmitter
		w.seq16 = v.Seq
	case *frame.Data:
		w.kind = frame.KindData
		w.duration, w.receiver, w.transmitter = v.Duration, v.Receiver, v.Transmitter
		w.seq16 = v.Seq
		w.payload = append(w.payload, v.Payload...)
	default:
		panic(fmt.Sprintf("phy: cross conduit cannot transport %T", f))
	}
}

// copyFrom copies another wireFrame (ring slot → holder), again into w's
// own buffers.
func (w *wireFrame) copyFrom(o *wireFrame) {
	w.kind, w.flags = o.kind, o.flags
	w.transmitter, w.receiver = o.transmitter, o.receiver
	w.seq32, w.seq16, w.duration, w.expect = o.seq32, o.seq16, o.duration, o.expect
	w.receivers = append(w.receivers[:0], o.receivers...)
	w.payload = append(w.payload[:0], o.payload...)
}

// materialize acquires a frame of the snapshotted kind from the receiver
// shard's pool and fills it. Runs only at holder fire time.
func (w *wireFrame) materialize(p *frame.Pool) frame.Frame {
	switch w.kind {
	case frame.KindMRTS:
		f := p.MRTS()
		f.Transmitter = w.transmitter
		f.Receivers = append(f.Receivers, w.receivers...)
		return f
	case frame.KindRData:
		f := p.RData()
		f.Transmitter, f.Receiver = w.transmitter, w.receiver
		f.Seq, f.Flags = w.seq32, w.flags
		f.Payload = append(f.Payload, w.payload...)
		return f
	case frame.KindUData:
		f := p.UData()
		f.Transmitter, f.Receiver = w.transmitter, w.receiver
		f.Seq, f.Flags = w.seq32, w.flags
		f.Payload = append(f.Payload, w.payload...)
		return f
	case frame.KindRTS:
		f := p.RTS()
		f.Duration, f.Receiver, f.Transmitter = w.duration, w.receiver, w.transmitter
		return f
	case frame.KindCTS:
		f := p.CTS()
		f.Duration, f.Receiver, f.Transmitter = w.duration, w.receiver, w.transmitter
		f.Expect = w.expect
		return f
	case frame.KindACK:
		f := p.ACK()
		f.Duration, f.Receiver, f.Transmitter = w.duration, w.receiver, w.transmitter
		return f
	case frame.KindRAK:
		f := p.RAK()
		f.Duration, f.Receiver, f.Transmitter = w.duration, w.receiver, w.transmitter
		f.Seq = w.seq16
		return f
	case frame.KindData:
		f := p.Data()
		f.Duration, f.Receiver, f.Transmitter = w.duration, w.receiver, w.transmitter
		f.Seq = w.seq16
		f.Payload = append(f.Payload, w.payload...)
		return f
	}
	panic(fmt.Sprintf("phy: cross conduit cannot materialize kind %v", w.kind))
}

// crossDest is one receiver in a catalog: its index into the receiver
// medium's radio slice, the exact propagation delay from the source
// radio's (static) position, and whether it sits within decode range.
type crossDest struct {
	idx    int32
	prop   sim.Time
	inComm bool
}

// crossCatalog is the immutable receiver set of one (border radio, target
// shard) pair, computed at setup from the static placement. minProp is the
// earliest possible receiver-side event offset; it doubles as the direct
// lookahead contribution of this catalog.
type crossCatalog struct {
	srcID   int
	minProp sim.Time
	dests   []crossDest
}

// crossMsg is one ring slot. Slots are reused in place; the embedded
// wireFrame keeps its backing arrays across messages.
type crossMsg struct {
	kind    uint8
	tone    uint8
	cat     *crossCatalog
	t0      sim.Time // tx start / abort time / tone transition time
	t1      sim.Time // tx natural end (crossTx); original tx start (crossAbort)
	seqBase uint64
	fr      wireFrame
}

// spscRing is a bounded single-producer single-consumer ring. The producer
// is the sender shard's simulation goroutine, the consumer the receiver
// shard's. Capacity is a power of two; a full ring makes the producer spin
// (draining its own inboxes to break producer cycles — see send).
type spscRing struct {
	head atomic.Uint64 // next slot the consumer will read
	_    [56]byte
	tail atomic.Uint64 // next slot the producer will write
	_    [56]byte
	slots []crossMsg
	mask  uint64
}

const crossRingCap = 1024

func newRing() *spscRing {
	return &spscRing{slots: make([]crossMsg, crossRingCap), mask: crossRingCap - 1}
}

// pendingCross is the receiver-side holder: the drained image of one
// message plus the free-list link. Holders are conduit-private — acquiring
// one at drain time is invisible to the simulation, which is what keeps
// drain timing out of the deterministic state.
type pendingCross struct {
	c       *shardConduit
	kind    uint8
	tone    uint8
	cat     *crossCatalog
	t0, t1  sim.Time
	seqBase uint64
	fr      wireFrame
	next    *pendingCross
}

// Call implements sim.Caller: the holder fired at the message's earliest
// receiver event time.
func (p *pendingCross) Call(int32) { p.c.fire(p) }

// mirrorKey identifies a mirror transmission for abort routing: foreign
// transmissions are uniquely named by (source node, start time) — a radio
// transmits at most once at a time.
type mirrorKey struct {
	src   int
	start sim.Time
}

// mirrorExp is one entry of the mirror table's expiry queue.
type mirrorExp struct {
	key    mirrorKey
	expire sim.Time
}

// ShardStats counts one shard's conduit traffic. MsgsOut/MsgsIn are
// deterministic for a fixed (seed, shards); FullSpins is wall-clock
// scheduling observability and excluded from any fingerprint.
type ShardStats struct {
	MsgsOut   uint64
	MsgsIn    uint64
	FullSpins uint64
}

// shardConduit is one shard's half of the cross-shard fabric, owned by
// that shard's Medium/goroutine.
type shardConduit struct {
	net   *ShardNet
	med   *Medium
	shard int

	// Sender state.
	out      []*spscRing               // per target shard; nil where no pairs
	catalogs map[*Radio][]*crossCatalog // border radio → per-target catalogs (index parallel to outIdx)
	catIdx   map[*Radio][]int           // target shard index per catalog
	localSeq uint64
	endTime  sim.Time

	// Receiver state.
	in       []*spscRing // per source shard; nil where no pairs
	ghosts   map[int]*Radio
	free     *pendingCross
	mirrors  map[mirrorKey]*transmission
	expQueue []mirrorExp
	maxProp  sim.Time // max inbound prop; bounds how long an abort can trail

	stats ShardStats
}

// ShardNet is the cross-shard fabric of one sharded run: conduits, rings,
// and the direct lookahead matrix derived from the static placement.
type ShardNet struct {
	conduits []*shardConduit
	direct   [][]sim.Time
	stop     atomic.Bool
}

// ConnectShards wires the mediums of one sharded run together. pos holds
// every node's static position (sharded runs are stationary by contract),
// shardOf maps global node id → owning shard. Each medium must already
// hold exactly its shard's radios, registered in ascending global id
// order. endTime is the run horizon: messages whose earliest receiver
// event falls strictly after it are dropped at the sender, matching the
// unsharded engine's never-run semantics and guaranteeing no message can
// chase a shard that already ran its final window.
func ConnectShards(mediums []*Medium, pos []geom.Point, shardOf []int, endTime sim.Time) *ShardNet {
	s := len(mediums)
	net := &ShardNet{conduits: make([]*shardConduit, s), direct: make([][]sim.Time, s)}
	for i := range net.direct {
		net.direct[i] = make([]sim.Time, s)
		for j := range net.direct[i] {
			net.direct[i][j] = sim.MaxTime
		}
	}
	localIdx := make([]int32, len(pos))
	for _, m := range mediums {
		for li, r := range m.radios {
			localIdx[r.id] = int32(li)
		}
	}
	for i, m := range mediums {
		net.conduits[i] = &shardConduit{
			net: net, med: m, shard: i,
			out: make([]*spscRing, s), in: make([]*spscRing, s),
			catalogs: make(map[*Radio][]*crossCatalog),
			catIdx:   make(map[*Radio][]int),
			ghosts:   make(map[int]*Radio),
			mirrors:  make(map[mirrorKey]*transmission),
			endTime:  endTime,
		}
	}

	// Cell-hash the whole placement at the interference range so border
	// discovery is O(n · neighbors) instead of O(n²): only cross-shard
	// pairs within range matter.
	irange := mediums[0].cfg.interferenceRange()
	cell := irange
	type cellKey struct{ x, y int }
	cells := make(map[cellKey][]int)
	for id := range pos {
		k := cellKey{int(math.Floor(pos[id].X / cell)), int(math.Floor(pos[id].Y / cell))}
		cells[k] = append(cells[k], id)
	}
	r2 := irange * irange
	c2 := mediums[0].cfg.CommRange * mediums[0].cfg.CommRange
	// cats[src][target] accumulates receiver lists; built in ascending
	// (src, neighbor-cell, id) order, then dests sorted by id implicitly:
	// neighbor ids are gathered per source and sorted below.
	for src := range pos {
		ss := shardOf[src]
		base := cellKey{int(math.Floor(pos[src].X / cell)), int(math.Floor(pos[src].Y / cell))}
		var perShard map[int][]crossDest
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, o := range cells[cellKey{base.x + dx, base.y + dy}] {
					if o == src || shardOf[o] == ss {
						continue
					}
					d2 := pos[o].Dist2(pos[src])
					if d2 > r2 {
						continue
					}
					if perShard == nil {
						perShard = make(map[int][]crossDest)
					}
					perShard[shardOf[o]] = append(perShard[shardOf[o]], crossDest{
						idx:    localIdx[o],
						prop:   mediums[0].propDelay(math.Sqrt(d2)),
						inComm: d2 <= c2,
					})
				}
			}
		}
		if perShard == nil {
			continue
		}
		srcRadio := mediums[ss].radios[localIdx[src]]
		srcRadio.border = true
		c := net.conduits[ss]
		for t := 0; t < s; t++ {
			dests := perShard[t]
			if len(dests) == 0 {
				continue
			}
			// Deterministic receiver order: ascending global id. Radios
			// register in id order, so the local index is monotone in id.
			sortDests(dests)
			cat := &crossCatalog{srcID: src, minProp: sim.MaxTime, dests: dests}
			for _, d := range dests {
				if d.prop < cat.minProp {
					cat.minProp = d.prop
				}
			}
			c.catalogs[srcRadio] = append(c.catalogs[srcRadio], cat)
			c.catIdx[srcRadio] = append(c.catIdx[srcRadio], t)
			if cat.minProp < net.direct[ss][t] {
				net.direct[ss][t] = cat.minProp
			}
			if c.out[t] == nil {
				ring := newRing()
				c.out[t] = ring
				net.conduits[t].in[ss] = ring
			}
			// Receiver-side ghost + expiry bound.
			rc := net.conduits[t]
			if rc.ghosts[src] == nil {
				g := &Radio{m: mediums[t], eng: mediums[t].eng, id: src, static: true, pos: pos[src]}
				for ti := range g.toneLog {
					g.toneLog[ti].onSince = -1
				}
				rc.ghosts[src] = g
			}
			for _, d := range dests {
				if d.prop > rc.maxProp {
					rc.maxProp = d.prop
				}
			}
		}
	}
	for i, m := range mediums {
		m.cross = net.conduits[i]
	}
	return net
}

// sortDests sorts a catalog by local radio index (== ascending global id);
// catalogs are tiny, insertion sort avoids a sort.Slice closure.
func sortDests(d []crossDest) {
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && d[j].idx < d[j-1].idx; j-- {
			d[j], d[j-1] = d[j-1], d[j]
		}
	}
}

// Direct returns the direct lookahead matrix: Direct()[k][j] is the
// minimum cross-shard propagation delay from shard k to shard j
// (sim.MaxTime where no pair of radios is in range). Feed it to
// sim.NewShardSync, which closes it under shortest paths.
func (n *ShardNet) Direct() [][]sim.Time { return n.direct }

// Stop releases every producer blocked on a full ring (messages are
// dropped from then on). Called when a sharded run aborts; determinism is
// only contracted for runs that complete.
func (n *ShardNet) Stop() { n.stop.Store(true) }

// Stats returns shard j's conduit counters.
func (n *ShardNet) Stats(j int) ShardStats { return n.conduits[j].stats }

// OutCap returns the earliest send time among shard j's undrained outbound
// messages, or sim.MaxTime when every outbound ring is empty. A shard's
// published frontier must not exceed this cap: until a receiver has
// drained a message, the closure argument needs the sender's frontier to
// still cover that message's send time — otherwise a third shard reading
// the (already advanced) frontier could under-estimate how early the
// receiver can relay it (see DESIGN.md §14).
//
// Send times are monotone per ring (the sender's clock only advances), so
// the head slot holds each ring's minimum. Safe to call from shard j's
// goroutine only: slots are written by j alone, and a consumer advancing
// head concurrently merely makes the cap conservatively low.
func (n *ShardNet) OutCap(j int) sim.Time {
	lb := sim.MaxTime
	for _, ring := range n.conduits[j].out {
		if ring == nil {
			continue
		}
		h := ring.head.Load()
		if h == ring.tail.Load() {
			continue
		}
		if t := ring.slots[h&ring.mask].t0; t < lb {
			lb = t
		}
	}
	return lb
}

// Drain consumes every queued inbound message of shard j and schedules
// the corresponding holder events. Must be called from shard j's
// goroutine: between execution windows, while waiting at the frontier
// barrier, and (via the producer spin path) while blocked on a full
// outbound ring.
func (n *ShardNet) Drain(j int) { n.conduits[j].drain() }

func (c *shardConduit) drain() {
	for _, ring := range c.in {
		if ring == nil {
			continue
		}
		h := ring.head.Load()
		t := ring.tail.Load()
		for ; h != t; h++ {
			slot := &ring.slots[h&ring.mask]
			p := c.takeHolder()
			p.kind, p.tone, p.cat = slot.kind, slot.tone, slot.cat
			p.t0, p.t1, p.seqBase = slot.t0, slot.t1, slot.seqBase
			if slot.kind == crossTx {
				p.fr.copyFrom(&slot.fr)
			}
			ring.head.Store(h + 1) // slot fully copied; producer may reuse it
			c.stats.MsgsIn++
			c.med.eng.ScheduleCrossCall(p.t0+p.cat.minProp, p, 0, p.seqBase)
		}
	}
}

func (c *shardConduit) takeHolder() *pendingCross {
	if p := c.free; p != nil {
		c.free = p.next
		p.next = nil
		return p
	}
	return &pendingCross{c: c}
}

func (c *shardConduit) putHolder(p *pendingCross) {
	p.cat = nil
	p.next = c.free
	c.free = p
}

// fire runs a holder event: the deterministic point where a cross message
// becomes simulation state.
func (c *shardConduit) fire(p *pendingCross) {
	m := c.med
	switch p.kind {
	case crossTx:
		tx := m.newTx()
		tx.src = c.ghosts[p.cat.srcID]
		tx.f = p.fr.materialize(m.frames)
		tx.start, tx.end = p.t0, p.t1
		// No local txDone ever runs for a mirror: the sender shard owns
		// the sender-side lifecycle. finished=true makes the last rxEnd
		// recycle the mirror and release its frame.
		tx.finished = true
		seq := p.seqBase + 1
		for _, d := range p.cat.dests {
			q := m.newRxPath()
			q.tx, q.r, q.inComm, q.prop = tx, m.radios[d.idx], d.inComm, d.prop
			tx.dests = append(tx.dests, q)
			m.eng.ScheduleCrossCall(p.t0+d.prop, q, tagRxStart, seq)
			q.endEv = m.eng.ScheduleCrossCall(p.t1+d.prop, q, tagRxEnd, seq+1)
			seq += 2
		}
		tx.pending = len(tx.dests)
		key := mirrorKey{p.cat.srcID, p.t0}
		c.evictExpired()
		c.mirrors[key] = tx
		c.expQueue = append(c.expQueue, mirrorExp{key: key, expire: p.t1 + c.maxProp})
	case crossAbort:
		// p.t1 is the original start time (the mirror's key), p.t0 the
		// abort instant. The abort holder fires at t0+minProp, strictly
		// before the mirror's first rxEnd (t1'>t0 ⇒ end+prop > t0+prop ≥
		// t0+minProp), so every path is still intact; the guards mirror
		// AbortTx's belt-and-braces.
		tx := c.mirrors[mirrorKey{p.cat.srcID, p.t1}]
		seq := p.seqBase + 1
		if tx != nil && !tx.aborted {
			tx.aborted = true
			tx.end = p.t0
			for _, q := range tx.dests {
				s := seq
				seq++
				if q.tx != tx || !q.endEv.Pending() {
					continue
				}
				q.corrupted = true
				q.endEv.Cancel()
				q.endEv = m.eng.ScheduleCrossCall(p.t0+q.prop, q, tagRxEnd, s)
			}
			delete(c.mirrors, mirrorKey{p.cat.srcID, p.t1})
		}
	case crossToneOn, crossToneOff:
		tag := toneOffTag(Tone(p.tone))
		if p.kind == crossToneOn {
			tag = toneOnTag(Tone(p.tone))
		}
		seq := p.seqBase + 1
		for _, d := range p.cat.dests {
			m.eng.ScheduleCrossCall(p.t0+d.prop, m.radios[d.idx], tag, seq)
			seq++
		}
	}
	c.putHolder(p)
}

// evictExpired drops mirror-table entries whose abort can no longer
// arrive: an abort happens strictly before the natural end, so its holder
// fires before end+minProp ≤ end+maxProp. Amortized O(1) via the FIFO
// expiry queue.
func (c *shardConduit) evictExpired() {
	now := c.med.eng.Now()
	i := 0
	for ; i < len(c.expQueue) && c.expQueue[i].expire < now; i++ {
		delete(c.mirrors, c.expQueue[i].key)
	}
	if i > 0 {
		n := copy(c.expQueue, c.expQueue[i:])
		c.expQueue = c.expQueue[:n]
	}
}

// send publishes one message to target shard t, spinning when the ring is
// full. A blocked producer drains its own inboxes each spin: a cycle of
// mutually-full shards always has every participant emptying its inbound
// rings, so some producer always unblocks — production cannot deadlock.
func (c *shardConduit) send(t int, fill func(slot *crossMsg)) {
	ring := c.out[t]
	spins := 0
	for {
		tail := ring.tail.Load()
		if tail-ring.head.Load() < uint64(len(ring.slots)) {
			slot := &ring.slots[tail&ring.mask]
			fill(slot)
			ring.tail.Store(tail + 1)
			c.stats.MsgsOut++
			return
		}
		if c.net.stop.Load() {
			return // aborting run: drop rather than block forever
		}
		c.stats.FullSpins++
		c.drain()
		if spins < 256 {
			runtime.Gosched()
		} else {
			d := time.Duration(spins)
			if d > 100 {
				d = 100
			}
			time.Sleep(d * time.Microsecond)
		}
		spins++
	}
}

// txStart mirrors a border transmission into every foreign shard with
// in-range receivers. Called by Medium.StartTx after the local fan-out.
func (c *shardConduit) txStart(r *Radio, tx *transmission) {
	for i, cat := range c.catalogs[r] {
		if tx.start+cat.minProp > c.endTime {
			continue // no receiver event on or before the horizon
		}
		seqBase := sim.CrossSeq(c.shard, c.localSeq)
		c.localSeq += uint64(1 + 2*len(cat.dests))
		c.send(c.catIdx[r][i], func(slot *crossMsg) {
			slot.kind, slot.cat = crossTx, cat
			slot.t0, slot.t1, slot.seqBase = tx.start, tx.end, seqBase
			slot.fr.copyIn(tx.f)
		})
	}
}

// txAbort mirrors an abort (AbortTx or a crash truncation). now is the
// abort instant; tx.start still names the mirror.
func (c *shardConduit) txAbort(r *Radio, tx *transmission, now sim.Time) {
	for i, cat := range c.catalogs[r] {
		if tx.start+cat.minProp > c.endTime {
			continue // the mirror itself was filtered; nothing to abort
		}
		if now+cat.minProp > c.endTime {
			continue // every truncated rxEnd would fall past the horizon
		}
		seqBase := sim.CrossSeq(c.shard, c.localSeq)
		c.localSeq += uint64(1 + len(cat.dests))
		c.send(c.catIdx[r][i], func(slot *crossMsg) {
			slot.kind, slot.cat = crossAbort, cat
			slot.t0, slot.t1, slot.seqBase = now, tx.start, seqBase
		})
	}
}

// toneSet mirrors a tone transition of a border radio.
func (c *shardConduit) toneSet(r *Radio, t Tone, on bool, now sim.Time) {
	kind := crossToneOff
	if on {
		kind = crossToneOn
	}
	for i, cat := range c.catalogs[r] {
		if now+cat.minProp > c.endTime {
			continue
		}
		seqBase := sim.CrossSeq(c.shard, c.localSeq)
		c.localSeq += uint64(1 + len(cat.dests))
		c.send(c.catIdx[r][i], func(slot *crossMsg) {
			slot.kind, slot.tone, slot.cat = kind, uint8(t), cat
			slot.t0, slot.t1, slot.seqBase = now, 0, seqBase
		})
	}
}
