package phy

import (
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"time"

	"rmac/internal/frame"
	"rmac/internal/geom"
	"rmac/internal/sim"
)

// Cross-shard conduit — the PHY half of the sharded conservative parallel
// engine (see sim/parallel.go for the synchronization protocol and
// DESIGN.md §14 for the full derivation).
//
// A sharded run gives every spatial shard its own Medium on its own
// Engine/goroutine. Radios within one interference range of a shard
// boundary are marked border radios; for each of them the setup phase
// precomputes an immutable catalog per foreign shard: the in-range
// receivers over there, each with its exact propagation delay and
// decode-range flag. When a border radio transmits, aborts, or toggles a
// tone, the sender shard — in addition to its normal local fan-out —
// publishes a fixed-size message into a bounded SPSC ring per target
// shard. Messages carry a field-copied image of the frame (wireFrame), the
// event times, and a sender-minted sequence base in the engine's cross
// sequence space (sim.CrossSeq), which fixes the merge order at the
// receiver independent of wall-clock arrival.
//
// The receiver drains its rings between (and while waiting for) execution
// windows. Draining does NOT touch any simulation-visible pool: each
// message is copied into a conduit-owned holder (pendingCross) and a
// single holder event is scheduled at the message's earliest receiver
// event time under the sender's sequence base. All observable work — frame
// materialisation from the receiver's pool, mirror transmission setup,
// per-receiver rx scheduling — happens when the holder fires, which is a
// deterministic position in the receiver's event stream. This is what
// keeps pool hit/miss statistics (and therefore run fingerprints)
// bit-identical for a fixed (seed, shards) pair no matter how the OS
// schedules the shard goroutines.
//
// Mirror transmissions carry a ghost *Radio as their source: an
// unregistered, static radio with the foreign node's id and position. It
// is never part of the receiver medium's radio list, never transmits
// locally, and appears only as tx.src — every consumer of that field
// (trace, audit ObsRxEnd, fault's per-receiver error chains) is keyed by
// the receiving radio.

// crossKind enumerates conduit message types. The ghost records exist only
// in mobile runs: at every epoch boundary the rollover leader diffs the new
// border-band membership against the old and announces additions and
// removals to each receiver shard as stamped control records, so the ghost
// tables change at a deterministic position in every receiver's event
// stream (time = epoch boundary, sequence = sender-minted) instead of as a
// side effect of whichever message happens to arrive first.
const (
	crossTx uint8 = iota
	crossAbort
	crossToneOn
	crossToneOff
	crossGhostAdd
	crossGhostDel
)

// wireFrame is a field-copied image of a frame for ring transport: no
// pointers shared with the sender shard survive in it (slices are copied
// into the wireFrame's own reusable backing arrays).
type wireFrame struct {
	kind        frame.Kind
	flags       uint8
	transmitter frame.Addr
	receiver    frame.Addr
	seq32       uint32
	seq16       uint16
	duration    uint16
	expect      uint16
	receivers   []frame.Addr // MRTS only
	payload     []byte
}

// copyIn snapshots f. The concrete switch mirrors the eight frame kinds;
// slice contents are copied into w's capacity-reusing buffers.
func (w *wireFrame) copyIn(f frame.Frame) {
	w.receivers = w.receivers[:0]
	w.payload = w.payload[:0]
	w.flags, w.seq32, w.seq16, w.duration, w.expect = 0, 0, 0, 0, 0
	switch v := f.(type) {
	case *frame.MRTS:
		w.kind = frame.KindMRTS
		w.transmitter = v.Transmitter
		w.receivers = append(w.receivers, v.Receivers...)
	case *frame.RData:
		w.kind = frame.KindRData
		w.transmitter, w.receiver = v.Transmitter, v.Receiver
		w.seq32, w.flags = v.Seq, v.Flags
		w.payload = append(w.payload, v.Payload...)
	case *frame.UData:
		w.kind = frame.KindUData
		w.transmitter, w.receiver = v.Transmitter, v.Receiver
		w.seq32, w.flags = v.Seq, v.Flags
		w.payload = append(w.payload, v.Payload...)
	case *frame.RTS:
		w.kind = frame.KindRTS
		w.duration, w.receiver, w.transmitter = v.Duration, v.Receiver, v.Transmitter
	case *frame.CTS:
		w.kind = frame.KindCTS
		w.duration, w.receiver, w.transmitter = v.Duration, v.Receiver, v.Transmitter
		w.expect = v.Expect
	case *frame.ACK:
		w.kind = frame.KindACK
		w.duration, w.receiver, w.transmitter = v.Duration, v.Receiver, v.Transmitter
	case *frame.RAK:
		w.kind = frame.KindRAK
		w.duration, w.receiver, w.transmitter = v.Duration, v.Receiver, v.Transmitter
		w.seq16 = v.Seq
	case *frame.Data:
		w.kind = frame.KindData
		w.duration, w.receiver, w.transmitter = v.Duration, v.Receiver, v.Transmitter
		w.seq16 = v.Seq
		w.payload = append(w.payload, v.Payload...)
	default:
		panic(fmt.Sprintf("phy: cross conduit cannot transport %T", f))
	}
}

// copyFrom copies another wireFrame (ring slot → holder), again into w's
// own buffers.
func (w *wireFrame) copyFrom(o *wireFrame) {
	w.kind, w.flags = o.kind, o.flags
	w.transmitter, w.receiver = o.transmitter, o.receiver
	w.seq32, w.seq16, w.duration, w.expect = o.seq32, o.seq16, o.duration, o.expect
	w.receivers = append(w.receivers[:0], o.receivers...)
	w.payload = append(w.payload[:0], o.payload...)
}

// materialize acquires a frame of the snapshotted kind from the receiver
// shard's pool and fills it. Runs only at holder fire time.
func (w *wireFrame) materialize(p *frame.Pool) frame.Frame {
	switch w.kind {
	case frame.KindMRTS:
		f := p.MRTS()
		f.Transmitter = w.transmitter
		f.Receivers = append(f.Receivers, w.receivers...)
		return f
	case frame.KindRData:
		f := p.RData()
		f.Transmitter, f.Receiver = w.transmitter, w.receiver
		f.Seq, f.Flags = w.seq32, w.flags
		f.Payload = append(f.Payload, w.payload...)
		return f
	case frame.KindUData:
		f := p.UData()
		f.Transmitter, f.Receiver = w.transmitter, w.receiver
		f.Seq, f.Flags = w.seq32, w.flags
		f.Payload = append(f.Payload, w.payload...)
		return f
	case frame.KindRTS:
		f := p.RTS()
		f.Duration, f.Receiver, f.Transmitter = w.duration, w.receiver, w.transmitter
		return f
	case frame.KindCTS:
		f := p.CTS()
		f.Duration, f.Receiver, f.Transmitter = w.duration, w.receiver, w.transmitter
		f.Expect = w.expect
		return f
	case frame.KindACK:
		f := p.ACK()
		f.Duration, f.Receiver, f.Transmitter = w.duration, w.receiver, w.transmitter
		return f
	case frame.KindRAK:
		f := p.RAK()
		f.Duration, f.Receiver, f.Transmitter = w.duration, w.receiver, w.transmitter
		f.Seq = w.seq16
		return f
	case frame.KindData:
		f := p.Data()
		f.Duration, f.Receiver, f.Transmitter = w.duration, w.receiver, w.transmitter
		f.Seq = w.seq16
		f.Payload = append(f.Payload, w.payload...)
		return f
	}
	panic(fmt.Sprintf("phy: cross conduit cannot materialize kind %v", w.kind))
}

// crossDest is one receiver in a catalog: its index into the receiver
// medium's radio slice, the exact propagation delay from the source
// radio's (static) position, and whether it sits within decode range.
type crossDest struct {
	idx    int32
	prop   sim.Time
	inComm bool
}

// crossCatalog is the immutable receiver set of one (border radio, target
// shard) pair. Stationary runs compute it once at setup from the static
// placement: dests carry exact propagation delays and minProp is their
// minimum. Mobile runs rebuild catalogs at every epoch boundary from the
// boundary positions: dests are then *candidates* — every foreign radio
// that could come within interference range during the epoch (boundary
// distance ≤ irange + envelope) — with prop/inComm left zero, and minProp
// is the conservative bound propDelay(max(0, minBoundaryDist − envelope)).
// Either way a catalog is immutable once published: epoch rollover swaps
// in freshly allocated catalogs, so in-flight holders referencing the old
// epoch's catalog stay valid.
type crossCatalog struct {
	srcID   int
	minProp sim.Time
	dests   []crossDest
}

// crossMsg is one ring slot. Slots are reused in place; the embedded
// wireFrame keeps its backing arrays across messages. srcPos and gid only
// matter in mobile runs: srcPos is the sender's position at t0 (crossTx,
// crossToneOn — receiver-side physics needs it since no exact props are
// baked into mobile catalogs) or the ghost's boundary position
// (crossGhostAdd); gid names the ghost for the two ghost record kinds,
// which travel with cat == nil.
type crossMsg struct {
	kind    uint8
	tone    uint8
	gid     int32
	cat     *crossCatalog
	t0      sim.Time // tx start / abort time / tone transition / epoch boundary
	t1      sim.Time // tx natural end (crossTx); original tx start (crossAbort)
	seqBase uint64
	srcPos  geom.Point
	fr      wireFrame
}

// spscRing is a bounded single-producer single-consumer ring. The producer
// is the sender shard's simulation goroutine, the consumer the receiver
// shard's. Capacity is a power of two; a full ring makes the producer spin
// (draining its own inboxes to break producer cycles — see send).
type spscRing struct {
	head atomic.Uint64 // next slot the consumer will read
	_    [56]byte
	tail atomic.Uint64 // next slot the producer will write
	_    [56]byte
	slots []crossMsg
	mask  uint64
}

const crossRingCap = 1024

func newRing() *spscRing {
	return &spscRing{slots: make([]crossMsg, crossRingCap), mask: crossRingCap - 1}
}

// pendingCross is the receiver-side holder: the drained image of one
// message plus the free-list link. Holders are conduit-private — acquiring
// one at drain time is invisible to the simulation, which is what keeps
// drain timing out of the deterministic state.
type pendingCross struct {
	c       *shardConduit
	kind    uint8
	tone    uint8
	gid     int32
	cat     *crossCatalog
	t0, t1  sim.Time
	seqBase uint64
	srcPos  geom.Point
	fr      wireFrame
	next    *pendingCross
}

// Call implements sim.Caller: the holder fired at the message's earliest
// receiver event time.
func (p *pendingCross) Call(int32) { p.c.fire(p) }

// mirrorKey identifies a mirror transmission for abort routing: foreign
// transmissions are uniquely named by (source node, start time) — a radio
// transmits at most once at a time.
type mirrorKey struct {
	src   int
	start sim.Time
}

// mirrorExp is one entry of the mirror table's expiry queue.
type mirrorExp struct {
	key    mirrorKey
	expire sim.Time
}

// ShardStats counts one shard's conduit traffic. MsgsOut/MsgsIn and the
// ghost churn counters are deterministic for a fixed (seed, shards);
// FullSpins is wall-clock scheduling observability and excluded from any
// fingerprint. GhostAdds/GhostDels count ghost installs and removals at
// this (receiver) shard — the initial-epoch setup installs plus every
// ghost record firing, so GhostAdds-GhostDels is the live ghost count.
// Stationary runs keep their ghost tables static and count only the
// setup installs.
type ShardStats struct {
	MsgsOut   uint64
	MsgsIn    uint64
	GhostAdds uint64
	GhostDels uint64
	FullSpins uint64
}

// toneSessKey names a mobile receiver-side tone session: foreign tones are
// uniquely live per (source node, tone) pair.
type toneSessKey struct {
	src  int
	tone uint8
}

// shardConduit is one shard's half of the cross-shard fabric, owned by
// that shard's Medium/goroutine.
type shardConduit struct {
	net   *ShardNet
	med   *Medium
	shard int

	// Sender state.
	out      []*spscRing               // per target shard; nil where no pairs
	catalogs map[*Radio][]*crossCatalog // border radio → per-target catalogs (index parallel to outIdx)
	catIdx   map[*Radio][]int           // target shard index per catalog
	localSeq uint64
	endTime  sim.Time

	// Receiver state.
	in       []*spscRing // per source shard; nil where no pairs
	ghosts   map[int]*Radio
	free     *pendingCross
	mirrors  map[mirrorKey]*transmission
	expQueue []mirrorExp
	maxProp  sim.Time // max inbound prop; bounds how long an abort can trail

	// Mobile receiver state: foreign tone sessions, keyed by (source node,
	// tone). The ON fire captures the receivers actually in range at the
	// transition (with their live propagation delays); the OFF fire replays
	// exactly that set, mirroring the unsharded toneSession contract.
	toneSess map[toneSessKey]*toneSession

	stats ShardStats
}

// ShardNet is the cross-shard fabric of one sharded run: conduits, rings,
// and the direct lookahead matrix. Stationary runs derive the matrix once
// from the static placement; mobile runs rebuild it (and every catalog,
// border flag, and ghost set) at each epoch boundary via Rebuild.
type ShardNet struct {
	conduits []*shardConduit
	direct   [][]sim.Time
	stop     atomic.Bool

	// Mobile epoch state. localIdx/shardOf/mediums are setup-time constants;
	// prevGhost — the per-(sender, receiver) sorted ghost-source id sets of
	// the current epoch — is owned by the rollover leader and only touched
	// inside the boundary barrier.
	mobile    bool
	envelope  float64 // max pairwise distance change within one epoch (2·MaxSpeed·epoch)
	irange    float64
	r2, c2    float64 // irange², CommRange²
	seqBlock  uint64  // uniform per-message sequence stride (2·nodes+2)
	mediums   []*Medium
	localIdx  []int32
	shardOf   []int
	prevGhost [][][]int
}

// ConnectShards wires the mediums of one sharded run together. pos holds
// every node's static position (sharded runs are stationary by contract),
// shardOf maps global node id → owning shard. Each medium must already
// hold exactly its shard's radios, registered in ascending global id
// order. endTime is the run horizon: messages whose earliest receiver
// event falls strictly after it are dropped at the sender, matching the
// unsharded engine's never-run semantics and guaranteeing no message can
// chase a shard that already ran its final window.
func ConnectShards(mediums []*Medium, pos []geom.Point, shardOf []int, endTime sim.Time) *ShardNet {
	s := len(mediums)
	net := &ShardNet{conduits: make([]*shardConduit, s), direct: make([][]sim.Time, s)}
	for i := range net.direct {
		net.direct[i] = make([]sim.Time, s)
		for j := range net.direct[i] {
			net.direct[i][j] = sim.MaxTime
		}
	}
	localIdx := make([]int32, len(pos))
	for _, m := range mediums {
		for li, r := range m.radios {
			localIdx[r.id] = int32(li)
		}
	}
	for i, m := range mediums {
		net.conduits[i] = &shardConduit{
			net: net, med: m, shard: i,
			out: make([]*spscRing, s), in: make([]*spscRing, s),
			catalogs: make(map[*Radio][]*crossCatalog),
			catIdx:   make(map[*Radio][]int),
			ghosts:   make(map[int]*Radio),
			mirrors:  make(map[mirrorKey]*transmission),
			endTime:  endTime,
		}
	}

	// Cell-hash the whole placement at the interference range so border
	// discovery is O(n · neighbors) instead of O(n²): only cross-shard
	// pairs within range matter.
	irange := mediums[0].cfg.interferenceRange()
	cell := irange
	type cellKey struct{ x, y int }
	cells := make(map[cellKey][]int)
	for id := range pos {
		k := cellKey{int(math.Floor(pos[id].X / cell)), int(math.Floor(pos[id].Y / cell))}
		cells[k] = append(cells[k], id)
	}
	r2 := irange * irange
	c2 := mediums[0].cfg.CommRange * mediums[0].cfg.CommRange
	// cats[src][target] accumulates receiver lists; built in ascending
	// (src, neighbor-cell, id) order, then dests sorted by id implicitly:
	// neighbor ids are gathered per source and sorted below.
	for src := range pos {
		ss := shardOf[src]
		base := cellKey{int(math.Floor(pos[src].X / cell)), int(math.Floor(pos[src].Y / cell))}
		var perShard map[int][]crossDest
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, o := range cells[cellKey{base.x + dx, base.y + dy}] {
					if o == src || shardOf[o] == ss {
						continue
					}
					d2 := pos[o].Dist2(pos[src])
					if d2 > r2 {
						continue
					}
					if perShard == nil {
						perShard = make(map[int][]crossDest)
					}
					perShard[shardOf[o]] = append(perShard[shardOf[o]], crossDest{
						idx:    localIdx[o],
						prop:   mediums[0].propDelay(math.Sqrt(d2)),
						inComm: d2 <= c2,
					})
				}
			}
		}
		if perShard == nil {
			continue
		}
		srcRadio := mediums[ss].radios[localIdx[src]]
		srcRadio.border = true
		c := net.conduits[ss]
		for t := 0; t < s; t++ {
			dests := perShard[t]
			if len(dests) == 0 {
				continue
			}
			// Deterministic receiver order: ascending global id. Radios
			// register in id order, so the local index is monotone in id.
			sortDests(dests)
			cat := &crossCatalog{srcID: src, minProp: sim.MaxTime, dests: dests}
			for _, d := range dests {
				if d.prop < cat.minProp {
					cat.minProp = d.prop
				}
			}
			c.catalogs[srcRadio] = append(c.catalogs[srcRadio], cat)
			c.catIdx[srcRadio] = append(c.catIdx[srcRadio], t)
			if cat.minProp < net.direct[ss][t] {
				net.direct[ss][t] = cat.minProp
			}
			if c.out[t] == nil {
				ring := newRing()
				c.out[t] = ring
				net.conduits[t].in[ss] = ring
			}
			// Receiver-side ghost + expiry bound.
			rc := net.conduits[t]
			if rc.ghosts[src] == nil {
				rc.stats.GhostAdds++
				g := &Radio{m: mediums[t], eng: mediums[t].eng, id: src, static: true, pos: pos[src]}
				for ti := range g.toneLog {
					g.toneLog[ti].onSince = -1
				}
				rc.ghosts[src] = g
			}
			for _, d := range dests {
				if d.prop > rc.maxProp {
					rc.maxProp = d.prop
				}
			}
		}
	}
	for i, m := range mediums {
		m.cross = net.conduits[i]
	}
	return net
}

// sortDests sorts a catalog by local radio index (== ascending global id);
// catalogs are tiny, insertion sort avoids a sort.Slice closure.
func sortDests(d []crossDest) {
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && d[j].idx < d[j-1].idx; j-- {
			d[j], d[j-1] = d[j-1], d[j]
		}
	}
}

// ConnectShardsMobile wires the mediums of a mobile sharded run together.
// pos holds every node's position at t=0; envelope bounds how much any
// pairwise distance can change within one mobility epoch (2 × MaxSpeed ×
// epoch length). Unlike the stationary fabric, catalogs here are candidate
// sets over conservative position envelopes, valid for exactly one epoch:
// the experiment layer must call Rebuild at every epoch boundary with the
// boundary positions (see DESIGN.md §15 for the barrier protocol).
//
// The ring topology is fixed up front — every ordered shard pair gets its
// ring even if no pair of radios is currently in reach — so epoch rollover
// never has to publish new rings to a foreign goroutine; only the border
// membership churns.
func ConnectShardsMobile(mediums []*Medium, pos []geom.Point, shardOf []int, endTime sim.Time, envelope float64) *ShardNet {
	s := len(mediums)
	irange := mediums[0].cfg.interferenceRange()
	cr := mediums[0].cfg.CommRange
	net := &ShardNet{
		conduits:  make([]*shardConduit, s),
		direct:    make([][]sim.Time, s),
		mobile:    true,
		envelope:  envelope,
		irange:    irange,
		r2:        irange * irange,
		c2:        cr * cr,
		seqBlock:  2*uint64(len(pos)) + 2,
		mediums:   mediums,
		localIdx:  make([]int32, len(pos)),
		shardOf:   shardOf,
		prevGhost: make([][][]int, s),
	}
	for i := range net.direct {
		net.direct[i] = make([]sim.Time, s)
		net.prevGhost[i] = make([][]int, s)
	}
	for _, m := range mediums {
		for li, r := range m.radios {
			net.localIdx[r.id] = int32(li)
		}
	}
	// maxProp bounds every actual mirror prop forever: receivers beyond the
	// interference range are filtered at fire time.
	maxProp := mediums[0].propDelay(irange)
	for i, m := range mediums {
		net.conduits[i] = &shardConduit{
			net: net, med: m, shard: i,
			out:      make([]*spscRing, s),
			in:       make([]*spscRing, s),
			catalogs: make(map[*Radio][]*crossCatalog),
			catIdx:   make(map[*Radio][]int),
			ghosts:   make(map[int]*Radio),
			mirrors:  make(map[mirrorKey]*transmission),
			toneSess: make(map[toneSessKey]*toneSession),
			endTime:  endTime,
			maxProp:  maxProp,
		}
	}
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			if i == j {
				continue
			}
			ring := newRing()
			net.conduits[i].out[j] = ring
			net.conduits[j].in[i] = ring
		}
	}
	net.rebuild(pos, 0, 0, false)
	for i, m := range mediums {
		m.cross = net.conduits[i]
	}
	return net
}

// Rebuild recomputes the epoch state — candidate catalogs, border flags,
// ghost membership, and the direct lookahead matrix — from the node
// positions at epoch boundary B. Ghost membership changes are announced to
// each receiver shard as crossGhostAdd/crossGhostDel records stamped at
// t=B with sender-minted sequence numbers.
//
// MUST be called only by the rollover leader while every shard is parked
// at the boundary barrier (all frontiers ≥ B): it rewrites sender state
// (catalogs, border flags, localSeq) owned by other shards' goroutines,
// which is only race-free under the barrier's happens-before chain —
// frontier release-stores before parking, epoch-generation release-store
// after Rebuild returns.
func (n *ShardNet) Rebuild(pos []geom.Point, B sim.Time, leader int) {
	n.rebuild(pos, B, leader, true)
}

func (n *ShardNet) rebuild(pos []geom.Point, B sim.Time, leader int, emit bool) {
	s := len(n.conduits)
	for i := range n.direct {
		for j := range n.direct[i] {
			n.direct[i][j] = sim.MaxTime
		}
	}
	for _, c := range n.conduits {
		for _, r := range c.med.radios {
			r.border = false
		}
		// Fresh maps, not cleared ones: in-flight holders may still point at
		// old-epoch catalogs, and those must stay intact until they fire.
		c.catalogs = make(map[*Radio][]*crossCatalog)
		c.catIdx = make(map[*Radio][]int)
	}
	newGhost := make([][][]int, s)
	for i := range newGhost {
		newGhost[i] = make([][]int, s)
	}
	// Candidate reach: any pair within irange+envelope at B can interact
	// during the epoch; any pair beyond it provably cannot (each endpoint
	// contributes at most envelope/2 of displacement).
	reach := n.irange + n.envelope
	cell := reach
	type cellKey struct{ x, y int }
	cells := make(map[cellKey][]int)
	for id := range pos {
		k := cellKey{int(math.Floor(pos[id].X / cell)), int(math.Floor(pos[id].Y / cell))}
		cells[k] = append(cells[k], id)
	}
	reach2 := reach * reach
	for src := range pos {
		ss := n.shardOf[src]
		base := cellKey{int(math.Floor(pos[src].X / cell)), int(math.Floor(pos[src].Y / cell))}
		var perShard map[int][]crossDest
		var minD2 map[int]float64
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, o := range cells[cellKey{base.x + dx, base.y + dy}] {
					if o == src || n.shardOf[o] == ss {
						continue
					}
					d2 := pos[o].Dist2(pos[src])
					if d2 > reach2 {
						continue
					}
					if perShard == nil {
						perShard = make(map[int][]crossDest)
						minD2 = make(map[int]float64)
					}
					t := n.shardOf[o]
					if cur, ok := minD2[t]; !ok || d2 < cur {
						minD2[t] = d2
					}
					perShard[t] = append(perShard[t], crossDest{idx: n.localIdx[o]})
				}
			}
		}
		if perShard == nil {
			continue
		}
		srcRadio := n.mediums[ss].radios[n.localIdx[src]]
		srcRadio.border = true
		c := n.conduits[ss]
		for t := 0; t < s; t++ {
			dests := perShard[t]
			if len(dests) == 0 {
				continue
			}
			sortDests(dests)
			dmin := math.Sqrt(minD2[t]) - n.envelope
			if dmin < 0 {
				dmin = 0
			}
			cat := &crossCatalog{srcID: src, minProp: n.mediums[0].propDelay(dmin), dests: dests}
			c.catalogs[srcRadio] = append(c.catalogs[srcRadio], cat)
			c.catIdx[srcRadio] = append(c.catIdx[srcRadio], t)
			if cat.minProp < n.direct[ss][t] {
				n.direct[ss][t] = cat.minProp
			}
			newGhost[ss][t] = append(newGhost[ss][t], src)
		}
	}
	// Diff ghost membership per ordered shard pair. Sources were visited in
	// ascending id order, so both slices are sorted; a merge walk yields the
	// additions and removals in ascending id order, which fixes the record
	// sequence numbers deterministically.
	for ss := 0; ss < s; ss++ {
		for t := 0; t < s; t++ {
			if ss == t {
				continue
			}
			old, cur := n.prevGhost[ss][t], newGhost[ss][t]
			i, j := 0, 0
			for i < len(old) || j < len(cur) {
				switch {
				case j >= len(cur) || (i < len(old) && old[i] < cur[j]):
					if emit {
						n.ghostRecord(ss, t, leader, crossGhostDel, old[i], geom.Point{}, B)
					} else {
						n.conduits[t].stats.GhostDels++
						delete(n.conduits[t].ghosts, old[i])
					}
					i++
				case i >= len(old) || cur[j] < old[i]:
					if emit {
						n.ghostRecord(ss, t, leader, crossGhostAdd, cur[j], pos[cur[j]], B)
					} else {
						n.conduits[t].stats.GhostAdds++
						n.conduits[t].ghost(cur[j], pos[cur[j]])
					}
					j++
				default:
					i++
					j++
				}
			}
			n.prevGhost[ss][t] = cur
		}
	}
}

// ghostRecord publishes one ghost membership record from shard ss to shard
// t on behalf of the rollover leader. It cannot use the normal send() path:
// that spins draining *shard ss's* inbox, but the leader may only touch its
// own conduit. Receivers parked at the barrier drain their rings while
// spinning on the epoch generation, so a full ring targeting a follower
// always makes progress; a full ring targeting the leader itself is drained
// right here.
func (n *ShardNet) ghostRecord(ss, t, leader int, kind uint8, src int, pos geom.Point, B sim.Time) {
	c := n.conduits[ss]
	ring := c.out[t]
	seqBase := sim.CrossSeq(ss, c.localSeq)
	c.localSeq += n.seqBlock
	for {
		tail := ring.tail.Load()
		if tail-ring.head.Load() < uint64(len(ring.slots)) {
			slot := &ring.slots[tail&ring.mask]
			slot.kind, slot.tone, slot.cat = kind, 0, nil
			slot.gid = int32(src)
			slot.srcPos = pos
			slot.t0, slot.t1, slot.seqBase = B, 0, seqBase
			ring.tail.Store(tail + 1)
			c.stats.MsgsOut++
			return
		}
		if n.stop.Load() {
			return
		}
		c.stats.FullSpins++
		if t == leader {
			n.conduits[leader].drain()
		} else {
			runtime.Gosched()
		}
	}
}

// ghost returns the receiver-side ghost radio for foreign node src,
// creating it on demand. Creation is deterministic wherever it happens: a
// ghost record firing at an epoch boundary, or a mirror transmission whose
// holder crossed the boundary after the source left the border band (its
// crossGhostDel already fired — the mirror recreates the ghost it needs).
func (c *shardConduit) ghost(src int, pos geom.Point) *Radio {
	g := c.ghosts[src]
	if g == nil {
		g = &Radio{m: c.med, eng: c.med.eng, id: src, static: true, pos: pos, memoTime: -1}
		for ti := range g.toneLog {
			g.toneLog[ti].onSince = -1
		}
		c.ghosts[src] = g
	} else {
		g.pos = pos
	}
	return g
}

// Direct returns the direct lookahead matrix: Direct()[k][j] is the
// minimum cross-shard propagation delay from shard k to shard j
// (sim.MaxTime where no pair of radios is in range). Feed it to
// sim.NewShardSync, which closes it under shortest paths.
func (n *ShardNet) Direct() [][]sim.Time { return n.direct }

// Stop releases every producer blocked on a full ring (messages are
// dropped from then on). Called when a sharded run aborts; determinism is
// only contracted for runs that complete.
func (n *ShardNet) Stop() { n.stop.Store(true) }

// Stats returns shard j's conduit counters.
func (n *ShardNet) Stats(j int) ShardStats { return n.conduits[j].stats }

// OutCap returns the earliest send time among shard j's undrained outbound
// messages, or sim.MaxTime when every outbound ring is empty. A shard's
// published frontier must not exceed this cap: until a receiver has
// drained a message, the closure argument needs the sender's frontier to
// still cover that message's send time — otherwise a third shard reading
// the (already advanced) frontier could under-estimate how early the
// receiver can relay it (see DESIGN.md §14).
//
// Send times are monotone per ring (the sender's clock only advances), so
// the head slot holds each ring's minimum. Safe to call from shard j's
// goroutine only: slots are written by j alone, and a consumer advancing
// head concurrently merely makes the cap conservatively low.
func (n *ShardNet) OutCap(j int) sim.Time {
	lb := sim.MaxTime
	for _, ring := range n.conduits[j].out {
		if ring == nil {
			continue
		}
		h := ring.head.Load()
		if h == ring.tail.Load() {
			continue
		}
		if t := ring.slots[h&ring.mask].t0; t < lb {
			lb = t
		}
	}
	return lb
}

// Drain consumes every queued inbound message of shard j and schedules
// the corresponding holder events. Must be called from shard j's
// goroutine: between execution windows, while waiting at the frontier
// barrier, and (via the producer spin path) while blocked on a full
// outbound ring.
func (n *ShardNet) Drain(j int) { n.conduits[j].drain() }

func (c *shardConduit) drain() {
	for _, ring := range c.in {
		if ring == nil {
			continue
		}
		h := ring.head.Load()
		t := ring.tail.Load()
		for ; h != t; h++ {
			slot := &ring.slots[h&ring.mask]
			p := c.takeHolder()
			p.kind, p.tone, p.gid, p.cat = slot.kind, slot.tone, slot.gid, slot.cat
			p.t0, p.t1, p.seqBase = slot.t0, slot.t1, slot.seqBase
			p.srcPos = slot.srcPos
			if slot.kind == crossTx {
				p.fr.copyFrom(&slot.fr)
			}
			ring.head.Store(h + 1) // slot fully copied; producer may reuse it
			c.stats.MsgsIn++
			at := p.t0
			if p.cat != nil {
				at += p.cat.minProp // ghost records (cat==nil) fire at the boundary itself
			}
			c.med.eng.ScheduleCrossCall(at, p, 0, p.seqBase)
		}
	}
}

func (c *shardConduit) takeHolder() *pendingCross {
	if p := c.free; p != nil {
		c.free = p.next
		p.next = nil
		return p
	}
	return &pendingCross{c: c}
}

func (c *shardConduit) putHolder(p *pendingCross) {
	p.cat = nil
	p.next = c.free
	c.free = p
}

// fire runs a holder event: the deterministic point where a cross message
// becomes simulation state.
func (c *shardConduit) fire(p *pendingCross) {
	m := c.med
	switch p.kind {
	case crossTx:
		if c.net.mobile {
			c.fireTxMobile(p)
			break
		}
		tx := m.newTx()
		tx.src = c.ghosts[p.cat.srcID]
		tx.f = p.fr.materialize(m.frames)
		tx.start, tx.end = p.t0, p.t1
		// No local txDone ever runs for a mirror: the sender shard owns
		// the sender-side lifecycle. finished=true makes the last rxEnd
		// recycle the mirror and release its frame.
		tx.finished = true
		seq := p.seqBase + 1
		for _, d := range p.cat.dests {
			q := m.newRxPath()
			q.tx, q.r, q.inComm, q.prop = tx, m.radios[d.idx], d.inComm, d.prop
			tx.dests = append(tx.dests, q)
			m.eng.ScheduleCrossCall(p.t0+d.prop, q, tagRxStart, seq)
			q.endEv = m.eng.ScheduleCrossCall(p.t1+d.prop, q, tagRxEnd, seq+1)
			seq += 2
		}
		tx.pending = len(tx.dests)
		key := mirrorKey{p.cat.srcID, p.t0}
		c.evictExpired()
		c.mirrors[key] = tx
		c.expQueue = append(c.expQueue, mirrorExp{key: key, expire: p.t1 + c.maxProp})
	case crossAbort:
		// p.t1 is the original start time (the mirror's key), p.t0 the
		// abort instant. Stationary: the abort holder fires at t0+minProp,
		// strictly before the mirror's first rxEnd (t1'>t0 ⇒ end+prop >
		// t0+prop ≥ t0+minProp), so every path is still intact; the guards
		// mirror AbortTx's belt-and-braces. Mobile: a transmission that
		// spans an epoch boundary carries props sampled under the previous
		// epoch's envelope, which the current epoch's lookahead floor may
		// exceed — the clamp below then lands the truncation at the holder
		// instant (a deterministic position; at most minProp late, sub-µs).
		tx := c.mirrors[mirrorKey{p.cat.srcID, p.t1}]
		seq := p.seqBase + 1
		if tx != nil && !tx.aborted {
			now := m.eng.Now()
			tx.aborted = true
			tx.end = p.t0
			for _, q := range tx.dests {
				s := seq
				seq++
				if q.tx != tx || !q.endEv.Pending() {
					continue
				}
				q.corrupted = true
				q.endEv.Cancel()
				at := p.t0 + q.prop
				if at < now {
					at = now
				}
				q.endEv = m.eng.ScheduleCrossCall(at, q, tagRxEnd, s)
			}
			delete(c.mirrors, mirrorKey{p.cat.srcID, p.t1})
		}
	case crossToneOn, crossToneOff:
		if c.net.mobile {
			c.fireToneMobile(p)
			break
		}
		tag := toneOffTag(Tone(p.tone))
		if p.kind == crossToneOn {
			tag = toneOnTag(Tone(p.tone))
		}
		seq := p.seqBase + 1
		for _, d := range p.cat.dests {
			m.eng.ScheduleCrossCall(p.t0+d.prop, m.radios[d.idx], tag, seq)
			seq++
		}
	case crossGhostAdd:
		c.stats.GhostAdds++
		c.ghost(int(p.gid), p.srcPos)
	case crossGhostDel:
		c.stats.GhostDels++
		delete(c.ghosts, int(p.gid))
		// A source leaving the border band can no longer route its tone OFF
		// through the conduit (its catalogs toward this shard are empty), so
		// any tone it still holds here would jam its captured receivers for
		// the rest of the run. Drop those sessions at the boundary instead:
		// the receivers are by now > irange away, so losing the tone early
		// is the physically conservative reading of the captured-set
		// contract. 2 tones × (nodes−1) dests fits the 2·nodes+2 sequence
		// block.
		seq := p.seqBase + 1
		for t := Tone(0); t < NumTones; t++ {
			key := toneSessKey{src: int(p.gid), tone: uint8(t)}
			sess := c.toneSess[key]
			if sess == nil {
				continue
			}
			delete(c.toneSess, key)
			for i, r := range sess.dests {
				m.eng.ScheduleCrossCall(p.t0+sess.props[i], r, toneOffTag(t), seq)
				seq++
			}
			m.freeSess(sess)
		}
	}
	c.putHolder(p)
}

// fireTxMobile mirrors a foreign transmission under mobility: the catalog
// only names candidates, so the actual receiver set, propagation delays,
// and decode flags are computed here from the sender's position at t0
// (carried in the message) and each candidate's own trajectory at t0 (a
// backward query bounded by minProp ≪ the retention horizon). Every
// candidate consumes its two sequence numbers whether or not it is in
// range, so the merge order is independent of the filter outcome.
func (c *shardConduit) fireTxMobile(p *pendingCross) {
	m := c.med
	tx := m.newTx()
	tx.src = c.ghost(p.cat.srcID, p.srcPos)
	tx.f = p.fr.materialize(m.frames)
	tx.start, tx.end = p.t0, p.t1
	tx.finished = true
	seq := p.seqBase + 1
	for _, d := range p.cat.dests {
		s := seq
		seq += 2
		r := m.radios[d.idx]
		d2 := m.positionAt(r, p.t0).Dist2(p.srcPos)
		if d2 > c.net.r2 {
			continue
		}
		q := m.newRxPath()
		q.tx, q.r, q.inComm = tx, r, d2 <= c.net.c2
		q.prop = m.propDelay(math.Sqrt(d2))
		tx.dests = append(tx.dests, q)
		m.eng.ScheduleCrossCall(p.t0+q.prop, q, tagRxStart, s)
		q.endEv = m.eng.ScheduleCrossCall(p.t1+q.prop, q, tagRxEnd, s+1)
	}
	tx.pending = len(tx.dests)
	if tx.pending == 0 {
		// Every candidate drifted out of reach by t0: nothing will ever
		// reference this mirror (aborts look up the mirror table, which we
		// skip), so recycle it and its frame immediately.
		m.freeTx(tx)
		return
	}
	key := mirrorKey{p.cat.srcID, p.t0}
	c.evictExpired()
	c.mirrors[key] = tx
	c.expQueue = append(c.expQueue, mirrorExp{key: key, expire: p.t1 + c.maxProp})
}

// fireToneMobile handles foreign tone transitions under mobility. The ON
// fire captures the live receiver set (positions at t0) into a session
// keyed by (source, tone); the OFF fire replays exactly that session with
// the ON delays — the unsharded SetTone contract. An OFF whose ON was
// horizon-filtered at the sender finds no session and is a no-op, matching
// the unsharded engine's never-run semantics. An OFF-then-ON pair where
// only the OFF was filtered leaves a stale session behind; the next ON
// replaces it. As with aborts, a tone held across epoch boundaries may
// carry ON props below the current lookahead floor, so OFF transitions
// clamp to the holder instant.
func (c *shardConduit) fireToneMobile(p *pendingCross) {
	m := c.med
	key := toneSessKey{src: p.cat.srcID, tone: p.tone}
	if p.kind == crossToneOff {
		sess := c.toneSess[key]
		if sess == nil {
			return
		}
		delete(c.toneSess, key)
		now := m.eng.Now()
		seq := p.seqBase + 1
		for i, r := range sess.dests {
			at := p.t0 + sess.props[i]
			if at < now {
				at = now
			}
			m.eng.ScheduleCrossCall(at, r, toneOffTag(Tone(p.tone)), seq)
			seq++
		}
		m.freeSess(sess)
		return
	}
	if old := c.toneSess[key]; old != nil {
		m.freeSess(old) // stale session from a horizon-filtered OFF
	}
	sess := m.newSess()
	seq := p.seqBase + 1
	for _, d := range p.cat.dests {
		s := seq
		seq++
		r := m.radios[d.idx]
		d2 := m.positionAt(r, p.t0).Dist2(p.srcPos)
		if d2 > c.net.r2 {
			continue
		}
		prop := m.propDelay(math.Sqrt(d2))
		sess.dests = append(sess.dests, r)
		sess.props = append(sess.props, prop)
		m.eng.ScheduleCrossCall(p.t0+prop, r, toneOnTag(Tone(p.tone)), s)
	}
	c.toneSess[key] = sess
}

// evictExpired drops mirror-table entries whose abort can no longer
// arrive: an abort happens strictly before the natural end, so its holder
// fires before end+minProp ≤ end+maxProp. Amortized O(1) via the FIFO
// expiry queue.
func (c *shardConduit) evictExpired() {
	now := c.med.eng.Now()
	i := 0
	for ; i < len(c.expQueue) && c.expQueue[i].expire < now; i++ {
		delete(c.mirrors, c.expQueue[i].key)
	}
	if i > 0 {
		n := copy(c.expQueue, c.expQueue[i:])
		c.expQueue = c.expQueue[:n]
	}
}

// send publishes one message to target shard t, spinning when the ring is
// full. A blocked producer drains its own inboxes each spin: a cycle of
// mutually-full shards always has every participant emptying its inbound
// rings, so some producer always unblocks — production cannot deadlock.
func (c *shardConduit) send(t int, fill func(slot *crossMsg)) {
	ring := c.out[t]
	spins := 0
	for {
		tail := ring.tail.Load()
		if tail-ring.head.Load() < uint64(len(ring.slots)) {
			slot := &ring.slots[tail&ring.mask]
			fill(slot)
			ring.tail.Store(tail + 1)
			c.stats.MsgsOut++
			return
		}
		if c.net.stop.Load() {
			return // aborting run: drop rather than block forever
		}
		c.stats.FullSpins++
		c.drain()
		if spins < 256 {
			runtime.Gosched()
		} else {
			d := time.Duration(spins)
			if d > 100 {
				d = 100
			}
			time.Sleep(d * time.Microsecond)
		}
		spins++
	}
}

// mintSeq reserves a block of cross sequence numbers and returns its base.
// Stationary runs reserve exactly what the message can consume (the
// catalog is exact). Mobile runs reserve a uniform stride instead: a tone
// OFF replays its ON-time session, whose size is bounded by a *previous*
// epoch's catalog, not the current one — a content-sized stride could
// collide with the next message's block. 2·nodes+2 bounds every message
// kind, and the 48-bit per-shard space absorbs the slack (2^48 / stride
// messages per shard).
func (c *shardConduit) mintSeq(n uint64) uint64 {
	if c.net.mobile {
		n = c.net.seqBlock
	}
	s := sim.CrossSeq(c.shard, c.localSeq)
	c.localSeq += n
	return s
}

// txStart mirrors a border transmission into every foreign shard with
// in-range receivers. Called by Medium.StartTx after the local fan-out.
func (c *shardConduit) txStart(r *Radio, tx *transmission) {
	var srcPos geom.Point
	if c.net.mobile {
		srcPos = c.med.PositionOf(r) // tx.start == Now: the memo from the local fan-out hits
	}
	for i, cat := range c.catalogs[r] {
		if tx.start+cat.minProp > c.endTime {
			continue // no receiver event on or before the horizon
		}
		seqBase := c.mintSeq(uint64(1 + 2*len(cat.dests)))
		c.send(c.catIdx[r][i], func(slot *crossMsg) {
			slot.kind, slot.cat = crossTx, cat
			slot.t0, slot.t1, slot.seqBase = tx.start, tx.end, seqBase
			slot.srcPos = srcPos
			slot.fr.copyIn(tx.f)
		})
	}
}

// txAbort mirrors an abort (AbortTx or a crash truncation). now is the
// abort instant; tx.start still names the mirror.
func (c *shardConduit) txAbort(r *Radio, tx *transmission, now sim.Time) {
	for i, cat := range c.catalogs[r] {
		if tx.start+cat.minProp > c.endTime {
			continue // the mirror itself was filtered; nothing to abort
		}
		if now+cat.minProp > c.endTime {
			continue // every truncated rxEnd would fall past the horizon
		}
		seqBase := c.mintSeq(uint64(1 + len(cat.dests)))
		c.send(c.catIdx[r][i], func(slot *crossMsg) {
			slot.kind, slot.cat = crossAbort, cat
			slot.t0, slot.t1, slot.seqBase = now, tx.start, seqBase
		})
	}
}

// toneSet mirrors a tone transition of a border radio.
func (c *shardConduit) toneSet(r *Radio, t Tone, on bool, now sim.Time) {
	kind := crossToneOff
	if on {
		kind = crossToneOn
	}
	var srcPos geom.Point
	if c.net.mobile && on {
		srcPos = c.med.PositionOf(r)
	}
	for i, cat := range c.catalogs[r] {
		if now+cat.minProp > c.endTime {
			continue
		}
		seqBase := c.mintSeq(uint64(1 + len(cat.dests)))
		c.send(c.catIdx[r][i], func(slot *crossMsg) {
			slot.kind, slot.tone, slot.cat = kind, uint8(t), cat
			slot.t0, slot.t1, slot.seqBase = now, 0, seqBase
			slot.srcPos = srcPos
		})
	}
}
