package audit_test

import (
	"testing"

	"rmac/internal/audit"
	"rmac/internal/frame"
	"rmac/internal/geom"
	"rmac/internal/mac"
	"rmac/internal/mac/bmmm"
	"rmac/internal/mac/bmw"
	"rmac/internal/mac/dot11"
	"rmac/internal/mac/lbp"
	"rmac/internal/mac/mx"
	"rmac/internal/mac/rmac"
	"rmac/internal/mobility"
	"rmac/internal/phy"
	"rmac/internal/sim"
)

// nopHandler satisfies phy.Handler for radios driven directly by a test.
type nopHandler struct{}

func (nopHandler) OnFrameReceived(frame.Frame, bool, sim.Time) {}
func (nopHandler) OnCarrierChange(bool)                        {}
func (nopHandler) OnToneChange(phy.Tone, bool)                 {}
func (nopHandler) OnTxDone(frame.Frame)                        {}

// newAuditWorld builds an engine + medium with an attached auditor and one
// directly-drivable radio per position.
func newAuditWorld(t *testing.T, pos ...geom.Point) (*sim.Engine, *phy.Medium, *audit.Auditor, []*phy.Radio) {
	t.Helper()
	eng := sim.NewEngine(1)
	m := phy.NewMedium(eng, phy.DefaultConfig())
	aud := audit.New(eng, m, audit.Config{})
	var rads []*phy.Radio
	for i, p := range pos {
		r := m.AddRadio(i, mobility.Stationary{P: p})
		r.SetHandler(nopHandler{})
		rads = append(rads, r)
	}
	return eng, m, aud, rads
}

// requireViolation asserts the auditor's most recent violation has the
// given class and returns it.
func requireViolation(t *testing.T, aud *audit.Auditor, class audit.Class) audit.Violation {
	t.Helper()
	vs := aud.Violations()
	if len(vs) == 0 {
		t.Fatalf("no violations recorded, want class %v", class)
	}
	v := vs[len(vs)-1]
	if v.Class != class {
		t.Fatalf("last violation = %v, want class %v", v, class)
	}
	return v
}

func requireClean(t *testing.T, aud *audit.Auditor) {
	t.Helper()
	if aud.Count != 0 {
		for _, v := range aud.Violations() {
			t.Errorf("unexpected violation: %v", v)
		}
		t.Fatalf("auditor recorded %d violations, want 0", aud.Count)
	}
}

// stubMAC is a configurable mac.MAC implementing every auditor reporter
// interface, for driving the quiesce-time checks directly.
type stubMAC struct {
	stats                        mac.Stats
	nav                          bool
	wants, counting, gated, idle bool
	queued                       int
	inFlight                     bool
}

func (s *stubMAC) Addr() frame.Addr           { return frame.AddrFromID(0) }
func (s *stubMAC) Send(*mac.SendRequest) bool { return false }
func (s *stubMAC) SetUpper(mac.UpperLayer)    {}
func (s *stubMAC) Stats() *mac.Stats          { return &s.stats }
func (s *stubMAC) AuditNAVBusy() bool         { return s.nav }
func (s *stubMAC) AuditContention() (bool, bool, bool, bool) {
	return s.wants, s.counting, s.gated, s.idle
}
func (s *stubMAC) AuditPending() (int, bool) { return s.queued, s.inFlight }

// recUpper counts deliveries and completions.
type recUpper struct {
	delivered int
	completes []mac.TxResult
}

func (u *recUpper) OnDeliver([]byte, mac.RxInfo) { u.delivered++ }
func (u *recUpper) OnSendComplete(res mac.TxResult) {
	res.Delivered = append([]frame.Addr(nil), res.Delivered...)
	res.Failed = append([]frame.Addr(nil), res.Failed...)
	u.completes = append(u.completes, res)
}

// ---- negative tests: every invariant class must actually fire ----

func TestDetectsDoubleTransmit(t *testing.T) {
	eng, _, aud, rads := newAuditWorld(t, geom.Point{X: 0, Y: 0}, geom.Point{X: 30, Y: 0})
	rads[0].StartTx(&frame.RTS{Receiver: frame.AddrFromID(1), Transmitter: frame.AddrFromID(0)})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("phy accepted a second concurrent StartTx")
			}
		}()
		rads[0].StartTx(&frame.RTS{Receiver: frame.AddrFromID(1), Transmitter: frame.AddrFromID(0)})
	}()
	requireViolation(t, aud, audit.HalfDuplex)
	eng.RunAll()
	if aud.Count != 1 {
		t.Fatalf("violations = %d, want exactly 1", aud.Count)
	}
}

func TestDetectsUndeclaredToneAssertion(t *testing.T) {
	_, _, aud, rads := newAuditWorld(t, geom.Point{X: 0, Y: 0})
	rads[0].SetTone(phy.ToneRBT, true)
	requireViolation(t, aud, audit.ToneLifecycle)
	rads[0].SetTone(phy.ToneRBT, false)
	if aud.Count != 1 {
		t.Fatalf("violations = %d, want 1 (the off-transition is legal)", aud.Count)
	}
}

func TestDetectsWrongPulseLength(t *testing.T) {
	eng, _, aud, rads := newAuditWorld(t, geom.Point{X: 0, Y: 0})
	aud.ExpectTone(0, phy.ToneABT, 0, phy.ABTDuration)
	rads[0].SetTone(phy.ToneABT, true)
	eng.Schedule(10*sim.Microsecond, func() { rads[0].SetTone(phy.ToneABT, false) })
	eng.RunAll()
	requireViolation(t, aud, audit.ToneLifecycle)
}

func TestDetectsDoubleToneSet(t *testing.T) {
	_, _, aud, rads := newAuditWorld(t, geom.Point{X: 0, Y: 0})
	aud.ExpectTone(0, phy.ToneRBT, 0, 0)
	rads[0].SetTone(phy.ToneRBT, true)
	requireClean(t, aud)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("phy accepted a duplicate tone transition")
			}
		}()
		rads[0].SetTone(phy.ToneRBT, true)
	}()
	requireViolation(t, aud, audit.ToneLifecycle)
}

func TestDetectsStrandedToneAtQuiesce(t *testing.T) {
	eng, _, aud, rads := newAuditWorld(t, geom.Point{X: 0, Y: 0})
	aud.ExpectTone(0, phy.ToneRBT, 0, 0)
	rads[0].SetTone(phy.ToneRBT, true)
	eng.Run(10 * sim.Millisecond) // far past the RBT hold bound
	aud.Quiesce()
	requireViolation(t, aud, audit.ToneLifecycle)
}

func TestDetectsTransmissionUnderNAV(t *testing.T) {
	_, _, aud, rads := newAuditWorld(t, geom.Point{X: 0, Y: 0}, geom.Point{X: 30, Y: 0})
	st := &stubMAC{nav: true}
	aud.RegisterMAC(0, st)
	aud.Initiation(0)
	rads[0].StartTx(&frame.RTS{Receiver: frame.AddrFromID(1), Transmitter: frame.AddrFromID(0)})
	requireViolation(t, aud, audit.NAV)
}

func TestDetectsShortDIFS(t *testing.T) {
	eng, _, aud, rads := newAuditWorld(t, geom.Point{X: 0, Y: 0}, geom.Point{X: 30, Y: 0})
	cfg := phy.DefaultConfig()
	d := &frame.Data{Receiver: frame.AddrFromID(0), Transmitter: frame.AddrFromID(1), Duration: 100}
	dur := cfg.TxDuration(d.WireSize())
	eng.Schedule(0, func() { rads[1].StartTx(d) })
	// Initiate 10 µs after the frame's energy ends at node 0: far short of
	// the DIFS the DCF must wait after channel activity.
	eng.Schedule(dur+10*sim.Microsecond, func() {
		aud.Initiation(0)
		rads[0].StartTx(&frame.RTS{Receiver: frame.AddrFromID(1), Transmitter: frame.AddrFromID(0)})
	})
	eng.RunAll()
	requireViolation(t, aud, audit.Spacing)
}

func TestDetectsShortSIFSResponse(t *testing.T) {
	eng, _, aud, rads := newAuditWorld(t, geom.Point{X: 0, Y: 0}, geom.Point{X: 30, Y: 0})
	cfg := phy.DefaultConfig()
	d := &frame.Data{Receiver: frame.AddrFromID(0), Transmitter: frame.AddrFromID(1), Duration: 100}
	dur := cfg.TxDuration(d.WireSize())
	eng.Schedule(0, func() { rads[1].StartTx(d) })
	// Respond 5 µs after the decode completes: under the SIFS turnaround.
	eng.Schedule(dur+5*sim.Microsecond, func() {
		rads[0].StartTx(&frame.CTS{Receiver: frame.AddrFromID(1), Transmitter: frame.AddrFromID(0)})
	})
	eng.RunAll()
	requireViolation(t, aud, audit.Spacing)
}

func TestDetectsUndeclaredBroadcastData(t *testing.T) {
	_, _, aud, rads := newAuditWorld(t, geom.Point{X: 0, Y: 0}, geom.Point{X: 30, Y: 0})
	// Registering a NAVReporter marks node 0 as an 802.11-family MAC, so
	// its zero-Duration (broadcast) data must ride a declared DCF win.
	aud.RegisterMAC(0, &stubMAC{})
	rads[0].StartTx(&frame.Data{Receiver: frame.Broadcast, Transmitter: frame.AddrFromID(0)})
	requireViolation(t, aud, audit.Spacing)
}

func TestDetectsDuplicateReliableDelivery(t *testing.T) {
	_, _, aud, _ := newAuditWorld(t, geom.Point{X: 0, Y: 0})
	u := &recUpper{}
	shim := aud.WrapUpper(0, u)
	info := mac.RxInfo{From: frame.AddrFromID(1), Reliable: true, Seq: 7}
	shim.OnDeliver([]byte("x"), info)
	requireClean(t, aud)
	shim.OnDeliver([]byte("x"), info)
	requireViolation(t, aud, audit.ReliableSemantics)
	if u.delivered != 2 {
		t.Fatalf("inner upper saw %d deliveries, want 2 (the shim must still forward)", u.delivered)
	}
	// A different sequence from the same source is a fresh delivery.
	shim.OnDeliver([]byte("y"), mac.RxInfo{From: frame.AddrFromID(1), Reliable: true, Seq: 8})
	if aud.Count != 1 {
		t.Fatalf("violations = %d, want 1", aud.Count)
	}
}

func TestDetectsIncompleteAckSet(t *testing.T) {
	_, _, aud, _ := newAuditWorld(t, geom.Point{X: 0, Y: 0})
	aud.ReliableOutcome(0, 1, 3, false)
	requireViolation(t, aud, audit.ReliableSemantics)
	// A drop with a partial ACK set is the legal outcome.
	aud.ReliableOutcome(0, 1, 3, true)
	if aud.Count != 1 {
		t.Fatalf("violations = %d, want 1", aud.Count)
	}
}

func TestDetectsStuckBackoffAtQuiesce(t *testing.T) {
	_, _, aud, _ := newAuditWorld(t, geom.Point{X: 0, Y: 0})
	st := &stubMAC{wants: true, idle: true}
	aud.RegisterMAC(0, st)
	aud.Quiesce()
	requireViolation(t, aud, audit.BackoffLegality)
	// With a gate armed the same state is legal.
	st.gated = true
	aud.Quiesce()
	if aud.Count != 1 {
		t.Fatalf("violations = %d, want 1 (gated draw is legal)", aud.Count)
	}
}

func TestDetectsConservationMismatch(t *testing.T) {
	_, _, aud, _ := newAuditWorld(t, geom.Point{X: 0, Y: 0})
	st := &stubMAC{queued: 1}
	st.stats.Enqueued = 3
	st.stats.ReliableDelivered = 1
	aud.RegisterMAC(0, st)
	aud.Quiesce()
	requireViolation(t, aud, audit.Conservation)
	// Balance the identity: 3 = 1 delivered + 1 queued + 1 in flight.
	st2 := &stubMAC{queued: 1, inFlight: true}
	st2.stats.Enqueued = 3
	st2.stats.ReliableDelivered = 1
	_, _, aud2, _ := newAuditWorld(t, geom.Point{X: 0, Y: 0})
	aud2.RegisterMAC(0, st2)
	aud2.Quiesce()
	requireClean(t, aud2)
}

// ---- conformance scenarios: zero violations across all six MACs ----

type protoCase struct {
	name  string
	build func(r *phy.Radio, cfg phy.Config, eng *sim.Engine) mac.MAC
}

func allProtocols() []protoCase {
	lim := mac.DefaultLimits()
	return []protoCase{
		{"rmac", func(r *phy.Radio, cfg phy.Config, eng *sim.Engine) mac.MAC { return rmac.New(r, cfg, eng, lim) }},
		{"bmmm", func(r *phy.Radio, cfg phy.Config, eng *sim.Engine) mac.MAC { return bmmm.New(r, cfg, eng, lim) }},
		{"bmw", func(r *phy.Radio, cfg phy.Config, eng *sim.Engine) mac.MAC { return bmw.New(r, cfg, eng, lim) }},
		{"lbp", func(r *phy.Radio, cfg phy.Config, eng *sim.Engine) mac.MAC { return lbp.New(r, cfg, eng, lim) }},
		{"mx", func(r *phy.Radio, cfg phy.Config, eng *sim.Engine) mac.MAC { return mx.New(r, cfg, eng, lim) }},
		{"dot11", func(r *phy.Radio, cfg phy.Config, eng *sim.Engine) mac.MAC { return dot11.New(r, cfg, eng, lim) }},
	}
}

// buildStack wires one MAC per position with the auditor fully attached,
// exactly as the experiment harness does.
func buildStack(p protoCase, seed int64, pos []geom.Point) (*sim.Engine, *audit.Auditor, []mac.MAC, []*recUpper) {
	eng := sim.NewEngine(seed)
	cfg := phy.DefaultConfig()
	m := phy.NewMedium(eng, cfg)
	aud := audit.New(eng, m, audit.Config{})
	var macs []mac.MAC
	var ups []*recUpper
	for i, pt := range pos {
		r := m.AddRadio(i, mobility.Stationary{P: pt})
		n := p.build(r, cfg, eng)
		u := &recUpper{}
		aud.RegisterMAC(i, n)
		if s, ok := n.(interface{ SetAuditor(*audit.Auditor) }); ok {
			s.SetAuditor(aud)
		}
		n.SetUpper(aud.WrapUpper(i, u))
		macs = append(macs, n)
		ups = append(ups, u)
	}
	return eng, aud, macs, ups
}

func reliableTo(payload string, ids ...int) *mac.SendRequest {
	dests := make([]frame.Addr, len(ids))
	for i, id := range ids {
		dests[i] = frame.AddrFromID(id)
	}
	return &mac.SendRequest{Service: mac.Reliable, Dests: dests, Payload: []byte(payload)}
}

// TestHiddenTerminalConformance: A and C cannot hear each other and both
// send reliably to B. Whatever collisions and recoveries follow, no MAC
// may break an invariant, and both exchanges must complete.
func TestHiddenTerminalConformance(t *testing.T) {
	for _, p := range allProtocols() {
		t.Run(p.name, func(t *testing.T) {
			pos := []geom.Point{{X: 0, Y: 0}, {X: 60, Y: 0}, {X: 120, Y: 0}}
			eng, aud, macs, ups := buildStack(p, 31, pos)
			if !macs[0].Send(reliableTo("from-a", 1)) {
				t.Fatal("A's send rejected")
			}
			eng.Schedule(40*sim.Microsecond, func() {
				if !macs[2].Send(reliableTo("from-c", 1)) {
					t.Fatal("C's send rejected")
				}
			})
			eng.Run(5 * sim.Second)
			requireClean(t, aud)
			if len(ups[0].completes) != 1 || len(ups[2].completes) != 1 {
				t.Fatalf("completions = %d/%d, want 1/1", len(ups[0].completes), len(ups[2].completes))
			}
			if ups[0].completes[0].Dropped || ups[2].completes[0].Dropped {
				t.Fatalf("a hidden-terminal sender dropped: A=%+v C=%+v", ups[0].completes[0], ups[2].completes[0])
			}
		})
	}
}

// TestExposedReceiverConformance: B→A and C→D run concurrently with B and
// C in range of each other but the receivers clear of the opposite
// sender. Both must complete with zero invariant violations.
func TestExposedReceiverConformance(t *testing.T) {
	for _, p := range allProtocols() {
		t.Run(p.name, func(t *testing.T) {
			pos := []geom.Point{{X: 0, Y: 0}, {X: 70, Y: 0}, {X: 130, Y: 0}, {X: 200, Y: 0}}
			eng, aud, macs, ups := buildStack(p, 32, pos)
			if !macs[1].Send(reliableTo("b-to-a", 0)) {
				t.Fatal("B's send rejected")
			}
			eng.Schedule(25*sim.Microsecond, func() {
				if !macs[2].Send(reliableTo("c-to-d", 3)) {
					t.Fatal("C's send rejected")
				}
			})
			eng.Run(5 * sim.Second)
			requireClean(t, aud)
			if len(ups[1].completes) != 1 || len(ups[2].completes) != 1 {
				t.Fatalf("completions = %d/%d, want 1/1", len(ups[1].completes), len(ups[2].completes))
			}
			if ups[1].completes[0].Dropped || ups[2].completes[0].Dropped {
				t.Fatalf("an exposed-pair sender dropped: B=%+v C=%+v", ups[1].completes[0], ups[2].completes[0])
			}
		})
	}
}
