// Package audit is the online protocol-invariant auditor: a race-detector
// for the protocol layer. Attached to a phy.Medium as its Observer (and to
// each MAC through small declaration hooks), it checks every observable
// transition against the contracts the paper specifies — half-duplex
// discipline, busy-tone lifecycle (§3.2, C4/C9/C13), NAV and inter-frame
// spacing for the 802.11-family baselines (§2), deliver-at-most-once and
// ACK-complete reliable-send semantics (§3.3, C16–C19), backoff legality
// (§3.3.1) and end-of-run packet conservation — and records a Violation,
// with the last few medium events as context, whenever one is broken.
//
// The auditor is passive: it never schedules events, transmits, or draws
// from the engine's RNG, so attaching it cannot perturb a run — a run with
// the auditor enabled is bit-identical to the same seed without it. Its
// per-event work is bounded (ring writes and integer compares; violations
// format strings only on the cold path), keeping the steady-state
// allocation gate intact with the auditor attached. All MAC-facing hook
// methods are nil-receiver safe, mirroring trace.Trace, so protocol code
// calls them unconditionally.
//
// DESIGN.md §10 catalogues every invariant with its paper citation and
// the soundness argument for why zero violations is achievable (and
// required) across the full six-protocol fault-injected sweep.
package audit

import (
	"fmt"

	"rmac/internal/frame"
	"rmac/internal/mac"
	"rmac/internal/phy"
	"rmac/internal/sim"
	"rmac/internal/trace"
)

// Class partitions violations by invariant family.
type Class uint8

const (
	// HalfDuplex: a second concurrent transmission, or a frame decoded
	// while its receiver was transmitting or crashed.
	HalfDuplex Class = iota
	// ToneLifecycle: double tone transitions, assertions outside a
	// declared protocol window, wrong pulse length, or a tone left
	// asserted at quiesce (including across node crashes).
	ToneLifecycle
	// NAV: a DCF-won transmission started under the node's own active NAV.
	NAV
	// Spacing: a SIFS/DIFS inter-frame gap shorter than the standard
	// requires.
	Spacing
	// ReliableSemantics: a duplicate reliable delivery for one (src, seq),
	// or ReliableDelivered incremented before the full ACK set was in.
	ReliableSemantics
	// BackoffLegality: a drawn backoff stuck Active() && !Counting() with
	// the channel idle and nothing armed to restart it.
	BackoffLegality
	// Conservation: Enqueued ≠ delivered + dropped + still queued at
	// quiesce.
	Conservation
	// NumClasses is the number of violation classes.
	NumClasses
)

func (c Class) String() string {
	switch c {
	case HalfDuplex:
		return "half-duplex"
	case ToneLifecycle:
		return "tone-lifecycle"
	case NAV:
		return "nav"
	case Spacing:
		return "spacing"
	case ReliableSemantics:
		return "reliable-semantics"
	case BackoffLegality:
		return "backoff-legality"
	case Conservation:
		return "conservation"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Violation is one detected invariant breach.
type Violation struct {
	At     sim.Time
	Node   int
	Class  Class
	Detail string
	// Context holds the auditor's event ring (oldest first) as of the
	// violation: the last few medium transitions leading up to it.
	Context []trace.Event
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%v node=%d [%s] %s", v.At, v.Node, v.Class, v.Detail)
}

// ContentionReporter is implemented by MACs whose backoff legality the
// auditor checks at quiesce. wants reports a drawn, unfinished backoff;
// counting that its slot timer is armed; gated that some other event
// (a DIFS expiry, for the DCF protocols) is armed to restart it; idle the
// protocol's own countdown condition right now.
type ContentionReporter interface {
	AuditContention() (wants, counting, gated, idle bool)
}

// NAVReporter is implemented by the 802.11-family MACs; AuditNAVBusy
// reports whether the node's network allocation vector is currently set.
type NAVReporter interface {
	AuditNAVBusy() bool
}

// PendingReporter exposes the unfinished-work counters behind the
// end-of-run conservation identity.
type PendingReporter interface {
	AuditPending() (queued int, inFlight bool)
}

// Config parameterises an Auditor.
type Config struct {
	// ContextEvents is the event-ring capacity attached to each
	// violation. 0 means 64.
	ContextEvents int
	// MaxFrameAirtime bounds the airtime of any data frame in the run; it
	// sizes the legal RBT hold window (tone raised at MRTS reception,
	// held across the WfRData window and one data reception). 0 means
	// 3 ms, ample for 500-byte payloads at 2 Mb/s.
	MaxFrameAirtime sim.Time
	// MaxViolations caps how many violations keep their full context
	// (Count keeps counting past it). 0 means 128.
	MaxViolations int
}

// veryPast initialises last-event clocks so start-of-run gaps never
// trigger spacing checks.
const veryPast = sim.Time(-1 << 60)

// toneExpect is one declared legal tone-assertion window.
type toneExpect struct {
	at    sim.Time
	pulse sim.Time
	used  bool
}

// nodeState is the auditor's per-node view.
type nodeState struct {
	lastSensedEnd sim.Time // end of the last arrival whose energy the node registered
	lastOkRxEnd   sim.Time // end of the last correctly decoded arrival
	lastTxEnd     sim.Time // end (or abort) of the node's own last transmission

	dcfWin bool // next TxStart was declared as a DCF/backoff win

	toneOnAt  [phy.NumTones]sim.Time
	tonePulse [phy.NumTones]sim.Time
	expects   [phy.NumTones][4]toneExpect

	// seen tracks reliable deliveries for the duplicate-delivery invariant:
	// one sequence-number bitset per source node (sequence numbers are
	// dense per source), plus a rare map fallback for frames whose source
	// address does not decode to a node ID. Lazily grown.
	seen        [][]uint64
	seenForeign map[dedupKey]struct{}
}

type dedupKey struct {
	src frame.Addr
	seq uint32
}

// markSeen records a reliable delivery of (src, seq) at this node and
// reports whether it was new.
func (ns *nodeState) markSeen(src frame.Addr, seq uint32) bool {
	id := src.NodeID()
	if id < 0 {
		if ns.seenForeign == nil {
			ns.seenForeign = make(map[dedupKey]struct{})
		}
		k := dedupKey{src: src, seq: seq}
		if _, dup := ns.seenForeign[k]; dup {
			return false
		}
		ns.seenForeign[k] = struct{}{}
		return true
	}
	for id >= len(ns.seen) {
		ns.seen = append(ns.seen, nil)
	}
	w, bit := int(seq>>6), uint64(1)<<(seq&63)
	bs := ns.seen[id]
	for w >= len(bs) {
		bs = append(bs, 0)
	}
	ns.seen[id] = bs
	if bs[w]&bit != 0 {
		return false
	}
	bs[w] |= bit
	return true
}

// Auditor holds the run-wide audit state. The zero value is not usable;
// use New. A nil *Auditor is a valid no-op for every MAC-facing hook.
type Auditor struct {
	eng    *sim.Engine
	medium *phy.Medium
	cfg    Config

	nodes []nodeState

	macs       []mac.MAC
	contention []ContentionReporter
	navs       []NAVReporter
	pendings   []PendingReporter

	// Context ring of compact, pointer-free records: the per-event hot
	// path is a small copy with no write barrier and no string lookups;
	// the trace.Event form (with its What string) is materialised only
	// when a violation snapshots the ring.
	ring     []ringEvt
	ringNext int
	ringFull bool

	violations []Violation
	// Count is the total number of violations detected, including any
	// past the context cap.
	Count uint64
	// ByClass partitions Count by invariant class; the telemetry layer
	// exports it as the per-class violation counter family.
	ByClass [NumClasses]uint64
}

// New creates an auditor for the medium's radios and installs it as the
// medium's Observer. Nodes must be registered (RegisterMAC / WrapUpper)
// after their radios exist; radio IDs must be dense in [0, n).
func New(eng *sim.Engine, medium *phy.Medium, cfg Config) *Auditor {
	if cfg.ContextEvents <= 0 {
		cfg.ContextEvents = 64
	}
	if cfg.MaxFrameAirtime <= 0 {
		cfg.MaxFrameAirtime = 3 * sim.Millisecond
	}
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = 128
	}
	a := &Auditor{
		eng:    eng,
		medium: medium,
		cfg:    cfg,
		ring:   make([]ringEvt, cfg.ContextEvents),
	}
	medium.Obs = a
	return a
}

// grow ensures per-node state exists for node ids in [0, n).
func (a *Auditor) grow(n int) {
	for len(a.nodes) < n {
		ns := nodeState{lastSensedEnd: veryPast, lastOkRxEnd: veryPast, lastTxEnd: veryPast}
		// Unused expectation slots must not alias a legal t=0 assertion.
		for t := range ns.expects {
			for i := range ns.expects[t] {
				ns.expects[t][i].at = veryPast
			}
		}
		a.nodes = append(a.nodes, ns)
		a.macs = append(a.macs, nil)
		a.contention = append(a.contention, nil)
		a.navs = append(a.navs, nil)
		a.pendings = append(a.pendings, nil)
	}
}

func (a *Auditor) node(id int) *nodeState {
	a.grow(id + 1)
	return &a.nodes[id]
}

// RegisterMAC attaches a node's MAC so the quiesce checks can read its
// stats and, through the optional reporter interfaces it implements, its
// contention, NAV and queue state.
func (a *Auditor) RegisterMAC(id int, m mac.MAC) {
	if a == nil {
		return
	}
	a.grow(id + 1)
	a.macs[id] = m
	if cr, ok := m.(ContentionReporter); ok {
		a.contention[id] = cr
	}
	if nr, ok := m.(NAVReporter); ok {
		a.navs[id] = nr
	}
	if pr, ok := m.(PendingReporter); ok {
		a.pendings[id] = pr
	}
}

// ringEvt is one compact context-ring record. The subject octet holds a
// frame.Kind or a phy.Tone (disambiguated by isTone); subjNone means the
// event has no subject (node up/down).
type ringEvt struct {
	at     sim.Time
	node   int32
	kind   trace.Kind
	isTone bool
	subj   uint8
}

const subjNone = 0xFF

// record appends one compact event to the context ring.
func (a *Auditor) record(ev ringEvt) {
	a.ring[a.ringNext] = ev
	a.ringNext++
	if a.ringNext == len(a.ring) {
		a.ringNext = 0
		a.ringFull = true
	}
}

// ringEvents materialises the ring as chronological trace.Events,
// reconstructing each What string from the subject octet.
func (a *Auditor) ringEvents() []trace.Event {
	var out []trace.Event
	expand := func(evs []ringEvt) {
		for _, e := range evs {
			what := ""
			switch {
			case e.isTone:
				what = phy.Tone(e.subj).String()
			case e.subj != subjNone:
				what = frame.Kind(e.subj).String()
			}
			out = append(out, trace.Event{At: e.at, Node: int(e.node), Kind: e.kind, What: what})
		}
	}
	if a.ringFull {
		out = make([]trace.Event, 0, len(a.ring))
		expand(a.ring[a.ringNext:])
	}
	expand(a.ring[:a.ringNext])
	return out
}

// violate records one violation with the current event ring as context.
func (a *Auditor) violate(node int, class Class, format string, args ...any) {
	a.Count++
	a.ByClass[class]++
	if len(a.violations) >= a.cfg.MaxViolations {
		return
	}
	a.violations = append(a.violations, Violation{
		At:      a.eng.Now(),
		Node:    node,
		Class:   class,
		Detail:  fmt.Sprintf(format, args...),
		Context: a.ringEvents(),
	})
}

// Violations returns the recorded violations in detection order.
func (a *Auditor) Violations() []Violation {
	if a == nil {
		return nil
	}
	return a.violations
}

// ---- MAC-facing declaration hooks (all nil-receiver safe) ----

// Initiation declares that the node's imminent next transmission is a
// DCF/backoff win: the auditor checks the DIFS gap and NAV idleness on
// that TxStart. The 802.11-family MACs call it immediately before every
// contention-won transmission; chained exchange steps (a BMMM follow-up
// RTS, SIFS-spaced data) are deliberately not declared.
func (a *Auditor) Initiation(node int) {
	if a == nil {
		return
	}
	a.node(node).dcfWin = true
}

// ExpectTone declares a legal tone assertion: tone t may be raised by
// node at exactly time at, for exactly pulse (0 = unbounded, limited by
// the run-wide RBT hold bound). RMAC declares RBT at MRTS acceptance and
// each scheduled ABT slot; MX declares its NAK windows. An undeclared
// assertion is a ToneLifecycle violation.
func (a *Auditor) ExpectTone(node int, t phy.Tone, at, pulse sim.Time) {
	if a == nil {
		return
	}
	ns := a.node(node)
	exps := &ns.expects[t]
	// Reuse the oldest slot; four outstanding declarations cover RMAC's
	// back-to-back receiver roles with room to spare.
	oldest := 0
	for i := range exps {
		if exps[i].used || exps[i].at == veryPast {
			oldest = i
			break
		}
		if exps[i].at < exps[oldest].at {
			oldest = i
		}
	}
	exps[oldest] = toneExpect{at: at, pulse: pulse}
}

// ReliableOutcome reports a completed reliable send: delivered receivers
// out of total, and whether the packet was dropped at the retry limit. A
// success with an incomplete ACK set is a ReliableSemantics violation.
func (a *Auditor) ReliableOutcome(node int, delivered, total int, dropped bool) {
	if a == nil {
		return
	}
	if !dropped && delivered != total {
		a.violate(node, ReliableSemantics,
			"reliable send completed successfully with %d/%d receivers acknowledged", delivered, total)
	}
}

// WrapUpper interposes the at-most-once delivery check between a MAC and
// its upper layer: every reliable OnDeliver is keyed by (src, seq) and a
// repeat is a ReliableSemantics violation. Unreliable deliveries
// (broadcast beacons, 802.11 one-shot multicast) pass through unchecked.
func (a *Auditor) WrapUpper(node int, u mac.UpperLayer) mac.UpperLayer {
	if a == nil {
		return u
	}
	a.grow(node + 1)
	return &upperShim{a: a, node: node, inner: u}
}

type upperShim struct {
	a     *Auditor
	node  int
	inner mac.UpperLayer
}

func (s *upperShim) OnDeliver(payload []byte, info mac.RxInfo) {
	if info.Reliable {
		ns := s.a.node(s.node)
		if !ns.markSeen(info.From, info.Seq) {
			s.a.violate(s.node, ReliableSemantics,
				"duplicate reliable delivery of seq %d from %v", info.Seq, info.From)
		}
	}
	s.inner.OnDeliver(payload, info)
}

func (s *upperShim) OnSendComplete(res mac.TxResult) { s.inner.OnSendComplete(res) }

// ---- phy.Observer implementation ----

// frameDuration extracts the NAV Duration field (µs) of 802.11-family
// frames; RMAC kinds return -1 (no NAV).
func frameDuration(f frame.Frame) int {
	switch t := f.(type) {
	case *frame.RTS:
		return int(t.Duration)
	case *frame.CTS:
		return int(t.Duration)
	case *frame.ACK:
		return int(t.Duration)
	case *frame.RAK:
		return int(t.Duration)
	case *frame.Data:
		return int(t.Duration)
	}
	return -1
}

// ObsTxStart implements phy.Observer.
func (a *Auditor) ObsTxStart(r *phy.Radio, f frame.Frame) {
	now := a.eng.Now()
	id := r.ID()
	a.record(ringEvt{at: now, node: int32(id), kind: trace.TxStart, subj: uint8(f.Kind())})
	ns := a.node(id)
	win := ns.dcfWin
	ns.dcfWin = false // any transmission consumes the declaration

	if r.Transmitting() {
		a.violate(id, HalfDuplex, "StartTx(%v) while already transmitting", f.Kind())
	}

	kind := f.Kind()
	switch kind {
	case frame.KindMRTS, frame.KindRData, frame.KindUData:
		// RMAC frames: spacing is governed by §3.3 tone windows and the
		// §3.3.1 backoff, not SIFS/DIFS; nothing more to check here.
		return
	}

	busyEnd := ns.lastSensedEnd
	if ns.lastTxEnd > busyEnd {
		busyEnd = ns.lastTxEnd
	}
	if win {
		// DCF-won initiation: the medium must have been idle for a full
		// DIFS (§2; NS-2 802.11 timing contract) and the node's own NAV
		// must not be set.
		if nav := a.navOf(id); nav != nil && nav.AuditNAVBusy() {
			a.violate(id, NAV, "DCF win transmits %v under an active NAV", kind)
		}
		if gap := now - busyEnd; gap < phy.DIFS {
			a.violate(id, Spacing, "DCF win transmits %v only %v after channel activity (want ≥ DIFS=%v)",
				kind, gap, phy.DIFS)
		}
		return
	}

	switch kind {
	case frame.KindCTS, frame.KindACK:
		// Always rx-elicited at +SIFS: no correct decode can land inside
		// the eliciting signal's SIFS shadow (it would have overlapped),
		// so both gaps are sound to enforce.
		if gap := now - ns.lastOkRxEnd; gap < phy.SIFS {
			a.violate(id, Spacing, "%v response only %v after a decoded frame (want ≥ SIFS=%v)",
				kind, gap, phy.SIFS)
		}
		fallthrough
	case frame.KindRAK, frame.KindData, frame.KindRTS:
		// Timer-scheduled steps (a BMMM RAK after an ACK timeout, a
		// follow-up RTS, SIFS-chained data) may legally follow an
		// unrelated reception closely, but never the node's own previous
		// transmission.
		if gap := now - ns.lastTxEnd; gap < phy.SIFS {
			a.violate(id, Spacing, "%v starts only %v after own transmission (want ≥ SIFS=%v)",
				kind, gap, phy.SIFS)
		}
		if kind == frame.KindData && frameDuration(f) == 0 && a.navOf(id) != nil {
			// Zero-Duration data is a one-shot broadcast; every such
			// transmission in the 802.11-family MACs is DCF-won and must
			// have been declared via Initiation.
			a.violate(id, Spacing, "broadcast data transmitted outside a declared DCF win")
		}
	}
}

func (a *Auditor) navOf(id int) NAVReporter {
	if id < len(a.navs) {
		return a.navs[id]
	}
	return nil
}

// ObsTxEnd implements phy.Observer.
func (a *Auditor) ObsTxEnd(r *phy.Radio, f frame.Frame) {
	now := a.eng.Now()
	id := r.ID()
	a.record(ringEvt{at: now, node: int32(id), kind: trace.TxEnd, subj: uint8(f.Kind())})
	a.node(id).lastTxEnd = now
}

// ObsTxAbort implements phy.Observer.
func (a *Auditor) ObsTxAbort(r *phy.Radio, f frame.Frame) {
	now := a.eng.Now()
	id := r.ID()
	a.record(ringEvt{at: now, node: int32(id), kind: trace.TxAbort, subj: uint8(f.Kind())})
	a.node(id).lastTxEnd = now
}

// ObsRxEnd implements phy.Observer.
func (a *Auditor) ObsRxEnd(r, src *phy.Radio, f frame.Frame, ok, sensed bool) {
	now := a.eng.Now()
	id := r.ID()
	k := trace.RxCorrupt
	if ok {
		k = trace.RxOK
	}
	a.record(ringEvt{at: now, node: int32(id), kind: k, subj: uint8(f.Kind())})
	ns := a.node(id)
	if sensed {
		ns.lastSensedEnd = now
	}
	if ok {
		ns.lastOkRxEnd = now
		if r.Transmitting() {
			a.violate(id, HalfDuplex, "decoded %v from node %d while transmitting", f.Kind(), src.ID())
		}
		if r.Down() {
			a.violate(id, HalfDuplex, "decoded %v from node %d while crashed", f.Kind(), src.ID())
		}
	}
}

// ObsToneSet implements phy.Observer.
func (a *Auditor) ObsToneSet(r *phy.Radio, t phy.Tone, on bool) {
	now := a.eng.Now()
	id := r.ID()
	k := trace.ToneOff
	if on {
		k = trace.ToneOn
	}
	a.record(ringEvt{at: now, node: int32(id), kind: k, isTone: true, subj: uint8(t)})
	ns := a.node(id)
	if r.OwnTone(t) == on {
		a.violate(id, ToneLifecycle, "tone %v set %v twice", t, on)
		return
	}
	if on {
		exps := &ns.expects[t]
		matched := false
		for i := range exps {
			if !exps[i].used && exps[i].at == now {
				exps[i].used = true
				ns.tonePulse[t] = exps[i].pulse
				matched = true
				break
			}
		}
		if !matched {
			a.violate(id, ToneLifecycle, "tone %v asserted outside any declared window", t)
			ns.tonePulse[t] = 0
		}
		ns.toneOnAt[t] = now
		return
	}
	held := now - ns.toneOnAt[t]
	if pulse := ns.tonePulse[t]; pulse > 0 {
		if held != pulse {
			a.violate(id, ToneLifecycle, "tone %v pulse lasted %v, declared %v", t, held, pulse)
		}
	} else if held > a.maxHold() {
		a.violate(id, ToneLifecycle, "tone %v held for %v (bound %v)", t, held, a.maxHold())
	}
}

// maxHold bounds an undeclared-pulse (RBT) assertion: the WfRData window
// plus one maximal data reception, with guard slack.
func (a *Auditor) maxHold() sim.Time {
	return phy.ToneWaitTimeout + a.cfg.MaxFrameAirtime + 100*sim.Microsecond
}

// ObsDown implements phy.Observer.
func (a *Auditor) ObsDown(r *phy.Radio, down bool) {
	now := a.eng.Now()
	id := r.ID()
	k := trace.NodeUp
	if down {
		k = trace.NodeDown
	}
	a.record(ringEvt{at: now, node: int32(id), kind: k, subj: subjNone})
}

// ---- quiesce checks ----

// Quiesce runs the end-of-run invariants. It is sound at any event
// boundary (the experiment harness chains it into Engine.QuiesceAudit, so
// it also runs on watchdog aborts and mid-horizon returns): the
// conservation identity holds between events, and both the stuck-backoff
// and leaked-tone predicates only fire on states no pending event can
// advance.
func (a *Auditor) Quiesce() {
	if a == nil {
		return
	}
	now := a.eng.Now()
	for _, r := range a.medium.Radios() {
		id := r.ID()
		ns := a.node(id)
		for t := phy.Tone(0); t < phy.NumTones; t++ {
			if !r.OwnTone(t) {
				continue
			}
			bound := ns.tonePulse[t]
			if bound == 0 {
				bound = a.maxHold()
			}
			if held := now - ns.toneOnAt[t]; held > bound {
				a.violate(id, ToneLifecycle, "tone %v still asserted at quiesce, held %v (bound %v)",
					t, held, bound)
			}
		}
		if cr := a.contention[id]; cr != nil {
			if wants, counting, gated, idle := cr.AuditContention(); wants && idle && !counting && !gated {
				a.violate(id, BackoffLegality,
					"backoff drawn and channel idle but no slot timer or gate armed: the draw is stuck")
			}
		}
		if pr := a.pendings[id]; pr != nil && a.macs[id] != nil {
			s := a.macs[id].Stats()
			queued, inFlight := pr.AuditPending()
			fl := uint64(0)
			if inFlight {
				fl = 1
			}
			done := s.ReliableDelivered + s.UnreliableSent + s.Drops
			if s.Enqueued != done+uint64(queued)+fl {
				a.violate(id, Conservation,
					"enqueued %d ≠ delivered %d + unreliable %d + dropped %d + queued %d + in-flight %d",
					s.Enqueued, s.ReliableDelivered, s.UnreliableSent, s.Drops, queued, fl)
			}
		}
	}
}
