// Package metrics is the simulator's telemetry core: atomic counters,
// gauges and fixed-bucket power-of-two histograms, grouped into labeled
// families backed by pre-registered dense arrays, collected in a Registry
// that renders itself in the Prometheus text exposition format (v0.0.4).
//
// The design contract is the same one the event kernel and the frame pool
// live by: nothing on a hot path allocates. Incrementing a counter,
// setting a gauge, or observing a histogram sample is a single atomic
// read-modify-write with no map lookup, no interface conversion and no
// allocation — label resolution happens once, at registration, when a
// family's cells are laid out as a dense array indexed by small integers
// the caller already has (a protocol enum, a frame kind, an endpoint
// constant). That keeps the ≤0.005 allocs/event steady-state gate intact
// with telemetry attached.
//
// Instrumentation is strictly observational. Metrics never schedule
// events, draw randomness, or otherwise participate in a simulation —
// the same passivity contract as internal/audit — so a run with metrics
// attached is bit-identical to the same seed without them.
//
// Metric names follow rmac_<subsystem>_<name>_<unit> (see CheckName);
// the Registry enforces the convention at registration time, so every
// exported series is lint-clean by construction.
package metrics

import (
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready
// to use. All methods are safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters only go up; deltas are unsigned by type.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value that can go up and down. The
// zero value is ready to use. All methods are safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d (negative deltas allowed).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram over non-negative integer samples
// (typically nanoseconds or bytes) with power-of-two bucket bounds:
// bucket i has upper bound 2^(minExp+i). Bucketing a sample is one
// bits.Len64 and two atomic adds — no allocation, no floating point.
//
// Samples are recorded in raw integer units; Scale converts them to the
// exposition's base unit at render time (1e-9 turns nanoseconds into the
// seconds Prometheus conventions require). Construct histograms through
// Registry.Histogram / Registry.HistogramVec.
type Histogram struct {
	minExp  int     // first bucket's upper bound is 1<<minExp
	scale   float64 // raw units → exposition units (e.g. 1e-9 for ns→s)
	count   atomic.Uint64
	sum     atomic.Uint64 // raw units
	buckets []atomic.Uint64
	// +Inf overflow is the last element of buckets.
}

func newHistogram(minExp, maxExp int, scale float64) *Histogram {
	if minExp < 0 || maxExp <= minExp || maxExp > 62 {
		panic("metrics: histogram needs 0 <= minExp < maxExp <= 62")
	}
	if scale <= 0 {
		panic("metrics: histogram scale must be positive")
	}
	return &Histogram{
		minExp: minExp,
		scale:  scale,
		// One bucket per bound in (minExp..maxExp], plus the first
		// (everything < 2^minExp) and the +Inf overflow.
		buckets: make([]atomic.Uint64, maxExp-minExp+2),
	}
}

// Observe records one sample in raw units. Negative samples clamp to
// zero (they land in the first bucket), so callers can feed raw timer
// deltas without branching.
func (h *Histogram) Observe(raw int64) {
	if raw < 0 {
		raw = 0
	}
	// le bounds are inclusive: v belongs in the first bucket with
	// v <= 2^(minExp+i), i.e. exponent bits.Len64(v-1) (an exact power of
	// two stays in its own bucket); anything past the last finite bound
	// overflows into +Inf.
	var i int
	if raw > 0 {
		i = bits.Len64(uint64(raw)-1) - h.minExp
	}
	if i < 0 {
		i = 0
	} else if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(raw))
}

// AddBucketSamples folds n pre-bucketed samples directly into bucket i
// (clamped to the bucket range), for merging externally aggregated
// power-of-two histograms — e.g. the per-shard stall-wait counts the
// sharded engine collects without touching the registry. The samples'
// raw sum is not known per bucket; account for it separately with
// AddToSum.
func (h *Histogram) AddBucketSamples(i int, n uint64) {
	if n == 0 {
		return
	}
	if i < 0 {
		i = 0
	} else if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i].Add(n)
	h.count.Add(n)
}

// AddToSum adds raw units to the histogram sum without recording samples;
// the counterpart of AddBucketSamples for externally aggregated data.
func (h *Histogram) AddToSum(raw uint64) { h.sum.Add(raw) }

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed samples in raw units.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// upperBound returns bucket i's upper bound in exposition units, with
// ok=false for the +Inf overflow bucket.
func (h *Histogram) upperBound(i int) (bound float64, ok bool) {
	if i >= len(h.buckets)-1 {
		return 0, false
	}
	return float64(uint64(1)<<(h.minExp+i)) * h.scale, true
}

// CounterVec is a labeled counter family backed by a dense cell array:
// cell i corresponds to the i-th label tuple passed at registration.
// At is a bounds-checked array index — no map, no hashing, no allocation.
type CounterVec struct {
	cells []Counter
}

// At returns the counter for the i-th registered label tuple.
func (v *CounterVec) At(i int) *Counter { return &v.cells[i] }

// Len returns the number of cells.
func (v *CounterVec) Len() int { return len(v.cells) }

// GaugeVec is a labeled gauge family; see CounterVec.
type GaugeVec struct {
	cells []Gauge
}

// At returns the gauge for the i-th registered label tuple.
func (v *GaugeVec) At(i int) *Gauge { return &v.cells[i] }

// Len returns the number of cells.
func (v *GaugeVec) Len() int { return len(v.cells) }

// HistogramVec is a labeled histogram family; see CounterVec.
type HistogramVec struct {
	cells []*Histogram
}

// At returns the histogram for the i-th registered label tuple.
func (v *HistogramVec) At(i int) *Histogram { return v.cells[i] }

// Len returns the number of cells.
func (v *HistogramVec) Len() int { return len(v.cells) }
