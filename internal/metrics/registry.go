package metrics

import (
	"fmt"
	"strings"
	"sync"
)

// Registry holds a set of metric families and renders them in the
// Prometheus text exposition format (expfmt.go). Registration validates
// every name against the repo's naming convention (CheckName) and panics
// on violations — a bad metric name is a programmer error on a cold
// path, exactly like scheduling into the past.
//
// Registration takes a lock; reads during rendering are atomic loads on
// the instruments themselves, so scraping never blocks incrementers.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

type metricType uint8

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric family: a type, a help string, label names,
// and one entry per label tuple (exactly one, unlabeled, for plain
// instruments).
type family struct {
	name   string
	help   string
	typ    metricType
	labels []string
	cells  []cell
}

// cell is one (label tuple, instrument) pair.
type cell struct {
	labelValues []string
	c           *Counter
	g           *Gauge
	h           *Histogram
}

// register validates and stores a family under r.mu.
func (r *Registry) register(f *family) {
	if err := CheckName(f.name, f.typ.String()); err != nil {
		panic("metrics: " + err.Error())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[f.name] != nil {
		panic("metrics: duplicate family " + f.name)
	}
	for _, c := range f.cells {
		if len(c.labelValues) != len(f.labels) {
			panic(fmt.Sprintf("metrics: %s: %d label values for %d label names",
				f.name, len(c.labelValues), len(f.labels)))
		}
	}
	r.byName[f.name] = f
	r.families = append(r.families, f)
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, typ: typeCounter,
		cells: []cell{{c: c}}})
	return c
}

// CounterVec registers a labeled counter family with one dense cell per
// label tuple in values; cell i is addressed as vec.At(i).
func (r *Registry) CounterVec(name, help string, labels []string, values [][]string) *CounterVec {
	v := &CounterVec{cells: make([]Counter, len(values))}
	f := &family{name: name, help: help, typ: typeCounter, labels: labels}
	for i := range values {
		f.cells = append(f.cells, cell{labelValues: values[i], c: &v.cells[i]})
	}
	r.register(f)
	return v
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, typ: typeGauge,
		cells: []cell{{g: g}}})
	return g
}

// GaugeVec registers a labeled gauge family; see CounterVec.
func (r *Registry) GaugeVec(name, help string, labels []string, values [][]string) *GaugeVec {
	v := &GaugeVec{cells: make([]Gauge, len(values))}
	f := &family{name: name, help: help, typ: typeGauge, labels: labels}
	for i := range values {
		f.cells = append(f.cells, cell{labelValues: values[i], g: &v.cells[i]})
	}
	r.register(f)
	return v
}

// Histogram registers an unlabeled power-of-two histogram whose bucket
// bounds are 2^minExp .. 2^maxExp in raw units, rendered multiplied by
// scale (1e-9 for nanosecond samples exposed in seconds).
func (r *Registry) Histogram(name, help string, minExp, maxExp int, scale float64) *Histogram {
	h := newHistogram(minExp, maxExp, scale)
	r.register(&family{name: name, help: help, typ: typeHistogram,
		cells: []cell{{h: h}}})
	return h
}

// HistogramVec registers a labeled histogram family; see Histogram and
// CounterVec.
func (r *Registry) HistogramVec(name, help string, minExp, maxExp int, scale float64, labels []string, values [][]string) *HistogramVec {
	v := &HistogramVec{cells: make([]*Histogram, len(values))}
	f := &family{name: name, help: help, typ: typeHistogram, labels: labels}
	for i := range values {
		v.cells[i] = newHistogram(minExp, maxExp, scale)
		f.cells = append(f.cells, cell{labelValues: values[i], h: v.cells[i]})
	}
	r.register(f)
	return v
}

// Names returns every registered family name in registration order; the
// name-convention lint and tests walk it.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f.name)
	}
	return out
}

// Subsystems a metric may belong to: the event kernel, the MAC protocol
// and experiment layer, and the sweep service.
var subsystems = map[string]bool{
	"kernel":  true,
	"proto":   true,
	"service": true,
}

// gaugeUnits are the unit suffixes a gauge (or the base name of a
// histogram) may carry. Counters always end in _total per Prometheus
// convention; the quantity they count is the segment before it.
var gaugeUnits = map[string]bool{
	"seconds": true, "bytes": true, "ratio": true, "bool": true,
	"events": true, "points": true, "frames": true, "packets": true,
	"workers": true, "jobs": true, "slots": true, "entries": true,
	"info": true,
}

// CheckName validates name against the repo convention
// rmac_<subsystem>_<name>_<unit>: all-lowercase snake case, a known
// subsystem, counters ending in _total, histograms in a Prometheus base
// unit (_seconds or _bytes), gauges in a unit from the documented set.
// typ is "counter", "gauge" or "histogram".
func CheckName(name, typ string) error {
	segs := strings.Split(name, "_")
	if len(segs) < 3 || segs[0] != "rmac" {
		return fmt.Errorf("%s: want rmac_<subsystem>_<name>_<unit>", name)
	}
	for _, s := range segs {
		if s == "" {
			return fmt.Errorf("%s: empty name segment", name)
		}
		for _, r := range s {
			if (r < 'a' || r > 'z') && (r < '0' || r > '9') {
				return fmt.Errorf("%s: name segments must be [a-z0-9]+", name)
			}
		}
	}
	if !subsystems[segs[1]] {
		return fmt.Errorf("%s: unknown subsystem %q (want kernel, proto, or service)", name, segs[1])
	}
	last := segs[len(segs)-1]
	switch typ {
	case "counter":
		if last != "total" {
			return fmt.Errorf("%s: counter names must end in _total", name)
		}
	case "histogram":
		if last != "seconds" && last != "bytes" {
			return fmt.Errorf("%s: histogram names must end in a base unit (_seconds or _bytes)", name)
		}
	case "gauge":
		if !gaugeUnits[last] {
			return fmt.Errorf("%s: gauge unit %q not in the documented unit set", name, last)
		}
	default:
		return fmt.Errorf("%s: unknown metric type %q", name, typ)
	}
	return nil
}
