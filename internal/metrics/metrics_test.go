package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rmac_kernel_events_total", "events")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	g := r.Gauge("rmac_service_queue_points", "queue depth")
	g.Set(7)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	// Bounds 2^4=16 .. 2^8=256 raw units, scale 1: buckets for <16, <32,
	// <64, <128, <256, +Inf.
	h := r.Histogram("rmac_service_journal_append_seconds", "t", 4, 8, 1)
	for _, v := range []int64{-5, 0, 15, 16, 31, 255, 256, 1 << 40} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	wantSum := uint64(0 + 0 + 15 + 16 + 31 + 255 + 256 + 1<<40)
	if h.Sum() != wantSum {
		t.Errorf("sum = %d, want %d", h.Sum(), wantSum)
	}
	// Per-bucket (non-cumulative) counts with inclusive le bounds:
	// ≤16: -5,0,15,16 → 4; ≤32: 31 → 1; ≤64,≤128: 0; ≤256: 255,256 → 2;
	// +Inf: 2^40 → 1.
	want := []uint64{4, 1, 0, 0, 2, 1}
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if bound, ok := h.upperBound(0); !ok || bound != 16 {
		t.Errorf("bound 0 = %v,%v want 16,true", bound, ok)
	}
	if _, ok := h.upperBound(len(h.buckets) - 1); ok {
		t.Error("last bucket should be +Inf")
	}
}

func TestVecDenseCells(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("rmac_proto_frames_tx_total", "tx by kind",
		[]string{"kind"}, [][]string{{"MRTS"}, {"RDATA"}, {"ACK"}})
	v.At(0).Add(10)
	v.At(2).Inc()
	if v.Len() != 3 || v.At(0).Value() != 10 || v.At(1).Value() != 0 || v.At(2).Value() != 1 {
		t.Errorf("vec cells wrong: %d %d %d", v.At(0).Value(), v.At(1).Value(), v.At(2).Value())
	}
}

// TestVecConcurrency hammers one labeled family from many goroutines;
// run under -race this is the data-race gate for the dense-cell design.
func TestVecConcurrency(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("rmac_service_points_total", "outcomes",
		[]string{"outcome"}, [][]string{{"done"}, {"retried"}, {"quarantined"}})
	h := r.HistogramVec("rmac_service_point_seconds", "latency", 10, 30, 1e-9,
		[]string{"protocol"}, [][]string{{"RMAC"}, {"BMMM"}})
	g := r.Gauge("rmac_service_queue_points", "depth")
	const workers, iters = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				v.At(w % 3).Inc()
				h.At(w % 2).Observe(int64(i))
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	// Scrape concurrently with the writers.
	var sb strings.Builder
	for i := 0; i < 50; i++ {
		sb.Reset()
		if _, err := r.WriteTo(&sb); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	var total uint64
	for i := 0; i < v.Len(); i++ {
		total += v.At(i).Value()
	}
	if total != workers*iters {
		t.Errorf("counter total = %d, want %d", total, workers*iters)
	}
	if got := h.At(0).Count() + h.At(1).Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
}

// TestHotPathAllocs is the telemetry analogue of the experiment layer's
// TestSteadyStateAllocs: incrementing counters, moving gauges and
// observing histogram samples — labeled or not — must not allocate.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rmac_kernel_events_total", "events")
	g := r.Gauge("rmac_service_queue_points", "depth")
	h := r.Histogram("rmac_service_journal_append_seconds", "t", 10, 32, 1e-9)
	v := r.CounterVec("rmac_proto_drops_total", "drops",
		[]string{"protocol"}, [][]string{{"RMAC"}, {"BMMM"}})
	hv := r.HistogramVec("rmac_service_point_seconds", "latency", 20, 38, 1e-9,
		[]string{"protocol"}, [][]string{{"RMAC"}})
	var i int64
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(i)
		g.Add(-1)
		h.Observe(i * 997)
		v.At(int(i) & 1).Inc()
		hv.At(0).Observe(i)
		i++
	})
	if allocs != 0 {
		t.Errorf("hot path allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestCheckName(t *testing.T) {
	valid := []struct{ name, typ string }{
		{"rmac_kernel_events_total", "counter"},
		{"rmac_proto_frames_tx_total", "counter"},
		{"rmac_service_point_seconds", "histogram"},
		{"rmac_service_queue_points", "gauge"},
		{"rmac_kernel_arena_slots", "gauge"},
	}
	for _, v := range valid {
		if err := CheckName(v.name, v.typ); err != nil {
			t.Errorf("CheckName(%q, %s) = %v, want nil", v.name, v.typ, err)
		}
	}
	invalid := []struct{ name, typ string }{
		{"events_total", "counter"},                // no rmac_ prefix
		{"rmac_total", "counter"},                  // too few segments
		{"rmac_widget_events_total", "counter"},    // unknown subsystem
		{"rmac_kernel_events", "counter"},          // counter without _total
		{"rmac_service_point_millis", "histogram"}, // non-base unit
		{"rmac_service_queue_depth", "gauge"},      // unit not in set
		{"rmac_kernel_Events_total", "counter"},    // uppercase
		{"rmac_kernel__events_total", "counter"},   // empty segment
		{"rmac_kernel_events_total", "exotic"},     // unknown type
	}
	for _, v := range invalid {
		if err := CheckName(v.name, v.typ); err == nil {
			t.Errorf("CheckName(%q, %s) = nil, want error", v.name, v.typ)
		}
	}
}

func TestRegistryPanicsOnBadRegistration(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("bad name", func() { NewRegistry().Counter("bogus", "x") })
	mustPanic("duplicate", func() {
		r := NewRegistry()
		r.Counter("rmac_kernel_events_total", "x")
		r.Counter("rmac_kernel_events_total", "x")
	})
	mustPanic("label arity", func() {
		NewRegistry().CounterVec("rmac_proto_drops_total", "x",
			[]string{"a", "b"}, [][]string{{"only-one"}})
	})
	mustPanic("histogram exponents", func() {
		NewRegistry().Histogram("rmac_service_point_seconds", "x", 9, 9, 1e-9)
	})
}
