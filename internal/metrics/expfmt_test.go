package metrics

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata golden files")

// goldenRegistry builds a registry exercising every family shape the
// encoder renders: plain and labeled counters/gauges, plain and labeled
// histograms, and escaping in help text and label values.
func goldenRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("rmac_kernel_events_total", "Events dispatched by the engine.")
	c.Add(1234567)

	g := r.Gauge("rmac_service_queue_points", "Admitted, non-terminal grid points.")
	g.Set(-3)

	v := r.CounterVec("rmac_proto_frames_tx_total",
		"Frames transmitted by kind.\nSecond help line with back\\slash.",
		[]string{"protocol", "kind"},
		[][]string{{"RMAC", "MRTS"}, {"RMAC", `odd"kind`}, {"802.11", "DATA"}})
	v.At(0).Add(10)
	v.At(1).Add(2)

	h := r.Histogram("rmac_service_journal_append_seconds",
		"Journal append+flush latency.", 10, 14, 1e-9)
	for _, ns := range []int64{500, 1024, 3000, 20000, 1 << 20} {
		h.Observe(ns)
	}

	hv := r.HistogramVec("rmac_service_point_seconds",
		"Grid point wall-clock run time.", 20, 22, 1e-9,
		[]string{"protocol"}, [][]string{{"RMAC"}, {"BMMM"}})
	hv.At(0).Observe(1 << 21)
	hv.At(1).Observe(1)
	return r
}

func TestWriteToGolden(t *testing.T) {
	var sb strings.Builder
	n, err := goldenRegistry().WriteTo(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(sb.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, sb.Len())
	}
	path := filepath.Join("testdata", "golden.prom")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if sb.String() != string(want) {
		t.Errorf("exposition differs from golden file.\n--- got ---\n%s\n--- want ---\n%s",
			sb.String(), want)
	}
}

// TestExpositionWellFormed spot-checks structural properties promtool
// would: every sample line's name appears after a TYPE line, histogram
// cumulative buckets are monotone and end at _count, and HELP/TYPE come
// exactly once per family.
func TestExpositionWellFormed(t *testing.T) {
	var sb strings.Builder
	if _, err := goldenRegistry().WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	helps := map[string]int{}
	types := map[string]int{}
	for _, ln := range lines {
		switch {
		case strings.HasPrefix(ln, "# HELP "):
			helps[strings.Fields(ln)[2]]++
		case strings.HasPrefix(ln, "# TYPE "):
			types[strings.Fields(ln)[2]]++
		case ln == "":
			t.Error("blank line in exposition")
		default:
			fields := strings.Fields(ln)
			if len(fields) != 2 {
				t.Errorf("sample line %q: want 'name value'", ln)
			}
		}
	}
	for name, n := range helps {
		if n != 1 || types[name] != 1 {
			t.Errorf("family %s: %d HELP, %d TYPE lines", name, n, types[name])
		}
	}
	// Histogram invariant: the +Inf bucket equals the _count sample.
	got := sb.String()
	if !strings.Contains(got, `rmac_service_journal_append_seconds_bucket{le="+Inf"} 5`) {
		t.Error("missing +Inf bucket for journal histogram")
	}
	if !strings.Contains(got, "rmac_service_journal_append_seconds_count 5") {
		t.Error("missing _count for journal histogram")
	}
}
