package metrics

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// ContentType is the HTTP Content-Type of the text exposition format this
// package renders.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteTo renders every registered family in the Prometheus text
// exposition format v0.0.4, in registration order (deterministic, so
// golden tests can diff the output byte for byte). It implements
// io.WriterTo.
//
// Rendering reads the instruments with atomic loads; it never blocks an
// incrementer. A family's bucket/count/sum lines are each individually
// consistent but, like every Prometheus client, not a point-in-time
// snapshot of the whole registry.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	families := make([]*family, len(r.families))
	copy(families, r.families)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}
	for _, f := range families {
		cw.str("# HELP ")
		cw.str(f.name)
		cw.str(" ")
		cw.str(escapeHelp(f.help))
		cw.str("\n# TYPE ")
		cw.str(f.name)
		cw.str(" ")
		cw.str(f.typ.String())
		cw.str("\n")
		for i := range f.cells {
			c := &f.cells[i]
			switch f.typ {
			case typeCounter:
				cw.sample(f.name, "", f.labels, c.labelValues, "", "")
				cw.uint(c.c.Value())
				cw.str("\n")
			case typeGauge:
				cw.sample(f.name, "", f.labels, c.labelValues, "", "")
				cw.int(c.g.Value())
				cw.str("\n")
			case typeHistogram:
				cw.histogram(f, c)
			}
		}
	}
	if err := bw.Flush(); cw.err == nil {
		cw.err = err
	}
	return cw.n, cw.err
}

// histogram renders one histogram cell: cumulative _bucket series with
// le bounds, then _sum and _count.
func (cw *countWriter) histogram(f *family, c *cell) {
	h := c.h
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if bound, ok := h.upperBound(i); ok {
			le = formatFloat(bound)
		}
		cw.sample(f.name, "_bucket", f.labels, c.labelValues, "le", le)
		cw.uint(cum)
		cw.str("\n")
	}
	cw.sample(f.name, "_sum", f.labels, c.labelValues, "", "")
	cw.str(formatFloat(float64(h.Sum()) * h.scale))
	cw.str("\n")
	cw.sample(f.name, "_count", f.labels, c.labelValues, "", "")
	cw.uint(h.Count())
	cw.str("\n")
}

// sample writes `name[suffix]{labels...,extraK="extraV"} ` up to and
// including the separating space.
func (cw *countWriter) sample(name, suffix string, labels, values []string, extraK, extraV string) {
	cw.str(name)
	cw.str(suffix)
	if len(labels) > 0 || extraK != "" {
		cw.str("{")
		for i, l := range labels {
			if i > 0 {
				cw.str(",")
			}
			cw.str(l)
			cw.str(`="`)
			cw.str(escapeLabel(values[i]))
			cw.str(`"`)
		}
		if extraK != "" {
			if len(labels) > 0 {
				cw.str(",")
			}
			cw.str(extraK)
			cw.str(`="`)
			cw.str(extraV)
			cw.str(`"`)
		}
		cw.str("}")
	}
	cw.str(" ")
}

// countWriter tracks bytes written and sticks on the first error.
type countWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (cw *countWriter) str(s string) {
	if cw.err != nil {
		return
	}
	n, err := io.WriteString(cw.w, s)
	cw.n += int64(n)
	cw.err = err
}

func (cw *countWriter) uint(v uint64) { cw.str(strconv.FormatUint(v, 10)) }
func (cw *countWriter) int(v int64)   { cw.str(strconv.FormatInt(v, 10)) }

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslash, double quote and newline in a label
// value.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
