package experiment

import (
	"encoding/json"
	"strings"
	"testing"

	"rmac/internal/geom"
	"rmac/internal/sim"
)

func TestRunLBPAndMXThroughHarness(t *testing.T) {
	for _, p := range []Protocol{LBP, MX} {
		cfg := smallConfig()
		cfg.Protocol = p
		cfg.Packets = 30
		res := Run(cfg)
		if res.Delivery < 0.7 {
			t.Fatalf("%v delivery = %.3f", p, res.Delivery)
		}
		if res.MRTSLens.N() != 0 {
			t.Fatalf("%v recorded MRTS lengths", p)
		}
	}
}

// TestBERDegradesDelivery injects channel noise: with BER=1e-4 a 522-byte
// frame fails ~34% of the time, so retransmissions must rise sharply while
// RMAC still recovers most packets.
func TestBERDegradesDelivery(t *testing.T) {
	clean := smallConfig()
	clean.Packets = 40
	noisy := clean
	noisy.Phy.BER = 1e-4

	cr := Run(clean)
	nr := Run(noisy)
	if nr.AvgRetxRatio <= cr.AvgRetxRatio {
		t.Fatalf("BER did not raise retransmissions: %.3f vs %.3f", nr.AvgRetxRatio, cr.AvgRetxRatio)
	}
	if nr.Delivery < 0.6 {
		t.Fatalf("RMAC under BER 1e-4 delivered only %.3f", nr.Delivery)
	}
	if nr.Delivery > cr.Delivery {
		t.Fatal("noise improved delivery?!")
	}
}

func TestTraceCapture(t *testing.T) {
	cfg := smallConfig()
	cfg.Packets = 5
	cfg.TraceCap = 256
	res := Run(cfg)
	if res.Trace == nil {
		t.Fatal("no trace recorded")
	}
	if res.Trace.Total() == 0 || res.Trace.Len() == 0 {
		t.Fatal("trace empty")
	}
	out := res.Trace.Render()
	if !strings.Contains(out, "MRTS") && !strings.Contains(out, "UDATA") {
		t.Fatalf("trace lacks frames:\n%.400s", out)
	}
	// Untraced runs stay nil.
	cfg.TraceCap = 0
	if Run(cfg).Trace != nil {
		t.Fatal("trace present without TraceCap")
	}
}

func TestWriteJSON(t *testing.T) {
	pts := []Point{
		{Protocol: RMAC, Scenario: Stationary, Rate: 20, Delivery: 0.99},
		{Protocol: BMMM, Scenario: Speed1, Rate: 40, Delivery: 0.5},
	}
	var sb strings.Builder
	if err := WriteJSON(&sb, pts); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(decoded) != 2 {
		t.Fatalf("rows = %d", len(decoded))
	}
	if decoded[0]["protocol"] != "RMAC" || decoded[0]["delivery"] != 0.99 {
		t.Fatalf("row 0 = %v", decoded[0])
	}
	if decoded[1]["scenario"] != "speed1" {
		t.Fatalf("row 1 = %v", decoded[1])
	}
}

// TestLargeNetworkWithGrid runs a 150-node simulation (grid-indexed PHY)
// end to end.
func TestLargeNetworkWithGrid(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 150
	cfg.Field = geom.Rect{W: 700, H: 420}
	cfg.Rate = 10
	cfg.Packets = 20
	cfg.Warmup = 8 * sim.Second
	res := Run(cfg)
	if res.Delivery < 0.9 {
		t.Fatalf("150-node delivery = %.3f", res.Delivery)
	}
	if res.Tree.Reachable != 150 {
		t.Fatalf("tree reaches %d/150", res.Tree.Reachable)
	}
}

// TestPropertyHarnessInvariants: random small configurations always
// produce sane measurements.
func TestPropertyHarnessInvariants(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		cfg := DefaultConfig()
		cfg.Nodes = 10 + int(seed)*3
		cfg.Field = geom.Rect{W: 200 + float64(seed)*30, H: 150}
		cfg.Protocol = Protocol(seed % 5)
		cfg.Scenario = Scenario(seed % 3)
		cfg.Rate = float64(5 + seed*7)
		cfg.Packets = 25
		cfg.Seed = seed
		res := Run(cfg)
		if res.Delivery < 0 || res.Delivery > 1 {
			t.Fatalf("seed %d: delivery %v out of range", seed, res.Delivery)
		}
		supposed := res.Metrics.Generated * uint64(cfg.Nodes-1)
		if res.Metrics.Receptions > supposed {
			t.Fatalf("seed %d: receptions %d exceed supposed %d", seed, res.Metrics.Receptions, supposed)
		}
		if res.Metrics.Generated != uint64(cfg.Packets) {
			t.Fatalf("seed %d: generated %d", seed, res.Metrics.Generated)
		}
		if res.AvgDropRatio < 0 || res.AvgDropRatio > 1 {
			t.Fatalf("seed %d: drop ratio %v", seed, res.AvgDropRatio)
		}
		if res.AvgDelay < 0 {
			t.Fatalf("seed %d: negative delay", seed)
		}
	}
}
