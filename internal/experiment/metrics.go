package experiment

// This file is the kernel/protocol half of the telemetry layer (DESIGN.md
// §13): it lays simulation results out as metric families. The wiring is
// strictly post-run — a simulation is never instrumented while events are
// dispatching; its existing counters (mac.Stats, phy.MediumStats,
// frame.PoolStats, sim.TimerStats, the audit per-class counts) are folded
// into the registry after the engine quiesces. Metrics therefore observe
// runs but never participate in them: determinism and the steady-state
// allocation gate are untouched by construction.
//
// Two front ends share this vocabulary: `rmacsim -metrics` dumps one
// run's registry at end of run, and rmacserved folds every completed grid
// point into the same families — so batch runs and the service speak one
// telemetry language.

import (
	"rmac/internal/audit"
	"rmac/internal/metrics"
	"rmac/internal/sim"
	"rmac/internal/trace"
)

// mediumKinds maps the medium's channel-level counters onto the shared
// trace-kind vocabulary (trace.KindName — the same dense name table the
// trace ring and the auditor's context ring render with). Index i of the
// rmac_kernel_medium_events_total family is mediumKinds[i].
var mediumKinds = [...]trace.Kind{
	trace.TxStart, trace.TxAbort, trace.RxOK, trace.RxCorrupt,
	trace.ToneOn, trace.NodeDown,
}

// RunMetrics is the set of kernel- and protocol-level metric families a
// simulation run reports into. Protocol-labeled families are dense over
// Protocols (indexed by the Protocol enum); class-labeled families are
// dense over audit.Class and the sim timer-census classes.
type RunMetrics struct {
	// Kernel.
	Events         *metrics.Counter
	WatchdogAborts *metrics.Counter
	MediumEvents   *metrics.CounterVec // by trace kind; see mediumKinds
	FrameAcquired  *metrics.Counter
	FrameAllocated *metrics.Counter
	FrameReleased  *metrics.Counter
	TimerPlaced    *metrics.CounterVec // by wheel placement class
	TimerCancelled *metrics.CounterVec // by cancel location

	// Protocol / experiment, labeled by protocol.
	Enqueued        *metrics.CounterVec
	QueueDrops      *metrics.CounterVec
	ReliableTx      *metrics.CounterVec
	ReliableDeliv   *metrics.CounterVec
	Retransmissions *metrics.CounterVec
	Drops           *metrics.CounterVec
	UnreliableSent  *metrics.CounterVec
	MRTSSent        *metrics.CounterVec
	MRTSAborted     *metrics.CounterVec
	ABTSent         *metrics.CounterVec
	Generated       *metrics.CounterVec
	Receptions      *metrics.CounterVec
	Duplicates      *metrics.CounterVec
	Runs            *metrics.CounterVec

	// Sharded engine (populated only by Shards > 1 runs).
	ShardWindows   *metrics.Counter
	ShardMessages  *metrics.CounterVec // by direction (out/in over the conduit)
	ShardStalls    *metrics.Counter
	ShardStallWait *metrics.Histogram
	ShardEpochs    *metrics.Counter
	ShardGhosts    *metrics.CounterVec // by op (add/del of border-band ghost radios)

	// Audit, labeled by invariant class.
	Violations *metrics.CounterVec
}

// shardStallMinExp aligns the stall-wait histogram's buckets with the
// power-of-two nanosecond buckets of ShardRunStats.StallHist: exposition
// bucket i covers waits ≤ 2^(shardStallMinExp+i) ns, so StallHist bucket b
// folds into exposition bucket b - shardStallMinExp.
const shardStallMinExp = 10 // 1 µs first bucket … ~17 s last finite bound

// protocolCells returns the dense {protocol} label tuples.
func protocolCells() [][]string {
	cells := make([][]string, len(Protocols))
	for i, p := range Protocols {
		cells[i] = []string{p.String()}
	}
	return cells
}

// NewRunMetrics registers the kernel and protocol families on r. One
// RunMetrics can absorb many runs (AddRun): the service keeps a single
// instance for its whole lifetime, the batch CLI one per process.
func NewRunMetrics(r *metrics.Registry) *RunMetrics {
	proto := []string{"protocol"}
	pc := protocolCells()
	pvec := func(name, help string) *metrics.CounterVec {
		return r.CounterVec(name, help, proto, pc)
	}

	kindCells := make([][]string, len(mediumKinds))
	for i, k := range mediumKinds {
		kindCells[i] = []string{trace.KindName(k)}
	}
	placeCells := make([][]string, sim.NumPlaceClasses)
	for i := range placeCells {
		placeCells[i] = []string{sim.PlaceClassLabel(i)}
	}
	cancelCells := make([][]string, sim.NumCancelClasses)
	for i := range cancelCells {
		cancelCells[i] = []string{sim.CancelClassLabel(i)}
	}
	classCells := make([][]string, audit.NumClasses)
	for i := range classCells {
		classCells[i] = []string{audit.Class(i).String()}
	}

	return &RunMetrics{
		Events:         r.Counter("rmac_kernel_events_total", "Simulation events dispatched by the engine."),
		WatchdogAborts: r.Counter("rmac_kernel_watchdog_aborts_total", "Runs stopped by the engine watchdog or cooperative cancellation."),
		MediumEvents: r.CounterVec("rmac_kernel_medium_events_total",
			"Channel-level medium events by trace kind (TX starts, aborts, decoded and corrupt receptions, tone activations, radio crashes).",
			[]string{"kind"}, kindCells),
		FrameAcquired:  r.Counter("rmac_kernel_frame_acquired_total", "Frames taken from the per-kind frame pools."),
		FrameAllocated: r.Counter("rmac_kernel_frame_allocated_total", "Frame-pool acquires that missed the free list and hit the Go allocator."),
		FrameReleased:  r.Counter("rmac_kernel_frame_released_total", "Frames returned to the per-kind frame pools."),
		TimerPlaced: r.CounterVec("rmac_kernel_timer_scheduled_total",
			"Timer census: schedules by placement (frontier-due heap, wheel level 0/1, heap overflow). Populated when the timer census is enabled.",
			[]string{"placement"}, placeCells),
		TimerCancelled: r.CounterVec("rmac_kernel_timer_cancelled_total",
			"Timer census: cancels by where the event was found (wheel O(1) unlink vs heap removal). Populated when the timer census is enabled.",
			[]string{"location"}, cancelCells),

		Enqueued:        pvec("rmac_proto_enqueued_total", "Packets accepted into MAC queues."),
		QueueDrops:      pvec("rmac_proto_queue_drops_total", "Packets rejected on a full MAC queue."),
		ReliableTx:      pvec("rmac_proto_reliable_tx_total", "Reliable packets whose transmission began."),
		ReliableDeliv:   pvec("rmac_proto_reliable_delivered_total", "Reliable packets fully acknowledged."),
		Retransmissions: pvec("rmac_proto_retransmissions_total", "Retransmission cycles beyond each first attempt."),
		Drops:           pvec("rmac_proto_drops_total", "Packets dropped at the MAC retry limit."),
		UnreliableSent:  pvec("rmac_proto_unreliable_sent_total", "Unreliable-service packets sent."),
		MRTSSent:        pvec("rmac_proto_mrts_sent_total", "RMAC MRTS transmissions started (aborted ones included)."),
		MRTSAborted:     pvec("rmac_proto_mrts_aborted_total", "RMAC MRTS transmissions aborted on RBT detection."),
		ABTSent:         pvec("rmac_proto_abt_sent_total", "RMAC acknowledgment busy tones emitted."),
		Generated:       pvec("rmac_proto_generated_total", "Application packets generated by the multicast source."),
		Receptions:      pvec("rmac_proto_receptions_total", "Unique application-level deliveries."),
		Duplicates:      pvec("rmac_proto_duplicates_total", "Suppressed duplicate application deliveries."),
		Runs:            pvec("rmac_proto_runs_total", "Completed simulation runs folded into these families."),

		ShardWindows: r.Counter("rmac_kernel_shard_windows_total",
			"Frontier windows executed by sharded-engine runs, summed over shards."),
		ShardMessages: r.CounterVec("rmac_kernel_shard_messages_total",
			"Cross-shard border messages over the conduit rings, by direction.",
			[]string{"direction"}, [][]string{{"out"}, {"in"}}),
		ShardStalls: r.Counter("rmac_kernel_shard_stalls_total",
			"Frontier-barrier waits entered by sharded-engine runs."),
		ShardStallWait: r.Histogram("rmac_kernel_shard_stall_wait_seconds",
			"Wall-clock time per frontier-barrier wait (sharded-engine runs).",
			shardStallMinExp, 34, 1e-9),
		ShardEpochs: r.Counter("rmac_kernel_shard_epoch_rollovers_total",
			"Mobility epoch boundaries crossed by sharded-engine runs, summed over shards."),
		ShardGhosts: r.CounterVec("rmac_kernel_shard_epoch_ghosts_total",
			"Border-band ghost radio installs and removals at epoch rebuilds.",
			[]string{"op"}, [][]string{{"add"}, {"del"}}),

		Violations: r.CounterVec("rmac_proto_audit_violations_total",
			"Protocol-invariant auditor violations by invariant class.",
			[]string{"class"}, classCells),
	}
}

// AddRun folds one completed run into the families; callers pass every
// RunResult exactly once.
func (m *RunMetrics) AddRun(res *RunResult) {
	m.AddTotals(int(res.Config.Protocol), res.Events, res.Aborted, &res.Totals, res.TimerStats)
	for i := range res.Shards {
		ss := &res.Shards[i]
		m.ShardWindows.Add(ss.Windows)
		m.ShardMessages.At(0).Add(ss.MsgsOut)
		m.ShardMessages.At(1).Add(ss.MsgsIn)
		m.ShardStalls.Add(ss.Stalls)
		for b, n := range ss.StallHist {
			m.ShardStallWait.AddBucketSamples(b-shardStallMinExp, n)
		}
		m.ShardStallWait.AddToSum(uint64(ss.StallWall.Nanoseconds()))
		m.ShardEpochs.Add(ss.Epochs)
		m.ShardGhosts.At(0).Add(ss.GhostAdds)
		m.ShardGhosts.At(1).Add(ss.GhostDels)
	}
}

// AddTotals is AddRun over the wire form: the sweep service journals
// only (protocol, events, aborted, RunTotals) per grid point, and replays
// those through here so its counters stay monotone across restarts. ts
// may be nil (the census is off in served runs).
func (m *RunMetrics) AddTotals(p int, events uint64, aborted bool, t *RunTotals, ts *sim.TimerStats) {
	if p < 0 || p >= len(Protocols) {
		return
	}

	m.Events.Add(events)
	if aborted {
		m.WatchdogAborts.Inc()
	}
	m.MediumEvents.At(0).Add(t.Medium.Transmissions)
	m.MediumEvents.At(1).Add(t.Medium.Aborts)
	m.MediumEvents.At(2).Add(t.Medium.FramesDecoded)
	m.MediumEvents.At(3).Add(t.Medium.FramesCorrupt)
	m.MediumEvents.At(4).Add(t.Medium.ToneActivation)
	m.MediumEvents.At(5).Add(t.Medium.Crashes)
	m.FrameAcquired.Add(t.FramePool.Acquired)
	m.FrameAllocated.Add(t.FramePool.Allocated)
	m.FrameReleased.Add(t.FramePool.Released)
	if ts != nil {
		for i, n := range ts.Placed {
			m.TimerPlaced.At(i).Add(n)
		}
		for i, n := range ts.CancelledIn {
			m.TimerCancelled.At(i).Add(n)
		}
	}

	m.Enqueued.At(p).Add(t.Enqueued)
	m.QueueDrops.At(p).Add(t.QueueDrops)
	m.ReliableTx.At(p).Add(t.ReliableToTransmit)
	m.ReliableDeliv.At(p).Add(t.ReliableDelivered)
	m.Retransmissions.At(p).Add(t.Retransmissions)
	m.Drops.At(p).Add(t.Drops)
	m.UnreliableSent.At(p).Add(t.UnreliableSent)
	m.MRTSSent.At(p).Add(t.MRTSSent)
	m.MRTSAborted.At(p).Add(t.MRTSAborted)
	m.ABTSent.At(p).Add(t.ABTSent)
	m.Generated.At(p).Add(t.Generated)
	m.Receptions.At(p).Add(t.Receptions)
	m.Duplicates.At(p).Add(t.Duplicates)
	m.Runs.At(p).Inc()

	for i, n := range t.ViolationsByClass {
		m.Violations.At(i).Add(n)
	}
}

// MetricsRegistry renders one finished run as a standalone registry: the
// shared kernel/protocol families plus the run-scoped occupancy gauges.
// It is what `rmacsim -metrics <file>` writes out.
func MetricsRegistry(res *RunResult) *metrics.Registry {
	r := metrics.NewRegistry()
	rm := NewRunMetrics(r)
	rm.AddRun(res)

	arenaCap := r.Gauge("rmac_kernel_arena_slots", "Event-arena slots grown (high-water mark of simultaneously queued events).")
	arenaLive := r.Gauge("rmac_kernel_arena_live_slots", "Event-arena slots still queued at collection time.")
	frameLive := r.Gauge("rmac_kernel_frame_live_frames", "Frames acquired and not yet released at collection time.")
	arenaCap.Set(int64(res.Totals.ArenaCap))
	arenaLive.Set(int64(res.Totals.ArenaLive))
	frameLive.Set(int64(res.Totals.FramePool.Live))
	return r
}
