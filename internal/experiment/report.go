package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// pointsFor filters sweep points for one figure panel (scenario +
// protocol), ordered by rate as produced by RunSweep.
func pointsFor(points []Point, sc Scenario, p Protocol) []Point {
	var out []Point
	for _, pt := range points {
		if pt.Scenario == sc && pt.Protocol == p {
			out = append(out, pt)
		}
	}
	return out
}

// WriteFigureTable renders one figure as the paper's three panels
// ((a) stationary, (b) speed 1, (c) speed 2), one row per source rate.
func WriteFigureTable(w io.Writer, fig Figure, points []Point, scenarios []Scenario) {
	fmt.Fprintf(w, "== %s: %s ==\n", strings.ToUpper(fig.ID), fig.Title)
	for _, sc := range scenarios {
		fmt.Fprintf(w, "-- %v --\n", sc)
		if fig.Summary != nil {
			fmt.Fprintf(w, "%10s  %12s %12s %12s\n", "rate", "average", "99pct", "max")
			for _, pt := range pointsFor(points, sc, fig.Protocols[0]) {
				avg, p99, max := fig.Summary(pt)
				fmt.Fprintf(w, "%10.0f  %12.4f %12.4f %12.4f\n", pt.Rate, avg, p99, max)
			}
			continue
		}
		fmt.Fprintf(w, "%10s", "rate")
		for _, p := range fig.Protocols {
			fmt.Fprintf(w, " %12s", p)
		}
		fmt.Fprintln(w)
		rmacPts := pointsFor(points, sc, fig.Protocols[0])
		for i, pt := range rmacPts {
			fmt.Fprintf(w, "%10.0f", pt.Rate)
			for _, p := range fig.Protocols {
				pp := pointsFor(points, sc, p)
				if i < len(pp) {
					fmt.Fprintf(w, " %12.4f", fig.Value(pp[i]))
				}
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w)
}

// jsonPoint is the stable machine-readable projection of a Point.
type jsonPoint struct {
	Protocol string  `json:"protocol"`
	Scenario string  `json:"scenario"`
	Rate     float64 `json:"rate"`
	Runs     int     `json:"runs"`

	Delivery float64 `json:"delivery"`
	Drop     float64 `json:"drop"`
	Retx     float64 `json:"retx"`
	Overhead float64 `json:"overhead"`
	DelaySec float64 `json:"delay_s"`

	DeliveryStd float64 `json:"delivery_std"`
	DelayStd    float64 `json:"delay_std"`

	MRTSAvg  float64 `json:"mrts_avg_bytes"`
	MRTSP99  float64 `json:"mrts_p99_bytes"`
	MRTSMax  float64 `json:"mrts_max_bytes"`
	AbortAvg float64 `json:"abort_avg"`
	AbortP99 float64 `json:"abort_p99"`
	AbortMax float64 `json:"abort_max"`
}

// WriteJSON emits sweep points as a JSON array for external tooling.
func WriteJSON(w io.Writer, points []Point) error {
	out := make([]jsonPoint, 0, len(points))
	for _, p := range points {
		out = append(out, jsonPoint{
			Protocol:    p.Protocol.String(),
			Scenario:    p.Scenario.String(),
			Rate:        p.Rate,
			Runs:        len(p.Runs),
			Delivery:    p.Delivery,
			Drop:        p.AvgDropRatio,
			Retx:        p.AvgRetxRatio,
			Overhead:    p.AvgOverheadRatio,
			DelaySec:    p.AvgDelay,
			DeliveryStd: p.DeliveryStd,
			DelayStd:    p.DelayStd,
			MRTSAvg:     p.MRTSLens.Mean,
			MRTSP99:     p.MRTSLens.P99,
			MRTSMax:     p.MRTSLens.Max,
			AbortAvg:    p.AbortRatios.Mean,
			AbortP99:    p.AbortRatios.P99,
			AbortMax:    p.AbortRatios.Max,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteCSV emits every point of a sweep as one CSV with a header, for
// external plotting.
func WriteCSV(w io.Writer, points []Point) error {
	if _, err := fmt.Fprintln(w, "protocol,scenario,rate,delivery,delivery_std,drop,retx,overhead,delay_s,delay_std,mrts_avg,mrts_p99,mrts_max,abort_avg,abort_p99,abort_max,runs"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%v,%v,%g,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.2f,%.2f,%.2f,%.6f,%.6f,%.6f,%d\n",
			p.Protocol, p.Scenario, p.Rate,
			p.Delivery, p.DeliveryStd, p.AvgDropRatio, p.AvgRetxRatio, p.AvgOverheadRatio, p.AvgDelay, p.DelayStd,
			p.MRTSLens.Mean, p.MRTSLens.P99, p.MRTSLens.Max,
			p.AbortRatios.Mean, p.AbortRatios.P99, p.AbortRatios.Max,
			len(p.Runs)); err != nil {
			return err
		}
	}
	return nil
}
