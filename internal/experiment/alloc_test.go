package experiment

import (
	"runtime"
	"testing"

	"rmac/internal/geom"
	"rmac/internal/sim"
)

// TestSteadyStateAllocs is the allocation regression gate for the pooled
// frame lifecycle (DESIGN.md §9): once a network is warmed up — pools
// populated, topology converged, queues in steady state — driving the
// simulation forward must allocate (almost) nothing per event. The
// tolerated residue covers genuinely unbounded bookkeeping: the app-level
// duplicate-suppression map and the MRTS length sample both grow with
// unique packets, amortizing to well under one allocation per hundred
// events. A regression that re-introduces per-frame or per-timer garbage
// shows up here as allocs/event jumping by an order of magnitude.
func TestSteadyStateAllocs(t *testing.T) {
	protos := []Protocol{RMAC, BMMM, BMW, LBP, MX, DOT11}
	for _, p := range protos {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Protocol = p
			cfg.Nodes = 25
			cfg.Field = geom.Rect{W: 300, H: 200}
			cfg.Rate = 40
			cfg.Packets = 1 << 20 // keep the source busy past the window
			if err := cfg.Validate(); err != nil {
				t.Fatal(err)
			}
			n := build(cfg)

			// Warm up: routing convergence plus two seconds of traffic so
			// every pool and reusable buffer reaches working-set size.
			warm := cfg.Warmup + 2*sim.Second
			n.eng.Run(warm)

			var before, after runtime.MemStats
			ev0 := n.eng.Processed
			runtime.ReadMemStats(&before)
			n.eng.Run(warm + 3*sim.Second)
			runtime.ReadMemStats(&after)
			events := n.eng.Processed - ev0

			if events == 0 {
				t.Fatal("no events in measurement window")
			}
			allocs := after.Mallocs - before.Mallocs
			perEvent := float64(allocs) / float64(events)
			t.Logf("%s: %d allocs over %d events (%.5f allocs/event)", p, allocs, events, perEvent)
			if perEvent > 0.005 {
				t.Errorf("steady state allocates %.5f allocs/event (%d over %d events), want ≤ 0.005",
					perEvent, allocs, events)
			}
		})
	}
}
