package experiment

import (
	"strings"
	"testing"

	"rmac/internal/metrics"
)

// TestRunMetricsNames guards the naming convention: every family the run
// layer registers must pass metrics.CheckName (the same lint CI applies
// to a live scrape).
func TestRunMetricsNames(t *testing.T) {
	r := metrics.NewRegistry()
	NewRunMetrics(r)
	if n := len(r.Names()); n == 0 {
		t.Fatal("no families registered")
	}
	// Registration itself panics on a bad name, so reaching here means
	// they all validated; spot-check the vocabulary is the expected one.
	names := strings.Join(r.Names(), "\n")
	for _, want := range []string{
		"rmac_kernel_events_total",
		"rmac_kernel_medium_events_total",
		"rmac_kernel_shard_windows_total",
		"rmac_kernel_shard_messages_total",
		"rmac_kernel_shard_stalls_total",
		"rmac_kernel_shard_stall_wait_seconds",
		"rmac_proto_reliable_delivered_total",
		"rmac_proto_audit_violations_total",
	} {
		if !strings.Contains(names, want) {
			t.Errorf("family %s not registered; have:\n%s", want, names)
		}
	}
}

// TestMetricsRegistryFromRun runs a small simulation and checks the
// rendered registry agrees with the RunResult it came from.
func TestMetricsRegistryFromRun(t *testing.T) {
	cfg := smallConfig()
	cfg.TimerStats = true
	res := Run(cfg)
	if res.Failed {
		t.Fatal(res.FailReason)
	}

	r := metrics.NewRegistry()
	rm := NewRunMetrics(r)
	rm.AddRun(&res)

	if got := rm.Events.Value(); got != res.Events {
		t.Errorf("events_total = %d, want %d", got, res.Events)
	}
	p := int(cfg.Protocol)
	if got := rm.Generated.At(p).Value(); got != res.Metrics.Generated {
		t.Errorf("generated_total = %d, want %d", got, res.Metrics.Generated)
	}
	if got := rm.ReliableDeliv.At(p).Value(); got != res.Totals.ReliableDelivered {
		t.Errorf("reliable_delivered_total = %d, want %d", got, res.Totals.ReliableDelivered)
	}
	if rm.Runs.At(p).Value() != 1 {
		t.Errorf("runs_total = %d, want 1", rm.Runs.At(p).Value())
	}
	// A run schedules many timers; the census families must be non-empty
	// when TimerStats was on.
	var placed uint64
	for i := 0; i < rm.TimerPlaced.Len(); i++ {
		placed += rm.TimerPlaced.At(i).Value()
	}
	if placed == 0 {
		t.Error("timer_scheduled_total is zero with TimerStats enabled")
	}
	if placed != res.TimerStats.TotalScheduled() {
		t.Errorf("timer_scheduled_total = %d, want %d", placed, res.TimerStats.TotalScheduled())
	}

	// Frame-pool conservation: acquired = released + live.
	acq, rel := rm.FrameAcquired.Value(), rm.FrameReleased.Value()
	if acq != rel+uint64(res.Totals.FramePool.Live) {
		t.Errorf("frame pool: acquired %d != released %d + live %d",
			acq, rel, res.Totals.FramePool.Live)
	}

	// The standalone registry renders without error and carries the
	// run-scoped gauges.
	var sb strings.Builder
	if _, err := MetricsRegistry(&res).WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"rmac_kernel_arena_slots ",
		"rmac_kernel_frame_live_frames ",
		`rmac_proto_runs_total{protocol="RMAC"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestShardMetricsFold runs a small mobile sharded simulation and checks
// the rmac_kernel_shard_* families — including the epoch rollover and
// ghost churn counters — reflect its per-shard scheduler stats.
func TestShardMetricsFold(t *testing.T) {
	cfg := shardConfig(2)
	cfg.Scenario = Speed1
	res := Run(cfg)
	if res.Failed {
		t.Fatal(res.FailReason)
	}
	r := metrics.NewRegistry()
	rm := NewRunMetrics(r)
	rm.AddRun(&res)

	var windows, out, in, stalls, hist, epochs, adds, dels uint64
	for _, ss := range res.Shards {
		windows += ss.Windows
		out += ss.MsgsOut
		in += ss.MsgsIn
		stalls += ss.Stalls
		for _, n := range ss.StallHist {
			hist += n
		}
		epochs += ss.Epochs
		adds += ss.GhostAdds
		dels += ss.GhostDels
	}
	if epochs == 0 {
		t.Error("mobile sharded run crossed no epoch boundaries")
	}
	if got := rm.ShardEpochs.Value(); got != epochs {
		t.Errorf("shard_epoch_rollovers_total = %d, want %d", got, epochs)
	}
	if got := rm.ShardGhosts.At(0).Value(); got != adds {
		t.Errorf("shard_epoch_ghosts_total{add} = %d, want %d", got, adds)
	}
	if got := rm.ShardGhosts.At(1).Value(); got != dels {
		t.Errorf("shard_epoch_ghosts_total{del} = %d, want %d", got, dels)
	}
	if got := rm.ShardWindows.Value(); got != windows {
		t.Errorf("shard_windows_total = %d, want %d", got, windows)
	}
	if got := rm.ShardMessages.At(0).Value(); got != out {
		t.Errorf("shard_messages_total{out} = %d, want %d", got, out)
	}
	if got := rm.ShardMessages.At(1).Value(); got != in {
		t.Errorf("shard_messages_total{in} = %d, want %d", got, in)
	}
	if got := rm.ShardStalls.Value(); got != stalls {
		t.Errorf("shard_stalls_total = %d, want %d", got, stalls)
	}
	if got := rm.ShardStallWait.Count(); got != hist {
		t.Errorf("shard_stall_wait_seconds count = %d, want %d", got, hist)
	}
	var sb strings.Builder
	if _, err := MetricsRegistry(&res).WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "rmac_kernel_shard_stall_wait_seconds_bucket") {
		t.Error("exposition missing shard stall histogram buckets")
	}
}

// TestAddRunAllocs pins the fold path at zero allocations: attaching a
// registry to whole runs costs nothing per run beyond registration.
func TestAddRunAllocs(t *testing.T) {
	cfg := smallConfig()
	cfg.TimerStats = true
	res := Run(cfg)
	r := metrics.NewRegistry()
	rm := NewRunMetrics(r)
	if n := testing.AllocsPerRun(100, func() { rm.AddRun(&res) }); n != 0 {
		t.Errorf("AddRun allocates %v times per run, want 0", n)
	}
}

// TestTotalsDeterministic confirms the new Totals aggregation is part of
// the deterministic surface: equal seeds, equal totals.
func TestTotalsDeterministic(t *testing.T) {
	cfg := smallConfig()
	a, b := Run(cfg), Run(cfg)
	if a.Totals != b.Totals {
		t.Fatalf("totals differ across identical runs:\n%+v\n%+v", a.Totals, b.Totals)
	}
}
