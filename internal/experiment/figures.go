package experiment

import "fmt"

// Figure identifies one reproducible result of the paper's evaluation.
type Figure struct {
	// ID is the paper reference ("fig7" … "fig13", "tree", "overhead").
	ID string
	// Title matches the paper's caption.
	Title string
	// Protocols compared (Figures 12–13 are RMAC-only).
	Protocols []Protocol
	// Value extracts the plotted y value from an aggregated point; for
	// summary figures (12, 13) it returns the mean and Summary supplies
	// the 99 %ile and max.
	Value func(Point) float64
	// Summary is non-nil for avg/99 %ile/max figures.
	Summary func(Point) (avg, p99, max float64)
	// Unit labels the y axis.
	Unit string
}

// Figures returns the specification of every evaluation figure, in paper
// order.
func Figures() []Figure {
	both := []Protocol{RMAC, BMMM}
	only := []Protocol{RMAC}
	return []Figure{
		{
			ID: "fig7", Title: "Packet Delivery Ratio in RMAC and BMMM",
			Protocols: both, Unit: "ratio",
			Value: func(p Point) float64 { return p.Delivery },
		},
		{
			ID: "fig8", Title: "Average Packet Drop Ratio in RMAC and BMMM",
			Protocols: both, Unit: "ratio",
			Value: func(p Point) float64 { return p.AvgDropRatio },
		},
		{
			ID: "fig9", Title: "Average End-to-End Delay (in seconds) in RMAC and BMMM",
			Protocols: both, Unit: "seconds",
			Value: func(p Point) float64 { return p.AvgDelay },
		},
		{
			ID: "fig10", Title: "Average Packet Retransmission Ratio in RMAC and BMMM",
			Protocols: both, Unit: "ratio",
			Value: func(p Point) float64 { return p.AvgRetxRatio },
		},
		{
			ID: "fig11", Title: "Average Transmission Overhead Ratio in RMAC and BMMM",
			Protocols: both, Unit: "ratio",
			Value: func(p Point) float64 { return p.AvgOverheadRatio },
		},
		{
			ID: "fig12", Title: "Average, 99 percentile, and Maximum Lengths (in bytes) of MRTSs in RMAC",
			Protocols: only, Unit: "bytes",
			Value: func(p Point) float64 { return p.MRTSLens.Mean },
			Summary: func(p Point) (float64, float64, float64) {
				return p.MRTSLens.Mean, p.MRTSLens.P99, p.MRTSLens.Max
			},
		},
		{
			ID: "fig13", Title: "Average, 99 percentile, and Maximum Value of MRTS Abortion Ratio in RMAC",
			Protocols: only, Unit: "ratio",
			Value: func(p Point) float64 { return p.AbortRatios.Mean },
			Summary: func(p Point) (float64, float64, float64) {
				return p.AbortRatios.Mean, p.AbortRatios.P99, p.AbortRatios.Max
			},
		},
	}
}

// FigureByID looks a figure up by its paper reference.
func FigureByID(id string) (Figure, error) {
	for _, f := range Figures() {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("experiment: unknown figure %q", id)
}
