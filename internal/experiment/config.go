// Package experiment assembles full simulations of the paper's evaluation
// setup (§4.1): 75 nodes on a 500 m × 300 m plain, 75 m radio range,
// 2 Mb/s, a single-source multicast tree maintained by simplified BLESS,
// and a source at node 0 transmitting 500-byte packets at 5–120 packets/s
// in three mobility scenarios — then measures every §4.2/§4.3 metric.
package experiment

import (
	"errors"
	"fmt"
	"time"

	"rmac/internal/fault"
	"rmac/internal/geom"
	"rmac/internal/mac"
	"rmac/internal/mac/rmac"
	"rmac/internal/phy"
	"rmac/internal/routing"
	"rmac/internal/sim"
)

// Protocol selects the MAC under test.
type Protocol int

const (
	// RMAC is the paper's contribution (busy-tone reliable multicast).
	RMAC Protocol = iota
	// BMMM is the compared baseline (§2, Sun et al.).
	BMMM
	// BMW is the round-robin reliable broadcast baseline (§2, Tang &
	// Gerla); not in the paper's figures but implemented for the same
	// harness.
	BMW
	// LBP is the Leader Based Protocol (§2, Kuri & Kasera): one leader
	// acknowledges for the group, NAKs garble its ACK.
	LBP
	// MX is the simplified 802.11MX (§2, Gupta et al.):
	// receiver-initiated busy-tone NAK feedback.
	MX
	// DOT11 is plain IEEE 802.11 DCF (§1): reliable unicast only;
	// multicast/broadcast transmitted once with no recovery.
	DOT11
)

func (p Protocol) String() string {
	switch p {
	case RMAC:
		return "RMAC"
	case BMMM:
		return "BMMM"
	case BMW:
		return "BMW"
	case LBP:
		return "LBP"
	case MX:
		return "MX"
	case DOT11:
		return "802.11"
	}
	return fmt.Sprintf("Protocol(%d)", int(p))
}

// Scenario is one of the §4.1.2 mobility settings.
type Scenario int

const (
	// Stationary: no node is moving.
	Stationary Scenario = iota
	// Speed1: random waypoint, 0–4 m/s, 10 s pause.
	Speed1
	// Speed2: random waypoint, 0–8 m/s, 5 s pause.
	Speed2
)

func (s Scenario) String() string {
	switch s {
	case Stationary:
		return "stationary"
	case Speed1:
		return "speed1"
	case Speed2:
		return "speed2"
	}
	return fmt.Sprintf("Scenario(%d)", int(s))
}

// MaxSpeed returns the scenario's MAX-SPEED in m/s (0 when stationary).
func (s Scenario) MaxSpeed() float64 {
	switch s {
	case Speed1:
		return 4
	case Speed2:
		return 8
	}
	return 0
}

// Pause returns the scenario's INTER-PAUSE.
func (s Scenario) Pause() sim.Time {
	switch s {
	case Speed1:
		return 10 * sim.Second
	case Speed2:
		return 5 * sim.Second
	}
	return 0
}

// TopoKind selects the placement generator (see internal/topo).
type TopoKind int

const (
	// TopoConnected retries uniform placements until the disc graph is
	// connected — the paper's §4.1 setup and the default.
	TopoConnected TopoKind = iota
	// TopoUniform places nodes uniformly at random with no connectivity
	// retry; the only generator that scales to 100k nodes unconditionally.
	TopoUniform
	// TopoPoisson uses Poisson-disc (blue-noise) sampling at NodeSpacing
	// minimum distance: even density without clumps, the standard model
	// for planned large deployments.
	TopoPoisson
	// TopoMetro builds `Districts` dense clusters separated by
	// DistrictGap metres of empty ground — RF-decoupled city districts,
	// the showcase topology for sharded runs (see DESIGN.md §14).
	TopoMetro
)

func (t TopoKind) String() string {
	switch t {
	case TopoConnected:
		return "connected"
	case TopoUniform:
		return "uniform"
	case TopoPoisson:
		return "poisson"
	case TopoMetro:
		return "metro"
	}
	return fmt.Sprintf("TopoKind(%d)", int(t))
}

// TopoKinds maps generator names to kinds for the -topo flags.
var TopoKinds = map[string]TopoKind{
	"connected": TopoConnected,
	"uniform":   TopoUniform,
	"poisson":   TopoPoisson,
	"metro":     TopoMetro,
}

// Config describes one simulation run.
type Config struct {
	Protocol Protocol
	Scenario Scenario

	// Nodes and Field define the deployment (75 on 500×300 m).
	Nodes int
	Field geom.Rect

	// Topo selects the placement generator; NodeSpacing is the
	// Poisson-disc minimum distance (0 = auto from node count and field),
	// Districts/DistrictGap shape the metro generator (0 = Shards
	// districts / 1.5× interference-range gap).
	Topo        TopoKind
	NodeSpacing float64
	Districts   int
	DistrictGap float64

	// Shards, when > 1, runs the simulation on the sharded conservative
	// parallel engine: the field is partitioned into vertical strips, one
	// engine + goroutine per strip, synchronized by propagation-delay
	// lookahead — exact pairwise delays when stationary (DESIGN.md §14),
	// conservative envelope bounds recomputed per mobility epoch when
	// nodes move (DESIGN.md §15). 0 or 1 selects the classic single-engine
	// path; results for a fixed (Seed, Shards) pair are bit-identical
	// across reruns, and Shards ≤ 1 is bit-identical to the unsharded
	// engine.
	Shards int

	// ShardEpoch is the mobility epoch length of a mobile sharded run: the
	// interval at which lookahead and border-band membership are
	// recomputed from conservative position envelopes. Shorter epochs give
	// tighter lookahead (less conservatism) but more rollover barriers.
	// 0 = 1 s. Ignored when Shards ≤ 1 or the scenario is stationary.
	ShardEpoch sim.Time

	// Sources is the number of multicast source nodes (0 or 1 = the
	// paper's single source at node 0). Source d sits at node
	// d·Nodes/Sources; with TopoMetro and Sources == Districts that is
	// one source per district, giving every shard local traffic. Each
	// source generates Packets packets at Rate.
	Sources int
	// Phy carries radio parameters (75 m range, 2 Mb/s).
	Phy phy.Config
	// Limits carries MAC retry/queue policy.
	Limits mac.Limits
	// RMACOptions carries RMAC ablation switches (ignored by the
	// baselines).
	RMACOptions rmac.Options
	// Routing carries BLESS beacon timing.
	Routing routing.Config

	// Rate is the source rate in packets/second; Packets the total count;
	// PacketSize the payload length in bytes.
	Rate       float64
	Packets    int
	PacketSize int

	// Warmup lets the tree form before traffic; Drain lets queues empty
	// after the last generation.
	Warmup sim.Time
	Drain  sim.Time

	// Seed selects the node placement, mobility and contention RNG; runs
	// with equal seeds are bit-identical.
	Seed int64

	// Fault configures the impairment layer: Gilbert–Elliott bursty
	// channel errors and node churn. The zero value disables both and
	// leaves the run's RNG stream untouched.
	Fault fault.Config

	// MaxEvents and MaxWall arm the engine watchdog: a run exceeding
	// either budget is aborted and reports partial statistics with
	// RunResult.Aborted set. Zero disables the respective budget.
	MaxEvents uint64
	MaxWall   time.Duration

	// TraceCap, when positive, records the last TraceCap PHY events
	// (frames, tones) into RunResult.Trace.
	TraceCap int

	// Audit attaches the protocol-invariant auditor (internal/audit) to
	// the medium. The auditor is passive — a run with it enabled is
	// bit-identical to the same seed without it — so it defaults to on;
	// the command-line front ends expose a flag to disable it for
	// benchmarking the bare hot path.
	Audit bool

	// TimerStats attaches the engine's per-horizon timer census
	// (sim.TimerStats) and reports it in RunResult.TimerStats. Purely
	// observational: event order is unchanged.
	TimerStats bool
}

// DefaultConfig returns the paper's §4.1 parameters with a scaled-down
// packet count (the full 10 000 is a flag away).
func DefaultConfig() Config {
	return Config{
		Protocol:   RMAC,
		Scenario:   Stationary,
		Nodes:      75,
		Field:      geom.Rect{W: 500, H: 300},
		Phy:        phy.DefaultConfig(),
		Limits:     mac.DefaultLimits(),
		Routing:    routing.DefaultConfig(),
		Rate:       20,
		Packets:    300,
		PacketSize: 500,
		Warmup:     10 * sim.Second,
		Drain:      10 * sim.Second,
		Seed:       1,
		Audit:      true,
	}
}

// Protocols lists every MAC under test in enum order; Protocol values
// index it, so per-protocol metric families can be dense arrays.
var Protocols = []Protocol{RMAC, BMMM, BMW, LBP, MX, DOT11}

// PaperRates are the eight source rates of §4.1.2, in packets/second.
var PaperRates = []float64{5, 10, 20, 40, 60, 80, 100, 120}

// Scenarios lists all three mobility scenarios.
var Scenarios = []Scenario{Stationary, Speed1, Speed2}

// Validate reports whether the configuration can be simulated. Run
// rejects invalid configurations with a Failed RunResult; the command-line
// front ends call Validate up front so flag mistakes exit non-zero with a
// message instead of starting a doomed simulation.
func (c Config) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("experiment: need at least 2 nodes, have %d", c.Nodes)
	}
	if c.Rate <= 0 {
		return fmt.Errorf("experiment: source rate must be positive, have %g", c.Rate)
	}
	if c.Packets < 0 || c.PacketSize < 0 {
		return fmt.Errorf("experiment: negative traffic parameters (packets=%d size=%d)", c.Packets, c.PacketSize)
	}
	if c.Field.W <= 0 || c.Field.H <= 0 {
		return fmt.Errorf("experiment: field must have positive area, have %gx%g", c.Field.W, c.Field.H)
	}
	if b := c.Fault.Burst; b.Enabled {
		if b.MeanGood <= 0 || b.MeanBad <= 0 {
			return errors.New("experiment: burst model needs positive mean sojourn times")
		}
		if b.BERGood < 0 || b.BERGood > 1 || b.BERBad < 0 || b.BERBad > 1 {
			return errors.New("experiment: burst BER values must be in [0,1]")
		}
	}
	if ch := c.Fault.Churn; ch.Enabled && (ch.MeanUp <= 0 || ch.MeanDown <= 0) {
		return errors.New("experiment: churn needs positive mean up/down times")
	}
	if c.Shards < 0 || c.Shards > sim.MaxShards {
		return fmt.Errorf("experiment: shards must be in [0,%d], have %d", sim.MaxShards, c.Shards)
	}
	if c.Shards > 1 {
		if c.ShardEpoch < 0 {
			return fmt.Errorf("experiment: shard epoch must be positive, have %v", c.ShardEpoch)
		}
		if c.Scenario != Stationary {
			// The per-epoch displacement envelope must fit inside a strip:
			// a node able to traverse a whole strip within one epoch would
			// overlap the border bands of non-adjacent shards and collapse
			// every pairwise lookahead toward the 1 ns floor. The mean
			// strip width is the a-priori bound (the data-dependent minimum
			// is checked against the actual cuts at build time).
			env := 2 * c.Scenario.MaxSpeed() * c.shardEpoch().Seconds()
			if strip := c.Field.W / float64(c.Shards); env >= strip {
				return fmt.Errorf("experiment: mobility envelope %.1fm (2 × %.0fm/s × %v epoch) must stay below the %.1fm mean strip width; shorten ShardEpoch or use fewer shards", env, c.Scenario.MaxSpeed(), c.shardEpoch(), strip)
			}
		}
		if c.TraceCap > 0 {
			return errors.New("experiment: TraceCap is not supported with Shards > 1")
		}
		if c.TimerStats {
			return errors.New("experiment: TimerStats is not supported with Shards > 1")
		}
	}
	if c.Sources < 0 || c.Sources > c.Nodes {
		return fmt.Errorf("experiment: sources must be in [0,%d], have %d", c.Nodes, c.Sources)
	}
	if c.NodeSpacing < 0 {
		return fmt.Errorf("experiment: node spacing must be non-negative, have %g", c.NodeSpacing)
	}
	if c.Topo == TopoMetro {
		d := c.metroDistricts()
		if gap := c.metroGap(); c.Field.W-gap*float64(d-1) <= 0 {
			return fmt.Errorf("experiment: %d metro districts with %gm gaps exceed the %gm field", d, gap, c.Field.W)
		}
	}
	return nil
}

// metroDistricts resolves the metro district count: explicit Districts,
// else one per shard, else one.
func (c Config) metroDistricts() int {
	if c.Districts > 0 {
		return c.Districts
	}
	if c.Shards > 1 {
		return c.Shards
	}
	return 1
}

// metroGap resolves the inter-district gap: explicit, else 1.5× the
// interference range — wide enough that no radio pair spans districts, so
// shards that follow district boundaries are fully RF-decoupled.
func (c Config) metroGap() float64 {
	if c.DistrictGap > 0 {
		return c.DistrictGap
	}
	ir := c.Phy.CommRange
	if f := c.Phy.InterferenceFactor; f > 1 {
		ir *= f
	}
	return 1.5 * ir
}

// sourceNodes lists the multicast source node ids (see Config.Sources).
func (c Config) sourceNodes() []int {
	k := c.Sources
	if k < 1 {
		k = 1
	}
	roots := make([]int, k)
	for d := range roots {
		roots[d] = d * c.Nodes / k
	}
	return roots
}

// shardEpoch resolves the mobility epoch length: explicit, else 1 s.
func (c Config) shardEpoch() sim.Time {
	if c.ShardEpoch > 0 {
		return c.ShardEpoch
	}
	return sim.Second
}

// Horizon returns the simulated end time of the run.
func (c Config) Horizon() sim.Time {
	genSpan := sim.Time(float64(c.Packets) / c.Rate * float64(sim.Second))
	return c.Warmup + genSpan + c.Drain
}
