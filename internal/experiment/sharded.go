package experiment

import (
	"context"
	"fmt"
	"math/bits"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"rmac/internal/app"
	"rmac/internal/audit"
	"rmac/internal/fault"
	"rmac/internal/frame"
	"rmac/internal/geom"
	"rmac/internal/mac"
	"rmac/internal/mac/bmmm"
	"rmac/internal/mac/bmw"
	"rmac/internal/mac/dot11"
	"rmac/internal/mac/lbp"
	"rmac/internal/mac/mx"
	"rmac/internal/mac/rmac"
	"rmac/internal/mobility"
	"rmac/internal/phy"
	"rmac/internal/routing"
	"rmac/internal/sim"
	"rmac/internal/stats"
	"rmac/internal/topo"
)

// Sharded conservative parallel runs (Config.Shards > 1). The field is cut
// into vertical strips by population quantile (snapped to the widest
// nearby X-gap), each strip gets a complete private stack — engine,
// medium, MACs, routing, apps, fault injector, auditor — on its own
// goroutine, and the strips synchronize through the frontier protocol of
// sim.ShardSync with the cross-shard conduit of phy.ConnectShards carrying
// border traffic. See DESIGN.md §14 for the protocol, its liveness
// argument, and the determinism contract.
//
// Mobile scenarios run the same protocol under *mobility epochs* (DESIGN.md
// §15): the horizon is divided into fixed-length epochs, per-node
// displacement within one epoch is bounded by MaxSpeed·epoch, and at every
// epoch boundary all shards park at a barrier while a rollover leader
// (shard 0) recomputes the lookahead matrix and border-band membership from
// the boundary positions. The leader reads positions from its own shadow
// replicas of every node's waypoint model — trajectories are pure functions
// of (Seed, node id), so no cross-goroutine state is touched.

// ShardSeedMix decorrelates per-shard engine RNG streams from each other
// and from the unsharded stream while keeping them functions of
// (Config.Seed, shard). The 64-bit golden-ratio constant, reinterpreted
// as a signed word.
const ShardSeedMix = int64(-7046029254386353131) // 0x9E3779B97F4A7C15

func shardSeed(seed int64, shard int) int64 {
	return seed ^ int64(shard+1)*ShardSeedMix
}

// ShardRunStats is one shard's scheduler observability. Nodes, Events,
// Windows and the conduit message counts are deterministic for a fixed
// (Seed, Shards); Stalls/StallWall/StallHist are wall-clock measurements.
// None of it enters RunResult.Fingerprint.
type ShardRunStats struct {
	Shard   int
	Nodes   int
	Events  uint64
	Windows uint64 // Run windows executed
	MsgsOut uint64 // cross-shard messages published
	MsgsIn  uint64 // cross-shard messages drained
	// Mobility epoch counters (zero when stationary): boundary rollovers
	// this shard synchronized on, and ghost record firings it received.
	// All three are deterministic for a fixed (Seed, Shards).
	Epochs    uint64
	GhostAdds uint64
	GhostDels uint64
	Stalls    uint64 // frontier waits
	// StallWall is total wall time spent waiting on foreign frontiers;
	// StallHist buckets individual waits by power-of-two nanoseconds
	// (bucket i counts waits in [2^(i-1), 2^i)).
	StallWall time.Duration
	StallHist [40]uint64
}

// shardStack is one shard's private simulation stack.
type shardStack struct {
	shard    int
	eng      *sim.Engine
	medium   *phy.Medium
	macs     []mac.MAC
	routers  []*routing.Protocol
	apps     []*app.Node
	metrics  app.Metrics
	injector *fault.Injector
	aud      *audit.Auditor
	ids      []int // global node ids, ascending; parallel to macs/routers/apps

	stats ShardRunStats
}

// shardedRun is the coordinator state of one sharded simulation.
type shardedRun struct {
	cfg    Config
	part   topo.Partition
	stacks []*shardStack
	net    *phy.ShardNet
	sync   *sim.ShardSync

	// Mobility epoch state. shadow/posB are leader-owned: only shard 0
	// touches them, inside the boundary barrier. gen is the epoch
	// generation — the leader's release-increment after Rebuild is what
	// publishes the new tables to the followers spinning on it.
	mobile   bool
	epoch    sim.Time
	envelope float64
	shadow   []*mobility.RandomWaypoint
	posB     []geom.Point
	gen      atomic.Uint64

	stop   atomic.Bool
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu        sync.Mutex
	panicked  bool
	panicMsg  string
	panicDump string
}

// buildSharded assembles every shard stack and the cross-shard fabric.
func buildSharded(cfg Config) *shardedRun {
	placement := makePlacement(cfg)
	part := topo.PartitionStrips(placement, cfg.Shards)
	roots := cfg.sourceNodes()
	isRoot := make(map[int]bool, len(roots))
	for _, r := range roots {
		isRoot[r] = true
	}

	sr := &shardedRun{cfg: cfg, part: part}
	mediums := make([]*phy.Medium, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		eng := sim.NewEngine(shardSeed(cfg.Seed, s))
		medium := phy.NewMedium(eng, cfg.Phy)
		st := &shardStack{shard: s, eng: eng, medium: medium, ids: part.Nodes[s],
			metrics: app.Metrics{Nodes: cfg.Nodes}}
		st.stats.Shard, st.stats.Nodes = s, len(st.ids)
		if cfg.Audit {
			st.aud = audit.New(eng, medium, audit.Config{
				MaxFrameAirtime: cfg.Phy.TxDuration(frame.RMACDataOverhead + cfg.PacketSize + 64),
			})
		}
		for _, i := range st.ids {
			var mob mobility.Model
			if cfg.Scenario == Stationary {
				mob = mobility.Stationary{P: placement.Points[i]}
			} else {
				// Same per-node RNG derivation as the unsharded build: the
				// trajectory of node i is a pure function of (Seed, i),
				// identical across shard counts and to the leader's shadow
				// replica below.
				nodeRNG := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(i)))
				mob = mobility.NewRandomWaypoint(cfg.Field, 0, cfg.Scenario.MaxSpeed(), cfg.Scenario.Pause(), placement.Points[i], nodeRNG)
			}
			radio := medium.AddRadio(i, mob)
			var m mac.MAC
			switch cfg.Protocol {
			case RMAC:
				m = rmac.NewWithOptions(radio, cfg.Phy, eng, cfg.Limits, cfg.RMACOptions)
			case BMMM:
				m = bmmm.New(radio, cfg.Phy, eng, cfg.Limits)
			case BMW:
				m = bmw.New(radio, cfg.Phy, eng, cfg.Limits)
			case LBP:
				m = lbp.New(radio, cfg.Phy, eng, cfg.Limits)
			case MX:
				m = mx.New(radio, cfg.Phy, eng, cfg.Limits)
			case DOT11:
				m = dot11.New(radio, cfg.Phy, eng, cfg.Limits)
			}
			rt := routing.New(eng, m, i, isRoot[i], cfg.Routing)
			a := app.NewNode(eng, m, rt, i, &st.metrics)
			rt.Start()
			if st.aud != nil {
				st.aud.RegisterMAC(i, m)
				if s, ok := m.(interface{ SetAuditor(*audit.Auditor) }); ok {
					s.SetAuditor(st.aud)
				}
				m.SetUpper(st.aud.WrapUpper(i, a))
			}
			st.macs = append(st.macs, m)
			st.routers = append(st.routers, rt)
			st.apps = append(st.apps, a)
			if isRoot[i] {
				app.NewSource(a, cfg.Rate, cfg.Packets, cfg.PacketSize).Start(cfg.Warmup)
			}
		}
		st.injector = fault.New(eng, medium, cfg.Fault)
		// Deliberately no eng.QuiesceAudit: Run quiesces at the end of
		// every frontier window, which would spray false mid-run strand /
		// liveness findings. The audits run once, after the final window
		// (see collectSharded).
		mediums[s] = medium
		sr.stacks = append(sr.stacks, st)
	}
	if cfg.Scenario == Stationary {
		sr.net = phy.ConnectShards(mediums, placement.Points, part.Shard, cfg.Horizon())
	} else {
		sr.mobile = true
		sr.epoch = cfg.shardEpoch()
		sr.envelope = 2 * cfg.Scenario.MaxSpeed() * sr.epoch.Seconds()
		if w := part.MinStripWidth(cfg.Field.W); sr.envelope >= w {
			// Sound but hopeless: border bands spanning whole strips pin
			// every pairwise lookahead near the 1 ns floor. Validate already
			// rejects this against the mean strip width; this guard catches
			// placements whose population-quantile cuts came out narrower.
			panic(fmt.Sprintf("experiment: mobility envelope %.1fm exceeds the narrowest %.1fm strip; shorten ShardEpoch or use fewer shards", sr.envelope, w))
		}
		sr.shadow = make([]*mobility.RandomWaypoint, cfg.Nodes)
		sr.posB = make([]geom.Point, cfg.Nodes)
		for i := 0; i < cfg.Nodes; i++ {
			rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(i)))
			sr.shadow[i] = mobility.NewRandomWaypoint(cfg.Field, 0, cfg.Scenario.MaxSpeed(), cfg.Scenario.Pause(), placement.Points[i], rng)
		}
		sr.net = phy.ConnectShardsMobile(mediums, placement.Points, part.Shard, cfg.Horizon(), sr.envelope)
	}
	sr.sync = sim.NewShardSync(sr.net.Direct())
	return sr
}

// rebuildEpoch recomputes the cross-shard fabric for the epoch starting at
// boundary B. Leader-only, inside the barrier: every shard has published a
// frontier ≥ B and is parked draining, so the fabric is quiescent.
func (sr *shardedRun) rebuildEpoch(B sim.Time) {
	for i, mdl := range sr.shadow {
		sr.posB[i] = mdl.PositionAt(B)
	}
	sr.net.Rebuild(sr.posB, B, 0)
	sr.sync.SetLookahead(sr.net.Direct())
}

// fail records a shard goroutine's panic (first one wins).
func (sr *shardedRun) fail(r any, stack []byte) {
	sr.mu.Lock()
	if !sr.panicked {
		sr.panicked = true
		sr.panicMsg = fmt.Sprintf("panic: %v", r)
		sr.panicDump = string(stack)
	}
	sr.mu.Unlock()
}

// publish refreshes shard j's frontier: the earliest future influence it
// can still exert. That is the smaller of its next local event and the
// send time of its earliest outbound message nobody has drained yet. The
// second term is what makes relays safe: until a receiver drains a
// message, the sender's frontier keeps covering that message's send time,
// so third shards bounding the receiver's relay through the path closure
// (foreign frontier + pathLa) never under-estimate it. Once the receiver
// drains, its own next-lower-bound covers the scheduled delivery and the
// cap releases.
func (sr *shardedRun) publish(j int, eng *sim.Engine) {
	lb := eng.NextLowerBound()
	if c := sr.net.OutCap(j); c < lb {
		lb = c
	}
	sr.sync.Publish(j, lb)
}

// runShard is one shard's frontier loop. The window order is load-bearing:
// the safe target is read BEFORE draining — any cross message with an
// event inside [0, target) was published before the frontier snapshots
// the target was computed from, so it is already visible to that drain
// (ring writes happen-before the frontier store that made the target) —
// and the frontier is re-published only after draining, so everything the
// drain scheduled is reflected in the next-lower-bound it advertises.
func (sr *shardedRun) runShard(j int, endTime sim.Time) {
	st := sr.stacks[j]
	defer func() {
		if r := recover(); r != nil {
			sr.fail(r, debug.Stack())
			sr.stop.Store(true)
			sr.cancel()
			sr.net.Stop()
		}
		// Terminal frontier: a shard at MaxTime constrains nobody.
		sr.sync.Publish(j, sim.MaxTime)
		sr.wg.Done()
	}()
	eng := st.eng
	done := sim.Time(-1) // end of the last executed window
	// Mobility epochs: B is the next epoch boundary — a hard cap on every
	// window, because the current lookahead tables are only valid for
	// events strictly before it. gen is the epoch generation this shard has
	// observed. Stationary runs never roll over (B = MaxTime) and take the
	// exact pre-epoch path.
	B := sim.MaxTime
	if sr.mobile {
		B = sr.epoch
	}
	var gen uint64
	for !sr.stop.Load() {
		target := sr.sync.Target(j)
		sr.net.Drain(j)
		sr.publish(j, eng)
		bound := target
		if bound > B {
			bound = B
		}
		if bound > endTime {
			// No foreign influence can arrive on or before the horizon
			// anymore: an undrained message would cap its sender's frontier
			// at the send time, pulling our target back under the horizon,
			// and future sends land above their sender's frontier plus
			// lookahead — above target — where the sender-side filter drops
			// them. This is the final window. (Mobile: requires B > endTime
			// too, so the final window never outruns the epoch tables.)
			if endTime > done {
				eng.Run(endTime)
				st.stats.Windows++
			}
			sr.checkAborted(eng)
			return
		}
		if target > B {
			// Epoch rollover. target > B proves every event strictly before
			// B safe under the *current* tables: finish the epoch's window,
			// then synchronize. The barrier condition is MinFrontier ≥ B —
			// every shard has executed all pre-boundary events and every
			// conduit ring is empty (an undrained message's send time t0 < B
			// would cap its sender's frontier below B; and any message a
			// parked shard drains after the leader's frontier snapshot was
			// provably sent at t0 ≥ B, because its sender's frontier had
			// already been observed at or past B). Everyone keeps draining
			// and re-publishing while parked, so outbound caps release and
			// the leader's ghost records always find ring space.
			if B-1 > done {
				eng.Run(B - 1)
				done = B - 1
				st.stats.Windows++
				sr.checkAborted(eng)
				if sr.stop.Load() {
					return
				}
			}
			sr.publish(j, eng)
			st.stats.Epochs++
			if j == 0 {
				for !sr.stop.Load() && sr.sync.MinFrontier() < B {
					sr.net.Drain(j)
					sr.publish(j, eng)
					runtime.Gosched()
				}
				if sr.stop.Load() {
					return
				}
				sr.rebuildEpoch(B)
				sr.gen.Add(1) // release-publishes the new tables
			} else {
				for !sr.stop.Load() && sr.gen.Load() == gen {
					sr.net.Drain(j)
					sr.publish(j, eng)
					runtime.Gosched()
				}
				if sr.stop.Load() {
					return
				}
			}
			gen++
			B += sr.epoch
			continue
		}
		limit := bound - 1 // events at exactly `target` are not yet safe
		if limit > done {
			eng.Run(limit)
			done = limit
			st.stats.Windows++
			sr.checkAborted(eng)
			continue
		}
		// Cannot advance: wait for a foreign frontier to move. Keep
		// draining while waiting — inbound messages never change our
		// target, but consuming them unblocks producers and releases
		// their frontier caps — and keep re-publishing as drains and
		// consumed outbound slots raise our own frontier.
		st.stats.Stalls++
		begin := time.Now()
		for spins := 0; !sr.stop.Load(); spins++ {
			if sr.sync.Target(j) > target {
				break
			}
			sr.net.Drain(j)
			sr.publish(j, eng)
			if spins < 256 {
				runtime.Gosched()
			} else {
				d := time.Duration(spins)
				if d > 100 {
					d = 100
				}
				time.Sleep(d * time.Microsecond)
			}
		}
		wait := time.Since(begin)
		st.stats.StallWall += wait
		if b := bits.Len64(uint64(wait.Nanoseconds())); b < len(st.stats.StallHist) {
			st.stats.StallHist[b]++
		} else {
			st.stats.StallHist[len(st.stats.StallHist)-1]++
		}
	}
}

// checkAborted propagates a shard-local engine abort (watchdog budget or
// context cancellation — each shard polls the run context itself, every
// 1024 events) to every other shard.
func (sr *shardedRun) checkAborted(eng *sim.Engine) {
	if _, aborted := eng.Aborted(); aborted {
		sr.stop.Store(true)
		sr.cancel()
		sr.net.Stop()
	}
}

// runSharded executes cfg on the sharded engine. Config must be valid and
// cfg.Shards > 1.
func runSharded(ctx context.Context, cfg Config) (res RunResult) {
	defer func() {
		if r := recover(); r != nil {
			res = RunResult{Config: cfg, Failed: true,
				FailReason: fmt.Sprintf("panic: %v", r), Stack: string(debug.Stack())}
		}
	}()
	sr := buildSharded(cfg)
	ctx, sr.cancel = context.WithCancel(ctx)
	defer sr.cancel()
	endTime := cfg.Horizon()
	for _, st := range sr.stacks {
		if cfg.MaxEvents > 0 || cfg.MaxWall > 0 {
			// Each shard gets the full budget: MaxEvents bounds any single
			// engine, so a sharded run may process up to Shards× more
			// events before tripping — budgets bound runaway shards, not
			// aggregate work.
			st.eng.SetWatchdog(cfg.MaxEvents, cfg.MaxWall)
		}
		st.eng.SetContext(ctx)
	}
	sr.wg.Add(len(sr.stacks))
	for j := range sr.stacks {
		go sr.runShard(j, endTime)
	}
	sr.wg.Wait()
	if sr.panicked {
		return RunResult{Config: cfg, Failed: true, FailReason: sr.panicMsg, Stack: sr.panicDump}
	}
	return sr.collect()
}

// collect merges every shard's measurements into one RunResult, iterating
// nodes in global id order so pooled samples are ordered exactly like the
// unsharded collector's.
func (sr *shardedRun) collect() RunResult {
	cfg := sr.cfg
	res := RunResult{
		Config:      cfg,
		Metrics:     app.Metrics{Nodes: cfg.Nodes},
		MRTSLens:    &stats.Sample{},
		AbortRatios: &stats.Sample{},
	}
	// Post-run audits, once per shard (see buildSharded).
	macByID := make([]mac.MAC, cfg.Nodes)
	rtByID := make([]*routing.Protocol, cfg.Nodes)
	for _, st := range sr.stacks {
		st.stats.Events = st.eng.Processed
		cs := sr.net.Stats(st.shard)
		st.stats.MsgsOut, st.stats.MsgsIn = cs.MsgsOut, cs.MsgsIn
		st.stats.GhostAdds, st.stats.GhostDels = cs.GhostAdds, cs.GhostDels
		for k, id := range st.ids {
			macByID[id] = st.macs[k]
			rtByID[id] = st.routers[k]
		}
		if reason, aborted := st.eng.Aborted(); aborted && !res.Aborted {
			res.Aborted, res.AbortReason = true, fmt.Sprintf("shard %d: %s", st.shard, reason)
		}
		st.aud.Quiesce()
		res.Violations = append(res.Violations, st.aud.Violations()...)
		if st.aud != nil {
			res.ViolationCount += st.aud.Count
			for c, v := range st.aud.ByClass {
				res.Totals.ViolationsByClass[c] += v
			}
		}
		res.Events += st.eng.Processed
		res.Metrics.Generated += st.metrics.Generated
		res.Metrics.Receptions += st.metrics.Receptions
		res.Metrics.Duplicates += st.metrics.Duplicates
		res.Metrics.DelaySum += st.metrics.DelaySum
		res.Metrics.DelayCount += st.metrics.DelayCount
		if st.metrics.DelayMax > res.Metrics.DelayMax {
			res.Metrics.DelayMax = st.metrics.DelayMax
		}
		res.Fault.BurstErrors += st.injector.Stats.BurstErrors
		res.Fault.BadEntries += st.injector.Stats.BadEntries
		res.Fault.Crashes += st.injector.Stats.Crashes
		res.Fault.Recoveries += st.injector.Stats.Recoveries
		res.Crashes += st.medium.Stats.Crashes
		ms := &res.Totals.Medium
		ms.Transmissions += st.medium.Stats.Transmissions
		ms.Aborts += st.medium.Stats.Aborts
		ms.FramesDecoded += st.medium.Stats.FramesDecoded
		ms.FramesCorrupt += st.medium.Stats.FramesCorrupt
		ms.ToneActivation += st.medium.Stats.ToneActivation
		ms.Crashes += st.medium.Stats.Crashes
		fp := st.medium.Frames().Stats()
		res.Totals.FramePool.Live += fp.Live
		res.Totals.FramePool.Acquired += fp.Acquired
		res.Totals.FramePool.Allocated += fp.Allocated
		res.Totals.FramePool.Released += fp.Released
		res.Totals.ArenaCap += st.eng.ArenaCap()
		res.Totals.ArenaLive += st.eng.PoolInUse()
		res.Shards = append(res.Shards, st.stats)
	}
	// Liveness audit over the global MAC array: Deadlock.Node ids come out
	// global and ordered.
	res.Deadlocks = auditLiveness(macByID)
	res.Delivery = res.Metrics.DeliveryRatio()
	res.AvgDelay = res.Metrics.AvgDelay()
	res.Totals.Generated = res.Metrics.Generated
	res.Totals.Receptions = res.Metrics.Receptions
	res.Totals.Duplicates = res.Metrics.Duplicates
	var drop, retx, ovh stats.Sample
	for id := 0; id < cfg.Nodes; id++ {
		s := macByID[id].Stats()
		res.Totals.addMAC(s)
		if !s.NonLeaf() {
			continue
		}
		res.NonLeafCount++
		drop.Add(totalDropRatio(s))
		retx.Add(s.RetxRatio())
		if s.DataTxTime > 0 {
			ovh.Add(s.OverheadRatio())
		}
		res.AbortRatios.Add(s.AbortRatio())
		for _, l := range s.MRTSLens {
			res.MRTSLens.Add(float64(l))
		}
	}
	res.AvgDropRatio = drop.Mean()
	res.AvgRetxRatio = retx.Mean()
	res.AvgOverheadRatio = ovh.Mean()
	parent := make([]int, cfg.Nodes)
	for id, rt := range rtByID {
		parent[id] = rt.Parent()
	}
	res.Tree = topo.AnalyzeTree(parent, 0)
	return res
}
