package experiment

import (
	"context"
	"runtime"
	"testing"
	"time"

	"rmac/internal/geom"
	"rmac/internal/sim"
)

// shardConfig is a compact two-strip network with enough cross-border
// traffic to exercise the conduit in both directions.
func shardConfig(shards int) Config {
	cfg := DefaultConfig()
	cfg.Nodes = 40
	cfg.Field = geom.Rect{W: 400, H: 150}
	cfg.Rate = 20
	cfg.Packets = 30
	cfg.Warmup = 2 * sim.Second
	cfg.Drain = 2 * sim.Second
	cfg.Shards = shards
	return cfg
}

// TestShardedDeterministic pins the determinism contract of DESIGN.md §14:
// for a fixed (Seed, Shards) pair, reruns are bit-identical — the whole
// result fingerprint matches — regardless of goroutine scheduling, and a
// different seed actually changes the run.
func TestShardedDeterministic(t *testing.T) {
	for _, shards := range []int{2, 4} {
		cfg := shardConfig(shards)
		a := Run(cfg)
		if a.Failed {
			t.Fatalf("shards=%d failed: %s\n%s", shards, a.FailReason, a.Stack)
		}
		if a.Aborted {
			t.Fatalf("shards=%d aborted: %s", shards, a.AbortReason)
		}
		b := Run(cfg)
		if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
			t.Fatalf("shards=%d rerun diverged:\n%s\n%s", shards, fa, fb)
		}
		cfg.Seed = 7
		c := Run(cfg)
		if c.Events == a.Events {
			t.Errorf("shards=%d: different seeds produced identical event counts", shards)
		}
	}
}

// TestShardedDelivers checks the sharded engine produces a working network:
// traffic flows, the protocol audits stay clean on every shard, and the
// per-shard scheduler stats are populated and consistent.
func TestShardedDelivers(t *testing.T) {
	cfg := shardConfig(2)
	res := Run(cfg)
	if res.Failed {
		t.Fatalf("failed: %s\n%s", res.FailReason, res.Stack)
	}
	if res.Metrics.Generated != uint64(cfg.Packets) {
		t.Fatalf("generated = %d, want %d", res.Metrics.Generated, cfg.Packets)
	}
	if res.Delivery <= 0 {
		t.Fatalf("delivery = %v, want > 0", res.Delivery)
	}
	if res.ViolationCount != 0 {
		t.Fatalf("%d audit violations: %+v", res.ViolationCount, res.Violations)
	}
	if len(res.Shards) != 2 {
		t.Fatalf("shard stats: %+v", res.Shards)
	}
	var events uint64
	nodes := 0
	for _, ss := range res.Shards {
		events += ss.Events
		nodes += ss.Nodes
		if ss.Events == 0 || ss.Windows == 0 {
			t.Errorf("shard %d idle: %+v", ss.Shard, ss)
		}
	}
	if events != res.Events || nodes != cfg.Nodes {
		t.Fatalf("shard stats don't add up: events %d/%d nodes %d/%d",
			events, res.Events, nodes, cfg.Nodes)
	}
	// Border traffic must flow both ways on a connected strip pair, and
	// every published message must have been drained by run end.
	if res.Shards[0].MsgsOut == 0 || res.Shards[1].MsgsOut == 0 {
		t.Fatalf("no cross-shard traffic: %+v", res.Shards)
	}
	if res.Shards[0].MsgsIn != res.Shards[1].MsgsOut ||
		res.Shards[1].MsgsIn != res.Shards[0].MsgsOut {
		t.Fatalf("cross-shard messages lost: %+v", res.Shards)
	}
}

// TestShardedMetroDecouples: on a metro placement the strip cuts snap into
// the inter-district voids, the direct lookahead matrix is all-MaxTime, and
// every shard runs its full horizon in a single window with zero conduit
// traffic — the fully parallel fast path.
func TestShardedMetroDecouples(t *testing.T) {
	cfg := shardConfig(2)
	cfg.Topo = TopoMetro
	cfg.Sources = 2 // one multicast source per district
	res := Run(cfg)
	if res.Failed {
		t.Fatalf("failed: %s\n%s", res.FailReason, res.Stack)
	}
	if res.Metrics.Receptions == 0 {
		t.Fatal("no receptions in either district")
	}
	for _, ss := range res.Shards {
		if ss.MsgsOut != 0 || ss.MsgsIn != 0 {
			t.Fatalf("decoupled districts exchanged messages: %+v", ss)
		}
		if ss.Windows != 1 {
			t.Errorf("shard %d took %d windows, want 1 (decoupled)", ss.Shard, ss.Windows)
		}
	}
}

// TestShardedAbortMidRun is the satellite-2 regression: cancelling the run
// context while shards are deep in the frontier loop must abort every shard
// promptly — including shards blocked on a frontier barrier or a full ring
// — rather than hanging the barrier.
func TestShardedAbortMidRun(t *testing.T) {
	cfg := shardConfig(2)
	cfg.Packets = 1 << 16 // effectively unbounded horizon
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	done := make(chan RunResult, 1)
	go func() { done <- RunCtx(ctx, cfg) }()
	select {
	case res := <-done:
		if res.Failed {
			t.Fatalf("failed: %s\n%s", res.FailReason, res.Stack)
		}
		if !res.Aborted {
			t.Fatal("run finished without aborting despite cancelled context")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sharded run hung after context cancellation")
	}
}

// TestShardOneMatchesUnsharded pins Shards=1 to the plain single-engine
// path: identical fingerprint, bit for bit.
func TestShardOneMatchesUnsharded(t *testing.T) {
	cfg := shardConfig(0)
	base := Run(cfg)
	cfg.Shards = 1
	one := Run(cfg)
	if fb, fo := base.Fingerprint(), one.Fingerprint(); fb != fo {
		t.Fatalf("Shards=1 diverged from unsharded:\n%s\n%s", fb, fo)
	}
}

// TestShardedMobileDeterministic extends the §14 determinism contract to
// mobile sharded runs (DESIGN.md §15): epoch rollovers, catalog rebuilds
// and ghost records must not introduce any schedule-dependent state — for
// a fixed (Seed, Shards) pair the whole result fingerprint is
// bit-identical across reruns, and the per-shard epoch counters agree.
func TestShardedMobileDeterministic(t *testing.T) {
	for _, shards := range []int{2, 4} {
		cfg := shardConfig(shards)
		cfg.Scenario = Speed1
		a := Run(cfg)
		if a.Failed {
			t.Fatalf("shards=%d failed: %s\n%s", shards, a.FailReason, a.Stack)
		}
		if a.Aborted {
			t.Fatalf("shards=%d aborted: %s", shards, a.AbortReason)
		}
		b := Run(cfg)
		if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
			t.Fatalf("shards=%d mobile rerun diverged:\n%s\n%s", shards, fa, fb)
		}
		for s := range a.Shards {
			if a.Shards[s].Epochs != b.Shards[s].Epochs ||
				a.Shards[s].GhostAdds != b.Shards[s].GhostAdds ||
				a.Shards[s].GhostDels != b.Shards[s].GhostDels {
				t.Errorf("shards=%d shard %d epoch stats diverged: %+v vs %+v",
					shards, s, a.Shards[s], b.Shards[s])
			}
		}
		cfg.Seed = 7
		c := Run(cfg)
		if c.Events == a.Events {
			t.Errorf("shards=%d: different seeds produced identical event counts", shards)
		}
	}
}

// TestShardedMobileDelivers checks the epoch protocol produces a working
// mobile network: traffic flows, audits stay clean, every shard crosses
// the same number of epoch boundaries, conduit accounting balances, and
// ghost churn is self-consistent (installs minus removals is the live
// ghost count, so removals can never exceed installs). Aggregate results
// are NOT compared against the unsharded engine: each shard engine owns
// an independent RNG stream, so backoff and beacon jitter draws diverge
// and the runs explore different contention schedules (same for
// stationary sharding). The bit-exact physics contract lives at the phy
// layer — TestShardBoundaryMobilePhysics replays identical trajectories
// and scripts through both fabrics.
func TestShardedMobileDelivers(t *testing.T) {
	cfg := shardConfig(2)
	cfg.Scenario = Speed1
	res := Run(cfg)
	if res.Failed {
		t.Fatalf("failed: %s\n%s", res.FailReason, res.Stack)
	}
	if res.Metrics.Generated != uint64(cfg.Packets) {
		t.Fatalf("generated = %d, want %d", res.Metrics.Generated, cfg.Packets)
	}
	if res.Delivery <= 0 {
		t.Fatalf("delivery = %v, want > 0", res.Delivery)
	}
	if res.ViolationCount != 0 {
		t.Fatalf("%d audit violations: %+v", res.ViolationCount, res.Violations)
	}
	wantEpochs := uint64(res.Shards[0].Epochs)
	if wantEpochs == 0 {
		t.Fatalf("no epoch rollovers over a %v horizon: %+v", cfg.Horizon(), res.Shards[0])
	}
	var adds uint64
	for _, ss := range res.Shards {
		if ss.Epochs != wantEpochs {
			t.Errorf("shard %d crossed %d epochs, shard 0 crossed %d", ss.Shard, ss.Epochs, wantEpochs)
		}
		if ss.GhostDels > ss.GhostAdds {
			t.Errorf("shard %d removed %d ghosts but only installed %d", ss.Shard, ss.GhostDels, ss.GhostAdds)
		}
		adds += ss.GhostAdds
	}
	if adds == 0 {
		t.Error("no ghost installs on a coupled strip pair")
	}
	if res.Shards[0].MsgsIn != res.Shards[1].MsgsOut ||
		res.Shards[1].MsgsIn != res.Shards[0].MsgsOut {
		t.Fatalf("cross-shard messages lost: %+v", res.Shards)
	}
}

// TestShardOneMatchesUnshardedMobile pins Shards=1 on a mobile scenario to
// the plain single-engine path, bit for bit — enabling sharding without
// actually splitting the field must not perturb topology derivation or
// trajectories.
func TestShardOneMatchesUnshardedMobile(t *testing.T) {
	cfg := shardConfig(0)
	cfg.Scenario = Speed1
	base := Run(cfg)
	cfg.Shards = 1
	one := Run(cfg)
	if fb, fo := base.Fingerprint(), one.Fingerprint(); fb != fo {
		t.Fatalf("mobile Shards=1 diverged from unsharded:\n%s\n%s", fb, fo)
	}
}

// TestShardedSteadyStateAllocs is the per-shard analogue of
// TestSteadyStateAllocs: each shard stack, driven through its own engine,
// must stay allocation-free in steady state — with stationary radios and
// with every radio on a waypoint trajectory (live-position fan-out,
// memoised PositionOf). A metro placement keeps the shards decoupled
// (asserted below) so the engines can be stepped directly without the
// frontier protocol; the decoupled catalogs stay empty, so skipping the
// epoch rebuilds is sound for the mobile subtest too.
func TestShardedSteadyStateAllocs(t *testing.T) {
	for _, sc := range []Scenario{Stationary, Speed1} {
		t.Run(sc.String(), func(t *testing.T) {
			cfg := shardConfig(2)
			cfg.Topo = TopoMetro
			cfg.Sources = 2
			cfg.Rate = 40
			cfg.Packets = 1 << 20
			cfg.Scenario = sc
			if err := cfg.Validate(); err != nil {
				t.Fatal(err)
			}
			sr := buildSharded(cfg)
			for _, row := range sr.net.Direct() {
				for _, la := range row {
					if la != sim.MaxTime {
						t.Fatal("metro shards coupled; direct stepping would drop cross traffic")
					}
				}
			}
			warm := cfg.Warmup + 2*sim.Second
			for _, st := range sr.stacks {
				st.eng.Run(warm)
			}
			var before, after runtime.MemStats
			var events uint64
			for _, st := range sr.stacks {
				events -= st.eng.Processed
			}
			runtime.ReadMemStats(&before)
			for _, st := range sr.stacks {
				st.eng.Run(warm + 3*sim.Second)
			}
			runtime.ReadMemStats(&after)
			for _, st := range sr.stacks {
				events += st.eng.Processed
			}
			if events == 0 {
				t.Fatal("no events in measurement window")
			}
			allocs := after.Mallocs - before.Mallocs
			perEvent := float64(allocs) / float64(events)
			t.Logf("%d allocs over %d events (%.5f allocs/event)", allocs, events, perEvent)
			if perEvent > 0.005 {
				t.Errorf("sharded steady state allocates %.5f allocs/event, want ≤ 0.005", perEvent)
			}
		})
	}
}
