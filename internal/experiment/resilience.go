package experiment

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"

	"rmac/internal/fault"
	"rmac/internal/stats"
)

// ResilienceLevel is one impairment setting of a resilience sweep: a
// named fault configuration applied identically to every compared
// protocol.
type ResilienceLevel struct {
	// Name labels the level in tables and CSV ("burst=0.2", "avail=0.8").
	Name string
	// Fault is the impairment applied at this level.
	Fault fault.Config
}

// DefaultBurstLevels sweeps the Gilbert–Elliott bad-state duty cycle
// from a clean channel to a channel erased 60% of the time.
func DefaultBurstLevels() []ResilienceLevel {
	sevs := []float64{0, 0.05, 0.1, 0.2, 0.4, 0.6}
	out := make([]ResilienceLevel, 0, len(sevs))
	for _, s := range sevs {
		out = append(out, ResilienceLevel{
			Name:  fmt.Sprintf("burst=%.2f", s),
			Fault: fault.Config{Burst: fault.BurstAt(s)},
		})
	}
	return out
}

// DefaultChurnLevels sweeps per-node availability from always-up to
// nodes that are down 40% of the time (the source is spared throughout).
func DefaultChurnLevels() []ResilienceLevel {
	avails := []float64{1, 0.95, 0.9, 0.8, 0.6}
	out := make([]ResilienceLevel, 0, len(avails))
	for _, a := range avails {
		out = append(out, ResilienceLevel{
			Name:  fmt.Sprintf("avail=%.2f", a),
			Fault: fault.Config{Churn: fault.ChurnAt(a)},
		})
	}
	return out
}

// ResiliencePoint aggregates the runs of one (protocol, level) cell.
type ResiliencePoint struct {
	Protocol Protocol
	Level    ResilienceLevel

	Runs []RunResult

	Delivery     float64
	DeliveryStd  float64
	AvgDelay     float64
	AvgDropRatio float64
	AvgRetxRatio float64

	// Fault-layer totals summed over the cell's completed runs.
	BurstErrors uint64
	Crashes     uint64
	Deadlocks   int

	FailedRuns  int
	AbortedRuns int
}

// ResilienceSweep describes a (protocol × impairment level × seed) grid:
// the experiment behind the "delivery vs burst-loss rate / churn rate"
// curves. Every run carries the engine watchdog so a runaway or wedged
// simulation is cut off rather than hanging the sweep.
type ResilienceSweep struct {
	Base      Config
	Protocols []Protocol
	Levels    []ResilienceLevel
	Seeds     int
	// Parallelism bounds concurrent runs; 0 means GOMAXPROCS.
	Parallelism int
	// Progress, when non-nil, receives (done, total) after each run; same
	// concurrency contract as Sweep.Progress.
	Progress func(done, total int)
}

// RunResilienceSweep executes the grid and aggregates per (protocol,
// level) cell. Failed runs are reported, not averaged; watchdog-aborted
// runs contribute their partial metrics.
func RunResilienceSweep(s ResilienceSweep) []ResiliencePoint {
	return RunResilienceSweepCtx(context.Background(), s)
}

// RunResilienceSweepCtx is RunResilienceSweep with cooperative
// cancellation, with the same semantics as RunSweepCtx: no new points are
// dispatched once ctx is done, in-flight runs abort at their engines'
// next periodic check, and completed results are aggregated as usual.
func RunResilienceSweepCtx(ctx context.Context, s ResilienceSweep) []ResiliencePoint {
	type job struct {
		cell int
		cfg  Config
	}
	var jobs []job
	// Level-major order, so results group naturally into one table block
	// per impairment level.
	cells := make([]ResiliencePoint, 0, len(s.Protocols)*len(s.Levels))
	for _, lv := range s.Levels {
		for _, p := range s.Protocols {
			cell := len(cells)
			cells = append(cells, ResiliencePoint{Protocol: p, Level: lv})
			for seed := 0; seed < s.Seeds; seed++ {
				cfg := s.Base
				cfg.Protocol = p
				cfg.Fault = lv.Fault
				// Same placement across compared protocols, as in RunSweep.
				cfg.Seed = int64(seed)*7919 + int64(cfg.Scenario) + 1
				jobs = append(jobs, job{cell, cfg})
			}
		}
	}

	workers := s.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	results := make([][]RunResult, len(cells))
	var mu sync.Mutex
	done := 0
	jobCh := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				if ctx.Err() != nil {
					continue // drain without dispatching
				}
				res := RunCtx(ctx, j.cfg)
				mu.Lock()
				results[j.cell] = append(results[j.cell], res)
				done++
				d := done
				mu.Unlock()
				if s.Progress != nil {
					s.Progress(d, len(jobs))
				}
			}
		}()
	}
feed:
	for _, j := range jobs {
		select {
		case jobCh <- j:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobCh)
	wg.Wait()

	for i := range cells {
		cells[i].Runs = results[i]
		cells[i].aggregate()
	}
	return cells
}

func (p *ResiliencePoint) aggregate() {
	var deliv, delay, drop, retx stats.Sample
	for _, r := range p.Runs {
		if r.Failed {
			p.FailedRuns++
			continue
		}
		if r.Aborted {
			p.AbortedRuns++
		}
		deliv.Add(r.Delivery)
		delay.Add(r.AvgDelay)
		drop.Add(r.AvgDropRatio)
		retx.Add(r.AvgRetxRatio)
		p.BurstErrors += r.Fault.BurstErrors
		p.Crashes += r.Crashes
		p.Deadlocks += len(r.Deadlocks)
	}
	p.Delivery = deliv.Mean()
	p.DeliveryStd = deliv.StdDev()
	p.AvgDelay = delay.Mean()
	p.AvgDropRatio = drop.Mean()
	p.AvgRetxRatio = retx.Mean()
}

// WriteResilienceTable renders the sweep as one block per impairment
// level, one row per protocol.
func WriteResilienceTable(w io.Writer, points []ResiliencePoint) {
	fmt.Fprintln(w, "== resilience: delivery under bursty loss and node churn ==")
	var lastLevel string
	for _, p := range points {
		if p.Level.Name != lastLevel {
			lastLevel = p.Level.Name
			fmt.Fprintf(w, "-- %s --\n", lastLevel)
			fmt.Fprintf(w, "%10s %10s %10s %10s %10s %8s %8s %6s\n",
				"protocol", "delivery", "drop", "retx", "delay_s", "crashes", "bursterr", "fail")
		}
		fmt.Fprintf(w, "%10v %10.4f %10.4f %10.4f %10.4f %8d %8d %6d\n",
			p.Protocol, p.Delivery, p.AvgDropRatio, p.AvgRetxRatio, p.AvgDelay,
			p.Crashes, p.BurstErrors, p.FailedRuns)
	}
	fmt.Fprintln(w)
}

// WriteResilienceCSV emits the sweep as CSV for external plotting.
func WriteResilienceCSV(w io.Writer, points []ResiliencePoint) error {
	if _, err := fmt.Fprintln(w, "protocol,level,delivery,delivery_std,drop,retx,delay_s,burst_errors,crashes,deadlocks,failed,aborted,runs"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%v,%s,%.6f,%.6f,%.6f,%.6f,%.6f,%d,%d,%d,%d,%d,%d\n",
			p.Protocol, p.Level.Name, p.Delivery, p.DeliveryStd, p.AvgDropRatio, p.AvgRetxRatio,
			p.AvgDelay, p.BurstErrors, p.Crashes, p.Deadlocks, p.FailedRuns, p.AbortedRuns,
			len(p.Runs)); err != nil {
			return err
		}
	}
	return nil
}
