package experiment

import (
	"bytes"
	"strings"
	"testing"

	"rmac/internal/fault"
	"rmac/internal/mac"
)

// TestSweepSurvivesPanickingRun is the crash-proofing acceptance test: one
// seed of a sweep panics inside the simulation, and the sweep must report
// exactly one Failed result — with the captured stack — while the other
// seeds aggregate normally.
func TestSweepSurvivesPanickingRun(t *testing.T) {
	const seeds = 4
	poison := int64(2)*7919 + int64(Stationary) + 1 // seed index 2's derived seed
	testHookPreRun = func(cfg Config) {
		if cfg.Seed == poison {
			panic("injected test panic")
		}
	}
	defer func() { testHookPreRun = nil }()

	cfg := smallConfig()
	points := RunSweep(Sweep{
		Base:      cfg,
		Protocols: []Protocol{RMAC},
		Scenarios: []Scenario{Stationary},
		Rates:     []float64{cfg.Rate},
		Seeds:     seeds,
	})
	if len(points) != 1 {
		t.Fatalf("expected 1 point, got %d", len(points))
	}
	p := points[0]
	if p.FailedRuns != 1 {
		t.Fatalf("FailedRuns = %d, want 1", p.FailedRuns)
	}
	var failed *RunResult
	healthy := 0
	for i := range p.Runs {
		if p.Runs[i].Failed {
			failed = &p.Runs[i]
		} else {
			healthy++
		}
	}
	if failed == nil {
		t.Fatal("no Failed run in point.Runs")
	}
	if !strings.Contains(failed.FailReason, "injected test panic") {
		t.Errorf("FailReason = %q, want the injected panic message", failed.FailReason)
	}
	if failed.Stack == "" {
		t.Error("Failed run carries no stack trace")
	}
	if healthy != seeds-1 {
		t.Errorf("healthy runs = %d, want %d", healthy, seeds-1)
	}
	if p.Delivery <= 0 {
		t.Errorf("surviving seeds were not aggregated: Delivery = %g", p.Delivery)
	}
}

// TestInvalidConfigFails verifies satellite (a): an unsimulatable
// configuration yields a Failed result with a message, never a panic.
func TestInvalidConfigFails(t *testing.T) {
	cfg := smallConfig()
	cfg.Nodes = 1
	res := Run(cfg)
	if !res.Failed {
		t.Fatal("Run accepted a 1-node configuration")
	}
	if !strings.Contains(res.FailReason, "at least 2 nodes") {
		t.Errorf("FailReason = %q, want the node-count message", res.FailReason)
	}

	bad := smallConfig()
	bad.Fault.Burst = fault.BurstConfig{Enabled: true, BERBad: 2}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted an out-of-range burst BER")
	}
}

// TestWatchdogAbortReportsPartialStats verifies a run cut off by the
// event-budget watchdog still reports the metrics of its simulated prefix.
func TestWatchdogAbortReportsPartialStats(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxEvents = 20_000 // far below the ~10^5+ events a full run needs
	res := Run(cfg)
	if res.Failed {
		t.Fatalf("watchdog abort must not be a failure: %s", res.FailReason)
	}
	if !res.Aborted {
		t.Fatal("run was not aborted despite a tiny event budget")
	}
	if !strings.Contains(res.AbortReason, "event budget") {
		t.Errorf("AbortReason = %q, want an event-budget message", res.AbortReason)
	}
	if res.Events == 0 || res.Events > cfg.MaxEvents {
		t.Errorf("Events = %d, want in (0, %d]", res.Events, cfg.MaxEvents)
	}
	// The prefix still produced a tree and per-node stats.
	if res.Tree.Reachable == 0 {
		t.Error("partial result carries no tree stats")
	}

	// Aborted runs are averaged (with a marker), not discarded.
	var pt Point
	pt.Runs = []RunResult{res}
	pt.aggregate()
	if pt.AbortedRuns != 1 || pt.FailedRuns != 0 {
		t.Errorf("aggregate: AbortedRuns=%d FailedRuns=%d, want 1 and 0", pt.AbortedRuns, pt.FailedRuns)
	}
}

// stubMAC is a minimal mac.MAC with scripted liveness, for auditing.
type stubMAC struct {
	mac.MAC
	l mac.Liveness
}

func (s stubMAC) Liveness() mac.Liveness { return s.l }

// plainMAC implements mac.MAC but not LivenessReporter.
type plainMAC struct{ mac.MAC }

func TestAuditLiveness(t *testing.T) {
	macs := []mac.MAC{
		stubMAC{l: mac.Liveness{State: "idle", Idle: true}},        // healthy idle
		stubMAC{l: mac.Liveness{State: "wait_cts", Pending: true}}, // busy but armed
		stubMAC{l: mac.Liveness{State: "wait_ack", Idle: false}},   // deadlocked
		plainMAC{}, // no reporter: skipped
		stubMAC{l: mac.Liveness{State: "defer", Idle: true, Pending: true}}, // idle wins
	}
	got := auditLiveness(macs)
	if len(got) != 1 {
		t.Fatalf("flagged %d nodes, want 1: %+v", len(got), got)
	}
	if got[0].Node != 2 || got[0].State != "wait_ack" {
		t.Errorf("flagged %+v, want node 2 in wait_ack", got[0])
	}
}

// TestFaultRunDeterministicDegradation runs a small simulation under heavy
// impairment twice: both runs must agree bit-for-bit, show the fault layer
// actually fired, and deliver less than the clean channel does.
func TestFaultRunDeterministicDegradation(t *testing.T) {
	clean := Run(smallConfig())

	cfg := smallConfig()
	cfg.Fault = fault.Config{Burst: fault.BurstAt(0.4), Churn: fault.ChurnAt(0.8)}
	a := Run(cfg)
	b := Run(cfg)

	if goldenFaultString(a) != goldenFaultString(b) {
		t.Errorf("identical-seed faulty runs diverged\nfirst:  %s\nsecond: %s",
			goldenFaultString(a), goldenFaultString(b))
	}
	if a.Fault.BurstErrors == 0 {
		t.Error("burst model enabled but corrupted no frames")
	}
	if a.Crashes == 0 || a.Fault.Crashes != a.Crashes {
		t.Errorf("churn crashes: injector=%d medium=%d, want equal and nonzero",
			a.Fault.Crashes, a.Crashes)
	}
	if a.Delivery >= clean.Delivery {
		t.Errorf("impaired delivery %g not below clean delivery %g", a.Delivery, clean.Delivery)
	}
	if len(a.Deadlocks) != 0 {
		t.Errorf("liveness audit flagged nodes under faults: %+v", a.Deadlocks)
	}
}

// TestResilienceSweep smoke-tests the grid runner and both writers.
func TestResilienceSweep(t *testing.T) {
	cfg := smallConfig()
	cfg.Packets = 20
	levels := []ResilienceLevel{
		{Name: "clean", Fault: fault.Config{}},
		{Name: "burst=0.40", Fault: fault.Config{Burst: fault.BurstAt(0.4)}},
	}
	points := RunResilienceSweep(ResilienceSweep{
		Base:      cfg,
		Protocols: []Protocol{RMAC, BMMM},
		Levels:    levels,
		Seeds:     2,
	})
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	// Level-major ordering: both protocols of a level are adjacent.
	if points[0].Level.Name != "clean" || points[1].Level.Name != "clean" {
		t.Errorf("points not level-major: %s then %s", points[0].Level.Name, points[1].Level.Name)
	}
	for _, p := range points {
		if len(p.Runs) != 2 || p.FailedRuns != 0 {
			t.Errorf("%v/%s: runs=%d failed=%d", p.Protocol, p.Level.Name, len(p.Runs), p.FailedRuns)
		}
		if p.Level.Name == "clean" && p.BurstErrors != 0 {
			t.Errorf("%v clean level reports %d burst errors", p.Protocol, p.BurstErrors)
		}
		if p.Level.Name != "clean" && p.BurstErrors == 0 {
			t.Errorf("%v impaired level reports no burst errors", p.Protocol)
		}
	}

	var tbl bytes.Buffer
	WriteResilienceTable(&tbl, points)
	out := tbl.String()
	if strings.Count(out, "-- clean --") != 1 || strings.Count(out, "-- burst=0.40 --") != 1 {
		t.Errorf("table missing level blocks:\n%s", out)
	}
	if strings.Count(out, "RMAC") != 2 || strings.Count(out, "BMMM") != 2 {
		t.Errorf("table missing protocol rows:\n%s", out)
	}

	var csv bytes.Buffer
	if err := WriteResilienceCSV(&csv, points); err != nil {
		t.Fatalf("WriteResilienceCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 1+len(points) {
		t.Errorf("CSV has %d lines, want %d", len(lines), 1+len(points))
	}
	if !strings.HasPrefix(lines[0], "protocol,level,delivery") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

// TestDefaultLevels sanity-checks the canned level ladders.
func TestDefaultLevels(t *testing.T) {
	bl := DefaultBurstLevels()
	if len(bl) == 0 || bl[0].Fault.Enabled() {
		t.Errorf("burst ladder must start with a clean level: %+v", bl)
	}
	cl := DefaultChurnLevels()
	if len(cl) == 0 || cl[0].Fault.Enabled() {
		t.Errorf("churn ladder must start with a clean level: %+v", cl)
	}
	for _, lv := range append(bl[1:], cl[1:]...) {
		if !lv.Fault.Enabled() {
			t.Errorf("level %s is unexpectedly inert", lv.Name)
		}
	}
}

// TestWatchdogWallClock exercises the wall-clock budget path end to end
// with a budget no simulation can beat.
func TestWatchdogWallClock(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxWall = 1 // 1ns: aborts at the first watchdog check
	res := Run(cfg)
	if !res.Aborted {
		t.Fatal("run was not aborted despite a 1ns wall budget")
	}
	if !strings.Contains(res.AbortReason, "wall") {
		t.Errorf("AbortReason = %q, want a wall-clock message", res.AbortReason)
	}
}
