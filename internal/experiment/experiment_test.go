package experiment

import (
	"strings"
	"testing"

	"rmac/internal/geom"
	"rmac/internal/sim"
)

// smallConfig is a quick 20-node network for integration tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Nodes = 20
	cfg.Field = geom.Rect{W: 250, H: 150}
	cfg.Rate = 10
	cfg.Packets = 40
	cfg.Warmup = 8 * sim.Second
	cfg.Drain = 8 * sim.Second
	return cfg
}

func TestRunRMACStationaryDelivers(t *testing.T) {
	res := Run(smallConfig())
	if res.Metrics.Generated != 40 {
		t.Fatalf("generated = %d", res.Metrics.Generated)
	}
	// §4.2.1: stationary RMAC delivery ratio is close to 1.
	if res.Delivery < 0.95 {
		t.Fatalf("RMAC stationary delivery = %.3f, want ≥0.95", res.Delivery)
	}
	if res.AvgDelay <= 0 || res.AvgDelay > 2 {
		t.Fatalf("avg delay = %v s", res.AvgDelay)
	}
	if res.NonLeafCount == 0 {
		t.Fatal("no forwarders detected")
	}
	if res.MRTSLens.N() == 0 {
		t.Fatal("no MRTS lengths collected")
	}
	if res.Tree.Reachable != 20 {
		t.Fatalf("final tree reaches %d/20", res.Tree.Reachable)
	}
}

func TestRunBMMMStationaryDelivers(t *testing.T) {
	cfg := smallConfig()
	cfg.Protocol = BMMM
	res := Run(cfg)
	if res.Delivery < 0.9 {
		t.Fatalf("BMMM stationary delivery = %.3f, want ≥0.9", res.Delivery)
	}
	if res.MRTSLens.N() != 0 {
		t.Fatal("BMMM must not record MRTS lengths")
	}
}

func TestRunBMWStationaryDelivers(t *testing.T) {
	cfg := smallConfig()
	cfg.Protocol = BMW
	cfg.Packets = 20
	res := Run(cfg)
	if res.Delivery < 0.85 {
		t.Fatalf("BMW stationary delivery = %.3f, want ≥0.85", res.Delivery)
	}
}

func TestRunMobileScenario(t *testing.T) {
	cfg := smallConfig()
	cfg.Scenario = Speed2
	cfg.Packets = 30
	res := Run(cfg)
	// Mobility costs delivery but the network must still mostly work.
	if res.Delivery < 0.3 {
		t.Fatalf("mobile delivery = %.3f, suspiciously low", res.Delivery)
	}
	if res.Metrics.Generated != 30 {
		t.Fatal("generation count")
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	cfg := smallConfig()
	cfg.Packets = 20
	a := Run(cfg)
	b := Run(cfg)
	if a.Delivery != b.Delivery || a.Events != b.Events || a.AvgRetxRatio != b.AvgRetxRatio {
		t.Fatalf("same seed diverged: %+v vs %+v", a.Delivery, b.Delivery)
	}
	cfg.Seed = 2
	c := Run(cfg)
	if a.Events == c.Events {
		t.Fatal("different seeds produced identical event counts (suspicious)")
	}
}

// TestRMACOutperformsBMMMUnderLoad pins the paper's headline comparison on
// a small network at a saturating rate: RMAC must deliver at least as much
// as BMMM and spend less on control overhead (Figures 7 and 11).
func TestRMACOutperformsBMMMUnderLoad(t *testing.T) {
	base := smallConfig()
	base.Rate = 60
	base.Packets = 120

	r := base
	r.Protocol = RMAC
	rmacRes := Run(r)
	b := base
	b.Protocol = BMMM
	bmmmRes := Run(b)

	if rmacRes.Delivery < bmmmRes.Delivery-0.02 {
		t.Fatalf("delivery: RMAC %.3f < BMMM %.3f", rmacRes.Delivery, bmmmRes.Delivery)
	}
	if rmacRes.AvgOverheadRatio >= bmmmRes.AvgOverheadRatio {
		t.Fatalf("overhead: RMAC %.3f >= BMMM %.3f", rmacRes.AvgOverheadRatio, bmmmRes.AvgOverheadRatio)
	}
	if rmacRes.AvgDelay > bmmmRes.AvgDelay*1.5 {
		t.Fatalf("delay: RMAC %.3f vs BMMM %.3f", rmacRes.AvgDelay, bmmmRes.AvgDelay)
	}
}

func TestSweepAggregatesCells(t *testing.T) {
	base := smallConfig()
	base.Packets = 15
	s := Sweep{
		Base:      base,
		Protocols: []Protocol{RMAC, BMMM},
		Scenarios: []Scenario{Stationary},
		Rates:     []float64{10, 20},
		Seeds:     2,
	}
	var progress int
	s.Progress = func(done, total int) {
		progress = done
		if total != 8 {
			t.Errorf("total = %d, want 8", total)
		}
	}
	points := RunSweep(s)
	if len(points) != s.Cells() || s.Cells() != 4 {
		t.Fatalf("points = %d", len(points))
	}
	if progress != 8 {
		t.Fatalf("progress = %d", progress)
	}
	for _, p := range points {
		if len(p.Runs) != 2 {
			t.Fatalf("cell %v/%v/%v has %d runs", p.Protocol, p.Scenario, p.Rate, len(p.Runs))
		}
		if p.Delivery <= 0 || p.Delivery > 1 {
			t.Fatalf("delivery out of range: %v", p.Delivery)
		}
	}
	// Order: protocol-major, then scenario, then rate.
	if points[0].Protocol != RMAC || points[0].Rate != 10 || points[1].Rate != 20 {
		t.Fatalf("ordering wrong: %+v", points[:2])
	}
	if points[2].Protocol != BMMM {
		t.Fatal("protocol ordering wrong")
	}
}

// TestSweepSamePlacementAcrossProtocols verifies the §4.1.2 methodology:
// "each set of ten experiments is done for RMAC and BMMM respectively with
// identical node placements" — same seed index, same scenario, same tree.
func TestSweepSamePlacementAcrossProtocols(t *testing.T) {
	base := smallConfig()
	base.Packets = 10
	s := Sweep{
		Base:      base,
		Protocols: []Protocol{RMAC, BMMM},
		Scenarios: []Scenario{Stationary},
		Rates:     []float64{10},
		Seeds:     1,
	}
	points := RunSweep(s)
	a, b := points[0].Runs[0], points[1].Runs[0]
	if a.Config.Seed != b.Config.Seed {
		t.Fatalf("seeds differ: %d vs %d", a.Config.Seed, b.Config.Seed)
	}
}

func TestFigureSpecs(t *testing.T) {
	figs := Figures()
	if len(figs) != 7 {
		t.Fatalf("figure count = %d, want 7 (fig7..fig13)", len(figs))
	}
	ids := map[string]bool{}
	for _, f := range figs {
		ids[f.ID] = true
		if f.Value == nil || f.Title == "" || len(f.Protocols) == 0 {
			t.Fatalf("incomplete figure spec %+v", f)
		}
	}
	for _, want := range []string{"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13"} {
		if !ids[want] {
			t.Fatalf("missing %s", want)
		}
	}
	if _, err := FigureByID("fig7"); err != nil {
		t.Fatal(err)
	}
	if _, err := FigureByID("nope"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestReportRendering(t *testing.T) {
	p := Point{Protocol: RMAC, Scenario: Stationary, Rate: 20, Delivery: 0.99}
	q := Point{Protocol: BMMM, Scenario: Stationary, Rate: 20, Delivery: 0.80}
	fig, _ := FigureByID("fig7")
	var sb strings.Builder
	WriteFigureTable(&sb, fig, []Point{p, q}, []Scenario{Stationary})
	out := sb.String()
	for _, want := range []string{"FIG7", "stationary", "RMAC", "BMMM", "0.9900", "0.8000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	var csv strings.Builder
	if err := WriteCSV(&csv, []Point{p, q}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "protocol,scenario,rate") || !strings.Contains(csv.String(), "RMAC,stationary,20") {
		t.Fatalf("csv:\n%s", csv.String())
	}
}

func TestConfigHelpers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rate = 10
	cfg.Packets = 100
	wantHorizon := cfg.Warmup + 10*sim.Second + cfg.Drain
	if cfg.Horizon() != wantHorizon {
		t.Fatalf("horizon = %v, want %v", cfg.Horizon(), wantHorizon)
	}
	if RMAC.String() != "RMAC" || BMMM.String() != "BMMM" || BMW.String() != "BMW" {
		t.Fatal("protocol names")
	}
	if Stationary.String() != "stationary" || Speed1.MaxSpeed() != 4 || Speed2.Pause() != 5*sim.Second {
		t.Fatal("scenario params")
	}
	if len(PaperRates) != 8 || PaperRates[7] != 120 {
		t.Fatal("paper rates")
	}
}
