package experiment

import (
	"strings"
	"testing"
)

func plotPoints() []Point {
	var pts []Point
	for i, r := range []float64{10, 40, 80, 120} {
		pts = append(pts, Point{Protocol: RMAC, Scenario: Stationary, Rate: r, Delivery: 1 - float64(i)*0.02})
		pts = append(pts, Point{Protocol: BMMM, Scenario: Stationary, Rate: r, Delivery: 0.95 - float64(i)*0.08})
	}
	return pts
}

func TestWriteFigureASCII(t *testing.T) {
	fig, _ := FigureByID("fig7")
	var sb strings.Builder
	WriteFigureASCII(&sb, fig, plotPoints(), Stationary)
	out := sb.String()
	for _, want := range []string{"FIG7", "r=RMAC", "b=BMMM", "pkt/s", "ratio"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	// Both series produce marks.
	if !strings.Contains(out, "r") || !strings.Contains(out, "b") {
		t.Fatalf("marks missing:\n%s", out)
	}
	// Every grid row is framed.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "|") && len(line) > 80 {
			t.Fatalf("overlong plot row: %q", line)
		}
	}
}

func TestWriteFigureASCIINoData(t *testing.T) {
	fig, _ := FigureByID("fig7")
	var sb strings.Builder
	WriteFigureASCII(&sb, fig, nil, Speed2)
	if !strings.Contains(sb.String(), "no data") {
		t.Fatalf("expected no-data notice, got %q", sb.String())
	}
}

func TestWriteFigureASCIISummaryFigure(t *testing.T) {
	fig, _ := FigureByID("fig12")
	pts := []Point{{Protocol: RMAC, Scenario: Stationary, Rate: 10}, {Protocol: RMAC, Scenario: Stationary, Rate: 40}}
	var sb strings.Builder
	WriteFigureASCII(&sb, fig, pts, Stationary)
	if !strings.Contains(sb.String(), "FIG12") {
		t.Fatal("summary figure did not render")
	}
}
