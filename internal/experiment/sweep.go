package experiment

import (
	"context"
	"runtime"
	"sync"

	"rmac/internal/stats"
)

// Point aggregates the runs of one (protocol, scenario, rate) cell across
// seeds, exactly as the paper plots data points: "each data point except
// the maximum and 99 percentile values represents the average result of a
// set of ten experiments" (§4.1.2).
type Point struct {
	Protocol Protocol
	Scenario Scenario
	Rate     float64

	Runs []RunResult

	Delivery         float64 // mean R_deliv
	AvgDropRatio     float64
	AvgRetxRatio     float64
	AvgOverheadRatio float64
	AvgDelay         float64

	// DeliveryStd and DelayStd report the spread across seeds (population
	// standard deviation), quantifying placement-to-placement variance.
	DeliveryStd float64
	DelayStd    float64

	// Pooled distributions (Figures 12–13 report avg/99 %ile/max over
	// the whole set).
	MRTSLens    stats.Summary
	AbortRatios stats.Summary

	// FailedRuns counts runs excluded from the averages because they
	// failed (panic or invalid config); AbortedRuns counts runs the
	// watchdog stopped early (their partial metrics ARE averaged, since
	// a truncated run still measured real protocol behaviour).
	FailedRuns  int
	AbortedRuns int

	// Violations sums the invariant auditor's violation counts over the
	// cell's runs (0 when auditing is off or the stack conforms).
	Violations uint64
}

// Sweep describes a grid of runs.
type Sweep struct {
	Base      Config
	Protocols []Protocol
	Scenarios []Scenario
	Rates     []float64
	Seeds     int
	// Parallelism bounds concurrent runs; 0 means GOMAXPROCS.
	Parallelism int
	// Progress, when non-nil, receives (done, total) after each run. It is
	// called from the worker goroutines without holding any sweep lock, so
	// it may run concurrently with itself and must do its own
	// synchronization; done values may arrive out of order.
	Progress func(done, total int)
}

// Cells returns the number of aggregated points the sweep produces.
func (s Sweep) Cells() int { return len(s.Protocols) * len(s.Scenarios) * len(s.Rates) }

// RunSweep executes the grid with a worker pool — one goroutine per
// simulation, each with its own engine (simulations share nothing) — and
// aggregates per cell. Results are ordered by (protocol, scenario, rate)
// in the order given.
func RunSweep(s Sweep) []Point { return RunSweepCtx(context.Background(), s) }

// RunSweepCtx is RunSweep with cooperative cancellation: once ctx is done,
// no further grid points are dispatched, in-flight simulations abort at
// their engines' next periodic check (their partial results are recorded
// as Aborted), and the points aggregate whatever completed. A sweep whose
// context is never canceled is bit-identical to RunSweep.
func RunSweepCtx(ctx context.Context, s Sweep) []Point {
	type job struct {
		cell int
		cfg  Config
	}
	var jobs []job
	cells := make([]Point, 0, s.Cells())
	for _, p := range s.Protocols {
		for _, sc := range s.Scenarios {
			for _, r := range s.Rates {
				cell := len(cells)
				cells = append(cells, Point{Protocol: p, Scenario: sc, Rate: r})
				for seed := 0; seed < s.Seeds; seed++ {
					cfg := s.Base
					cfg.Protocol = p
					cfg.Scenario = sc
					cfg.Rate = r
					// The paper uses identical placements across the
					// compared protocols; seeding by (scenario, seed)
					// only achieves that.
					cfg.Seed = int64(seed)*7919 + int64(sc) + 1
					jobs = append(jobs, job{cell, cfg})
				}
			}
		}
	}

	workers := s.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	results := make([][]RunResult, len(cells))
	var mu sync.Mutex
	done := 0
	jobCh := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				if ctx.Err() != nil {
					continue // canceled: drain without running
				}
				res := RunCtx(ctx, j.cfg)
				mu.Lock()
				results[j.cell] = append(results[j.cell], res)
				done++
				d := done
				mu.Unlock()
				// Invoke the user callback outside the results lock: a slow
				// or re-entrant Progress must not stall the other workers.
				if s.Progress != nil {
					s.Progress(d, len(jobs))
				}
			}
		}()
	}
feed:
	for _, j := range jobs {
		select {
		case jobCh <- j:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobCh)
	wg.Wait()

	for i := range cells {
		cells[i].Runs = results[i]
		cells[i].aggregate()
	}
	return cells
}

// aggregate folds the cell's runs into the paper's point shape.
func (p *Point) aggregate() {
	var deliv, drop, retx, ovh, delay stats.Sample
	var lens, aborts stats.Sample
	for _, r := range p.Runs {
		if r.Failed {
			p.FailedRuns++
			continue
		}
		if r.Aborted {
			p.AbortedRuns++
		}
		p.Violations += r.ViolationCount
		deliv.Add(r.Delivery)
		drop.Add(r.AvgDropRatio)
		retx.Add(r.AvgRetxRatio)
		ovh.Add(r.AvgOverheadRatio)
		delay.Add(r.AvgDelay)
		if r.MRTSLens != nil {
			lens.AddAll(r.MRTSLens.Values())
		}
		if r.AbortRatios != nil {
			aborts.AddAll(r.AbortRatios.Values())
		}
	}
	p.Delivery = deliv.Mean()
	p.DeliveryStd = deliv.StdDev()
	p.DelayStd = delay.StdDev()
	p.AvgDropRatio = drop.Mean()
	p.AvgRetxRatio = retx.Mean()
	p.AvgOverheadRatio = ovh.Mean()
	p.AvgDelay = delay.Mean()
	p.MRTSLens = lens.Summarize()
	p.AbortRatios = aborts.Summarize()
}
