package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"runtime/debug"

	"rmac/internal/app"
	"rmac/internal/audit"
	"rmac/internal/fault"
	"rmac/internal/frame"
	"rmac/internal/mac"
	"rmac/internal/mac/bmmm"
	"rmac/internal/mac/bmw"
	"rmac/internal/mac/dot11"
	"rmac/internal/mac/lbp"
	"rmac/internal/mac/mx"
	"rmac/internal/mac/rmac"
	"rmac/internal/mobility"
	"rmac/internal/phy"
	"rmac/internal/routing"
	"rmac/internal/sim"
	"rmac/internal/stats"
	"rmac/internal/topo"
	"rmac/internal/trace"
)

// PlacementSeedMix decorrelates the placement RNG stream from the
// engine's contention stream while keeping both functions of Config.Seed.
const PlacementSeedMix = 0x5deece66d

// RunResult carries everything a run measured: the network-wide
// application metrics and the per-node MAC aggregates behind each figure.
type RunResult struct {
	Config Config

	// App-level (Figures 7 and 9).
	Metrics  app.Metrics
	Delivery float64 // R_deliv
	AvgDelay float64 // seconds

	// Per-node ratios averaged over non-leaf nodes (Figures 8, 10, 11).
	AvgDropRatio     float64
	AvgRetxRatio     float64
	AvgOverheadRatio float64
	NonLeafCount     int

	// RMAC-only distributions (Figures 12 and 13). Raw samples are kept
	// so sweeps can pool across seeds.
	MRTSLens    *stats.Sample // bytes, every MRTS sent by any node
	AbortRatios *stats.Sample // per non-leaf-node R_abort

	// Tree shape at the end of the run (§4.1.1 context).
	Tree topo.TreeStats

	// Simulator instrumentation.
	Events uint64
	// TimerStats is the engine's per-horizon timer census when
	// Config.TimerStats is set (nil otherwise).
	TimerStats *sim.TimerStats
	// Trace holds the PHY event timeline when Config.TraceCap > 0.
	Trace *trace.Trace

	// Fault carries the impairment layer's counters; Crashes is the
	// medium's count of applied radio crashes.
	Fault   fault.Stats
	Crashes uint64

	// Deadlocks lists nodes the liveness audit flagged at quiesce: stuck
	// in a non-idle protocol state with nothing armed to advance them.
	Deadlocks []Deadlock

	// Violations holds the protocol-invariant auditor's findings when
	// Config.Audit is set (capped with context; ViolationCount is the
	// uncapped total). A conforming protocol stack reports zero.
	Violations     []audit.Violation
	ViolationCount uint64

	// Totals carries the raw, non-derived counters of the run — summed
	// MAC statistics, channel-level medium counters, frame-pool traffic,
	// kernel arena occupancy and per-class audit violations — the numbers
	// the telemetry layer exports (see metrics.go and DESIGN.md §13).
	Totals RunTotals

	// Shards holds per-shard scheduler observability for sharded runs
	// (Config.Shards > 1; nil otherwise). Node/event/window/message
	// counts are deterministic for a fixed (Seed, Shards); the stall
	// wall-clock measurements are not. None of it enters Fingerprint.
	Shards []ShardRunStats

	// Aborted is set when the engine watchdog stopped the run before its
	// horizon; the metrics above then cover only the simulated prefix.
	Aborted     bool
	AbortReason string

	// Failed is set when the run could not produce metrics at all: the
	// configuration was invalid or the simulation panicked. FailReason
	// explains why; Stack holds the panicking goroutine's stack.
	Failed     bool
	FailReason string
	Stack      string
}

// Deadlock identifies one node flagged by the MAC liveness audit.
type Deadlock struct {
	Node  int
	State string
}

// RunTotals aggregates a run's raw counters across all nodes. Unlike the
// averaged per-node ratios above, these are plain monotone sums, so the
// sweep service can fold them into its counter families point by point
// and a Prometheus scrape sees one consistent vocabulary whether the
// source is a batch run (rmacsim -metrics) or a served sweep.
type RunTotals struct {
	// Per-protocol MAC counters summed over all nodes (mac.Stats).
	Enqueued           uint64 `json:"enqueued"`
	QueueDrops         uint64 `json:"queue_drops"`
	ReliableToTransmit uint64 `json:"reliable_to_transmit"`
	ReliableDelivered  uint64 `json:"reliable_delivered"`
	Retransmissions    uint64 `json:"retransmissions"`
	Drops              uint64 `json:"drops"`
	UnreliableSent     uint64 `json:"unreliable_sent"`
	MRTSSent           uint64 `json:"mrts_sent"`
	MRTSAborted        uint64 `json:"mrts_aborted"`
	ABTSent            uint64 `json:"abt_sent"`

	// Channel-level medium counters (phy.MediumStats).
	Medium phy.MediumStats `json:"medium"`

	// Frame-pool traffic (frame.PoolStats).
	FramePool frame.PoolStats `json:"frame_pool"`

	// Kernel event-arena occupancy at collection time: total slots grown
	// and slots still queued.
	ArenaCap  int `json:"arena_cap"`
	ArenaLive int `json:"arena_live"`

	// ViolationsByClass partitions the auditor's Count by invariant
	// class, indexed by audit.Class.
	ViolationsByClass [audit.NumClasses]uint64 `json:"violations_by_class"`

	// Application-level delivery counters (app.Metrics scalars), repeated
	// here so the totals are a self-contained telemetry payload.
	Generated  uint64 `json:"generated"`
	Receptions uint64 `json:"receptions"`
	Duplicates uint64 `json:"duplicates"`
}

// addMAC folds one node's MAC counters into the totals (the MRTS length
// samples stay in RunResult.MRTSLens; totals are scalars only).
func (t *RunTotals) addMAC(s *mac.Stats) {
	t.Enqueued += s.Enqueued
	t.QueueDrops += s.QueueDrops
	t.ReliableToTransmit += s.ReliableToTransmit
	t.ReliableDelivered += s.ReliableDelivered
	t.Retransmissions += s.Retransmissions
	t.Drops += s.Drops
	t.UnreliableSent += s.UnreliableSent
	t.MRTSSent += s.MRTSSent
	t.MRTSAborted += s.MRTSAborted
	t.ABTSent += s.ABTSent
}

// auditLiveness applies the deadlock predicate to every MAC: non-idle
// with nothing pending means the node can never advance again.
func auditLiveness(macs []mac.MAC) []Deadlock {
	var out []Deadlock
	for i, m := range macs {
		lr, ok := m.(mac.LivenessReporter)
		if !ok {
			continue
		}
		if l := lr.Liveness(); !l.Idle && !l.Pending {
			out = append(out, Deadlock{Node: i, State: l.State})
		}
	}
	return out
}

// network is one fully-wired simulation.
type network struct {
	cfg      Config
	eng      *sim.Engine
	medium   *phy.Medium
	macs     []mac.MAC
	routers  []*routing.Protocol
	apps     []*app.Node
	metrics  *app.Metrics
	sources  []*app.Source
	injector *fault.Injector
	aud      *audit.Auditor
	tstats   *sim.TimerStats

	deadlocks []Deadlock
}

// makePlacement runs cfg's placement generator. Deterministic in
// (Config, Seed): both the classic and the sharded build call it with the
// same derived RNG, so a run's topology is independent of Shards.
func makePlacement(cfg Config) topo.Placement {
	rng := rand.New(rand.NewSource(cfg.Seed ^ PlacementSeedMix))
	switch cfg.Topo {
	case TopoUniform:
		return topo.RandomPlacement(cfg.Nodes, cfg.Field, rng)
	case TopoPoisson:
		return topo.PoissonDiscPlacement(cfg.Nodes, cfg.Field, cfg.NodeSpacing, rng)
	case TopoMetro:
		return topo.MetroPlacement(cfg.Nodes, cfg.metroDistricts(), cfg.Field, cfg.metroGap(), rng)
	default:
		p, _ := topo.ConnectedRandomPlacement(cfg.Nodes, cfg.Field, cfg.Phy.CommRange, rng, 500)
		return p
	}
}

// build assembles the network for cfg, which must already be validated.
func build(cfg Config) *network {
	eng := sim.NewEngine(cfg.Seed)
	medium := phy.NewMedium(eng, cfg.Phy)

	placement := makePlacement(cfg)
	roots := cfg.sourceNodes()
	isRoot := make(map[int]bool, len(roots))
	for _, r := range roots {
		isRoot[r] = true
	}

	if cfg.TraceCap > 0 {
		medium.Tracer = trace.New(cfg.TraceCap)
	}
	n := &network{cfg: cfg, eng: eng, medium: medium, metrics: &app.Metrics{Nodes: cfg.Nodes}}
	if cfg.TimerStats {
		n.tstats = eng.EnableTimerStats()
	}
	if cfg.Audit {
		// The airtime bound sizes the legal RBT hold window: the largest
		// data frame a run can carry is a forwarded source packet (beacons
		// are far smaller), with a little slack for header variations.
		n.aud = audit.New(eng, medium, audit.Config{
			MaxFrameAirtime: cfg.Phy.TxDuration(frame.RMACDataOverhead + cfg.PacketSize + 64),
		})
	}
	for i := 0; i < cfg.Nodes; i++ {
		var mob mobility.Model
		if cfg.Scenario == Stationary {
			mob = mobility.Stationary{P: placement.Points[i]}
		} else {
			nodeRNG := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(i)))
			mob = mobility.NewRandomWaypoint(cfg.Field, 0, cfg.Scenario.MaxSpeed(), cfg.Scenario.Pause(), placement.Points[i], nodeRNG)
		}
		radio := medium.AddRadio(i, mob)
		var m mac.MAC
		switch cfg.Protocol {
		case RMAC:
			m = rmac.NewWithOptions(radio, cfg.Phy, eng, cfg.Limits, cfg.RMACOptions)
		case BMMM:
			m = bmmm.New(radio, cfg.Phy, eng, cfg.Limits)
		case BMW:
			m = bmw.New(radio, cfg.Phy, eng, cfg.Limits)
		case LBP:
			m = lbp.New(radio, cfg.Phy, eng, cfg.Limits)
		case MX:
			m = mx.New(radio, cfg.Phy, eng, cfg.Limits)
		case DOT11:
			m = dot11.New(radio, cfg.Phy, eng, cfg.Limits)
		}
		rt := routing.New(eng, m, i, isRoot[i], cfg.Routing)
		a := app.NewNode(eng, m, rt, i, n.metrics)
		rt.Start()
		if n.aud != nil {
			n.aud.RegisterMAC(i, m)
			if s, ok := m.(interface{ SetAuditor(*audit.Auditor) }); ok {
				s.SetAuditor(n.aud)
			}
			// app.NewNode installed itself as the MAC's upper layer;
			// interpose the at-most-once delivery check in front of it.
			m.SetUpper(n.aud.WrapUpper(i, a))
		}
		n.macs = append(n.macs, m)
		n.routers = append(n.routers, rt)
		n.apps = append(n.apps, a)
	}
	for _, r := range roots {
		s := app.NewSource(n.apps[r], cfg.Rate, cfg.Packets, cfg.PacketSize)
		s.Start(cfg.Warmup)
		n.sources = append(n.sources, s)
	}
	// The impairment layer attaches after every radio exists (its GE
	// chains are built per registered radio). A zero cfg.Fault leaves the
	// medium untouched.
	n.injector = fault.New(eng, medium, cfg.Fault)
	// The liveness and invariant audits run whenever the engine quiesces —
	// horizon reached, queue drained, or watchdog abort.
	eng.QuiesceAudit = func() {
		n.deadlocks = auditLiveness(n.macs)
		n.aud.Quiesce()
	}
	return n
}

// testHookPreRun, when non-nil, runs inside Run's panic isolation just
// before the simulation is built. Tests use it to inject a panic for a
// chosen configuration and assert the sweep survives.
var testHookPreRun func(Config)

// Run executes one simulation and reduces its measurements. It never
// panics: an invalid configuration or a panicking protocol stack yields a
// RunResult with Failed set (and the captured stack), so one poisoned
// seed cannot take down a whole sweep.
func Run(cfg Config) RunResult { return RunCtx(context.Background(), cfg) }

// RunCtx is Run with cooperative cancellation: once ctx is done the
// engine aborts at its next periodic check and the result carries the
// metrics of the simulated prefix with Aborted set — exactly like a
// watchdog trip. A run whose context is never canceled is bit-identical
// to Run with the same Config, so callers (signal-wired CLIs, the sweep
// service's per-job deadlines) pay nothing for the hook.
func RunCtx(ctx context.Context, cfg Config) (res RunResult) {
	defer func() {
		if r := recover(); r != nil {
			res = RunResult{
				Config:     cfg,
				Failed:     true,
				FailReason: fmt.Sprintf("panic: %v", r),
				Stack:      string(debug.Stack()),
			}
		}
	}()
	if err := cfg.Validate(); err != nil {
		return RunResult{Config: cfg, Failed: true, FailReason: err.Error()}
	}
	if testHookPreRun != nil {
		testHookPreRun(cfg)
	}
	if cfg.Shards > 1 {
		return runSharded(ctx, cfg)
	}
	n := build(cfg)
	if cfg.MaxEvents > 0 || cfg.MaxWall > 0 {
		n.eng.SetWatchdog(cfg.MaxEvents, cfg.MaxWall)
	}
	n.eng.SetContext(ctx)
	n.eng.Run(cfg.Horizon())
	return n.collect()
}

func (n *network) collect() RunResult {
	res := RunResult{
		Config:      n.cfg,
		Metrics:     *n.metrics,
		Delivery:    n.metrics.DeliveryRatio(),
		AvgDelay:    n.metrics.AvgDelay(),
		MRTSLens:    &stats.Sample{},
		AbortRatios: &stats.Sample{},
		Events:      n.eng.Processed,
		TimerStats:  n.tstats,
		Trace:       n.medium.Tracer,
		Fault:       n.injector.Stats,
		Crashes:     n.medium.Stats.Crashes,
		Deadlocks:   n.deadlocks,
		Violations:  n.aud.Violations(),
	}
	if n.aud != nil {
		res.ViolationCount = n.aud.Count
	}
	if reason, aborted := n.eng.Aborted(); aborted {
		res.Aborted = true
		res.AbortReason = reason
	}
	res.Totals.Medium = n.medium.Stats
	res.Totals.FramePool = n.medium.Frames().Stats()
	res.Totals.ArenaCap = n.eng.ArenaCap()
	res.Totals.ArenaLive = n.eng.PoolInUse()
	if n.aud != nil {
		res.Totals.ViolationsByClass = n.aud.ByClass
	}
	res.Totals.Generated = res.Metrics.Generated
	res.Totals.Receptions = res.Metrics.Receptions
	res.Totals.Duplicates = res.Metrics.Duplicates
	var drop, retx, ovh stats.Sample
	for _, m := range n.macs {
		s := m.Stats()
		res.Totals.addMAC(s)
		if !s.NonLeaf() {
			continue
		}
		res.NonLeafCount++
		drop.Add(totalDropRatio(s))
		retx.Add(s.RetxRatio())
		// §4.3.2's R_txoh is control time over data time; a forwarder that
		// never got to transmit data (crashed early, or all its packets
		// died in contention) has no defined ratio — its hardwired zero
		// would bias the average down, so it is excluded.
		if s.DataTxTime > 0 {
			ovh.Add(s.OverheadRatio())
		}
		res.AbortRatios.Add(s.AbortRatio())
		for _, l := range s.MRTSLens {
			res.MRTSLens.Add(float64(l))
		}
	}
	res.AvgDropRatio = drop.Mean()
	res.AvgRetxRatio = retx.Mean()
	res.AvgOverheadRatio = ovh.Mean()

	parent := make([]int, n.cfg.Nodes)
	for i, rt := range n.routers {
		parent[i] = rt.Parent()
	}
	res.Tree = topo.AnalyzeTree(parent, 0)
	return res
}

// totalDropRatio is the paper's R_drop: packets dropped by a node over
// packets to be transmitted by it. Queue-overflow rejections count as
// drops alongside retry-limit drops.
func totalDropRatio(s *mac.Stats) float64 {
	den := float64(s.ReliableToTransmit + s.QueueDrops)
	return stats.Ratio(float64(s.Drops+s.QueueDrops), den)
}
