package experiment

import (
	"testing"

	"rmac/internal/fault"
	"rmac/internal/sim"
)

// sweepFaults is a fault mix aggressive enough to exercise crash
// truncation, tone teardown and bursty corruption in every run.
func sweepFaults() fault.Config {
	return fault.Config{
		Burst: fault.BurstConfig{
			Enabled: true, MeanGood: 200 * sim.Millisecond, MeanBad: 20 * sim.Millisecond,
			BERGood: 0, BERBad: 2e-4,
		},
		Churn: fault.ChurnConfig{
			Enabled: true, MeanUp: 4 * sim.Second, MeanDown: 300 * sim.Millisecond,
		},
	}
}

// TestAuditCleanAcrossProtocolsAndFaults runs every protocol through a
// fixed-seed fault-injected run, stationary and mobile, and requires the
// invariant auditor to stay silent: zero violations and zero deadlocks.
// This is the acceptance sweep of the auditor at CI scale.
func TestAuditCleanAcrossProtocolsAndFaults(t *testing.T) {
	for _, p := range []Protocol{RMAC, BMMM, BMW, LBP, MX, DOT11} {
		for _, sc := range []Scenario{Stationary, Speed1} {
			t.Run(p.String()+"/"+sc.String(), func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.Protocol = p
				cfg.Scenario = sc
				cfg.Nodes = 20
				cfg.Packets = 40
				cfg.Seed = 12345
				cfg.Fault = sweepFaults()
				res := Run(cfg)
				if res.Failed {
					t.Fatalf("run failed: %s\n%s", res.FailReason, res.Stack)
				}
				if res.ViolationCount != 0 {
					for _, v := range res.Violations {
						t.Errorf("violation: %v", v)
					}
					t.Fatalf("auditor recorded %d violations, want 0", res.ViolationCount)
				}
				if len(res.Deadlocks) != 0 {
					t.Fatalf("liveness audit flagged %v", res.Deadlocks)
				}
			})
		}
	}
}

// TestAuditDisabled: with Config.Audit off the run carries no auditor and
// still completes, reporting no violations.
func TestAuditDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 10
	cfg.Packets = 10
	cfg.Audit = false
	res := Run(cfg)
	if res.Failed {
		t.Fatalf("run failed: %s", res.FailReason)
	}
	if res.Violations != nil || res.ViolationCount != 0 {
		t.Fatalf("disabled auditor reported %d violations", res.ViolationCount)
	}
}
