package experiment

import (
	"fmt"

	"rmac/internal/fault"
	"rmac/internal/geom"
	"testing"
)

// goldenConfig is a reduced-scale but fully representative RMAC run: a
// multi-hop tree with real contention, enough packets for retransmissions
// and aborts to occur. Small enough to run in well under a second.
func goldenConfig() Config {
	cfg := DefaultConfig()
	cfg.Protocol = RMAC
	cfg.Scenario = Stationary
	cfg.Nodes = 30
	cfg.Field = geom.Rect{W: 320, H: 200}
	cfg.Packets = 200
	cfg.Rate = 40
	cfg.Seed = 12345
	return cfg
}

// goldenGridConfig is the same run at a network size past the spatial-grid
// threshold (96 radios), so the grid fan-out path is pinned too.
func goldenGridConfig() Config {
	cfg := goldenConfig()
	cfg.Nodes = 120
	cfg.Field = geom.Rect{W: 500, H: 400}
	cfg.Packets = 60
	return cfg
}

// goldenFaultConfig is the golden run with the impairment layer switched
// on — Gilbert–Elliott bursts erasing 20% of the timeline and nodes that
// are up 90% of the time — pinning the fault layer's RNG consumption and
// crash scheduling alongside the protocol behaviour they provoke.
func goldenFaultConfig() Config {
	cfg := goldenConfig()
	cfg.Fault = fault.Config{Burst: fault.BurstAt(0.2), Churn: fault.ChurnAt(0.9)}
	return cfg
}

// goldenFaultString extends goldenString with the impairment counters.
func goldenFaultString(r RunResult) string {
	return fmt.Sprintf("%s bursterr=%d badentries=%d crashes=%d recoveries=%d deadlocks=%d",
		goldenString(r), r.Fault.BurstErrors, r.Fault.BadEntries, r.Crashes,
		r.Fault.Recoveries, len(r.Deadlocks))
}

// goldenString reduces a RunResult to the fields every figure is computed
// from, formatted with full float precision so any drift is visible.
func goldenString(r RunResult) string {
	return fmt.Sprintf(
		"events=%d gen=%d rx=%d dup=%d deliv=%.17g delay=%.17g drop=%.17g retx=%.17g ovh=%.17g nonleaf=%d mrts_n=%d abort_n=%d reach=%d",
		r.Events, r.Metrics.Generated, r.Metrics.Receptions, r.Metrics.Duplicates,
		r.Delivery, r.AvgDelay, r.AvgDropRatio, r.AvgRetxRatio, r.AvgOverheadRatio,
		r.NonLeafCount, r.MRTSLens.N(), r.AbortRatios.N(), r.Tree.Reachable)
}

// Golden values produced by the pre-pooling seed kernel (container/heap
// engine, per-event allocations). The pooled kernel must reproduce them
// bit-identically: pooling recycles memory but must not change the event
// schedule, the (time, seq) execution order, or the RNG consumption.
//
// To refresh after an intentional behaviour change, run
//
//	go test ./internal/experiment -run TestGoldenDeterminism -v
//
// and copy the "got:" lines printed on mismatch.
const (
	goldenStationary = "events=348700 gen=200 rx=5783 dup=0 deliv=0.99706896551724133 delay=0.010149750000000001 drop=0 retx=0.12833333333333333 ovh=0.1991675194619906 nonleaf=12 mrts_n=2708 abort_n=12 reach=30"
	goldenGrid       = "events=719946 gen=60 rx=6959 dup=0 deliv=0.97464985994397757 delay=0.139179626 drop=0.0016878531073446328 retx=0.36548022598870056 ovh=0.22847831986517395 nonleaf=40 mrts_n=3208 abort_n=40 reach=120"
	// goldenFault pins the impairment layer: same run as goldenStationary
	// but with bursty loss and churn enabled, so any drift in the GE chain
	// advancement, churn scheduling, or crash semantics shows up here.
	goldenFault = "events=1011170 gen=200 rx=4771 dup=0 deliv=0.82258620689655171 delay=0.734644046 drop=0.10764765045303065 retx=1.7330833580432325 ovh=0.21918798901650646 nonleaf=11 mrts_n=5236 abort_n=11 reach=30 bursterr=4848 badentries=14914 crashes=279 recoveries=274 deadlocks=0"
)

// TestGoldenDeterminism pins the fixed-seed RunResult of a full RMAC run
// against values recorded from the seed (pre-pooling) kernel, proving the
// pooled event kernel and pooled PHY fan-out are behaviour-preserving.
func TestGoldenDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		want string
	}{
		{"stationary-30", goldenConfig(), goldenStationary},
		{"grid-120", goldenGridConfig(), goldenGrid},
		{"fault-30", goldenFaultConfig(), goldenFault},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := Run(tc.cfg)
			got := goldenString(r)
			if tc.cfg.Fault.Enabled() {
				got = goldenFaultString(r)
			}
			if got != tc.want {
				t.Errorf("fixed-seed run drifted from seed kernel\n got: %s\nwant: %s", got, tc.want)
			}
		})
	}
}

// TestSeedDeterminismRegression verifies that two runs with identical
// configuration produce identical results — including under mobility,
// where the random-waypoint streams and the lazy spatial grid interact
// with event ordering.
func TestSeedDeterminismRegression(t *testing.T) {
	for _, sc := range []Scenario{Stationary, Speed1} {
		sc := sc
		t.Run(sc.String(), func(t *testing.T) {
			cfg := goldenConfig()
			cfg.Scenario = sc
			cfg.Packets = 80
			a := goldenString(Run(cfg))
			b := goldenString(Run(cfg))
			if a != b {
				t.Errorf("identical-seed runs diverged\nfirst:  %s\nsecond: %s", a, b)
			}
		})
	}
}
