package experiment

import (
	"context"
	"testing"
)

// TestAbortResumeReleasesFrames is the wheel/abort interaction regression
// on top of the full protocol stack: a run aborted mid-traffic — wheel
// slots, due list and heap all populated, pooled frames in flight — must,
// once the watchdog is disarmed, resume into exactly the run an
// uninterrupted engine produces: identical metrics fingerprint and
// identical frame-pool accounting (every pooled frame released exactly
// once, never twice, never leaked). Under `-tags framecheck` (the CI
// poisoning build) any use-after-release the abort path provokes fails
// loudly here.
func TestAbortResumeReleasesFrames(t *testing.T) {
	for _, proto := range []Protocol{RMAC, BMMM} {
		t.Run(proto.String(), func(t *testing.T) {
			cfg := smallConfig()
			cfg.Protocol = proto
			// The quiesce audit runs at every Run return; a mid-abort
			// quiesce legitimately observes in-flight state a clean run
			// never quiesces into, so the invariant auditor is detached
			// for the bit-identity comparison.
			cfg.Audit = false
			cancelAt := cfg.Horizon() / 2

			clean := build(cfg)
			clean.eng.After(cancelAt, func() {}) // mirrors the ctx run's cancel trigger
			clean.eng.Run(cfg.Horizon())
			want := clean.collect()
			wantFrames := clean.medium.Frames().Stats()
			if want.Aborted {
				t.Fatalf("clean run aborted: %s", want.AbortReason)
			}

			// Variant 1: event-budget abort mid-run, then resume.
			n := build(cfg)
			n.eng.After(cancelAt, func() {})
			n.eng.SetWatchdog(want.Events/2, 0)
			n.eng.Run(cfg.Horizon())
			if _, aborted := n.eng.Aborted(); !aborted {
				t.Fatal("event budget did not abort the run")
			}
			if n.eng.Pending() == 0 {
				t.Fatal("abort left nothing pending; not a mid-cascade abort")
			}
			n.eng.SetWatchdog(0, 0)
			n.eng.Run(cfg.Horizon())
			got := n.collect()
			if got.Fingerprint() != want.Fingerprint() {
				t.Errorf("resumed run diverged from uninterrupted run:\n got %s\nwant %s",
					got.Fingerprint(), want.Fingerprint())
			}
			if gotFrames := n.medium.Frames().Stats(); gotFrames != wantFrames {
				t.Errorf("frame pool accounting diverged after abort/resume:\n got %+v\nwant %+v",
					gotFrames, wantFrames)
			}

			// Variant 2: context cancellation mid-run, then resume.
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			c := build(cfg)
			c.eng.SetContext(ctx)
			c.eng.After(cancelAt, cancel)
			c.eng.Run(cfg.Horizon())
			if _, aborted := c.eng.Aborted(); !aborted {
				t.Fatal("mid-run context cancel did not abort")
			}
			c.eng.SetContext(nil)
			c.eng.SetWatchdog(0, 0)
			c.eng.Run(cfg.Horizon())
			got = c.collect()
			if got.Fingerprint() != want.Fingerprint() {
				t.Errorf("ctx-aborted resumed run diverged from uninterrupted run:\n got %s\nwant %s",
					got.Fingerprint(), want.Fingerprint())
			}
			if gotFrames := c.medium.Frames().Stats(); gotFrames != wantFrames {
				t.Errorf("frame pool accounting diverged after ctx abort/resume:\n got %+v\nwant %+v",
					gotFrames, wantFrames)
			}
		})
	}
}
