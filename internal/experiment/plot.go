package experiment

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteFigureASCII renders one figure panel as a terminal line plot —
// rate on the x axis, the figure's metric on the y axis, one mark per
// protocol ('r' for the first protocol, 'b' for the second, '#' where
// they coincide). It is the quick visual check that the regenerated
// series has the paper's shape without leaving the terminal.
func WriteFigureASCII(w io.Writer, fig Figure, points []Point, sc Scenario) {
	const width, height = 64, 16
	series := make([][]Point, len(fig.Protocols))
	for i, p := range fig.Protocols {
		series[i] = pointsFor(points, sc, p)
	}
	if len(series[0]) == 0 {
		fmt.Fprintf(w, "%s (%v): no data\n", fig.ID, sc)
		return
	}

	// Bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	maxY := math.Inf(-1)
	for _, s := range series {
		for _, pt := range s {
			v := fig.Value(pt)
			if pt.Rate < minX {
				minX = pt.Rate
			}
			if pt.Rate > maxX {
				maxX = pt.Rate
			}
			if v > maxY {
				maxY = v
			}
		}
	}
	if maxY <= 0 {
		maxY = 1
	}
	if maxX == minX {
		maxX = minX + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := []byte{'r', 'b', 'w', 'l', 'm'}
	for si, s := range series {
		for _, pt := range s {
			x := int((pt.Rate - minX) / (maxX - minX) * float64(width-1))
			y := int(fig.Value(pt) / maxY * float64(height-1))
			row := height - 1 - y
			if row < 0 {
				row = 0
			}
			cur := grid[row][x]
			switch {
			case cur == ' ':
				grid[row][x] = marks[si%len(marks)]
			case cur != marks[si%len(marks)]:
				grid[row][x] = '#'
			}
		}
	}

	fmt.Fprintf(w, "%s — %s (%v)\n", strings.ToUpper(fig.ID), fig.Title, sc)
	for i, row := range grid {
		label := "          "
		if i == 0 {
			label = fmt.Sprintf("%9.3g ", maxY)
		}
		if i == height-1 {
			label = fmt.Sprintf("%9.3g ", 0.0)
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(w, "%s+%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width))
	fmt.Fprintf(w, "%s%-8.3g%s%8.3g  (%s)\n", strings.Repeat(" ", 11), minX,
		strings.Repeat(" ", width-18), maxX, "pkt/s")
	legend := make([]string, 0, len(fig.Protocols))
	for i, p := range fig.Protocols {
		legend = append(legend, fmt.Sprintf("%c=%v", marks[i%len(marks)], p))
	}
	fmt.Fprintf(w, "%s%s, #=overlap, unit=%s\n\n", strings.Repeat(" ", 11), strings.Join(legend, ", "), fig.Unit)
}
