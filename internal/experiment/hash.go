package experiment

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"io"
	"math"
	"runtime/debug"
	"sort"
	"sync"
)

// This file gives runs a content address. A simulation is a pure function
// of (Config, code version): two runs with equal cache keys produce
// bit-identical results, which is what lets the sweep service
// (internal/server) serve repeated grid points from a cache and lets a
// resumed sweep trust journaled results. Fingerprint is the cheap
// bit-identity witness on the result side: the chaos tests compare cached
// results against fresh batch runs through it.

var (
	codeVersionOnce sync.Once
	codeVersion     string
)

// CodeVersion identifies the simulator build baked into this process: the
// VCS revision recorded by the Go toolchain (suffixed "+dirty" for
// modified trees), or "unversioned" for builds without VCS stamping (go
// test, go run). It is folded into every cache key so results computed by
// a different build of the simulator are never served from cache.
func CodeVersion() string {
	codeVersionOnce.Do(func() {
		codeVersion = "unversioned"
		info, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		var rev, dirty string
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "+dirty"
				}
			}
		}
		if rev != "" {
			codeVersion = rev + dirty
		}
	})
	return codeVersion
}

// CacheKey returns the content address of this configuration's result:
// a hex SHA-256 over the canonical JSON encoding of the whole Config
// (placement seed included — it is part of Config) and the code version.
// Equal keys imply bit-identical RunResults; hashing the full Config is
// deliberately conservative, so observational knobs (Audit, TimerStats,
// TraceCap, watchdog budgets) key separate entries even though they do
// not change the metrics.
func (c Config) CacheKey() string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	if err := enc.Encode(c); err != nil {
		// Config is plain exported data; an encode failure is a
		// programming error in a new field, not a runtime condition.
		panic("experiment: config not hashable: " + err.Error())
	}
	io.WriteString(h, CodeVersion())
	return hex.EncodeToString(h.Sum(nil))
}

// Fingerprint digests every deterministic measurement of the run into a
// hex SHA-256: the application metrics, the per-node ratio averages, the
// raw RMAC distributions (bit-exact float images, order-normalized), the
// tree shape, and the audit counters. Two runs of the same (Config, code
// version) must fingerprint identically; the server's chaos tests and the
// cache rely on that to detect lost, duplicated, or corrupted results.
// Failure diagnostics (FailReason, Stack) and the abort reason string are
// excluded — they carry wall-clock text — but the Aborted/Failed flags
// and the event count are included, so a truncated run never fingerprints
// like a complete one.
func (r *RunResult) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	f := func(x float64) { w(math.Float64bits(x)) }
	b := func(v bool) {
		if v {
			w(1)
		} else {
			w(0)
		}
	}

	w(r.Metrics.Generated)
	w(r.Metrics.Receptions)
	w(r.Metrics.Duplicates)
	w(uint64(r.Metrics.DelaySum))
	w(uint64(r.Metrics.DelayMax))
	w(r.Metrics.DelayCount)
	f(r.Delivery)
	f(r.AvgDelay)
	f(r.AvgDropRatio)
	f(r.AvgRetxRatio)
	f(r.AvgOverheadRatio)
	w(uint64(r.NonLeafCount))
	w(r.Events)
	w(r.Crashes)
	w(r.Fault.BurstErrors)
	w(uint64(len(r.Deadlocks)))
	w(r.ViolationCount)
	b(r.Aborted)
	b(r.Failed)

	// Raw distributions, order-normalized: sample insertion order is an
	// artifact of node iteration, so sort the bit images for a canonical
	// digest.
	hashSample := func(xs []float64) {
		w(uint64(len(xs)))
		bits := make([]uint64, len(xs))
		for i, x := range xs {
			bits[i] = math.Float64bits(x)
		}
		sort.Slice(bits, func(i, j int) bool { return bits[i] < bits[j] })
		for _, v := range bits {
			w(v)
		}
	}
	if r.MRTSLens != nil {
		hashSample(r.MRTSLens.Values())
	}
	if r.AbortRatios != nil {
		hashSample(r.AbortRatios.Values())
	}

	w(uint64(r.Tree.Reachable))
	f(r.Tree.Hops.Mean)
	f(r.Tree.Hops.P99)
	f(r.Tree.Hops.Max)
	f(r.Tree.Children.Mean)
	f(r.Tree.Children.P99)
	f(r.Tree.Children.Max)

	return hex.EncodeToString(h.Sum(nil))
}
