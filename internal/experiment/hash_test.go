package experiment

import (
	"context"
	"strings"
	"testing"
)

func TestCacheKeyDiscriminates(t *testing.T) {
	a := smallConfig()
	b := smallConfig()
	if a.CacheKey() != b.CacheKey() {
		t.Error("equal configs produced different cache keys")
	}
	b.Seed++
	if a.CacheKey() == b.CacheKey() {
		t.Error("different seeds share a cache key")
	}
	c := smallConfig()
	c.Protocol = BMMM
	if a.CacheKey() == c.CacheKey() {
		t.Error("different protocols share a cache key")
	}
	if len(a.CacheKey()) != 64 {
		t.Errorf("cache key %q is not a hex SHA-256", a.CacheKey())
	}
}

func TestFingerprintStableAcrossRuns(t *testing.T) {
	cfg := smallConfig()
	a := Run(cfg)
	b := RunCtx(context.Background(), cfg)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical-seed runs fingerprint differently (ctx hook is not free)")
	}
	cfg.Seed++
	c := Run(cfg)
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different-seed runs share a fingerprint")
	}
}

func TestRunCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := RunCtx(ctx, smallConfig())
	if res.Failed {
		t.Fatalf("canceled run reported Failed: %s", res.FailReason)
	}
	if !res.Aborted {
		t.Fatal("pre-canceled context did not abort the run")
	}
	if !strings.Contains(res.AbortReason, "context canceled") {
		t.Errorf("AbortReason = %q, want a context-canceled message", res.AbortReason)
	}
	if res.Events != 0 {
		t.Errorf("pre-canceled run dispatched %d events", res.Events)
	}
}
