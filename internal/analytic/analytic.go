// Package analytic provides closed-form airtime models of one reliable
// multicast exchange for each implemented protocol, generalising the §2
// arithmetic of the paper (the 96 µs PLCP overhead, the 56 µs ACK, the
// 632 n µs BMMM control cost) into comparable per-exchange budgets. The
// models are validated against the simulator in the package tests: in an
// uncontended single-hop scenario the measured exchange time equals the
// model to within propagation and turnaround guards.
package analytic

import (
	"fmt"
	"io"

	"rmac/internal/frame"
	"rmac/internal/phy"
	"rmac/internal/sim"
)

// Exchange is the airtime budget of one collision-free reliable multicast
// of a single data frame to n receivers, excluding the contention phase.
type Exchange struct {
	// Control is airtime spent on control frames (MRTS, RTS/CTS,
	// RAK/ACK, announce) plus tone/feedback windows.
	Control sim.Time
	// Data is the data frame airtime.
	Data sim.Time
	// Gaps is interframe waiting (SIFS, T_wf_rbt).
	Gaps sim.Time
}

// Total returns the full exchange airtime.
func (e Exchange) Total() sim.Time { return e.Control + e.Data + e.Gaps }

// OverheadRatio returns (control + gaps) / data — the analytic analogue
// of the paper's transmission overhead ratio under perfect conditions.
func (e Exchange) OverheadRatio() float64 {
	if e.Data == 0 {
		return 0
	}
	return float64(e.Control+e.Gaps) / float64(e.Data)
}

// RMAC models §3.3.2: MRTS, the T_wf_rbt wait, the data frame, and n
// ordered ABT windows.
func RMAC(cfg phy.Config, n, payload int) Exchange {
	return Exchange{
		Control: cfg.TxDuration(frame.MRTSLen(n)) + sim.Time(n)*phy.ABTDuration,
		Data:    cfg.TxDuration(frame.RMACDataOverhead + payload),
		Gaps:    phy.ToneWaitTimeout,
	}
}

// BMMM models §2/Fig 1(b): n RTS/CTS pairs, the data frame, n RAK/ACK
// pairs, SIFS-separated.
func BMMM(cfg phy.Config, n, payload int) Exchange {
	rts := cfg.TxDuration(frame.RTSLen)
	cts := cfg.TxDuration(frame.CTSLen)
	rak := cfg.TxDuration(frame.RAKLen)
	ack := cfg.TxDuration(frame.ACKLen)
	return Exchange{
		Control: sim.Time(n) * (rts + cts + rak + ack),
		Data:    cfg.TxDuration(frame.Data80211Overhead + payload),
		// SIFS before each CTS (n), each follow-up RTS (n-1), the data
		// frame (1), each RAK (n) and each ACK (n).
		Gaps: sim.Time(4*n) * phy.SIFS,
	}
}

// BMW models one full pass of Fig 1(a) in the best case: every receiver
// visited once; the first unicast carries the data and the remaining n-1
// receivers answer with past-sequence CTSs (perfect overhearing).
func BMW(cfg phy.Config, n, payload int) Exchange {
	rts := cfg.TxDuration(frame.RTSLen)
	cts := cfg.TxDuration(frame.CTSLen)
	ack := cfg.TxDuration(frame.ACKLen)
	return Exchange{
		Control: sim.Time(n)*(rts+cts) + ack,
		Data:    cfg.TxDuration(frame.Data80211Overhead + payload),
		Gaps:    sim.Time(2*n+2) * phy.SIFS,
	}
}

// LBP models the leader exchange: RTS, leader CTS, data, leader ACK —
// constant control cost regardless of n.
func LBP(cfg phy.Config, n, payload int) Exchange {
	return Exchange{
		Control: cfg.TxDuration(frame.RTSLen) + cfg.TxDuration(frame.CTSLen) + cfg.TxDuration(frame.ACKLen),
		Data:    cfg.TxDuration(frame.Data80211Overhead + payload),
		Gaps:    3 * phy.SIFS,
	}
}

// MX models the receiver-initiated exchange: group announce, data, one
// silent NAK window.
func MX(cfg phy.Config, n, payload int) Exchange {
	return Exchange{
		Control: cfg.TxDuration(frame.RTSLen) + phy.ToneWaitTimeout,
		Data:    cfg.TxDuration(frame.Data80211Overhead + payload),
		Gaps:    phy.SIFS,
	}
}

// Model names a protocol's exchange function.
type Model struct {
	Name string
	Fn   func(cfg phy.Config, n, payload int) Exchange
}

// Models returns every protocol model in presentation order.
func Models() []Model {
	return []Model{
		{"RMAC", RMAC},
		{"BMMM", BMMM},
		{"BMW", BMW},
		{"LBP", LBP},
		{"MX", MX},
	}
}

// WriteTable renders the per-exchange budgets for a payload across
// receiver counts — the §2 comparison extended to every implemented
// protocol.
func WriteTable(w io.Writer, cfg phy.Config, payload int, ns []int) {
	fmt.Fprintf(w, "Per-exchange airtime (µs) for a %d-byte payload, collision-free, no contention:\n", payload)
	fmt.Fprintf(w, "%4s", "n")
	for _, m := range Models() {
		fmt.Fprintf(w, " %10s %8s", m.Name, "(ovh)")
	}
	fmt.Fprintln(w)
	for _, n := range ns {
		fmt.Fprintf(w, "%4d", n)
		for _, m := range Models() {
			e := m.Fn(cfg, n, payload)
			fmt.Fprintf(w, " %10.0f %8.3f", e.Total().Micros(), e.OverheadRatio())
		}
		fmt.Fprintln(w)
	}
}
