package analytic

import (
	"strings"
	"testing"

	"rmac/internal/frame"
	"rmac/internal/geom"
	"rmac/internal/mac"
	"rmac/internal/mac/bmmm"
	"rmac/internal/mac/bmw"
	"rmac/internal/mac/lbp"
	"rmac/internal/mac/mx"
	"rmac/internal/mac/rmac"
	"rmac/internal/mobility"
	"rmac/internal/phy"
	"rmac/internal/sim"
)

// completionUpper records the completion time of the first send.
type completionUpper struct {
	eng  *sim.Engine
	done sim.Time
	ok   bool
}

func (u *completionUpper) OnDeliver([]byte, mac.RxInfo) {}
func (u *completionUpper) OnSendComplete(res mac.TxResult) {
	u.done = u.eng.Now()
	u.ok = !res.Dropped
}

// measure runs one clean exchange (sender + n receivers in a tight disc,
// no contention) and returns the time from Send to OnSendComplete.
func measure(t *testing.T, build func(r *phy.Radio, cfg phy.Config, eng *sim.Engine, limits mac.Limits) mac.MAC, n, payload int) sim.Time {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := phy.DefaultConfig()
	medium := phy.NewMedium(eng, cfg)
	limits := mac.DefaultLimits()
	limits.MaxReceivers = frame.MaxReceivers // no §3.4 splitting in the model
	var macs []mac.MAC
	var dests []frame.Addr
	for i := 0; i <= n; i++ {
		// Sender at centre, receivers on a 20 m ring.
		p := geom.Point{X: 0, Y: 0}
		if i > 0 {
			p = geom.Point{X: 20, Y: float64(i)} // all well within range
		}
		r := medium.AddRadio(i, mobility.Stationary{P: p})
		m := build(r, cfg, eng, limits)
		macs = append(macs, m)
		if i > 0 {
			dests = append(dests, frame.AddrFromID(i))
			m.SetUpper(&completionUpper{eng: eng})
		}
	}
	u := &completionUpper{eng: eng}
	macs[0].SetUpper(u)
	macs[0].Send(&mac.SendRequest{Service: mac.Reliable, Dests: dests, Payload: make([]byte, payload)})
	eng.Run(10 * sim.Second)
	if !u.ok || u.done == 0 {
		t.Fatalf("exchange did not complete cleanly (done=%v ok=%v)", u.done, u.ok)
	}
	return u.done
}

// difs is the initial contention of a fresh DCF node (empty backoff): a
// single DIFS before the first frame. The models exclude contention, so
// DCF-based measurements subtract it.
const difs = phy.DIFS

func within(t *testing.T, name string, measured, model, tol sim.Time) {
	t.Helper()
	diff := measured - model
	if diff < 0 {
		diff = -diff
	}
	if diff > tol {
		t.Fatalf("%s: measured %v vs model %v (|Δ| %v > tol %v)", name, measured, model, diff, tol)
	}
}

func TestRMACModelMatchesSimulation(t *testing.T) {
	cfg := phy.DefaultConfig()
	for _, n := range []int{1, 3, 10, 20} {
		measured := measure(t, func(r *phy.Radio, c phy.Config, e *sim.Engine, l mac.Limits) mac.MAC {
			return rmac.New(r, c, e, l)
		}, n, 500)
		model := RMAC(cfg, n, 500).Total()
		// RMAC's timers are exact; allow only the guard for the sender's
		// immediate-start path.
		within(t, "RMAC", measured, model, 2*sim.Microsecond)
	}
}

func TestBMMMModelMatchesSimulation(t *testing.T) {
	cfg := phy.DefaultConfig()
	for _, n := range []int{1, 3, 8} {
		measured := measure(t, func(r *phy.Radio, c phy.Config, e *sim.Engine, l mac.Limits) mac.MAC {
			return bmmm.New(r, c, e, l)
		}, n, 500)
		model := BMMM(cfg, n, 500).Total()
		// Propagation (≤0.3 µs per hop) accumulates over 4n+2 frame
		// boundaries.
		within(t, "BMMM", measured-difs, model, sim.Time(n+2)*sim.Microsecond)
	}
}

func TestLBPModelMatchesSimulation(t *testing.T) {
	cfg := phy.DefaultConfig()
	for _, n := range []int{1, 5, 15} {
		measured := measure(t, func(r *phy.Radio, c phy.Config, e *sim.Engine, l mac.Limits) mac.MAC {
			return lbp.New(r, c, e, l)
		}, n, 500)
		model := LBP(cfg, n, 500).Total()
		within(t, "LBP", measured-difs, model, 8*sim.Microsecond)
		// And it is constant in n by construction.
		if model != LBP(cfg, 1, 500).Total() {
			t.Fatal("LBP model must not depend on n")
		}
	}
}

func TestMXModelMatchesSimulation(t *testing.T) {
	cfg := phy.DefaultConfig()
	for _, n := range []int{1, 5, 15} {
		measured := measure(t, func(r *phy.Radio, c phy.Config, e *sim.Engine, l mac.Limits) mac.MAC {
			return mx.New(r, c, e, l)
		}, n, 500)
		model := MX(cfg, n, 500).Total()
		within(t, "MX", measured-difs, model, 8*sim.Microsecond)
	}
}

func TestBMWModelIsLowerBound(t *testing.T) {
	// BMW inserts a full contention phase per receiver, which the
	// best-case model excludes: measured must be >= model.
	cfg := phy.DefaultConfig()
	for _, n := range []int{2, 4} {
		measured := measure(t, func(r *phy.Radio, c phy.Config, e *sim.Engine, l mac.Limits) mac.MAC {
			return bmw.New(r, c, e, l)
		}, n, 500)
		model := BMW(cfg, n, 500).Total()
		if measured < model {
			t.Fatalf("BMW measured %v below best-case model %v", measured, model)
		}
	}
}

// TestPaper632nArithmetic pins the §2 numbers through the BMMM model.
func TestPaper632nArithmetic(t *testing.T) {
	cfg := phy.DefaultConfig()
	for n := 1; n <= 20; n++ {
		e := BMMM(cfg, n, 500)
		if e.Control != sim.Time(n)*632*sim.Microsecond {
			t.Fatalf("BMMM control(n=%d) = %v, want %d µs", n, e.Control, 632*n)
		}
	}
}

// TestRMACBeatsBMMMForAllN: the analytic overhead ratio comparison the
// paper's design argues for — RMAC's per-exchange overhead stays far
// below BMMM's for every receiver count.
func TestRMACBeatsBMMMForAllN(t *testing.T) {
	cfg := phy.DefaultConfig()
	for n := 1; n <= 20; n++ {
		r := RMAC(cfg, n, 500).OverheadRatio()
		b := BMMM(cfg, n, 500).OverheadRatio()
		if r >= b {
			t.Fatalf("n=%d: RMAC overhead %.3f >= BMMM %.3f", n, r, b)
		}
		if n >= 2 && r > 0.5 {
			t.Fatalf("n=%d: RMAC analytic overhead %.3f unexpectedly high", n, r)
		}
	}
}

func TestWriteTable(t *testing.T) {
	var sb strings.Builder
	WriteTable(&sb, phy.DefaultConfig(), 500, []int{1, 5, 20})
	out := sb.String()
	for _, want := range []string{"RMAC", "BMMM", "LBP", "MX", "500-byte"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
