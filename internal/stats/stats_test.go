package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 || s.Percentile(99) != 0 || s.StdDev() != 0 {
		t.Fatal("empty sample must yield zeros")
	}
	sum := s.Summarize()
	if sum.N != 0 || sum.Mean != 0 {
		t.Fatal("empty summary")
	}
}

func TestBasicStats(t *testing.T) {
	var s Sample
	s.AddAll([]float64{4, 2, 6, 8})
	if s.N() != 4 || !almost(s.Sum(), 20) || !almost(s.Mean(), 5) {
		t.Fatalf("basic: n=%d sum=%v mean=%v", s.N(), s.Sum(), s.Mean())
	}
	if s.Max() != 8 || s.Min() != 2 {
		t.Fatal("min/max")
	}
	if !almost(s.StdDev(), math.Sqrt(5)) {
		t.Fatalf("stddev = %v", s.StdDev())
	}
}

func TestPercentileNearestRank(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := map[float64]float64{1: 1, 50: 50, 99: 99, 100: 100, 0: 1}
	for p, want := range cases {
		if got := s.Percentile(p); got != want {
			t.Fatalf("P%v = %v, want %v", p, got, want)
		}
	}
}

func TestPercentileSmallSample(t *testing.T) {
	var s Sample
	s.Add(7)
	for _, p := range []float64{1, 50, 99, 100} {
		if s.Percentile(p) != 7 {
			t.Fatal("single-element percentile")
		}
	}
}

func TestAddAfterPercentile(t *testing.T) {
	var s Sample
	s.AddAll([]float64{3, 1, 2})
	_ = s.Percentile(50)
	s.Add(0.5)
	if got := s.Percentile(1); got != 0.5 {
		t.Fatalf("P1 after re-add = %v", got)
	}
	if !almost(s.Mean(), 6.5/4) {
		t.Fatal("mean after re-add")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Fatal("div by zero guard")
	}
	if Ratio(3, 4) != 0.75 {
		t.Fatal("ratio")
	}
}

// Property: percentile is monotone in p and bounded by [Min, Max].
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, r := range raw {
			s.Add(float64(r))
		}
		prev := math.Inf(-1)
		for _, p := range []float64{1, 10, 25, 50, 75, 90, 99, 100} {
			v := s.Percentile(p)
			if v < prev || v < s.Min() || v > s.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: P100 equals max; mean lies in [min, max].
func TestPropertyMeanBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(n uint8) bool {
		var s Sample
		count := int(n)%50 + 1
		for i := 0; i < count; i++ {
			s.Add(rng.NormFloat64() * 100)
		}
		if !almost(s.Percentile(100), s.Max()) {
			return false
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: nearest-rank percentile agrees with a direct definition.
func TestPropertyNearestRankDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(n uint8, pRaw uint8) bool {
		count := int(n)%40 + 1
		p := float64(pRaw%100) + 1
		var s Sample
		vals := make([]float64, count)
		for i := range vals {
			vals[i] = rng.Float64() * 1000
			s.Add(vals[i])
		}
		sort.Float64s(vals)
		rank := int(math.Ceil(p / 100 * float64(count)))
		if rank < 1 {
			rank = 1
		}
		return s.Percentile(p) == vals[rank-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
