// Package stats provides the small statistics toolkit behind the paper's
// plots: means, percentiles (the paper reports average, 99 percentile and
// maximum values), and an accumulating sample set.
package stats

import (
	"math"
	"sort"
)

// Sample accumulates float64 observations.
type Sample struct {
	xs     []float64
	sum    float64
	sorted bool
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sum += x
	s.sorted = false
}

// AddAll appends many observations.
func (s *Sample) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Values returns the observations (shared slice; do not mutate). Order is
// unspecified once Percentile has been called.
func (s *Sample) Values() []float64 { return s.xs }

// Sum returns the total of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.sum / float64(len(s.xs))
}

// Max returns the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := math.Inf(-1)
	for _, x := range s.xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := math.Inf(1)
	for _, x := range s.xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 < p <= 100) using the
// nearest-rank method, matching the paper's "99 percentile" figures.
// It returns 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if p <= 0 {
		return s.xs[0]
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return s.xs[rank-1]
}

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	m := s.Mean()
	var acc float64
	for _, x := range s.xs {
		d := x - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(n))
}

// Summary is a compact report of a sample, in the shape the paper's
// figures use (average / 99 percentile / maximum).
type Summary struct {
	N    int
	Mean float64
	P99  float64
	Max  float64
}

// Summarize reduces the sample to a Summary.
func (s *Sample) Summarize() Summary {
	return Summary{N: s.N(), Mean: s.Mean(), P99: s.Percentile(99), Max: s.Max()}
}

// Ratio returns num/den, or 0 when den is 0 — the guard every per-node
// paper metric needs.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
