package cli

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext returns a context canceled on the first SIGINT or
// SIGTERM, letting a command wind down cooperatively — in-flight engines
// abort at their next periodic check, partial results are still written,
// files are closed — instead of dying mid-write. After the first signal
// the handler is removed, so a second ^C falls through to the runtime's
// default behaviour and kills the process immediately.
func SignalContext() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ctx.Done()
		stop() // restore default handling: second signal is fatal
	}()
	return ctx, stop
}
