package cli

import (
	"testing"

	"rmac/internal/experiment"
)

func TestParseProtocol(t *testing.T) {
	cases := map[string]experiment.Protocol{
		"rmac": experiment.RMAC, "RMAC": experiment.RMAC,
		"bmmm": experiment.BMMM, "bmw": experiment.BMW,
		"lbp": experiment.LBP, "mx": experiment.MX, "802.11MX": experiment.MX,
		" rmac ": experiment.RMAC,
	}
	for in, want := range cases {
		got, err := ParseProtocol(in)
		if err != nil || got != want {
			t.Fatalf("ParseProtocol(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseProtocol("ethernet"); err == nil {
		t.Fatal("bad protocol accepted")
	}
}

func TestParseProtocols(t *testing.T) {
	got, err := ParseProtocols("rmac,bmmm,mx")
	if err != nil || len(got) != 3 || got[2] != experiment.MX {
		t.Fatalf("= %v, %v", got, err)
	}
	if _, err := ParseProtocols("rmac,nope"); err == nil {
		t.Fatal("bad list accepted")
	}
}

func TestParseScenarios(t *testing.T) {
	all, err := ParseScenarios("all")
	if err != nil || len(all) != 3 {
		t.Fatalf("all = %v, %v", all, err)
	}
	// "all" returns a copy, not the shared slice.
	all[0] = experiment.Speed2
	if experiment.Scenarios[0] != experiment.Stationary {
		t.Fatal("ParseScenarios aliases the package slice")
	}
	got, err := ParseScenarios("static,speed2")
	if err != nil || len(got) != 2 || got[0] != experiment.Stationary || got[1] != experiment.Speed2 {
		t.Fatalf("= %v, %v", got, err)
	}
	if _, err := ParseScenarios("speed3"); err == nil {
		t.Fatal("bad scenario accepted")
	}
}

func TestParseRates(t *testing.T) {
	got, err := ParseRates("5, 10,120")
	if err != nil || len(got) != 3 || got[2] != 120 {
		t.Fatalf("= %v, %v", got, err)
	}
	for _, bad := range []string{"0", "-5", "abc", "5,,10"} {
		if _, err := ParseRates(bad); err == nil {
			t.Fatalf("ParseRates(%q) accepted", bad)
		}
	}
}
