// Package cli holds the flag-value parsers shared by the command-line
// tools (rmacsim, rmacfigs): protocol, scenario and rate lists.
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"rmac/internal/experiment"
)

// ParseProtocol maps a flag value to a Protocol.
func ParseProtocol(s string) (experiment.Protocol, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "rmac":
		return experiment.RMAC, nil
	case "bmmm":
		return experiment.BMMM, nil
	case "bmw":
		return experiment.BMW, nil
	case "lbp":
		return experiment.LBP, nil
	case "mx", "802.11mx":
		return experiment.MX, nil
	case "dot11", "802.11", "80211":
		return experiment.DOT11, nil
	}
	return 0, fmt.Errorf("unknown protocol %q (want rmac, bmmm, bmw, lbp, mx, dot11)", s)
}

// ParseProtocols parses a comma-separated protocol list.
func ParseProtocols(spec string) ([]experiment.Protocol, error) {
	var out []experiment.Protocol
	for _, s := range strings.Split(spec, ",") {
		p, err := ParseProtocol(s)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// ParseScenario maps a flag value to a Scenario.
func ParseScenario(s string) (experiment.Scenario, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "stationary", "static":
		return experiment.Stationary, nil
	case "speed1":
		return experiment.Speed1, nil
	case "speed2":
		return experiment.Speed2, nil
	}
	return 0, fmt.Errorf("unknown scenario %q (want stationary, speed1, speed2)", s)
}

// ParseScenarios parses a comma-separated scenario list; "all" selects
// the paper's three.
func ParseScenarios(spec string) ([]experiment.Scenario, error) {
	if strings.TrimSpace(spec) == "all" {
		return append([]experiment.Scenario(nil), experiment.Scenarios...), nil
	}
	var out []experiment.Scenario
	for _, s := range strings.Split(spec, ",") {
		sc, err := ParseScenario(s)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}

// ParseRates parses a comma-separated list of positive packet rates.
func ParseRates(spec string) ([]float64, error) {
	var out []float64
	for _, s := range strings.Split(spec, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad rate %q (want a positive number)", s)
		}
		out = append(out, v)
	}
	return out, nil
}
