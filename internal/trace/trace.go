// Package trace provides a lightweight, allocation-conscious event trace
// for the simulator: frame transmissions, receptions, tone transitions
// and protocol decisions, recorded into a bounded ring and renderable as
// a human-readable timeline. It is the debugging instrument for protocol
// work — the equivalent of GloMoSim's trace files.
package trace

import (
	"fmt"
	"io"
	"strings"

	"rmac/internal/sim"
)

// Kind classifies a trace event.
type Kind uint8

const (
	// TxStart is the start of a frame transmission.
	TxStart Kind = iota
	// TxEnd is a natural transmission completion.
	TxEnd
	// TxAbort is an aborted transmission.
	TxAbort
	// RxOK is a correctly decoded frame.
	RxOK
	// RxCorrupt is a collided/truncated/noisy frame.
	RxCorrupt
	// ToneOn / ToneOff are busy-tone emissions.
	ToneOn
	ToneOff
	// State is a protocol state transition.
	State
	// Drop is a packet abandoned at the retry limit.
	Drop
	// Deliver is an upper-layer delivery.
	Deliver
	// Custom is free-form protocol annotation.
	Custom
	// NodeDown / NodeUp are fault-injected radio crashes and recoveries.
	NodeDown
	NodeUp
)

// NumKinds is the number of defined trace kinds; Kind values are dense
// in [0, NumKinds), so per-kind tables can be plain arrays.
const NumKinds = int(NodeUp) + 1

// kindNames is the single dense Kind→name table. Every layer that labels
// data by trace kind — the auditor's context ring, the metrics families —
// goes through KindName rather than carrying its own string table, so the
// vocabulary cannot drift.
var kindNames = [NumKinds]string{
	"TX", "TX-END", "TX-ABORT", "RX", "RX-BAD", "TONE-ON", "TONE-OFF",
	"STATE", "DROP", "DELIVER", "NOTE", "DOWN", "UP",
}

// KindName returns the dense name-table entry for k; it is the shared
// vocabulary for any layer labeling data by trace kind. Out-of-range
// kinds return "".
func KindName(k Kind) string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return ""
}

func (k Kind) String() string {
	if s := KindName(k); s != "" {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one trace record.
type Event struct {
	At   sim.Time
	Node int
	Kind Kind
	// What identifies the subject (frame kind, tone name, state name).
	What string
	// Detail carries free-form context.
	Detail string
}

func (e Event) String() string {
	s := fmt.Sprintf("%12.3fµs node %-3d %-8s %s", e.At.Micros(), e.Node, e.Kind, e.What)
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Trace is a bounded ring of events. A nil *Trace is a valid no-op sink,
// so instrumented code can be left in place at zero cost.
type Trace struct {
	events []Event
	next   int
	full   bool
	total  uint64
}

// New creates a trace ring holding up to capacity events.
func New(capacity int) *Trace {
	if capacity <= 0 {
		panic("trace: capacity must be positive")
	}
	return &Trace{events: make([]Event, capacity)}
}

// Add records an event; the oldest event is evicted when full.
func (t *Trace) Add(e Event) {
	if t == nil {
		return
	}
	t.events[t.next] = e
	t.next++
	t.total++
	if t.next == len(t.events) {
		t.next = 0
		t.full = true
	}
}

// Addf records a Custom event with a formatted detail.
func (t *Trace) Addf(at sim.Time, node int, what, format string, args ...any) {
	if t == nil {
		return
	}
	t.Add(Event{At: at, Node: node, Kind: Custom, What: what, Detail: fmt.Sprintf(format, args...)})
}

// Len returns the number of retained events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	if t.full {
		return len(t.events)
	}
	return t.next
}

// Total returns the number of events ever recorded (including evicted).
func (t *Trace) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Events returns retained events in chronological order.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.full {
		return append([]Event(nil), t.events[:t.next]...)
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.next:]...)
	out = append(out, t.events[:t.next]...)
	return out
}

// Filter returns retained events matching the predicate, in order.
func (t *Trace) Filter(pred func(Event) bool) []Event {
	var out []Event
	for _, e := range t.Events() {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}

// WriteTo renders the retained timeline. It implements io.WriterTo.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, e := range t.Events() {
		m, err := fmt.Fprintln(w, e.String())
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Render returns the timeline as a string (test helper).
func (t *Trace) Render() string {
	var sb strings.Builder
	_, _ = t.WriteTo(&sb)
	return sb.String()
}
