package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"rmac/internal/sim"
)

func TestNilTraceIsNoop(t *testing.T) {
	var tr *Trace
	tr.Add(Event{}) // must not panic
	tr.Addf(0, 1, "x", "y %d", 3)
	if tr.Len() != 0 || tr.Total() != 0 || tr.Events() != nil {
		t.Fatal("nil trace not inert")
	}
}

func TestRingOrderAndEviction(t *testing.T) {
	tr := New(4)
	for i := 0; i < 6; i++ {
		tr.Add(Event{At: sim.Time(i), Node: i})
	}
	if tr.Len() != 4 || tr.Total() != 6 {
		t.Fatalf("len=%d total=%d", tr.Len(), tr.Total())
	}
	ev := tr.Events()
	for i, e := range ev {
		if e.Node != i+2 {
			t.Fatalf("events out of order after eviction: %+v", ev)
		}
	}
}

func TestPartialRing(t *testing.T) {
	tr := New(10)
	tr.Add(Event{Node: 1, Kind: TxStart, What: "MRTS"})
	tr.Add(Event{Node: 2, Kind: RxOK, What: "MRTS"})
	ev := tr.Events()
	if len(ev) != 2 || ev[0].Node != 1 || ev[1].Node != 2 {
		t.Fatalf("events = %+v", ev)
	}
}

func TestFilterAndRender(t *testing.T) {
	tr := New(16)
	tr.Add(Event{At: 17 * sim.Microsecond, Node: 3, Kind: ToneOn, What: "RBT"})
	tr.Add(Event{At: 30 * sim.Microsecond, Node: 4, Kind: RxCorrupt, What: "DATA", Detail: "from node 3"})
	tones := tr.Filter(func(e Event) bool { return e.Kind == ToneOn || e.Kind == ToneOff })
	if len(tones) != 1 || tones[0].What != "RBT" {
		t.Fatalf("filter = %+v", tones)
	}
	out := tr.Render()
	for _, want := range []string{"TONE-ON", "RBT", "RX-BAD", "from node 3", "17.000µs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAddf(t *testing.T) {
	tr := New(2)
	tr.Addf(5, 7, "retry", "attempt %d of %d", 2, 7)
	ev := tr.Events()
	if len(ev) != 1 || ev[0].Kind != Custom || ev[0].Detail != "attempt 2 of 7" {
		t.Fatalf("addf = %+v", ev)
	}
}

func TestKindStrings(t *testing.T) {
	if TxStart.String() != "TX" || RxCorrupt.String() != "RX-BAD" || Kind(99).String() != "Kind(99)" {
		t.Fatal("kind names")
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity must panic")
		}
	}()
	New(0)
}

// Property: the ring retains exactly the last min(n, cap) events in order.
func TestPropertyRingRetention(t *testing.T) {
	f := func(capRaw, nRaw uint8) bool {
		capacity := int(capRaw)%16 + 1
		n := int(nRaw) % 64
		tr := New(capacity)
		for i := 0; i < n; i++ {
			tr.Add(Event{Node: i})
		}
		ev := tr.Events()
		want := n
		if want > capacity {
			want = capacity
		}
		if len(ev) != want {
			return false
		}
		for i, e := range ev {
			if e.Node != n-want+i {
				return false
			}
		}
		return tr.Total() == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
