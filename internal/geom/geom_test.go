package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDist(t *testing.T) {
	a := Point{0, 0}
	b := Point{3, 4}
	if !almost(a.Dist(b), 5) {
		t.Fatalf("Dist = %v, want 5", a.Dist(b))
	}
	if !almost(a.Dist2(b), 25) {
		t.Fatalf("Dist2 = %v, want 25", a.Dist2(b))
	}
}

func TestVectorOps(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, 5}
	if got := p.Add(q); got != (Point{4, 7}) {
		t.Fatalf("Add = %v", got)
	}
	if got := q.Sub(p); got != (Point{2, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Fatalf("Scale = %v", got)
	}
	if !almost((Point{3, 4}).Norm(), 5) {
		t.Fatal("Norm")
	}
}

func TestLerp(t *testing.T) {
	p := Point{0, 0}
	q := Point{10, 20}
	if got := p.Lerp(q, 0); got != p {
		t.Fatalf("Lerp(0) = %v", got)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Fatalf("Lerp(1) = %v", got)
	}
	if got := p.Lerp(q, 0.5); got != (Point{5, 10}) {
		t.Fatalf("Lerp(0.5) = %v", got)
	}
}

func TestRect(t *testing.T) {
	r := Rect{500, 300}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{500, 300}) {
		t.Fatal("boundary points must be contained")
	}
	if r.Contains(Point{-1, 0}) || r.Contains(Point{0, 301}) {
		t.Fatal("outside points must not be contained")
	}
	if got := r.Clamp(Point{-5, 400}); got != (Point{0, 300}) {
		t.Fatalf("Clamp = %v", got)
	}
	if r.Area() != 150000 {
		t.Fatalf("Area = %v", r.Area())
	}
}

// Property: random points always lie inside the field.
func TestPropertyRandomPointInField(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(w, h uint16) bool {
		r := Rect{float64(w%1000) + 1, float64(h%1000) + 1}
		for i := 0; i < 20; i++ {
			if !r.Contains(r.RandomPoint(rng)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: distance is symmetric and satisfies the triangle inequality.
func TestPropertyMetric(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Point{float64(ax), float64(ay)}
		b := Point{float64(bx), float64(by)}
		c := Point{float64(cx), float64(cy)}
		if !almost(a.Dist(b), b.Dist(a)) {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Lerp stays on the segment (distance sum equals endpoint distance).
func TestPropertyLerpOnSegment(t *testing.T) {
	f := func(ax, ay, bx, by int16, tt uint8) bool {
		a := Point{float64(ax), float64(ay)}
		b := Point{float64(bx), float64(by)}
		u := float64(tt) / 255
		m := a.Lerp(b, u)
		return math.Abs(a.Dist(m)+m.Dist(b)-a.Dist(b)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
