// Package geom provides the minimal 2-D geometry needed by the wireless
// simulator: points, distances, and rectangular deployment fields.
package geom

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a position on the deployment plane, in metres.
type Point struct {
	X, Y float64
}

func (p Point) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// Add returns p translated by the vector q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p with both coordinates multiplied by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dist returns the Euclidean distance between p and q in metres.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared distance, avoiding the square root for
// range comparisons on the hot path.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Norm returns the length of p interpreted as a vector.
func (p Point) Norm() float64 { return math.Sqrt(p.X*p.X + p.Y*p.Y) }

// Lerp linearly interpolates from p to q; t=0 yields p, t=1 yields q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Rect is an axis-aligned deployment field [0,W] × [0,H] anchored at the
// origin, matching the paper's "500 m × 300 m plain".
type Rect struct {
	W, H float64
}

// Contains reports whether p lies inside the field (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= 0 && p.X <= r.W && p.Y >= 0 && p.Y <= r.H
}

// Clamp returns p pulled inside the field boundaries.
func (r Rect) Clamp(p Point) Point {
	return Point{math.Min(math.Max(p.X, 0), r.W), math.Min(math.Max(p.Y, 0), r.H)}
}

// RandomPoint returns a uniformly distributed point inside the field.
func (r Rect) RandomPoint(rng *rand.Rand) Point {
	return Point{rng.Float64() * r.W, rng.Float64() * r.H}
}

// Area returns the field area in square metres.
func (r Rect) Area() float64 { return r.W * r.H }
