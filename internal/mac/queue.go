package mac

// Queue is the bounded FIFO transmission queue in front of a MAC state
// machine. A full queue rejects new packets (counted by the caller as
// queue drops).
type Queue struct {
	items []*SendRequest
	head  int
	cap   int
}

// NewQueue creates a queue holding at most capacity packets.
func NewQueue(capacity int) *Queue {
	if capacity <= 0 {
		panic("mac: queue capacity must be positive")
	}
	return &Queue{cap: capacity}
}

// Len returns the number of queued packets.
func (q *Queue) Len() int { return len(q.items) - q.head }

// Full reports whether the queue is at capacity.
func (q *Queue) Full() bool { return q.Len() >= q.cap }

// Push appends a packet; it returns false when full.
func (q *Queue) Push(r *SendRequest) bool {
	if q.Full() {
		return false
	}
	q.items = append(q.items, r)
	return true
}

// PushFront inserts a packet at the head of the queue (control-plane
// priority); it returns false when full.
func (q *Queue) PushFront(r *SendRequest) bool {
	if q.Full() {
		return false
	}
	if q.head > 0 {
		q.head--
		q.items[q.head] = r
		return true
	}
	q.items = append(q.items, nil)
	copy(q.items[1:], q.items)
	q.items[0] = r
	return true
}

// Peek returns the head packet without removing it, or nil when empty.
func (q *Queue) Peek() *SendRequest {
	if q.Len() == 0 {
		return nil
	}
	return q.items[q.head]
}

// Pop removes and returns the head packet, or nil when empty.
func (q *Queue) Pop() *SendRequest {
	if q.Len() == 0 {
		return nil
	}
	r := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	// Compact once the dead prefix dominates, keeping amortized O(1).
	if q.head > 32 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return r
}
