// Package csma provides the IEEE 802.11 DCF primitives shared by the
// baseline protocols BMMM and BMW: NAV virtual carrier sense and a
// DIFS-gated contention process wrapping the common backoff entity.
// RMAC deliberately does not use this package — it discards virtual
// carrier sense in favour of busy tones (§2).
package csma

import (
	"math/rand"

	"rmac/internal/mac"
	"rmac/internal/phy"
	"rmac/internal/sim"
)

// NAV is the Network Allocation Vector: the virtual carrier-sense
// reservation learned from overheard Duration fields.
type NAV struct {
	eng   *sim.Engine
	until sim.Time
	timer *sim.Timer
}

// NewNAV creates a NAV whose expiry invokes onExpire (typically the DCF's
// ChannelMaybeIdle).
func NewNAV(eng *sim.Engine, onExpire func()) *NAV {
	n := &NAV{eng: eng}
	n.timer = sim.NewTimer(eng, onExpire)
	return n
}

// Set extends the reservation to cover d from now (shorter reservations
// never shrink the NAV).
func (n *NAV) Set(d sim.Time) {
	end := n.eng.Now() + d
	if end <= n.until {
		return
	}
	n.until = end
	n.timer.StartAt(end)
}

// Busy reports whether the virtual carrier is currently reserved.
func (n *NAV) Busy() bool { return n.eng.Now() < n.until }

// Until returns the reservation end.
func (n *NAV) Until() sim.Time { return n.until }

// DCF is the distributed coordination function contention process: wait
// for the medium (physical + virtual) to stay idle for DIFS, then count
// down the backoff, then fire. Owners feed it channel transitions.
type DCF struct {
	eng     *sim.Engine
	idle    func() bool // physical && virtual carrier idle
	fire    func()
	backoff *mac.Backoff
	difs    *sim.Timer
	armed   bool
}

// NewDCF creates a contention process. idle must report the combined
// physical+virtual carrier state; fire runs when a transmission
// opportunity is won.
func NewDCF(eng *sim.Engine, rng *rand.Rand, idle func() bool, fire func()) *DCF {
	d := &DCF{eng: eng, idle: idle, fire: fire}
	d.backoff = mac.NewBackoff(eng, rng, phy.SlotTime, idle, d.onBackoffFire)
	d.difs = sim.NewTimer(eng, d.onDIFS)
	return d
}

// Backoff exposes the contention window controls (Draw/Fail/Reset).
func (d *DCF) Backoff() *mac.Backoff { return d.backoff }

// AuditState exposes the contention internals for the protocol-invariant
// auditor (internal/audit.ContentionReporter): whether an opportunity is
// being sought, whether the slot countdown is running, and whether the
// DIFS gate is armed to restart it.
func (d *DCF) AuditState() (armed, counting, difsPending bool) {
	return d.armed, d.backoff.Counting(), d.difs.Pending()
}

// Armed reports whether a transmission opportunity is being sought.
func (d *DCF) Armed() bool { return d.armed }

// Arm requests a transmission opportunity. Fire happens after the medium
// has been idle for DIFS plus any active backoff countdown.
func (d *DCF) Arm() {
	if d.armed {
		return
	}
	d.armed = true
	d.ChannelMaybeIdle()
}

// Disarm abandons the pending opportunity.
func (d *DCF) Disarm() {
	d.armed = false
	d.difs.Stop()
	d.backoff.Suspend()
}

// ChannelBusy must be called on any physical or virtual carrier
// transition to busy.
func (d *DCF) ChannelBusy() {
	d.difs.Stop()
	d.backoff.Suspend()
}

// ChannelMaybeIdle must be called whenever the medium may have become
// idle (carrier drop, NAV expiry). It restarts the DIFS gate.
func (d *DCF) ChannelMaybeIdle() {
	if !d.armed || !d.idle() {
		return
	}
	if d.difs.Pending() || d.backoff.Counting() {
		return
	}
	d.difs.Start(phy.DIFS)
}

func (d *DCF) onDIFS() {
	if !d.armed || !d.idle() {
		return
	}
	if d.backoff.Active() {
		d.backoff.Resume()
		return
	}
	d.won()
}

func (d *DCF) onBackoffFire() {
	if !d.armed {
		return
	}
	d.won()
}

func (d *DCF) won() {
	d.armed = false
	d.fire()
}
