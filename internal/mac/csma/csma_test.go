package csma

import (
	"testing"

	"rmac/internal/phy"
	"rmac/internal/sim"
)

func TestNAVExtendsNeverShrinks(t *testing.T) {
	eng := sim.NewEngine(1)
	expired := 0
	n := NewNAV(eng, func() { expired++ })
	if n.Busy() {
		t.Fatal("fresh NAV busy")
	}
	n.Set(100 * sim.Microsecond)
	if !n.Busy() || n.Until() != 100*sim.Microsecond {
		t.Fatal("NAV not set")
	}
	n.Set(50 * sim.Microsecond) // shorter: ignored
	if n.Until() != 100*sim.Microsecond {
		t.Fatal("NAV shrank")
	}
	n.Set(200 * sim.Microsecond)
	eng.RunAll()
	if n.Busy() {
		t.Fatal("NAV busy after expiry")
	}
	if expired != 1 {
		t.Fatalf("expiry callbacks = %d, want exactly 1 (restart must cancel)", expired)
	}
	if eng.Now() != 200*sim.Microsecond {
		t.Fatalf("expiry at %v", eng.Now())
	}
}

type dcfHarness struct {
	eng   *sim.Engine
	d     *DCF
	idle  bool
	fired int
}

func newDCFHarness(seed int64) *dcfHarness {
	h := &dcfHarness{eng: sim.NewEngine(seed), idle: true}
	h.d = NewDCF(h.eng, h.eng.Rand(), func() bool { return h.idle }, func() { h.fired++ })
	return h
}

func TestDCFFiresAfterDIFSWhenNoBackoff(t *testing.T) {
	h := newDCFHarness(1)
	h.d.Arm()
	h.eng.RunAll()
	if h.fired != 1 {
		t.Fatal("did not fire")
	}
	if h.eng.Now() != phy.DIFS {
		t.Fatalf("fired at %v, want DIFS", h.eng.Now())
	}
	if h.d.Armed() {
		t.Fatal("still armed after fire")
	}
}

func TestDCFWaitsForBackoff(t *testing.T) {
	h := newDCFHarness(2)
	h.d.Backoff().Draw()
	bi := h.d.Backoff().BI()
	h.d.Arm()
	h.eng.RunAll()
	if h.fired != 1 {
		t.Fatal("did not fire")
	}
	want := phy.DIFS + sim.Time(bi)*phy.SlotTime
	if h.eng.Now() != want {
		t.Fatalf("fired at %v, want %v", h.eng.Now(), want)
	}
}

func TestDCFBusyRestartsDIFS(t *testing.T) {
	h := newDCFHarness(3)
	h.d.Arm()
	// Busy burst in the middle of DIFS.
	h.eng.Schedule(20*sim.Microsecond, func() {
		h.idle = false
		h.d.ChannelBusy()
	})
	resume := 300 * sim.Microsecond
	h.eng.Schedule(resume, func() {
		h.idle = true
		h.d.ChannelMaybeIdle()
	})
	h.eng.RunAll()
	if h.fired != 1 {
		t.Fatal("did not fire")
	}
	if h.eng.Now() != resume+phy.DIFS {
		t.Fatalf("fired at %v, want %v (full DIFS after idle)", h.eng.Now(), resume+phy.DIFS)
	}
}

func TestDCFArmWhileBusyDefers(t *testing.T) {
	h := newDCFHarness(4)
	h.idle = false
	h.d.Arm()
	h.eng.RunAll()
	if h.fired != 0 {
		t.Fatal("fired while busy")
	}
	h.idle = true
	h.d.ChannelMaybeIdle()
	h.eng.RunAll()
	if h.fired != 1 {
		t.Fatal("did not fire after idle")
	}
}

func TestDCFDisarm(t *testing.T) {
	h := newDCFHarness(5)
	h.d.Arm()
	h.d.Disarm()
	h.eng.RunAll()
	if h.fired != 0 {
		t.Fatal("fired after disarm")
	}
}

func TestDCFArmIdempotent(t *testing.T) {
	h := newDCFHarness(6)
	h.d.Arm()
	h.d.Arm()
	h.eng.RunAll()
	if h.fired != 1 {
		t.Fatalf("fired %d times", h.fired)
	}
}

func TestDCFWithNAV(t *testing.T) {
	// Combined physical+virtual idle predicate: NAV blocks the countdown
	// until it expires.
	eng := sim.NewEngine(7)
	fired := 0
	var nav *NAV
	var d *DCF
	physIdle := true
	idle := func() bool { return physIdle && !nav.Busy() }
	d = NewDCF(eng, eng.Rand(), idle, func() { fired++ })
	nav = NewNAV(eng, func() { d.ChannelMaybeIdle() })
	nav.Set(500 * sim.Microsecond)
	d.Arm()
	eng.RunAll()
	if fired != 1 {
		t.Fatal("did not fire")
	}
	if got, want := eng.Now(), 500*sim.Microsecond+phy.DIFS; got != want {
		t.Fatalf("fired at %v, want %v", got, want)
	}
}
