// Package mac defines the interface between upper layers (routing, the
// multicast application) and the MAC protocol implementations (RMAC, BMMM,
// BMW), plus the machinery all of them share: the transmission queue, the
// contention backoff procedure (§3.3.1), and per-node statistics feeding
// the paper's evaluation metrics (§4.2, §4.3).
package mac

import (
	"rmac/internal/frame"
	"rmac/internal/sim"
)

// Service selects between the paper's two transmission services (§3.3).
type Service int

const (
	// Reliable is the Reliable Send service: positive feedback and
	// retransmission until delivered or the retry limit is exceeded.
	Reliable Service = iota
	// Unreliable is the Unreliable Send service: one transmission, no
	// recovery.
	Unreliable
)

func (s Service) String() string {
	if s == Reliable {
		return "reliable"
	}
	return "unreliable"
}

// SendRequest is one upper-layer packet handed to the MAC.
type SendRequest struct {
	Service Service
	// Dests lists the intended receivers for Reliable service: one
	// address (unicast), several (multicast) or all one-hop neighbours
	// (broadcast) — the three modes of §3.3.2. For Unreliable service
	// Dests holds the single receiver address field of the frame, which
	// may be frame.Broadcast.
	Dests   []frame.Addr
	Payload []byte
	// Urgent marks control-plane traffic (routing beacons): it jumps to
	// the front of the transmission queue so topology maintenance is not
	// starved behind a data backlog.
	Urgent bool
	// Meta is an opaque upper-layer cookie returned in the TxResult.
	Meta any

	// EnqueuedAt is stamped by the MAC when accepted.
	EnqueuedAt sim.Time

	// pool/live back the recycling machinery; see ReqPool.
	pool *ReqPool
	live bool
}

// TxResult reports the outcome of a SendRequest. The Delivered and Failed
// slices are loaned from the reporting MAC's reusable buffers: they are
// valid only for the duration of the OnSendComplete call and must be
// copied out if kept (same copy-out contract as received frames, see
// DESIGN.md §9).
type TxResult struct {
	Req *SendRequest
	// Delivered lists the receivers that positively acknowledged
	// (Reliable service only).
	Delivered []frame.Addr
	// Failed lists receivers never acknowledged before the retry limit.
	Failed []frame.Addr
	// Dropped is true when the packet was abandoned: retry limit hit
	// with at least one receiver outstanding, or queue overflow.
	Dropped bool
	// Retries is the number of retransmission cycles beyond the first
	// attempt.
	Retries int
}

// RxInfo describes a received data frame delivered to the upper layer.
type RxInfo struct {
	From     frame.Addr
	Reliable bool
	Seq      uint32
	RxStart  sim.Time
	RxEnd    sim.Time
}

// UpperLayer receives MAC indications. Implemented by routing and the
// multicast application.
type UpperLayer interface {
	// OnDeliver is called once per data frame addressed to (or accepted
	// by) this node. payload aliases the pooled frame's backing storage
	// and is valid only for the duration of the call: copy out before
	// returning (DESIGN.md §9).
	OnDeliver(payload []byte, info RxInfo)
	// OnSendComplete is called exactly once per accepted SendRequest.
	// The upper layer owns the request again when this returns; a pooled
	// request should be Recycled here.
	OnSendComplete(res TxResult)
}

// MAC is the protocol-independent surface the upper layers program
// against.
type MAC interface {
	// Addr returns this node's MAC address.
	Addr() frame.Addr
	// Send enqueues a packet. It returns false (and reports a queue
	// drop) when the transmission queue is full; no OnSendComplete
	// follows in that case.
	Send(req *SendRequest) bool
	// SetUpper installs the upper-layer sink. Must be called before
	// traffic starts.
	SetUpper(u UpperLayer)
	// Stats exposes the node's counters.
	Stats() *Stats
}

// Liveness is a point-in-time snapshot of a MAC's progress guarantees,
// taken by the experiment harness's deadlock auditor when the engine
// quiesces. A node reporting !Idle with !Pending is stuck: it is inside
// an exchange but holds no armed timer, in-flight transmission or
// arriving signal that could ever advance it — a protocol deadlock.
// Pending is deliberately conservative (any plausibly-advancing source
// counts), so a flagged node is a genuine bug, not a mid-exchange
// snapshot artifact.
type Liveness struct {
	// State is the protocol state name, for diagnostics.
	State string
	// Idle reports that no exchange, queued packet or pending context
	// could require the node to make progress.
	Idle bool
	// Pending reports that something is armed that will advance the
	// node: a protocol timer, the contention process, an in-flight
	// transmission or reception, or a scheduled exchange step.
	Pending bool
}

// LivenessReporter is implemented by MAC protocols that can be audited
// for deadlock. All protocols in this repository implement it.
type LivenessReporter interface {
	Liveness() Liveness
}

// Limits bundles the retry/queue policies shared by the protocols.
type Limits struct {
	// RetryLimit is the maximum number of retransmission cycles for one
	// packet before it is dropped (§3.3.2 note 1).
	RetryLimit int
	// QueueCap is the transmission queue capacity in packets.
	QueueCap int
	// MaxReceivers caps receivers per Reliable Send invocation; larger
	// destination sets are split (§3.4). Protocols that do not split
	// (BMMM) ignore it.
	MaxReceivers int
}

// DefaultLimits mirrors the paper's implementation choices: retry limit 7
// (802.11 short retry), a deep queue (the paper's delays reach seconds,
// implying substantial queueing), and the §3.4 receiver limit of 20.
func DefaultLimits() Limits {
	return Limits{RetryLimit: 7, QueueCap: 512, MaxReceivers: 20}
}
