package mac

import (
	"math/rand"

	"rmac/internal/phy"
	"rmac/internal/sim"
)

// Backoff implements the §3.3.1 backoff procedure shared by the Reliable
// and Unreliable Send services, and reused (with a different idle
// predicate) by the 802.11-based baselines.
//
// The owner drives it with channel-state transitions: call Resume whenever
// the relevant channels may have become idle, Suspend when they become
// busy. While counting, BI decreases by one per idle slot; when BI reaches
// zero the fire callback runs. Per the paper, a suspended slot does not
// decrement BI.
type Backoff struct {
	eng  *sim.Engine
	rng  *rand.Rand
	slot sim.Time
	idle func() bool // all relevant channels idle right now
	fire func()      // BI hit zero

	bi, cw int
	active bool // a draw is pending (BI meaningful)
	timer  *sim.Timer
	cwMin  int
	cwMax  int

	// BusyTicks counts slot expiries that found the channel busy without
	// the owner having called Suspend (the self-healing re-poll path).
	BusyTicks uint64
}

// NewBackoff creates a backoff entity. idle must report whether the
// protocol's countdown condition holds (for RMAC: data channel AND RBT
// channel idle); fire runs when the countdown completes.
func NewBackoff(eng *sim.Engine, rng *rand.Rand, slot sim.Time, idle func() bool, fire func()) *Backoff {
	b := &Backoff{
		eng: eng, rng: rng, slot: slot, idle: idle, fire: fire,
		cw: phy.CWMin, cwMin: phy.CWMin, cwMax: phy.CWMax,
	}
	b.timer = sim.NewTimer(eng, b.tick)
	return b
}

// BI returns the remaining backoff interval in slots.
func (b *Backoff) BI() int { return b.bi }

// CW returns the current contention window.
func (b *Backoff) CW() int { return b.cw }

// Active reports whether a countdown is pending or in progress.
func (b *Backoff) Active() bool { return b.active }

// Counting reports whether the slot timer is currently running.
func (b *Backoff) Counting() bool { return b.timer.Pending() }

// Draw initialises BI to a uniform value in [0, CW] and marks the backoff
// active. It does not start counting; call Resume.
func (b *Backoff) Draw() {
	b.bi = b.rng.Intn(b.cw + 1)
	b.active = true
}

// Fail doubles the contention window (exponential backoff on failed
// transmissions), saturating at CWMax.
func (b *Backoff) Fail() {
	b.cw = b.cw*2 + 1
	if b.cw > b.cwMax {
		b.cw = b.cwMax
	}
}

// Reset restores the contention window to CWMin after a successful
// transmission or a drop.
func (b *Backoff) Reset() { b.cw = b.cwMin }

// Resume starts (or restarts) the slot countdown if a draw is active and
// the channels are idle. If BI is already zero it fires immediately.
func (b *Backoff) Resume() {
	if !b.active || b.timer.Pending() {
		return
	}
	if !b.idle() {
		return
	}
	if b.bi == 0 {
		b.finish()
		return
	}
	b.timer.Start(b.slot)
}

// Suspend pauses the countdown without consuming the in-progress slot.
func (b *Backoff) Suspend() {
	b.timer.Stop()
}

// Cancel abandons the current draw entirely.
func (b *Backoff) Cancel() {
	b.timer.Stop()
	b.active = false
	b.bi = 0
}

func (b *Backoff) tick() {
	if !b.idle() {
		// The channel went busy within the slot without the owner calling
		// Suspend. Per the paper the slot does not count — but if the busy
		// episode produces no further channel-state edge (it started and
		// ended inside this same slot, or the owner's edge callback raced
		// this tick), no Resume will ever come. Re-arm the slot timer so
		// the draw keeps polling instead of stalling Active() forever;
		// Suspend still stops the poll, and a later Resume while the poll
		// is pending is the usual no-op.
		b.BusyTicks++
		b.timer.Start(b.slot)
		return
	}
	b.bi--
	if b.bi <= 0 {
		b.finish()
		return
	}
	b.timer.Start(b.slot)
}

func (b *Backoff) finish() {
	b.active = false
	b.fire()
}
