package bmmm

import (
	"testing"

	"rmac/internal/audit"
	"rmac/internal/frame"
	"rmac/internal/geom"
	"rmac/internal/phy"
	"rmac/internal/sim"
)

// dropNth corrupts the nth (0-based) otherwise-decodable frame of the
// given wire size transmitted by node from — a deterministic single-frame
// loss, draws no randomness, allocates nothing.
type dropNth struct {
	from    int
	size    int
	nth     int
	seen    int
	dropped int
}

func (d *dropNth) FrameError(rx, tx *phy.Radio, wireBytes int) bool {
	if tx.ID() != d.from || wireBytes != d.size {
		return false
	}
	d.seen++
	if d.seen-1 == d.nth {
		d.dropped++
		return true
	}
	return false
}

// TestLostACKRedeliversOnce: the receiver's ACK (its second 14-byte frame,
// after the CTS) is lost on the air. The packet WAS delivered, so the
// sender's recovery must not produce a second upper-layer delivery, and
// the exchange must still end in success with zero invariant violations.
func TestLostACKRedeliversOnce(t *testing.T) {
	w := newWorld(22, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}})
	aud := audit.New(w.eng, w.medium, audit.Config{})
	for i, n := range w.nodes {
		aud.RegisterMAC(i, n)
		n.SetAuditor(aud)
		n.SetUpper(aud.WrapUpper(i, w.uppers[i]))
	}
	imp := &dropNth{from: 1, size: frame.ACKLen, nth: 1}
	w.medium.SetImpairment(imp)

	if !w.nodes[0].Send(reliableReq("lost-ack", 1)) {
		t.Fatal("Send rejected")
	}
	w.eng.Run(5 * sim.Second)

	if imp.dropped != 1 {
		t.Fatalf("impairment dropped %d frames, want 1", imp.dropped)
	}
	if got := len(w.uppers[1].delivered); got != 1 {
		t.Fatalf("receiver deliveries = %d, want exactly 1 (duplicate must be suppressed)", got)
	}
	comp := w.uppers[0].completes
	if len(comp) != 1 || comp[0].Dropped {
		t.Fatalf("sender completion = %+v, want one success", comp)
	}
	if st := w.nodes[0].Stats(); st.ReliableDelivered != 1 {
		t.Fatalf("ReliableDelivered = %d, want 1", st.ReliableDelivered)
	}
	if aud.Count != 0 {
		for _, v := range aud.Violations() {
			t.Errorf("violation: %v", v)
		}
		t.Fatalf("auditor recorded %d violations, want 0", aud.Count)
	}
}
