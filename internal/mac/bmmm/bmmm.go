// Package bmmm implements the Batch Mode Multicast MAC protocol of Sun,
// Huang, Arora and Lai (ICPP 2002) as described in §2 of the RMAC paper:
// an IEEE 802.11 extension that reliably multicasts one data frame to n
// receivers using n RTS/CTS pairs to reserve the channel, a single DATA
// transmission, and n RAK (Request-for-ACK)/ACK pairs to collect ordered
// feedback — 2n pairs of control frames per data frame, costing 632 n µs
// of control airtime at 802.11b rates.
//
// It reuses the DCF contention process and NAV virtual carrier sense from
// package csma. Its Unreliable service is plain 802.11 broadcast.
//
// Two simulator liberties, both invisible on the wire: the RAK a sender
// emits carries the data sequence number in the struct (real BMMM
// receivers bind RAKs to the exchange by timing), and group membership of
// the broadcast-addressed DATA frame is checked against the RTS
// solicitation state rather than a multicast group address.
package bmmm

import (
	"fmt"

	"rmac/internal/audit"
	"rmac/internal/frame"
	"rmac/internal/mac"
	"rmac/internal/mac/csma"
	"rmac/internal/phy"
	"rmac/internal/sim"
)

// respSlack pads control response timeouts beyond SIFS + frame airtime to
// absorb propagation and turnaround.
const respSlack = 2*phy.Tau + 2*sim.Microsecond

type state int

const (
	stIdle state = iota
	stTxRTS
	stWfCTS
	stTxData
	stTxRAK
	stWfACK
	stTxUData
	stTxResp // transmitting a CTS or ACK as a receiver
	stGap    // inside a SIFS gap of an ongoing exchange
)

var stateNames = [...]string{"IDLE", "TX_RTS", "WF_CTS", "TX_DATA", "TX_RAK", "WF_ACK", "TX_UDATA", "TX_RESP", "GAP"}

func (s state) String() string { return stateNames[s] }

// txContext tracks one reliable packet across retransmission rounds.
type txContext struct {
	req       *mac.SendRequest
	remaining []frame.Addr // receivers still unacknowledged
	delivered []frame.Addr
	retries   int
	seq       uint16

	// Per-round state.
	ctsOK []bool
	ackOK []bool
	idx   int // receiver index within the current phase
}

// peerState is per-sender receiver bookkeeping.
type peerState struct {
	solicited bool   // an RTS from this sender addressed us
	haveSeq   uint16 // last data seq correctly received
	have      bool
	delivered uint16 // last seq passed to the upper layer
	deliverOK bool
}

// step identifies the deferred exchange step scheduled by afterSIFS,
// replacing the per-step closure with a tagged event on the node.
type step int8

const (
	stepNone step = iota
	stepRTS
	stepData
	stepRAK
)

// Node is one BMMM instance bound to a radio.
type Node struct {
	eng    *sim.Engine
	radio  *phy.Radio
	cfg    phy.Config
	addr   frame.Addr
	limits mac.Limits
	upper  mac.UpperLayer
	frames *frame.Pool

	st    state
	queue *mac.Queue
	dcf   *csma.DCF
	nav   *csma.NAV
	stats mac.Stats
	aud   *audit.Auditor

	cur   *txContext
	timer *sim.Timer // CTS/ACK response timeout
	peers map[frame.Addr]*peerState
	seq   uint16

	// ctxBuf backs cur (one exchange at a time); stillBuf/failedBuf are
	// scratch receiver lists reused across rounds.
	ctxBuf    txContext
	stillBuf  []frame.Addr
	failedBuf []frame.Addr

	// pendingStep/pendingResp carry the argument of the next tagged
	// event: the deferred sender-side step, and the acquired (not yet
	// transmitted) CTS/ACK response frame.
	pendingStep step
	pendingResp frame.Frame

	// deferred counts scheduled exchange steps (SIFS gaps, pending
	// responses) not yet fired, so the liveness audit sees them.
	deferred int
}

var _ mac.MAC = (*Node)(nil)
var _ phy.Handler = (*Node)(nil)

// New creates a BMMM node on the given radio and installs itself as the
// radio's PHY handler.
func New(radio *phy.Radio, cfg phy.Config, eng *sim.Engine, limits mac.Limits) *Node {
	n := &Node{
		eng:    eng,
		radio:  radio,
		cfg:    cfg,
		addr:   frame.AddrFromID(radio.ID()),
		limits: limits,
		queue:  mac.NewQueue(limits.QueueCap),
		peers:  make(map[frame.Addr]*peerState),
		frames: radio.Frames(),
	}
	n.nav = csma.NewNAV(eng, func() { n.dcf.ChannelMaybeIdle() })
	n.dcf = csma.NewDCF(eng, eng.Rand(), n.mediumIdle, n.onWin)
	n.timer = sim.NewTimer(eng, n.onRespTimeout)
	radio.SetHandler(n)
	return n
}

// Addr implements mac.MAC.
func (n *Node) Addr() frame.Addr { return n.addr }

// Stats implements mac.MAC.
func (n *Node) Stats() *mac.Stats { return &n.stats }

// SetUpper implements mac.MAC.
func (n *Node) SetUpper(u mac.UpperLayer) { n.upper = u }

// SetAuditor attaches the protocol-invariant auditor; the node declares
// DCF-won initiations and reliable outcomes to it.
func (n *Node) SetAuditor(a *audit.Auditor) { n.aud = a }

// AuditContention implements audit.ContentionReporter.
func (n *Node) AuditContention() (wants, counting, gated, idle bool) {
	armed, counting, difsPending := n.dcf.AuditState()
	return armed, counting, difsPending, n.mediumIdle()
}

// AuditNAVBusy implements audit.NAVReporter.
func (n *Node) AuditNAVBusy() bool { return n.nav.Busy() }

// AuditPending implements audit.PendingReporter.
func (n *Node) AuditPending() (queued int, inFlight bool) {
	return n.queue.Len(), n.cur != nil
}

// Liveness implements mac.LivenessReporter.
func (n *Node) Liveness() mac.Liveness {
	return mac.Liveness{
		State: n.st.String(),
		Idle:  n.st == stIdle && n.cur == nil && n.queue.Len() == 0,
		Pending: n.timer.Pending() || n.radio.Transmitting() ||
			n.radio.CarrierSensed() || n.dcf.Armed() || n.deferred > 0,
	}
}

// Send implements mac.MAC.
func (n *Node) Send(req *mac.SendRequest) bool {
	if req.Service == mac.Reliable && len(req.Dests) == 0 {
		panic("bmmm: Reliable Send needs at least one destination")
	}
	req.EnqueuedAt = n.eng.Now()
	var pushed bool
	if req.Urgent {
		pushed = n.queue.PushFront(req)
	} else {
		pushed = n.queue.Push(req)
	}
	if !pushed {
		n.stats.QueueDrops++
		return false
	}
	n.stats.Enqueued++
	n.trySend()
	return true
}

func (n *Node) mediumIdle() bool {
	return !n.radio.DataChannelBusy() && !n.nav.Busy()
}

func (n *Node) trySend() {
	if n.st != stIdle || n.dcf.Armed() {
		return
	}
	if n.cur == nil {
		req := n.queue.Pop()
		if req == nil {
			return
		}
		n.seq++
		ctx := &n.ctxBuf
		*ctx = txContext{
			req: req, seq: n.seq,
			remaining: ctx.remaining[:0],
			delivered: ctx.delivered[:0],
			ctsOK:     ctx.ctsOK[:0],
			ackOK:     ctx.ackOK[:0],
		}
		n.cur = ctx
		if req.Service == mac.Reliable {
			ctx.remaining = append(ctx.remaining, req.Dests...)
			n.stats.ReliableToTransmit++
		}
	}
	n.dcf.Arm()
}

// onWin: the DCF granted a transmission opportunity.
func (n *Node) onWin() {
	if n.cur == nil || n.st != stIdle {
		return
	}
	n.aud.Initiation(n.radio.ID())
	if n.cur.req.Service == mac.Unreliable {
		dest := frame.Broadcast
		if len(n.cur.req.Dests) > 0 {
			dest = n.cur.req.Dests[0]
		}
		n.st = stTxUData
		f := n.frames.Data()
		f.Receiver, f.Transmitter, f.Seq = dest, n.addr, n.cur.seq
		f.Payload = append(f.Payload, n.cur.req.Payload...)
		n.startTx(f)
		return
	}
	// New round: solicit every remaining receiver.
	n.cur.ctsOK = n.cur.ctsOK[:0]
	n.cur.ackOK = n.cur.ackOK[:0]
	for range n.cur.remaining {
		n.cur.ctsOK = append(n.cur.ctsOK, false)
		n.cur.ackOK = append(n.cur.ackOK, false)
	}
	n.cur.idx = 0
	n.sendRTS()
}

// startTx wraps Radio.StartTx with DCF bookkeeping.
func (n *Node) startTx(f frame.Frame) sim.Time {
	n.dcf.ChannelBusy()
	return n.radio.StartTx(f)
}

// exchangeRemaining computes the Duration (NAV) value covering the rest of
// the exchange as seen from just after the current frame: control pairs,
// the data frame and the RAK/ACK tail.
func (n *Node) exchangeRemaining(phase state) sim.Time {
	c := n.cfg
	rts := c.TxDuration(frame.RTSLen)
	cts := c.TxDuration(frame.CTSLen)
	rak := c.TxDuration(frame.RAKLen)
	ack := c.TxDuration(frame.ACKLen)
	data := c.TxDuration(frame.Data80211Overhead + len(n.cur.req.Payload))
	var d sim.Time
	switch phase {
	case stTxRTS, stWfCTS:
		pairsLeft := len(n.cur.remaining) - n.cur.idx - 1
		d = phy.SIFS + cts
		d += sim.Time(pairsLeft) * (phy.SIFS + rts + phy.SIFS + cts)
		d += phy.SIFS + data
		d += sim.Time(len(n.cur.remaining)) * (phy.SIFS + rak + phy.SIFS + ack)
	case stTxData:
		d = sim.Time(len(n.cur.remaining)) * (phy.SIFS + rak + phy.SIFS + ack)
	case stTxRAK, stWfACK:
		raksLeft := countTrue(n.cur.ctsOK[n.cur.idx+1:])
		d = phy.SIFS + ack
		d += sim.Time(raksLeft) * (phy.SIFS + rak + phy.SIFS + ack)
	}
	return d
}

func countTrue(b []bool) int {
	c := 0
	for _, v := range b {
		if v {
			c++
		}
	}
	return c
}

func durationMicros(d sim.Time) uint16 {
	us := int64(d / sim.Microsecond)
	if us > 65535 {
		us = 65535
	}
	return uint16(us)
}

func (n *Node) sendRTS() {
	n.st = stTxRTS
	f := n.frames.RTS()
	f.Duration = durationMicros(n.exchangeRemaining(stTxRTS))
	f.Receiver = n.cur.remaining[n.cur.idx]
	f.Transmitter = n.addr
	dur := n.startTx(f)
	n.stats.CtrlTxTime += dur
}

func (n *Node) sendData() {
	n.st = stTxData
	f := n.frames.Data()
	f.Duration = durationMicros(n.exchangeRemaining(stTxData))
	f.Receiver = frame.Broadcast
	f.Transmitter = n.addr
	f.Seq = n.cur.seq
	f.Payload = append(f.Payload, n.cur.req.Payload...)
	dur := n.startTx(f)
	n.stats.DataTxTime += dur
}

func (n *Node) sendRAK() {
	n.st = stTxRAK
	f := n.frames.RAK()
	f.Duration = durationMicros(n.exchangeRemaining(stTxRAK))
	f.Receiver = n.cur.remaining[n.cur.idx]
	f.Transmitter = n.addr
	f.Seq = n.cur.seq
	dur := n.startTx(f)
	n.stats.CtrlTxTime += dur
}

// OnTxDone implements phy.Handler.
func (n *Node) OnTxDone(f frame.Frame) {
	n.dcf.ChannelMaybeIdle()
	switch n.st {
	case stTxRTS:
		n.st = stWfCTS
		n.timer.Start(phy.SIFS + n.cfg.TxDuration(frame.CTSLen) + respSlack)
	case stTxData:
		n.cur.idx = -1
		n.advanceRAK()
	case stTxRAK:
		n.st = stWfACK
		n.timer.Start(phy.SIFS + n.cfg.TxDuration(frame.ACKLen) + respSlack)
	case stTxUData:
		n.stats.UnreliableSent++
		req := n.cur.req
		n.cur = nil
		n.st = stIdle
		n.dcf.Backoff().Reset()
		n.dcf.Backoff().Draw()
		if n.upper != nil {
			n.upper.OnSendComplete(mac.TxResult{Req: req})
		}
		n.trySend()
	case stTxResp:
		n.st = stIdle
		n.trySend()
	default:
		panic(fmt.Sprintf("bmmm: node %v OnTxDone in state %v", n.addr, n.st))
	}
}

// onRespTimeout: the solicited CTS or ACK did not arrive.
func (n *Node) onRespTimeout() {
	switch n.st {
	case stWfCTS:
		n.advanceCTS(false)
	case stWfACK:
		n.advanceACK(false)
	}
}

// advanceCTS records the outcome for receiver idx and moves to the next
// RTS/CTS pair, the DATA frame, or a failed round.
func (n *Node) advanceCTS(ok bool) {
	n.timer.Stop()
	n.cur.ctsOK[n.cur.idx] = ok
	n.cur.idx++
	if n.cur.idx < len(n.cur.remaining) {
		n.afterSIFS(stepRTS)
		return
	}
	if countTrue(n.cur.ctsOK) == 0 {
		n.roundFailed()
		return
	}
	n.afterSIFS(stepData)
}

// advanceRAK advances idx to the next receiver that returned a CTS and
// sends its RAK; when exhausted the round is scored.
func (n *Node) advanceRAK() {
	i := n.cur.idx + 1
	for i < len(n.cur.remaining) && !n.cur.ctsOK[i] {
		i++
	}
	n.cur.idx = i
	if i >= len(n.cur.remaining) {
		n.scoreRound()
		return
	}
	n.afterSIFS(stepRAK)
}

func (n *Node) advanceACK(ok bool) {
	n.timer.Stop()
	n.cur.ackOK[n.cur.idx] = ok
	n.advanceRAK()
}

// Tags for the node's sim.Caller dispatch.
const (
	tagStep int32 = iota // deferred sender-side exchange step (afterSIFS)
	tagResp              // deferred CTS/ACK response (respond)
)

// Call implements sim.Caller: the SIFS-deferred continuations, scheduled
// closure-free through the engine's tagged-event path. The step/response
// argument rides in pendingStep/pendingResp — at most one of each can be
// outstanding (exchange steps are strictly sequential, and back-to-back
// solicitations are separated by at least one frame airtime ≫ SIFS).
func (n *Node) Call(tag int32) {
	switch tag {
	case tagStep:
		n.deferred--
		s := n.pendingStep
		n.pendingStep = stepNone
		if n.cur == nil || n.radio.Transmitting() {
			return
		}
		switch s {
		case stepRTS:
			n.sendRTS()
		case stepData:
			n.sendData()
		case stepRAK:
			n.sendRAK()
		}
	case tagResp:
		n.deferred--
		f := n.pendingResp
		n.pendingResp = nil
		if f == nil {
			return
		}
		if n.st != stIdle || n.radio.Transmitting() {
			frame.Release(f) // busy with our own exchange; solicitation lost
			return
		}
		n.st = stTxResp
		dur := n.startTx(f)
		n.stats.CtrlTxTime += dur
	}
}

// afterSIFS schedules the next exchange step one SIFS later. The node
// stays in stGap so it neither responds to solicitations nor starts a new
// contention meanwhile.
func (n *Node) afterSIFS(s step) {
	n.st = stGap
	n.deferred++
	n.pendingStep = s
	n.eng.AfterCall(phy.SIFS, n, tagStep)
}

// scoreRound splits the remaining receivers by ACK outcome. still reuses
// the node's scratch buffer, swapping roles with cur.remaining.
func (n *Node) scoreRound() {
	still := n.stillBuf[:0]
	for i, a := range n.cur.remaining {
		if n.cur.ackOK[i] {
			n.cur.delivered = append(n.cur.delivered, a)
		} else {
			still = append(still, a)
		}
	}
	if len(still) == 0 {
		n.stillBuf = still
		n.completeReliable(false)
		return
	}
	n.stillBuf = n.cur.remaining
	n.cur.remaining = still
	n.roundFailed()
}

func (n *Node) roundFailed() {
	n.st = stIdle
	n.cur.retries++
	if n.cur.retries > n.limits.RetryLimit {
		n.completeReliable(true)
		return
	}
	n.stats.Retransmissions++
	n.dcf.Backoff().Fail()
	n.dcf.Backoff().Draw()
	n.trySend()
}

func (n *Node) completeReliable(dropped bool) {
	n.st = stIdle
	ctx := n.cur
	n.cur = nil
	res := mac.TxResult{Req: ctx.req, Delivered: ctx.delivered, Retries: ctx.retries}
	if dropped {
		n.stats.Drops++
		res.Dropped = true
		res.Failed = append(n.failedBuf[:0], ctx.remaining...)
		n.failedBuf = res.Failed
	} else {
		n.stats.ReliableDelivered++
	}
	n.dcf.Backoff().Reset()
	n.dcf.Backoff().Draw()
	n.aud.ReliableOutcome(n.radio.ID(), len(ctx.delivered), len(ctx.req.Dests), dropped)
	if n.upper != nil {
		n.upper.OnSendComplete(res)
	}
	n.trySend()
}

// --- Reception ---------------------------------------------------------------

func (n *Node) peer(a frame.Addr) *peerState {
	p := n.peers[a]
	if p == nil {
		p = &peerState{}
		n.peers[a] = p
	}
	return p
}

// OnFrameReceived implements phy.Handler.
func (n *Node) OnFrameReceived(f frame.Frame, ok bool, rxStart sim.Time) {
	if !ok {
		return
	}
	switch g := f.(type) {
	case *frame.RTS:
		if g.Receiver == n.addr {
			n.stats.CtrlRxTime += n.cfg.TxDuration(g.WireSize())
			n.peer(g.Transmitter).solicited = true
			cts := n.frames.CTS()
			cts.Duration = subDuration(g.Duration, phy.SIFS+n.cfg.TxDuration(frame.CTSLen))
			cts.Receiver = g.Transmitter
			cts.Transmitter = n.addr
			n.respond(cts)
			return
		}
		n.nav.Set(sim.Time(g.Duration) * sim.Microsecond)
		n.dcf.ChannelBusy()
	case *frame.CTS:
		if n.st == stWfCTS && g.Receiver == n.addr {
			n.stats.CtrlRxTime += n.cfg.TxDuration(g.WireSize())
			n.advanceCTS(true)
			return
		}
		if g.Receiver != n.addr {
			n.nav.Set(sim.Time(g.Duration) * sim.Microsecond)
			n.dcf.ChannelBusy()
		}
	case *frame.Data:
		n.onData(g, rxStart)
	case *frame.RAK:
		if g.Receiver == n.addr {
			n.stats.CtrlRxTime += n.cfg.TxDuration(g.WireSize())
			p := n.peer(g.Transmitter)
			if p.have && p.haveSeq == g.Seq {
				ack := n.frames.ACK()
				ack.Duration = subDuration(g.Duration, phy.SIFS+n.cfg.TxDuration(frame.ACKLen))
				ack.Receiver = g.Transmitter
				ack.Transmitter = n.addr
				n.respond(ack)
			}
			return
		}
		n.nav.Set(sim.Time(g.Duration) * sim.Microsecond)
		n.dcf.ChannelBusy()
	case *frame.ACK:
		if n.st == stWfACK && g.Receiver == n.addr {
			n.stats.CtrlRxTime += n.cfg.TxDuration(g.WireSize())
			n.advanceACK(true)
			return
		}
		if g.Receiver != n.addr {
			n.nav.Set(sim.Time(g.Duration) * sim.Microsecond)
			n.dcf.ChannelBusy()
		}
	}
}

func subDuration(d uint16, sub sim.Time) uint16 {
	s := int64(sub / sim.Microsecond)
	if int64(d) <= s {
		return 0
	}
	return d - uint16(s)
}

// onData handles a data frame. A reliable multicast data frame always
// carries a Duration reserving its RAK/ACK tail; an unreliable frame has
// Duration zero. Solicited receivers accept reliable data; addressees
// accept unreliable data.
func (n *Node) onData(d *frame.Data, rxStart sim.Time) {
	if d.Duration > 0 { // reliable multicast data
		p := n.peer(d.Transmitter)
		if p.solicited && (d.Receiver == n.addr || d.Receiver.IsBroadcast()) {
			p.have = true
			p.haveSeq = d.Seq
			n.deliver(d, true, rxStart)
			return
		}
		n.nav.Set(sim.Time(d.Duration) * sim.Microsecond)
		n.dcf.ChannelBusy()
		return
	}
	if d.Receiver == n.addr || d.Receiver.IsBroadcast() {
		n.deliver(d, false, rxStart)
	}
}

func (n *Node) deliver(d *frame.Data, reliable bool, rxStart sim.Time) {
	p := n.peer(d.Transmitter)
	if reliable {
		if p.deliverOK && p.delivered == d.Seq {
			return // duplicate retransmission round
		}
		p.deliverOK = true
		p.delivered = d.Seq
	}
	if n.upper != nil {
		n.upper.OnDeliver(d.Payload, mac.RxInfo{
			From:     d.Transmitter,
			Reliable: reliable,
			Seq:      uint32(d.Seq),
			RxStart:  rxStart,
			RxEnd:    n.eng.Now(),
		})
	}
}

// respond transmits an acquired CTS or ACK one SIFS after the soliciting
// frame (via the tagResp tagged event). The node owns f until then; if the
// response cannot be sent the frame is released in Call.
func (n *Node) respond(f frame.Frame) {
	if n.pendingResp != nil {
		// A response is already queued; a second solicitation within one
		// SIFS cannot happen on a collision-free channel. Drop the new one.
		frame.Release(f)
		return
	}
	n.deferred++
	n.pendingResp = f
	n.eng.AfterCall(phy.SIFS, n, tagResp)
}

// OnCarrierChange implements phy.Handler.
func (n *Node) OnCarrierChange(busy bool) {
	if busy {
		n.dcf.ChannelBusy()
	} else {
		n.dcf.ChannelMaybeIdle()
	}
}

// OnToneChange implements phy.Handler; BMMM has no busy-tone hardware.
func (n *Node) OnToneChange(phy.Tone, bool) {}
