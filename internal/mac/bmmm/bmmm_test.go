package bmmm

import (
	"testing"

	"rmac/internal/frame"
	"rmac/internal/geom"
	"rmac/internal/mac"
	"rmac/internal/mobility"
	"rmac/internal/phy"
	"rmac/internal/sim"
)

type upper struct {
	delivered []delivery
	completes []mac.TxResult
}

type delivery struct {
	payload []byte
	info    mac.RxInfo
}

// OnDeliver copies the payload out: it aliases pooled frame storage that
// is recycled after the callback returns.
func (u *upper) OnDeliver(payload []byte, info mac.RxInfo) {
	u.delivered = append(u.delivered, delivery{append([]byte(nil), payload...), info})
}

// OnSendComplete copies the loaned Delivered/Failed slices before keeping
// the result, per the mac.TxResult contract.
func (u *upper) OnSendComplete(res mac.TxResult) {
	res.Delivered = append([]frame.Addr(nil), res.Delivered...)
	res.Failed = append([]frame.Addr(nil), res.Failed...)
	u.completes = append(u.completes, res)
}

type world struct {
	eng    *sim.Engine
	medium *phy.Medium
	nodes  []*Node
	uppers []*upper
}

func newWorld(seed int64, pos []geom.Point) *world {
	eng := sim.NewEngine(seed)
	cfg := phy.DefaultConfig()
	m := phy.NewMedium(eng, cfg)
	w := &world{eng: eng, medium: m}
	for i, p := range pos {
		r := m.AddRadio(i, mobility.Stationary{P: p})
		n := New(r, cfg, eng, mac.DefaultLimits())
		u := &upper{}
		n.SetUpper(u)
		w.nodes = append(w.nodes, n)
		w.uppers = append(w.uppers, u)
	}
	return w
}

func addrs(ids ...int) []frame.Addr {
	out := make([]frame.Addr, len(ids))
	for i, id := range ids {
		out[i] = frame.AddrFromID(id)
	}
	return out
}

func reliableReq(payload string, dests ...int) *mac.SendRequest {
	return &mac.SendRequest{Service: mac.Reliable, Dests: addrs(dests...), Payload: []byte(payload)}
}

func hasAddr(list []frame.Addr, id int) bool {
	a := frame.AddrFromID(id)
	for _, x := range list {
		if x == a {
			return true
		}
	}
	return false
}

func TestReliableMulticastBasic(t *testing.T) {
	w := newWorld(1, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 0, Y: 50}})
	if !w.nodes[0].Send(reliableReq("bmmm-payload", 1, 2)) {
		t.Fatal("Send rejected")
	}
	w.eng.Run(sim.Second)
	for _, id := range []int{1, 2} {
		got := w.uppers[id].delivered
		if len(got) != 1 {
			t.Fatalf("node %d deliveries = %d, want 1", id, len(got))
		}
		if string(got[0].payload) != "bmmm-payload" || !got[0].info.Reliable {
			t.Fatalf("node %d delivery = %+v", id, got[0])
		}
	}
	comp := w.uppers[0].completes
	if len(comp) != 1 || comp[0].Dropped || comp[0].Retries != 0 {
		t.Fatalf("completion = %+v", comp)
	}
	if len(comp[0].Delivered) != 2 {
		t.Fatalf("delivered = %v", comp[0].Delivered)
	}
	st := w.nodes[0].Stats()
	if st.ReliableDelivered != 1 || st.Retransmissions != 0 || st.Drops != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Control accounting: 2 RTS + 2 RAK at the sender.
	wantCtl := 2*phy.DefaultConfig().TxDuration(frame.RTSLen) + 2*phy.DefaultConfig().TxDuration(frame.RAKLen)
	if st.CtrlTxTime != wantCtl {
		t.Fatalf("CtrlTxTime = %v, want %v", st.CtrlTxTime, wantCtl)
	}
	// CTS + ACK received.
	wantRx := phy.DefaultConfig().TxDuration(frame.CTSLen) + phy.DefaultConfig().TxDuration(frame.ACKLen)
	if st.CtrlRxTime != 2*wantRx {
		t.Fatalf("CtrlRxTime = %v, want %v", st.CtrlRxTime, 2*wantRx)
	}
	if st.ABTCheckTime != 0 {
		t.Fatal("BMMM must not log ABT time")
	}
}

// TestOverheadExceedsRMAC pins the paper's core §2 claim: per receiver,
// BMMM spends 632 µs of control airtime per data frame, so its overhead
// ratio for a 500-byte payload and 2 receivers is roughly
// (2·632)/2112 ≈ 0.6, far above RMAC's.
func TestOverheadRatioMatchesAnalysis(t *testing.T) {
	w := newWorld(2, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 0, Y: 50}})
	payload := make([]byte, 500)
	w.nodes[0].Send(&mac.SendRequest{Service: mac.Reliable, Dests: addrs(1, 2), Payload: payload})
	w.eng.Run(sim.Second)
	st := w.nodes[0].Stats()
	cfg := phy.DefaultConfig()
	wantCtl := 2 * 632 * sim.Microsecond // §2: 632n µs
	if got := st.CtrlTxTime + st.CtrlRxTime; got != wantCtl {
		t.Fatalf("control airtime = %v, want %v", got, wantCtl)
	}
	wantData := cfg.TxDuration(frame.Data80211Overhead + 500)
	if st.DataTxTime != wantData {
		t.Fatalf("data airtime = %v, want %v", st.DataTxTime, wantData)
	}
	ratio := st.OverheadRatio()
	if ratio < 0.55 || ratio > 0.65 {
		t.Fatalf("overhead ratio = %v, want ≈0.6", ratio)
	}
}

func TestUnreachableReceiverDrops(t *testing.T) {
	w := newWorld(3, []geom.Point{{X: 0, Y: 0}, {X: 500, Y: 0}})
	w.nodes[0].Send(reliableReq("lost", 1))
	w.eng.Run(30 * sim.Second)
	st := w.nodes[0].Stats()
	if st.Drops != 1 {
		t.Fatalf("drops = %d", st.Drops)
	}
	limits := mac.DefaultLimits()
	if st.Retransmissions != uint64(limits.RetryLimit) {
		t.Fatalf("retransmissions = %d, want %d", st.Retransmissions, limits.RetryLimit)
	}
	comp := w.uppers[0].completes
	if len(comp) != 1 || !comp[0].Dropped || !hasAddr(comp[0].Failed, 1) {
		t.Fatalf("completion = %+v", comp)
	}
	if st.DataTxTime != 0 {
		t.Fatal("data sent with zero CTS responses")
	}
}

func TestPartialDelivery(t *testing.T) {
	w := newWorld(4, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 400, Y: 0}})
	w.nodes[0].Send(reliableReq("partial", 1, 2))
	w.eng.Run(30 * sim.Second)
	comp := w.uppers[0].completes
	if len(comp) != 1 {
		t.Fatalf("completes = %d", len(comp))
	}
	res := comp[0]
	if !res.Dropped || !hasAddr(res.Delivered, 1) || !hasAddr(res.Failed, 2) {
		t.Fatalf("result = %+v", res)
	}
	// Receiver 1 got the payload exactly once despite the retry rounds.
	if len(w.uppers[1].delivered) != 1 {
		t.Fatalf("B deliveries = %d, want 1 (dedup)", len(w.uppers[1].delivered))
	}
}

func TestUnreliableBroadcast(t *testing.T) {
	w := newWorld(5, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 0, Y: 50}, {X: 400, Y: 400}})
	w.nodes[0].Send(&mac.SendRequest{Service: mac.Unreliable, Payload: []byte("beacon")})
	w.eng.Run(sim.Second)
	if len(w.uppers[1].delivered) != 1 || len(w.uppers[2].delivered) != 1 {
		t.Fatal("broadcast not delivered in range")
	}
	if len(w.uppers[3].delivered) != 0 {
		t.Fatal("broadcast delivered out of range")
	}
	if w.uppers[1].delivered[0].info.Reliable {
		t.Fatal("broadcast flagged reliable")
	}
	if w.nodes[0].Stats().UnreliableSent != 1 {
		t.Fatal("UnreliableSent")
	}
}

func TestNAVDefersThirdParty(t *testing.T) {
	// A(0) multicasts to B(1); third party C(2) hears A. C enqueues while
	// A's exchange is running: its transmission must wait, and both
	// packets must come through cleanly.
	w := newWorld(6, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 30, Y: 30}})
	payload := make([]byte, 500)
	w.nodes[0].Send(&mac.SendRequest{Service: mac.Reliable, Dests: addrs(1), Payload: payload})
	w.eng.Schedule(400*sim.Microsecond, func() {
		w.nodes[2].Send(reliableReq("later", 1))
	})
	w.eng.Run(5 * sim.Second)
	if got := len(w.uppers[1].delivered); got != 2 {
		t.Fatalf("B deliveries = %d, want 2", got)
	}
	if w.uppers[0].completes[0].Dropped || w.uppers[2].completes[0].Dropped {
		t.Fatal("a sender dropped")
	}
	// No retransmissions needed: NAV plus carrier sense kept them apart.
	if w.nodes[0].Stats().Retransmissions+w.nodes[2].Stats().Retransmissions != 0 {
		t.Fatalf("unexpected retransmissions: %d + %d",
			w.nodes[0].Stats().Retransmissions, w.nodes[2].Stats().Retransmissions)
	}
}

func TestHiddenTerminalRecovery(t *testing.T) {
	// A(0)-B(70)-C(140): C hidden from A. Both send to B; collisions are
	// resolved by retries.
	w := newWorld(7, []geom.Point{{X: 0, Y: 0}, {X: 70, Y: 0}, {X: 140, Y: 0}})
	w.nodes[0].Send(reliableReq("from-a", 1))
	w.eng.Schedule(50*sim.Microsecond, func() {
		w.nodes[2].Send(reliableReq("from-c", 1))
	})
	w.eng.Run(30 * sim.Second)
	if got := len(w.uppers[1].delivered); got != 2 {
		t.Fatalf("B deliveries = %d, want 2", got)
	}
	if w.uppers[0].completes[0].Dropped || w.uppers[2].completes[0].Dropped {
		t.Fatal("hidden-terminal exchange dropped")
	}
}

func TestSequentialPackets(t *testing.T) {
	w := newWorld(8, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}})
	for i := 0; i < 5; i++ {
		w.nodes[0].Send(reliableReq("pkt", 1))
	}
	w.eng.Run(5 * sim.Second)
	if got := len(w.uppers[1].delivered); got != 5 {
		t.Fatalf("deliveries = %d, want 5", got)
	}
	if got := len(w.uppers[0].completes); got != 5 {
		t.Fatalf("completes = %d, want 5", got)
	}
}

func TestManyReceivers(t *testing.T) {
	pos := []geom.Point{{X: 0, Y: 0}}
	ids := []int{}
	for i := 0; i < 10; i++ {
		pos = append(pos, geom.Point{X: 5 + float64(i), Y: 10})
		ids = append(ids, i+1)
	}
	w := newWorld(9, pos)
	w.nodes[0].Send(reliableReq("fanout", ids...))
	w.eng.Run(5 * sim.Second)
	comp := w.uppers[0].completes
	if len(comp) != 1 || comp[0].Dropped {
		t.Fatalf("completion = %+v", comp)
	}
	if len(comp[0].Delivered) != 10 {
		t.Fatalf("delivered = %d", len(comp[0].Delivered))
	}
	for i := 1; i <= 10; i++ {
		if len(w.uppers[i].delivered) != 1 {
			t.Fatalf("receiver %d deliveries = %d", i, len(w.uppers[i].delivered))
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int, uint64) {
		w := newWorld(77, []geom.Point{{X: 0, Y: 0}, {X: 60, Y: 0}, {X: 120, Y: 0}})
		for i := 0; i < 8; i++ {
			w.nodes[0].Send(reliableReq("a", 1))
			w.nodes[2].Send(reliableReq("c", 1))
		}
		w.eng.Run(30 * sim.Second)
		return len(w.uppers[1].delivered), w.nodes[0].Stats().Retransmissions + w.nodes[2].Stats().Retransmissions
	}
	d1, r1 := run()
	d2, r2 := run()
	if d1 != d2 || r1 != r2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", d1, r1, d2, r2)
	}
}
