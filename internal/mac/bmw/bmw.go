// Package bmw implements the Broadcast Medium Window protocol of Tang and
// Gerla (MILCOM 2001) as described in §2 of the RMAC paper: reliable
// broadcast realised as a round-robin of RTS/CTS/DATA/ACK unicasts to
// each intended receiver, where every other receiver tries to overhear
// the DATA frame. A receiver that already overheard the current frame
// replies a CTS whose expected sequence number is past the sender's
// current frame, letting the sender skip the redundant DATA transmission.
//
// Each receiver visit involves its own contention phase — the cost that
// makes BMMM (and RMAC) cheaper per §2 — and a receiver that keeps
// missing frames stalls the round-robin, reproducing BMW's
// arbitrarily-long delays.
package bmw

import (
	"fmt"

	"rmac/internal/audit"
	"rmac/internal/frame"
	"rmac/internal/mac"
	"rmac/internal/mac/csma"
	"rmac/internal/phy"
	"rmac/internal/sim"
)

const respSlack = 2*phy.Tau + 2*sim.Microsecond

type state int

const (
	stIdle state = iota
	stTxRTS
	stWfCTS
	stTxData
	stWfACK
	stTxUData
	stTxResp
	stGap
)

var stateNames = [...]string{"IDLE", "TX_RTS", "WF_CTS", "TX_DATA", "WF_ACK", "TX_UDATA", "TX_RESP", "GAP"}

func (s state) String() string { return stateNames[s] }

type txContext struct {
	req       *mac.SendRequest
	remaining []frame.Addr
	delivered []frame.Addr
	idx       int // cursor into remaining: [idx:] is still outstanding
	retries   int
	seq       uint16
}

type peerState struct {
	lastSeq   uint16 // highest data seq seen from this sender
	haveAny   bool
	delivered uint16 // dedup for upper-layer delivery
	deliverOK bool
}

// Node is one BMW instance bound to a radio.
type Node struct {
	eng    *sim.Engine
	radio  *phy.Radio
	cfg    phy.Config
	addr   frame.Addr
	limits mac.Limits
	upper  mac.UpperLayer

	st     state
	queue  *mac.Queue
	dcf    *csma.DCF
	nav    *csma.NAV
	stats  mac.Stats
	frames *frame.Pool
	aud    *audit.Auditor

	cur   *txContext
	timer *sim.Timer
	peers map[frame.Addr]*peerState
	seq   uint16

	// ctxBuf backs cur (one packet in flight at a time); pendingResp is
	// an acquired CTS/ACK awaiting its SIFS-deferred transmission.
	ctxBuf      txContext
	pendingResp frame.Frame

	// deferred counts scheduled exchange steps (SIFS gaps, pending
	// responses) not yet fired, so the liveness audit sees them.
	deferred int
}

var _ mac.MAC = (*Node)(nil)
var _ phy.Handler = (*Node)(nil)

// New creates a BMW node on the given radio and installs itself as the
// radio's PHY handler.
func New(radio *phy.Radio, cfg phy.Config, eng *sim.Engine, limits mac.Limits) *Node {
	n := &Node{
		eng:    eng,
		radio:  radio,
		cfg:    cfg,
		addr:   frame.AddrFromID(radio.ID()),
		limits: limits,
		queue:  mac.NewQueue(limits.QueueCap),
		peers:  make(map[frame.Addr]*peerState),
		frames: radio.Frames(),
	}
	n.nav = csma.NewNAV(eng, func() { n.dcf.ChannelMaybeIdle() })
	n.dcf = csma.NewDCF(eng, eng.Rand(), n.mediumIdle, n.onWin)
	n.timer = sim.NewTimer(eng, n.onRespTimeout)
	radio.SetHandler(n)
	return n
}

// Addr implements mac.MAC.
func (n *Node) Addr() frame.Addr { return n.addr }

// Stats implements mac.MAC.
func (n *Node) Stats() *mac.Stats { return &n.stats }

// SetUpper implements mac.MAC.
func (n *Node) SetUpper(u mac.UpperLayer) { n.upper = u }

// SetAuditor attaches the protocol-invariant auditor; the node declares
// DCF-won initiations and reliable outcomes to it.
func (n *Node) SetAuditor(a *audit.Auditor) { n.aud = a }

// AuditContention implements audit.ContentionReporter.
func (n *Node) AuditContention() (wants, counting, gated, idle bool) {
	armed, counting, difsPending := n.dcf.AuditState()
	return armed, counting, difsPending, n.mediumIdle()
}

// AuditNAVBusy implements audit.NAVReporter.
func (n *Node) AuditNAVBusy() bool { return n.nav.Busy() }

// AuditPending implements audit.PendingReporter.
func (n *Node) AuditPending() (queued int, inFlight bool) {
	return n.queue.Len(), n.cur != nil
}

// Liveness implements mac.LivenessReporter.
func (n *Node) Liveness() mac.Liveness {
	return mac.Liveness{
		State: n.st.String(),
		Idle:  n.st == stIdle && n.cur == nil && n.queue.Len() == 0,
		Pending: n.timer.Pending() || n.radio.Transmitting() ||
			n.radio.CarrierSensed() || n.dcf.Armed() || n.deferred > 0,
	}
}

// Send implements mac.MAC.
func (n *Node) Send(req *mac.SendRequest) bool {
	if req.Service == mac.Reliable && len(req.Dests) == 0 {
		panic("bmw: Reliable Send needs at least one destination")
	}
	req.EnqueuedAt = n.eng.Now()
	var pushed bool
	if req.Urgent {
		pushed = n.queue.PushFront(req)
	} else {
		pushed = n.queue.Push(req)
	}
	if !pushed {
		n.stats.QueueDrops++
		return false
	}
	n.stats.Enqueued++
	n.trySend()
	return true
}

func (n *Node) mediumIdle() bool {
	return !n.radio.DataChannelBusy() && !n.nav.Busy()
}

func (n *Node) trySend() {
	if n.st != stIdle || n.dcf.Armed() {
		return
	}
	if n.cur == nil {
		req := n.queue.Pop()
		if req == nil {
			return
		}
		n.seq++
		ctx := &n.ctxBuf
		*ctx = txContext{
			req: req, seq: n.seq,
			remaining: ctx.remaining[:0],
			delivered: ctx.delivered[:0],
		}
		n.cur = ctx
		if req.Service == mac.Reliable {
			ctx.remaining = append(ctx.remaining, req.Dests...)
			n.stats.ReliableToTransmit++
		}
	}
	n.dcf.Arm()
}

func (n *Node) startTx(f frame.Frame) sim.Time {
	n.dcf.ChannelBusy()
	return n.radio.StartTx(f)
}

// onWin: one contention phase won — visit the head receiver.
func (n *Node) onWin() {
	if n.cur == nil || n.st != stIdle {
		return
	}
	n.aud.Initiation(n.radio.ID())
	if n.cur.req.Service == mac.Unreliable {
		dest := frame.Broadcast
		if len(n.cur.req.Dests) > 0 {
			dest = n.cur.req.Dests[0]
		}
		n.st = stTxUData
		f := n.frames.Data()
		f.Receiver, f.Transmitter, f.Seq = dest, n.addr, n.cur.seq
		f.Payload = append(f.Payload, n.cur.req.Payload...)
		n.startTx(f)
		return
	}
	n.st = stTxRTS
	// NAV covers the worst case: CTS + DATA + ACK.
	tail := phy.SIFS + n.cfg.TxDuration(frame.CTSLen) +
		phy.SIFS + n.cfg.TxDuration(frame.Data80211Overhead+len(n.cur.req.Payload)) +
		phy.SIFS + n.cfg.TxDuration(frame.ACKLen)
	f := n.frames.RTS()
	f.Duration = durationMicros(tail)
	f.Receiver = n.cur.remaining[n.cur.idx]
	f.Transmitter = n.addr
	dur := n.startTx(f)
	n.stats.CtrlTxTime += dur
}

func durationMicros(d sim.Time) uint16 {
	us := int64(d / sim.Microsecond)
	if us > 65535 {
		us = 65535
	}
	return uint16(us)
}

// OnTxDone implements phy.Handler.
func (n *Node) OnTxDone(f frame.Frame) {
	n.dcf.ChannelMaybeIdle()
	switch n.st {
	case stTxRTS:
		n.st = stWfCTS
		n.timer.Start(phy.SIFS + n.cfg.TxDuration(frame.CTSLen) + respSlack)
	case stTxData:
		n.st = stWfACK
		n.timer.Start(phy.SIFS + n.cfg.TxDuration(frame.ACKLen) + respSlack)
	case stTxUData:
		n.stats.UnreliableSent++
		req := n.cur.req
		n.cur = nil
		n.st = stIdle
		n.dcf.Backoff().Reset()
		n.dcf.Backoff().Draw()
		if n.upper != nil {
			n.upper.OnSendComplete(mac.TxResult{Req: req})
		}
		n.trySend()
	case stTxResp:
		n.st = stIdle
		n.trySend()
	default:
		panic(fmt.Sprintf("bmw: node %v OnTxDone in state %v", n.addr, n.st))
	}
}

func (n *Node) onRespTimeout() {
	switch n.st {
	case stWfCTS, stWfACK:
		n.visitFailed()
	}
}

// visitFailed: the current receiver did not respond; back off and retry
// it (round-robin stalls on the failing receiver, as BMW does).
func (n *Node) visitFailed() {
	n.st = stIdle
	n.cur.retries++
	if n.cur.retries > n.limits.RetryLimit {
		n.completeReliable(true)
		return
	}
	n.stats.Retransmissions++
	n.dcf.Backoff().Fail()
	n.dcf.Backoff().Draw()
	n.trySend()
}

// visitDelivered: head receiver confirmed (by ACK or by an
// already-past-this-seq CTS); move to the next receiver with a fresh
// contention phase.
func (n *Node) visitDelivered() {
	n.cur.delivered = append(n.cur.delivered, n.cur.remaining[n.cur.idx])
	n.cur.idx++
	n.st = stIdle
	if n.cur.idx >= len(n.cur.remaining) {
		n.completeReliable(false)
		return
	}
	n.dcf.Backoff().Reset()
	n.dcf.Backoff().Draw()
	n.trySend()
}

func (n *Node) completeReliable(dropped bool) {
	n.st = stIdle
	ctx := n.cur
	n.cur = nil
	res := mac.TxResult{Req: ctx.req, Delivered: ctx.delivered, Retries: ctx.retries}
	if dropped {
		n.stats.Drops++
		res.Dropped = true
		res.Failed = ctx.remaining[ctx.idx:] // loaned; see mac.TxResult
	} else {
		n.stats.ReliableDelivered++
	}
	n.dcf.Backoff().Reset()
	n.dcf.Backoff().Draw()
	n.aud.ReliableOutcome(n.radio.ID(), len(ctx.delivered), len(ctx.req.Dests), dropped)
	if n.upper != nil {
		n.upper.OnSendComplete(res)
	}
	n.trySend()
}

// --- Reception ---------------------------------------------------------------

func (n *Node) peer(a frame.Addr) *peerState {
	p := n.peers[a]
	if p == nil {
		p = &peerState{}
		n.peers[a] = p
	}
	return p
}

// OnFrameReceived implements phy.Handler.
func (n *Node) OnFrameReceived(f frame.Frame, ok bool, rxStart sim.Time) {
	if !ok {
		return
	}
	switch g := f.(type) {
	case *frame.RTS:
		if g.Receiver == n.addr {
			n.stats.CtrlRxTime += n.cfg.TxDuration(g.WireSize())
			p := n.peer(g.Transmitter)
			expect := uint16(0)
			if p.haveAny {
				expect = p.lastSeq + 1
			}
			cts := n.frames.CTS()
			cts.Duration = subDuration(g.Duration, phy.SIFS+n.cfg.TxDuration(frame.CTSLen))
			cts.Receiver = g.Transmitter
			cts.Transmitter = n.addr
			cts.Expect = expect
			n.respond(cts)
			return
		}
		n.nav.Set(sim.Time(g.Duration) * sim.Microsecond)
		n.dcf.ChannelBusy()
	case *frame.CTS:
		if n.st == stWfCTS && g.Receiver == n.addr {
			n.stats.CtrlRxTime += n.cfg.TxDuration(g.WireSize())
			n.timer.Stop()
			if g.Expect > n.cur.seq {
				// Receiver already overheard this frame: skip DATA.
				n.visitDelivered()
				return
			}
			n.afterSIFS()
			return
		}
		if g.Receiver != n.addr {
			n.nav.Set(sim.Time(g.Duration) * sim.Microsecond)
			n.dcf.ChannelBusy()
		}
	case *frame.Data:
		n.onData(g, rxStart)
	case *frame.ACK:
		if n.st == stWfACK && g.Receiver == n.addr {
			n.stats.CtrlRxTime += n.cfg.TxDuration(g.WireSize())
			n.timer.Stop()
			n.visitDelivered()
			return
		}
		if g.Receiver != n.addr {
			n.nav.Set(sim.Time(g.Duration) * sim.Microsecond)
			n.dcf.ChannelBusy()
		}
	}
}

func (n *Node) sendData() {
	n.st = stTxData
	tail := phy.SIFS + n.cfg.TxDuration(frame.ACKLen)
	f := n.frames.Data()
	f.Duration = durationMicros(tail)
	f.Receiver = n.cur.remaining[n.cur.idx]
	f.Transmitter = n.addr
	f.Seq = n.cur.seq
	f.Payload = append(f.Payload, n.cur.req.Payload...)
	dur := n.startTx(f)
	n.stats.DataTxTime += dur
}

// Tags for the node's sim.Caller dispatch.
const (
	tagData int32 = iota // SIFS-deferred data transmission (after CTS)
	tagResp              // SIFS-deferred CTS/ACK response
)

// Call implements sim.Caller: the SIFS-deferred continuations, scheduled
// closure-free through the engine's tagged-event path.
func (n *Node) Call(tag int32) {
	switch tag {
	case tagData:
		n.deferred--
		if n.cur == nil || n.radio.Transmitting() {
			return
		}
		n.sendData()
	case tagResp:
		n.deferred--
		f := n.pendingResp
		n.pendingResp = nil
		if f == nil {
			return
		}
		if n.st != stIdle || n.radio.Transmitting() {
			frame.Release(f) // busy with our own exchange; solicitation lost
			return
		}
		n.st = stTxResp
		dur := n.startTx(f)
		n.stats.CtrlTxTime += dur
	}
}

func (n *Node) afterSIFS() {
	n.st = stGap
	n.deferred++
	n.eng.AfterCall(phy.SIFS, n, tagData)
}

// onData: reliable (Duration > 0) data frames are cached and delivered by
// the addressee and by overhearers (BMW's gain); unreliable frames go to
// their addressees.
func (n *Node) onData(d *frame.Data, rxStart sim.Time) {
	if d.Duration > 0 {
		p := n.peer(d.Transmitter)
		if !p.haveAny || seqNewer(d.Seq, p.lastSeq) {
			p.haveAny = true
			p.lastSeq = d.Seq
		}
		n.deliver(d, true, rxStart)
		if d.Receiver == n.addr {
			ack := n.frames.ACK()
			ack.Receiver, ack.Transmitter = d.Transmitter, n.addr
			n.respond(ack)
			return
		}
		n.nav.Set(sim.Time(d.Duration) * sim.Microsecond)
		n.dcf.ChannelBusy()
		return
	}
	if d.Receiver == n.addr || d.Receiver.IsBroadcast() {
		n.deliver(d, false, rxStart)
	}
}

// seqNewer compares 16-bit sequence numbers with wraparound.
func seqNewer(a, b uint16) bool { return int16(a-b) > 0 }

func (n *Node) deliver(d *frame.Data, reliable bool, rxStart sim.Time) {
	p := n.peer(d.Transmitter)
	if reliable {
		if p.deliverOK && p.delivered == d.Seq {
			return
		}
		p.deliverOK = true
		p.delivered = d.Seq
	}
	if n.upper != nil {
		n.upper.OnDeliver(d.Payload, mac.RxInfo{
			From:     d.Transmitter,
			Reliable: reliable,
			Seq:      uint32(d.Seq),
			RxStart:  rxStart,
			RxEnd:    n.eng.Now(),
		})
	}
}

func subDuration(d uint16, sub sim.Time) uint16 {
	s := int64(sub / sim.Microsecond)
	if int64(d) <= s {
		return 0
	}
	return d - uint16(s)
}

// respond transmits an acquired CTS or ACK one SIFS after the soliciting
// frame (via the tagResp tagged event); the frame is released in Call if
// the response cannot be sent.
func (n *Node) respond(f frame.Frame) {
	if n.pendingResp != nil {
		// A second solicitation within one SIFS cannot happen on a
		// collision-free channel; drop the new one.
		frame.Release(f)
		return
	}
	n.deferred++
	n.pendingResp = f
	n.eng.AfterCall(phy.SIFS, n, tagResp)
}

// OnCarrierChange implements phy.Handler.
func (n *Node) OnCarrierChange(busy bool) {
	if busy {
		n.dcf.ChannelBusy()
	} else {
		n.dcf.ChannelMaybeIdle()
	}
}

// OnToneChange implements phy.Handler; BMW has no busy-tone hardware.
func (n *Node) OnToneChange(phy.Tone, bool) {}
