package bmw

import (
	"testing"

	"rmac/internal/audit"
	"rmac/internal/frame"
	"rmac/internal/geom"
	"rmac/internal/phy"
	"rmac/internal/sim"
)

// dropNth corrupts the nth (0-based) otherwise-decodable frame of the
// given wire size transmitted by node from — a deterministic single-frame
// loss, draws no randomness, allocates nothing.
type dropNth struct {
	from    int
	size    int
	nth     int
	seen    int
	dropped int
}

func (d *dropNth) FrameError(rx, tx *phy.Radio, wireBytes int) bool {
	if tx.ID() != d.from || wireBytes != d.size {
		return false
	}
	d.seen++
	if d.seen-1 == d.nth {
		d.dropped++
		return true
	}
	return false
}

// TestLostACKSkipsDataOnRetry: the receiver's ACK (its second 14-byte
// frame, after the CTS) is lost. BMW's retry RTS must be answered with a
// CTS whose Expect sequence is already past the pending packet, letting
// the sender mark it delivered WITHOUT retransmitting the data frame —
// one delivery, one data airtime, success, zero violations.
func TestLostACKSkipsDataOnRetry(t *testing.T) {
	w := newWorld(23, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}})
	aud := audit.New(w.eng, w.medium, audit.Config{})
	for i, n := range w.nodes {
		aud.RegisterMAC(i, n)
		n.SetAuditor(aud)
		n.SetUpper(aud.WrapUpper(i, w.uppers[i]))
	}
	imp := &dropNth{from: 1, size: frame.ACKLen, nth: 1}
	w.medium.SetImpairment(imp)

	payload := "lost-ack"
	if !w.nodes[0].Send(reliableReq(payload, 1)) {
		t.Fatal("Send rejected")
	}
	w.eng.Run(5 * sim.Second)

	if imp.dropped != 1 {
		t.Fatalf("impairment dropped %d frames, want 1", imp.dropped)
	}
	if got := len(w.uppers[1].delivered); got != 1 {
		t.Fatalf("receiver deliveries = %d, want exactly 1", got)
	}
	comp := w.uppers[0].completes
	if len(comp) != 1 || comp[0].Dropped {
		t.Fatalf("sender completion = %+v, want one success", comp)
	}
	st := w.nodes[0].Stats()
	if st.Retransmissions == 0 {
		t.Fatal("sender never retried despite the lost ACK")
	}
	// The CTS Expect skip-path: the data frame went on the air exactly once.
	cfg := phy.DefaultConfig()
	if want := cfg.TxDuration(frame.Data80211Overhead + len(payload)); st.DataTxTime != want {
		t.Fatalf("DataTxTime = %v, want %v (exactly one data transmission)", st.DataTxTime, want)
	}
	if st.ReliableDelivered != 1 {
		t.Fatalf("ReliableDelivered = %d, want 1", st.ReliableDelivered)
	}
	if aud.Count != 0 {
		for _, v := range aud.Violations() {
			t.Errorf("violation: %v", v)
		}
		t.Fatalf("auditor recorded %d violations, want 0", aud.Count)
	}
}
