package bmw

import (
	"testing"

	"rmac/internal/fault"
	"rmac/internal/frame"
	"rmac/internal/geom"
	"rmac/internal/mac"
	"rmac/internal/sim"
)

// TestRetryExhaustionUnderBurstLoss corrupts every frame (1-tick good
// sojourns, BER 1 in both states) so each round-robin unicast round fails:
// the sender must walk through RetryLimit retransmission cycles and then
// drop, with the exhaustion visible in the TxResult and the counters.
func TestRetryExhaustionUnderBurstLoss(t *testing.T) {
	w := newWorld(7, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}})
	inj := fault.New(w.eng, w.medium, fault.Config{Burst: fault.BurstConfig{
		Enabled: true, MeanGood: 1, MeanBad: sim.Second, BERGood: 1, BERBad: 1,
	}})

	if !w.nodes[0].Send(reliableReq("doomed", 1)) {
		t.Fatal("Send rejected")
	}
	w.eng.Run(60 * sim.Second)

	limit := mac.DefaultLimits().RetryLimit
	u := w.uppers[0]
	if len(u.completes) != 1 {
		t.Fatalf("sender reported %d completions, want 1", len(u.completes))
	}
	res := u.completes[0]
	if !res.Dropped {
		t.Error("packet was not dropped despite a dead channel")
	}
	if res.Retries != limit+1 {
		t.Errorf("Retries = %d, want %d (limit exhausted)", res.Retries, limit+1)
	}
	if len(res.Failed) != 1 || res.Failed[0] != frame.AddrFromID(1) {
		t.Errorf("Failed = %v, want exactly receiver 1", res.Failed)
	}
	s := w.nodes[0].Stats()
	if s.Drops != 1 {
		t.Errorf("Drops = %d, want 1", s.Drops)
	}
	if s.Retransmissions != uint64(limit) {
		t.Errorf("Retransmissions = %d, want %d", s.Retransmissions, limit)
	}
	if len(w.uppers[1].delivered) != 0 {
		t.Errorf("receiver delivered %d packets through a dead channel", len(w.uppers[1].delivered))
	}
	if inj.Stats.BurstErrors == 0 {
		t.Error("impairment layer corrupted no frames")
	}
}
