package bmw

import (
	"testing"

	"rmac/internal/frame"
	"rmac/internal/geom"
	"rmac/internal/mac"
	"rmac/internal/mobility"
	"rmac/internal/phy"
	"rmac/internal/sim"
)

type upper struct {
	delivered []delivery
	completes []mac.TxResult
}

type delivery struct {
	payload []byte
	info    mac.RxInfo
}

// OnDeliver copies the payload out: it aliases pooled frame storage that
// is recycled after the callback returns.
func (u *upper) OnDeliver(payload []byte, info mac.RxInfo) {
	u.delivered = append(u.delivered, delivery{append([]byte(nil), payload...), info})
}

// OnSendComplete copies the loaned Delivered/Failed slices before keeping
// the result, per the mac.TxResult contract.
func (u *upper) OnSendComplete(res mac.TxResult) {
	res.Delivered = append([]frame.Addr(nil), res.Delivered...)
	res.Failed = append([]frame.Addr(nil), res.Failed...)
	u.completes = append(u.completes, res)
}

type world struct {
	eng    *sim.Engine
	medium *phy.Medium
	nodes  []*Node
	uppers []*upper
}

func newWorld(seed int64, pos []geom.Point) *world {
	eng := sim.NewEngine(seed)
	cfg := phy.DefaultConfig()
	m := phy.NewMedium(eng, cfg)
	w := &world{eng: eng, medium: m}
	for i, p := range pos {
		r := m.AddRadio(i, mobility.Stationary{P: p})
		n := New(r, cfg, eng, mac.DefaultLimits())
		u := &upper{}
		n.SetUpper(u)
		w.nodes = append(w.nodes, n)
		w.uppers = append(w.uppers, u)
	}
	return w
}

func addrs(ids ...int) []frame.Addr {
	out := make([]frame.Addr, len(ids))
	for i, id := range ids {
		out[i] = frame.AddrFromID(id)
	}
	return out
}

func reliableReq(payload string, dests ...int) *mac.SendRequest {
	return &mac.SendRequest{Service: mac.Reliable, Dests: addrs(dests...), Payload: []byte(payload)}
}

func TestReliableBroadcastRoundRobin(t *testing.T) {
	w := newWorld(1, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 0, Y: 50}, {X: 35, Y: 35}})
	w.nodes[0].Send(reliableReq("bmw-payload", 1, 2, 3))
	w.eng.Run(sim.Second)
	for _, id := range []int{1, 2, 3} {
		if len(w.uppers[id].delivered) != 1 {
			t.Fatalf("node %d deliveries = %d, want 1", id, len(w.uppers[id].delivered))
		}
		if string(w.uppers[id].delivered[0].payload) != "bmw-payload" {
			t.Fatalf("node %d payload wrong", id)
		}
	}
	comp := w.uppers[0].completes
	if len(comp) != 1 || comp[0].Dropped || len(comp[0].Delivered) != 3 {
		t.Fatalf("completion = %+v", comp)
	}
}

// TestOverhearingSkipsData verifies BMW's core optimisation: receivers
// that overheard the DATA during an earlier unicast answer with a CTS
// expecting the *next* sequence number, and the sender skips their DATA
// transmission. With 3 receivers all in range of each other, exactly one
// DATA transmission should occur.
func TestOverhearingSkipsData(t *testing.T) {
	w := newWorld(2, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 0, Y: 50}, {X: 35, Y: 35}})
	payload := make([]byte, 500)
	w.nodes[0].Send(&mac.SendRequest{Service: mac.Reliable, Dests: addrs(1, 2, 3), Payload: payload})
	w.eng.Run(sim.Second)
	st := w.nodes[0].Stats()
	cfg := phy.DefaultConfig()
	oneData := cfg.TxDuration(frame.Data80211Overhead + 500)
	if st.DataTxTime != oneData {
		t.Fatalf("data airtime = %v, want exactly one frame (%v)", st.DataTxTime, oneData)
	}
	// Still 3 RTS (one contention phase per receiver).
	if got := st.CtrlTxTime; got < 3*cfg.TxDuration(frame.RTSLen) {
		t.Fatalf("control airtime = %v, want >= 3 RTS", got)
	}
	if w.uppers[0].completes[0].Dropped {
		t.Fatal("dropped")
	}
}

func TestUnreachableReceiverDropsPacket(t *testing.T) {
	w := newWorld(3, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 500, Y: 0}})
	w.nodes[0].Send(reliableReq("x", 1, 2))
	w.eng.Run(30 * sim.Second)
	comp := w.uppers[0].completes
	if len(comp) != 1 || !comp[0].Dropped {
		t.Fatalf("completion = %+v", comp)
	}
	// Receiver 1 was delivered before the stall on receiver 2.
	if len(comp[0].Delivered) != 1 || comp[0].Delivered[0] != frame.AddrFromID(1) {
		t.Fatalf("delivered = %v", comp[0].Delivered)
	}
	if len(comp[0].Failed) != 1 || comp[0].Failed[0] != frame.AddrFromID(2) {
		t.Fatalf("failed = %v", comp[0].Failed)
	}
}

func TestUnreliableBroadcast(t *testing.T) {
	w := newWorld(4, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 400, Y: 400}})
	w.nodes[0].Send(&mac.SendRequest{Service: mac.Unreliable, Payload: []byte("beacon")})
	w.eng.Run(sim.Second)
	if len(w.uppers[1].delivered) != 1 || w.uppers[1].delivered[0].info.Reliable {
		t.Fatalf("broadcast delivery = %+v", w.uppers[1].delivered)
	}
	if len(w.uppers[2].delivered) != 0 {
		t.Fatal("delivered out of range")
	}
}

func TestSequentialPackets(t *testing.T) {
	w := newWorld(5, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 0, Y: 50}})
	for i := 0; i < 4; i++ {
		w.nodes[0].Send(reliableReq("pkt", 1, 2))
	}
	w.eng.Run(10 * sim.Second)
	if got := len(w.uppers[0].completes); got != 4 {
		t.Fatalf("completes = %d, want 4", got)
	}
	for _, id := range []int{1, 2} {
		if got := len(w.uppers[id].delivered); got != 4 {
			t.Fatalf("node %d deliveries = %d, want 4 (dedup per packet)", id, got)
		}
	}
}

func TestHiddenTerminalRecovery(t *testing.T) {
	w := newWorld(6, []geom.Point{{X: 0, Y: 0}, {X: 70, Y: 0}, {X: 140, Y: 0}})
	w.nodes[0].Send(reliableReq("a", 1))
	w.eng.Schedule(30*sim.Microsecond, func() { w.nodes[2].Send(reliableReq("c", 1)) })
	w.eng.Run(30 * sim.Second)
	if got := len(w.uppers[1].delivered); got != 2 {
		t.Fatalf("B deliveries = %d, want 2", got)
	}
}

func TestSeqNewerWraparound(t *testing.T) {
	if !seqNewer(1, 0) || seqNewer(0, 1) {
		t.Fatal("basic ordering")
	}
	if !seqNewer(2, 65535) {
		t.Fatal("wraparound ordering")
	}
	if seqNewer(5, 5) {
		t.Fatal("equal is not newer")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int, uint64) {
		w := newWorld(9, []geom.Point{{X: 0, Y: 0}, {X: 60, Y: 0}, {X: 120, Y: 0}})
		for i := 0; i < 5; i++ {
			w.nodes[0].Send(reliableReq("a", 1))
			w.nodes[2].Send(reliableReq("c", 1))
		}
		w.eng.Run(30 * sim.Second)
		return len(w.uppers[1].delivered), w.nodes[0].Stats().Retransmissions
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatal("nondeterministic")
	}
}
