package rmac

import (
	"testing"

	"rmac/internal/audit"
	"rmac/internal/geom"
	"rmac/internal/mac"
	"rmac/internal/phy"
	"rmac/internal/sim"
)

// crashAfterDeliver crashes the receiver's radio 3 µs after its first
// delivery — inside its own ABT pulse, so the tone drops at the sender
// before the λ-overlap detection threshold is reached. The sender sees a
// lost acknowledgment for a packet that WAS delivered: the canonical
// lost-ACK race.
type crashAfterDeliver struct {
	*upper
	eng   *sim.Engine
	radio *phy.Radio
	armed bool
}

func (c *crashAfterDeliver) OnDeliver(p []byte, info mac.RxInfo) {
	c.upper.OnDeliver(p, info)
	if !c.armed {
		c.armed = true
		now := c.eng.Now()
		c.eng.Schedule(now+3*sim.Microsecond, func() { c.radio.SetDown(true) })
		c.eng.Schedule(now+100*sim.Microsecond, func() { c.radio.SetDown(false) })
	}
}

// TestLostABTRedeliversOnce: the receiver delivers, but its ABT never
// reaches the sender (the radio crashes mid-pulse). The sender must
// retransmit; the receiver must suppress the duplicate delivery on the
// repeated (src, seq) and acknowledge again; the exchange must end in
// success with exactly one delivery and zero invariant violations.
func TestLostABTRedeliversOnce(t *testing.T) {
	w := newWorld(21, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}})
	aud := audit.New(w.eng, w.medium, audit.Config{})
	cu := &crashAfterDeliver{upper: w.uppers[1], eng: w.eng, radio: w.medium.Radios()[1]}
	for i, n := range w.nodes {
		aud.RegisterMAC(i, n)
		n.SetAuditor(aud)
	}
	w.nodes[0].SetUpper(aud.WrapUpper(0, w.uppers[0]))
	w.nodes[1].SetUpper(aud.WrapUpper(1, cu))

	if !w.nodes[0].Send(reliableReq("dup-probe", 1)) {
		t.Fatal("Send rejected")
	}
	w.eng.Run(5 * sim.Second)

	if got := len(w.uppers[1].delivered); got != 1 {
		t.Fatalf("receiver deliveries = %d, want exactly 1 (duplicate must be suppressed)", got)
	}
	comp := w.uppers[0].completes
	if len(comp) != 1 || comp[0].Dropped {
		t.Fatalf("sender completion = %+v, want one success", comp)
	}
	st := w.nodes[0].Stats()
	if st.Retransmissions == 0 {
		t.Fatal("sender never retransmitted despite the lost ABT")
	}
	if st.ReliableDelivered != 1 {
		t.Fatalf("ReliableDelivered = %d, want 1", st.ReliableDelivered)
	}
	if w.medium.Stats.Crashes != 1 {
		t.Fatalf("Crashes = %d, want 1", w.medium.Stats.Crashes)
	}
	if aud.Count != 0 {
		for _, v := range aud.Violations() {
			t.Errorf("violation: %v", v)
		}
		t.Fatalf("auditor recorded %d violations, want 0", aud.Count)
	}
}
