package rmac

import (
	"testing"

	"rmac/internal/frame"
	"rmac/internal/geom"
	"rmac/internal/mac"
	"rmac/internal/mobility"
	"rmac/internal/phy"
	"rmac/internal/sim"
)

// upper records upper-layer indications for one node.
type upper struct {
	delivered []delivery
	completes []mac.TxResult
}

type delivery struct {
	payload []byte
	info    mac.RxInfo
}

// OnDeliver copies the payload out: it aliases pooled frame storage that
// is recycled after the callback returns.
func (u *upper) OnDeliver(payload []byte, info mac.RxInfo) {
	u.delivered = append(u.delivered, delivery{append([]byte(nil), payload...), info})
}

// OnSendComplete copies the loaned Delivered/Failed slices before keeping
// the result, per the mac.TxResult contract.
func (u *upper) OnSendComplete(res mac.TxResult) {
	res.Delivered = append([]frame.Addr(nil), res.Delivered...)
	res.Failed = append([]frame.Addr(nil), res.Failed...)
	u.completes = append(u.completes, res)
}

type world struct {
	eng    *sim.Engine
	medium *phy.Medium
	nodes  []*Node
	uppers []*upper
}

func newWorld(seed int64, pos []geom.Point) *world {
	eng := sim.NewEngine(seed)
	cfg := phy.DefaultConfig()
	m := phy.NewMedium(eng, cfg)
	w := &world{eng: eng, medium: m}
	for i, p := range pos {
		r := m.AddRadio(i, mobility.Stationary{P: p})
		n := New(r, cfg, eng, mac.DefaultLimits())
		u := &upper{}
		n.SetUpper(u)
		w.nodes = append(w.nodes, n)
		w.uppers = append(w.uppers, u)
	}
	return w
}

func addrs(ids ...int) []frame.Addr {
	out := make([]frame.Addr, len(ids))
	for i, id := range ids {
		out[i] = frame.AddrFromID(id)
	}
	return out
}

func reliableReq(payload string, dests ...int) *mac.SendRequest {
	return &mac.SendRequest{Service: mac.Reliable, Dests: addrs(dests...), Payload: []byte(payload)}
}

func hasAddr(list []frame.Addr, id int) bool {
	a := frame.AddrFromID(id)
	for _, x := range list {
		if x == a {
			return true
		}
	}
	return false
}

func TestReliableMulticastBasic(t *testing.T) {
	// A(0) multicasts to B(1) and C(2), all mutually in range.
	w := newWorld(1, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 0, Y: 50}})
	payload := make([]byte, 500) // the paper's packet size
	copy(payload, "payload-1")
	if !w.nodes[0].Send(&mac.SendRequest{Service: mac.Reliable, Dests: addrs(1, 2), Payload: payload}) {
		t.Fatal("Send rejected")
	}
	w.eng.Run(sim.Second)

	for _, id := range []int{1, 2} {
		got := w.uppers[id].delivered
		if len(got) != 1 {
			t.Fatalf("node %d deliveries = %d, want 1", id, len(got))
		}
		if string(got[0].payload[:9]) != "payload-1" || !got[0].info.Reliable {
			t.Fatalf("node %d delivery = %+v", id, got[0])
		}
	}
	comp := w.uppers[0].completes
	if len(comp) != 1 {
		t.Fatalf("completes = %d, want 1", len(comp))
	}
	res := comp[0]
	if res.Dropped || res.Retries != 0 || len(res.Delivered) != 2 || len(res.Failed) != 0 {
		t.Fatalf("result = %+v", res)
	}
	if !hasAddr(res.Delivered, 1) || !hasAddr(res.Delivered, 2) {
		t.Fatalf("delivered = %v", res.Delivered)
	}
	st := w.nodes[0].Stats()
	if st.ReliableToTransmit != 1 || st.ReliableDelivered != 1 || st.Retransmissions != 0 || st.Drops != 0 {
		t.Fatalf("sender stats = %+v", st)
	}
	if st.MRTSSent != 1 || len(st.MRTSLens) != 1 || st.MRTSLens[0] != frame.MRTSLen(2) {
		t.Fatalf("MRTS accounting = %+v", st)
	}
	// Both receivers emitted exactly one ABT.
	if w.nodes[1].Stats().ABTSent != 1 || w.nodes[2].Stats().ABTSent != 1 {
		t.Fatal("ABT counts wrong")
	}
	// Overhead ratio sanity: control + ABT checks well below data time.
	if r := st.OverheadRatio(); r <= 0 || r > 0.5 {
		t.Fatalf("overhead ratio = %v", r)
	}
}

func TestReliableUnicastAndBroadcastModes(t *testing.T) {
	w := newWorld(2, []geom.Point{{X: 0, Y: 0}, {X: 40, Y: 0}, {X: 0, Y: 40}})
	// Unicast: one address in the MRTS sequence.
	w.nodes[0].Send(reliableReq("uni", 1))
	w.eng.Run(sim.Second)
	if len(w.uppers[1].delivered) != 1 || len(w.uppers[2].delivered) != 0 {
		t.Fatal("unicast delivery wrong")
	}
	// Broadcast mode: all one-hop neighbours in the sequence.
	w.nodes[0].Send(reliableReq("bcast", 1, 2))
	w.eng.Run(2 * sim.Second)
	if len(w.uppers[1].delivered) != 2 || len(w.uppers[2].delivered) != 1 {
		t.Fatal("broadcast delivery wrong")
	}
}

func TestReliableSendToUnreachableDrops(t *testing.T) {
	w := newWorld(3, []geom.Point{{X: 0, Y: 0}, {X: 500, Y: 0}})
	w.nodes[0].Send(reliableReq("lost", 1))
	w.eng.Run(10 * sim.Second)
	st := w.nodes[0].Stats()
	limits := mac.DefaultLimits()
	if st.Drops != 1 {
		t.Fatalf("drops = %d, want 1", st.Drops)
	}
	if st.MRTSSent != uint64(limits.RetryLimit)+1 {
		t.Fatalf("MRTS sent = %d, want %d", st.MRTSSent, limits.RetryLimit+1)
	}
	if st.Retransmissions != uint64(limits.RetryLimit) {
		t.Fatalf("retransmissions = %d, want %d", st.Retransmissions, limits.RetryLimit)
	}
	comp := w.uppers[0].completes
	if len(comp) != 1 || !comp[0].Dropped || !hasAddr(comp[0].Failed, 1) {
		t.Fatalf("completion = %+v", comp)
	}
	// No data frame should ever have been sent (no RBT detected).
	if st.DataTxTime != 0 {
		t.Fatal("data transmitted without RBT")
	}
}

func TestPartialDeliveryRetriesOnlyMissing(t *testing.T) {
	// B in range, X unreachable: sender must mark B delivered in window 0
	// mapping and keep retrying only X, then drop.
	w := newWorld(4, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 400, Y: 0}})
	w.nodes[0].Send(reliableReq("partial", 1, 2))
	w.eng.Run(10 * sim.Second)
	comp := w.uppers[0].completes
	if len(comp) != 1 {
		t.Fatalf("completes = %d", len(comp))
	}
	res := comp[0]
	if !res.Dropped || !hasAddr(res.Delivered, 1) || !hasAddr(res.Failed, 2) || hasAddr(res.Delivered, 2) {
		t.Fatalf("result = %+v", res)
	}
	// B must have received the data exactly once (retransmissions exclude it).
	if len(w.uppers[1].delivered) != 1 {
		t.Fatalf("B deliveries = %d, want 1", len(w.uppers[1].delivered))
	}
	// Retransmitted MRTSs shrink: first 2 receivers, then 1.
	lens := w.nodes[0].Stats().MRTSLens
	if lens[0] != frame.MRTSLen(2) {
		t.Fatalf("first MRTS len = %d", lens[0])
	}
	for _, l := range lens[1:] {
		if l != frame.MRTSLen(1) {
			t.Fatalf("retry MRTS len = %d, want %d", l, frame.MRTSLen(1))
		}
	}
}

func TestOrderedABTWindowMapping(t *testing.T) {
	// Receiver order in the MRTS: [X(unreachable), C(reachable)]. C must
	// ack in window 1; if window mapping were off by one, X would appear
	// delivered.
	w := newWorld(5, []geom.Point{{X: 0, Y: 0}, {X: 400, Y: 0}, {X: 50, Y: 0}})
	w.nodes[0].Send(reliableReq("ordered", 1, 2))
	w.eng.Run(10 * sim.Second)
	res := w.uppers[0].completes[0]
	if !hasAddr(res.Delivered, 2) || !hasAddr(res.Failed, 1) {
		t.Fatalf("ABT window mapping wrong: %+v", res)
	}
	if len(w.uppers[2].delivered) != 1 {
		t.Fatal("C must receive data once")
	}
}

func TestUnreliableBroadcast(t *testing.T) {
	w := newWorld(6, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 0, Y: 50}, {X: 300, Y: 300}})
	w.nodes[0].Send(&mac.SendRequest{Service: mac.Unreliable, Payload: []byte("beacon")})
	w.eng.Run(sim.Second)
	if len(w.uppers[1].delivered) != 1 || len(w.uppers[2].delivered) != 1 {
		t.Fatal("in-range nodes missed broadcast")
	}
	if len(w.uppers[3].delivered) != 0 {
		t.Fatal("out-of-range node received broadcast")
	}
	if w.uppers[1].delivered[0].info.Reliable {
		t.Fatal("unreliable delivery marked reliable")
	}
	if len(w.uppers[0].completes) != 1 {
		t.Fatal("unreliable send did not complete")
	}
	if w.nodes[0].Stats().UnreliableSent != 1 {
		t.Fatal("UnreliableSent count")
	}
}

func TestUnreliableUnicastFiltering(t *testing.T) {
	w := newWorld(7, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 0, Y: 50}})
	w.nodes[0].Send(&mac.SendRequest{Service: mac.Unreliable, Dests: addrs(1), Payload: []byte("u")})
	w.eng.Run(sim.Second)
	if len(w.uppers[1].delivered) != 1 {
		t.Fatal("unicast target missed frame")
	}
	if len(w.uppers[2].delivered) != 0 {
		t.Fatal("non-target accepted unicast frame")
	}
}

func TestReceiverSplitting(t *testing.T) {
	// 25 receivers with limit 20: two Reliable Send invocations (§3.4).
	pos := []geom.Point{{X: 0, Y: 0}}
	for i := 0; i < 25; i++ {
		// Place receivers on a tight ring around the sender.
		pos = append(pos, geom.Point{X: 10 + float64(i), Y: 10})
	}
	w := newWorld(8, pos)
	ids := make([]int, 25)
	for i := range ids {
		ids[i] = i + 1
	}
	w.nodes[0].Send(reliableReq("split", ids...))
	w.eng.Run(5 * sim.Second)
	comp := w.uppers[0].completes
	if len(comp) != 1 || comp[0].Dropped {
		t.Fatalf("completes = %+v", comp)
	}
	if len(comp[0].Delivered) != 25 {
		t.Fatalf("delivered = %d, want 25", len(comp[0].Delivered))
	}
	st := w.nodes[0].Stats()
	if st.MRTSSent != 2 {
		t.Fatalf("MRTS sent = %d, want 2 (one per batch)", st.MRTSSent)
	}
	if st.MRTSLens[0] != frame.MRTSLen(20) || st.MRTSLens[1] != frame.MRTSLen(5) {
		t.Fatalf("batch MRTS lengths = %v", st.MRTSLens)
	}
	for i := 1; i <= 25; i++ {
		if len(w.uppers[i].delivered) != 1 {
			t.Fatalf("receiver %d deliveries = %d", i, len(w.uppers[i].delivered))
		}
	}
	// One packet, delivered reliably, zero retransmissions: splitting is
	// not a retransmission.
	if st.Retransmissions != 0 || st.ReliableToTransmit != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHiddenTerminalCoexistence(t *testing.T) {
	// Chain: A(0)--B(70)--C(140)--D(210). C is hidden from A; its first
	// MRTS collides with A's at B, and both exchanges must recover
	// through retransmission and the RBT deference rules.
	w := newWorld(9, []geom.Point{{X: 0, Y: 0}, {X: 70, Y: 0}, {X: 140, Y: 0}, {X: 210, Y: 0}})
	w.nodes[0].Send(reliableReq("protected-data", 1))
	w.eng.Schedule(100*sim.Microsecond, func() {
		w.nodes[2].Send(reliableReq("c-to-d", 3))
	})
	w.eng.Run(5 * sim.Second)

	// B must end up with A's payload intact exactly once.
	if len(w.uppers[1].delivered) != 1 || string(w.uppers[1].delivered[0].payload) != "protected-data" {
		t.Fatalf("B deliveries = %+v", w.uppers[1].delivered)
	}
	// Both senders eventually complete successfully.
	if len(w.uppers[0].completes) != 1 || w.uppers[0].completes[0].Dropped {
		t.Fatalf("A completion = %+v", w.uppers[0].completes)
	}
	if len(w.uppers[2].completes) != 1 || w.uppers[2].completes[0].Dropped {
		t.Fatalf("C completion = %+v", w.uppers[2].completes)
	}
	if len(w.uppers[3].delivered) != 1 {
		t.Fatal("D never received C's packet")
	}
	// The hidden-terminal collision must have forced at least one retry
	// somewhere.
	if w.nodes[0].Stats().Retransmissions+w.nodes[2].Stats().Retransmissions == 0 {
		t.Fatal("no retransmissions despite colliding MRTSs")
	}
}

func TestMRTSAbortOnRBT(t *testing.T) {
	// A rogue node (2) raises an RBT while C(0) is mid-MRTS to D(1):
	// C must abort the MRTS (§3.3.2 step 3), count it, back off and
	// retry once the tone clears. The rogue is 78 m from D, so D's side
	// is unaffected.
	w := newWorld(20, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 0, Y: 60}})
	rogue := w.medium.Radios()[2]
	w.nodes[0].Send(reliableReq("abort-me", 1))
	w.eng.Schedule(50*sim.Microsecond, func() { rogue.SetTone(phy.ToneRBT, true) })
	w.eng.Schedule(400*sim.Microsecond, func() { rogue.SetTone(phy.ToneRBT, false) })
	w.eng.Run(5 * sim.Second)

	st := w.nodes[0].Stats()
	if st.MRTSAborted != 1 {
		t.Fatalf("MRTSAborted = %d, want 1", st.MRTSAborted)
	}
	if st.AbortRatio() <= 0 || st.AbortRatio() >= 1 {
		t.Fatalf("abort ratio = %v", st.AbortRatio())
	}
	// The exchange must still complete after the tone clears.
	if len(w.uppers[1].delivered) != 1 {
		t.Fatalf("D deliveries = %d, want 1", len(w.uppers[1].delivered))
	}
	if len(w.uppers[0].completes) != 1 || w.uppers[0].completes[0].Dropped {
		t.Fatalf("completion = %+v", w.uppers[0].completes)
	}
	// The aborted attempt counts as a retransmission cycle.
	if st.Retransmissions == 0 {
		t.Fatal("aborted MRTS did not count as retransmission")
	}
}

func TestRBTDefersContender(t *testing.T) {
	// B receives data under RBT; a contender E (in B's tone range) with a
	// queued packet must hold its backoff until the RBT clears, so B's
	// reception is never collided.
	w := newWorld(10, []geom.Point{{X: 0, Y: 0}, {X: 70, Y: 0}, {X: 120, Y: 0}, {X: 190, Y: 0}})
	w.nodes[0].Send(reliableReq("protected", 1))
	// E(2) enqueues while A's MRTS is still in flight; E hears B (50 m)
	// but not A (120 m).
	w.eng.Schedule(250*sim.Microsecond, func() {
		w.nodes[2].Send(reliableReq("later", 3))
	})
	w.eng.Run(5 * sim.Second)
	if len(w.uppers[1].delivered) != 1 {
		t.Fatal("B reception was not protected")
	}
	if len(w.uppers[3].delivered) != 1 {
		t.Fatal("E's packet never delivered")
	}
	if w.uppers[0].completes[0].Dropped || w.uppers[2].completes[0].Dropped {
		t.Fatal("a sender dropped")
	}
}

func TestBackToBackPacketsSeparatedByBackoff(t *testing.T) {
	w := newWorld(11, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}})
	for i := 0; i < 5; i++ {
		w.nodes[0].Send(reliableReq("pkt", 1))
	}
	w.eng.Run(sim.Second)
	if got := len(w.uppers[1].delivered); got != 5 {
		t.Fatalf("deliveries = %d, want 5", got)
	}
	if got := len(w.uppers[0].completes); got != 5 {
		t.Fatalf("completes = %d, want 5", got)
	}
	st := w.nodes[0].Stats()
	if st.ReliableDelivered != 5 || st.Drops != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQueueOverflow(t *testing.T) {
	w := newWorld(12, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}})
	limits := mac.DefaultLimits()
	accepted := 0
	for i := 0; i < limits.QueueCap+10; i++ {
		if w.nodes[0].Send(reliableReq("x", 1)) {
			accepted++
		}
	}
	// The first packet may already be in flight (popped), so at most
	// QueueCap+1 are accepted.
	if accepted > limits.QueueCap+1 {
		t.Fatalf("accepted = %d", accepted)
	}
	if w.nodes[0].Stats().QueueDrops == 0 {
		t.Fatal("no queue drops recorded")
	}
}

func TestEmptyDestsPanics(t *testing.T) {
	w := newWorld(13, []geom.Point{{X: 0, Y: 0}})
	defer func() {
		if recover() == nil {
			t.Fatal("empty reliable dests must panic")
		}
	}()
	w.nodes[0].Send(&mac.SendRequest{Service: mac.Reliable})
}

func TestTwoSimultaneousSendersContend(t *testing.T) {
	// A and C both in range of each other and of B; both multicast to B
	// at once. Contention must serialise them; both succeed.
	w := newWorld(14, []geom.Point{{X: 0, Y: 0}, {X: 40, Y: 0}, {X: 40, Y: 40}})
	w.nodes[0].Send(reliableReq("from-A", 1))
	w.nodes[2].Send(reliableReq("from-C", 1))
	w.eng.Run(5 * sim.Second)
	if got := len(w.uppers[1].delivered); got != 2 {
		t.Fatalf("B deliveries = %d, want 2", got)
	}
	if w.uppers[0].completes[0].Dropped || w.uppers[2].completes[0].Dropped {
		t.Fatal("a sender dropped")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, uint64, int) {
		w := newWorld(42, []geom.Point{{X: 0, Y: 0}, {X: 60, Y: 0}, {X: 120, Y: 0}, {X: 60, Y: 60}})
		for i := 0; i < 10; i++ {
			w.nodes[0].Send(reliableReq("a", 1, 3))
			w.nodes[2].Send(reliableReq("c", 1))
		}
		w.eng.Run(20 * sim.Second)
		s0, s2 := w.nodes[0].Stats(), w.nodes[2].Stats()
		return s0.Retransmissions + s2.Retransmissions,
			s0.MRTSSent + s2.MRTSSent,
			len(w.uppers[1].delivered)
	}
	r1, m1, d1 := run()
	r2, m2, d2 := run()
	if r1 != r2 || m1 != m2 || d1 != d2 {
		t.Fatalf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", r1, m1, d1, r2, m2, d2)
	}
}

func TestRDataCollisionTriggersRetransmit(t *testing.T) {
	// Interferer I is hidden from sender A but in range of receiver B.
	// I uses *unreliable* sends timed to land during B's data reception
	// window would be blocked by RBT... so instead I is placed inside
	// B's interference range but we fire I's transmission before B's RBT
	// can reach it (tone propagation is instantaneous at these distances,
	// so I's frame must already be in flight). We start I's unreliable
	// send while A's MRTS is still on the air at B.
	w := newWorld(15, []geom.Point{{X: 0, Y: 0}, {X: 70, Y: 0}, {X: 140, Y: 0}})
	w.nodes[0].Send(reliableReq("data", 1))
	// A's MRTS occupies [0,168µs] (plus contention 0). I(2) starts a long
	// unreliable frame at 100µs: it cannot hear A (140 m) and B's RBT is
	// not up yet. The frames overlap at B, corrupting the MRTS, so A
	// retries and ultimately succeeds.
	w.eng.Schedule(100*sim.Microsecond, func() {
		w.nodes[2].Send(&mac.SendRequest{Service: mac.Unreliable, Payload: make([]byte, 400)})
	})
	w.eng.Run(5 * sim.Second)
	st := w.nodes[0].Stats()
	if st.Retransmissions == 0 {
		t.Fatal("collision did not force a retransmission")
	}
	if len(w.uppers[1].delivered) != 1 {
		t.Fatalf("B deliveries = %d, want 1 after recovery", len(w.uppers[1].delivered))
	}
	if w.uppers[0].completes[0].Dropped {
		t.Fatal("A dropped despite recovery headroom")
	}
}

// TestResultInvariants drives a random-ish mesh and checks global sanity:
// exactly one completion per accepted request, Delivered/Failed partition
// the destination set, and MRTS lengths always follow 12+6n.
func TestResultInvariants(t *testing.T) {
	pos := []geom.Point{
		{X: 0, Y: 0}, {X: 60, Y: 0}, {X: 30, Y: 50}, {X: 90, Y: 50}, {X: 150, Y: 0}, {X: 220, Y: 0},
	}
	w := newWorld(16, pos)
	type sent struct {
		node int
		req  *mac.SendRequest
	}
	var all []sent
	rng := w.eng.Rand()
	for i := 0; i < 40; i++ {
		src := rng.Intn(len(pos))
		var dests []int
		for d := 0; d < len(pos); d++ {
			if d != src && rng.Intn(2) == 0 {
				dests = append(dests, d)
			}
		}
		if len(dests) == 0 {
			dests = []int{(src + 1) % len(pos)}
		}
		req := reliableReq("inv", dests...)
		at := sim.Time(rng.Intn(1000)) * sim.Millisecond
		w.eng.Schedule(at, func() {
			if w.nodes[src].Send(req) {
				all = append(all, sent{src, req})
			}
		})
	}
	w.eng.Run(60 * sim.Second)
	// Collect completions per node.
	for _, s := range all {
		found := 0
		for _, c := range w.uppers[s.node].completes {
			if c.Req == s.req {
				found++
				got := len(c.Delivered) + len(c.Failed)
				if got != len(s.req.Dests) {
					t.Fatalf("delivered+failed = %d, want %d", got, len(s.req.Dests))
				}
				seen := map[frame.Addr]bool{}
				for _, a := range append(append([]frame.Addr{}, c.Delivered...), c.Failed...) {
					if seen[a] {
						t.Fatalf("address %v appears twice in result", a)
					}
					seen[a] = true
				}
				if c.Dropped != (len(c.Failed) > 0) {
					t.Fatalf("Dropped inconsistent: %+v", c)
				}
			}
		}
		if found != 1 {
			t.Fatalf("request completed %d times, want 1", found)
		}
	}
	for _, n := range w.nodes {
		for _, l := range n.Stats().MRTSLens {
			if (l-frame.MRTSFixedLen)%6 != 0 || l < frame.MRTSLen(1) || l > frame.MRTSLen(20) {
				t.Fatalf("invalid MRTS length %d", l)
			}
		}
	}
}

func TestStateString(t *testing.T) {
	if StateIdle.String() != "IDLE" || StateWfRData.String() != "WF_RDATA" {
		t.Fatal("state names")
	}
	if State(99).String() != "State(99)" {
		t.Fatal("unknown state name")
	}
}
