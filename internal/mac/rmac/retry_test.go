package rmac

import (
	"testing"

	"rmac/internal/fault"
	"rmac/internal/geom"
	"rmac/internal/mac"
	"rmac/internal/sim"
)

// alwaysBadBurst corrupts every frame on the air: the chain's bad state
// dominates (1-tick good sojourns vs 1-second bad ones) and both BERs are
// 1, so no frame ever decodes. Tones still propagate — only frame decoding
// is impaired — which exercises the full timeout/retry path.
func alwaysBadBurst() fault.Config {
	return fault.Config{Burst: fault.BurstConfig{
		Enabled: true, MeanGood: 1, MeanBad: sim.Second, BERGood: 1, BERBad: 1,
	}}
}

// TestRetryExhaustionUnderBurstLoss drives a sender into the retry limit
// with a fully corrupting channel and checks the §3.3.2 exhaustion
// accounting: RetryLimit retransmission cycles, then a drop reported both
// in the TxResult and the node's counters.
func TestRetryExhaustionUnderBurstLoss(t *testing.T) {
	w := newWorld(7, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}})
	inj := fault.New(w.eng, w.medium, alwaysBadBurst())

	if !w.nodes[0].Send(reliableReq("doomed", 1)) {
		t.Fatal("Send rejected")
	}
	w.eng.Run(60 * sim.Second)

	limit := mac.DefaultLimits().RetryLimit
	u := w.uppers[0]
	if len(u.completes) != 1 {
		t.Fatalf("sender reported %d completions, want 1", len(u.completes))
	}
	res := u.completes[0]
	if !res.Dropped {
		t.Error("packet was not dropped despite a dead channel")
	}
	if res.Retries != limit+1 {
		t.Errorf("Retries = %d, want %d (limit exhausted)", res.Retries, limit+1)
	}
	if !hasAddr(res.Failed, 1) {
		t.Errorf("receiver 1 missing from Failed: %v", res.Failed)
	}
	s := w.nodes[0].Stats()
	if s.Drops != 1 {
		t.Errorf("Drops = %d, want 1", s.Drops)
	}
	if s.Retransmissions != uint64(limit) {
		t.Errorf("Retransmissions = %d, want %d", s.Retransmissions, limit)
	}
	if len(w.uppers[1].delivered) != 0 {
		t.Errorf("receiver delivered %d packets through a dead channel", len(w.uppers[1].delivered))
	}
	if inj.Stats.BurstErrors == 0 {
		t.Error("impairment layer corrupted no frames")
	}
}
