// Package rmac implements the RMAC protocol of Si & Li (ICPP 2004): a
// comprehensive MAC for wireless ad hoc networks providing a Reliable Send
// service (unicast, multicast, broadcast) built on three mechanisms —
//
//   - a variable-length MRTS control frame that stipulates the order in
//     which receivers respond (§3.2),
//   - the Receiver Busy Tone (RBT), turned on by every receiver during
//     data reception to eliminate hidden-node collisions (§3.1–3.2), and
//   - the Acknowledgment Busy Tone (ABT), an ordered per-receiver tone
//     acknowledgment replacing ACK frames (§3.2),
//
// plus an Unreliable Send service that transmits once with no recovery
// (§3.3.3). The state machine follows the appendix (IDLE, BACKOFF,
// WF_RBT, WF_RDATA, WF_ABT, TX_MRTS, TX_RDATA, TX_UNRDATA; conditions
// C1–C19).
package rmac

import (
	"fmt"

	"rmac/internal/audit"
	"rmac/internal/frame"
	"rmac/internal/mac"
	"rmac/internal/phy"
	"rmac/internal/sim"
)

// State is the protocol state of a node (appendix, Fig 14).
type State int

const (
	// StateIdle covers both IDLE and suspended/pending BACKOFF: no
	// exchange in progress. Frame reception is accepted here only.
	StateIdle State = iota
	// StateTxMRTS: transmitting an MRTS (abortable on RBT, C11).
	StateTxMRTS
	// StateWfRBT: MRTS sent, sensing the RBT channel for 2τ+λ.
	StateWfRBT
	// StateTxRData: transmitting the reliable data frame.
	StateTxRData
	// StateWfABT: data sent, sensing n ordered ABT windows.
	StateWfABT
	// StateTxUnrData: transmitting an unreliable data frame (abortable).
	StateTxUnrData
	// StateWfRData: receiver role — RBT on, waiting for the data frame.
	StateWfRData
)

var stateNames = [...]string{"IDLE", "TX_MRTS", "WF_RBT", "TX_RDATA", "WF_ABT", "TX_UNRDATA", "WF_RDATA"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// GuardTime is the receive/transmit turnaround slack added to the
// receiver's T_wf_rdata deadline. The paper's timer arithmetic makes the
// data frame's first bit arrive exactly at T_wf_rdata expiry (sender waits
// the full 2τ+λ before transmitting; both intervals span 2τ+λ); real
// radios absorb this with turnaround tolerance, which this constant
// models.
const GuardTime = 2 * sim.Microsecond

// txContext tracks one reliable packet through (possibly split) Reliable
// Send invocations.
type txContext struct {
	req *mac.SendRequest
	// seq is the packet's MAC sequence number, assigned once per packet so
	// every retransmission (and every §3.4 batch) carries the same value —
	// receivers dedup retransmitted data on (sender, seq).
	seq uint32
	// batches are the §3.4 splits of the destination list; batchIdx
	// cursors through them (a [1:] reslice would bleed capacity off the
	// reused backing array and defeat the per-packet buffer reuse).
	batches   [][]frame.Addr
	batchIdx  int
	remaining []frame.Addr // unacked receivers of the active batch
	delivered []frame.Addr
	retries   int // failed attempts of the active batch
}

// rxContext tracks the receiver role (WF_RDATA).
type rxContext struct {
	sender      frame.Addr
	index       int // position in the MRTS address sequence
	deadline    sim.Time
	dataStarted bool
}

// Options tweaks protocol behaviour for ablation studies.
type Options struct {
	// DisableRBTProtection stops the node from honouring foreign RBTs:
	// no backoff deference and no MRTS/unreliable-data abortion on a
	// sensed RBT. Receivers still raise their RBT so the sender
	// handshake (step 4 of §3.3.2) keeps working. This ablates the
	// hidden-node protection whose benefit §4.3.1 claims.
	DisableRBTProtection bool
}

// Node is one RMAC instance bound to a radio.
type Node struct {
	eng    *sim.Engine
	radio  *phy.Radio
	cfg    phy.Config
	addr   frame.Addr
	limits mac.Limits
	opts   Options
	upper  mac.UpperLayer
	frames *frame.Pool

	state   State
	queue   *mac.Queue
	backoff *mac.Backoff
	stats   mac.Stats
	aud     *audit.Auditor

	cur *txContext
	rx  *rxContext

	// ctxBuf and rxBuf back cur and rx: a node runs at most one sender
	// and one receiver context at a time, so both are reused across
	// packets instead of allocated per packet.
	ctxBuf txContext
	rxBuf  rxContext

	seq uint32

	// lastSeq dedups the receiver role: the last (sender, seq) delivered
	// upward. A retransmitted data frame (the sender missed our ABT) is
	// re-acknowledged but not re-delivered. Last-value tracking suffices:
	// a sender transmits packets strictly one at a time, so a receiver
	// sees each sender's sequence numbers in non-decreasing order.
	lastSeq map[frame.Addr]uint32

	// Sender-side timers.
	wfRBT    *sim.Timer
	wfABT    *sim.Timer
	mrtsEnd  sim.Time
	dataEnd  sim.Time
	abtSlot  int
	abtAcked []bool

	// stillBuf/failedBuf are scratch receiver lists reused across
	// attempts (stillBuf swaps with cur.remaining after each ABT round).
	stillBuf  []frame.Addr
	failedBuf []frame.Addr

	// Receiver-side timer.
	wfRData *sim.Timer
}

var _ mac.MAC = (*Node)(nil)
var _ phy.Handler = (*Node)(nil)

// New creates an RMAC node on the given radio and installs itself as the
// radio's PHY handler.
func New(radio *phy.Radio, cfg phy.Config, eng *sim.Engine, limits mac.Limits) *Node {
	return NewWithOptions(radio, cfg, eng, limits, Options{})
}

// NewWithOptions is New with ablation options.
func NewWithOptions(radio *phy.Radio, cfg phy.Config, eng *sim.Engine, limits mac.Limits, opts Options) *Node {
	n := &Node{
		eng:     eng,
		radio:   radio,
		cfg:     cfg,
		addr:    frame.AddrFromID(radio.ID()),
		limits:  limits,
		opts:    opts,
		queue:   mac.NewQueue(limits.QueueCap),
		frames:  radio.Frames(),
		lastSeq: make(map[frame.Addr]uint32),
	}
	n.backoff = mac.NewBackoff(eng, eng.Rand(), phy.SlotTime, n.channelsIdle, n.onBackoffFire)
	n.wfRBT = sim.NewTimer(eng, n.onWfRBTExpire)
	n.wfABT = sim.NewTimer(eng, n.onABTWindow)
	n.wfRData = sim.NewTimer(eng, n.onWfRDataExpire)
	radio.SetHandler(n)
	return n
}

// Addr implements mac.MAC.
func (n *Node) Addr() frame.Addr { return n.addr }

// Stats implements mac.MAC.
func (n *Node) Stats() *mac.Stats { return &n.stats }

// SetUpper implements mac.MAC.
func (n *Node) SetUpper(u mac.UpperLayer) { n.upper = u }

// SetAuditor attaches the protocol-invariant auditor; the node declares
// its legal tone windows and reliable-send outcomes to it. A nil auditor
// (the default) costs a nil check per declaration.
func (n *Node) SetAuditor(a *audit.Auditor) { n.aud = a }

// AuditContention implements audit.ContentionReporter. The backoff is
// gated (not stuck) whenever the state machine or a protocol timer will
// advance the node regardless of the countdown.
func (n *Node) AuditContention() (wants, counting, gated, idle bool) {
	gated = n.state != StateIdle || n.wfRBT.Pending() || n.wfABT.Pending() || n.wfRData.Pending()
	return n.backoff.Active(), n.backoff.Counting(), gated, n.channelsIdle()
}

// AuditPending implements audit.PendingReporter.
func (n *Node) AuditPending() (queued int, inFlight bool) {
	return n.queue.Len(), n.cur != nil
}

// State returns the node's current protocol state (for tests/tracing).
func (n *Node) State() State { return n.state }

// Liveness implements mac.LivenessReporter. Every non-idle state is
// advanced by exactly one of: the in-flight transmission (TX_* states,
// resolved by OnTxDone even if the radio crashed mid-frame), an armed
// protocol timer (WF_*), or a signal currently arriving (WF_RDATA with
// the T_wf_rdata timer cancelled after the data's first bit).
func (n *Node) Liveness() mac.Liveness {
	return mac.Liveness{
		State: n.state.String(),
		Idle:  n.state == StateIdle && n.cur == nil && n.queue.Len() == 0,
		Pending: n.radio.Transmitting() || n.radio.CarrierSensed() ||
			n.wfRBT.Pending() || n.wfABT.Pending() || n.wfRData.Pending() ||
			n.backoff.Counting() ||
			// A sensed foreign RBT suspends our backoff; its falling edge
			// is what resumes us, so it counts as a pending wake-up.
			n.radio.ToneSensed(phy.ToneRBT),
	}
}

// Send implements mac.MAC: it enqueues the request and kicks the pipeline.
func (n *Node) Send(req *mac.SendRequest) bool {
	if req.Service == mac.Reliable && len(req.Dests) == 0 {
		panic("rmac: Reliable Send needs at least one destination")
	}
	req.EnqueuedAt = n.eng.Now()
	var pushed bool
	if req.Urgent {
		pushed = n.queue.PushFront(req)
	} else {
		pushed = n.queue.Push(req)
	}
	if !pushed {
		n.stats.QueueDrops++
		return false
	}
	n.stats.Enqueued++
	n.trySend()
	return true
}

// channelsIdle is the §3.3.1 countdown condition: both the data channel
// and the RBT channel idle.
func (n *Node) channelsIdle() bool {
	if n.opts.DisableRBTProtection {
		return !n.radio.DataChannelBusy()
	}
	return !n.radio.DataChannelBusy() && !n.radio.ToneSensed(phy.ToneRBT)
}

// trySend advances the transmission pipeline when the node is idle.
func (n *Node) trySend() {
	if n.state != StateIdle {
		return
	}
	if n.backoff.Active() {
		n.backoff.Resume()
		return
	}
	if n.cur == nil {
		req := n.queue.Pop()
		if req == nil {
			return
		}
		n.cur = n.newContext(req)
	}
	if !n.channelsIdle() {
		// Condition (1) of §3.3.1: packet pending, channel busy.
		n.backoff.Draw()
		return
	}
	n.startAttempt()
}

func (n *Node) onBackoffFire() { n.trySend() }

func (n *Node) newContext(req *mac.SendRequest) *txContext {
	ctx := &n.ctxBuf
	n.seq++
	*ctx = txContext{
		req:       req,
		seq:       n.seq,
		batches:   ctx.batches[:0],
		remaining: ctx.remaining[:0],
		delivered: ctx.delivered[:0],
	}
	if req.Service == mac.Unreliable {
		return ctx
	}
	// §3.4 refinement: split destination lists longer than the limit
	// into multiple Reliable Send invocations.
	dests := req.Dests
	limit := n.limits.MaxReceivers
	if limit <= 0 {
		limit = frame.MaxReceivers
	}
	for len(dests) > limit {
		ctx.batches = append(ctx.batches, dests[:limit])
		dests = dests[limit:]
	}
	ctx.batches = append(ctx.batches, dests)
	ctx.remaining = append(ctx.remaining, ctx.batches[0]...)
	ctx.batchIdx = 1
	n.stats.ReliableToTransmit++
	return ctx
}

// startAttempt begins one transmission attempt for the head packet:
// C1/C6 (unreliable) or C10/C14 (reliable).
func (n *Node) startAttempt() {
	if n.cur.req.Service == mac.Unreliable {
		n.startUnreliable()
		return
	}
	n.startMRTS()
}

func (n *Node) startUnreliable() {
	req := n.cur.req
	dest := frame.Broadcast
	if len(req.Dests) > 0 {
		dest = req.Dests[0]
	}
	f := n.frames.UData()
	f.Transmitter = n.addr
	f.Receiver = dest
	f.Seq = n.cur.seq
	f.Payload = append(f.Payload, req.Payload...)
	n.state = StateTxUnrData
	n.radio.StartTx(f)
}

func (n *Node) startMRTS() {
	n.radio.PruneToneLog(n.eng.Now() - sim.Second)
	m := n.frames.MRTS()
	m.Transmitter = n.addr
	m.Receivers = append(m.Receivers, n.cur.remaining...)
	n.stats.MRTSSent++
	n.stats.MRTSLens = append(n.stats.MRTSLens, m.WireSize())
	n.state = StateTxMRTS
	dur := n.radio.StartTx(m)
	n.stats.CtrlTxTime += dur
}

// OnTxDone implements phy.Handler (natural completion only; aborts are
// handled where they are triggered).
func (n *Node) OnTxDone(f frame.Frame) {
	switch n.state {
	case StateTxMRTS:
		// C17: MRTS complete -> WF_RBT, timer 2τ+λ.
		n.state = StateWfRBT
		n.mrtsEnd = n.eng.Now()
		n.wfRBT.Start(phy.ToneWaitTimeout)
	case StateTxRData:
		// C19: data complete -> WF_ABT, n cycles of 2τ+λ.
		n.state = StateWfABT
		n.dataEnd = n.eng.Now()
		n.abtSlot = 0
		n.abtAcked = n.abtAcked[:0]
		for range n.cur.remaining {
			n.abtAcked = append(n.abtAcked, false)
		}
		n.wfABT.Start(phy.ABTDuration)
	case StateTxUnrData:
		// C5/C2: unreliable transmission done.
		n.stats.UnreliableSent++
		n.completeUnreliable()
	default:
		panic(fmt.Sprintf("rmac: node %v OnTxDone in state %v", n.addr, n.state))
	}
}

func (n *Node) completeUnreliable() {
	req := n.cur.req
	n.cur = nil
	n.state = StateIdle
	n.postTxBackoff(true)
	if n.upper != nil {
		n.upper.OnSendComplete(mac.TxResult{Req: req})
	}
	n.trySend()
}

// onWfRBTExpire: step 4 of §3.3.2 — at T_wf_rbt expiry, transmit data if
// an RBT was detected during the timer period, otherwise back off and
// retry.
func (n *Node) onWfRBTExpire() {
	detected := n.radio.ToneOverlap(phy.ToneRBT, n.mrtsEnd, n.eng.Now()) >= phy.Lambda
	if !detected {
		n.attemptFailed()
		return
	}
	// The packet's sequence number was fixed at newContext time:
	// retransmissions and later §3.4 batches repeat it, so receivers can
	// recognise (and re-acknowledge without re-delivering) a data frame
	// whose ABT the sender missed.
	f := n.frames.RData()
	f.Transmitter = n.addr
	f.Receiver = frame.Broadcast // delivery set governed by the MRTS
	f.Seq = n.cur.seq
	f.Payload = append(f.Payload, n.cur.req.Payload...)
	n.state = StateTxRData
	dur := n.radio.StartTx(f)
	n.stats.DataTxTime += dur
}

// onABTWindow closes one ABT sensing window (step 6 of §3.3.2): window i
// covers [dataEnd+i·l_abt, dataEnd+(i+1)·l_abt]; receiver i acknowledged
// iff the ABT channel was sensed for at least λ within it.
func (n *Node) onABTWindow() {
	i := n.abtSlot
	from := n.dataEnd + sim.Time(i)*phy.ABTDuration
	to := from + phy.ABTDuration
	n.stats.ABTCheckTime += phy.ABTDuration
	if n.radio.ToneOverlap(phy.ToneABT, from, to) >= phy.Lambda {
		n.abtAcked[i] = true
	}
	n.abtSlot++
	if n.abtSlot < len(n.cur.remaining) {
		n.wfABT.Start(phy.ABTDuration)
		return
	}
	// All windows sensed: split acked / unacked. still reuses the node's
	// scratch buffer, which swaps roles with cur.remaining below.
	still := n.stillBuf[:0]
	for j, a := range n.cur.remaining {
		if n.abtAcked[j] {
			n.cur.delivered = append(n.cur.delivered, a)
		} else {
			still = append(still, a)
		}
	}
	if len(still) == 0 {
		n.stillBuf = still
		n.batchDone()
		return
	}
	n.stillBuf = n.cur.remaining
	n.cur.remaining = still
	n.attemptFailed()
}

// attemptFailed handles a failed attempt (no RBT, missing ABTs, or MRTS
// abortion): exponential backoff and retransmission, or drop past the
// retry limit.
func (n *Node) attemptFailed() {
	n.state = StateIdle
	n.cur.retries++
	if n.cur.retries > n.limits.RetryLimit {
		n.dropCurrent()
		return
	}
	n.stats.Retransmissions++
	n.backoff.Fail()
	n.backoff.Draw()
	n.trySend()
}

// dropCurrent abandons the head packet at the retry limit (§3.3.2 note 1).
func (n *Node) dropCurrent() {
	ctx := n.cur
	n.cur = nil
	n.stats.Drops++
	failed := append(n.failedBuf[:0], ctx.remaining...)
	for _, b := range ctx.batches[ctx.batchIdx:] {
		failed = append(failed, b...)
	}
	n.failedBuf = failed
	n.postTxBackoff(true)
	n.aud.ReliableOutcome(n.radio.ID(), len(ctx.delivered), len(ctx.req.Dests), true)
	if n.upper != nil {
		n.upper.OnSendComplete(mac.TxResult{
			Req:       ctx.req,
			Delivered: ctx.delivered,
			Failed:    failed,
			Dropped:   true,
			Retries:   ctx.retries,
		})
	}
	n.trySend()
}

// batchDone advances past a fully-acknowledged batch: next §3.4 batch
// (separated by a backoff procedure) or packet completion.
func (n *Node) batchDone() {
	n.state = StateIdle
	ctx := n.cur
	if ctx.batchIdx < len(ctx.batches) {
		ctx.remaining = append(ctx.remaining[:0], ctx.batches[ctx.batchIdx]...)
		ctx.batchIdx++
		ctx.retries = 0
		n.backoff.Reset()
		n.backoff.Draw()
		n.trySend()
		return
	}
	n.cur = nil
	n.stats.ReliableDelivered++
	n.postTxBackoff(true)
	n.aud.ReliableOutcome(n.radio.ID(), len(ctx.delivered), len(ctx.req.Dests), false)
	if n.upper != nil {
		n.upper.OnSendComplete(mac.TxResult{
			Req:       ctx.req,
			Delivered: ctx.delivered,
			Retries:   ctx.retries,
		})
	}
	n.trySend()
}

// postTxBackoff implements §3.3.1 condition (3): a backoff procedure after
// every completed transmission or drop, so successive transmissions are
// separated by contention. reset selects CW restoration (success/drop).
func (n *Node) postTxBackoff(reset bool) {
	if reset {
		n.backoff.Reset()
	}
	n.backoff.Draw()
}

// --- Receiver role ----------------------------------------------------------

// OnFrameReceived implements phy.Handler.
func (n *Node) OnFrameReceived(f frame.Frame, ok bool, rxStart sim.Time) {
	switch n.state {
	case StateIdle:
		if !ok {
			return // noise/collision; backoff already suspended via carrier
		}
		switch g := f.(type) {
		case *frame.MRTS:
			n.onMRTS(g)
		case *frame.UData:
			n.onUData(g, rxStart)
		case *frame.RData:
			// Stray reliable data (e.g. our receiver role ended early
			// after a nearby abort): no RBT was held, so it arrived
			// unprotected. It is not acknowledged; the sender will
			// retransmit. Do not deliver to avoid duplicate-count
			// ambiguity at the MAC; the app-level dedup handles resends.
		}
	case StateWfRData:
		n.receiverFrameEnd(f, ok)
	default:
		// Senders in TX/WF states do not receive (appendix: reception
		// only happens in IDLE).
	}
}

// onMRTS: step 2 of §3.3.2 — a node finding its address in the MRTS
// memorizes its index and turns on the RBT.
func (n *Node) onMRTS(m *frame.MRTS) {
	idx := m.IndexOf(n.addr)
	if idx < 0 {
		return
	}
	n.stats.CtrlRxTime += n.cfg.TxDuration(m.WireSize())
	n.rxBuf = rxContext{
		sender:   m.Transmitter,
		index:    idx,
		deadline: n.eng.Now() + phy.ToneWaitTimeout + GuardTime,
	}
	n.rx = &n.rxBuf
	n.state = StateWfRData
	n.backoff.Suspend()
	n.aud.ExpectTone(n.radio.ID(), phy.ToneRBT, n.eng.Now(), 0)
	n.radio.SetTone(phy.ToneRBT, true)
	if n.radio.CarrierSensed() {
		// A signal is already arriving; treat it as the data candidate.
		n.rx.dataStarted = true
	} else {
		n.wfRData.StartAt(n.rx.deadline)
	}
}

// onWfRDataExpire: no data frame started before T_wf_rdata(+guard): stop
// the RBT (step 5).
func (n *Node) onWfRDataExpire() {
	n.endReceiverRole()
}

// receiverFrameEnd resolves a reception that ended while in WF_RDATA.
func (n *Node) receiverFrameEnd(f frame.Frame, ok bool) {
	if ok {
		if d, isData := f.(*frame.RData); isData && d.Transmitter == n.rx.sender {
			// Data received correctly: RBT off, ABT scheduled at
			// index·l_abt after the data frame reception (step 5).
			idx := n.rx.index
			n.wfRData.Stop()
			n.endReceiverRoleKeepingTimerStopped()
			n.scheduleABT(idx)
			// Retransmission of an already-delivered packet (the sender
			// missed this receiver's ABT): acknowledge again, deliver once.
			last, seen := n.lastSeq[d.Transmitter]
			dup := seen && last == d.Seq
			n.lastSeq[d.Transmitter] = d.Seq
			if !dup && n.upper != nil {
				n.upper.OnDeliver(d.Payload, mac.RxInfo{
					From:     d.Transmitter,
					Reliable: true,
					Seq:      d.Seq,
					RxEnd:    n.eng.Now(),
				})
			}
			return
		}
	}
	// Not our data (a truncated foreign MRTS fragment, a collision, or an
	// unrelated frame). If the arrival deadline has not passed, keep the
	// RBT up and keep waiting — the protected data frame may still come.
	if n.eng.Now() < n.rx.deadline {
		n.rx.dataStarted = false
		n.wfRData.StartAt(n.rx.deadline)
		return
	}
	n.endReceiverRole()
}

func (n *Node) endReceiverRole() {
	n.wfRData.Stop()
	n.endReceiverRoleKeepingTimerStopped()
}

func (n *Node) endReceiverRoleKeepingTimerStopped() {
	n.radio.SetTone(phy.ToneRBT, false)
	n.rx = nil
	n.state = StateIdle
	n.trySend()
}

// Tags for the node's sim.Caller dispatch (ABT emission). The transitions
// are stateless — the tone itself carries all the state — so overlapping
// schedules from back-to-back receiver roles stay correct.
const (
	tagABTOn int32 = iota
	tagABTOff
)

// Call implements sim.Caller: the two halves of an ABT emission, scheduled
// closure-free through the engine's tagged-event path.
func (n *Node) Call(tag int32) {
	switch tag {
	case tagABTOn:
		n.stats.ABTSent++
		n.radio.SetTone(phy.ToneABT, true)
		n.eng.AfterCall(phy.ABTDuration, n, tagABTOff)
	case tagABTOff:
		n.radio.SetTone(phy.ToneABT, false)
	}
}

// scheduleABT emits the acknowledgment busy tone for l_abt after waiting
// index·l_abt (T_tx_abt, §3.3.2).
func (n *Node) scheduleABT(index int) {
	n.aud.ExpectTone(n.radio.ID(), phy.ToneABT,
		n.eng.Now()+sim.Time(index)*phy.ABTDuration, phy.ABTDuration)
	n.eng.AfterCall(sim.Time(index)*phy.ABTDuration, n, tagABTOn)
}

// onUData: §3.3.3 step 3 — accept unreliable frames destined to this node
// (unicast or broadcast).
func (n *Node) onUData(d *frame.UData, rxStart sim.Time) {
	if d.Receiver != n.addr && !d.Receiver.IsBroadcast() {
		return
	}
	if n.upper != nil {
		n.upper.OnDeliver(d.Payload, mac.RxInfo{
			From:     d.Transmitter,
			Reliable: false,
			Seq:      d.Seq,
			RxStart:  rxStart,
			RxEnd:    n.eng.Now(),
		})
	}
}

// --- Channel state callbacks -------------------------------------------------

// OnCarrierChange implements phy.Handler.
func (n *Node) OnCarrierChange(busy bool) {
	switch n.state {
	case StateIdle:
		if busy {
			n.backoff.Suspend()
		} else {
			n.backoff.Resume()
		}
	case StateWfRData:
		if busy && !n.rx.dataStarted {
			// First bit of the data frame arrived: cancel T_wf_rdata
			// (step 5); the RBT continues until the reception ends.
			n.rx.dataStarted = true
			n.wfRData.Stop()
		}
	}
}

// OnToneChange implements phy.Handler.
func (n *Node) OnToneChange(t phy.Tone, sensed bool) {
	if t != phy.ToneRBT {
		return // ABT levels are evaluated by windowed queries only
	}
	if n.opts.DisableRBTProtection {
		return
	}
	switch n.state {
	case StateTxMRTS:
		if sensed {
			// Step 3 of §3.3.2 / C11: abort the MRTS so the node that
			// set up the RBT suffers no collision.
			n.radio.AbortTx()
			n.stats.MRTSAborted++
			n.attemptFailed()
		}
	case StateTxUnrData:
		if sensed {
			// §3.3.3 step 2: abort; unreliable frames are not retried.
			n.radio.AbortTx()
			n.stats.UnreliableSent++
			n.completeUnreliable()
		}
	case StateIdle:
		if sensed {
			n.backoff.Suspend()
		} else {
			n.backoff.Resume()
		}
	}
}
