package rmac

import (
	"testing"

	"rmac/internal/frame"
	"rmac/internal/geom"
	"rmac/internal/mac"
	"rmac/internal/phy"
	"rmac/internal/sim"
	"rmac/internal/trace"
)

// TestExchangeTimelineSpec walks one clean Reliable Send to two receivers
// through the PHY trace and asserts the §3.3.2 specification event by
// event: MRTS → RBTs up → T_wf_rbt → data → RBTs down → ordered ABTs.
func TestExchangeTimelineSpec(t *testing.T) {
	w := newWorld(50, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 0, Y: 50}})
	tr := trace.New(256)
	w.medium.Tracer = tr
	payload := make([]byte, 500)
	w.nodes[0].Send(&mac.SendRequest{Service: mac.Reliable, Dests: addrs(1, 2), Payload: payload})
	w.eng.Run(sim.Second)

	cfg := phy.DefaultConfig()
	mrtsDur := cfg.TxDuration(frame.MRTSLen(2)) // 240 µs
	dataDur := cfg.TxDuration(522)              // 2184 µs
	dataStart := mrtsDur + phy.ToneWaitTimeout  // sender waits T_wf_rbt
	dataEnd := dataStart + dataDur

	type expect struct {
		kind   trace.Kind
		node   int
		what   string
		at     sim.Time // -1: don't check
		within sim.Time // timing tolerance
	}
	tol := 2 * sim.Microsecond // propagation
	wants := []expect{
		{trace.TxStart, 0, "MRTS", 0, 0},
		{trace.RxOK, 1, "MRTS", mrtsDur, tol},                    // step 2: receivers decode
		{trace.ToneOn, 1, "RBT", mrtsDur, tol},                   // ... and raise RBT
		{trace.TxStart, 0, "RDATA", dataStart, 0},                // step 4: RBT detected at T_wf_rbt
		{trace.ToneOff, 1, "RBT", dataEnd, tol},                  // step 5: RBT until end of data
		{trace.ToneOn, 1, "ABT", dataEnd, tol},                   // index 0: ABT immediately
		{trace.ToneOn, 2, "ABT", dataEnd + phy.ABTDuration, tol}, // index 1: one l_abt later
		{trace.ToneOff, 1, "ABT", dataEnd + phy.ABTDuration, tol},
		{trace.ToneOff, 2, "ABT", dataEnd + 2*phy.ABTDuration, tol},
	}

	events := tr.Events()
	i := 0
	for _, want := range wants {
		found := false
		for ; i < len(events); i++ {
			e := events[i]
			if e.Kind == want.kind && e.Node == want.node && e.What == want.what {
				if want.at >= 0 {
					lo, hi := want.at-want.within, want.at+want.within
					if e.At < lo || e.At > hi {
						t.Fatalf("%v node %d %s at %v, want %v ± %v", want.kind, want.node, want.what, e.At, want.at, want.within)
					}
				}
				found = true
				i++
				break
			}
		}
		if !found {
			t.Fatalf("spec event missing (in order): %v node %d %s\ntrace:\n%s",
				want.kind, want.node, want.what, tr.Render())
		}
	}

	// Node 2's RBT must also have been raised and dropped, overlapping
	// node 1's.
	rbt2 := tr.Filter(func(e trace.Event) bool { return e.Node == 2 && e.What == "RBT" })
	if len(rbt2) != 2 || rbt2[0].Kind != trace.ToneOn || rbt2[1].Kind != trace.ToneOff {
		t.Fatalf("node 2 RBT events = %+v", rbt2)
	}
	// And the exchange succeeded with zero retries.
	if w.uppers[0].completes[0].Retries != 0 || w.uppers[0].completes[0].Dropped {
		t.Fatalf("completion = %+v", w.uppers[0].completes[0])
	}
	// No MRTS retransmission appeared in the trace.
	mrtsTx := tr.Filter(func(e trace.Event) bool { return e.Kind == trace.TxStart && e.What == "MRTS" })
	if len(mrtsTx) != 1 {
		t.Fatalf("MRTS transmissions = %d, want 1", len(mrtsTx))
	}
}
