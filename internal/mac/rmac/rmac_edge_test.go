package rmac

import (
	"testing"

	"rmac/internal/frame"
	"rmac/internal/geom"
	"rmac/internal/mac"
	"rmac/internal/phy"
	"rmac/internal/sim"
)

// TestMixedUpABT reconstructs Fig 5: sender S is collecting a long ABT
// schedule while a nearby exchange (U -> V) completes entirely inside it,
// and V's ABT lands in one of S's silent windows — S wrongly credits a
// phantom receiver. This is only possible when the receiver list exceeds
// the §3.4 limit of 20: the limit caps the ABT collection window at
// 20·17 = 340 µs, below the 352 µs of the shortest nearby exchange, which
// is exactly why the refinement prevents the failure. We therefore raise
// the limit to 64 and use 40 receivers (one real, 39 phantoms).
//
// Geometry: S(0,0); real receiver R(40,0); V(70,20) — inside S's 75 m
// tone range; U(130,20) — out of S's range, 60 m from V.
//
// Timing (1-byte payloads): S's MRTS is 252 B = 1104 µs, data ends at
// 1309 µs, the 40 ABT windows span [1309, 1989] µs. U starts at 1310 µs
// (V's channel just cleared): its 168 µs MRTS decodes at V, V's data
// reception ends ≈ t+373 µs and V's index-0 ABT reaches S at ≈ 1683.4 µs —
// 16.6 µs inside S's window 22.
func TestMixedUpABT(t *testing.T) {
	eng := sim.NewEngine(30)
	cfg := phy.DefaultConfig()
	medium := phy.NewMedium(eng, cfg)
	limits := mac.DefaultLimits()
	limits.MaxReceivers = 64
	pos := []geom.Point{{X: 0, Y: 0}, {X: 40, Y: 0}, {X: 70, Y: 20}, {X: 130, Y: 20}}
	var nodes []*Node
	var uppers []*upper
	for i, p := range pos {
		r := medium.AddRadio(i, stationaryAt(p.X, p.Y))
		n := New(r, cfg, eng, limits)
		u := &upper{}
		n.SetUpper(u)
		nodes = append(nodes, n)
		uppers = append(uppers, u)
	}

	dests := []frame.Addr{frame.AddrFromID(1)}
	for i := 0; i < 39; i++ {
		dests = append(dests, frame.AddrFromID(100+i))
	}
	nodes[0].Send(&mac.SendRequest{Service: mac.Reliable, Dests: dests, Payload: []byte("x")})
	eng.Schedule(1310*sim.Microsecond, func() {
		nodes[3].Send(&mac.SendRequest{Service: mac.Reliable, Dests: addrs(2), Payload: []byte("y")})
	})
	eng.Run(5 * sim.Second)

	res := uppers[0].completes
	if len(res) == 0 {
		t.Fatal("S never completed")
	}
	phantomCredited := 0
	for _, c := range res {
		for _, a := range c.Delivered {
			if a.NodeID() >= 100 {
				phantomCredited++
			}
		}
	}
	if phantomCredited == 0 {
		t.Fatal("expected at least one phantom receiver credited by a mixed-up ABT (Fig 5)")
	}
	// The real receiver and V's exchange still worked.
	if len(uppers[1].delivered) != 1 || len(uppers[2].delivered) != 1 {
		t.Fatal("legitimate deliveries missing")
	}
}

// TestReceiverRoleSurvivesForeignFragment: while B waits for A's data
// (RBT up), a foreign MRTS fragment (aborted by our RBT) ends at B before
// the data arrives. B must keep the RBT up and still receive the data
// (the §3.3.2 note that abortion guarantees no collision at the node
// holding the RBT).
func TestReceiverRoleSurvivesForeignFragment(t *testing.T) {
	// A(0)-B(1) 70 m apart; C(2) at 60 m from B, 130 m from A (hidden
	// from A, hears B's tone). D(3) is C's target, away from B.
	w := newWorld(31, []geom.Point{{X: 0, Y: 0}, {X: 70, Y: 0}, {X: 130, Y: 0}, {X: 200, Y: 0}})
	w.nodes[0].Send(reliableReq("protected", 1))
	// A's MRTS ends at 168 µs; B's RBT rises ≈168.3 µs; C sensing it at
	// ≈168.5 µs. Start C's MRTS just before, so it aborts into a fragment
	// that reaches B during B's T_wf_rdata window.
	w.eng.Schedule(168*sim.Microsecond, func() {
		w.nodes[2].Send(reliableReq("c-d", 3))
	})
	w.eng.Run(5 * sim.Second)

	if len(w.uppers[1].delivered) != 1 || string(w.uppers[1].delivered[0].payload) != "protected" {
		t.Fatalf("B deliveries = %+v", w.uppers[1].delivered)
	}
	// A must have completed without retransmitting (the fragment must not
	// have broken the protected exchange) — or at worst with a retry if
	// timing shifted; the strong property is B's intact delivery above.
	if w.uppers[0].completes[0].Dropped {
		t.Fatal("A dropped")
	}
	// C must eventually deliver to D too.
	if len(w.uppers[3].delivered) != 1 {
		t.Fatal("D never received C's packet")
	}
}

// TestWfRDataExpiryWithoutData: a receiver that raised its RBT but whose
// sender never transmits the data frame must drop the RBT at T_wf_rdata
// and return to IDLE (step 5's "otherwise" branch). A bare PHY radio
// plays the sender so no data ever follows the MRTS.
func TestWfRDataExpiryWithoutData(t *testing.T) {
	eng := sim.NewEngine(99)
	cfg := phy.DefaultConfig()
	m := phy.NewMedium(eng, cfg)
	rSender := m.AddRadio(0, stationaryAt(0, 0))
	rSender.SetHandler(nopHandler{})
	rB := m.AddRadio(1, stationaryAt(50, 0))
	nB := New(rB, cfg, eng, mac.DefaultLimits())
	nB.SetUpper(&upper{})

	mrts := &frame.MRTS{Transmitter: frame.AddrFromID(0), Receivers: addrs(1)}
	rSender.StartTx(mrts)
	eng.Run(sim.Second)

	if nB.State() != StateIdle {
		t.Fatalf("B state = %v, want IDLE after T_wf_rdata expiry", nB.State())
	}
	if rB.OwnTone(phy.ToneRBT) {
		t.Fatal("B's RBT still on after expiry")
	}
	if nB.Stats().ABTSent != 0 {
		t.Fatal("B acked nonexistent data")
	}
}

// TestTonesQuiesce: after arbitrary traffic completes, no node is left
// emitting a tone and no node is left in a transient state.
func TestTonesQuiesce(t *testing.T) {
	w := newWorld(33, []geom.Point{
		{X: 0, Y: 0}, {X: 60, Y: 0}, {X: 120, Y: 0}, {X: 60, Y: 60}, {X: 0, Y: 60},
	})
	rng := w.eng.Rand()
	for i := 0; i < 30; i++ {
		src := rng.Intn(5)
		dst := (src + 1 + rng.Intn(4)) % 5
		at := sim.Time(rng.Intn(2000)) * sim.Millisecond
		w.eng.Schedule(at, func() {
			w.nodes[src].Send(reliableReq("q", dst))
		})
	}
	w.eng.Run(60 * sim.Second)
	for i, n := range w.nodes {
		r := w.medium.Radios()[i]
		if r.OwnTone(phy.ToneRBT) || r.OwnTone(phy.ToneABT) {
			t.Fatalf("node %d left a tone on", i)
		}
		if r.Transmitting() {
			t.Fatalf("node %d still transmitting", i)
		}
		if n.State() != StateIdle {
			t.Fatalf("node %d in state %v at quiescence", i, n.State())
		}
	}
}

// TestReliableThenUnreliableInterleaved: one node's queue mixes services;
// both must complete in FIFO order.
func TestReliableThenUnreliableInterleaved(t *testing.T) {
	w := newWorld(34, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}})
	w.nodes[0].Send(reliableReq("r1", 1))
	w.nodes[0].Send(&mac.SendRequest{Service: mac.Unreliable, Payload: []byte("u1")})
	w.nodes[0].Send(reliableReq("r2", 1))
	w.eng.Run(sim.Second)
	got := w.uppers[1].delivered
	if len(got) != 3 {
		t.Fatalf("deliveries = %d, want 3", len(got))
	}
	order := []string{"r1", "u1", "r2"}
	for i, want := range order {
		if string(got[i].payload) != want {
			t.Fatalf("delivery %d = %q, want %q", i, got[i].payload, want)
		}
	}
	if got[0].info.Reliable == false || got[1].info.Reliable == true {
		t.Fatal("service flags wrong")
	}
}

// TestRetryLimitConfigurable: a retry limit of 0 drops after the first
// failed attempt.
func TestRetryLimitConfigurable(t *testing.T) {
	eng := sim.NewEngine(77)
	cfg := phy.DefaultConfig()
	m := phy.NewMedium(eng, cfg)
	r := m.AddRadio(0, stationaryAt(0, 0))
	limits := mac.DefaultLimits()
	limits.RetryLimit = 0
	n := New(r, cfg, eng, limits)
	u := &upper{}
	n.SetUpper(u)
	n.Send(reliableReq("never", 1)) // nobody out there
	eng.Run(5 * sim.Second)
	if n.Stats().MRTSSent != 1 || n.Stats().Drops != 1 || n.Stats().Retransmissions != 0 {
		t.Fatalf("stats = %+v", n.Stats())
	}
}

// --- helpers ---

type nopHandler struct{}

func (nopHandler) OnFrameReceived(frame.Frame, bool, sim.Time) {}
func (nopHandler) OnCarrierChange(bool)                        {}
func (nopHandler) OnToneChange(phy.Tone, bool)                 {}
func (nopHandler) OnTxDone(frame.Frame)                        {}

func stationaryAt(x, y float64) mobilityPoint { return mobilityPoint{geom.Point{X: x, Y: y}} }

type mobilityPoint struct{ p geom.Point }

func (m mobilityPoint) PositionAt(sim.Time) geom.Point { return m.p }
