package mac

// ReqPool is a free list of SendRequests, the upper-layer analogue of the
// frame pool: traffic producers (the multicast app, the routing beacons)
// acquire requests here, the MAC carries them through its queue, and the
// upper layer recycles them from OnSendComplete once the TxResult has been
// consumed. A recycled request keeps its Dests and Payload capacity, so a
// steady-state source allocates no per-packet memory.
//
// Each producer owns its own pool (no locking); requests constructed
// directly — tests, external callers — have no pool and Recycle is a no-op
// for them.
type ReqPool struct {
	free []*SendRequest
}

// Get acquires a request with empty, capacity-preserving Dests and
// Payload slices.
func (p *ReqPool) Get() *SendRequest {
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free = p.free[:n-1]
		*r = SendRequest{
			Dests:   r.Dests[:0],
			Payload: r.Payload[:0],
			pool:    p,
			live:    true,
		}
		return r
	}
	return &SendRequest{pool: p, live: true}
}

// Recycle returns a pooled request to its free list. The request and both
// of its slices must not be touched afterwards. Recycling an unpooled
// request is a no-op; recycling a pooled request twice panics.
func (r *SendRequest) Recycle() {
	if r == nil || r.pool == nil {
		return
	}
	if !r.live {
		panic("mac: double recycle of SendRequest")
	}
	r.live = false
	r.Meta = nil
	r.pool.free = append(r.pool.free, r)
}
