package lbp

import (
	"testing"

	"rmac/internal/frame"
	"rmac/internal/geom"
	"rmac/internal/mac"
	"rmac/internal/mobility"
	"rmac/internal/phy"
	"rmac/internal/sim"
)

type upper struct {
	delivered []delivery
	completes []mac.TxResult
}

type delivery struct {
	payload []byte
	info    mac.RxInfo
}

// OnDeliver copies the payload out: it aliases pooled frame storage that
// is recycled after the callback returns.
func (u *upper) OnDeliver(payload []byte, info mac.RxInfo) {
	u.delivered = append(u.delivered, delivery{append([]byte(nil), payload...), info})
}

// OnSendComplete copies the loaned Delivered/Failed slices before keeping
// the result, per the mac.TxResult contract.
func (u *upper) OnSendComplete(res mac.TxResult) {
	res.Delivered = append([]frame.Addr(nil), res.Delivered...)
	res.Failed = append([]frame.Addr(nil), res.Failed...)
	u.completes = append(u.completes, res)
}

type world struct {
	eng    *sim.Engine
	nodes  []*Node
	uppers []*upper
}

func newWorld(seed int64, pos []geom.Point) *world {
	eng := sim.NewEngine(seed)
	cfg := phy.DefaultConfig()
	m := phy.NewMedium(eng, cfg)
	w := &world{eng: eng}
	for i, p := range pos {
		r := m.AddRadio(i, mobility.Stationary{P: p})
		n := New(r, cfg, eng, mac.DefaultLimits())
		u := &upper{}
		n.SetUpper(u)
		w.nodes = append(w.nodes, n)
		w.uppers = append(w.uppers, u)
	}
	return w
}

func addrs(ids ...int) []frame.Addr {
	out := make([]frame.Addr, len(ids))
	for i, id := range ids {
		out[i] = frame.AddrFromID(id)
	}
	return out
}

func reliableReq(payload string, dests ...int) *mac.SendRequest {
	return &mac.SendRequest{Service: mac.Reliable, Dests: addrs(dests...), Payload: []byte(payload)}
}

func TestLeaderMulticastBasic(t *testing.T) {
	w := newWorld(1, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 0, Y: 50}})
	w.nodes[0].Send(reliableReq("lbp-data", 1, 2)) // leader = node 1
	w.eng.Run(sim.Second)
	for _, id := range []int{1, 2} {
		if len(w.uppers[id].delivered) != 1 || string(w.uppers[id].delivered[0].payload) != "lbp-data" {
			t.Fatalf("node %d deliveries = %+v", id, w.uppers[id].delivered)
		}
	}
	comp := w.uppers[0].completes
	if len(comp) != 1 || comp[0].Dropped || len(comp[0].Delivered) != 2 {
		t.Fatalf("completion = %+v", comp)
	}
	// Exactly one CTS and one ACK were exchanged (leader only).
	st := w.nodes[0].Stats()
	cfg := phy.DefaultConfig()
	wantRx := cfg.TxDuration(frame.CTSLen) + cfg.TxDuration(frame.ACKLen)
	if st.CtrlRxTime != wantRx {
		t.Fatalf("sender CtrlRxTime = %v, want %v (one CTS + one ACK)", st.CtrlRxTime, wantRx)
	}
	// Much cheaper than BMMM's 2n pairs: one RTS sent.
	if st.CtrlTxTime != cfg.TxDuration(frame.RTSLen) {
		t.Fatalf("sender CtrlTxTime = %v", st.CtrlTxTime)
	}
}

// TestSilentReceiverGap pins LBP's reliability gap: a receiver out of the
// sender's range never gets the data, yet the sender (leader ACKed)
// believes the multicast succeeded.
func TestSilentReceiverGap(t *testing.T) {
	w := newWorld(2, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 400, Y: 0}})
	w.nodes[0].Send(reliableReq("gap", 1, 2)) // node 2 unreachable, node 1 leader
	w.eng.Run(5 * sim.Second)
	comp := w.uppers[0].completes
	if len(comp) != 1 {
		t.Fatalf("completes = %d", len(comp))
	}
	if comp[0].Dropped {
		t.Fatal("sender dropped despite clean leader ACK")
	}
	// The sender *believes* both receivers got it...
	if len(comp[0].Delivered) != 2 {
		t.Fatalf("claimed delivered = %v", comp[0].Delivered)
	}
	// ...but node 2 received nothing: negative feedback cannot signal
	// what was never solicited.
	if len(w.uppers[2].delivered) != 0 {
		t.Fatal("unreachable node received data?!")
	}
}

func TestLeaderLossRetries(t *testing.T) {
	// Leader out of range: no CTS, retries then drop.
	w := newWorld(3, []geom.Point{{X: 0, Y: 0}, {X: 400, Y: 0}, {X: 50, Y: 0}})
	w.nodes[0].Send(reliableReq("x", 1, 2)) // leader (node 1) unreachable
	w.eng.Run(30 * sim.Second)
	comp := w.uppers[0].completes
	if len(comp) != 1 || !comp[0].Dropped {
		t.Fatalf("completion = %+v", comp)
	}
	st := w.nodes[0].Stats()
	if st.Retransmissions != uint64(mac.DefaultLimits().RetryLimit) {
		t.Fatalf("retransmissions = %d", st.Retransmissions)
	}
	if st.DataTxTime != 0 {
		t.Fatal("data sent without CTS")
	}
}

func TestUnreliableBroadcast(t *testing.T) {
	w := newWorld(4, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}})
	w.nodes[0].Send(&mac.SendRequest{Service: mac.Unreliable, Payload: []byte("beacon")})
	w.eng.Run(sim.Second)
	if len(w.uppers[1].delivered) != 1 || w.uppers[1].delivered[0].info.Reliable {
		t.Fatalf("broadcast = %+v", w.uppers[1].delivered)
	}
}

func TestSequentialPacketsDedup(t *testing.T) {
	w := newWorld(5, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 0, Y: 50}})
	for i := 0; i < 4; i++ {
		w.nodes[0].Send(reliableReq("pkt", 1, 2))
	}
	w.eng.Run(5 * sim.Second)
	if len(w.uppers[0].completes) != 4 {
		t.Fatalf("completes = %d", len(w.uppers[0].completes))
	}
	for _, id := range []int{1, 2} {
		if len(w.uppers[id].delivered) != 4 {
			t.Fatalf("node %d deliveries = %d", id, len(w.uppers[id].delivered))
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int, uint64) {
		w := newWorld(6, []geom.Point{{X: 0, Y: 0}, {X: 60, Y: 0}, {X: 120, Y: 0}})
		for i := 0; i < 5; i++ {
			w.nodes[0].Send(reliableReq("a", 1))
			w.nodes[2].Send(reliableReq("c", 1))
		}
		w.eng.Run(20 * sim.Second)
		return len(w.uppers[1].delivered), w.nodes[0].Stats().Retransmissions
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatal("nondeterministic")
	}
}
