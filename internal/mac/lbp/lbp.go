// Package lbp implements the Leader Based Protocol of Kuri and Kasera
// (Wireless Networks 2001) as described in §2 of the RMAC paper: one
// receiver — the leader — answers CTS and ACK on behalf of the multicast
// group, so the sender never suffers feedback collision; non-leader
// receivers that detect a corrupted data frame transmit a NAK timed to
// collide with (garble) the leader's ACK, forcing a retransmission.
//
// Simplifications, documented per DESIGN.md:
//
//   - The leader is the first address of the destination list (the paper
//     itself notes that "selecting and maintaining a leader ... are not
//     easy tasks"; we sidestep election).
//   - Group membership for one exchange is learned by overhearing the
//     sender's RTS (real LBP uses a multicast group address). A receiver
//     that misses the RTS neither receives nor complains — precisely the
//     receiver-initiated reliability gap §2 attributes to negative
//     feedback schemes, which this implementation makes measurable.
//   - NCTS (leader busy) is modelled as a missing CTS.
//
// A successful exchange therefore only proves the leader received the
// data; TxResult.Delivered reports the sender's *belief* (all receivers)
// and the application-level delivery ratio exposes the true gap.
package lbp

import (
	"fmt"

	"rmac/internal/audit"
	"rmac/internal/frame"
	"rmac/internal/mac"
	"rmac/internal/mac/csma"
	"rmac/internal/phy"
	"rmac/internal/sim"
)

const respSlack = 2*phy.Tau + 2*sim.Microsecond

type state int

const (
	stIdle state = iota
	stTxRTS
	stWfCTS
	stTxData
	stWfACK
	stTxUData
	stTxResp
	stGap
)

var stateNames = [...]string{"IDLE", "TX_RTS", "WF_CTS", "TX_DATA", "WF_ACK", "TX_UDATA", "TX_RESP", "GAP"}

func (s state) String() string { return stateNames[s] }

type txContext struct {
	req     *mac.SendRequest
	retries int
	seq     uint16
}

// peerState tracks this node's receiver-side relationship with a sender.
type peerState struct {
	// expecting is set when we overhear an RTS from the sender whose
	// exchange includes us (leader or not); it arms NAK generation until
	// armedUntil (one exchange worth of time).
	expecting  bool
	armedUntil sim.Time
	leader     bool
	delivered  uint16
	deliverOK  bool
	haveSeq    uint16
	have       bool
}

// Node is one LBP instance bound to a radio.
type Node struct {
	eng    *sim.Engine
	radio  *phy.Radio
	cfg    phy.Config
	addr   frame.Addr
	limits mac.Limits
	upper  mac.UpperLayer

	st     state
	queue  *mac.Queue
	dcf    *csma.DCF
	nav    *csma.NAV
	stats  mac.Stats
	frames *frame.Pool
	aud    *audit.Auditor

	cur   *txContext
	timer *sim.Timer
	peers map[frame.Addr]*peerState
	seq   uint16

	// ctxBuf backs cur (one packet in flight at a time); pendingResp is
	// an acquired CTS/ACK/NAK awaiting its SIFS-deferred transmission.
	ctxBuf      txContext
	pendingResp frame.Frame

	// deferred counts scheduled exchange steps (SIFS gaps, pending
	// responses) not yet fired, so the liveness audit sees them.
	deferred int
}

var _ mac.MAC = (*Node)(nil)
var _ phy.Handler = (*Node)(nil)

// New creates an LBP node on the given radio and installs itself as the
// radio's PHY handler.
func New(radio *phy.Radio, cfg phy.Config, eng *sim.Engine, limits mac.Limits) *Node {
	n := &Node{
		eng:    eng,
		radio:  radio,
		cfg:    cfg,
		addr:   frame.AddrFromID(radio.ID()),
		limits: limits,
		queue:  mac.NewQueue(limits.QueueCap),
		peers:  make(map[frame.Addr]*peerState),
		frames: radio.Frames(),
	}
	n.nav = csma.NewNAV(eng, func() { n.dcf.ChannelMaybeIdle() })
	n.dcf = csma.NewDCF(eng, eng.Rand(), n.mediumIdle, n.onWin)
	n.timer = sim.NewTimer(eng, n.onTimeout)
	radio.SetHandler(n)
	return n
}

// Addr implements mac.MAC.
func (n *Node) Addr() frame.Addr { return n.addr }

// Stats implements mac.MAC.
func (n *Node) Stats() *mac.Stats { return &n.stats }

// SetUpper implements mac.MAC.
func (n *Node) SetUpper(u mac.UpperLayer) { n.upper = u }

// SetAuditor attaches the protocol-invariant auditor. LBP declares no
// ReliableOutcome: a clean leader ACK proves only the leader's reception,
// so the sender's "all delivered" belief is protocol semantics, not an
// ACK-complete contract the auditor could hold it to.
func (n *Node) SetAuditor(a *audit.Auditor) { n.aud = a }

// AuditContention implements audit.ContentionReporter.
func (n *Node) AuditContention() (wants, counting, gated, idle bool) {
	armed, counting, difsPending := n.dcf.AuditState()
	return armed, counting, difsPending, n.mediumIdle()
}

// AuditNAVBusy implements audit.NAVReporter.
func (n *Node) AuditNAVBusy() bool { return n.nav.Busy() }

// AuditPending implements audit.PendingReporter.
func (n *Node) AuditPending() (queued int, inFlight bool) {
	return n.queue.Len(), n.cur != nil
}

// Liveness implements mac.LivenessReporter.
func (n *Node) Liveness() mac.Liveness {
	return mac.Liveness{
		State: n.st.String(),
		Idle:  n.st == stIdle && n.cur == nil && n.queue.Len() == 0,
		Pending: n.timer.Pending() || n.radio.Transmitting() ||
			n.radio.CarrierSensed() || n.dcf.Armed() || n.deferred > 0,
	}
}

// Send implements mac.MAC.
func (n *Node) Send(req *mac.SendRequest) bool {
	if req.Service == mac.Reliable && len(req.Dests) == 0 {
		panic("lbp: Reliable Send needs at least one destination")
	}
	req.EnqueuedAt = n.eng.Now()
	var pushed bool
	if req.Urgent {
		pushed = n.queue.PushFront(req)
	} else {
		pushed = n.queue.Push(req)
	}
	if !pushed {
		n.stats.QueueDrops++
		return false
	}
	n.stats.Enqueued++
	n.trySend()
	return true
}

func (n *Node) mediumIdle() bool {
	return !n.radio.DataChannelBusy() && !n.nav.Busy()
}

func (n *Node) trySend() {
	if n.st != stIdle || n.dcf.Armed() {
		return
	}
	if n.cur == nil {
		req := n.queue.Pop()
		if req == nil {
			return
		}
		n.seq++
		n.ctxBuf = txContext{req: req, seq: n.seq}
		n.cur = &n.ctxBuf
		if req.Service == mac.Reliable {
			n.stats.ReliableToTransmit++
		}
	}
	n.dcf.Arm()
}

func (n *Node) startTx(f frame.Frame) sim.Time {
	n.dcf.ChannelBusy()
	return n.radio.StartTx(f)
}

func (n *Node) leader() frame.Addr { return n.cur.req.Dests[0] }

func (n *Node) onWin() {
	if n.cur == nil || n.st != stIdle {
		return
	}
	n.aud.Initiation(n.radio.ID())
	if n.cur.req.Service == mac.Unreliable {
		dest := frame.Broadcast
		if len(n.cur.req.Dests) > 0 {
			dest = n.cur.req.Dests[0]
		}
		n.st = stTxUData
		f := n.frames.Data()
		f.Receiver, f.Transmitter, f.Seq = dest, n.addr, n.cur.seq
		f.Payload = append(f.Payload, n.cur.req.Payload...)
		n.startTx(f)
		return
	}
	n.st = stTxRTS
	c := n.cfg
	tail := phy.SIFS + c.TxDuration(frame.CTSLen) +
		phy.SIFS + c.TxDuration(frame.Data80211Overhead+len(n.cur.req.Payload)) +
		phy.SIFS + c.TxDuration(frame.ACKLen)
	f := n.frames.RTS()
	f.Duration = durationMicros(tail)
	f.Receiver = n.leader()
	f.Transmitter = n.addr
	dur := n.startTx(f)
	n.stats.CtrlTxTime += dur
}

func durationMicros(d sim.Time) uint16 {
	us := int64(d / sim.Microsecond)
	if us > 65535 {
		us = 65535
	}
	return uint16(us)
}

// OnTxDone implements phy.Handler.
func (n *Node) OnTxDone(f frame.Frame) {
	n.dcf.ChannelMaybeIdle()
	switch n.st {
	case stTxRTS:
		n.st = stWfCTS
		n.timer.Start(phy.SIFS + n.cfg.TxDuration(frame.CTSLen) + respSlack)
	case stTxData:
		n.st = stWfACK
		n.timer.Start(phy.SIFS + n.cfg.TxDuration(frame.ACKLen) + respSlack)
	case stTxUData:
		n.stats.UnreliableSent++
		req := n.cur.req
		n.cur = nil
		n.st = stIdle
		n.dcf.Backoff().Reset()
		n.dcf.Backoff().Draw()
		if n.upper != nil {
			n.upper.OnSendComplete(mac.TxResult{Req: req})
		}
		n.trySend()
	case stTxResp:
		n.st = stIdle
		n.trySend()
	default:
		panic(fmt.Sprintf("lbp: node %v OnTxDone in state %v", n.addr, n.st))
	}
}

func (n *Node) onTimeout() {
	switch n.st {
	case stWfCTS, stWfACK:
		// Missing CTS (or NCTS in real LBP), or ACK garbled by NAKs /
		// lost: retransmission round.
		n.roundFailed()
	}
}

func (n *Node) sendData() {
	n.st = stTxData
	tail := phy.SIFS + n.cfg.TxDuration(frame.ACKLen)
	f := n.frames.Data()
	f.Duration = durationMicros(tail)
	f.Receiver = frame.Broadcast
	f.Transmitter = n.addr
	f.Seq = n.cur.seq
	f.Payload = append(f.Payload, n.cur.req.Payload...)
	dur := n.startTx(f)
	n.stats.DataTxTime += dur
}

// Tags for the node's sim.Caller dispatch.
const (
	tagData int32 = iota // SIFS-deferred data transmission (after CTS)
	tagResp              // SIFS-deferred CTS/ACK/NAK response
)

// Call implements sim.Caller: the SIFS-deferred continuations, scheduled
// closure-free through the engine's tagged-event path.
func (n *Node) Call(tag int32) {
	switch tag {
	case tagData:
		n.deferred--
		if n.cur == nil || n.radio.Transmitting() {
			return
		}
		n.sendData()
	case tagResp:
		n.deferred--
		f := n.pendingResp
		n.pendingResp = nil
		if f == nil {
			return
		}
		if n.st != stIdle || n.radio.Transmitting() {
			frame.Release(f) // busy with our own exchange; solicitation lost
			return
		}
		n.st = stTxResp
		dur := n.startTx(f)
		n.stats.CtrlTxTime += dur
	}
}

func (n *Node) afterSIFS() {
	n.st = stGap
	n.deferred++
	n.eng.AfterCall(phy.SIFS, n, tagData)
}

func (n *Node) roundFailed() {
	n.st = stIdle
	n.cur.retries++
	if n.cur.retries > n.limits.RetryLimit {
		n.completeReliable(true)
		return
	}
	n.stats.Retransmissions++
	n.dcf.Backoff().Fail()
	n.dcf.Backoff().Draw()
	n.trySend()
}

func (n *Node) completeReliable(dropped bool) {
	n.st = stIdle
	ctx := n.cur
	n.cur = nil
	res := mac.TxResult{Req: ctx.req, Retries: ctx.retries}
	if dropped {
		n.stats.Drops++
		res.Dropped = true
		res.Failed = ctx.req.Dests // loaned; see mac.TxResult
	} else {
		n.stats.ReliableDelivered++
		// The sender's belief: a clean leader ACK means everyone got it.
		// Receivers that missed the RTS never complained — the
		// reliability gap of leader/negative-feedback schemes.
		res.Delivered = ctx.req.Dests // loaned; see mac.TxResult
	}
	n.dcf.Backoff().Reset()
	n.dcf.Backoff().Draw()
	if n.upper != nil {
		n.upper.OnSendComplete(res)
	}
	n.trySend()
}

// --- Reception ---------------------------------------------------------------

func (n *Node) peer(a frame.Addr) *peerState {
	p := n.peers[a]
	if p == nil {
		p = &peerState{}
		n.peers[a] = p
	}
	return p
}

// OnFrameReceived implements phy.Handler.
func (n *Node) OnFrameReceived(f frame.Frame, ok bool, rxStart sim.Time) {
	if !ok {
		// LBP receivers NAK on corrupted *data* frames (Kuri & Kasera).
		// A corrupted reception shorter than any data frame is a control
		// frame or fragment from someone else's exchange; NAKing those
		// would garble unrelated ACKs across the neighbourhood.
		if n.eng.Now()-rxStart >= n.cfg.TxDuration(frame.Data80211Overhead) {
			n.onCorrupt(rxStart)
		}
		return
	}
	switch g := f.(type) {
	case *frame.RTS:
		n.onRTS(g)
	case *frame.CTS:
		if n.st == stWfCTS && g.Receiver == n.addr {
			n.stats.CtrlRxTime += n.cfg.TxDuration(g.WireSize())
			n.timer.Stop()
			n.afterSIFS()
			return
		}
		if g.Receiver != n.addr {
			n.nav.Set(sim.Time(g.Duration) * sim.Microsecond)
			n.dcf.ChannelBusy()
		}
	case *frame.Data:
		n.onData(g, rxStart)
	case *frame.ACK:
		if n.st == stWfACK && g.Receiver == n.addr {
			n.stats.CtrlRxTime += n.cfg.TxDuration(g.WireSize())
			n.timer.Stop()
			n.completeReliable(false)
			return
		}
		if g.Receiver != n.addr {
			n.nav.Set(sim.Time(g.Duration) * sim.Microsecond)
			n.dcf.ChannelBusy()
		}
	}
}

// onRTS arms the receiver side. The RTS names the leader; every other
// group member learns of the exchange by overhearing it (see the package
// comment for the membership simplification: any node overhearing the
// RTS from its current senders arms expectation — harmless for
// non-members, who simply never receive matching data).
func (n *Node) onRTS(g *frame.RTS) {
	p := n.peer(g.Transmitter)
	p.expecting = true
	p.armedUntil = n.eng.Now() + sim.Time(g.Duration)*sim.Microsecond + sim.Millisecond
	p.leader = g.Receiver == n.addr
	if p.leader {
		n.stats.CtrlRxTime += n.cfg.TxDuration(g.WireSize())
		cts := n.frames.CTS()
		cts.Duration = subDuration(g.Duration, phy.SIFS+n.cfg.TxDuration(frame.CTSLen))
		cts.Receiver = g.Transmitter
		cts.Transmitter = n.addr
		n.respond(cts)
		return
	}
	if g.Receiver != n.addr {
		// Third parties still honour the NAV; group members do too while
		// the exchange lasts.
		n.nav.Set(sim.Time(g.Duration) * sim.Microsecond)
		n.dcf.ChannelBusy()
	}
}

// onData delivers reliable data to expecting receivers; the leader ACKs.
func (n *Node) onData(d *frame.Data, rxStart sim.Time) {
	if d.Duration > 0 {
		p := n.peer(d.Transmitter)
		if p.expecting && n.eng.Now() < p.armedUntil && (d.Receiver == n.addr || d.Receiver.IsBroadcast()) {
			p.have = true
			p.haveSeq = d.Seq
			n.deliver(d, true, rxStart)
			if p.leader {
				ack := n.frames.ACK()
				ack.Receiver, ack.Transmitter = d.Transmitter, n.addr
				n.respond(ack)
			}
			return
		}
		n.nav.Set(sim.Time(d.Duration) * sim.Microsecond)
		n.dcf.ChannelBusy()
		return
	}
	if d.Receiver == n.addr || d.Receiver.IsBroadcast() {
		n.deliver(d, false, rxStart)
	}
}

// onCorrupt implements LBP's negative acknowledgment: an expecting
// non-leader that sees a corrupted frame during an armed exchange
// transmits a NAK in the ACK slot, garbling the leader's ACK at the
// sender and forcing a retransmission. (We cannot know the corrupted
// frame's sender; LBP receivers can't either — they NAK on any CRC
// failure while armed.)
func (n *Node) onCorrupt(sim.Time) {
	armed := false
	now := n.eng.Now()
	for _, p := range n.peers {
		if p.expecting && !p.leader && now < p.armedUntil {
			armed = true
			break
		}
	}
	if !armed || n.st != stIdle {
		return
	}
	// NAK is an ACK-sized control frame (the paper sizes NAK like ACK).
	nak := n.frames.ACK()
	nak.Receiver, nak.Transmitter = frame.Broadcast, n.addr
	n.respond(nak)
}

func (n *Node) deliver(d *frame.Data, reliable bool, rxStart sim.Time) {
	p := n.peer(d.Transmitter)
	if reliable {
		if p.deliverOK && p.delivered == d.Seq {
			return
		}
		p.deliverOK = true
		p.delivered = d.Seq
	}
	if n.upper != nil {
		n.upper.OnDeliver(d.Payload, mac.RxInfo{
			From:     d.Transmitter,
			Reliable: reliable,
			Seq:      uint32(d.Seq),
			RxStart:  rxStart,
			RxEnd:    n.eng.Now(),
		})
	}
}

func subDuration(d uint16, sub sim.Time) uint16 {
	s := int64(sub / sim.Microsecond)
	if int64(d) <= s {
		return 0
	}
	return d - uint16(s)
}

// respond transmits an acquired CTS/ACK/NAK one SIFS after the soliciting
// frame (via the tagResp tagged event); the frame is released in Call if
// the response cannot be sent.
func (n *Node) respond(f frame.Frame) {
	if n.pendingResp != nil {
		// Two solicitations within one SIFS (e.g. a NAK trigger racing a
		// leader duty): keep the first, drop the newcomer.
		frame.Release(f)
		return
	}
	n.deferred++
	n.pendingResp = f
	n.eng.AfterCall(phy.SIFS, n, tagResp)
}

// OnCarrierChange implements phy.Handler.
func (n *Node) OnCarrierChange(busy bool) {
	if busy {
		n.dcf.ChannelBusy()
	} else {
		n.dcf.ChannelMaybeIdle()
	}
}

// OnToneChange implements phy.Handler; LBP has no busy-tone hardware.
func (n *Node) OnToneChange(phy.Tone, bool) {}
