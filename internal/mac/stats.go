package mac

import (
	"rmac/internal/sim"
)

// Stats accumulates the per-node counters behind every metric in §4:
// packet drop ratio, retransmission ratio, transmission overhead ratio,
// MRTS length distribution and MRTS abortion ratio.
type Stats struct {
	// Queueing.
	Enqueued   uint64 // packets accepted into the queue
	QueueDrops uint64 // packets rejected on a full queue

	// Reliable Send accounting ("to be transmitted" in the paper's
	// denominators counts reliable packets handed to the contention
	// process).
	ReliableToTransmit uint64 // reliable packets whose transmission began
	ReliableDelivered  uint64 // reliable packets fully acknowledged
	Retransmissions    uint64 // retransmission cycles beyond each first attempt
	Drops              uint64 // packets dropped at the retry limit

	// Unreliable Send accounting.
	UnreliableSent uint64

	// Airtime, split as the transmission overhead ratio requires
	// (§4.3.2): control frames sent and received, ABT checking time, and
	// reliable data airtime.
	CtrlTxTime   sim.Time
	CtrlRxTime   sim.Time
	ABTCheckTime sim.Time
	DataTxTime   sim.Time

	// RMAC specifics.
	MRTSSent    uint64 // MRTS transmissions started (aborted ones included)
	MRTSAborted uint64 // MRTS transmissions aborted on RBT detection
	MRTSLens    []int  // wire length in bytes of every MRTS sent

	// ABT emissions (receiver side).
	ABTSent uint64
}

// DropRatio returns R_drop = drops / packets to be transmitted (§4.2.2).
func (s *Stats) DropRatio() float64 {
	if s.ReliableToTransmit == 0 {
		return 0
	}
	return float64(s.Drops) / float64(s.ReliableToTransmit)
}

// RetxRatio returns R_retx = retransmissions / packets to be transmitted
// (§4.3.1).
func (s *Stats) RetxRatio() float64 {
	if s.ReliableToTransmit == 0 {
		return 0
	}
	return float64(s.Retransmissions) / float64(s.ReliableToTransmit)
}

// OverheadRatio returns R_txoh = (control TX + control RX + ABT checking)
// / reliable data TX time (§4.3.2).
func (s *Stats) OverheadRatio() float64 {
	if s.DataTxTime == 0 {
		return 0
	}
	return float64(s.CtrlTxTime+s.CtrlRxTime+s.ABTCheckTime) / float64(s.DataTxTime)
}

// AbortRatio returns R_abort = MRTSs aborted / MRTS transmissions (§4.3.4).
func (s *Stats) AbortRatio() float64 {
	if s.MRTSSent == 0 {
		return 0
	}
	return float64(s.MRTSAborted) / float64(s.MRTSSent)
}

// NonLeaf reports whether the node acted as a forwarder (attempted at
// least one reliable transmission); the paper averages its per-node ratios
// over non-leaf nodes only.
func (s *Stats) NonLeaf() bool { return s.ReliableToTransmit > 0 }
