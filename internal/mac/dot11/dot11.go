// Package dot11 implements plain IEEE 802.11 DCF as the paper's §1
// characterises it: "IEEE 802.11 ... only supports reliability for
// unicast with the RTS/CTS/DATA/ACK scheme; and for multicast or
// broadcast, it simply transmits the data frames once without any
// recovery mechanism."
//
// Reliable Send with one destination runs the full RTS/CTS/DATA/ACK
// exchange with retransmissions; Reliable Send with several destinations
// degrades — exactly as the standard does — to a single unacknowledged
// broadcast data frame (TxResult reports Delivered for what the protocol
// *attempted*; the application-level delivery ratio shows the loss the
// paper's introduction motivates RMAC with). The Unreliable service is
// the same single broadcast.
package dot11

import (
	"fmt"

	"rmac/internal/audit"
	"rmac/internal/frame"
	"rmac/internal/mac"
	"rmac/internal/mac/csma"
	"rmac/internal/phy"
	"rmac/internal/sim"
)

const respSlack = 2*phy.Tau + 2*sim.Microsecond

type state int

const (
	stIdle state = iota
	stTxRTS
	stWfCTS
	stTxData
	stWfACK
	stTxBcast
	stTxResp
	stGap
)

var stateNames = [...]string{"IDLE", "TX_RTS", "WF_CTS", "TX_DATA", "WF_ACK", "TX_BCAST", "TX_RESP", "GAP"}

func (s state) String() string { return stateNames[s] }

type txContext struct {
	req     *mac.SendRequest
	retries int
	seq     uint16
	unicast bool
}

type peerDedup struct {
	delivered uint16
	deliverOK bool
}

// Node is one 802.11 DCF instance bound to a radio.
type Node struct {
	eng    *sim.Engine
	radio  *phy.Radio
	cfg    phy.Config
	addr   frame.Addr
	limits mac.Limits
	upper  mac.UpperLayer

	st     state
	queue  *mac.Queue
	dcf    *csma.DCF
	nav    *csma.NAV
	stats  mac.Stats
	frames *frame.Pool
	aud    *audit.Auditor

	cur   *txContext
	timer *sim.Timer
	peers map[frame.Addr]*peerDedup
	seq   uint16

	// ctxBuf backs cur (one packet in flight at a time); pendingResp is
	// an acquired CTS/ACK awaiting its SIFS-deferred transmission.
	ctxBuf      txContext
	pendingResp frame.Frame

	// deferred counts scheduled exchange steps (SIFS gaps, pending
	// responses) not yet fired, so the liveness audit sees them.
	deferred int
}

var _ mac.MAC = (*Node)(nil)
var _ phy.Handler = (*Node)(nil)

// New creates an 802.11 node on the given radio and installs itself as
// the radio's PHY handler.
func New(radio *phy.Radio, cfg phy.Config, eng *sim.Engine, limits mac.Limits) *Node {
	n := &Node{
		eng:    eng,
		radio:  radio,
		cfg:    cfg,
		addr:   frame.AddrFromID(radio.ID()),
		limits: limits,
		queue:  mac.NewQueue(limits.QueueCap),
		peers:  make(map[frame.Addr]*peerDedup),
		frames: radio.Frames(),
	}
	n.nav = csma.NewNAV(eng, func() { n.dcf.ChannelMaybeIdle() })
	n.dcf = csma.NewDCF(eng, eng.Rand(), n.mediumIdle, n.onWin)
	n.timer = sim.NewTimer(eng, n.onTimeout)
	radio.SetHandler(n)
	return n
}

// Addr implements mac.MAC.
func (n *Node) Addr() frame.Addr { return n.addr }

// Stats implements mac.MAC.
func (n *Node) Stats() *mac.Stats { return &n.stats }

// SetUpper implements mac.MAC.
func (n *Node) SetUpper(u mac.UpperLayer) { n.upper = u }

// SetAuditor attaches the protocol-invariant auditor; the node declares
// DCF-won initiations and unicast reliable outcomes to it. The one-shot
// reliable broadcast is not declared: it completes on attempt by design
// (§1), so there is no ACK-complete contract to check.
func (n *Node) SetAuditor(a *audit.Auditor) { n.aud = a }

// AuditContention implements audit.ContentionReporter.
func (n *Node) AuditContention() (wants, counting, gated, idle bool) {
	armed, counting, difsPending := n.dcf.AuditState()
	return armed, counting, difsPending, n.mediumIdle()
}

// AuditNAVBusy implements audit.NAVReporter.
func (n *Node) AuditNAVBusy() bool { return n.nav.Busy() }

// AuditPending implements audit.PendingReporter.
func (n *Node) AuditPending() (queued int, inFlight bool) {
	return n.queue.Len(), n.cur != nil
}

// Liveness implements mac.LivenessReporter.
func (n *Node) Liveness() mac.Liveness {
	return mac.Liveness{
		State: n.st.String(),
		Idle:  n.st == stIdle && n.cur == nil && n.queue.Len() == 0,
		Pending: n.timer.Pending() || n.radio.Transmitting() ||
			n.radio.CarrierSensed() || n.dcf.Armed() || n.deferred > 0,
	}
}

// Send implements mac.MAC.
func (n *Node) Send(req *mac.SendRequest) bool {
	if req.Service == mac.Reliable && len(req.Dests) == 0 {
		panic("dot11: Reliable Send needs at least one destination")
	}
	req.EnqueuedAt = n.eng.Now()
	var pushed bool
	if req.Urgent {
		pushed = n.queue.PushFront(req)
	} else {
		pushed = n.queue.Push(req)
	}
	if !pushed {
		n.stats.QueueDrops++
		return false
	}
	n.stats.Enqueued++
	n.trySend()
	return true
}

func (n *Node) mediumIdle() bool {
	return !n.radio.DataChannelBusy() && !n.nav.Busy()
}

func (n *Node) trySend() {
	if n.st != stIdle || n.dcf.Armed() {
		return
	}
	if n.cur == nil {
		req := n.queue.Pop()
		if req == nil {
			return
		}
		n.seq++
		n.ctxBuf = txContext{req: req, seq: n.seq}
		n.cur = &n.ctxBuf
		if req.Service == mac.Reliable {
			n.cur.unicast = len(req.Dests) == 1 && !req.Dests[0].IsBroadcast()
			n.stats.ReliableToTransmit++
		}
	}
	n.dcf.Arm()
}

func (n *Node) startTx(f frame.Frame) sim.Time {
	n.dcf.ChannelBusy()
	return n.radio.StartTx(f)
}

func (n *Node) onWin() {
	if n.cur == nil || n.st != stIdle {
		return
	}
	n.aud.Initiation(n.radio.ID())
	if n.cur.req.Service == mac.Reliable && n.cur.unicast {
		n.st = stTxRTS
		tail := phy.SIFS + n.cfg.TxDuration(frame.CTSLen) +
			phy.SIFS + n.cfg.TxDuration(frame.Data80211Overhead+len(n.cur.req.Payload)) +
			phy.SIFS + n.cfg.TxDuration(frame.ACKLen)
		f := n.frames.RTS()
		f.Duration = durationMicros(tail)
		f.Receiver = n.cur.req.Dests[0]
		f.Transmitter = n.addr
		dur := n.startTx(f)
		n.stats.CtrlTxTime += dur
		return
	}
	// Multicast/broadcast (reliable requested or not): one transmission,
	// no recovery — the 802.11 behaviour §1 describes.
	dest := frame.Broadcast
	if n.cur.req.Service == mac.Unreliable && len(n.cur.req.Dests) > 0 {
		dest = n.cur.req.Dests[0]
	}
	n.st = stTxBcast
	f := n.frames.Data()
	f.Receiver, f.Transmitter, f.Seq = dest, n.addr, n.cur.seq
	f.Payload = append(f.Payload, n.cur.req.Payload...)
	dur := n.startTx(f)
	if n.cur.req.Service == mac.Reliable {
		n.stats.DataTxTime += dur
	}
}

func durationMicros(d sim.Time) uint16 {
	us := int64(d / sim.Microsecond)
	if us > 65535 {
		us = 65535
	}
	return uint16(us)
}

// OnTxDone implements phy.Handler.
func (n *Node) OnTxDone(f frame.Frame) {
	n.dcf.ChannelMaybeIdle()
	switch n.st {
	case stTxRTS:
		n.st = stWfCTS
		n.timer.Start(phy.SIFS + n.cfg.TxDuration(frame.CTSLen) + respSlack)
	case stTxData:
		n.st = stWfACK
		n.timer.Start(phy.SIFS + n.cfg.TxDuration(frame.ACKLen) + respSlack)
	case stTxBcast:
		ctx := n.cur
		n.cur = nil
		n.st = stIdle
		res := mac.TxResult{Req: ctx.req}
		if ctx.req.Service == mac.Reliable {
			// Best effort: the sender has no way to learn the outcome;
			// report the attempt.
			n.stats.ReliableDelivered++
			res.Delivered = ctx.req.Dests // loaned; see mac.TxResult
		} else {
			n.stats.UnreliableSent++
		}
		n.dcf.Backoff().Reset()
		n.dcf.Backoff().Draw()
		if n.upper != nil {
			n.upper.OnSendComplete(res)
		}
		n.trySend()
	case stTxResp:
		n.st = stIdle
		n.trySend()
	default:
		panic(fmt.Sprintf("dot11: node %v OnTxDone in state %v", n.addr, n.st))
	}
}

func (n *Node) onTimeout() {
	switch n.st {
	case stWfCTS, stWfACK:
		n.st = stIdle
		n.cur.retries++
		if n.cur.retries > n.limits.RetryLimit {
			n.completeUnicast(true)
			return
		}
		n.stats.Retransmissions++
		n.dcf.Backoff().Fail()
		n.dcf.Backoff().Draw()
		n.trySend()
	}
}

func (n *Node) sendData() {
	n.st = stTxData
	tail := phy.SIFS + n.cfg.TxDuration(frame.ACKLen)
	f := n.frames.Data()
	f.Duration = durationMicros(tail)
	f.Receiver = n.cur.req.Dests[0]
	f.Transmitter = n.addr
	f.Seq = n.cur.seq
	f.Payload = append(f.Payload, n.cur.req.Payload...)
	dur := n.startTx(f)
	n.stats.DataTxTime += dur
}

// Tags for the node's sim.Caller dispatch.
const (
	tagData int32 = iota // SIFS-deferred data transmission (after CTS)
	tagResp              // SIFS-deferred CTS/ACK response
)

// Call implements sim.Caller: the SIFS-deferred continuations, scheduled
// closure-free through the engine's tagged-event path.
func (n *Node) Call(tag int32) {
	switch tag {
	case tagData:
		n.deferred--
		if n.cur == nil || n.radio.Transmitting() {
			return
		}
		n.sendData()
	case tagResp:
		n.deferred--
		f := n.pendingResp
		n.pendingResp = nil
		if f == nil {
			return
		}
		if n.st != stIdle || n.radio.Transmitting() {
			frame.Release(f) // busy with our own exchange; solicitation lost
			return
		}
		n.st = stTxResp
		dur := n.startTx(f)
		n.stats.CtrlTxTime += dur
	}
}

func (n *Node) afterSIFS() {
	n.st = stGap
	n.deferred++
	n.eng.AfterCall(phy.SIFS, n, tagData)
}

func (n *Node) completeUnicast(dropped bool) {
	n.st = stIdle
	ctx := n.cur
	n.cur = nil
	res := mac.TxResult{Req: ctx.req, Retries: ctx.retries}
	if dropped {
		n.stats.Drops++
		res.Dropped = true
		res.Failed = ctx.req.Dests // loaned; see mac.TxResult
	} else {
		n.stats.ReliableDelivered++
		res.Delivered = ctx.req.Dests // loaned; see mac.TxResult
	}
	n.aud.ReliableOutcome(n.radio.ID(), len(res.Delivered), 1, dropped)
	n.dcf.Backoff().Reset()
	n.dcf.Backoff().Draw()
	if n.upper != nil {
		n.upper.OnSendComplete(res)
	}
	n.trySend()
}

// --- Reception ---------------------------------------------------------------

// OnFrameReceived implements phy.Handler.
func (n *Node) OnFrameReceived(f frame.Frame, ok bool, rxStart sim.Time) {
	if !ok {
		return
	}
	switch g := f.(type) {
	case *frame.RTS:
		if g.Receiver == n.addr {
			n.stats.CtrlRxTime += n.cfg.TxDuration(g.WireSize())
			cts := n.frames.CTS()
			cts.Duration = subDuration(g.Duration, phy.SIFS+n.cfg.TxDuration(frame.CTSLen))
			cts.Receiver = g.Transmitter
			cts.Transmitter = n.addr
			n.respond(cts)
			return
		}
		n.nav.Set(sim.Time(g.Duration) * sim.Microsecond)
		n.dcf.ChannelBusy()
	case *frame.CTS:
		if n.st == stWfCTS && g.Receiver == n.addr {
			n.stats.CtrlRxTime += n.cfg.TxDuration(g.WireSize())
			n.timer.Stop()
			n.afterSIFS()
			return
		}
		if g.Receiver != n.addr {
			n.nav.Set(sim.Time(g.Duration) * sim.Microsecond)
			n.dcf.ChannelBusy()
		}
	case *frame.Data:
		n.onData(g, rxStart)
	case *frame.ACK:
		if n.st == stWfACK && g.Receiver == n.addr {
			n.stats.CtrlRxTime += n.cfg.TxDuration(g.WireSize())
			n.timer.Stop()
			n.completeUnicast(false)
			return
		}
		if g.Receiver != n.addr {
			n.nav.Set(sim.Time(g.Duration) * sim.Microsecond)
			n.dcf.ChannelBusy()
		}
	}
}

func (n *Node) onData(d *frame.Data, rxStart sim.Time) {
	if d.Receiver == n.addr && d.Duration > 0 {
		// Unicast data under reservation: deliver and ACK.
		n.deliver(d, true, rxStart)
		ack := n.frames.ACK()
		ack.Receiver, ack.Transmitter = d.Transmitter, n.addr
		n.respond(ack)
		return
	}
	if d.Receiver == n.addr || d.Receiver.IsBroadcast() {
		// One-shot multicast/broadcast data (no reservation tail): the
		// upper layer treats it as best-effort.
		n.deliver(d, false, rxStart)
		return
	}
	if d.Duration > 0 {
		n.nav.Set(sim.Time(d.Duration) * sim.Microsecond)
		n.dcf.ChannelBusy()
	}
}

func (n *Node) deliver(d *frame.Data, reliable bool, rxStart sim.Time) {
	p := n.peers[d.Transmitter]
	if p == nil {
		p = &peerDedup{}
		n.peers[d.Transmitter] = p
	}
	if p.deliverOK && p.delivered == d.Seq {
		return
	}
	p.deliverOK = true
	p.delivered = d.Seq
	if n.upper != nil {
		n.upper.OnDeliver(d.Payload, mac.RxInfo{
			From:     d.Transmitter,
			Reliable: reliable,
			Seq:      uint32(d.Seq),
			RxStart:  rxStart,
			RxEnd:    n.eng.Now(),
		})
	}
}

func subDuration(d uint16, sub sim.Time) uint16 {
	s := int64(sub / sim.Microsecond)
	if int64(d) <= s {
		return 0
	}
	return d - uint16(s)
}

// respond transmits an acquired CTS or ACK one SIFS after the soliciting
// frame (via the tagResp tagged event); the frame is released in Call if
// the response cannot be sent.
func (n *Node) respond(f frame.Frame) {
	if n.pendingResp != nil {
		// A second solicitation within one SIFS cannot happen on a
		// collision-free channel; drop the new one.
		frame.Release(f)
		return
	}
	n.deferred++
	n.pendingResp = f
	n.eng.AfterCall(phy.SIFS, n, tagResp)
}

// OnCarrierChange implements phy.Handler.
func (n *Node) OnCarrierChange(busy bool) {
	if busy {
		n.dcf.ChannelBusy()
	} else {
		n.dcf.ChannelMaybeIdle()
	}
}

// OnToneChange implements phy.Handler; 802.11 has no busy-tone hardware.
func (n *Node) OnToneChange(phy.Tone, bool) {}
