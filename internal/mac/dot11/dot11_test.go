package dot11

import (
	"testing"

	"rmac/internal/frame"
	"rmac/internal/geom"
	"rmac/internal/mac"
	"rmac/internal/mobility"
	"rmac/internal/phy"
	"rmac/internal/sim"
)

type upper struct {
	delivered []delivery
	completes []mac.TxResult
}

type delivery struct {
	payload []byte
	info    mac.RxInfo
}

// OnDeliver copies the payload out: it aliases pooled frame storage that
// is recycled after the callback returns.
func (u *upper) OnDeliver(payload []byte, info mac.RxInfo) {
	u.delivered = append(u.delivered, delivery{append([]byte(nil), payload...), info})
}

// OnSendComplete copies the loaned Delivered/Failed slices before keeping
// the result, per the mac.TxResult contract.
func (u *upper) OnSendComplete(res mac.TxResult) {
	res.Delivered = append([]frame.Addr(nil), res.Delivered...)
	res.Failed = append([]frame.Addr(nil), res.Failed...)
	u.completes = append(u.completes, res)
}

type world struct {
	eng    *sim.Engine
	nodes  []*Node
	uppers []*upper
}

func newWorld(seed int64, pos []geom.Point) *world {
	eng := sim.NewEngine(seed)
	cfg := phy.DefaultConfig()
	m := phy.NewMedium(eng, cfg)
	w := &world{eng: eng}
	for i, p := range pos {
		r := m.AddRadio(i, mobility.Stationary{P: p})
		n := New(r, cfg, eng, mac.DefaultLimits())
		u := &upper{}
		n.SetUpper(u)
		w.nodes = append(w.nodes, n)
		w.uppers = append(w.uppers, u)
	}
	return w
}

func addrs(ids ...int) []frame.Addr {
	out := make([]frame.Addr, len(ids))
	for i, id := range ids {
		out[i] = frame.AddrFromID(id)
	}
	return out
}

func TestReliableUnicast(t *testing.T) {
	w := newWorld(1, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}})
	w.nodes[0].Send(&mac.SendRequest{Service: mac.Reliable, Dests: addrs(1), Payload: []byte("unicast")})
	w.eng.Run(sim.Second)
	if len(w.uppers[1].delivered) != 1 || !w.uppers[1].delivered[0].info.Reliable {
		t.Fatalf("deliveries = %+v", w.uppers[1].delivered)
	}
	comp := w.uppers[0].completes
	if len(comp) != 1 || comp[0].Dropped || len(comp[0].Delivered) != 1 {
		t.Fatalf("completion = %+v", comp)
	}
	// Full RTS/CTS/DATA/ACK: sender sent RTS, received CTS+ACK.
	st := w.nodes[0].Stats()
	cfg := phy.DefaultConfig()
	if st.CtrlTxTime != cfg.TxDuration(frame.RTSLen) {
		t.Fatalf("CtrlTxTime = %v", st.CtrlTxTime)
	}
	if st.CtrlRxTime != cfg.TxDuration(frame.CTSLen)+cfg.TxDuration(frame.ACKLen) {
		t.Fatalf("CtrlRxTime = %v", st.CtrlRxTime)
	}
}

func TestUnicastRetryAndDrop(t *testing.T) {
	w := newWorld(2, []geom.Point{{X: 0, Y: 0}, {X: 500, Y: 0}})
	w.nodes[0].Send(&mac.SendRequest{Service: mac.Reliable, Dests: addrs(1), Payload: []byte("x")})
	w.eng.Run(30 * sim.Second)
	st := w.nodes[0].Stats()
	if st.Drops != 1 || st.Retransmissions != uint64(mac.DefaultLimits().RetryLimit) {
		t.Fatalf("stats = %+v", st)
	}
	if !w.uppers[0].completes[0].Dropped {
		t.Fatal("not reported dropped")
	}
}

// TestMulticastIsOneShot pins §1's motivation: multicast under plain
// 802.11 is transmitted once, unacknowledged, and the sender reports
// optimistic success even for unreachable receivers.
func TestMulticastIsOneShot(t *testing.T) {
	w := newWorld(3, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 400, Y: 0}})
	w.nodes[0].Send(&mac.SendRequest{Service: mac.Reliable, Dests: addrs(1, 2), Payload: []byte("mcast")})
	w.eng.Run(5 * sim.Second)
	st := w.nodes[0].Stats()
	if st.Retransmissions != 0 {
		t.Fatal("802.11 multicast must never retransmit")
	}
	if st.CtrlTxTime != 0 {
		t.Fatal("802.11 multicast must not use RTS/CTS")
	}
	comp := w.uppers[0].completes
	if len(comp) != 1 || comp[0].Dropped || len(comp[0].Delivered) != 2 {
		t.Fatalf("completion = %+v (sender must believe it succeeded)", comp)
	}
	if len(w.uppers[1].delivered) != 1 {
		t.Fatal("in-range receiver missed the single transmission")
	}
	if len(w.uppers[2].delivered) != 0 {
		t.Fatal("unreachable receiver cannot have received")
	}
}

func TestUnreliableBroadcast(t *testing.T) {
	w := newWorld(4, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}})
	w.nodes[0].Send(&mac.SendRequest{Service: mac.Unreliable, Payload: []byte("beacon")})
	w.eng.Run(sim.Second)
	if len(w.uppers[1].delivered) != 1 || w.uppers[1].delivered[0].info.Reliable {
		t.Fatalf("broadcast = %+v", w.uppers[1].delivered)
	}
	if w.nodes[0].Stats().UnreliableSent != 1 {
		t.Fatal("UnreliableSent")
	}
}

func TestNAVProtectsUnicast(t *testing.T) {
	// A->B unicast; C hears both and enqueues mid-exchange: serialised,
	// no retransmissions.
	w := newWorld(5, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 30, Y: 30}})
	payload := make([]byte, 500)
	w.nodes[0].Send(&mac.SendRequest{Service: mac.Reliable, Dests: addrs(1), Payload: payload})
	w.eng.Schedule(300*sim.Microsecond, func() {
		w.nodes[2].Send(&mac.SendRequest{Service: mac.Reliable, Dests: addrs(1), Payload: []byte("later")})
	})
	w.eng.Run(5 * sim.Second)
	if got := len(w.uppers[1].delivered); got != 2 {
		t.Fatalf("B deliveries = %d", got)
	}
	if w.nodes[0].Stats().Retransmissions+w.nodes[2].Stats().Retransmissions != 0 {
		t.Fatal("NAV failed to serialise")
	}
}

func TestHarnessGap(t *testing.T) {
	// Through the experiment harness semantics: consecutive packets each
	// transmitted once; dedupe by seq still passes distinct packets.
	w := newWorld(6, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 0, Y: 50}})
	for i := 0; i < 4; i++ {
		w.nodes[0].Send(&mac.SendRequest{Service: mac.Reliable, Dests: addrs(1, 2), Payload: []byte{byte(i)}})
	}
	w.eng.Run(5 * sim.Second)
	if len(w.uppers[1].delivered) != 4 || len(w.uppers[2].delivered) != 4 {
		t.Fatalf("deliveries = %d/%d", len(w.uppers[1].delivered), len(w.uppers[2].delivered))
	}
}
