package mx

import (
	"testing"

	"rmac/internal/frame"
	"rmac/internal/geom"
	"rmac/internal/mac"
	"rmac/internal/mobility"
	"rmac/internal/phy"
	"rmac/internal/sim"
)

type upper struct {
	delivered []delivery
	completes []mac.TxResult
}

type delivery struct {
	payload []byte
	info    mac.RxInfo
}

// OnDeliver copies the payload out: it aliases pooled frame storage that
// is recycled after the callback returns.
func (u *upper) OnDeliver(payload []byte, info mac.RxInfo) {
	u.delivered = append(u.delivered, delivery{append([]byte(nil), payload...), info})
}

// OnSendComplete copies the loaned Delivered/Failed slices before keeping
// the result, per the mac.TxResult contract.
func (u *upper) OnSendComplete(res mac.TxResult) {
	res.Delivered = append([]frame.Addr(nil), res.Delivered...)
	res.Failed = append([]frame.Addr(nil), res.Failed...)
	u.completes = append(u.completes, res)
}

type world struct {
	eng    *sim.Engine
	medium *phy.Medium
	nodes  []*Node
	uppers []*upper
}

func newWorld(seed int64, pos []geom.Point) *world {
	eng := sim.NewEngine(seed)
	cfg := phy.DefaultConfig()
	m := phy.NewMedium(eng, cfg)
	w := &world{eng: eng, medium: m}
	for i, p := range pos {
		r := m.AddRadio(i, mobility.Stationary{P: p})
		n := New(r, cfg, eng, mac.DefaultLimits())
		u := &upper{}
		n.SetUpper(u)
		w.nodes = append(w.nodes, n)
		w.uppers = append(w.uppers, u)
	}
	return w
}

func addrs(ids ...int) []frame.Addr {
	out := make([]frame.Addr, len(ids))
	for i, id := range ids {
		out[i] = frame.AddrFromID(id)
	}
	return out
}

func reliableReq(payload string, dests ...int) *mac.SendRequest {
	return &mac.SendRequest{Service: mac.Reliable, Dests: addrs(dests...), Payload: []byte(payload)}
}

func TestCleanMulticast(t *testing.T) {
	w := newWorld(1, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 0, Y: 50}})
	w.nodes[0].Send(reliableReq("mx-data", 1, 2))
	w.eng.Run(sim.Second)
	for _, id := range []int{1, 2} {
		if len(w.uppers[id].delivered) != 1 || string(w.uppers[id].delivered[0].payload) != "mx-data" {
			t.Fatalf("node %d deliveries = %+v", id, w.uppers[id].delivered)
		}
	}
	comp := w.uppers[0].completes
	if len(comp) != 1 || comp[0].Dropped || comp[0].Retries != 0 {
		t.Fatalf("completion = %+v", comp)
	}
	st := w.nodes[0].Stats()
	if st.Retransmissions != 0 {
		t.Fatal("clean exchange retransmitted")
	}
	// No NAK tones were raised.
	if w.nodes[1].Stats().ABTSent+w.nodes[2].Stats().ABTSent != 0 {
		t.Fatal("NAK raised on clean exchange")
	}
}

// TestNAKForcesRetransmission: a receiver whose data reception is
// corrupted raises the NAK tone and the sender retransmits until clean.
func TestNAKForcesRetransmission(t *testing.T) {
	// Hidden interferer: I(2) is in range of receiver B(1) but not of
	// sender A(0). I fires an unreliable frame into B's data reception.
	w := newWorld(2, []geom.Point{{X: 0, Y: 0}, {X: 70, Y: 0}, {X: 140, Y: 0}})
	payload := make([]byte, 500)
	w.nodes[0].Send(&mac.SendRequest{Service: mac.Reliable, Dests: addrs(1), Payload: payload})
	// A's ANN ≈ [0,176 µs], data ≈ [186, 2298 µs]. I transmits at 300 µs;
	// I heard nothing (out of range of A) and B's NAV does not bind I.
	w.eng.Schedule(300*sim.Microsecond, func() {
		w.nodes[2].Send(&mac.SendRequest{Service: mac.Unreliable, Payload: make([]byte, 50)})
	})
	w.eng.Run(10 * sim.Second)

	st := w.nodes[0].Stats()
	if st.Retransmissions == 0 {
		t.Fatal("corrupted data did not force a retransmission")
	}
	if w.nodes[1].Stats().ABTSent == 0 {
		t.Fatal("receiver never raised the NAK tone")
	}
	if len(w.uppers[1].delivered) != 1 {
		t.Fatalf("B deliveries = %d, want 1 after recovery", len(w.uppers[1].delivered))
	}
	if w.uppers[0].completes[0].Dropped {
		t.Fatal("sender dropped despite recovery headroom")
	}
}

// TestSilentReceiverGap pins the §2 critique of receiver-initiated
// feedback: a receiver that never heard the announce cannot complain, so
// the sender finishes believing in full delivery.
func TestSilentReceiverGap(t *testing.T) {
	w := newWorld(3, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 400, Y: 0}})
	w.nodes[0].Send(reliableReq("gap", 1, 2)) // node 2 unreachable
	w.eng.Run(5 * sim.Second)
	comp := w.uppers[0].completes
	if len(comp) != 1 || comp[0].Dropped {
		t.Fatalf("completion = %+v", comp)
	}
	if len(comp[0].Delivered) != 2 {
		t.Fatalf("sender's belief = %v, want both receivers", comp[0].Delivered)
	}
	if len(w.uppers[2].delivered) != 0 {
		t.Fatal("unreachable node received data")
	}
	if w.nodes[0].Stats().Retransmissions != 0 {
		t.Fatal("silent loss triggered retransmissions (it must not — that is the flaw)")
	}
}

func TestUnreliableBroadcast(t *testing.T) {
	w := newWorld(4, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}})
	w.nodes[0].Send(&mac.SendRequest{Service: mac.Unreliable, Payload: []byte("beacon")})
	w.eng.Run(sim.Second)
	if len(w.uppers[1].delivered) != 1 || w.uppers[1].delivered[0].info.Reliable {
		t.Fatalf("broadcast = %+v", w.uppers[1].delivered)
	}
}

func TestSequentialPacketsDedup(t *testing.T) {
	w := newWorld(5, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 0, Y: 50}})
	for i := 0; i < 4; i++ {
		w.nodes[0].Send(reliableReq("pkt", 1, 2))
	}
	w.eng.Run(5 * sim.Second)
	if len(w.uppers[0].completes) != 4 {
		t.Fatalf("completes = %d", len(w.uppers[0].completes))
	}
	for _, id := range []int{1, 2} {
		if len(w.uppers[id].delivered) != 4 {
			t.Fatalf("node %d deliveries = %d (dedup per packet)", id, len(w.uppers[id].delivered))
		}
	}
}

func TestTonesQuiesce(t *testing.T) {
	w := newWorld(6, []geom.Point{{X: 0, Y: 0}, {X: 60, Y: 0}, {X: 120, Y: 0}})
	for i := 0; i < 10; i++ {
		w.nodes[0].Send(reliableReq("a", 1))
		w.nodes[2].Send(reliableReq("c", 1))
	}
	w.eng.Run(30 * sim.Second)
	for i := range w.nodes {
		r := w.medium.Radios()[i]
		if r.OwnTone(phy.ToneABT) {
			t.Fatalf("node %d left NAK tone on", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int, uint64) {
		w := newWorld(7, []geom.Point{{X: 0, Y: 0}, {X: 60, Y: 0}, {X: 120, Y: 0}})
		for i := 0; i < 5; i++ {
			w.nodes[0].Send(reliableReq("a", 1))
			w.nodes[2].Send(reliableReq("c", 1))
		}
		w.eng.Run(20 * sim.Second)
		return len(w.uppers[1].delivered), w.nodes[0].Stats().Retransmissions
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatal("nondeterministic")
	}
}
