// Package mx implements a simplified 802.11MX-style protocol — the
// receiver-initiated busy-tone multicast MAC of Gupta, Shankar and
// Lalwani (ICC 2003) that §2 of the RMAC paper contrasts with RMAC:
// multicast reliability through *negative* feedback on a busy-tone
// channel. The exchange is
//
//	contention → ANN (group announce) → SIFS → DATA → NAK-tone window
//
// Receivers that decoded the announce arm themselves; if the data frame
// then arrives corrupted (or not at all), they raise the NAK tone during
// the window after the data. The sender retransmits while it senses NAK
// energy and declares success on a silent window.
//
// The protocol is deliberately receiver-initiated, reproducing the §2
// critique: "its sender cannot know whether full reliability is achieved,
// since a receiver will not enter the state to send a negative feedback
// if it fails to receive the initial transmission request". A receiver
// that misses the ANN stays silent, the sender believes the multicast
// succeeded, and the application-level delivery ratio exposes the gap —
// measured against RMAC's positive-feedback full reliability.
//
// Simplifications: the announce is an RTS-sized frame broadcast to the
// group (the real 802.11MX stays closer to stock 802.11); the NAK tone
// reuses the simulator's second tone channel; timing constants follow the
// RMAC paper's tone-detection arithmetic (λ, τ).
package mx

import (
	"fmt"

	"rmac/internal/audit"
	"rmac/internal/frame"
	"rmac/internal/mac"
	"rmac/internal/mac/csma"
	"rmac/internal/phy"
	"rmac/internal/sim"
)

// NAKWindow is the tone emission length and the sender's sensing window
// base (2τ+λ, long enough to detect with λ CCA under τ propagation).
const NAKWindow = phy.ToneWaitTimeout

// windowSlack pads the sender's sensing window for propagation and the
// missing-data deadline guard.
const windowSlack = 5 * sim.Microsecond

type state int

const (
	stIdle state = iota
	stTxAnn
	stTxData
	stWfNAK
	stTxUData
	stGap
)

var stateNames = [...]string{"IDLE", "TX_ANN", "TX_DATA", "WF_NAK", "TX_UDATA", "GAP"}

func (s state) String() string { return stateNames[s] }

type txContext struct {
	req     *mac.SendRequest
	retries int
	seq     uint16
}

// rxArm is the receiver-side armed expectation for one exchange. A node
// holds a single arm slot (a later announce supersedes an earlier one, as
// before), so arming allocates nothing: the slot and its deadline timer
// are reused across exchanges.
type rxArm struct {
	sender   frame.Addr
	deadline sim.Time // when the data frame must have been decoded
	got      bool
}

// Node is one MX instance bound to a radio.
type Node struct {
	eng    *sim.Engine
	radio  *phy.Radio
	cfg    phy.Config
	addr   frame.Addr
	limits mac.Limits
	upper  mac.UpperLayer

	st     state
	queue  *mac.Queue
	dcf    *csma.DCF
	nav    *csma.NAV
	stats  mac.Stats
	frames *frame.Pool
	aud    *audit.Auditor

	cur     *txContext
	ctxBuf  txContext // backs cur; one packet in flight at a time
	nakTmr  *sim.Timer
	dataEnd sim.Time

	arm    rxArm
	armed  bool
	armTmr *sim.Timer
	nakOn  bool
	peers  map[frame.Addr]*peerDedup
	seq    uint16

	// deferred counts scheduled exchange steps (SIFS gaps) not yet
	// fired, so the liveness audit sees them.
	deferred int
}

type peerDedup struct {
	delivered uint16
	deliverOK bool
}

var _ mac.MAC = (*Node)(nil)
var _ phy.Handler = (*Node)(nil)

// New creates an MX node on the given radio and installs itself as the
// radio's PHY handler.
func New(radio *phy.Radio, cfg phy.Config, eng *sim.Engine, limits mac.Limits) *Node {
	n := &Node{
		eng:    eng,
		radio:  radio,
		cfg:    cfg,
		addr:   frame.AddrFromID(radio.ID()),
		limits: limits,
		queue:  mac.NewQueue(limits.QueueCap),
		peers:  make(map[frame.Addr]*peerDedup),
		frames: radio.Frames(),
	}
	n.nav = csma.NewNAV(eng, func() { n.dcf.ChannelMaybeIdle() })
	n.dcf = csma.NewDCF(eng, eng.Rand(), n.mediumIdle, n.onWin)
	n.nakTmr = sim.NewTimer(eng, n.onNAKWindowEnd)
	n.armTmr = sim.NewTimer(eng, n.onArmDeadline)
	radio.SetHandler(n)
	return n
}

// Addr implements mac.MAC.
func (n *Node) Addr() frame.Addr { return n.addr }

// Stats implements mac.MAC.
func (n *Node) Stats() *mac.Stats { return &n.stats }

// SetUpper implements mac.MAC.
func (n *Node) SetUpper(u mac.UpperLayer) { n.upper = u }

// SetAuditor attaches the protocol-invariant auditor; the node declares
// DCF-won initiations and its NAK tone windows to it. MX declares no
// ReliableOutcome: silence-is-success is the sender's belief (§2), not an
// ACK-complete contract.
func (n *Node) SetAuditor(a *audit.Auditor) { n.aud = a }

// AuditContention implements audit.ContentionReporter.
func (n *Node) AuditContention() (wants, counting, gated, idle bool) {
	armed, counting, difsPending := n.dcf.AuditState()
	return armed, counting, difsPending, n.mediumIdle()
}

// AuditNAVBusy implements audit.NAVReporter.
func (n *Node) AuditNAVBusy() bool { return n.nav.Busy() }

// AuditPending implements audit.PendingReporter.
func (n *Node) AuditPending() (queued int, inFlight bool) {
	return n.queue.Len(), n.cur != nil
}

// Liveness implements mac.LivenessReporter.
func (n *Node) Liveness() mac.Liveness {
	return mac.Liveness{
		State: n.st.String(),
		Idle:  n.st == stIdle && n.cur == nil && n.queue.Len() == 0,
		Pending: n.nakTmr.Pending() || n.radio.Transmitting() ||
			n.radio.CarrierSensed() || n.dcf.Armed() || n.deferred > 0,
	}
}

// Send implements mac.MAC.
func (n *Node) Send(req *mac.SendRequest) bool {
	if req.Service == mac.Reliable && len(req.Dests) == 0 {
		panic("mx: Reliable Send needs at least one destination")
	}
	req.EnqueuedAt = n.eng.Now()
	var pushed bool
	if req.Urgent {
		pushed = n.queue.PushFront(req)
	} else {
		pushed = n.queue.Push(req)
	}
	if !pushed {
		n.stats.QueueDrops++
		return false
	}
	n.stats.Enqueued++
	n.trySend()
	return true
}

func (n *Node) mediumIdle() bool {
	return !n.radio.DataChannelBusy() && !n.nav.Busy()
}

func (n *Node) trySend() {
	if n.st != stIdle || n.dcf.Armed() {
		return
	}
	if n.cur == nil {
		req := n.queue.Pop()
		if req == nil {
			return
		}
		n.seq++
		n.ctxBuf = txContext{req: req, seq: n.seq}
		n.cur = &n.ctxBuf
		if req.Service == mac.Reliable {
			n.stats.ReliableToTransmit++
		}
	}
	n.dcf.Arm()
}

func (n *Node) startTx(f frame.Frame) sim.Time {
	n.dcf.ChannelBusy()
	return n.radio.StartTx(f)
}

func (n *Node) onWin() {
	if n.cur == nil || n.st != stIdle {
		return
	}
	n.aud.Initiation(n.radio.ID())
	if n.cur.req.Service == mac.Unreliable {
		dest := frame.Broadcast
		if len(n.cur.req.Dests) > 0 {
			dest = n.cur.req.Dests[0]
		}
		n.st = stTxUData
		f := n.frames.Data()
		f.Receiver, f.Transmitter, f.Seq = dest, n.addr, n.cur.seq
		f.Payload = append(f.Payload, n.cur.req.Payload...)
		n.startTx(f)
		return
	}
	// Announce: an RTS-sized frame broadcast to the group; Duration
	// covers SIFS + DATA + NAK window, letting armed receivers compute
	// the data deadline.
	n.st = stTxAnn
	dataDur := n.cfg.TxDuration(frame.Data80211Overhead + len(n.cur.req.Payload))
	tail := phy.SIFS + dataDur + NAKWindow
	f := n.frames.RTS()
	f.Duration = durationMicros(tail)
	f.Receiver = frame.Broadcast
	f.Transmitter = n.addr
	dur := n.startTx(f)
	n.stats.CtrlTxTime += dur
}

func durationMicros(d sim.Time) uint16 {
	us := int64(d / sim.Microsecond)
	if us > 65535 {
		us = 65535
	}
	return uint16(us)
}

// OnTxDone implements phy.Handler.
func (n *Node) OnTxDone(f frame.Frame) {
	n.dcf.ChannelMaybeIdle()
	switch n.st {
	case stTxAnn:
		n.afterSIFS()
	case stTxData:
		n.st = stWfNAK
		n.dataEnd = n.eng.Now()
		n.nakTmr.Start(NAKWindow + windowSlack)
	case stTxUData:
		n.stats.UnreliableSent++
		req := n.cur.req
		n.cur = nil
		n.st = stIdle
		n.dcf.Backoff().Reset()
		n.dcf.Backoff().Draw()
		if n.upper != nil {
			n.upper.OnSendComplete(mac.TxResult{Req: req})
		}
		n.trySend()
	default:
		panic(fmt.Sprintf("mx: node %v OnTxDone in state %v", n.addr, n.st))
	}
}

func (n *Node) sendData() {
	n.st = stTxData
	f := n.frames.Data()
	f.Duration = durationMicros(NAKWindow)
	f.Receiver = frame.Broadcast
	f.Transmitter = n.addr
	f.Seq = n.cur.seq
	f.Payload = append(f.Payload, n.cur.req.Payload...)
	dur := n.startTx(f)
	n.stats.DataTxTime += dur
}

// Tags for the node's sim.Caller dispatch.
const (
	tagData   int32 = iota // SIFS-deferred data transmission (after ANN)
	tagNAKOff              // end of this node's NAK tone emission
)

// Call implements sim.Caller: the deferred continuations, scheduled
// closure-free through the engine's tagged-event path.
func (n *Node) Call(tag int32) {
	switch tag {
	case tagData:
		n.deferred--
		if n.cur == nil || n.radio.Transmitting() {
			return
		}
		n.sendData()
	case tagNAKOff:
		n.nakOn = false
		n.radio.SetTone(phy.ToneABT, false)
	}
}

func (n *Node) afterSIFS() {
	n.st = stGap
	n.deferred++
	n.eng.AfterCall(phy.SIFS, n, tagData)
}

// onNAKWindowEnd scores the window: tone sensed for λ means at least one
// receiver complained.
func (n *Node) onNAKWindowEnd() {
	n.stats.ABTCheckTime += NAKWindow + windowSlack
	naked := n.radio.ToneOverlap(phy.ToneABT, n.dataEnd, n.eng.Now()) >= phy.Lambda
	if !naked {
		n.completeReliable(false)
		return
	}
	n.st = stIdle
	n.cur.retries++
	if n.cur.retries > n.limits.RetryLimit {
		n.completeReliable(true)
		return
	}
	n.stats.Retransmissions++
	n.dcf.Backoff().Fail()
	n.dcf.Backoff().Draw()
	n.trySend()
}

func (n *Node) completeReliable(dropped bool) {
	n.st = stIdle
	ctx := n.cur
	n.cur = nil
	res := mac.TxResult{Req: ctx.req, Retries: ctx.retries}
	if dropped {
		n.stats.Drops++
		res.Dropped = true
		res.Failed = ctx.req.Dests // loaned; see mac.TxResult
	} else {
		n.stats.ReliableDelivered++
		// Silence is success — the sender's belief, not a guarantee.
		res.Delivered = ctx.req.Dests // loaned; see mac.TxResult
	}
	n.dcf.Backoff().Reset()
	n.dcf.Backoff().Draw()
	if n.upper != nil {
		n.upper.OnSendComplete(res)
	}
	n.trySend()
}

// --- Reception ---------------------------------------------------------------

// OnFrameReceived implements phy.Handler.
func (n *Node) OnFrameReceived(f frame.Frame, ok bool, rxStart sim.Time) {
	if !ok {
		// A corrupted frame while armed: complain right away if the
		// deadline has not passed (the corrupted frame was plausibly our
		// data).
		if n.armed && n.eng.Now() <= n.arm.deadline && !n.arm.got {
			n.raiseNAK()
		}
		return
	}
	switch g := f.(type) {
	case *frame.RTS: // group announce
		n.onAnnounce(g)
	case *frame.Data:
		n.onData(g, rxStart)
	}
}

func (n *Node) onAnnounce(g *frame.RTS) {
	if !g.Receiver.IsBroadcast() {
		return
	}
	n.stats.CtrlRxTime += n.cfg.TxDuration(g.WireSize())
	n.armTmr.Stop()
	n.arm = rxArm{
		sender:   g.Transmitter,
		deadline: n.eng.Now() + sim.Time(g.Duration)*sim.Microsecond - NAKWindow + 2*sim.Microsecond,
	}
	n.armed = true
	n.armTmr.StartAt(n.arm.deadline)
	// Group members also defer for the exchange duration.
	n.nav.Set(sim.Time(g.Duration) * sim.Microsecond)
	n.dcf.ChannelBusy()
}

func (n *Node) onData(d *frame.Data, rxStart sim.Time) {
	if d.Duration > 0 && d.Receiver.IsBroadcast() {
		// Reliable group data: group members always accept a correctly
		// decoded copy, armed or not (membership is by group address in
		// real 802.11MX).
		if n.armed && d.Transmitter == n.arm.sender {
			n.armTmr.Stop()
			n.armed = false
		}
		n.deliver(d, true, rxStart)
		return
	}
	if d.Duration > 0 {
		n.nav.Set(sim.Time(d.Duration) * sim.Microsecond)
		n.dcf.ChannelBusy()
		return
	}
	if d.Receiver == n.addr || d.Receiver.IsBroadcast() {
		n.deliver(d, false, rxStart)
	}
}

// raiseNAK emits the NAK busy tone for one window (idempotent while on).
func (n *Node) raiseNAK() {
	if n.nakOn {
		return
	}
	n.nakOn = true
	n.stats.ABTSent++ // NAK tone emissions share the tone counter
	n.aud.ExpectTone(n.radio.ID(), phy.ToneABT, n.eng.Now(), NAKWindow)
	n.radio.SetTone(phy.ToneABT, true)
	n.eng.AfterCall(NAKWindow, n, tagNAKOff)
}

// onArmDeadline fires at the armed exchange's data deadline: if the data
// frame never arrived, complain on the NAK channel.
func (n *Node) onArmDeadline() {
	if n.armed && !n.arm.got {
		n.raiseNAK()
	}
	n.armed = false
}

func (n *Node) deliver(d *frame.Data, reliable bool, rxStart sim.Time) {
	p := n.peers[d.Transmitter]
	if p == nil {
		p = &peerDedup{}
		n.peers[d.Transmitter] = p
	}
	if reliable {
		if p.deliverOK && p.delivered == d.Seq {
			return
		}
		p.deliverOK = true
		p.delivered = d.Seq
	}
	if n.upper != nil {
		n.upper.OnDeliver(d.Payload, mac.RxInfo{
			From:     d.Transmitter,
			Reliable: reliable,
			Seq:      uint32(d.Seq),
			RxStart:  rxStart,
			RxEnd:    n.eng.Now(),
		})
	}
}

// OnCarrierChange implements phy.Handler.
func (n *Node) OnCarrierChange(busy bool) {
	if busy {
		n.dcf.ChannelBusy()
	} else {
		n.dcf.ChannelMaybeIdle()
	}
}

// OnToneChange implements phy.Handler; the sender evaluates the NAK
// channel with windowed queries, so level transitions need no action.
func (n *Node) OnToneChange(phy.Tone, bool) {}
