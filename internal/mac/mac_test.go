package mac

import (
	"testing"
	"testing/quick"

	"rmac/internal/phy"
	"rmac/internal/sim"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(3)
	a, b, c, d := &SendRequest{}, &SendRequest{}, &SendRequest{}, &SendRequest{}
	if !q.Push(a) || !q.Push(b) || !q.Push(c) {
		t.Fatal("pushes failed below capacity")
	}
	if q.Push(d) {
		t.Fatal("push succeeded on full queue")
	}
	if q.Peek() != a {
		t.Fatal("peek != first")
	}
	if q.Pop() != a || q.Pop() != b {
		t.Fatal("pop order wrong")
	}
	if !q.Push(d) {
		t.Fatal("push after pop failed")
	}
	if q.Pop() != c || q.Pop() != d {
		t.Fatal("pop order wrong after wrap")
	}
	if q.Pop() != nil || q.Peek() != nil {
		t.Fatal("empty queue must return nil")
	}
}

func TestQueueCompaction(t *testing.T) {
	q := NewQueue(1000)
	reqs := make([]*SendRequest, 500)
	for i := range reqs {
		reqs[i] = &SendRequest{}
		q.Push(reqs[i])
	}
	for i := 0; i < 400; i++ {
		if q.Pop() != reqs[i] {
			t.Fatalf("pop %d wrong", i)
		}
	}
	if q.Len() != 100 {
		t.Fatalf("len = %d, want 100", q.Len())
	}
	// Internal storage must have been compacted at some point.
	if len(q.items) > 200 {
		t.Fatalf("storage not compacted: %d", len(q.items))
	}
}

func TestQueueZeroCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity must panic")
		}
	}()
	NewQueue(0)
}

// Property: any interleaving of pushes and pops preserves FIFO order and
// never exceeds capacity.
func TestPropertyQueueFIFO(t *testing.T) {
	f := func(ops []bool, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		q := NewQueue(capacity)
		next := 0
		var expect []int
		for _, push := range ops {
			if push {
				r := &SendRequest{Meta: next}
				if q.Push(r) {
					expect = append(expect, next)
				} else if q.Len() != capacity {
					return false // rejected while not full
				}
				next++
			} else {
				r := q.Pop()
				if len(expect) == 0 {
					if r != nil {
						return false
					}
				} else {
					if r == nil || r.Meta.(int) != expect[0] {
						return false
					}
					expect = expect[1:]
				}
			}
			if q.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

type backoffHarness struct {
	eng   *sim.Engine
	b     *Backoff
	idle  bool
	fired int
}

func newBackoffHarness(seed int64) *backoffHarness {
	h := &backoffHarness{eng: sim.NewEngine(seed), idle: true}
	h.b = NewBackoff(h.eng, h.eng.Rand(), phy.SlotTime, func() bool { return h.idle }, func() { h.fired++ })
	return h
}

func TestBackoffCountsDown(t *testing.T) {
	h := newBackoffHarness(1)
	h.b.Draw()
	bi := h.b.BI()
	if bi < 0 || bi > phy.CWMin {
		t.Fatalf("BI = %d outside [0, %d]", bi, phy.CWMin)
	}
	h.b.Resume()
	h.eng.RunAll()
	if h.fired != 1 {
		t.Fatalf("fired = %d, want 1", h.fired)
	}
	want := sim.Time(bi) * phy.SlotTime
	if h.eng.Now() != want {
		t.Fatalf("fire time = %v, want %v", h.eng.Now(), want)
	}
	if h.b.Active() {
		t.Fatal("still active after fire")
	}
}

func TestBackoffZeroBIFiresImmediately(t *testing.T) {
	h := newBackoffHarness(1)
	h.b.Draw()
	h.b.bi = 0
	h.b.Resume()
	if h.fired != 1 {
		t.Fatal("BI=0 did not fire on Resume")
	}
	if h.eng.Now() != 0 {
		t.Fatal("BI=0 fire should be immediate")
	}
}

func TestBackoffSuspendHoldsBI(t *testing.T) {
	h := newBackoffHarness(2)
	h.b.Draw()
	h.b.bi = 10
	h.b.Resume()
	// After 3 full slots, suspend mid-slot; BI must be 7.
	h.eng.Schedule(3*phy.SlotTime+phy.SlotTime/2, func() {
		h.idle = false
		h.b.Suspend()
	})
	h.eng.RunAll()
	if h.fired != 0 {
		t.Fatal("fired while suspended")
	}
	if h.b.BI() != 7 {
		t.Fatalf("BI after suspend = %d, want 7", h.b.BI())
	}
	// Resume; remaining 7 slots must elapse.
	resumeAt := h.eng.Now() + 100*sim.Microsecond
	h.eng.Schedule(resumeAt, func() {
		h.idle = true
		h.b.Resume()
	})
	h.eng.RunAll()
	if h.fired != 1 {
		t.Fatal("did not fire after resume")
	}
	if got, want := h.eng.Now(), resumeAt+7*phy.SlotTime; got != want {
		t.Fatalf("fire at %v, want %v", got, want)
	}
}

func TestBackoffBusyTickDoesNotDecrement(t *testing.T) {
	h := newBackoffHarness(3)
	h.b.Draw()
	h.b.bi = 2
	h.b.Resume()
	// Channel goes busy just before the first tick without Suspend being
	// called; the tick must not decrement, but must keep polling (see
	// TestBackoffBusySlotSelfHeals for why).
	h.eng.Schedule(phy.SlotTime-1, func() { h.idle = false })
	h.eng.Run(phy.SlotTime)
	if h.b.BI() != 2 {
		t.Fatalf("BI = %d, want 2 (busy slot must not count)", h.b.BI())
	}
	if !h.b.Counting() {
		t.Fatal("busy tick dropped the slot timer instead of re-polling")
	}
	if h.b.BusyTicks == 0 {
		t.Fatal("busy tick not counted")
	}
}

// TestBackoffBusySlotSelfHeals reproduces the stalled-countdown bug: the
// channel goes busy and idle again entirely inside one slot, so the owner
// — who drives Resume only from channel-state edges it observes — never
// calls Resume after the tick finds the channel busy. The old tick
// returned without re-arming its timer, leaving the draw stuck
// Active() && !Counting() forever; it must instead keep polling and
// complete the countdown once the channel stays idle.
func TestBackoffBusySlotSelfHeals(t *testing.T) {
	h := newBackoffHarness(7)
	h.b.Draw()
	h.b.bi = 3
	h.b.Resume()
	// Busy episode contained within the first slot: no Suspend, no Resume.
	h.eng.Schedule(phy.SlotTime/2, func() { h.idle = false })
	h.eng.Schedule(phy.SlotTime+phy.SlotTime/2, func() { h.idle = true })
	h.eng.RunAll()
	if h.fired != 1 {
		t.Fatalf("fired = %d, want 1: the draw stalled without a Resume edge", h.fired)
	}
	if h.b.Active() || h.b.Counting() {
		t.Fatal("backoff still active after completing")
	}
	if h.b.BusyTicks != 1 {
		t.Fatalf("BusyTicks = %d, want 1", h.b.BusyTicks)
	}
	// One busy poll slot plus the remaining three idle slots.
	if want := 4 * phy.SlotTime; h.eng.Now() != want {
		t.Fatalf("completed at %v, want %v", h.eng.Now(), want)
	}
}

func TestBackoffCWGrowthAndReset(t *testing.T) {
	h := newBackoffHarness(4)
	if h.b.CW() != phy.CWMin {
		t.Fatalf("initial CW = %d", h.b.CW())
	}
	want := []int{63, 127, 255, 511, 1023, 1023}
	for i, w := range want {
		h.b.Fail()
		if h.b.CW() != w {
			t.Fatalf("CW after %d fails = %d, want %d", i+1, h.b.CW(), w)
		}
	}
	h.b.Reset()
	if h.b.CW() != phy.CWMin {
		t.Fatal("CW not reset")
	}
}

func TestBackoffCancel(t *testing.T) {
	h := newBackoffHarness(5)
	h.b.Draw()
	h.b.Resume()
	h.b.Cancel()
	h.eng.RunAll()
	if h.fired != 0 || h.b.Active() {
		t.Fatal("cancelled backoff fired or stayed active")
	}
}

func TestBackoffResumeIdempotent(t *testing.T) {
	h := newBackoffHarness(6)
	h.b.Draw()
	h.b.bi = 3
	h.b.Resume()
	h.b.Resume() // must not double-schedule
	h.eng.RunAll()
	if h.fired != 1 {
		t.Fatalf("fired = %d, want 1", h.fired)
	}
	if got, want := h.eng.Now(), 3*phy.SlotTime; got != want {
		t.Fatalf("fire at %v, want %v (double Resume shortened countdown?)", got, want)
	}
}

// Property: BI draws always fall in [0, CW] and firing consumes exactly BI
// idle slots.
func TestPropertyBackoffDrawAndFire(t *testing.T) {
	f := func(seed int64, fails uint8) bool {
		h := newBackoffHarness(seed)
		for i := 0; i < int(fails%6); i++ {
			h.b.Fail()
		}
		h.b.Draw()
		if h.b.BI() < 0 || h.b.BI() > h.b.CW() {
			return false
		}
		bi := h.b.BI()
		h.b.Resume()
		h.eng.RunAll()
		return h.fired == 1 && h.eng.Now() == sim.Time(bi)*phy.SlotTime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsRatios(t *testing.T) {
	s := &Stats{}
	if s.DropRatio() != 0 || s.RetxRatio() != 0 || s.OverheadRatio() != 0 || s.AbortRatio() != 0 {
		t.Fatal("zero stats must give zero ratios")
	}
	if s.NonLeaf() {
		t.Fatal("zero stats is a leaf")
	}
	s.ReliableToTransmit = 100
	s.Drops = 2
	s.Retransmissions = 30
	s.CtrlTxTime = 10 * sim.Millisecond
	s.CtrlRxTime = 5 * sim.Millisecond
	s.ABTCheckTime = 5 * sim.Millisecond
	s.DataTxTime = 100 * sim.Millisecond
	s.MRTSSent = 50
	s.MRTSAborted = 1
	if s.DropRatio() != 0.02 {
		t.Fatalf("DropRatio = %v", s.DropRatio())
	}
	if s.RetxRatio() != 0.3 {
		t.Fatalf("RetxRatio = %v", s.RetxRatio())
	}
	if s.OverheadRatio() != 0.2 {
		t.Fatalf("OverheadRatio = %v", s.OverheadRatio())
	}
	if s.AbortRatio() != 0.02 {
		t.Fatalf("AbortRatio = %v", s.AbortRatio())
	}
	if !s.NonLeaf() {
		t.Fatal("forwarder not detected as non-leaf")
	}
}

func TestServiceString(t *testing.T) {
	if Reliable.String() != "reliable" || Unreliable.String() != "unreliable" {
		t.Fatal("Service strings")
	}
}

func TestDefaultLimits(t *testing.T) {
	l := DefaultLimits()
	if l.RetryLimit != 7 || l.MaxReceivers != 20 || l.QueueCap <= 0 {
		t.Fatalf("DefaultLimits = %+v", l)
	}
}
