package fault

import (
	"testing"

	"rmac/internal/frame"
	"rmac/internal/geom"
	"rmac/internal/mobility"
	"rmac/internal/phy"
	"rmac/internal/sim"
)

// countHandler tallies deliveries.
type countHandler struct {
	rxOK, rxBad int
}

func (h *countHandler) OnFrameReceived(f frame.Frame, ok bool, _ sim.Time) {
	if ok {
		h.rxOK++
	} else {
		h.rxBad++
	}
}
func (h *countHandler) OnCarrierChange(bool)        {}
func (h *countHandler) OnToneChange(phy.Tone, bool) {}
func (h *countHandler) OnTxDone(frame.Frame)        {}

// harness builds n all-in-range radios with counting handlers and a
// periodic broadcast from node 0 every interval for the whole horizon.
func harness(t testing.TB, seed int64, n int, cfg Config) (*sim.Engine, *phy.Medium, *Injector, []*countHandler) {
	t.Helper()
	eng := sim.NewEngine(seed)
	med := phy.NewMedium(eng, phy.DefaultConfig())
	hs := make([]*countHandler, n)
	for i := 0; i < n; i++ {
		r := med.AddRadio(i, mobility.Stationary{P: geom.Point{X: float64(i), Y: 0}})
		hs[i] = &countHandler{}
		r.SetHandler(hs[i])
	}
	inj := New(eng, med, cfg)
	return eng, med, inj, hs
}

func broadcastEvery(eng *sim.Engine, src *phy.Radio, interval, horizon sim.Time) {
	for at := sim.Time(0); at < horizon; at += interval {
		eng.Schedule(at, func() {
			if !src.Transmitting() && !src.Down() {
				src.StartTx(&frame.UData{
					Transmitter: frame.AddrFromID(src.ID()),
					Receiver:    frame.Broadcast,
					Payload:     make([]byte, 200),
				})
			}
		})
	}
}

// TestBurstDeterminism: the same seed and config produce bit-identical
// impairment decisions and delivery counts.
func TestBurstDeterminism(t *testing.T) {
	cfg := Config{Burst: BurstAt(0.3), Churn: ChurnAt(0.8)}
	run := func() (Stats, []countHandler) {
		eng, med, inj, hs := harness(t, 42, 8, cfg)
		broadcastEvery(eng, med.Radios()[0], 2*sim.Millisecond, 2*sim.Second)
		// Bounded Run, not RunAll: the churn schedule reschedules itself
		// forever, so the queue never drains.
		eng.Run(3 * sim.Second)
		out := make([]countHandler, len(hs))
		for i, h := range hs {
			out[i] = *h
		}
		return inj.Stats, out
	}
	s1, h1 := run()
	s2, h2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged across identical runs:\n  %+v\n  %+v", s1, s2)
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("node %d deliveries diverged: %+v vs %+v", i, h1[i], h2[i])
		}
	}
	if s1.BurstErrors == 0 || s1.BadEntries == 0 {
		t.Fatalf("burst model never fired: %+v", s1)
	}
	if s1.Crashes == 0 || s1.Recoveries == 0 {
		t.Fatalf("churn never fired: %+v", s1)
	}
}

// TestBurstSeverityOrdering: heavier burst levels corrupt strictly more
// frames than lighter ones, and a disabled model corrupts none.
func TestBurstSeverityOrdering(t *testing.T) {
	deliveries := func(sev float64) (ok, bad int) {
		eng, med, _, hs := harness(t, 7, 4, Config{Burst: BurstAt(sev)})
		broadcastEvery(eng, med.Radios()[0], sim.Millisecond, 3*sim.Second)
		eng.RunAll()
		for _, h := range hs {
			ok += h.rxOK
			bad += h.rxBad
		}
		return ok, bad
	}
	okClean, badClean := deliveries(0)
	if badClean != 0 {
		t.Fatalf("disabled burst model corrupted %d frames", badClean)
	}
	okLight, badLight := deliveries(0.1)
	okHeavy, badHeavy := deliveries(0.6)
	if badLight == 0 || badHeavy <= badLight {
		t.Fatalf("burst severity not ordered: clean=%d light=%d heavy=%d corruptions",
			badClean, badLight, badHeavy)
	}
	if okHeavy >= okLight || okLight >= okClean {
		t.Fatalf("deliveries not ordered: clean=%d light=%d heavy=%d", okClean, okLight, okHeavy)
	}
}

// TestChurnSparesSource: with SpareSource set, node 0 is never crashed
// while other nodes churn.
func TestChurnSparesSource(t *testing.T) {
	cfg := Config{Churn: ChurnConfig{
		Enabled:     true,
		MeanUp:      50 * sim.Millisecond,
		MeanDown:    50 * sim.Millisecond,
		SpareSource: true,
	}}
	eng, med, inj, _ := harness(t, 3, 5, cfg)
	// No traffic: just let churn toggle radios for a while.
	eng.Run(5 * sim.Second)
	if inj.Stats.Crashes == 0 {
		t.Fatal("no crashes under aggressive churn")
	}
	if med.Stats.Crashes != inj.Stats.Crashes {
		t.Fatalf("medium saw %d crashes, injector counted %d", med.Stats.Crashes, inj.Stats.Crashes)
	}
	if med.Radios()[0].Down() {
		t.Fatal("spared source is down")
	}
	if d := inj.Stats.Crashes - inj.Stats.Recoveries; d > 4 {
		t.Fatalf("crash/recovery imbalance %d exceeds node count", d)
	}
}

// TestDisabledConfigIsInert: a zero Config installs nothing — the run is
// bit-identical to one without an injector at all.
func TestDisabledConfigIsInert(t *testing.T) {
	run := func(withInjector bool) (uint64, int) {
		eng := sim.NewEngine(11)
		med := phy.NewMedium(eng, phy.DefaultConfig())
		h := &countHandler{}
		a := med.AddRadio(0, mobility.Stationary{P: geom.Point{X: 0, Y: 0}})
		med.AddRadio(1, mobility.Stationary{P: geom.Point{X: 20, Y: 0}}).SetHandler(h)
		a.SetHandler(&countHandler{})
		if withInjector {
			New(eng, med, Config{})
		}
		broadcastEvery(eng, a, sim.Millisecond, 100*sim.Millisecond)
		eng.RunAll()
		return eng.Processed, h.rxOK
	}
	ev1, ok1 := run(false)
	ev2, ok2 := run(true)
	if ev1 != ev2 || ok1 != ok2 {
		t.Fatalf("inert injector perturbed the run: events %d vs %d, rxOK %d vs %d", ev1, ev2, ok1, ok2)
	}
	if ok1 == 0 {
		t.Fatal("no deliveries in baseline run")
	}
}

// TestLevelHelpers: the severity helpers disable themselves at the ends
// of their ranges and hold the documented duty cycles.
func TestLevelHelpers(t *testing.T) {
	if BurstAt(0).Enabled {
		t.Fatal("BurstAt(0) enabled")
	}
	if ChurnAt(1).Enabled {
		t.Fatal("ChurnAt(1) enabled")
	}
	b := BurstAt(0.25)
	duty := float64(b.MeanBad) / float64(b.MeanBad+b.MeanGood)
	if duty < 0.24 || duty > 0.26 {
		t.Fatalf("BurstAt(0.25) duty = %.3f", duty)
	}
	c := ChurnAt(0.8)
	avail := float64(c.MeanUp) / float64(c.MeanUp+c.MeanDown)
	if avail < 0.79 || avail > 0.81 {
		t.Fatalf("ChurnAt(0.8) availability = %.3f", avail)
	}
	if !c.SpareSource {
		t.Fatal("ChurnAt must spare the source")
	}
}
