package fault

import (
	"testing"

	"rmac/internal/frame"
	"rmac/internal/geom"
	"rmac/internal/mobility"
	"rmac/internal/phy"
	"rmac/internal/sim"
)

// benchFanout measures the phy broadcast fan-out cycle (the simulator's
// dominant per-frame cost; see phy.BenchmarkMediumFanout200) with the
// impairment layer attached, so BENCH_fault.json tracks the overhead the
// Gilbert–Elliott rolls add to every delivery. The churn schedule is
// excluded: its events are rare and don't belong in a per-frame figure.
func benchFanout(b *testing.B, n int, cfg Config) {
	eng := sim.NewEngine(1)
	med := phy.NewMedium(eng, phy.DefaultConfig())
	side := 50.0
	cols := 1
	for cols*cols < n {
		cols++
	}
	for i := 0; i < n; i++ {
		x := 100 + side*float64(i%cols)/float64(cols)
		y := 100 + side*float64(i/cols)/float64(cols)
		med.AddRadio(i, mobility.Stationary{P: geom.Point{X: x, Y: y}})
	}
	New(eng, med, cfg)
	src := med.Radios()[0]
	f := &frame.UData{
		Transmitter: frame.AddrFromID(0),
		Receiver:    frame.Broadcast,
		Payload:     make([]byte, 500),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		med.StartTx(src, f)
		eng.RunAll()
	}
}

// BenchmarkFaultFanout200 is the impaired twin of phy's
// BenchmarkMediumFanout200: 200 radios, every delivery advancing a GE
// chain and rolling a burst error.
func BenchmarkFaultFanout200(b *testing.B) {
	benchFanout(b, 200, Config{Burst: BurstAt(0.3)})
}

// BenchmarkFaultFanout200Disabled is the same harness with an inert
// injector — the faults-disabled baseline the overhead is measured
// against.
func BenchmarkFaultFanout200Disabled(b *testing.B) {
	benchFanout(b, 200, Config{})
}
