package fault

import (
	"rmac/internal/phy"
	"rmac/internal/sim"
)

// startChurn schedules the first crash of every non-spared radio. Each
// radio then alternates up/down forever via self-rescheduling closures —
// churn transitions are rare (hundreds per run, against millions of frame
// events), so the closure allocations are irrelevant and the clarity is
// worth it.
func (inj *Injector) startChurn() {
	for _, r := range inj.med.Radios() {
		if inj.cfg.Churn.SpareSource && r.ID() == 0 {
			continue
		}
		inj.scheduleCrash(r)
	}
}

// expAfter draws an exponential delay with the given mean, floored at one
// tick so the schedule always advances.
func (inj *Injector) expAfter(mean sim.Time) sim.Time {
	d := sim.Time(inj.eng.Rand().ExpFloat64() * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}

func (inj *Injector) scheduleCrash(r *phy.Radio) {
	inj.eng.After(inj.expAfter(inj.cfg.Churn.MeanUp), func() {
		inj.med.SetDown(r, true)
		inj.Stats.Crashes++
		inj.scheduleRecovery(r)
	})
}

func (inj *Injector) scheduleRecovery(r *phy.Radio) {
	inj.eng.After(inj.expAfter(inj.cfg.Churn.MeanDown), func() {
		inj.med.SetDown(r, false)
		inj.Stats.Recoveries++
		inj.scheduleCrash(r)
	})
}
