// Package fault is the simulator's deterministic impairment layer: a
// Gilbert–Elliott two-state bursty channel-error model plugged into the
// medium's delivery path, and a node-churn schedule that crashes and
// recovers radios mid-run. Both draw every random decision from the
// owning engine's seeded RNG, at points fixed by the engine's event
// order, so a run with a given seed and fault configuration is
// bit-identical across repetitions — the same contract the rest of the
// PHY honours (see package phy's determinism contract).
//
// The layer exists to exercise the paths the paper's clean-channel
// evaluation never reaches: retry exhaustion, backoff growth, busy-tone
// loss, and the protocols' behaviour when a counterpart silently
// disappears mid-handshake.
package fault

import (
	"rmac/internal/phy"
	"rmac/internal/sim"
)

// BurstConfig parameterises the Gilbert–Elliott bursty channel: the
// channel at each receiver alternates between a Good and a Bad state with
// exponentially distributed sojourn times, and frames roll an error
// against the BER of the state the receiver is in at reception end.
type BurstConfig struct {
	// Enabled turns the bursty model on.
	Enabled bool
	// MeanGood and MeanBad are the mean sojourn times of the two states.
	MeanGood sim.Time
	MeanBad  sim.Time
	// BERGood and BERBad are the per-bit error probabilities in each
	// state. The classic Gilbert channel is BERGood = 0.
	BERGood float64
	BERBad  float64
}

// ChurnConfig parameterises node churn: each radio alternates between up
// and crashed with exponentially distributed sojourn times. A crashed
// radio neither transmits nor receives and drops its in-flight PHY state
// (see phy.Medium.SetDown), forcing the MACs' retry/backoff/drop paths.
type ChurnConfig struct {
	// Enabled turns churn on.
	Enabled bool
	// MeanUp and MeanDown are the mean sojourn times of the two states.
	MeanUp   sim.Time
	MeanDown sim.Time
	// SpareSource exempts node 0 — the multicast source in the paper's
	// workloads — from churn, so delivery-ratio curves measure receiver
	// and relay resilience rather than trivially collapsing every time
	// the only traffic generator crashes.
	SpareSource bool
}

// Config bundles the impairment layer's knobs. The zero value disables
// everything.
type Config struct {
	Burst BurstConfig
	Churn ChurnConfig
}

// Enabled reports whether any impairment is switched on.
func (c Config) Enabled() bool { return c.Burst.Enabled || c.Churn.Enabled }

// BurstAt returns a bursty-channel severity level: sev is the long-run
// fraction of time each receiver spends in the Bad state. The Good state
// is clean; Bad-state BER is fixed at 1e-3, which corrupts most control
// frames (~55% at 100 bytes) and nearly all data frames, so sev directly
// controls how much of the timeline is effectively erased. Mean burst
// length is held at 10 ms — a few frame exchanges — so higher sev means
// more frequent bursts, not longer ones. sev = 0 disables the model.
func BurstAt(sev float64) BurstConfig {
	if sev <= 0 {
		return BurstConfig{}
	}
	if sev > 0.9 {
		sev = 0.9
	}
	meanBad := 10 * sim.Millisecond
	meanGood := sim.Time(float64(meanBad) * (1 - sev) / sev)
	return BurstConfig{
		Enabled:  true,
		MeanGood: meanGood,
		MeanBad:  meanBad,
		BERGood:  0,
		BERBad:   1e-3,
	}
}

// ChurnAt returns a churn severity level: avail is the long-run fraction
// of time each (non-spared) node is up. Mean downtime is held at 250 ms —
// long enough to outlive any retry schedule, so a crash reliably costs
// the in-flight exchange — and uptime scales to match the requested
// availability. avail ≥ 1 disables churn.
func ChurnAt(avail float64) ChurnConfig {
	if avail >= 1 {
		return ChurnConfig{}
	}
	if avail < 0.1 {
		avail = 0.1
	}
	meanDown := 250 * sim.Millisecond
	meanUp := sim.Time(float64(meanDown) * avail / (1 - avail))
	return ChurnConfig{
		Enabled:     true,
		MeanUp:      meanUp,
		MeanDown:    meanDown,
		SpareSource: true,
	}
}

// Stats counts what the impairment layer did to a run.
type Stats struct {
	// BurstErrors is the number of frames corrupted by the bursty model.
	BurstErrors uint64
	// BadEntries is the number of Good→Bad transitions across receivers.
	BadEntries uint64
	// Crashes and Recoveries count churn transitions actually applied.
	Crashes    uint64
	Recoveries uint64
}

// Injector owns the fault state for one simulation: per-receiver
// Gilbert–Elliott chains and the churn schedule. Create it with New
// after every radio has been added to the medium.
type Injector struct {
	eng *sim.Engine
	med *phy.Medium
	cfg Config

	chains map[*phy.Radio]*geChain

	// Stats accumulates impairment counters across the run.
	Stats Stats
}

// New attaches an impairment layer to the medium. All radios must already
// be registered: radios added later see no burst errors and no churn.
// When the bursty model is enabled, New installs the injector as the
// medium's Impairment; when churn is enabled, it schedules the first
// crash of every non-spared radio. A fully disabled config returns an
// inert injector and leaves the medium untouched.
//
// The churn schedule reschedules itself indefinitely, so a churny
// simulation must be driven with Engine.Run(horizon) — RunAll would
// never drain the queue.
func New(eng *sim.Engine, med *phy.Medium, cfg Config) *Injector {
	inj := &Injector{eng: eng, med: med, cfg: cfg}
	if cfg.Burst.Enabled {
		inj.chains = make(map[*phy.Radio]*geChain, len(med.Radios()))
		for _, r := range med.Radios() {
			inj.chains[r] = &geChain{}
		}
		med.SetImpairment(inj)
	}
	if cfg.Churn.Enabled {
		inj.startChurn()
	}
	return inj
}

// Config returns the configuration the injector was built with.
func (inj *Injector) Config() Config { return inj.cfg }
