package fault

import (
	"math"

	"rmac/internal/phy"
	"rmac/internal/sim"
)

// geChain is one receiver's Gilbert–Elliott channel state. Chains advance
// lazily: nothing is scheduled on the event queue; instead, on each
// delivery the chain fast-forwards through whole sojourns until it covers
// the current simulation time, drawing each sojourn length from the
// engine RNG. Because deliveries are engine events, the draw sequence is
// fixed by the engine's (time, seq) order and the model stays
// deterministic without costing an event per state flip.
type geChain struct {
	bad   bool
	until sim.Time // end of the current sojourn; 0 = not started
}

// advance fast-forwards the chain to cover time now.
func (c *geChain) advance(inj *Injector, now sim.Time) {
	cfg := &inj.cfg.Burst
	if c.until == 0 {
		// Chains start in Good mid-sojourn. For an exponential sojourn the
		// stationary residual lifetime is again Exp(MeanGood), so drawing
		// the first sojourn end from that distribution desynchronises
		// receivers without biasing early bad-state entry times.
		c.until = sim.Time(inj.eng.Rand().ExpFloat64()*float64(cfg.MeanGood)) + 1
	}
	for c.until <= now {
		c.bad = !c.bad
		mean := cfg.MeanGood
		if c.bad {
			mean = cfg.MeanBad
			inj.Stats.BadEntries++
		}
		d := sim.Time(inj.eng.Rand().ExpFloat64() * float64(mean))
		if d < 1 {
			d = 1 // keep sojourns strictly advancing
		}
		c.until += d
	}
}

// FrameError implements phy.Impairment: it reports whether a frame of the
// given wire size arriving at rx now is corrupted by the bursty channel.
// It allocates nothing and draws only from the engine RNG.
func (inj *Injector) FrameError(rx, tx *phy.Radio, wireBytes int) bool {
	c := inj.chains[rx]
	if c == nil {
		// Radio added after New: no chain, no impairment.
		return false
	}
	c.advance(inj, inj.eng.Now())
	ber := inj.cfg.Burst.BERGood
	if c.bad {
		ber = inj.cfg.Burst.BERBad
	}
	if ber <= 0 {
		return false
	}
	p := 1 - math.Pow(1-ber, float64(wireBytes*8))
	if inj.eng.Rand().Float64() < p {
		inj.Stats.BurstErrors++
		return true
	}
	return false
}
