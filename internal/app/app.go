// Package app implements the paper's evaluation workload (§4.1.1): a
// multicast application that forwards packets from a single source (node
// 0) along the BLESS tree to all nodes, using the MAC's Reliable Send at
// every hop, and collects the end-to-end metrics behind Figures 7–9
// (packet delivery ratio, drop ratio context, end-to-end delay).
package app

import (
	"encoding/binary"
	"fmt"

	"rmac/internal/frame"
	"rmac/internal/mac"
	"rmac/internal/routing"
	"rmac/internal/sim"
)

// DataMagic is the first payload byte of an application data packet.
const DataMagic = byte('D')

// HeaderSize is the application header length: magic, source ID,
// sequence number, generation timestamp.
const HeaderSize = 1 + 4 + 4 + 8

// MarshalPacket builds an application payload of exactly size bytes
// (HeaderSize minimum) carrying (src, seq, generated-at).
func MarshalPacket(src int, seq uint32, gen sim.Time, size int) []byte {
	return AppendPacket(nil, src, seq, gen, size)
}

// AppendPacket appends the encoded packet to dst (the allocation-free
// form used by the source, which encodes into a reusable buffer).
func AppendPacket(dst []byte, src int, seq uint32, gen sim.Time, size int) []byte {
	if size < HeaderSize {
		size = HeaderSize
	}
	n := len(dst)
	dst = append(dst, make([]byte, size)...)
	out := dst[n:]
	out[0] = DataMagic
	binary.BigEndian.PutUint32(out[1:], uint32(src))
	binary.BigEndian.PutUint32(out[5:], seq)
	binary.BigEndian.PutUint64(out[9:], uint64(gen))
	return dst
}

// ParsePacket decodes an application payload header.
func ParsePacket(payload []byte) (src int, seq uint32, gen sim.Time, ok bool) {
	if len(payload) < HeaderSize || payload[0] != DataMagic {
		return 0, 0, 0, false
	}
	src = int(binary.BigEndian.Uint32(payload[1:]))
	seq = binary.BigEndian.Uint32(payload[5:])
	gen = sim.Time(binary.BigEndian.Uint64(payload[9:]))
	return src, seq, gen, true
}

// Metrics aggregates network-wide application-level results for one run.
type Metrics struct {
	// Nodes is the network size (delivery denominator uses Nodes-1).
	Nodes int
	// Generated counts packets the source produced.
	Generated uint64
	// Receptions counts unique (node, src, seq) deliveries.
	Receptions uint64
	// Duplicates counts suppressed duplicate deliveries.
	Duplicates uint64
	// Delay accounting over all unique receptions.
	DelaySum   sim.Time
	DelayMax   sim.Time
	DelayCount uint64
}

// DeliveryRatio is R_deliv: packets received by all nodes over packets
// supposed to be received by all nodes (§4.2.1).
func (m *Metrics) DeliveryRatio() float64 {
	supposed := m.Generated * uint64(m.Nodes-1)
	if supposed == 0 {
		return 0
	}
	return float64(m.Receptions) / float64(supposed)
}

// AvgDelay is the average end-to-end delay in seconds (§4.2.3).
func (m *Metrics) AvgDelay() float64 {
	if m.DelayCount == 0 {
		return 0
	}
	return (sim.Time(uint64(m.DelaySum) / m.DelayCount)).Seconds()
}

// Node is the per-node application stack: it dispatches MAC deliveries to
// the routing protocol or the forwarder, deduplicates packets, records
// receptions and forwards down the tree.
type Node struct {
	eng     *sim.Engine
	mac     mac.MAC
	rt      *routing.Protocol
	id      int
	metrics *Metrics

	// seen holds one reception bitset per packet source, indexed by the
	// origin node ID and then by sequence number. Sequence numbers are
	// dense per source (they count up from 1), so a bitset replaces the
	// old hash map on the per-delivery hot path with two indexed loads.
	seen [][]uint64

	// reqs pools forwarding SendRequests; childBuf backs the per-forward
	// children query. Both are recycled/reused in steady state.
	reqs     mac.ReqPool
	childBuf []int

	// Forwarded counts reliable sends this node initiated.
	Forwarded uint64
	// SendRejected counts forwards rejected by a full MAC queue.
	SendRejected uint64
}

// NewNode wires the application for one node and installs itself as the
// MAC's upper layer.
func NewNode(eng *sim.Engine, m mac.MAC, rt *routing.Protocol, id int, metrics *Metrics) *Node {
	n := &Node{eng: eng, mac: m, rt: rt, id: id, metrics: metrics}
	m.SetUpper(n)
	return n
}

// markSeen records (src, seq) and reports whether it was new. The bitsets
// grow on demand; steady state makes no allocations once every source's
// set has caught up with its sequence counter.
func (n *Node) markSeen(src int, seq uint32) bool {
	for src >= len(n.seen) {
		n.seen = append(n.seen, nil)
	}
	w, bit := int(seq>>6), uint64(1)<<(seq&63)
	bs := n.seen[src]
	for w >= len(bs) {
		bs = append(bs, 0)
	}
	n.seen[src] = bs
	if bs[w]&bit != 0 {
		return false
	}
	bs[w] |= bit
	return true
}

// OnDeliver implements mac.UpperLayer: beacons go to routing, data to the
// forwarder.
func (n *Node) OnDeliver(payload []byte, info mac.RxInfo) {
	if len(payload) == 0 {
		return
	}
	switch payload[0] {
	case routing.BeaconMagic:
		n.rt.HandleBeacon(payload)
	case DataMagic:
		n.onData(payload)
	}
}

// OnSendComplete implements mac.UpperLayer. Per-hop outcomes are already
// accounted in the MAC stats; the request (a forward from this node's
// pool, or a beacon from the routing pool) is recycled here, after the
// loaned TxResult slices are dead.
func (n *Node) OnSendComplete(res mac.TxResult) { res.Req.Recycle() }

func (n *Node) onData(payload []byte) {
	src, seq, gen, ok := ParsePacket(payload)
	if !ok {
		return
	}
	if !n.markSeen(src, seq) {
		n.metrics.Duplicates++
		return
	}
	d := n.eng.Now() - gen
	n.metrics.Receptions++
	n.metrics.DelaySum += d
	n.metrics.DelayCount++
	if d > n.metrics.DelayMax {
		n.metrics.DelayMax = d
	}
	n.forward(payload)
}

// forward relays a packet to this node's current children over Reliable
// Send (§4.1.1: "packets are transmitted from the parent node to the
// child nodes using the reliable multicast services").
func (n *Node) forward(payload []byte) {
	n.childBuf = n.rt.ChildrenInto(n.childBuf[:0])
	children := n.childBuf
	if len(children) == 0 {
		return
	}
	req := n.reqs.Get()
	req.Service = mac.Reliable
	for _, c := range children {
		req.Dests = append(req.Dests, frame.AddrFromID(c))
	}
	// payload may alias a pooled frame's backing (OnDeliver loan): copy
	// into the request's own storage.
	req.Payload = append(req.Payload, payload...)
	n.Forwarded++
	if !n.mac.Send(req) {
		n.SendRejected++
		req.Recycle() // rejected: no OnSendComplete will follow
	}
}

// Source drives packet generation at the root node.
type Source struct {
	node       *Node
	rate       float64 // packets per second
	count      int
	packetSize int
	sent       int
	buf        []byte // reusable payload encoding buffer
}

// NewSource attaches a generator to the root node's application.
func NewSource(node *Node, rate float64, count, packetSize int) *Source {
	if rate <= 0 || count < 0 {
		panic(fmt.Sprintf("app: invalid source rate %v / count %d", rate, count))
	}
	return &Source{node: node, rate: rate, count: count, packetSize: packetSize}
}

// Start begins generation at startAt; packets are spaced 1/rate apart.
func (s *Source) Start(startAt sim.Time) {
	s.node.eng.ScheduleCall(startAt, s, 0)
}

// Call implements sim.Caller: the generation tick, scheduled closure-free.
func (s *Source) Call(int32) { s.generate() }

func (s *Source) generate() {
	if s.sent >= s.count {
		return
	}
	s.sent++
	n := s.node
	seq := uint32(s.sent)
	s.buf = AppendPacket(s.buf[:0], n.id, seq, n.eng.Now(), s.packetSize)
	n.metrics.Generated++
	n.markSeen(n.id, seq) // the source never re-forwards its own packet
	n.forward(s.buf)
	interval := sim.Time(float64(sim.Second) / s.rate)
	n.eng.AfterCall(interval, s, 0)
}

// Sent reports how many packets the source has generated so far.
func (s *Source) Sent() int { return s.sent }
