package app

import (
	"testing"
	"testing/quick"

	"rmac/internal/frame"
	"rmac/internal/mac"
	"rmac/internal/routing"
	"rmac/internal/sim"
)

// captureMAC records sends and lets the test inject deliveries.
type captureMAC struct {
	id    int
	upper mac.UpperLayer
	stats mac.Stats
	sent  []*mac.SendRequest
	full  bool
}

func (f *captureMAC) Addr() frame.Addr          { return frame.AddrFromID(f.id) }
func (f *captureMAC) Stats() *mac.Stats         { return &f.stats }
func (f *captureMAC) SetUpper(u mac.UpperLayer) { f.upper = u }
func (f *captureMAC) Send(req *mac.SendRequest) bool {
	if f.full {
		return false
	}
	f.sent = append(f.sent, req)
	return true
}

// fixedChildrenRouting is a routing.Protocol with neighbours injected so
// Children() returns a fixed set.
func routingWithChildren(eng *sim.Engine, m mac.MAC, id int, children []int) *routing.Protocol {
	cfg := routing.Config{Period: sim.Second, Expiry: 10000 * sim.Second}
	rt := routing.New(eng, m, id, id == 0, cfg)
	for _, c := range children {
		rt.HandleBeacon(routing.Beacon{ID: c, Hops: 99, Parent: id}.Marshal())
	}
	return rt
}

func TestPacketRoundTrip(t *testing.T) {
	p := MarshalPacket(3, 1234, 5*sim.Second, 500)
	if len(p) != 500 {
		t.Fatalf("size = %d", len(p))
	}
	src, seq, gen, ok := ParsePacket(p)
	if !ok || src != 3 || seq != 1234 || gen != 5*sim.Second {
		t.Fatalf("parse = %d %d %v %v", src, seq, gen, ok)
	}
	if _, _, _, ok := ParsePacket([]byte{'B', 0}); ok {
		t.Fatal("beacon parsed as data")
	}
	// Undersized requests are padded to the header.
	if len(MarshalPacket(0, 1, 0, 4)) != HeaderSize {
		t.Fatal("padding")
	}
}

func TestPropertyPacketRoundTrip(t *testing.T) {
	f := func(src uint16, seq uint32, gen int64, size uint16) bool {
		if gen < 0 {
			gen = -gen
		}
		p := MarshalPacket(int(src), seq, sim.Time(gen), int(size))
		s2, q2, g2, ok := ParsePacket(p)
		return ok && s2 == int(src) && q2 == seq && g2 == sim.Time(gen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsArithmetic(t *testing.T) {
	m := &Metrics{Nodes: 75, Generated: 100, Receptions: 3700}
	if got := m.DeliveryRatio(); got != 0.5 {
		t.Fatalf("delivery ratio = %v, want 0.5", got)
	}
	m.DelaySum = 3 * sim.Second
	m.DelayCount = 2
	if got := m.AvgDelay(); got != 1.5 {
		t.Fatalf("avg delay = %v", got)
	}
	empty := &Metrics{Nodes: 75}
	if empty.DeliveryRatio() != 0 || empty.AvgDelay() != 0 {
		t.Fatal("empty metrics must be zero")
	}
}

func TestNodeDedupesAndForwards(t *testing.T) {
	eng := sim.NewEngine(1)
	m := &captureMAC{id: 5}
	rt := routingWithChildren(eng, m, 5, []int{7, 9})
	metrics := &Metrics{Nodes: 10}
	n := NewNode(eng, m, rt, 5, metrics)

	payload := MarshalPacket(0, 1, 0, 500)
	n.OnDeliver(payload, mac.RxInfo{})
	n.OnDeliver(payload, mac.RxInfo{}) // duplicate

	if metrics.Receptions != 1 || metrics.Duplicates != 1 {
		t.Fatalf("metrics = %+v", metrics)
	}
	if len(m.sent) != 1 {
		t.Fatalf("forwards = %d, want 1", len(m.sent))
	}
	req := m.sent[0]
	if req.Service != mac.Reliable || len(req.Dests) != 2 {
		t.Fatalf("forward req = %+v", req)
	}
	if req.Dests[0] != frame.AddrFromID(7) || req.Dests[1] != frame.AddrFromID(9) {
		t.Fatalf("dests = %v", req.Dests)
	}
	if n.Forwarded != 1 {
		t.Fatal("Forwarded count")
	}
}

func TestLeafDoesNotForward(t *testing.T) {
	eng := sim.NewEngine(2)
	m := &captureMAC{id: 3}
	rt := routingWithChildren(eng, m, 3, nil)
	n := NewNode(eng, m, rt, 3, &Metrics{Nodes: 4})
	n.OnDeliver(MarshalPacket(0, 1, 0, 100), mac.RxInfo{})
	if len(m.sent) != 0 {
		t.Fatal("leaf forwarded")
	}
}

func TestBeaconDispatchedToRouting(t *testing.T) {
	eng := sim.NewEngine(3)
	m := &captureMAC{id: 2}
	rt := routing.New(eng, m, 2, false, routing.DefaultConfig())
	n := NewNode(eng, m, rt, 2, &Metrics{Nodes: 3})
	n.OnDeliver(routing.Beacon{ID: 1, Hops: 0, Parent: -1}.Marshal(), mac.RxInfo{})
	if rt.NeighborCount() != 1 {
		t.Fatal("beacon not dispatched to routing")
	}
	// Garbage and empty payloads are ignored without panicking.
	n.OnDeliver(nil, mac.RxInfo{})
	n.OnDeliver([]byte{0xEE}, mac.RxInfo{})
}

func TestDelayAccounting(t *testing.T) {
	eng := sim.NewEngine(4)
	m := &captureMAC{id: 1}
	rt := routingWithChildren(eng, m, 1, nil)
	metrics := &Metrics{Nodes: 2}
	n := NewNode(eng, m, rt, 1, metrics)
	// Packet generated at t=0; delivered at 250 ms and another at 750 ms.
	eng.Schedule(250*sim.Millisecond, func() { n.OnDeliver(MarshalPacket(0, 1, 0, 64), mac.RxInfo{}) })
	eng.Schedule(750*sim.Millisecond, func() { n.OnDeliver(MarshalPacket(0, 2, 0, 64), mac.RxInfo{}) })
	eng.RunAll()
	if metrics.AvgDelay() != 0.5 {
		t.Fatalf("avg delay = %v, want 0.5", metrics.AvgDelay())
	}
	if metrics.DelayMax != 750*sim.Millisecond {
		t.Fatalf("max delay = %v", metrics.DelayMax)
	}
}

func TestSourceGeneratesAtRate(t *testing.T) {
	eng := sim.NewEngine(5)
	m := &captureMAC{id: 0}
	rt := routingWithChildren(eng, m, 0, []int{1})
	metrics := &Metrics{Nodes: 2}
	n := NewNode(eng, m, rt, 0, metrics)
	src := NewSource(n, 10, 25, 500)
	src.Start(sim.Second)
	eng.Run(30 * sim.Second)
	if src.Sent() != 25 || metrics.Generated != 25 {
		t.Fatalf("generated = %d/%d, want 25", src.Sent(), metrics.Generated)
	}
	if len(m.sent) != 25 {
		t.Fatalf("forwards = %d", len(m.sent))
	}
	// First at 1 s, spaced 100 ms: last at 1 s + 2.4 s.
	if got := m.sent[24].EnqueuedAt; got != 0 { // captureMAC does not stamp
		t.Fatalf("unexpected stamp %v", got)
	}
	// The source's own packets are marked seen: delivering one back must
	// not count as a reception or be re-forwarded.
	n.OnDeliver(MarshalPacket(0, 1, sim.Second, 500), mac.RxInfo{})
	if metrics.Receptions != 0 || metrics.Duplicates != 1 {
		t.Fatalf("echo handling: %+v", metrics)
	}
}

func TestSourceStopsAtCount(t *testing.T) {
	eng := sim.NewEngine(6)
	m := &captureMAC{id: 0}
	rt := routingWithChildren(eng, m, 0, []int{1})
	n := NewNode(eng, m, rt, 0, &Metrics{Nodes: 2})
	src := NewSource(n, 1000, 5, 100)
	src.Start(0)
	eng.Run(10 * sim.Second)
	if src.Sent() != 5 {
		t.Fatalf("sent = %d", src.Sent())
	}
	if eng.Pending() != 0 {
		t.Fatal("generator left events pending")
	}
}

func TestSendRejectionCounted(t *testing.T) {
	eng := sim.NewEngine(7)
	m := &captureMAC{id: 1, full: true}
	rt := routingWithChildren(eng, m, 1, []int{2})
	n := NewNode(eng, m, rt, 1, &Metrics{Nodes: 3})
	n.OnDeliver(MarshalPacket(0, 1, 0, 64), mac.RxInfo{})
	if n.SendRejected != 1 {
		t.Fatal("rejected send not counted")
	}
}

func TestInvalidSourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate must panic")
		}
	}()
	NewSource(nil, 0, 10, 500)
}
