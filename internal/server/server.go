// Package server implements rmacserved: a fault-tolerant HTTP/JSON sweep
// service wrapped around the simulation engine. It accepts validated
// scenario grids (POST /sweeps), fans grid points out to a worker pool
// with per-point deadlines, panic isolation, capped-exponential-backoff
// retries and a poison quarantine, backs results with a content-addressed
// cache keyed on (config hash, code version), journals every outcome so
// in-flight sweeps survive a server crash, bounds its queues with
// explicit 429 backpressure, and drains gracefully on shutdown. See
// DESIGN.md §12 for the architecture and failure-mode walkthrough.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"rmac/internal/experiment"
	"rmac/internal/metrics"
)

// Config tunes the service. Zero values select the documented defaults.
type Config struct {
	// Workers is the simulation pool size (default GOMAXPROCS).
	Workers int
	// QueueCap bounds admitted-but-unfinished grid points across all
	// jobs; submissions beyond it get 429 + Retry-After (default 1024).
	QueueCap int
	// MaxAttempts quarantines a grid point after this many failed
	// attempts (default 3).
	MaxAttempts int
	// RetryBase and RetryCap shape the capped exponential backoff
	// between attempts (defaults 100ms and 5s).
	RetryBase time.Duration
	RetryCap  time.Duration
	// PointDeadline is the per-point wall-clock budget enforced through
	// the engine's cooperative cancellation; 0 disables (default 2m).
	PointDeadline time.Duration
	// JournalPath enables the crash-recovery journal ("" disables).
	JournalPath string
	// Logger receives the structured access and worker logs; nil
	// discards them (the metrics registry is always on regardless).
	Logger *slog.Logger

	// runFn overrides the simulation entry point; the chaos tests inject
	// scripted panics, hangs and counters here. nil means
	// experiment.RunCtx. Unexported: real deployments always simulate.
	runFn func(ctx context.Context, cfg experiment.Config) experiment.RunResult
}

func (c *Config) withDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 100 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 5 * time.Second
	}
	if c.PointDeadline == 0 {
		c.PointDeadline = 2 * time.Minute
	}
	if c.PointDeadline < 0 {
		c.PointDeadline = 0
	}
}

// Server is one rmacserved instance.
type Server struct {
	cfg Config

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string
	nextID  int
	pending int // admitted, non-terminal grid points (see queue.go)

	queue   chan task
	cache   *cache
	journal *journal
	metrics *serverMetrics
	log     *slog.Logger

	draining bool
	baseCtx  context.Context
	baseStop context.CancelFunc
	stopOnce sync.Once
	wg       sync.WaitGroup

	rng *rand.Rand // retry jitter; guarded by mu

	// runFn executes one grid point; tests inject panics, hangs and
	// counters here. Defaults to experiment.RunCtx.
	runFn func(ctx context.Context, cfg experiment.Config) experiment.RunResult
}

// New builds a server, replays the journal (if configured), starts the
// worker pool, and re-queues any journaled work that had not finished.
func New(cfg Config) (*Server, error) {
	cfg.withDefaults()
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		jobs:     make(map[string]*Job),
		metrics:  newServerMetrics(),
		log:      cfg.Logger,
		baseCtx:  ctx,
		baseStop: stop,
		rng:      rand.New(rand.NewSource(time.Now().UnixNano())),
		runFn:    experiment.RunCtx,
	}
	if s.log == nil {
		s.log = slog.New(discardHandler{})
	}
	s.cache = newCache(s.metrics.cacheHits, s.metrics.cacheMisses, s.metrics.cacheEntries)
	s.metrics.workers.Set(int64(cfg.Workers))
	s.metrics.queueCap.Set(int64(cfg.QueueCap))
	if cfg.runFn != nil {
		s.runFn = cfg.runFn
	}
	var recovered []record
	if cfg.JournalPath != "" {
		j, recs, err := openJournal(cfg.JournalPath)
		if err != nil {
			stop()
			return nil, err
		}
		j.lat = s.metrics.journalAppend
		s.journal = j
		recovered = recs
	}
	resume := s.replay(recovered)
	s.queue = make(chan task, cfg.QueueCap+len(resume))
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	for _, t := range resume {
		s.queue <- t
	}
	return s, nil
}

// replay reconstructs jobs from journal records and returns the tasks to
// re-queue: every point of every incomplete, uncanceled job that has no
// journaled terminal outcome. Completed points are restored as done and
// their results fed to the cache, so a resumed sweep re-runs only what
// the crash interrupted.
func (s *Server) replay(recs []record) []task {
	for _, rec := range recs {
		switch rec.T {
		case "submit":
			if rec.Req == nil {
				continue
			}
			cfgs, err := rec.Req.expand()
			if err != nil {
				// The journaled request no longer expands (config
				// contract drift across versions); nothing to resume.
				continue
			}
			job := s.buildJobLocked(rec.Job, *rec.Req, cfgs)
			if !rec.Time.IsZero() {
				job.Submitted = rec.Time
			}
			if n := numericSuffix(rec.Job); n >= s.nextID {
				s.nextID = n
			}
		case "point":
			job := s.jobs[rec.Job]
			if job == nil || rec.Idx >= len(job.points) || rec.Result == nil {
				continue
			}
			pt := job.points[rec.Idx]
			if pt.State.terminal() {
				continue
			}
			res := *rec.Result
			pt.Result = &res
			pt.CacheHit = rec.CacheHit
			pt.State = stateDone
			job.done++
			if rec.CacheHit {
				job.cacheHits++
				s.metrics.points.At(outCached).Inc()
			} else {
				// Re-feeding the predecessor's simulated totals is what
				// keeps every counter monotone across a crash/restart.
				s.metrics.addPoint(&res)
				s.metrics.points.At(outDone).Inc()
			}
			s.cache.put(rec.Key, res)
		case "quarantine":
			job := s.jobs[rec.Job]
			if job == nil || rec.Idx >= len(job.points) {
				continue
			}
			pt := job.points[rec.Idx]
			if pt.State.terminal() {
				continue
			}
			pt.State = stateQuarantined
			pt.Attempts = rec.Attempts
			pt.LastErr = rec.Err
			job.quarantined++
			s.metrics.points.At(outQuarantined).Inc()
		case "cancel":
			job := s.jobs[rec.Job]
			if job == nil {
				continue
			}
			job.cancelled = true
			job.cancel()
			for _, pt := range job.points {
				if !pt.State.terminal() {
					pt.State = stateCanceled
					job.canceled++
					s.metrics.points.At(outCanceled).Inc()
				}
			}
		}
	}
	var resume []task
	for _, id := range s.order {
		job := s.jobs[id]
		if job.cancelled {
			continue
		}
		for _, pt := range job.points {
			if !pt.State.terminal() {
				pt.State = statePending
				resume = append(resume, task{job: job, pt: pt})
				s.pending++
			}
		}
	}
	s.metrics.queueDepth.Set(int64(s.pending))
	if len(recs) > 0 {
		s.log.Info("journal replayed",
			"records", len(recs), "jobs", len(s.jobs), "resumed", len(resume))
	}
	return resume
}

func numericSuffix(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "j"))
	if err != nil {
		return 0
	}
	return n
}

// buildJobLocked materializes a job and registers it; used by both submit
// and journal replay (during New, before workers exist, so "Locked" is
// nominal there).
func (s *Server) buildJobLocked(id string, req SweepRequest, cfgs []experiment.Config) *Job {
	ctx, cancel := context.WithCancel(s.baseCtx)
	job := &Job{
		ID:        id,
		Req:       req,
		Submitted: time.Now(),
		ctx:       ctx,
		cancel:    cancel,
		changed:   make(chan struct{}),
	}
	for i, cfg := range cfgs {
		job.points = append(job.points, &point{Idx: i, Cfg: cfg, Key: cfg.CacheKey(), State: statePending})
	}
	s.jobs[id] = job
	s.order = append(s.order, id)
	s.metrics.jobs.Set(int64(len(s.jobs)))
	return job
}

// finishLocked moves a point to a terminal state and updates job and
// queue accounting. Caller holds s.mu.
func (s *Server) finishLocked(job *Job, pt *point, st pointState, reason string) {
	pt.State = st
	if reason != "" {
		pt.LastErr = reason
	}
	switch st {
	case stateDone:
		job.done++
		if pt.CacheHit {
			s.metrics.points.At(outCached).Inc()
		} else {
			s.metrics.points.At(outDone).Inc()
		}
	case stateQuarantined:
		job.quarantined++
		s.metrics.points.At(outQuarantined).Inc()
	case stateCanceled:
		job.canceled++
		s.metrics.points.At(outCanceled).Inc()
	}
	s.releaseLocked()
	s.touchLocked(job)
}

// touchLocked wakes every watcher of the job. Caller holds s.mu.
func (s *Server) touchLocked(job *Job) {
	close(job.changed)
	job.changed = make(chan struct{})
}

// Handler returns the service's HTTP API, wrapped in the access-log and
// request-counter middleware. Besides the JSON API it mounts the
// Prometheus scrape endpoint and the stdlib pprof surface (CPU and heap
// profiles, goroutine dumps — the debugging complement to /metrics).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.metrics.handleMetrics)
	mux.HandleFunc("POST /sweeps", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s.instrument(mux)
}

// Registry exposes the server's metric registry for embedding callers
// and tests; GET /metrics renders exactly this.
func (s *Server) Registry() *metrics.Registry {
	return s.metrics.reg
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports whether the server is accepting new work: 503
// while draining or while the queue is saturated, so load balancers stop
// routing submissions here before they start bouncing with 429/503.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining, pending := s.draining, s.pending
	s.mu.Unlock()
	switch {
	case draining:
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case pending >= s.cfg.QueueCap:
		http.Error(w, "queue saturated", http.StatusServiceUnavailable)
	default:
		fmt.Fprintln(w, "ready")
	}
}

// ServerStats is the legacy JSON /stats payload. It is derived entirely
// from the metric registry's instruments — /stats and /metrics can never
// disagree. The field ↔ series mapping (documented in DESIGN.md §13):
//
//	pending       = rmac_service_queue_points
//	workers       = rmac_service_workers
//	queue_cap     = rmac_service_queue_cap_points
//	jobs          = rmac_service_jobs
//	cache.entries = rmac_service_cache_entries
//	cache.hits    = rmac_service_cache_hits_total
//	cache.misses  = rmac_service_cache_misses_total
//
// draining and code_version have no series (one is a lifecycle bit, the
// other belongs in a label on some future build-info gauge).
type ServerStats struct {
	Pending     int        `json:"pending"`
	Workers     int        `json:"workers"`
	QueueCap    int        `json:"queue_cap"`
	Draining    bool       `json:"draining"`
	Jobs        int        `json:"jobs"`
	Cache       CacheStats `json:"cache"`
	CodeVersion string     `json:"code_version"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	m := s.metrics
	st := ServerStats{
		Pending:     int(m.queueDepth.Value()),
		Workers:     int(m.workers.Value()),
		QueueCap:    int(m.queueCap.Value()),
		Draining:    draining,
		Jobs:        int(m.jobs.Value()),
		Cache:       s.cache.stats(),
		CodeVersion: experiment.CodeVersion(),
	}
	writeJSON(w, http.StatusOK, st)
}

// SubmitResponse is the 202 payload of POST /sweeps.
type SubmitResponse struct {
	Job    string `json:"job"`
	Points int    `json:"points"`
	Status string `json:"status_url"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	cfgs, err := req.expand()
	if err != nil {
		http.Error(w, "bad sweep: "+err.Error(), http.StatusBadRequest)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	ok, retryAfter := s.admitLocked(len(cfgs))
	if !ok {
		s.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		http.Error(w, "queue full", http.StatusTooManyRequests)
		return
	}
	s.nextID++
	id := "j" + strconv.Itoa(s.nextID)
	job := s.buildJobLocked(id, req, cfgs)
	s.journal.append(record{T: "submit", Job: id, Time: job.Submitted, Req: &req, Version: experiment.CodeVersion()})
	tasks := make([]task, len(job.points))
	for i, pt := range job.points {
		tasks[i] = task{job: job, pt: pt}
	}
	s.mu.Unlock()

	// Capacity for every admitted point is reserved (see queue.go), so
	// these sends cannot block.
	for _, t := range tasks {
		s.queue <- t
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{Job: id, Points: len(cfgs), Status: "/jobs/" + id})
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].statusLocked(false))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) lookup(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r.PathValue("id"))
	if job == nil {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	s.mu.Lock()
	st := job.statusLocked(true)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleStream sends newline-delimited JSON status snapshots: one
// immediately, then one per state change (coalesced), until the job is
// terminal or the client disconnects. A disconnect only ends the stream —
// the job itself keeps running (see the chaos tests).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r.PathValue("id"))
	if job == nil {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for {
		s.mu.Lock()
		st := job.statusLocked(true)
		ch := job.changed
		s.mu.Unlock()
		if err := enc.Encode(st); err != nil {
			return
		}
		fl.Flush()
		if st.State == JobCompleted || st.State == JobDegraded ||
			(st.State == JobCanceled && st.Done+st.Quarantined+st.Canceled == st.Points) {
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			return
		case <-time.After(30 * time.Second): // heartbeat
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r.PathValue("id"))
	if job == nil {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	s.mu.Lock()
	if !job.cancelled {
		job.cancelled = true
		s.journal.append(record{T: "cancel", Job: job.ID})
		job.cancel() // in-flight engines abort at their next periodic check
		s.touchLocked(job)
	}
	st := job.statusLocked(false)
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, st)
}

// Drain performs a graceful shutdown: stop admitting, let in-flight and
// queued points finish (retries included), then stop the pool and close
// the journal. ctx bounds the wait; on expiry remaining work is hard-
// stopped — safely, since the journal lets a successor resume it.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	var err error
	for {
		s.mu.Lock()
		pending := s.pending
		s.mu.Unlock()
		if pending == 0 {
			break
		}
		select {
		case <-ctx.Done():
			err = fmt.Errorf("drain interrupted with %d points unfinished (journaled for resume): %w", pending, ctx.Err())
		case <-time.After(20 * time.Millisecond):
		}
		if err != nil {
			break
		}
	}
	s.shutdown()
	return err
}

// Close hard-stops the server: workers are interrupted mid-run (their
// engines abort cooperatively) and unfinished points stay journaled as
// incomplete, so a successor server resumes them. It is the crash-like
// path the resume machinery is built for; prefer Drain in production.
func (s *Server) Close() error {
	s.shutdown()
	return nil
}

func (s *Server) shutdown() {
	s.stopOnce.Do(func() {
		s.baseStop()
		s.wg.Wait()
		s.journal.close()
	})
}

// JobSnapshot returns a job's status (true) or a zero status (false);
// it is the programmatic mirror of GET /jobs/{id} used by tests and
// embedding callers.
func (s *Server) JobSnapshot(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job := s.jobs[id]
	if job == nil {
		return JobStatus{}, false
	}
	return job.statusLocked(true), true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil && !errors.Is(err, context.Canceled) {
		// The client went away mid-write; nothing to do.
		_ = err
	}
}
