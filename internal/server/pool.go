package server

import (
	"context"
	"errors"
	"fmt"
	"time"

	"rmac/internal/experiment"
)

// This file is the worker pool: the part of the server engineered to stay
// up under hostile conditions. Each grid point runs on a pool goroutine
// with
//
//   - panic isolation: a panicking simulation (or injected run function)
//     is recovered at two layers — experiment.RunCtx's own recover and a
//     worker-level recover — and classified as a failed attempt, never a
//     dead worker;
//   - a per-point wall-clock deadline enforced through context.Context
//     plumbed into the engine (cooperative cancellation), so a hung run
//     is abandoned rather than wedging a worker forever;
//   - capped exponential backoff with jitter between attempts; and
//   - a poison quarantine: a point that fails MaxAttempts times is
//     parked terminally instead of cycling through the pool forever.
//
// Every admitted point therefore ends terminal: done, quarantined, or
// canceled. Nothing is lost, and the journal records each terminal
// transition exactly once.

// task is one schedulable unit: a grid point of a job.
type task struct {
	job *Job
	pt  *point
}

// worker is one pool goroutine. It exits when the server's base context
// is canceled (hard stop, or the tail of a drain).
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case t := <-s.queue:
			s.execute(t)
		}
	}
}

// execute drives one attempt of one grid point to a state transition:
// done (fresh or cached), quarantined, canceled, or back to pending with
// a scheduled retry.
func (s *Server) execute(t task) {
	job, pt := t.job, t.pt
	s.mu.Lock()
	if pt.State != statePending {
		s.mu.Unlock()
		return
	}
	if job.ctx.Err() != nil {
		s.finishLocked(job, pt, stateCanceled, "job canceled before start")
		s.mu.Unlock()
		return
	}
	if cached, ok := s.cache.get(pt.Key); ok {
		res := cached
		pt.Result = &res
		pt.CacheHit = true
		job.cacheHits++
		s.journal.append(record{T: "point", Job: job.ID, Idx: pt.Idx, Key: pt.Key, Result: &res, CacheHit: true})
		s.finishLocked(job, pt, stateDone, "")
		s.mu.Unlock()
		return
	}
	pt.State = stateRunning
	pt.Attempts++
	attempt := pt.Attempts
	s.touchLocked(job)
	s.mu.Unlock()

	s.metrics.busyWorkers.Inc()
	start := time.Now()
	res, runErr := s.runPoint(job.ctx, t)
	elapsed := time.Since(start)
	s.metrics.busyWorkers.Dec()

	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case runErr == nil:
		pr := makePointResult(&res)
		pt.Result = &pr
		s.cache.put(pt.Key, pr)
		s.journal.append(record{T: "point", Job: job.ID, Idx: pt.Idx, Key: pt.Key, Result: &pr})
		s.metrics.addPoint(&pr)
		if p := int(pt.Cfg.Protocol); p >= 0 && p < s.metrics.pointSeconds.Len() {
			s.metrics.pointSeconds.At(p).Observe(int64(elapsed))
		}
		s.finishLocked(job, pt, stateDone, "")
		s.log.Info("point done", "job", job.ID, "idx", pt.Idx,
			"attempt", attempt, "protocol", pr.Protocol, "dur", elapsed)
	case job.ctx.Err() != nil:
		s.finishLocked(job, pt, stateCanceled, runErr.Error())
		s.log.Info("point canceled", "job", job.ID, "idx", pt.Idx, "err", runErr.Error())
	case attempt >= s.cfg.MaxAttempts:
		pt.LastErr = runErr.Error()
		s.journal.append(record{T: "quarantine", Job: job.ID, Idx: pt.Idx, Key: pt.Key, Attempts: attempt, Err: pt.LastErr})
		s.finishLocked(job, pt, stateQuarantined, runErr.Error())
		s.log.Error("point quarantined", "job", job.ID, "idx", pt.Idx,
			"attempts", attempt, "err", pt.LastErr)
	default:
		pt.State = statePending
		pt.LastErr = runErr.Error()
		s.metrics.points.At(outRetried).Inc()
		s.touchLocked(job)
		d := s.backoffLocked(attempt)
		s.retryAfter(t, d)
		s.log.Warn("point retry", "job", job.ID, "idx", pt.Idx,
			"attempt", attempt, "backoff", d, "err", pt.LastErr)
	}
}

// runPoint executes one attempt under the per-point deadline with
// worker-level panic isolation, and classifies the outcome: nil error
// for a usable result (a run aborted by its own configured event budget
// still counts — the batch CLI averages those too), non-nil for an
// attempt that should be retried or quarantined.
func (s *Server) runPoint(jobCtx context.Context, t task) (res experiment.RunResult, err error) {
	ctx := jobCtx
	if s.cfg.PointDeadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(jobCtx, s.cfg.PointDeadline)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("worker panic: %v", r)
		}
	}()
	res = s.runFn(ctx, t.pt.Cfg)
	switch {
	case res.Failed:
		err = errors.New(res.FailReason)
	case res.Aborted && jobCtx.Err() != nil:
		err = fmt.Errorf("job canceled: %s", res.AbortReason)
	case res.Aborted && ctx.Err() != nil:
		err = fmt.Errorf("deadline exceeded: %s", res.AbortReason)
	}
	return res, err
}

// backoffLocked returns the delay before retrying a point whose
// (1-based) attempt just failed: RetryBase doubled per failure, capped at
// RetryCap, then uniformly jittered over [d/2, d] so synchronized
// failures (a bad config wave, a thundering-herd restart) spread out
// instead of retrying in lockstep. The caller holds s.mu (the jitter RNG
// is mu-guarded).
func (s *Server) backoffLocked(attempt int) time.Duration {
	d := s.cfg.RetryBase
	for i := 1; i < attempt && d < s.cfg.RetryCap; i++ {
		d *= 2
	}
	if d > s.cfg.RetryCap {
		d = s.cfg.RetryCap
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(s.rng.Int63n(int64(half)+1))
}

// retryAfter re-enqueues the task after the backoff delay. The sleep is
// cut short when the job is canceled (so the point terminalizes promptly)
// and abandoned on a hard server stop (the journal has no completion for
// it, so a restarted server re-runs the point). The enqueue can never
// block: queue capacity covers every admitted point.
func (s *Server) retryAfter(t task, d time.Duration) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-t.job.ctx.Done():
		case <-s.baseCtx.Done():
			return
		}
		select {
		case s.queue <- t:
		case <-s.baseCtx.Done():
		}
	}()
}
