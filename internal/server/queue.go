package server

// Admission control: the server never lets work grow without bound.
// `pending` counts every admitted grid point that has not yet reached a
// terminal state — sitting in the queue channel, running on a worker, or
// sleeping out a retry backoff. A submission that would push pending past
// QueueCap is refused with 429 and a Retry-After estimate instead of
// being buffered; memory use is therefore bounded by QueueCap results
// plus the cache, no matter how fast clients submit.
//
// The queue channel's capacity is at least QueueCap plus any points
// resumed from the journal, so for every admitted point a channel slot
// provably exists — enqueues (including retry re-enqueues from the
// backoff goroutines) can never block, which is what makes the
// worker/retry topology deadlock-free by construction.

// admitLocked reserves n grid-point slots, or reports false and a
// Retry-After hint in seconds. Caller holds s.mu.
func (s *Server) admitLocked(n int) (ok bool, retryAfter int) {
	if s.pending+n > s.cfg.QueueCap {
		// Rough drain-rate estimate: assume each worker clears a few
		// points per second at the small-grid sizes a loaded queue
		// implies; never advertise less than one second.
		backlog := s.pending + n - s.cfg.QueueCap
		retryAfter = 1 + backlog/(4*s.cfg.Workers+1)
		return false, retryAfter
	}
	s.pending += n
	s.metrics.queueDepth.Set(int64(s.pending))
	return true, 0
}

// releaseLocked returns one grid-point slot; called on every terminal
// point transition. Caller holds s.mu.
func (s *Server) releaseLocked() {
	s.pending--
	s.metrics.queueDepth.Set(int64(s.pending))
}
