package server

import (
	"context"
	"errors"
	"fmt"
	"time"

	"rmac/internal/cli"
	"rmac/internal/experiment"
	"rmac/internal/fault"
	"rmac/internal/geom"
	"rmac/internal/sim"
)

// SweepRequest is the JSON body of POST /sweeps: a sweep grid expressed
// over the wire. Zero fields inherit the batch CLI's defaults
// (experiment.DefaultConfig), so a minimal request is just a protocol
// list. The grid expands protocol-major, then scenario, rate, seed — the
// same order and the same placement-seed derivation as the batch
// RunSweep, so every grid point's cache key matches what a batch run of
// the same cell would compute.
type SweepRequest struct {
	Protocols []string  `json:"protocols"`
	Scenarios []string  `json:"scenarios,omitempty"`
	Rates     []float64 `json:"rates,omitempty"`
	Seeds     int       `json:"seeds,omitempty"`

	Nodes      int     `json:"nodes,omitempty"`
	FieldW     float64 `json:"field_w,omitempty"`
	FieldH     float64 `json:"field_h,omitempty"`
	Packets    int     `json:"packets,omitempty"`
	PacketSize int     `json:"packet_size,omitempty"`
	WarmupS    float64 `json:"warmup_s,omitempty"`
	DrainS     float64 `json:"drain_s,omitempty"`

	// Burst and Avail select impairment severities exactly like the
	// rmacsim -burst/-avail flags; zero Burst and zero (or 1) Avail
	// leave the channel clean.
	Burst float64 `json:"burst,omitempty"`
	Avail float64 `json:"avail,omitempty"`

	// MaxEvents arms the per-run event-budget watchdog inside the
	// simulation itself, on top of the server's wall-clock deadline.
	MaxEvents uint64 `json:"max_events,omitempty"`

	// Audit toggles the protocol-invariant auditor (default on, as in
	// the batch CLI).
	Audit *bool `json:"audit,omitempty"`
}

// expand materializes the request's grid as one experiment.Config per
// point, validating every cell up front so a malformed request is
// rejected with 400 before anything is queued.
func (r *SweepRequest) expand() ([]experiment.Config, error) {
	if len(r.Protocols) == 0 {
		return nil, errors.New("request needs at least one protocol")
	}
	var protocols []experiment.Protocol
	for _, s := range r.Protocols {
		p, err := cli.ParseProtocol(s)
		if err != nil {
			return nil, err
		}
		protocols = append(protocols, p)
	}
	scenarios := []experiment.Scenario{experiment.Stationary}
	if len(r.Scenarios) > 0 {
		scenarios = scenarios[:0]
		for _, s := range r.Scenarios {
			sc, err := cli.ParseScenario(s)
			if err != nil {
				return nil, err
			}
			scenarios = append(scenarios, sc)
		}
	}
	base := experiment.DefaultConfig()
	rates := []float64{base.Rate}
	if len(r.Rates) > 0 {
		rates = r.Rates
	}
	seeds := r.Seeds
	if seeds <= 0 {
		seeds = 1
	}

	if r.Nodes > 0 {
		base.Nodes = r.Nodes
	}
	if r.FieldW > 0 {
		base.Field = geom.Rect{W: r.FieldW, H: base.Field.H}
	}
	if r.FieldH > 0 {
		base.Field.H = r.FieldH
	}
	if r.Packets > 0 {
		base.Packets = r.Packets
	}
	if r.PacketSize > 0 {
		base.PacketSize = r.PacketSize
	}
	if r.WarmupS > 0 {
		base.Warmup = sim.Time(r.WarmupS * float64(sim.Second))
	}
	if r.DrainS > 0 {
		base.Drain = sim.Time(r.DrainS * float64(sim.Second))
	}
	avail := r.Avail
	if avail == 0 {
		avail = 1
	}
	base.Fault = fault.Config{Burst: fault.BurstAt(r.Burst), Churn: fault.ChurnAt(avail)}
	base.MaxEvents = r.MaxEvents
	if r.Audit != nil {
		base.Audit = *r.Audit
	}

	var cfgs []experiment.Config
	for _, p := range protocols {
		for _, sc := range scenarios {
			for _, rate := range rates {
				for seed := 0; seed < seeds; seed++ {
					cfg := base
					cfg.Protocol = p
					cfg.Scenario = sc
					cfg.Rate = rate
					// Identical placements across compared protocols,
					// exactly as experiment.RunSweep derives them.
					cfg.Seed = int64(seed)*7919 + int64(sc) + 1
					if err := cfg.Validate(); err != nil {
						return nil, fmt.Errorf("grid point %v/%v/%g: %w", p, sc, rate, err)
					}
					cfgs = append(cfgs, cfg)
				}
			}
		}
	}
	return cfgs, nil
}

// PointResult is the wire form of one grid point's measurements: the
// paper's per-figure metrics plus the robustness counters and the
// bit-identity fingerprint. It is what the cache stores, the journal
// records, and /jobs/{id} returns.
type PointResult struct {
	Protocol string  `json:"protocol"`
	Scenario string  `json:"scenario"`
	Rate     float64 `json:"rate"`
	Seed     int64   `json:"seed"`

	Delivery         float64 `json:"delivery"`
	AvgDelayS        float64 `json:"avg_delay_s"`
	AvgDropRatio     float64 `json:"avg_drop_ratio"`
	AvgRetxRatio     float64 `json:"avg_retx_ratio"`
	AvgOverheadRatio float64 `json:"avg_overhead_ratio"`

	Events      uint64 `json:"events"`
	Violations  uint64 `json:"violations,omitempty"`
	Deadlocks   int    `json:"deadlocks,omitempty"`
	Aborted     bool   `json:"aborted,omitempty"`
	AbortReason string `json:"abort_reason,omitempty"`

	// Fingerprint digests every deterministic measurement of the run
	// (experiment.RunResult.Fingerprint); equal fingerprints mean
	// bit-identical results.
	Fingerprint string `json:"fingerprint"`

	// Totals carries the run's raw monotone counters. Journaling them per
	// point is what lets a restarted server rebuild its metric families to
	// values ≥ anything the predecessor served (see serverMetrics).
	Totals *experiment.RunTotals `json:"totals,omitempty"`
}

// makePointResult reduces a RunResult to its wire form.
func makePointResult(res *experiment.RunResult) PointResult {
	totals := res.Totals
	return PointResult{
		Protocol:         res.Config.Protocol.String(),
		Scenario:         res.Config.Scenario.String(),
		Rate:             res.Config.Rate,
		Seed:             res.Config.Seed,
		Delivery:         res.Delivery,
		AvgDelayS:        res.AvgDelay,
		AvgDropRatio:     res.AvgDropRatio,
		AvgRetxRatio:     res.AvgRetxRatio,
		AvgOverheadRatio: res.AvgOverheadRatio,
		Events:           res.Events,
		Violations:       res.ViolationCount,
		Deadlocks:        len(res.Deadlocks),
		Aborted:          res.Aborted,
		AbortReason:      res.AbortReason,
		Fingerprint:      res.Fingerprint(),
		Totals:           &totals,
	}
}

// pointState is the lifecycle of one grid point. Every admitted point
// ends terminal: done, quarantined, or canceled — never lost.
type pointState string

const (
	statePending     pointState = "pending"
	stateRunning     pointState = "running"
	stateDone        pointState = "done"
	stateQuarantined pointState = "quarantined"
	stateCanceled    pointState = "canceled"
)

func (s pointState) terminal() bool {
	return s == stateDone || s == stateQuarantined || s == stateCanceled
}

// point is one grid point of a job.
type point struct {
	Idx      int
	Cfg      experiment.Config
	Key      string // content address: experiment.Config.CacheKey
	State    pointState
	Attempts int
	CacheHit bool
	Result   *PointResult
	LastErr  string
}

// JobState summarizes a job. A job is terminal in states completed,
// degraded, or canceled.
type JobState string

const (
	// JobQueued: no point has started yet.
	JobQueued JobState = "queued"
	// JobRunning: at least one point started, not all terminal.
	JobRunning JobState = "running"
	// JobCompleted: every point done (cache hits included).
	JobCompleted JobState = "completed"
	// JobDegraded: every point terminal, at least one quarantined.
	JobDegraded JobState = "degraded"
	// JobCanceled: cancellation requested; points wind down to terminal.
	JobCanceled JobState = "canceled"
)

// Job is one submitted sweep.
type Job struct {
	ID        string
	Req       SweepRequest
	Submitted time.Time

	points      []*point
	done        int
	cacheHits   int
	quarantined int
	canceled    int
	cancelled   bool // cancellation requested (by client or journal)

	ctx    context.Context
	cancel context.CancelFunc

	// changed is closed and replaced on every state change; watchers
	// (the stream endpoint) re-arm on the fresh channel.
	changed chan struct{}
}

func (j *Job) terminalCount() int { return j.done + j.quarantined + j.canceled }

func (j *Job) terminal() bool { return j.terminalCount() == len(j.points) }

func (j *Job) state() JobState {
	switch {
	case j.cancelled:
		return JobCanceled
	case !j.terminal():
		if j.terminalCount() == 0 && !j.started() {
			return JobQueued
		}
		return JobRunning
	case j.quarantined > 0:
		return JobDegraded
	default:
		return JobCompleted
	}
}

func (j *Job) started() bool {
	for _, pt := range j.points {
		if pt.State != statePending || pt.Attempts > 0 {
			return true
		}
	}
	return false
}

// PointFailure describes one quarantined grid point in a job status.
type PointFailure struct {
	Idx      int     `json:"idx"`
	Protocol string  `json:"protocol"`
	Scenario string  `json:"scenario"`
	Rate     float64 `json:"rate"`
	Seed     int64   `json:"seed"`
	Attempts int     `json:"attempts"`
	Error    string  `json:"error"`
}

// JobStatus is the wire form of a job: GET /jobs/{id} and every frame of
// the progress stream.
type JobStatus struct {
	ID          string    `json:"id"`
	State       JobState  `json:"state"`
	Submitted   time.Time `json:"submitted"`
	Points      int       `json:"points"`
	Done        int       `json:"done"`
	Running     int       `json:"running"`
	Pending     int       `json:"pending"`
	CacheHits   int       `json:"cache_hits"`
	Quarantined int       `json:"quarantined"`
	Canceled    int       `json:"canceled"`

	// Results lists completed points in grid order — partial results
	// stream out while the job is still running.
	Results []PointResult `json:"results,omitempty"`
	// Quarantine lists poisoned points and their final error.
	Quarantine []PointFailure `json:"quarantine,omitempty"`
}

// statusLocked snapshots a job; the caller holds s.mu. withResults
// controls whether completed point payloads are included (the list
// endpoint omits them).
func (j *Job) statusLocked(withResults bool) JobStatus {
	st := JobStatus{
		ID:          j.ID,
		State:       j.state(),
		Submitted:   j.Submitted,
		Points:      len(j.points),
		Done:        j.done,
		CacheHits:   j.cacheHits,
		Quarantined: j.quarantined,
		Canceled:    j.canceled,
	}
	for _, pt := range j.points {
		switch pt.State {
		case stateRunning:
			st.Running++
		case statePending:
			st.Pending++
		}
		if !withResults {
			continue
		}
		switch {
		case pt.State == stateDone && pt.Result != nil:
			st.Results = append(st.Results, *pt.Result)
		case pt.State == stateQuarantined:
			st.Quarantine = append(st.Quarantine, PointFailure{
				Idx:      pt.Idx,
				Protocol: pt.Cfg.Protocol.String(),
				Scenario: pt.Cfg.Scenario.String(),
				Rate:     pt.Cfg.Rate,
				Seed:     pt.Cfg.Seed,
				Attempts: pt.Attempts,
				Error:    pt.LastErr,
			})
		}
	}
	return st
}
