package server

import (
	"sync"

	"rmac/internal/metrics"
)

// cache is the content-addressed result store: key is
// experiment.Config.CacheKey() — a digest of the full configuration
// (seed included) and the code version — so a hit is guaranteed to be the
// bit-identical result a fresh run would produce. Repeated sweep points,
// whether within one job or across jobs, are served for free.
//
// The cache is memory-only; durability comes from the journal, which
// replays every completed point's (key, result) pair into the cache on
// startup. Because keys embed the code version, entries journaled by an
// older build are never served to new submissions — they simply never
// collide.
//
// Its traffic counters live in the metric registry (the server passes
// its instruments in), so /stats and /metrics read the same numbers.
type cache struct {
	mu      sync.Mutex
	m       map[string]PointResult
	hits    *metrics.Counter
	misses  *metrics.Counter
	entries *metrics.Gauge
}

func newCache(hits, misses *metrics.Counter, entries *metrics.Gauge) *cache {
	return &cache{m: make(map[string]PointResult), hits: hits, misses: misses, entries: entries}
}

func (c *cache) get(key string) (PointResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[key]
	if ok {
		c.hits.Inc()
	} else {
		c.misses.Inc()
	}
	return r, ok
}

func (c *cache) put(key string, r PointResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = r
	c.entries.Set(int64(len(c.m)))
}

// CacheStats is the cache telemetry exposed on /stats, read back from
// the same instruments GET /metrics renders.
type CacheStats struct {
	Entries int    `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
}

func (c *cache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: len(c.m), Hits: c.hits.Value(), Misses: c.misses.Value()}
}
