package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"rmac/internal/metrics"
)

// The journal is the server's crash-recovery log: an append-only JSONL
// file recording every job submission and every terminal point outcome.
// On startup the server replays it — completed points are restored (and
// their results fed to the content-addressed cache), incomplete jobs are
// re-queued from their first unfinished point — so a sweep survives a
// crash or restart of the server itself without losing or re-running
// finished work.
//
// Records are flushed to the OS on every append, which makes the journal
// complete up to the last finished point under process crashes (kill -9
// included). A point that finished between the flush and a whole-machine
// power loss is simply re-run on recovery; results are deterministic, so
// re-running is correct, only slower. A torn final line (crash mid-write)
// is detected and dropped during replay.

// record is one journal line. T selects the record type:
//
//	submit     — a job was admitted (Req, Version)
//	point      — a grid point completed (Idx, Key, Result, CacheHit)
//	quarantine — a grid point was poisoned after MaxAttempts (Idx, Err)
//	cancel     — the job's cancellation was requested
type record struct {
	T        string        `json:"t"`
	Job      string        `json:"job"`
	Time     time.Time     `json:"time,omitempty"`
	Req      *SweepRequest `json:"req,omitempty"`
	Version  string        `json:"version,omitempty"`
	Idx      int           `json:"idx,omitempty"`
	Key      string        `json:"key,omitempty"`
	CacheHit bool          `json:"cache_hit,omitempty"`
	Attempts int           `json:"attempts,omitempty"`
	Result   *PointResult  `json:"result,omitempty"`
	Err      string        `json:"err,omitempty"`
}

type journal struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	closed bool
	// lat, when set, observes each append's wall time (marshal + write +
	// OS flush) into rmac_service_journal_append_seconds.
	lat *metrics.Histogram
}

// openJournal replays the records already in path (if any) and opens it
// for appending. Replay stops at the first undecodable line: a torn tail
// from a crash mid-write loses at most that one record.
func openJournal(path string) (*journal, []record, error) {
	var recs []record
	if data, err := os.ReadFile(path); err == nil {
		for _, line := range bytes.Split(data, []byte{'\n'}) {
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			var rec record
			if err := json.Unmarshal(line, &rec); err != nil {
				break
			}
			recs = append(recs, rec)
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	return &journal{f: f, w: bufio.NewWriter(f)}, recs, nil
}

// append writes one record and flushes it to the OS. A nil journal
// (journaling disabled) silently drops the record.
func (j *journal) append(rec record) {
	if j == nil {
		return
	}
	start := time.Now()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return // records are plain data; unreachable in practice
	}
	j.w.Write(data)
	j.w.WriteByte('\n')
	j.w.Flush()
	if j.lat != nil {
		j.lat.Observe(int64(time.Since(start)))
	}
}

func (j *journal) close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.closed = true
	j.w.Flush()
	j.f.Close()
}
