package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"rmac/internal/experiment"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postSweep(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeSubmit(t *testing.T, resp *http.Response) SubmitResponse {
	t.Helper()
	defer resp.Body.Close()
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

func TestAPISubmitStatusStream(t *testing.T) {
	sc := newScript()
	sc.delay = 2 * time.Millisecond
	_, ts := newTestServer(t, testConfig(sc))

	resp := postSweep(t, ts, `{"protocols":["rmac","bmmm"],"rates":[10,20],"seeds":2}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	sr := decodeSubmit(t, resp)
	if sr.Points != 8 || sr.Job == "" {
		t.Fatalf("submit response = %+v", sr)
	}

	// The stream must end with a terminal snapshot containing all results.
	streamResp, err := http.Get(ts.URL + "/jobs/" + sr.Job + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	if ct := streamResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content-type = %q", ct)
	}
	var last JobStatus
	frames := 0
	scanner := bufio.NewScanner(streamResp.Body)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for scanner.Scan() {
		if err := json.Unmarshal(scanner.Bytes(), &last); err != nil {
			t.Fatalf("bad stream frame: %v", err)
		}
		frames++
	}
	if frames == 0 {
		t.Fatal("stream produced no frames")
	}
	if last.State != JobCompleted || last.Done != 8 || len(last.Results) != 8 {
		t.Fatalf("final frame: state=%v done=%d results=%d", last.State, last.Done, len(last.Results))
	}

	// GET /jobs/{id} agrees with the final stream frame.
	jr, err := http.Get(ts.URL + "/jobs/" + sr.Job)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(jr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.State != JobCompleted || len(st.Results) != 8 {
		t.Fatalf("job status: %+v", st)
	}

	// And the listing includes the job without payloads.
	lr, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer lr.Body.Close()
	var list []JobStatus
	if err := json.NewDecoder(lr.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != sr.Job || len(list[0].Results) != 0 {
		t.Fatalf("job list: %+v", list)
	}
}

func TestAPIRejectsBadRequests(t *testing.T) {
	sc := newScript()
	_, ts := newTestServer(t, testConfig(sc))
	for _, body := range []string{
		`{not json`,
		`{}`,                                  // no protocols
		`{"protocols":["warpdrive"]}`,         // unknown protocol
		`{"protocols":["rmac"],"rates":[-4]}`, // invalid rate
		`{"protocols":["rmac"],"bogus":1}`,    // unknown field
	} {
		resp := postSweep(t, ts, body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400", body, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/jobs/j999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", resp.StatusCode)
	}
}

// TestAPIBackpressure fills the queue past QueueCap: the overflow
// submission must bounce with 429 + Retry-After instead of buffering, and
// readyz must report the saturation.
func TestAPIBackpressure(t *testing.T) {
	sc := newScript()
	cfg := testConfig(sc)
	cfg.QueueCap = 4
	cfg.Workers = 1
	req := SweepRequest{Protocols: []string{"rmac"}, Rates: []float64{10, 20}, Seeds: 2}
	cfgs, _ := req.expand()
	for _, c := range cfgs {
		sc.hangFor[c.CacheKey()] = 1 // park the worker so the queue stays full
	}
	cfg.PointDeadline = 5 * time.Second
	s, ts := newTestServer(t, cfg)

	body, _ := json.Marshal(req)
	resp := postSweep(t, ts, string(body))
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", resp.StatusCode)
	}

	resp = postSweep(t, ts, string(body))
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	rz, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while saturated = %d, want 503", rz.StatusCode)
	}
	_ = s
}

func TestAPICancel(t *testing.T) {
	sc := newScript()
	sc.delay = 20 * time.Millisecond
	s, ts := newTestServer(t, testConfig(sc))

	sr := decodeSubmit(t, postSweep(t, ts, `{"protocols":["rmac","bmmm"],"rates":[10,20],"seeds":2}`))
	resp, err := http.Post(ts.URL+"/jobs/"+sr.Job+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.State != JobCanceled {
		t.Fatalf("state after cancel = %v", st.State)
	}
	final := waitTerminal(t, s, sr.Job)
	if final.Done+final.Canceled != final.Points {
		t.Fatalf("canceled job did not terminalize: %+v", final)
	}
}

func TestAPIHealthAndStats(t *testing.T) {
	sc := newScript()
	_, ts := newTestServer(t, testConfig(sc))
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", hz.StatusCode)
	}
	rz, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if rz.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d", rz.StatusCode)
	}
	str, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer str.Body.Close()
	var stats ServerStats
	if err := json.NewDecoder(str.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 4 || stats.QueueCap != 64 || stats.CodeVersion != experiment.CodeVersion() {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestDrainRefusesNewWork: a draining server bounces submissions with 503
// and readyz goes not-ready, while already-admitted work finishes.
func TestDrainRefusesNewWork(t *testing.T) {
	sc := newScript()
	sc.delay = 5 * time.Millisecond
	s, ts := newTestServer(t, testConfig(sc))

	sr := decodeSubmit(t, postSweep(t, ts, `{"protocols":["rmac"],"rates":[10],"seeds":2}`))
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Wait until the drain flag is visible, then probe the API.
	for {
		s.mu.Lock()
		d := s.draining
		s.mu.Unlock()
		if d {
			break
		}
		time.Sleep(time.Millisecond)
	}
	resp := postSweep(t, ts, `{"protocols":["rmac"]}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", resp.StatusCode)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	st, _ := s.JobSnapshot(sr.Job)
	if st.State != JobCompleted {
		t.Fatalf("admitted job after drain: %+v", st)
	}
}

// TestJournalTornTail: a journal whose last line was cut off mid-write
// (crash during append) must replay cleanly, losing at most that record.
func TestJournalTornTail(t *testing.T) {
	sc := newScript()
	cfg := testConfig(sc)
	dir := t.TempDir()
	cfg.JournalPath = dir + "/j.jsonl"
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, cfgs := submit(t, s1, chaosReq())
	waitTerminal(t, s1, id)
	s1.Close()

	// Tear the tail: chop the file mid-way through its final line.
	data, err := os.ReadFile(cfg.JournalPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cfg.JournalPath, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("replay of torn journal: %v", err)
	}
	defer s2.Close()
	st := waitTerminal(t, s2, id) // the torn point simply re-runs
	if st.Done != len(cfgs) {
		t.Fatalf("after torn-tail recovery: done=%d want %d", st.Done, len(cfgs))
	}
	assertOracle(t, st, cfgs)
}
