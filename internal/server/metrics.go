package server

import (
	"net/http"
	"strings"

	"rmac/internal/experiment"
	"rmac/internal/metrics"
)

// The service half of the telemetry layer (DESIGN.md §13). One registry
// per server instance carries three groups of families:
//
//   - the shared kernel/protocol families (experiment.RunMetrics), fed
//     one grid point at a time from each fresh run's RunTotals — and
//     re-fed from the journal on startup, so a scrape after a crash
//     resume reports totals ≥ every scrape the predecessor served;
//   - service families: HTTP traffic by endpoint, queue depth against
//     its cap, worker-pool utilization, per-outcome point terminals,
//     cache traffic, journal append latency, and per-protocol point
//     wall-clock histograms;
//   - all increments hit pre-registered dense cells (endpoint, outcome
//     and protocol are small enum indices), so the request and worker
//     hot paths never allocate for telemetry.
//
// GET /metrics renders the registry; GET /stats derives its legacy JSON
// payload from the same instruments (see handleStats).

// Endpoint indices for the HTTP request family. epOther absorbs unknown
// paths so the label set stays a fixed vocabulary.
const (
	epHealthz = iota
	epReadyz
	epStats
	epMetrics
	epSweeps
	epJobs
	epJob
	epStream
	epCancel
	epPprof
	epOther
	numEndpoints
)

var endpointNames = [numEndpoints]string{
	"healthz", "readyz", "stats", "metrics", "sweeps", "jobs", "job",
	"stream", "cancel", "pprof", "other",
}

// endpointIndex classifies a request path into the fixed endpoint
// vocabulary. Job sub-resources are told apart by suffix.
func endpointIndex(r *http.Request) int {
	p := r.URL.Path
	switch p {
	case "/healthz":
		return epHealthz
	case "/readyz":
		return epReadyz
	case "/stats":
		return epStats
	case "/metrics":
		return epMetrics
	case "/sweeps":
		return epSweeps
	case "/jobs":
		return epJobs
	}
	switch {
	case strings.HasPrefix(p, "/debug/pprof"):
		return epPprof
	case strings.HasPrefix(p, "/jobs/"):
		switch {
		case strings.HasSuffix(p, "/stream"):
			return epStream
		case strings.HasSuffix(p, "/cancel"):
			return epCancel
		default:
			return epJob
		}
	}
	return epOther
}

// Outcome indices for the point terminal-transition family. done counts
// fresh simulations, cached counts cache-served completions; retried is
// the non-terminal extra outcome so retry pressure is visible.
const (
	outDone = iota
	outCached
	outRetried
	outQuarantined
	outCanceled
	numOutcomes
)

var outcomeNames = [numOutcomes]string{
	"done", "cached", "retried", "quarantined", "canceled",
}

// serverMetrics bundles the server's registry and instruments.
type serverMetrics struct {
	reg *metrics.Registry
	run *experiment.RunMetrics

	httpRequests *metrics.CounterVec // by endpoint
	points       *metrics.CounterVec // by outcome
	queueDepth   *metrics.Gauge
	queueCap     *metrics.Gauge
	workers      *metrics.Gauge
	busyWorkers  *metrics.Gauge
	jobs         *metrics.Gauge
	cacheHits    *metrics.Counter
	cacheMisses  *metrics.Counter
	cacheEntries *metrics.Gauge
	// journalAppend observes the wall time of one journal record append,
	// fsync-to-OS included (buckets 4µs–1s).
	journalAppend *metrics.Histogram
	// pointSeconds observes each fresh (non-cached) point's simulation
	// wall time by protocol (buckets ~1ms–137s, matching PointDeadline
	// scales).
	pointSeconds *metrics.HistogramVec
}

func newServerMetrics() *serverMetrics {
	reg := metrics.NewRegistry()
	m := &serverMetrics{reg: reg, run: experiment.NewRunMetrics(reg)}

	epCells := make([][]string, numEndpoints)
	for i, n := range endpointNames {
		epCells[i] = []string{n}
	}
	outCells := make([][]string, numOutcomes)
	for i, n := range outcomeNames {
		outCells[i] = []string{n}
	}
	protoCells := make([][]string, len(experiment.Protocols))
	for i, p := range experiment.Protocols {
		protoCells[i] = []string{p.String()}
	}

	m.httpRequests = reg.CounterVec("rmac_service_http_requests_total",
		"HTTP requests served, by API endpoint.", []string{"endpoint"}, epCells)
	m.points = reg.CounterVec("rmac_service_points_total",
		"Grid-point state transitions by outcome: terminal (done, cached, quarantined, canceled) plus scheduled retries.",
		[]string{"outcome"}, outCells)
	m.queueDepth = reg.Gauge("rmac_service_queue_points",
		"Admitted grid points not yet terminal (queued, running, or in retry backoff).")
	m.queueCap = reg.Gauge("rmac_service_queue_cap_points",
		"Admission-control bound on queued points (submissions beyond it get 429).")
	m.workers = reg.Gauge("rmac_service_workers",
		"Simulation worker-pool size.")
	m.busyWorkers = reg.Gauge("rmac_service_busy_workers",
		"Workers currently executing a grid point.")
	m.jobs = reg.Gauge("rmac_service_jobs",
		"Sweep jobs known to this server (journal-replayed jobs included).")
	m.cacheHits = reg.Counter("rmac_service_cache_hits_total",
		"Result-cache lookups served from the content-addressed cache.")
	m.cacheMisses = reg.Counter("rmac_service_cache_misses_total",
		"Result-cache lookups that required a fresh simulation.")
	m.cacheEntries = reg.Gauge("rmac_service_cache_entries",
		"Results resident in the content-addressed cache.")
	m.journalAppend = reg.Histogram("rmac_service_journal_append_seconds",
		"Wall time to append and OS-flush one crash-recovery journal record.",
		12, 30, 1e-9)
	m.pointSeconds = reg.HistogramVec("rmac_service_point_seconds",
		"Wall time to simulate one fresh (non-cached) grid point, by protocol.",
		20, 37, 1e-9, []string{"protocol"}, protoCells)
	return m
}

// protocolIndex maps a PointResult's protocol name back to its dense
// enum index (-1 if the journal carries a name this build doesn't know).
func protocolIndex(name string) int {
	for i, p := range experiment.Protocols {
		if p.String() == name {
			return i
		}
	}
	return -1
}

// addPoint folds one fresh grid-point result into the shared
// kernel/protocol families. Cache-served points are never folded — the
// families count simulation work actually performed — and journal replay
// calls this exactly for the points the predecessor simulated, which is
// what keeps the totals monotone across a crash/restart.
func (m *serverMetrics) addPoint(pr *PointResult) {
	if pr.Totals == nil {
		return
	}
	m.run.AddTotals(protocolIndex(pr.Protocol), pr.Events, pr.Aborted, pr.Totals, nil)
}

func (m *serverMetrics) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metrics.ContentType)
	m.reg.WriteTo(w)
}
