package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"rmac/internal/metrics"
)

// scrape fetches /metrics and returns the exposition body.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// seriesValue extracts one sample's value from an exposition body; the
// series name must match a full sample name (labels included).
func seriesValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("series %s: bad value %q", series, rest)
		}
		return v
	}
	t.Fatalf("series %s not found in scrape", series)
	return 0
}

func TestMetricsEndpoint(t *testing.T) {
	sc := newScript()
	s, ts := newTestServer(t, testConfig(sc))

	id, cfgs := submit(t, s, SweepRequest{Protocols: []string{"rmac", "bmmm"}, Seeds: 2})
	waitTerminal(t, s, id)

	body := scrape(t, ts)

	// The shared kernel/protocol vocabulary is present and fed: the fake
	// run reports Events per point, folded across the whole grid.
	var wantEvents float64
	for _, cfg := range cfgs {
		wantEvents += float64(uint64(cfg.Seed)*1000 + uint64(cfg.Rate))
	}
	if got := seriesValue(t, body, "rmac_kernel_events_total"); got != wantEvents {
		t.Errorf("rmac_kernel_events_total = %v, want %v", got, wantEvents)
	}
	if got := seriesValue(t, body, `rmac_service_points_total{outcome="done"}`); got != float64(len(cfgs)) {
		t.Errorf("points done = %v, want %d", got, len(cfgs))
	}
	if got := seriesValue(t, body, "rmac_service_queue_points"); got != 0 {
		t.Errorf("queue depth = %v after completion", got)
	}
	if got := seriesValue(t, body, `rmac_proto_runs_total{protocol="RMAC"}`); got != 2 {
		t.Errorf("RMAC runs = %v, want 2", got)
	}
	// The scrape itself was counted by the middleware.
	if got := seriesValue(t, body, `rmac_service_http_requests_total{endpoint="metrics"}`); got < 1 {
		t.Errorf("metrics endpoint requests = %v", got)
	}

	// Every family obeys the naming convention (the CI lint re-checks
	// this against a live scrape).
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		f := strings.Fields(line)
		if err := metrics.CheckName(f[2], f[3]); err != nil {
			t.Errorf("family fails name lint: %v", err)
		}
	}

	// /stats is derived from the same instruments.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st ServerStats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Pending != 0 || st.Workers != s.cfg.Workers || st.QueueCap != s.cfg.QueueCap {
		t.Errorf("/stats = %+v disagrees with config", st)
	}
	if st.Cache.Misses != uint64(len(cfgs)) {
		t.Errorf("/stats cache misses = %d, want %d", st.Cache.Misses, len(cfgs))
	}
	if got := seriesValue(t, body, "rmac_service_cache_misses_total"); got != float64(st.Cache.Misses) {
		t.Errorf("cache misses: /metrics %v vs /stats %d", got, st.Cache.Misses)
	}

	// The pprof surface is mounted.
	pp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", pp.StatusCode)
	}
}

// TestMetricsMonotoneAcrossRestart is the crash-resume contract: a
// successor server replaying the journal reports counters ≥ any scrape
// the predecessor served.
func TestMetricsMonotoneAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	sc := newScript()
	cfg := testConfig(sc)
	cfg.JournalPath = path

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	id, cfgs := submit(t, s1, SweepRequest{Protocols: []string{"rmac", "lbp"}, Seeds: 3})
	waitTerminal(t, s1, id)
	before := scrape(t, ts1)
	beforeEvents := seriesValue(t, before, "rmac_kernel_events_total")
	beforeDone := seriesValue(t, before, `rmac_service_points_total{outcome="done"}`)
	if beforeDone != float64(len(cfgs)) {
		t.Fatalf("predecessor done = %v, want %d", beforeDone, len(cfgs))
	}
	ts1.Close()
	s1.Close() // kill -9 equivalent: no drain

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() { ts2.Close(); s2.Close() }()
	after := scrape(t, ts2)
	if got := seriesValue(t, after, "rmac_kernel_events_total"); got < beforeEvents {
		t.Errorf("events_total regressed across restart: %v < %v", got, beforeEvents)
	}
	if got := seriesValue(t, after, `rmac_service_points_total{outcome="done"}`); got < beforeDone {
		t.Errorf("points done regressed across restart: %v < %v", got, beforeDone)
	}
}
