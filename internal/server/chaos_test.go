package server

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rmac/internal/experiment"
)

// The chaos tests drive the server through the failure modes it is built
// for — injected panics, hung runs, mid-sweep process death — and assert
// the service's three invariants:
//
//  1. every admitted grid point reaches a terminal state (done,
//     quarantined, or canceled) — nothing is ever lost;
//  2. no grid point's simulation ever succeeds more than once across
//     retries, restarts, and resubmissions — nothing is duplicated; and
//  3. every served result is bit-identical (by fingerprint) to what a
//     direct batch run of the same config produces.

// fakeResult builds a deterministic RunResult from the config alone, so a
// scripted runFn is a pure function the way a real simulation is and
// fingerprints can be checked against an independently computed oracle.
func fakeResult(cfg experiment.Config) experiment.RunResult {
	return experiment.RunResult{
		Config:       cfg,
		Delivery:     float64(cfg.Seed%97) / 97,
		AvgDelay:     cfg.Rate / 1000,
		AvgDropRatio: float64(cfg.Protocol) / 8,
		Events:       uint64(cfg.Seed)*1000 + uint64(cfg.Rate),
	}
}

// script is a scripted simulation entry point: per grid point (keyed by
// cache key) it injects failures for the first failuresFor[key] attempts,
// then succeeds. It counts calls and successes per key across server
// instances, which is what lets a test assert exactly-once completion
// through a crash/restart.
type script struct {
	mu          sync.Mutex
	failuresFor map[string]int // key -> injected failures before success
	hangFor     map[string]int // key -> injected hangs before success
	calls       map[string]int
	successes   map[string]int
	delay       time.Duration // per successful run, ctx-aware
}

func newScript() *script {
	return &script{
		failuresFor: map[string]int{},
		hangFor:     map[string]int{},
		calls:       map[string]int{},
		successes:   map[string]int{},
	}
}

func (sc *script) run(ctx context.Context, cfg experiment.Config) experiment.RunResult {
	key := cfg.CacheKey()
	sc.mu.Lock()
	sc.calls[key]++
	panicNow := sc.failuresFor[key] > 0
	if panicNow {
		sc.failuresFor[key]--
	}
	hangNow := !panicNow && sc.hangFor[key] > 0
	if hangNow {
		sc.hangFor[key]--
	}
	delay := sc.delay
	sc.mu.Unlock()

	if panicNow {
		panic("injected chaos panic")
	}
	if hangNow {
		// A wedged simulation: never finishes on its own, but honours
		// the engine's cooperative-cancellation contract.
		<-ctx.Done()
		res := fakeResult(cfg)
		res.Aborted = true
		res.AbortReason = "sim: watchdog: " + ctx.Err().Error()
		return res
	}
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			res := fakeResult(cfg)
			res.Aborted = true
			res.AbortReason = "sim: watchdog: " + ctx.Err().Error()
			return res
		}
	}
	sc.mu.Lock()
	sc.successes[key]++
	sc.mu.Unlock()
	return fakeResult(cfg)
}

func testConfig(sc *script) Config {
	return Config{
		Workers:       4,
		QueueCap:      64,
		MaxAttempts:   3,
		RetryBase:     time.Millisecond,
		RetryCap:      4 * time.Millisecond,
		PointDeadline: 100 * time.Millisecond,
		runFn:         sc.run,
	}
}

// waitTerminal polls until the job has no pending or running points.
func waitTerminal(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := s.JobSnapshot(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if st.Done+st.Quarantined+st.Canceled == st.Points {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := s.JobSnapshot(id)
	t.Fatalf("job %s never terminalized: %+v", id, st)
	return JobStatus{}
}

func submit(t *testing.T, s *Server, req SweepRequest) (string, []experiment.Config) {
	t.Helper()
	cfgs, err := req.expand()
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	s.mu.Lock()
	ok, _ := s.admitLocked(len(cfgs))
	if !ok {
		s.mu.Unlock()
		t.Fatalf("queue full")
	}
	s.nextID++
	id := "j" + fmt.Sprint(s.nextID)
	job := s.buildJobLocked(id, req, cfgs)
	s.journal.append(record{T: "submit", Job: id, Time: job.Submitted, Req: &req, Version: experiment.CodeVersion()})
	tasks := make([]task, len(job.points))
	for i, pt := range job.points {
		tasks[i] = task{job: job, pt: pt}
	}
	s.mu.Unlock()
	for _, tk := range tasks {
		s.queue <- tk
	}
	return id, cfgs
}

// chaosReq is an 8-point grid: 2 protocols x 2 rates x 2 seeds.
func chaosReq() SweepRequest {
	return SweepRequest{
		Protocols: []string{"rmac", "bmmm"},
		Rates:     []float64{10, 20},
		Seeds:     2,
	}
}

// assertOracle checks that every completed point's result is
// bit-identical to the oracle the batch path would compute.
func assertOracle(t *testing.T, st JobStatus, cfgs []experiment.Config) {
	t.Helper()
	if len(st.Results) != len(cfgs) {
		t.Fatalf("results = %d, want %d", len(st.Results), len(cfgs))
	}
	want := map[string]bool{}
	for _, cfg := range cfgs {
		oracle := fakeResult(cfg)
		want[oracle.Fingerprint()] = true
	}
	seen := map[string]bool{}
	for _, r := range st.Results {
		if !want[r.Fingerprint] {
			t.Fatalf("result %s/%g seed %d: fingerprint not produced by the batch oracle", r.Protocol, r.Rate, r.Seed)
		}
		if seen[r.Fingerprint] {
			t.Fatalf("fingerprint served twice: %s", r.Fingerprint)
		}
		seen[r.Fingerprint] = true
	}
}

// TestChaosPanicsAndHangs injects a panic-then-succeed script on half the
// grid and a hang on one point; everything must still terminalize done,
// each point succeeding exactly once, bit-identical to the oracle.
func TestChaosPanicsAndHangs(t *testing.T) {
	sc := newScript()
	req := chaosReq()
	cfgs, err := req.expand()
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		key := cfg.CacheKey()
		if i%2 == 0 {
			sc.failuresFor[key] = 2 // succeeds on the last allowed attempt
		}
		if i == 3 {
			sc.hangFor[key] = 1 // one deadline-exceeded attempt first
		}
	}
	s, err := New(testConfig(sc))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	id, _ := submit(t, s, req)
	st := waitTerminal(t, s, id)
	if st.State != JobCompleted || st.Done != len(cfgs) || st.Quarantined != 0 {
		t.Fatalf("state=%v done=%d quarantined=%d, want completed %d 0", st.State, st.Done, st.Quarantined, len(cfgs))
	}
	assertOracle(t, st, cfgs)
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for key, n := range sc.successes {
		if n != 1 {
			t.Fatalf("point %s succeeded %d times, want exactly once", key[:12], n)
		}
	}
	if s.pending != 0 {
		t.Fatalf("pending = %d after terminal job", s.pending)
	}
}

// TestChaosQuarantine scripts one grid point to fail beyond MaxAttempts:
// the job must degrade — not hang, not retry forever — with the poison
// point quarantined and its last error recorded, while every healthy
// point completes.
func TestChaosQuarantine(t *testing.T) {
	sc := newScript()
	req := chaosReq()
	cfgs, _ := req.expand()
	poison := cfgs[5].CacheKey()
	sc.failuresFor[poison] = 1000

	s, err := New(testConfig(sc))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	id, _ := submit(t, s, req)
	st := waitTerminal(t, s, id)
	if st.State != JobDegraded || st.Quarantined != 1 || st.Done != len(cfgs)-1 {
		t.Fatalf("state=%v quarantined=%d done=%d, want degraded 1 %d", st.State, st.Quarantined, st.Done, len(cfgs)-1)
	}
	if len(st.Quarantine) != 1 {
		t.Fatalf("quarantine list = %d entries", len(st.Quarantine))
	}
	q := st.Quarantine[0]
	if q.Attempts != 3 {
		t.Fatalf("quarantined after %d attempts, want 3", q.Attempts)
	}
	if q.Error == "" || q.Idx != 5 {
		t.Fatalf("quarantine entry = %+v", q)
	}
	sc.mu.Lock()
	if n := sc.calls[poison]; n != 3 {
		t.Fatalf("poison point called %d times, want exactly MaxAttempts=3", n)
	}
	sc.mu.Unlock()
}

// TestChaosRestartResume is the headline crash test: a server dies
// mid-sweep (hard stop, as with kill -9 — in-flight work is simply cut
// off), and a new server over the same journal finishes the job without
// losing a point, without re-running finished points, and with every
// result bit-identical to the oracle. A resubmission of the same sweep
// then completes entirely from cache without a single simulation call.
func TestChaosRestartResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "sweeps.jsonl")
	sc := newScript()
	sc.delay = 5 * time.Millisecond // let the kill land mid-sweep
	req := chaosReq()
	cfgs, _ := req.expand()
	sc.failuresFor[cfgs[1].CacheKey()] = 1 // a retry survives the crash window too

	cfg1 := testConfig(sc)
	cfg1.Workers = 2
	cfg1.JournalPath = journal
	s1, err := New(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := submit(t, s1, req)

	// Wait for a strict subset to finish, then die mid-flight.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _ := s1.JobSnapshot(id)
		if st.Done >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no points finished before the kill")
		}
		time.Sleep(time.Millisecond)
	}
	s1.Close()
	doneBefore, _ := s1.JobSnapshot(id)
	if doneBefore.Done == len(cfgs) {
		t.Skip("sweep finished before the kill landed; nothing to resume")
	}
	sc.mu.Lock()
	callsBefore := map[string]int{}
	for k, v := range sc.calls {
		callsBefore[k] = v
	}
	sc.mu.Unlock()

	// Second life: same journal, fresh process state.
	cfg2 := testConfig(sc)
	cfg2.JournalPath = journal
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	st, ok := s2.JobSnapshot(id)
	if !ok {
		t.Fatalf("job %s not recovered from journal", id)
	}
	if st.Done < doneBefore.Done {
		t.Fatalf("recovered done=%d < journaled done=%d", st.Done, doneBefore.Done)
	}
	st = waitTerminal(t, s2, id)
	if st.State != JobCompleted || st.Done != len(cfgs) {
		t.Fatalf("resumed job: state=%v done=%d, want completed %d", st.State, st.Done, len(cfgs))
	}
	assertOracle(t, st, cfgs)

	sc.mu.Lock()
	for _, cfg := range cfgs {
		key := cfg.CacheKey()
		if sc.successes[key] != 1 {
			t.Fatalf("point %s succeeded %d times across the restart, want exactly once", key[:12], sc.successes[key])
		}
	}
	sc.mu.Unlock()

	// Resubmission: all cache, zero new simulation calls.
	sc.mu.Lock()
	callsAfterResume := map[string]int{}
	for k, v := range sc.calls {
		callsAfterResume[k] = v
	}
	sc.mu.Unlock()
	id2, _ := submit(t, s2, req)
	if id2 == id {
		t.Fatalf("resubmission reused job id %s", id)
	}
	st2 := waitTerminal(t, s2, id2)
	if st2.State != JobCompleted || st2.CacheHits != len(cfgs) {
		t.Fatalf("resubmission: state=%v cacheHits=%d, want completed %d", st2.State, st2.CacheHits, len(cfgs))
	}
	assertOracle(t, st2, cfgs)
	sc.mu.Lock()
	for k, v := range sc.calls {
		if v != callsAfterResume[k] {
			t.Fatalf("cache-served resubmission re-ran point %s", k[:12])
		}
	}
	sc.mu.Unlock()
}

// TestChaosCancel: canceling a job terminalizes every point promptly —
// queued points as canceled, in-flight points cut off cooperatively —
// and releases all queue capacity.
func TestChaosCancel(t *testing.T) {
	sc := newScript()
	sc.delay = 20 * time.Millisecond
	s, err := New(testConfig(sc))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	id, cfgs := submit(t, s, chaosReq())
	time.Sleep(5 * time.Millisecond) // let some points start
	s.mu.Lock()
	job := s.jobs[id]
	job.cancelled = true
	job.cancel()
	s.touchLocked(job)
	s.mu.Unlock()

	st := waitTerminal(t, s, id)
	if st.State != JobCanceled {
		t.Fatalf("state = %v, want canceled", st.State)
	}
	if st.Done+st.Canceled != len(cfgs) || st.Quarantined != 0 {
		t.Fatalf("done=%d canceled=%d quarantined=%d over %d points", st.Done, st.Canceled, st.Quarantined, len(cfgs))
	}
	s.mu.Lock()
	if s.pending != 0 {
		t.Fatalf("pending = %d after canceled job terminalized", s.pending)
	}
	s.mu.Unlock()
}

// TestRealSweepMatchesBatch runs one real (tiny) simulation through the
// whole service stack — no scripted runFn — and checks the served result
// is bit-identical to experiment.Run of the same expanded config: the
// service is an orchestration layer, never a perturbation.
func TestRealSweepMatchesBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	req := SweepRequest{
		Protocols: []string{"rmac"},
		Rates:     []float64{10},
		Seeds:     1,
		Nodes:     20,
		FieldW:    250,
		FieldH:    150,
		Packets:   40,
		WarmupS:   8,
		DrainS:    8,
	}
	s, err := New(Config{Workers: 1, MaxAttempts: 2, RetryBase: time.Millisecond, PointDeadline: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	id, cfgs := submit(t, s, req)
	st := waitTerminal(t, s, id)
	if st.State != JobCompleted || len(st.Results) != 1 {
		t.Fatalf("state=%v results=%d", st.State, len(st.Results))
	}
	oracle := experiment.Run(cfgs[0])
	if oracle.Failed {
		t.Fatalf("batch oracle failed: %s", oracle.FailReason)
	}
	if got, want := st.Results[0].Fingerprint, oracle.Fingerprint(); got != want {
		t.Fatalf("served result diverges from batch run:\n  served %s\n  batch  %s", got, want)
	}
	if st.Results[0].Delivery != oracle.Delivery {
		t.Fatalf("delivery: served %v, batch %v", st.Results[0].Delivery, oracle.Delivery)
	}
}
