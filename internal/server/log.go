package server

import (
	"context"
	"log/slog"
	"net/http"
	"time"
)

// Structured logging for the service. Every line carries correlation
// attributes — job ID, grid-point index, attempt — so one sweep's
// lifecycle can be grepped out of interleaved worker output. Logging is
// off (a discard handler) unless Config.Logger is set; cmd/rmacserved
// wires -log text|json here.

// discardHandler is a slog.Handler that drops everything. (The stdlib
// gained one only after this repo's go directive, so it is hand-rolled.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// statusWriter captures the response status for the access log while
// passing Flush through — the NDJSON stream endpoint needs the Flusher.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps the API mux with the access log and the per-endpoint
// request counter. The counter increment is a dense-cell atomic add; the
// log line is skipped entirely at disabled levels.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ep := endpointIndex(r)
		s.metrics.httpRequests.At(ep).Inc()
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.log.Debug("http",
			"method", r.Method,
			"path", r.URL.Path,
			"endpoint", endpointNames[ep],
			"status", sw.status,
			"dur", time.Since(start))
	})
}
