// Package routing implements the simplified BLESS tree protocol the
// paper's evaluation uses (§4.1.1): node 0 is always the root, and the
// single-source tree is formed by one operation — a periodic one-hop
// broadcast of routing beacons, sent through the MAC's Unreliable Send
// service. Each node picks as parent the fresh neighbour closest to the
// root (lowest ID on ties); a node's children are the fresh neighbours
// that announce it as their parent.
package routing

import (
	"encoding/binary"

	"rmac/internal/frame"
	"rmac/internal/mac"
	"rmac/internal/sim"
)

// BeaconMagic is the first payload byte of a routing beacon, used by the
// upper-layer dispatcher to separate beacons from application data.
const BeaconMagic = byte('B')

// BeaconSize is the beacon payload length in bytes.
const BeaconSize = 1 + 4 + 2 + 4 + 1

const (
	hopsInf   = 0xFFFF
	parentNil = 0xFFFFFFFF
)

// Beacon is one routing announcement: who I am, how far from the root I
// believe I am, whom I currently use as parent, and how many children I
// currently serve. The children count concentrates the tree: nodes break
// equal-hop parent ties toward already-popular parents, yielding the
// fewer-but-fatter forwarders the paper's §4.1.1 statistics show
// (3.54 children per non-leaf on average).
type Beacon struct {
	ID       int
	Hops     int // -1 when not connected to the root
	Parent   int // -1 when none
	Children int // saturates at 255
}

// Marshal encodes the beacon with the BeaconMagic prefix.
func (b Beacon) Marshal() []byte {
	return b.AppendTo(nil)
}

// AppendTo appends the encoded beacon to dst (the allocation-free form
// used by the beacon tick, which encodes into a pooled request payload).
func (b Beacon) AppendTo(dst []byte) []byte {
	n := len(dst)
	dst = append(dst, make([]byte, BeaconSize)...)
	out := dst[n:]
	out[0] = BeaconMagic
	binary.BigEndian.PutUint32(out[1:], uint32(b.ID))
	h := uint16(hopsInf)
	if b.Hops >= 0 && b.Hops < hopsInf {
		h = uint16(b.Hops)
	}
	binary.BigEndian.PutUint16(out[5:], h)
	p := uint32(parentNil)
	if b.Parent >= 0 {
		p = uint32(b.Parent)
	}
	binary.BigEndian.PutUint32(out[7:], p)
	c := b.Children
	if c > 255 {
		c = 255
	}
	if c < 0 {
		c = 0
	}
	out[11] = byte(c)
	return dst
}

// ParseBeacon decodes a beacon payload; ok is false for non-beacons.
func ParseBeacon(payload []byte) (Beacon, bool) {
	if len(payload) != BeaconSize || payload[0] != BeaconMagic {
		return Beacon{}, false
	}
	b := Beacon{ID: int(binary.BigEndian.Uint32(payload[1:]))}
	h := binary.BigEndian.Uint16(payload[5:])
	if h == hopsInf {
		b.Hops = -1
	} else {
		b.Hops = int(h)
	}
	p := binary.BigEndian.Uint32(payload[7:])
	if p == parentNil {
		b.Parent = -1
	} else {
		b.Parent = int(p)
	}
	b.Children = int(payload[11])
	return b, true
}

// Config sets the protocol timing.
type Config struct {
	// Period between beacons (before jitter).
	Period sim.Time
	// Expiry after which a silent neighbour is forgotten.
	Expiry sim.Time
	// JitterFrac randomises each period by ±JitterFrac to desynchronise
	// beacons across nodes.
	JitterFrac float64
}

// DefaultConfig returns 500 ms beacons with 6-period (3 s) expiry and 10%
// jitter. The paper does not state its simplified BLESS timing; these
// values calibrate the delivery ratio to the §4.2.1 figures — stationary
// ≈1 even at 120 pkt/s (the expiry rides out beacon losses under load)
// and ≈0.75 at walking speed — while beacons cost ≈2% of airtime.
func DefaultConfig() Config {
	return Config{Period: 500 * sim.Millisecond, Expiry: 3 * sim.Second, JitterFrac: 0.1}
}

// neighbor is one entry of the dense per-ID neighbour table. present
// distinguishes live entries from never-heard or expired IDs; the table is
// a slice, not a map, because node IDs are small dense integers and the
// per-beacon recompute sweep dominates the routing layer's cost — a linear
// scan over a few dozen inline structs beats a map iteration several-fold,
// and parent selection is order-independent, so the result is unchanged.
type neighbor struct {
	hops     int32
	parent   int32
	children int32
	present  bool
	last     sim.Time
}

// Protocol is the per-node BLESS instance. It is driven by the node's
// dispatcher: beacons received from the MAC are fed to HandleBeacon, and
// Start schedules the periodic broadcasts.
type Protocol struct {
	eng  *sim.Engine
	mac  mac.MAC
	id   int
	root bool
	cfg  Config

	hops      int
	parent    int
	neighbors []neighbor // indexed by node ID, grown on demand

	// nextExpiry is a conservative lower bound on the earliest instant any
	// present neighbour could expire (refreshed by every full recompute).
	// While now < nextExpiry, a beacon from a non-parent neighbour only
	// needs comparing against the incumbent parent — see HandleBeacon.
	nextExpiry sim.Time

	// reqs pools beacon SendRequests (recycled by the upper layer's
	// OnSendComplete); childBuf backs the tick's children count.
	reqs     mac.ReqPool
	childBuf []int

	// BeaconsSent counts transmission attempts for instrumentation.
	BeaconsSent uint64
}

// New creates a protocol instance for node id; exactly one node (the
// multicast source) must be root.
func New(eng *sim.Engine, m mac.MAC, id int, root bool, cfg Config) *Protocol {
	p := &Protocol{
		eng: eng, mac: m, id: id, root: root, cfg: cfg,
		hops: -1, parent: -1,
	}
	if root {
		p.hops = 0
	}
	return p
}

// Start begins periodic beaconing, with a random initial phase so nodes
// do not beacon in lockstep.
func (p *Protocol) Start() {
	first := sim.Time(p.eng.Rand().Float64() * float64(p.cfg.Period))
	p.eng.AfterCall(first, p, 0)
}

// Call implements sim.Caller: the beacon tick, scheduled closure-free.
func (p *Protocol) Call(int32) { p.tick() }

func (p *Protocol) tick() {
	p.recompute()
	p.childBuf = p.ChildrenInto(p.childBuf[:0])
	b := Beacon{ID: p.id, Hops: p.hops, Parent: p.parent, Children: len(p.childBuf)}
	p.BeaconsSent++
	req := p.reqs.Get()
	req.Service = mac.Unreliable
	req.Dests = append(req.Dests, frame.Broadcast)
	req.Payload = b.AppendTo(req.Payload)
	req.Urgent = true // topology maintenance must not starve behind data
	if !p.mac.Send(req) {
		req.Recycle() // queue full: no OnSendComplete will follow
	}
	jitter := 1 + p.cfg.JitterFrac*(2*p.eng.Rand().Float64()-1)
	p.eng.AfterCall(sim.Time(float64(p.cfg.Period)*jitter), p, 0)
}

// HandleBeacon ingests a received beacon payload; it reports whether the
// payload was a beacon.
func (p *Protocol) HandleBeacon(payload []byte) bool {
	b, ok := ParseBeacon(payload)
	if !ok {
		return false
	}
	if b.ID == p.id {
		return true
	}
	if b.ID >= len(p.neighbors) {
		p.neighbors = append(p.neighbors, make([]neighbor, b.ID+1-len(p.neighbors))...)
	}
	now := p.eng.Now()
	nb := &p.neighbors[b.ID]
	nb.hops = int32(b.Hops)
	nb.parent = int32(b.Parent)
	nb.children = int32(b.Children)
	nb.present = true
	nb.last = now

	// Parent re-selection. The full scan is only needed when the incumbent
	// itself changed (its score moved, possibly down — a max cannot be
	// patched), when there is no incumbent, or when an entry may have
	// expired since the last scan. Otherwise the stored parent still beats
	// every unchanged entry — scores only change with beacons, which all
	// pass through here — so comparing the one updated entry against the
	// incumbent reproduces the full scan's result exactly. (If the update
	// wins it also keeps winning after inheriting the incumbent's hysteresis
	// bonus, so the invariant is preserved across the switch.)
	if p.root {
		return true
	}
	if p.parent < 0 || b.ID == p.parent || now >= p.nextExpiry {
		p.recompute()
		return true
	}
	if b.Hops < 0 {
		return true
	}
	inc := &p.neighbors[p.parent]
	incHops, incKids := int(inc.hops), int(inc.children)+1
	if b.Hops < incHops || (b.Hops == incHops &&
		(b.Children > incKids || (b.Children == incKids && b.ID < p.parent))) {
		p.parent = b.ID
		p.hops = b.Hops + 1
	}
	return true
}

// recompute expires stale neighbours and re-selects the parent, in one
// pass over the dense neighbour table.
func (p *Protocol) recompute() {
	now := p.eng.Now()
	minLast := sim.Time(1<<62 - 1)
	bestID, bestHops, bestKids := -1, -1, -1
	for id := range p.neighbors {
		nb := &p.neighbors[id]
		if !nb.present {
			continue
		}
		if now-nb.last > p.cfg.Expiry {
			nb.present = false
			continue
		}
		if nb.last < minLast {
			minLast = nb.last
		}
		if nb.hops < 0 {
			continue
		}
		kids := int(nb.children)
		if id == p.parent {
			// Hysteresis: our advertised membership counts toward the
			// incumbent, so an equally-loaded alternative does not win.
			kids++
		}
		hops := int(nb.hops)
		better := bestID < 0 || hops < bestHops ||
			(hops == bestHops && kids > bestKids) ||
			(hops == bestHops && kids == bestKids && id < bestID)
		if better {
			bestID, bestHops, bestKids = id, hops, kids
		}
	}
	p.nextExpiry = minLast + p.cfg.Expiry
	if p.root {
		p.hops = 0
		p.parent = -1
		return
	}
	if bestID < 0 {
		p.hops = -1
		p.parent = -1
		return
	}
	p.parent = bestID
	p.hops = bestHops + 1
}

// Parent returns the current parent node ID, or -1.
func (p *Protocol) Parent() int { return p.parent }

// Hops returns the believed distance to the root, or -1 when detached.
func (p *Protocol) Hops() int { return p.hops }

// Children returns the IDs of fresh neighbours currently announcing this
// node as their parent, in ascending ID order.
func (p *Protocol) Children() []int { return p.ChildrenInto(nil) }

// ChildrenInto appends the current children to buf and returns it, so
// steady-state callers can reuse one buffer across queries. The table is
// indexed by ID, so the appended IDs are ascending by construction.
func (p *Protocol) ChildrenInto(buf []int) []int {
	now := p.eng.Now()
	pid := int32(p.id)
	for id := range p.neighbors {
		nb := &p.neighbors[id]
		if nb.present && now-nb.last <= p.cfg.Expiry && nb.parent == pid {
			buf = append(buf, id)
		}
	}
	return buf
}

// NeighborCount returns the number of fresh neighbours.
func (p *Protocol) NeighborCount() int {
	now := p.eng.Now()
	c := 0
	for i := range p.neighbors {
		nb := &p.neighbors[i]
		if nb.present && now-nb.last <= p.cfg.Expiry {
			c++
		}
	}
	return c
}
