package routing

import (
	"testing"
	"testing/quick"

	"rmac/internal/frame"
	"rmac/internal/mac"
	"rmac/internal/sim"
)

// fakeWorld is an in-memory MAC fabric: unreliable broadcasts reach the
// adjacency list after a tiny delay; reliable sends are not needed here.
type fakeWorld struct {
	eng  *sim.Engine
	macs []*fakeMAC
	adj  map[int][]int
}

type fakeMAC struct {
	w     *fakeWorld
	id    int
	upper mac.UpperLayer
	stats mac.Stats
	sent  []*mac.SendRequest
}

func (f *fakeMAC) Addr() frame.Addr          { return frame.AddrFromID(f.id) }
func (f *fakeMAC) Stats() *mac.Stats         { return &f.stats }
func (f *fakeMAC) SetUpper(u mac.UpperLayer) { f.upper = u }
func (f *fakeMAC) Send(req *mac.SendRequest) bool {
	f.sent = append(f.sent, req)
	for _, nb := range f.w.adj[f.id] {
		dst := f.w.macs[nb]
		payload := req.Payload
		f.w.eng.After(sim.Millisecond, func() {
			if dst.upper != nil {
				dst.upper.OnDeliver(payload, mac.RxInfo{From: f.Addr()})
			}
		})
	}
	return true
}

// upperAdapter routes deliveries straight into the protocol.
type upperAdapter struct{ p *Protocol }

func (u upperAdapter) OnDeliver(payload []byte, _ mac.RxInfo) { u.p.HandleBeacon(payload) }
func (u upperAdapter) OnSendComplete(mac.TxResult)            {}

func newFabric(seed int64, n int, adj map[int][]int) (*sim.Engine, []*Protocol) {
	eng := sim.NewEngine(seed)
	w := &fakeWorld{eng: eng, adj: adj}
	protos := make([]*Protocol, n)
	for i := 0; i < n; i++ {
		fm := &fakeMAC{w: w, id: i}
		w.macs = append(w.macs, fm)
		protos[i] = New(eng, fm, i, i == 0, DefaultConfig())
		fm.SetUpper(upperAdapter{protos[i]})
		protos[i].Start()
	}
	return eng, protos
}

func line(n int) map[int][]int {
	adj := map[int][]int{}
	for i := 0; i < n-1; i++ {
		adj[i] = append(adj[i], i+1)
		adj[i+1] = append(adj[i+1], i)
	}
	return adj
}

func TestBeaconRoundTrip(t *testing.T) {
	cases := []Beacon{
		{ID: 0, Hops: 0, Parent: -1},
		{ID: 74, Hops: 10, Parent: 3, Children: 9},
		{ID: 5, Hops: -1, Parent: -1},
		{ID: 6, Hops: 2, Parent: 1, Children: 255},
	}
	for _, b := range cases {
		got, ok := ParseBeacon(b.Marshal())
		if !ok || got != b {
			t.Fatalf("roundtrip %+v -> %+v (ok=%v)", b, got, ok)
		}
	}
	if _, ok := ParseBeacon([]byte{'X', 0, 0}); ok {
		t.Fatal("junk accepted")
	}
	if _, ok := ParseBeacon(nil); ok {
		t.Fatal("nil accepted")
	}
}

func TestPropertyBeaconRoundTrip(t *testing.T) {
	f := func(id uint16, hops uint8, parent uint16, kids uint8, detached bool) bool {
		b := Beacon{ID: int(id), Hops: int(hops), Parent: int(parent), Children: int(kids)}
		if detached {
			b.Hops, b.Parent = -1, -1
		}
		got, ok := ParseBeacon(b.Marshal())
		return ok && got == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTreeFormsOnLine(t *testing.T) {
	eng, protos := newFabric(1, 4, line(4))
	eng.Run(10 * sim.Second)
	wantParent := []int{-1, 0, 1, 2}
	wantHops := []int{0, 1, 2, 3}
	for i, p := range protos {
		if p.Parent() != wantParent[i] || p.Hops() != wantHops[i] {
			t.Fatalf("node %d: parent=%d hops=%d, want %d/%d", i, p.Parent(), p.Hops(), wantParent[i], wantHops[i])
		}
	}
	for i := 0; i < 3; i++ {
		ch := protos[i].Children()
		if len(ch) != 1 || ch[0] != i+1 {
			t.Fatalf("node %d children = %v", i, ch)
		}
	}
	if len(protos[3].Children()) != 0 {
		t.Fatal("leaf has children")
	}
}

func TestParentTieBreaksLowestID(t *testing.T) {
	// Node 3 hears both 1 and 2 (both at hop 1); it must pick 1.
	adj := map[int][]int{
		0: {1, 2}, 1: {0, 3}, 2: {0, 3}, 3: {1, 2},
	}
	eng, protos := newFabric(2, 4, adj)
	eng.Run(10 * sim.Second)
	if protos[3].Parent() != 1 {
		t.Fatalf("node 3 parent = %d, want 1 (lowest ID at min hops)", protos[3].Parent())
	}
	if protos[3].Hops() != 2 {
		t.Fatalf("node 3 hops = %d", protos[3].Hops())
	}
}

func TestNeighborExpiry(t *testing.T) {
	eng, protos := newFabric(3, 2, line(2))
	eng.Run(5 * sim.Second)
	if protos[1].Parent() != 0 || protos[1].NeighborCount() != 1 {
		t.Fatal("tree did not form")
	}
	// Partition: stop deliveries by clearing adjacency, run past expiry.
	w := protosWorld(protos)
	w.adj = map[int][]int{}
	eng.Run(eng.Now() + 10*sim.Second)
	if protos[1].Parent() != -1 || protos[1].Hops() != -1 {
		t.Fatalf("stale parent survived: parent=%d hops=%d", protos[1].Parent(), protos[1].Hops())
	}
	if protos[1].NeighborCount() != 0 {
		t.Fatal("stale neighbour survived")
	}
}

// protosWorld digs the shared fakeWorld out of a protocol set.
func protosWorld(protos []*Protocol) *fakeWorld {
	return protos[0].mac.(*fakeMAC).w
}

func TestRootIgnoresBetterOffers(t *testing.T) {
	eng, protos := newFabric(4, 2, line(2))
	eng.Run(5 * sim.Second)
	if protos[0].Parent() != -1 || protos[0].Hops() != 0 {
		t.Fatal("root must stay parentless at hop 0")
	}
}

func TestOwnBeaconIgnored(t *testing.T) {
	eng := sim.NewEngine(5)
	fm := &fakeMAC{w: &fakeWorld{eng: eng, adj: map[int][]int{}}, id: 7}
	fm.w.macs = []*fakeMAC{nil, nil, nil, nil, nil, nil, nil, fm}
	p := New(eng, fm, 7, false, DefaultConfig())
	if !p.HandleBeacon(Beacon{ID: 7, Hops: 3, Parent: 1}.Marshal()) {
		t.Fatal("own beacon not recognised as beacon")
	}
	if p.NeighborCount() != 0 {
		t.Fatal("node learned itself as neighbour")
	}
}

func TestHandleBeaconRejectsData(t *testing.T) {
	eng := sim.NewEngine(6)
	p := New(eng, &fakeMAC{w: &fakeWorld{eng: eng}}, 1, false, DefaultConfig())
	if p.HandleBeacon([]byte{'D', 1, 2, 3}) {
		t.Fatal("data payload consumed as beacon")
	}
}

func TestBeaconRateRoughlyPeriodic(t *testing.T) {
	eng, protos := newFabric(7, 1, map[int][]int{})
	eng.Run(30 * sim.Second)
	sent := protos[0].BeaconsSent
	want := uint64(30 * sim.Second / DefaultConfig().Period)
	if sent < want*8/10 || sent > want*12/10 {
		t.Fatalf("beacons in 30s = %d, want ≈%d", sent, want)
	}
}
