#!/usr/bin/env sh
# Reproduce every experiment of the RMAC paper with this repository.
#
#   scripts/reproduce.sh            # shape-accurate, minutes
#   SCALE=full scripts/reproduce.sh # the paper's 10000 packets x 10 seeds
#
# Results land in results/.
set -eu

cd "$(dirname "$0")/.."
mkdir -p results

PACKETS=500
SEEDS=4
if [ "${SCALE:-}" = "full" ]; then
    PACKETS=10000
    SEEDS=10
fi

echo "== go test ./... =="
go test ./... | tee results/test.txt

echo "== E0: closed-form models (cmd/rmacmodel) =="
go run ./cmd/rmacmodel | tee results/model.txt

echo "== E1: tree topology (cmd/treestat) =="
go run ./cmd/treestat -v | tee results/treestat.txt

echo "== E2-E8: Figures 7-13 (cmd/rmacfigs, ${PACKETS} packets x ${SEEDS} seeds) =="
go run ./cmd/rmacfigs -packets "$PACKETS" -seeds "$SEEDS" \
    -csv results/figures.csv -json results/figures.json \
    | tee results/figures.txt

echo "== E9: feedback disciplines (examples/disciplines) =="
go run ./examples/disciplines | tee results/disciplines.txt

echo "== E10 + per-figure benchmarks =="
go test -bench=. -benchmem -benchtime=3x . | tee results/bench.txt

echo "All results written to results/."
