#!/usr/bin/env bash
# bench.sh — run the kernel/PHY hot-path benchmark suite and record the
# results in BENCH_kernel.json so every PR leaves a perf trajectory.
#
# Usage:
#   scripts/bench.sh            # run suite, rewrite BENCH_kernel.json
#   scripts/bench.sh -quick     # single iteration smoke (CI)
#
# The JSON maps each benchmark to {ns_op, b_op, allocs_op}. Commit the
# refreshed file together with any change that moves these numbers, and
# quote the before/after in the PR description.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="2s"
OUT=BENCH_kernel.json
if [[ "${1:-}" == "-quick" ]]; then
    # Smoke mode: single iteration, and keep the committed numbers — a 1x
    # sample is a liveness check, not a measurement.
    BENCHTIME="1x"
    OUT=/dev/null
fi

PATTERN='BenchmarkEngineSchedule|BenchmarkEngineScheduleCancel|BenchmarkEngineTimerChurn|BenchmarkMediumFanout|BenchmarkToneStorm'
RAW=$(go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" -benchmem \
    ./internal/sim ./internal/phy)
echo "$RAW"

echo "$RAW" | awk '
BEGIN { print "{"; n = 0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix
    ns = ""; bop = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op")     ns     = $(i - 1)
        if ($(i) == "B/op")      bop    = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "  \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", \
        name, ns, (bop == "" ? "null" : bop), (allocs == "" ? "null" : allocs)
}
END { print "\n}" }
' > "$OUT"

echo
echo "wrote $OUT:"
cat "$OUT"
