#!/usr/bin/env bash
# bench.sh — run the kernel/PHY hot-path benchmark suite and record the
# results in BENCH_kernel.json, the fault-injection overhead suite in
# BENCH_fault.json, and the per-protocol whole-run suite in BENCH_run.json,
# so every PR leaves a perf trajectory.
#
# Usage:
#   scripts/bench.sh            # run suites, rewrite BENCH_*.json
#   scripts/bench.sh -quick     # single iteration smoke (CI)
#
# Each JSON maps a benchmark to {ns_op, b_op, allocs_op}. Commit the
# refreshed files together with any change that moves these numbers, and
# quote the before/after in the PR description.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="2s"
QUICK=0
if [[ "${1:-}" == "-quick" ]]; then
    # Smoke mode: single iteration, and keep the committed numbers — a 1x
    # sample is a liveness check, not a measurement.
    BENCHTIME="1x"
    QUICK=1
fi

# bench_suite PATTERN OUT PKGS... — run one benchmark suite and render the
# results as JSON into OUT (/dev/null in smoke mode).
bench_suite() {
    local pattern=$1 out=$2
    shift 2
    [[ "$QUICK" == 1 ]] && out=/dev/null
    local raw
    raw=$(go test -run '^$' -bench "$pattern" -benchtime "$BENCHTIME" -benchmem "$@")
    echo "$raw"

    echo "$raw" | awk '
    BEGIN { print "{"; n = 0 }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix
        ns = ""; bop = ""; allocs = ""; evs = ""
        for (i = 2; i <= NF; i++) {
            if ($(i) == "ns/op")     ns     = $(i - 1)
            if ($(i) == "B/op")      bop    = $(i - 1)
            if ($(i) == "allocs/op") allocs = $(i - 1)
            if ($(i) == "events/s")  evs    = $(i - 1)
        }
        if (ns == "") next
        if (n++) printf ",\n"
        printf "  \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s", \
            name, ns, (bop == "" ? "null" : bop), (allocs == "" ? "null" : allocs)
        if (evs != "") printf ", \"events_s\": %s", evs
        printf "}"
    }
    END { print "\n}" }
    ' > "$out"

    if [[ "$out" != /dev/null ]]; then
        echo
        echo "wrote $out:"
        cat "$out"
    fi
}

bench_suite 'BenchmarkEngineSchedule|BenchmarkEngineScheduleCancel|BenchmarkEngineTimerChurn|BenchmarkMediumFanout|BenchmarkToneStorm' \
    BENCH_kernel.json ./internal/sim ./internal/phy

# Impairment overhead: the same 200-radio fanout with the fault layer
# attached (bursty channel) vs attached-but-disabled. The disabled case is
# the regression gate — a zero fault.Config must stay free.
bench_suite 'BenchmarkFaultFanout' BENCH_fault.json ./internal/fault

# Whole-run throughput per MAC protocol: the end-to-end engineering metric
# of the pooled frame lifecycle. allocs_op is the bill for a complete run
# (network construction included); events_s is the headline number.
bench_suite 'BenchmarkWholeRun' BENCH_run.json .
